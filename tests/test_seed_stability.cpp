// Golden seed-stability pins. The engine's counter-based SeedSequence is the
// root of every experiment's reproducibility: a refactor that changes its
// derivation (or the downstream Rng expansion, schedule sampling, or
// simulator consumption order) would silently shift every Monte-Carlo number
// in the repo. These tests pin
//
//   * the derived seeds and first 8 draws of streams {0, 1, 17} at root 42;
//   * the first-execution verdict code of every scenario-matrix cell at the
//     default matrix seed,
//
// so any such drift fails loudly here instead of quietly invalidating
// EXPERIMENTS.md. If a change is *intentional* (a new RNG, a new derivation),
// regenerate the constants and say so in the commit.
#include <gtest/gtest.h>

#include <cstdint>

#include "engine/seed_sequence.hpp"
#include "oracle/scenario.hpp"

namespace mh {
namespace {

struct GoldenStream {
  std::uint64_t index;
  std::uint64_t derived;
  std::uint64_t draws[8];
};

// Root seed 42; regenerate with: for s in {0,1,17}: SeedSequence(42).stream(s).
constexpr GoldenStream kGolden[] = {
    {0,
     0x6fbd8464a1696e51ULL,
     {0x944cb3dd3232e9a2ULL, 0xe99b6476bf98a60eULL, 0x65170314fe7fd3bfULL,
      0xc3ce99e402161213ULL, 0x36d044fbc0820971ULL, 0xd94e8fb3e081c448ULL,
      0x8361d849cfa0393bULL, 0x3ec1736829f89442ULL}},
    {1,
     0x1f4e86a81d457cc6ULL,
     {0xdf80c2c7480e87caULL, 0x107e6a8928593021ULL, 0x5c0965f7446211c5ULL,
      0x00abfbc75099304fULL, 0x0fbb2be6c86a6aa1ULL, 0xba408998b9d68677ULL,
      0x8e529d1dc86e2148ULL, 0xebc9322e4a67b5c3ULL}},
    {17,
     0xa7b415ee61dad267ULL,
     {0x7bf98c982249561fULL, 0x77fa7e6bb8d44b0aULL, 0xcede01a242c41a49ULL,
      0xb87ca42ae9a59c0bULL, 0xabd97577dc5701e8ULL, 0xa7cf238e6fa2d25aULL,
      0xec65e4907a168cdcULL, 0x5fce73e0a70dc245ULL}},
};

TEST(SeedStability, SeedSequenceStreamsArePinned) {
  const engine::SeedSequence seq(42);
  for (const GoldenStream& golden : kGolden) {
    EXPECT_EQ(seq.derive(golden.index), golden.derived) << "stream " << golden.index;
    Rng rng = seq.stream(golden.index);
    for (int i = 0; i < 8; ++i)
      EXPECT_EQ(rng(), golden.draws[i]) << "stream " << golden.index << " draw " << i;
  }
}

TEST(SeedStability, ScenarioMatrixFirstVerdictsArePinned) {
  // One verdict character per cell, row-major in (tie, delta, strategy, law)
  // at the default matrix seed 2027. '.' = quiet run, 'a' = margin allows but
  // the adversary failed, 'V' = simulated violation (analytically permitted);
  // '!' (an invariant breach) must never appear.
  oracle::MatrixConfig config;
  config.runs = 2;  // first_run only reads execution 0; keep the pin cheap
  config.mc_samples = 500;
  const oracle::MatrixResult result = oracle::run_scenario_matrix(config);
  EXPECT_EQ(first_run_codes(result), ".aaa.aaaaVaaaaaV.aaa.aaaaaaa.aaaaaaa");
}

TEST(SeedStability, FaultBandFirstVerdictsArePinned) {
  // The chaos band's fingerprint at its stock seed 6101, row-major in
  // (fault, tie, delta, strategy, law). Beyond the un-faulted alphabet, 'd'
  // marks a degraded run whose observed-Delta projection held and 'u' an
  // unbounded one; '!' must never appear. This pins the FaultPlan samplers
  // and the whole injector/transport/re-sync pipeline: any drift in their
  // draw order or fault application shows up here first.
  oracle::MatrixConfig config = oracle::fault_band_config();
  config.runs = 2;
  config.mc_samples = 500;
  const oracle::MatrixResult result = oracle::run_scenario_matrix(config);
  EXPECT_EQ(first_run_codes(result),
            "aV.aVVaa.aaaaaaaad.dadad.dadaddaaaaaaaaaaaaaaaaa"
            "uuaudVaduuduuuau.VdddVddddddaddd.uduuuuddududuuu");
}

}  // namespace
}  // namespace mh
