#include "protocol/network.hpp"

#include <gtest/gtest.h>

namespace mh {
namespace {

TEST(Network, SynchronousBroadcastArrivesNextSlot) {
  Network net(3, 0);
  const Block b = make_block(genesis_block().hash, 1, 0, 0);
  net.broadcast(b, 1);
  EXPECT_TRUE(net.collect(0, 1).empty());
  const auto due = net.collect(0, 2);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].hash, b.hash);
  EXPECT_TRUE(net.collect(0, 3).empty());  // consumed
  // Other recipients get their own copies.
  EXPECT_EQ(net.collect(1, 2).size(), 1u);
  EXPECT_EQ(net.collect(2, 2).size(), 1u);
}

TEST(Network, DelaysBoundedByDelta) {
  Network net(2, 3);
  const Block b = make_block(genesis_block().hash, 1, 0, 0);
  net.broadcast(b, 1, {0, 3});
  EXPECT_EQ(net.collect(0, 2).size(), 1u);
  EXPECT_TRUE(net.collect(1, 2).empty());
  EXPECT_TRUE(net.collect(1, 4).empty());
  EXPECT_EQ(net.collect(1, 5).size(), 1u);
}

TEST(Network, RejectsDelaysPastDelta) {
  Network net(2, 1);
  const Block b = make_block(genesis_block().hash, 1, 0, 0);
  EXPECT_THROW(net.broadcast(b, 1, {0, 2}), std::invalid_argument);
  EXPECT_THROW(net.broadcast(b, 1, {0}), std::invalid_argument);  // wrong size
}

TEST(Network, InjectionTargetsOneRecipient) {
  Network net(3, 0);
  const Block b = make_block(genesis_block().hash, 2, kAdversary, 0);
  net.inject(b, 1, 4);
  EXPECT_TRUE(net.collect(0, 4).empty());
  EXPECT_EQ(net.collect(1, 4).size(), 1u);
  EXPECT_TRUE(net.collect(2, 4).empty());
}

TEST(Network, InjectAllReachesEveryone) {
  Network net(3, 0);
  const Block b = make_block(genesis_block().hash, 2, kAdversary, 0);
  net.inject_all(b, 3);
  for (PartyId p = 0; p < 3; ++p) EXPECT_EQ(net.collect(p, 3).size(), 1u);
}

TEST(Network, LateCollectionDeliversBacklog) {
  Network net(1, 0);
  const Block b1 = make_block(genesis_block().hash, 1, 0, 0);
  const Block b2 = make_block(b1.hash, 2, 0, 0);
  net.broadcast(b1, 1);
  net.broadcast(b2, 2);
  const auto due = net.collect(0, 5);  // collected late: both blocks due
  EXPECT_EQ(due.size(), 2u);
}

TEST(Network, PreservesSchedulingOrder) {
  Network net(1, 0);
  const Block b1 = make_block(genesis_block().hash, 1, 0, 1);
  const Block b2 = make_block(genesis_block().hash, 1, 1, 2);
  net.inject(b1, 0, 2);
  net.inject(b2, 0, 2);
  const auto due = net.collect(0, 2);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].hash, b1.hash);
  EXPECT_EQ(due[1].hash, b2.hash);
}

}  // namespace
}  // namespace mh
