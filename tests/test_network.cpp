#include "protocol/network.hpp"

#include <gtest/gtest.h>

#include "protocol/faults/injector.hpp"

namespace mh {
namespace {

// Tests drain through the allocation-free entry point the simulation hot loop
// uses; one dedicated test below covers the allocating convenience overload.
std::vector<Block> drain(Network& net, PartyId recipient, std::size_t slot) {
  std::vector<Block> due;
  net.collect_into(recipient, slot, &due);
  return due;
}

TEST(Network, SynchronousBroadcastArrivesNextSlot) {
  Network net(3, 0);
  const Block b = make_block(genesis_block().hash, 1, 0, 0);
  net.broadcast(b, 1);
  EXPECT_TRUE(drain(net, 0, 1).empty());
  const auto due = drain(net, 0, 2);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].hash, b.hash);
  EXPECT_TRUE(drain(net, 0, 3).empty());  // consumed
  // Other recipients get their own copies.
  EXPECT_EQ(drain(net, 1, 2).size(), 1u);
  EXPECT_EQ(drain(net, 2, 2).size(), 1u);
}

TEST(Network, AllocatingCollectDelegatesToCollectInto) {
  Network net(2, 0);
  const Block b = make_block(genesis_block().hash, 1, 0, 0);
  net.broadcast(b, 1);
  const auto allocated = net.collect(0, 2);  // convenience overload
  ASSERT_EQ(allocated.size(), 1u);
  EXPECT_EQ(allocated[0].hash, b.hash);
  // Same transport state through collect_into, and the buffer is cleared
  // before filling (stale contents must not leak into a delivery round).
  std::vector<Block> buf(7, genesis_block());
  net.collect_into(1, 2, &buf);
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0].hash, b.hash);
}

TEST(Network, DelaysBoundedByDelta) {
  Network net(2, 3);
  const Block b = make_block(genesis_block().hash, 1, 0, 0);
  net.broadcast(b, 1, {0, 3});
  EXPECT_EQ(drain(net, 0, 2).size(), 1u);
  EXPECT_TRUE(drain(net, 1, 2).empty());
  EXPECT_TRUE(drain(net, 1, 4).empty());
  EXPECT_EQ(drain(net, 1, 5).size(), 1u);
}

TEST(Network, RejectsDelaysPastDelta) {
  Network net(2, 1);
  BlockTree tree;
  const Block b = make_block(genesis_block().hash, 1, 0, 0);
  tree.add(b);
  EXPECT_THROW(net.broadcast(b, 1, {0, 2}), std::invalid_argument);
  EXPECT_THROW(net.broadcast(b, 1, {0}), std::invalid_argument);  // wrong size
  EXPECT_THROW(net.broadcast_chain(tree, b, 1, {2, 0}), std::invalid_argument);
  EXPECT_THROW(net.broadcast_chain(tree, b, 1, {0, 0, 0}), std::invalid_argument);
}

TEST(Network, RejectsOutOfRangeRecipients) {
  Network net(2, 0);
  const Block b = make_block(genesis_block().hash, 1, kAdversary, 0);
  EXPECT_THROW(net.inject(b, 2, 1), std::invalid_argument);
  EXPECT_THROW(net.inject(b, kAdversary, 1), std::invalid_argument);
  std::vector<Block> buf;
  EXPECT_THROW(net.collect_into(2, 1, &buf), std::invalid_argument);
}

TEST(Network, RejectsNonMonotoneSlots) {
  // A block sent or made visible before its own slot would let the adversary
  // rewrite delivery history; every entry point rejects it up front.
  Network net(2, 1);
  BlockTree tree;
  const Block b = make_block(genesis_block().hash, 3, 0, 0);
  tree.add(b);
  EXPECT_THROW(net.broadcast(b, 2), std::invalid_argument);
  EXPECT_THROW(net.broadcast_chain(tree, b, 2), std::invalid_argument);
  EXPECT_THROW(net.inject(b, 0, 2), std::invalid_argument);
  EXPECT_THROW(net.inject_all(b, 2), std::invalid_argument);
  // Sending at exactly the block's slot is the boundary and is legal.
  net.broadcast(b, 3);
  EXPECT_EQ(drain(net, 0, 4).size(), 1u);
}

TEST(Network, InjectionTargetsOneRecipient) {
  Network net(3, 0);
  const Block b = make_block(genesis_block().hash, 2, kAdversary, 0);
  net.inject(b, 1, 4);
  EXPECT_TRUE(drain(net, 0, 4).empty());
  EXPECT_EQ(drain(net, 1, 4).size(), 1u);
  EXPECT_TRUE(drain(net, 2, 4).empty());
}

TEST(Network, InjectAllReachesEveryone) {
  Network net(3, 0);
  const Block b = make_block(genesis_block().hash, 2, kAdversary, 0);
  net.inject_all(b, 3);
  for (PartyId p = 0; p < 3; ++p) EXPECT_EQ(drain(net, p, 3).size(), 1u);
}

TEST(Network, LateCollectionDeliversBacklog) {
  Network net(1, 0);
  const Block b1 = make_block(genesis_block().hash, 1, 0, 0);
  const Block b2 = make_block(b1.hash, 2, 0, 0);
  net.broadcast(b1, 1);
  net.broadcast(b2, 2);
  const auto due = drain(net, 0, 5);  // collected late: both blocks due
  EXPECT_EQ(due.size(), 2u);
}

TEST(Network, BucketedDeliveryOrdersBySlotThenScheduling) {
  // The bucketed transport's ordering contract: due slot first, scheduling
  // order within a slot (a backlog collect sees slot-ascending buckets).
  Network net(1, 0);
  const Block b1 = make_block(genesis_block().hash, 1, 0, 1);
  const Block b2 = make_block(genesis_block().hash, 2, kAdversary, 2);
  const Block b3 = make_block(genesis_block().hash, 3, kAdversary, 3);
  net.inject(b3, 0, 3);  // scheduled first but due later
  net.inject(b2, 0, 2);
  net.inject(b1, 0, 2);
  const auto due = drain(net, 0, 3);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].hash, b2.hash);
  EXPECT_EQ(due[1].hash, b1.hash);
  EXPECT_EQ(due[2].hash, b3.hash);
}

TEST(Network, BroadcastChainShipsMissingAncestorsThenOnlyNews) {
  Network net(2, 0);
  BlockTree tree;
  const Block a = make_block(genesis_block().hash, 1, 0, 0);
  const Block b = make_block(a.hash, 2, 0, 0);
  tree.add(a);
  tree.add(b);
  // The forger never shipped a: the chain sync ships [a, b] ancestors-first.
  net.broadcast_chain(tree, b, 2);
  auto due = drain(net, 0, 3);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].hash, a.hash);
  EXPECT_EQ(due[1].hash, b.hash);
  // The next forge ships ONLY the new block — the prefix is synced.
  const Block c = make_block(b.hash, 3, 0, 0);
  tree.add(c);
  net.broadcast_chain(tree, c, 3);
  due = drain(net, 0, 4);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].hash, c.hash);
  // A recipient collecting late still sees the whole backlog, chains first.
  due = drain(net, 1, 4);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].hash, a.hash);
  EXPECT_EQ(due[1].hash, b.hash);
  EXPECT_EQ(due[2].hash, c.hash);
}

TEST(Network, BroadcastChainReShipsAncestorsPastDelayedCopies) {
  // a is in flight to recipient 1 with a Delta-delay; a faster later block
  // must re-ship it so no recipient ever sees an orphan honest block.
  Network net(2, 2);
  BlockTree tree;
  const Block a = make_block(genesis_block().hash, 1, 0, 0);
  const Block b = make_block(a.hash, 2, 0, 0);
  tree.add(a);
  net.broadcast_chain(tree, a, 1, {0, 2});  // recipient 1: due slot 4
  tree.add(b);
  net.broadcast_chain(tree, b, 2, {0, 0});  // due slot 3 — overtakes a
  EXPECT_EQ(drain(net, 0, 2).size(), 1u);  // recipient 0 already has a
  const auto due = drain(net, 1, 3);
  ASSERT_EQ(due.size(), 2u);  // a re-shipped ahead of b
  EXPECT_EQ(due[0].hash, a.hash);
  EXPECT_EQ(due[1].hash, b.hash);
  // The original delayed copy still lands (a duplicate, harmless).
  EXPECT_EQ(drain(net, 1, 4).size(), 1u);
}

TEST(Network, InjectionAdvancesWatermarkOnlyWhenChainComplete) {
  Network net(1, 0);
  BlockTree tree;
  const Block a = make_block(genesis_block().hash, 1, 0, 0);
  const Block b = make_block(a.hash, 2, 0, 0);
  const Block c = make_block(b.hash, 3, 0, 0);
  tree.add(a);
  tree.add(b);
  tree.add(c);

  // Partial adversarial disclosure: c alone, parent never shipped. The
  // watermark must NOT count it, or honest rebroadcasts would skip the
  // prefix and orphan c forever.
  net.inject(c, 0, 3);
  EXPECT_EQ(drain(net, 0, 3).size(), 1u);
  net.broadcast_chain(tree, c, 3);
  auto due = drain(net, 0, 4);
  ASSERT_EQ(due.size(), 3u);  // full chain re-shipped, ancestors first
  EXPECT_EQ(due[0].hash, a.hash);
  EXPECT_EQ(due[1].hash, b.hash);
  EXPECT_EQ(due[2].hash, c.hash);

  // Chain-complete injections DO advance the watermark: after the adversary
  // publishes a -> b in order, forging on b ships only the new block.
  Network net2(1, 0);
  net2.inject_all(a, 1);
  net2.inject_all(b, 2);
  net2.broadcast_chain(tree, c, 3);
  EXPECT_EQ(drain(net2, 0, 2).size(), 2u);  // a, b
  due = drain(net2, 0, 4);
  ASSERT_EQ(due.size(), 1u);  // just c: the injected prefix is covered
  EXPECT_EQ(due[0].hash, c.hash);
}

TEST(Network, PerRecipientOrderIsDueThenSeqWhenEventsLandOutOfInsertionOrder) {
  // The event core's contract is (due, seq), NOT insertion order: a later
  // scheduling with an earlier due overtakes, and equal dues fall back to
  // scheduling order. Adversarial injections exercise this in the degenerate
  // configuration (honest lockstep sends alone never reorder).
  Network net(2, 4);
  const Block late = make_block(genesis_block().hash, 1, kAdversary, 1);
  const Block early = make_block(genesis_block().hash, 1, kAdversary, 2);
  const Block tied = make_block(genesis_block().hash, 1, kAdversary, 3);
  net.inject(late, 0, 5);   // scheduled first, lands last
  net.inject(early, 0, 2);  // overtakes with the earlier due
  net.inject(tied, 0, 5);   // ties `late` on due: seq breaks it, in that order
  const auto due = drain(net, 0, 6);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].payload, 2u);
  EXPECT_EQ(due[1].payload, 1u);
  EXPECT_EQ(due[2].payload, 3u);
}

TEST(Network, WatermarkExpiresAtExactlyDuePlusDeltaPlusOne) {
  // A benign link-fault window (every probability zero) perturbs nothing but
  // keeps rounds non-uniform, so coverage lives ONLY in the per-recipient
  // watermarks — making their expiry boundary observable: once the slot-2
  // entry for b1 expires, a later broadcast of its child re-ships b1.
  faults::FaultPlan plan;
  plan.links.push_back({1, 32, 0.0, 0.0, 0.0, 0});
  const std::size_t delta = 2;
  const auto deliveries_after = [&](std::size_t collect_slot) {
    faults::FaultInjector injector(plan, 2, 32);
    Network net(2, delta);
    net.attach_faults(&injector);
    BlockTree tree;
    const Block b1 = make_block(genesis_block().hash, 1, 0, 1);
    const Block b2 = make_block(b1.hash, 2, 1, 2);
    tree.add(b1);
    tree.add(b2);
    net.broadcast_chain(tree, b1, 1);       // due 2: expiry lands at 2 + delta + 1
    (void)drain(net, 1, collect_slot);      // consumes b1; runs the expiry sweep
    net.broadcast_chain(tree, b2, collect_slot);
    return drain(net, 1, collect_slot + 1);
  };
  // Collecting at due + delta (slot 4): the watermark still answers, so the
  // child ships alone.
  const auto covered = deliveries_after(4);
  ASSERT_EQ(covered.size(), 1u);
  EXPECT_EQ(covered[0].payload, 2u);
  // One slot later — exactly due + delta + 1 — the entry is gone and the
  // chain sync re-ships the ancestor, ancestors-first.
  const auto expired = deliveries_after(5);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].payload, 1u);
  EXPECT_EQ(expired[1].payload, 2u);
}

TEST(Network, PreservesSchedulingOrder) {
  Network net(1, 0);
  const Block b1 = make_block(genesis_block().hash, 1, 0, 1);
  const Block b2 = make_block(genesis_block().hash, 1, 1, 2);
  net.inject(b1, 0, 2);
  net.inject(b2, 0, 2);
  const auto due = drain(net, 0, 2);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].hash, b1.hash);
  EXPECT_EQ(due[1].hash, b2.hash);
}

}  // namespace
}  // namespace mh
