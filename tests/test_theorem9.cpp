#include "core/theorem9.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"
#include "core/astar.hpp"
#include "core/cp.hpp"
#include "core/relative_margin.hpp"
#include "fork/balanced.hpp"
#include "fork/validate.hpp"
#include "support/random.hpp"

namespace mh {
namespace {

TEST(Pinch, RedirectsOneDepthLevel) {
  // Chain root -> a(1) -> b(3); sibling c(2) on root. Pinching at c moves b's
  // depth-1... pinch at a: vertices of depth 1 (a and c) redirect to a — a
  // cannot redirect to itself (it IS at depth 1; its parent stays root? No:
  // pinch redirects every depth-(depth(u)+1) vertex; depth(a) = 1, so depth-2
  // vertices redirect to a.
  Fork f;
  const VertexId a = f.add_vertex(kRoot, 1);
  const VertexId b = f.add_vertex(a, 3);
  const VertexId c = f.add_vertex(kRoot, 2);
  const VertexId d = f.add_vertex(c, 4);  // depth 2: will re-hang from a
  const Fork pinched = pinch_at(f, a);
  EXPECT_EQ(pinched.parent(b), a);
  EXPECT_EQ(pinched.parent(d), a);
  EXPECT_EQ(pinched.parent(c), kRoot);
  // Depths are preserved.
  for (VertexId v : f.all_vertices()) EXPECT_EQ(pinched.depth(v), f.depth(v));
}

TEST(Pinch, RejectsLabelInversion) {
  // A depth-2 vertex with label smaller than u's label cannot re-hang from u.
  Fork f;
  const VertexId a = f.add_vertex(kRoot, 5);
  f.add_vertex(a, 6);
  const VertexId c = f.add_vertex(kRoot, 1);
  f.add_vertex(c, 2);  // depth 2, label 2 < 5
  EXPECT_THROW(pinch_at(f, a), std::invalid_argument);
}

TEST(Theorem9, NoViablePairNoWitness) {
  // A lone honest chain has zero slot divergence.
  const CharString w = CharString::parse("hhhh");
  Fork f;
  VertexId v = kRoot;
  for (std::uint32_t s = 1; s <= 4; ++s) v = f.add_vertex(v, s);
  EXPECT_FALSE(theorem9_balanced_fork(f, w, 2).has_value());
}

TEST(Theorem9, HandConstructedViolation) {
  // w = h AAAAAA h: honest chain 1 -> 8 plus a viable private chain 2..7.
  const CharString w = CharString::parse("hAAAAAAh");
  Fork f = build_canonical_fork(w);
  pad_with_adversarial(f, w, kRoot, 6);  // private chain through slots 2..7
  ASSERT_GE(slot_divergence(f, w), 7u);

  const auto witness = theorem9_balanced_fork(f, w, 3);
  ASSERT_TRUE(witness.has_value());
  EXPECT_GE(witness->y_len, 3u);
  const CharString xy = w.prefix(witness->x_len + witness->y_len);
  EXPECT_TRUE(validate_fork(witness->balanced, xy).ok)
      << validate_fork(witness->balanced, xy).message;
  EXPECT_TRUE(is_x_balanced(witness->balanced, xy, witness->x_len));
  // Fact 6 cross-check: the margin recurrence must agree that xy admits an
  // x-balanced fork.
  EXPECT_GE(relative_margin_recurrence(xy, witness->x_len), 0);
}

// Randomized soundness: on divergence-maximal forks (canonical + balanced
// extension), whenever the construction returns a witness it is a valid
// x-balanced fork with |y| >= k and a margin-certified decomposition.
struct T9Case {
  double eps, ph;
  std::size_t n, k;
};

class Theorem9Randomized : public ::testing::TestWithParam<T9Case> {};

TEST_P(Theorem9Randomized, WitnessesAreSoundAndFrequentlyFound) {
  const auto [eps, ph, n, k] = GetParam();
  const SymbolLaw law = bernoulli_condition(eps, ph);
  Rng rng(777333);
  int candidates = 0, witnesses = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const CharString w = law.sample_string(n, rng);
    // Manufacture a deep violation: balance the canonical fork over the
    // earliest decomposition whose margin allows it.
    const Fork canonical = build_canonical_fork(w);
    std::optional<Fork> extended;
    for (std::size_t x = 0; x + k + 1 <= n && !extended; ++x)
      if (relative_margin_recurrence(w, x) >= 0)
        extended = extend_to_x_balanced(canonical, w, x);
    if (!extended) continue;
    if (slot_divergence(*extended, w) < k + 1) continue;
    ++candidates;
    const auto witness = theorem9_balanced_fork(*extended, w, k);
    if (!witness) continue;
    ++witnesses;
    ASSERT_GE(witness->y_len, k);
    const CharString xy = w.prefix(witness->x_len + witness->y_len);
    ASSERT_TRUE(validate_fork(witness->balanced, xy).ok)
        << w.to_string() << ": " << validate_fork(witness->balanced, xy).message;
    ASSERT_TRUE(is_x_balanced(witness->balanced, xy, witness->x_len)) << w.to_string();
    ASSERT_GE(relative_margin_recurrence(xy, witness->x_len), 0) << w.to_string();
  }
  EXPECT_GT(candidates, 0);
  // The surgery succeeds on most manufactured violations (it may bail on
  // forks that are not divergence-maximal).
  EXPECT_GE(witnesses * 2, candidates);
}

INSTANTIATE_TEST_SUITE_P(Grid, Theorem9Randomized,
                         ::testing::Values(T9Case{0.2, 0.3, 28, 3}, T9Case{0.1, 0.2, 36, 4},
                                           T9Case{0.3, 0.1, 32, 3}));

}  // namespace
}  // namespace mh
