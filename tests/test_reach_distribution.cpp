#include "core/reach_distribution.hpp"

#include <gtest/gtest.h>
#include <cmath>

#include "core/relative_margin.hpp"
#include "support/random.hpp"

namespace mh {
namespace {

TEST(ReachDistribution, BetaFormula) {
  const SymbolLaw law = bernoulli_condition(0.2, 0.3);  // pA = 0.4
  EXPECT_NEAR(static_cast<double>(reach_beta(law)), 0.4 / 0.6, 1e-12);
}

TEST(ReachDistribution, StationaryIsGeometric) {
  const SymbolLaw law = bernoulli_condition(0.5, 0.3);  // pA = 0.25, beta = 1/3
  const ReachPmf pmf = stationary_reach_distribution(law, 50);
  EXPECT_NEAR(static_cast<double>(pmf.mass[0]), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(pmf.mass[1]), 2.0 / 9.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(pmf.total()), 1.0, 1e-15);
  // The tail is exactly beta^{cap+1}.
  EXPECT_NEAR(static_cast<double>(pmf.tail), std::pow(1.0 / 3.0, 51), 1e-30);
}

TEST(ReachDistribution, FiniteLawSumsToOne) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.2);
  for (std::size_t m : {0u, 1u, 5u, 40u}) {
    const ReachPmf pmf = finite_reach_distribution(law, m, 64);
    EXPECT_NEAR(static_cast<double>(pmf.total()), 1.0, 1e-14) << m;
  }
}

TEST(ReachDistribution, FiniteMatchesRecurrenceSimulation) {
  const SymbolLaw law = bernoulli_condition(0.4, 0.3);
  const std::size_t m = 24;
  const ReachPmf pmf = finite_reach_distribution(law, m, 64);
  Rng rng(321);
  std::vector<std::size_t> counts(65, 0);
  const std::size_t samples = 200'000;
  for (std::size_t i = 0; i < samples; ++i) {
    const CharString x = law.sample_string(m, rng);
    ++counts[static_cast<std::size_t>(rho_of(x))];
  }
  for (std::size_t r = 0; r <= 10; ++r) {
    const double expected = static_cast<double>(pmf.mass[r]);
    const double observed = static_cast<double>(counts[r]) / samples;
    EXPECT_NEAR(observed, expected, 0.01) << "r = " << r;
  }
}

TEST(ReachDistribution, FiniteDominatedByStationary) {
  // [4, Lemma 6.1]: X_m <= X_inf for every m.
  const SymbolLaw law = bernoulli_condition(0.2, 0.4);
  const ReachPmf stationary = stationary_reach_distribution(law, 128);
  for (std::size_t m : {1u, 4u, 16u, 64u, 128u}) {
    const ReachPmf finite = finite_reach_distribution(law, m, 128);
    EXPECT_TRUE(pmf_dominated(finite, stationary)) << "m = " << m;
  }
}

TEST(ReachDistribution, FiniteConvergesToStationary) {
  const SymbolLaw law = bernoulli_condition(0.4, 0.3);
  const ReachPmf stationary = stationary_reach_distribution(law, 256);
  const ReachPmf finite = finite_reach_distribution(law, 256, 256);
  for (std::size_t r = 0; r <= 20; ++r)
    EXPECT_NEAR(static_cast<double>(finite.mass[r]),
                static_cast<double>(stationary.mass[r]), 1e-6)
        << r;
}

TEST(ReachDistribution, UpperTail) {
  ReachPmf pmf;
  pmf.mass = {0.5L, 0.25L, 0.125L};
  pmf.tail = 0.125L;
  EXPECT_NEAR(static_cast<double>(pmf.upper_tail(0)), 0.5, 1e-15);
  EXPECT_NEAR(static_cast<double>(pmf.upper_tail(2)), 0.125, 1e-15);
}

TEST(ReachDistribution, CapMustCoverM) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.2);
  EXPECT_THROW(finite_reach_distribution(law, 65, 64), std::invalid_argument);
}

}  // namespace
}  // namespace mh
