#include "core/settlement_game.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"
#include "core/astar.hpp"
#include "core/relative_margin.hpp"
#include "fork/margin.hpp"
#include "fork/reach.hpp"
#include "core/uvp.hpp"
#include "fork/validate.hpp"
#include "support/random.hpp"

namespace mh {
namespace {

class NullStrategy : public ForkAdversary {};

TEST(SettlementGame, ChallengerBuildsLinearChainAgainstNull) {
  NullStrategy null;
  const CharString w = CharString::parse("hhHh");
  const Fork fork = play_settlement_game(w, null);
  EXPECT_TRUE(validate_fork(fork, w).ok);
  EXPECT_EQ(fork.height(), 4u);
  // The null strategy never doubles H slots: one vertex per slot.
  EXPECT_EQ(fork.vertex_count(), 5u);
}

TEST(SettlementGame, AdversarialSlotsLeftIdleByNull) {
  NullStrategy null;
  const CharString w = CharString::parse("hAAh");
  const Fork fork = play_settlement_game(w, null);
  EXPECT_EQ(fork.vertices_with_label(2).size(), 0u);
  EXPECT_EQ(fork.vertices_with_label(3).size(), 0u);
  EXPECT_EQ(fork.height(), 2u);
}

TEST(SettlementGame, MultiplicityIsClampedToAtLeastOne) {
  class ZeroMultiplicity : public ForkAdversary {
    std::size_t honest_multiplicity(std::size_t, const Fork&, const CharString&) override {
      return 0;  // illegal; the challenger clamps to 1 (F3 requires >= 1)
    }
  } strategy;
  const Fork fork = play_settlement_game(CharString::parse("HH"), strategy);
  EXPECT_EQ(fork.vertices_with_label(1).size(), 1u);
  EXPECT_EQ(fork.vertices_with_label(2).size(), 1u);
}

TEST(SettlementGame, IllegalTipChoiceRejected) {
  class CheatingStrategy : public ForkAdversary {
    VertexId choose_tip(std::size_t, std::size_t, const std::vector<VertexId>&, const Fork& f,
                        const CharString&) override {
      // Pick a non-maximal tine once the fork is two levels deep.
      return f.height() >= 2 ? 1 : kRoot;
    }
  } strategy;
  EXPECT_THROW(play_settlement_game(CharString::parse("hhh"), strategy),
               std::invalid_argument);
}

TEST(SettlementGame, ConsistentTieBreakingIgnoresAdversaryChoice) {
  // Two branches of equal length; under A0' both H leaders extend the same
  // deterministic choice, so no balance can form without adversarial slots.
  GreedyBalanceStrategy greedy;
  GameOptions options;
  options.consistent_tie_breaking = true;
  const CharString w = CharString::parse("HHHHHH");
  const Fork fork = play_settlement_game(w, greedy, options);
  EXPECT_TRUE(validate_fork(fork, w).ok);
  EXPECT_FALSE(adversary_wins(fork, w, 1, 4));
}

TEST(SettlementGame, GreedyBalanceWinsOnAllHUnderA0) {
  GreedyBalanceStrategy greedy;
  const CharString w = CharString::parse("HHHHHH");
  const Fork fork = play_settlement_game(w, greedy);
  EXPECT_TRUE(validate_fork(fork, w).ok);
  EXPECT_TRUE(adversary_wins(fork, w, 1, 4));
}

TEST(SettlementGame, WinRequiresQualifyingObservationTime) {
  GreedyBalanceStrategy greedy;
  const CharString w = CharString::parse("HH");
  const Fork fork = play_settlement_game(w, greedy);
  EXPECT_FALSE(adversary_wins(fork, w, 1, 4));  // |w| < s + k
}

// The headline equivalence: playing A* through the game interface reproduces
// the canonical fork's margins — the game model, the Figure-4 strategy, and
// the Theorem-5 recurrence are one consistent story.
struct GameCase {
  double eps, ph;
  std::size_t n;
};

class AStarThroughGame : public ::testing::TestWithParam<GameCase> {};

TEST_P(AStarThroughGame, ReproducesCanonicalMargins) {
  const auto [eps, ph, n] = GetParam();
  const SymbolLaw law = bernoulli_condition(eps, ph);
  Rng rng(424243);
  for (int trial = 0; trial < 12; ++trial) {
    const CharString w = law.sample_string(n, rng);
    AStarGameStrategy astar;
    const Fork fork = play_settlement_game(w, astar);
    ASSERT_TRUE(validate_fork(fork, w).ok) << w.to_string();
    ASSERT_EQ(max_reach(fork, w), rho_of(w)) << w.to_string();
    for (std::size_t x = 0; x <= w.size(); x += 2)
      ASSERT_EQ(relative_margin(fork, w, x), relative_margin_recurrence(w, x))
          << "w = " << w.to_string() << " x = " << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, AStarThroughGame,
                         ::testing::Values(GameCase{0.3, 0.3, 32}, GameCase{0.1, 0.15, 48},
                                           GameCase{0.5, 0.4, 24}, GameCase{0.2, 0.0, 40}));

// No strategy may beat the recurrence: whenever any strategy wins the (s, k)
// game on w, the optimal margin must be nonnegative at some qualifying time.
TEST(SettlementGame, GreedyNeverBeatsTheRecurrence) {
  const SymbolLaw law = bernoulli_condition(0.2, 0.25);
  Rng rng(515);
  for (int trial = 0; trial < 40; ++trial) {
    const CharString w = law.sample_string(24, rng);
    GreedyBalanceStrategy greedy;
    const Fork fork = play_settlement_game(w, greedy);
    ASSERT_TRUE(validate_fork(fork, w).ok) << w.to_string();
    for (std::size_t s = 1; s + 4 <= w.size(); ++s) {
      if (adversary_wins(fork, w, s, 4)) {
        // Definition 3 divergence at the final fork implies the structural
        // margin over x = w_1..w_{s-1} is >= 0 there, which the recurrence
        // upper-bounds (Proposition 1).
        ASSERT_GE(relative_margin_recurrence(w, s - 1), 0)
            << "greedy beat the optimal bound on " << w.to_string() << " at s = " << s;
      }
    }
  }
}


// Theorem 4 through the game: on bivalent strings under A0\', two consecutive
// Catalan slots grant the earlier one the structural UVP in the played fork,
// no matter the strategy.
TEST(SettlementGame, Theorem4StructuralUvpUnderConsistentTieBreaking) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.0);  // bivalent: ph = 0
  Rng rng(909090);
  GameOptions options;
  options.consistent_tie_breaking = true;
  int checked = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const CharString w = law.sample_string(20, rng);
    GreedyBalanceStrategy greedy;
    const Fork fork = play_settlement_game(w, greedy, options);
    ASSERT_TRUE(validate_fork(fork, w).ok) << w.to_string();
    for (std::size_t s = 1; s + 1 <= w.size(); ++s) {
      if (!has_uvp_consecutive_catalan(w, s)) continue;
      ++checked;
      // The first slot's siblings stay viable one extra slot: its unique
      // vertex binds from onset s + 2 (see uvp_holds_in_fork's contract).
      ASSERT_TRUE(uvp_holds_in_fork(fork, w, s, s + 2))
          << "Theorem 4 failed at s = " << s << " on " << w.to_string();
      ASSERT_TRUE(uvp_holds_in_fork(fork, w, s + 1, s + 3))
          << "Theorem 4 failed at s+1 = " << s + 1 << " on " << w.to_string();
    }
  }
  EXPECT_GT(checked, 0);
}
}  // namespace
}  // namespace mh
