#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mh {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
}

TEST(RunningStats, SingleObservationHasZeroVariance) {
  RunningStats s;
  s.add(3.14);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderror(), 0.0);
}

TEST(RunningStats, MergeMatchesSerialAccumulation) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats serial;
  for (double x : xs) serial.add(x);
  // Split the stream at every cut point; the merged shards must reproduce the
  // serial accumulator (no double-counting, Chan-stable moments).
  for (std::size_t cut = 0; cut <= xs.size(); ++cut) {
    RunningStats left, right;
    for (std::size_t i = 0; i < cut; ++i) left.add(xs[i]);
    for (std::size_t i = cut; i < xs.size(); ++i) right.add(xs[i]);
    left.merge(right);
    EXPECT_EQ(left.count(), serial.count());
    EXPECT_NEAR(left.mean(), serial.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), serial.variance(), 1e-12);
  }
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  RunningStats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
  EXPECT_NEAR(empty.variance(), s.variance(), 1e-12);
}

TEST(Proportion, MergePoolsCountsAndRecomputesInterval) {
  Proportion a = wilson_interval(10, 100);
  const Proportion b = wilson_interval(30, 200);
  a.merge(b);
  const Proportion pooled = wilson_interval(40, 300);
  EXPECT_EQ(a.successes, 40u);
  EXPECT_EQ(a.trials, 300u);
  EXPECT_DOUBLE_EQ(a.estimate, pooled.estimate);
  EXPECT_DOUBLE_EQ(a.lo, pooled.lo);
  EXPECT_DOUBLE_EQ(a.hi, pooled.hi);
}

TEST(Proportion, MergeIntoDefaultShard) {
  Proportion empty;  // a default-constructed shard partial
  empty.merge(wilson_interval(5, 50));
  EXPECT_EQ(empty.successes, 5u);
  EXPECT_EQ(empty.trials, 50u);
  EXPECT_DOUBLE_EQ(empty.estimate, 0.1);
  Proportion still_empty;
  still_empty.merge(Proportion{});
  EXPECT_EQ(still_empty.trials, 0u);
  EXPECT_DOUBLE_EQ(still_empty.estimate, 0.0);
}

TEST(Wilson, CenteredForHalf) {
  const Proportion p = wilson_interval(500, 1000);
  EXPECT_NEAR(p.estimate, 0.5, 1e-12);
  EXPECT_LT(p.lo, 0.5);
  EXPECT_GT(p.hi, 0.5);
  EXPECT_NEAR(p.hi - p.lo, 2 * 2.5758 * std::sqrt(0.25 / 1000), 0.005);
}

TEST(Wilson, ZeroSuccessesStillPositiveUpper) {
  const Proportion p = wilson_interval(0, 1000);
  EXPECT_EQ(p.estimate, 0.0);
  EXPECT_EQ(p.lo, 0.0);
  EXPECT_GT(p.hi, 0.0);
  EXPECT_LT(p.hi, 0.02);
}

TEST(Wilson, AllSuccesses) {
  const Proportion p = wilson_interval(100, 100);
  EXPECT_EQ(p.estimate, 1.0);
  EXPECT_LT(p.lo, 1.0);
  EXPECT_EQ(p.hi, 1.0);
}

TEST(Wilson, RejectsBadInput) {
  EXPECT_THROW(wilson_interval(5, 0), std::invalid_argument);
  EXPECT_THROW(wilson_interval(11, 10), std::invalid_argument);
}

TEST(ChiSquare, PerfectFitIsSmall) {
  const std::vector<std::size_t> observed{250, 250, 250, 250};
  const std::vector<double> expected{0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(chi_square_statistic(observed, expected), 0.0, 1e-12);
}

TEST(ChiSquare, DetectsGrossMisfit) {
  const std::vector<std::size_t> observed{900, 50, 25, 25};
  const std::vector<double> expected{0.25, 0.25, 0.25, 0.25};
  EXPECT_GT(chi_square_statistic(observed, expected), chi_square_critical(3));
}

TEST(ChiSquare, CriticalValuesRoughlyStandard) {
  // chi2_{0.99, 3} ~ 11.34, chi2_{0.99, 10} ~ 23.21.
  EXPECT_NEAR(chi_square_critical(3, 0.01), 11.34, 0.8);
  EXPECT_NEAR(chi_square_critical(10, 0.01), 23.21, 0.8);
}

TEST(LeastSquares, RecoversExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit fit = least_squares(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(ClopperPearson, IncompleteBetaMatchesClosedForms) {
  // I_x(1, b) = 1 - (1-x)^b and I_x(a, 1) = x^a.
  EXPECT_NEAR(regularized_incomplete_beta(1.0, 3.0, 0.2), 1.0 - std::pow(0.8, 3), 1e-12);
  EXPECT_NEAR(regularized_incomplete_beta(4.0, 1.0, 0.7), std::pow(0.7, 4), 1e-12);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(regularized_incomplete_beta(3.5, 2.25, 0.4),
              1.0 - regularized_incomplete_beta(2.25, 3.5, 0.6), 1e-12);
  EXPECT_EQ(regularized_incomplete_beta(2.0, 2.0, 0.0), 0.0);
  EXPECT_EQ(regularized_incomplete_beta(2.0, 2.0, 1.0), 1.0);
}

TEST(ClopperPearson, EndpointsInvertTheBinomialTails) {
  // The defining property: at the lower endpoint, Pr[X >= x | p = lo] = a/2;
  // at the upper, Pr[X <= x | p = hi] = a/2. Both tails are incomplete betas:
  // Pr[X >= x] = I_p(x, n - x + 1) and Pr[X <= x] = 1 - I_p(x + 1, n - x).
  const std::size_t n = 50, x = 7;
  const double confidence = 0.95;
  const Proportion band = clopper_pearson_interval(x, n, confidence);
  EXPECT_NEAR(regularized_incomplete_beta(x, n - x + 1.0, band.lo), 0.025, 1e-9);
  EXPECT_NEAR(1.0 - regularized_incomplete_beta(x + 1.0, n - x, band.hi), 0.025, 1e-9);
  EXPECT_LT(band.lo, band.estimate);
  EXPECT_GT(band.hi, band.estimate);
}

TEST(ClopperPearson, ExtremesAndWidthOrdering) {
  const Proportion none = clopper_pearson_interval(0, 100);
  EXPECT_EQ(none.lo, 0.0);
  EXPECT_GT(none.hi, 0.0);
  const Proportion all = clopper_pearson_interval(100, 100);
  EXPECT_EQ(all.hi, 1.0);
  EXPECT_LT(all.lo, 1.0);
  // Higher confidence widens the band.
  const Proportion loose = clopper_pearson_interval(20, 200, 0.9);
  const Proportion tight = clopper_pearson_interval(20, 200, 0.999999);
  EXPECT_LT(tight.lo, loose.lo);
  EXPECT_GT(tight.hi, loose.hi);
  EXPECT_THROW(clopper_pearson_interval(5, 4), std::exception);
}

TEST(DecayRate, RecoversExponentialRate) {
  std::vector<double> k, p;
  for (int i = 1; i <= 20; ++i) {
    k.push_back(10.0 * i);
    p.push_back(std::exp(-0.05 * 10.0 * i));
  }
  EXPECT_NEAR(fitted_decay_rate(k, p), 0.05, 1e-10);
}

TEST(DecayRate, IgnoresZeroProbabilities) {
  const std::vector<double> k{10, 20, 30, 40};
  const std::vector<double> p{std::exp(-1.0), 0.0, std::exp(-3.0), std::exp(-4.0)};
  EXPECT_NEAR(fitted_decay_rate(k, p), 0.1, 1e-10);
}

}  // namespace
}  // namespace mh
