#include "core/cp.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"
#include "core/astar.hpp"
#include "fork/balanced.hpp"
#include "fork_fixtures.hpp"
#include "support/random.hpp"

namespace mh {
namespace {

TEST(Cp, ViableTines) {
  fixtures::Fig1 fig;
  EXPECT_TRUE(is_viable_tine(fig.fork, fig.w, fig.v9a));
  EXPECT_TRUE(is_viable_tine(fig.fork, fig.w, fig.v6a));  // depth 4 = d(6)
  EXPECT_FALSE(is_viable_tine(fig.fork, fig.w, fig.a4b)); // depth 1 < d(3) = 2
  EXPECT_TRUE(is_viable_tine(fig.fork, fig.w, kRoot));    // nothing before slot 0
}

TEST(Cp, SlotDivergenceOnFixture) {
  fixtures::Fig1 fig;
  // The two viable 9-tines share only the root: divergence 9 - 0 = 9.
  EXPECT_EQ(slot_divergence(fig.fork, fig.w), 9u);
}

TEST(Cp, SatisfiesKCpSlot) {
  fixtures::Fig1 fig;
  // Slot divergence 9 => violates k-CP^slot for k <= 8, satisfies k >= 9.
  EXPECT_FALSE(satisfies_k_cp_slot(fig.fork, fig.w, 8));
  EXPECT_TRUE(satisfies_k_cp_slot(fig.fork, fig.w, 9));
}

TEST(Cp, SingleChainAlwaysSatisfiesCp) {
  const CharString w = CharString::parse("hhhh");
  Fork f;
  VertexId v = kRoot;
  for (std::uint32_t s = 1; s <= 4; ++s) v = f.add_vertex(v, s);
  for (std::size_t k = 0; k <= 4; ++k) EXPECT_TRUE(satisfies_k_cp_slot(f, w, k));
  EXPECT_EQ(slot_divergence(f, w), 0u);
}

TEST(Cp, GuaranteedByCatalanWindows) {
  // hhhh: every window of length 1 contains a uniquely honest Catalan slot.
  EXPECT_TRUE(cp_slot_guaranteed_by_catalan(CharString::parse("hhhh"), 1));
  // hAhA: no right-Catalan slots at all (every h is followed by an A).
  EXPECT_FALSE(cp_slot_guaranteed_by_catalan(CharString::parse("hAhA"), 2));
  // Short strings trivially satisfy the window condition.
  EXPECT_TRUE(cp_slot_guaranteed_by_catalan(CharString::parse("hA"), 8));
}

// Soundness of the Catalan sufficient condition against the strongest
// adversary we have: if every k-window has a uniquely honest Catalan slot,
// the canonical fork must satisfy k-CP^slot.
struct CpCase {
  double eps, ph;
  std::size_t length, k;
};

class CpSoundness : public ::testing::TestWithParam<CpCase> {};

TEST_P(CpSoundness, CatalanWindowsImplyCanonicalForkCp) {
  const auto [eps, ph, length, k] = GetParam();
  const SymbolLaw law = bernoulli_condition(eps, ph);
  Rng rng(314159);
  for (int trial = 0; trial < 20; ++trial) {
    const CharString w = law.sample_string(length, rng);
    if (!cp_slot_guaranteed_by_catalan(w, k)) continue;
    const Fork fork = build_canonical_fork(w);
    ASSERT_TRUE(satisfies_k_cp_slot(fork, w, k)) << w.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, CpSoundness,
                         ::testing::Values(CpCase{0.5, 0.6, 40, 10}, CpCase{0.3, 0.5, 30, 12},
                                           CpCase{0.7, 0.8, 50, 8}));

// Conversely, an adversarial run after slot 1 admits a private chain that is
// viable (longer than every honest block it competes with) yet shares only
// the genesis with the honest chain: a k-CP^slot violation for small k.
TEST(Cp, PrivateAdversarialChainViolatesCp) {
  const CharString w = CharString::parse("hAAAAAAh");
  Fork fork = build_canonical_fork(w);  // honest chain: v(1) -> v(8)
  // The private chain spends all six adversarial labels from genesis.
  pad_with_adversarial(fork, w, kRoot, 6);
  EXPECT_GE(slot_divergence(fork, w), 7u);
  EXPECT_FALSE(satisfies_k_cp_slot(fork, w, 3));
  // With a huge confirmation depth the trimmed prefix is just genesis.
  EXPECT_TRUE(satisfies_k_cp_slot(fork, w, 8));
}

TEST(Cp, Theorem8BoundScalesLinearlyInHorizon) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.4);
  const long double b1 = theorem8_bound(law, 1000, 60);
  const long double b2 = theorem8_bound(law, 2000, 60);
  if (b2 < 1.0L) {
    EXPECT_NEAR(static_cast<double>(b2 / b1), 2.0, 1e-6);
  }
  EXPECT_LE(theorem8_bound(law, 1'000'000, 5), 1.0L);  // clamped
}

}  // namespace
}  // namespace mh
