// The deterministic fault-injection layer, bottom-up: plan validation and
// serialization, the counter-based injector, the transport's drop/crash/
// re-sync behavior, full-execution recovery (heal convergence, crash ->
// restart -> re-sync), and the observed-Delta oracle contract — within-bound
// faulted runs satisfy every domination invariant, out-of-bound runs are
// flagged and graded at their observed Delta, and the whole fault band is
// bit-identical across thread counts.
#include "protocol/faults/injector.hpp"
#include "protocol/faults/plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/seed_sequence.hpp"
#include "oracle/scenario.hpp"
#include "protocol/adversary.hpp"
#include "protocol/network.hpp"
#include "protocol/simulation.hpp"

namespace mh {
namespace {

std::vector<Block> drain(Network& net, PartyId recipient, std::size_t slot) {
  std::vector<Block> due;
  net.collect_into(recipient, slot, &due);
  return due;
}

// --- plan layer ------------------------------------------------------------

TEST(FaultPlan, ValidationEnforcesShape) {
  const std::size_t parties = 4, horizon = 20;
  faults::FaultPlan plan;
  plan.validate(parties, horizon);  // empty plan is always well-formed

  plan.partitions.push_back({2, 5, {0, 1}});  // group vector too short
  EXPECT_THROW(plan.validate(parties, horizon), std::invalid_argument);
  plan.partitions[0].group = {0, 0, 0, 0};  // one-sided split
  EXPECT_THROW(plan.validate(parties, horizon), std::invalid_argument);
  plan.partitions[0].group = {0, 1, 0, 1};
  plan.validate(parties, horizon);
  plan.partitions.push_back({4, 8, {1, 0, 1, 0}});  // overlaps [2, 5)
  EXPECT_THROW(plan.validate(parties, horizon), std::invalid_argument);
  plan.partitions[1].start = 5;  // [5, 8) is disjoint from [2, 5)
  plan.validate(parties, horizon);
  plan.partitions[1].heal = 5;  // heal must follow start
  EXPECT_THROW(plan.validate(parties, horizon), std::invalid_argument);
  plan.partitions.pop_back();

  plan.churn.push_back({2, 3, 3});  // restart must follow the crash
  EXPECT_THROW(plan.validate(parties, horizon), std::invalid_argument);
  plan.churn[0] = {2, 3, 6};
  plan.validate(parties, horizon);
  plan.churn.push_back({2, 5, 7});  // same party, overlapping down-time
  EXPECT_THROW(plan.validate(parties, horizon), std::invalid_argument);
  plan.churn[1] = {2, 6, 7};  // [3, 6) then [6, 7): back-to-back is fine
  plan.validate(parties, horizon);
  plan.churn.push_back({7, 2, 4});  // party out of range
  EXPECT_THROW(plan.validate(parties, horizon), std::invalid_argument);
  plan.churn.pop_back();

  plan.links.push_back({2, 2, 0.1, 0.0, 0.0, 0});  // empty window
  EXPECT_THROW(plan.validate(parties, horizon), std::invalid_argument);
  plan.links[0] = {2, 6, 1.5, 0.0, 0.0, 0};  // probability out of range
  EXPECT_THROW(plan.validate(parties, horizon), std::invalid_argument);
  plan.links[0] = {2, 6, 0.2, 0.1, 0.5, 0};  // extra delay needs extra_max >= 1
  EXPECT_THROW(plan.validate(parties, horizon), std::invalid_argument);
  plan.links[0] = {2, 6, 0.2, 0.1, 0.5, 2};
  plan.validate(parties, horizon);
}

TEST(FaultPlan, SerializationRoundTripsEveryProfile) {
  using faults::FaultProfile;
  Rng rng(7);
  for (const FaultProfile profile :
       {FaultProfile::None, FaultProfile::PartitionHeal, FaultProfile::Churn,
        FaultProfile::LossyLinks, FaultProfile::Asynchrony, FaultProfile::Mixed}) {
    const faults::FaultPlan plan = faults::sample_fault_plan(profile, 6, 48, 2, rng);
    const std::string text = plan.serialize();
    EXPECT_EQ(faults::FaultPlan::deserialize(text), plan)
        << faults::fault_profile_name(profile) << ": " << text;
  }
  EXPECT_THROW(faults::FaultPlan::deserialize("bogus seed=1"), std::invalid_argument);
  EXPECT_THROW(faults::FaultPlan::deserialize("mh-faultplan-v1 what=1"),
               std::invalid_argument);
  EXPECT_THROW(faults::FaultPlan::deserialize("mh-faultplan-v1 crash=1:x:3"),
               std::invalid_argument);
  EXPECT_THROW(faults::FaultPlan::deserialize("mh-faultplan-v1 part=1:4"),
               std::invalid_argument);
}

TEST(FaultPlan, SamplingIsPureAndNoneDrawsNothing) {
  Rng a(99), b(99);
  const auto p1 = faults::sample_fault_plan(faults::FaultProfile::Mixed, 6, 48, 2, a);
  const auto p2 = faults::sample_fault_plan(faults::FaultProfile::Mixed, 6, 48, 2, b);
  EXPECT_EQ(p1, p2);
  EXPECT_FALSE(p1.empty());
  Rng c(5), d(5);
  EXPECT_TRUE(faults::sample_fault_plan(faults::FaultProfile::None, 6, 48, 2, c).empty());
  EXPECT_EQ(c(), d());  // the None profile consumed no randomness
}

// --- injector layer --------------------------------------------------------

TEST(FaultInjector, QueriesArePureAndWindowed) {
  faults::FaultPlan plan;
  plan.seed = 404;
  plan.partitions.push_back({3, 6, {0, 0, 1, 1}});
  plan.churn.push_back({1, 4, 7});
  plan.links.push_back({2, 9, 1.0, 0.0, 0.0, 0});  // certain drop in [2, 9)
  const faults::FaultInjector inj(plan, 4, 20);

  EXPECT_FALSE(inj.window_active(1));
  EXPECT_TRUE(inj.window_active(2));
  EXPECT_TRUE(inj.window_active(8));
  EXPECT_FALSE(inj.window_active(9));

  EXPECT_TRUE(inj.severed(0, 2, 3));
  EXPECT_TRUE(inj.severed(2, 0, 5));
  EXPECT_FALSE(inj.severed(0, 1, 3));          // same side
  EXPECT_FALSE(inj.severed(kAdversary, 2, 3)); // adversarial channels survive
  EXPECT_FALSE(inj.severed(0, 2, 6));          // healed

  EXPECT_TRUE(inj.is_down(1, 4));
  EXPECT_TRUE(inj.is_down(1, 6));
  EXPECT_FALSE(inj.is_down(1, 7));  // restart slot: up again
  EXPECT_FALSE(inj.down_in_window(1, 1, 3));
  EXPECT_TRUE(inj.down_in_window(1, 5, 9));

  EXPECT_TRUE(inj.link_verdict(0, 1, 2).drop);
  EXPECT_FALSE(inj.link_verdict(0, 1, 9).drop);           // window closed
  EXPECT_FALSE(inj.link_verdict(kAdversary, 1, 4).drop);  // never faulted
  // Counter-based purity: repeated and reordered queries agree.
  const faults::LinkVerdict first = inj.link_verdict(2, 3, 5);
  (void)inj.link_verdict(3, 2, 5);
  const faults::LinkVerdict again = inj.link_verdict(2, 3, 5);
  EXPECT_EQ(first.drop, again.drop);
  EXPECT_EQ(first.duplicate, again.duplicate);
  EXPECT_EQ(first.extra_delay, again.extra_delay);

  EXPECT_EQ(inj.heals_at(6), 1u);
  EXPECT_EQ(inj.heals_at(5), 0u);
  EXPECT_EQ(inj.partitions_active(4), 1u);
  EXPECT_EQ(inj.partitions_active(6), 0u);
}

TEST(FaultInjector, DownSlotDiscountCountsOnlyDownSlots) {
  // down_slots_in is the observed-Delta discount: it must count exactly the
  // down slots inside the window, never round a partial overlap up to the
  // whole window (the regression down_in_window's binary answer invited).
  faults::FaultPlan plan;
  plan.seed = 7;
  plan.churn.push_back({4, 122, 127});  // down during [122, 126]
  plan.churn.push_back({4, 140, 142});  // second window of the same party
  plan.churn.push_back({1, 10, 12});    // another party entirely
  const faults::FaultInjector inj(plan, 6, 200);

  EXPECT_EQ(inj.down_slots_in(4, 122, 126), 5u);  // full containment
  EXPECT_EQ(inj.down_slots_in(4, 23, 127), 5u);   // long window, short crash
  EXPECT_EQ(inj.down_slots_in(4, 124, 180), 3u + 2u);  // clipped + 2nd window
  EXPECT_EQ(inj.down_slots_in(4, 1, 121), 0u);    // ends before the crash
  EXPECT_EQ(inj.down_slots_in(4, 127, 139), 0u);  // restart slot is up
  EXPECT_EQ(inj.down_slots_in(1, 122, 126), 0u);  // wrong party
  // Consistency with the binary query: nonzero count iff the window is hit.
  EXPECT_TRUE(inj.down_in_window(4, 23, 127));
  EXPECT_FALSE(inj.down_in_window(4, 127, 139));
}

TEST(FaultInjector, EffectiveScheduleRemovesDownLeaders) {
  std::vector<SlotLeaders> slots(4);
  slots[0].honest = {0, 1};  // slot 1: before the crash
  slots[1].honest = {1};     // slot 2: down — leadership lost
  slots[2].honest = {1, 2};  // slot 3: down — only party 2 remains
  slots[3].honest = {1};     // slot 4: restarted
  const LeaderSchedule schedule(std::move(slots), 3);
  faults::FaultPlan plan;
  plan.churn.push_back({1, 2, 4});
  const faults::FaultInjector inj(plan, 3, 4);
  const LeaderSchedule effective = inj.effective_schedule(schedule);
  EXPECT_EQ(effective.leaders(1).honest, (std::vector<PartyId>{0, 1}));
  EXPECT_TRUE(effective.leaders(2).honest.empty());
  EXPECT_EQ(effective.leaders(3).honest, (std::vector<PartyId>{2}));
  EXPECT_EQ(effective.leaders(4).honest, (std::vector<PartyId>{1}));
}

// --- transport layer -------------------------------------------------------

TEST(FaultNetwork, PartitionSeversHonestLinksButNotAdversarialOnes) {
  faults::FaultPlan plan;
  plan.partitions.push_back({2, 5, {0, 0, 1, 1}});
  plan.churn.push_back({3, 2, 4});
  faults::FaultInjector inj(plan, 4, 20);
  Network net(4, 1);
  net.attach_faults(&inj);

  BlockTree tree;
  const Block b = make_block(genesis_block().hash, 2, 0, 0);
  tree.add(b);
  net.broadcast_chain(tree, b, 2);
  EXPECT_EQ(drain(net, 0, 3).size(), 1u);   // sender's own copy
  EXPECT_EQ(drain(net, 1, 3).size(), 1u);   // same side of the split
  EXPECT_TRUE(drain(net, 2, 10).empty());   // severed: never arrives
  EXPECT_TRUE(drain(net, 3, 10).empty());   // down: never arrives
  EXPECT_EQ(inj.stats().ships_dropped, 2u);

  // The adversarial channel pierces the partition (the coalition keeps links
  // into every component) but not a crashed endpoint.
  const Block adv = make_block(genesis_block().hash, 2, kAdversary, 1);
  net.inject(adv, 2, 3);
  EXPECT_EQ(drain(net, 2, 3).size(), 1u);
  net.inject(adv, 3, 3);
  EXPECT_TRUE(drain(net, 3, 10).empty());
  EXPECT_EQ(inj.stats().ships_dropped, 3u);
}

TEST(FaultNetwork, CrashWipesQueuedDeliveriesAndWatermarks) {
  faults::FaultPlan plan;
  plan.churn.push_back({1, 8, 10});
  faults::FaultInjector inj(plan, 2, 20);
  Network net(2, 1);
  net.attach_faults(&inj);

  BlockTree tree;
  const Block a = make_block(genesis_block().hash, 1, 0, 0);
  tree.add(a);
  net.broadcast_chain(tree, a, 1);  // due 2, both recipients
  net.crash_recipient(1);
  EXPECT_TRUE(drain(net, 1, 10).empty());  // in-flight copy lost with the queue
  EXPECT_GE(inj.stats().watermarks_invalidated, 1u);
  // The wiped watermarks force a full re-ship on the next chain broadcast.
  const Block b = make_block(a.hash, 2, 0, 0);
  tree.add(b);
  net.broadcast_chain(tree, b, 9);  // window active: per-recipient path
  const auto due = drain(net, 1, 10);
  EXPECT_TRUE(due.empty());  // recipient 1 still down at slot 9: dropped
  net.resync_ship(a, 1, 10);
  net.resync_ship(b, 1, 10);
  const auto resynced = drain(net, 1, 10);
  ASSERT_EQ(resynced.size(), 2u);  // restart re-sync restores the view
  EXPECT_EQ(resynced[0].hash, a.hash);
  EXPECT_EQ(resynced[1].hash, b.hash);
  EXPECT_EQ(inj.stats().resync_blocks, 2u);
}

// --- execution layer -------------------------------------------------------

TEST(FaultSimulation, PartitionHealsAndViewsReconverge) {
  // A 4-slot partition [5, 9) over a no-empty-slot schedule: blocks forged
  // inside it cross the split only at the heal re-sync, so the realized
  // honest delay lands in [1, 3]; after the heal all views reconverge.
  const SymbolLaw law{0.8, 0.2, 0.0};
  Rng rng(31);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 20, 4, rng);
  faults::FaultPlan plan;
  plan.partitions.push_back({5, 9, {0, 1, 0, 1}});
  faults::FaultInjector inj(plan, 4, 20);
  Simulation sim(schedule, SimulationConfig{TieBreak::ConsistentHash, 3}, 1, nullptr, &inj);
  sim.run();

  for (const HonestNode& node : sim.nodes())
    EXPECT_EQ(node.tree().block_count(), sim.public_tree().block_count());
  const FaultReport report = sim.fault_report();
  EXPECT_TRUE(report.faulted);
  EXPECT_FALSE(report.delivery_unbounded);
  EXPECT_GE(report.observed_delta, 1u);
  EXPECT_LE(report.observed_delta, 3u);
  EXPECT_EQ(report.stats.partitions_healed, 1u);
  EXPECT_GT(report.stats.ships_dropped, 0u);
  EXPECT_GT(report.stats.resync_blocks, 0u);
  EXPECT_EQ(report.stats.crashes, 0u);
}

TEST(FaultSimulation, CrashRestartResyncRestoresViewWithinDeltaPlusOne) {
  const SymbolLaw law{0.8, 0.2, 0.0};
  Rng rng(53);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 16, 4, rng);
  faults::FaultPlan plan;
  plan.churn.push_back({2, 6, 10});
  faults::FaultInjector inj(plan, 4, 16);
  Simulation sim(schedule, SimulationConfig{TieBreak::ConsistentHash, 9}, 1, nullptr, &inj);

  // Run through the restart slot: the onset re-sync plus the Delta-window
  // flush must hand party 2 the full public view again (restart + Delta + 1
  // covers everything in flight at restart time).
  sim.run_until(10);
  EXPECT_EQ(sim.nodes()[2].tree().block_count(), sim.public_tree().block_count());

  sim.run();
  for (const HonestNode& node : sim.nodes())
    EXPECT_EQ(node.tree().block_count(), sim.public_tree().block_count());

  std::size_t expected_skips = 0;
  for (std::size_t t = 6; t < 10; ++t) {
    const auto& honest = schedule.leaders(t).honest;
    expected_skips += static_cast<std::size_t>(
        std::count(honest.begin(), honest.end(), static_cast<PartyId>(2)));
  }
  const FaultReport report = sim.fault_report();
  EXPECT_EQ(report.leaderships_skipped, expected_skips);
  EXPECT_EQ(report.stats.crashes, 1u);
  EXPECT_EQ(report.stats.restarts, 1u);
  EXPECT_FALSE(report.delivery_unbounded);
}

TEST(FaultSimulation, FuzzedPlansKeepPublicTreeTheUnionOfViews) {
  // Randomized plans x randomized adversary: at every heal and at the end of
  // the run the public tree must equal the union of honest views — faults may
  // delay or destroy deliveries but never corrupt or invent them.
  using faults::FaultProfile;
  const SymbolLaw law{0.4, 0.25, 0.35};
  for (const std::uint64_t seed : {101u, 102u, 103u}) {
    for (const FaultProfile profile : {FaultProfile::PartitionHeal, FaultProfile::Churn,
                                       FaultProfile::LossyLinks, FaultProfile::Mixed}) {
      Rng rng(seed);
      const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 40, 5, rng);
      Rng plan_rng(seed ^ 0xfa01ULL);
      const faults::FaultPlan plan =
          faults::sample_fault_plan(profile, 5, 40, 2, plan_rng);
      faults::FaultInjector inj(plan, 5, 40);
      RandomizedAdversary adversary(seed);
      Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, rng()}, 2,
                     &adversary, &inj);

      std::vector<std::size_t> stops;
      for (const faults::PartitionSpec& p : plan.partitions)
        if (p.heal <= 40) stops.push_back(p.heal);
      std::sort(stops.begin(), stops.end());
      stops.push_back(40);
      const auto check_union = [&](std::size_t slot) {
        std::vector<BlockHash> seen;
        for (const HonestNode& node : sim.nodes())
          for (const BlockHash h : node.tree().arrival_order()) {
            EXPECT_TRUE(sim.public_tree().contains(h))
                << "lost node-accepted block at slot " << slot << ", seed " << seed
                << ", profile " << faults::fault_profile_name(profile);
            if (std::find(seen.begin(), seen.end(), h) == seen.end()) seen.push_back(h);
          }
        EXPECT_EQ(sim.public_tree().block_count(), seen.size())
            << "slot " << slot << ", seed " << seed;
      };
      for (const std::size_t stop : stops) {
        sim.run_until(stop);
        check_union(stop);
      }
    }
  }
}

// --- oracle layer ----------------------------------------------------------

oracle::RunConfig fuzz_run_config(faults::FaultProfile, std::size_t delta) {
  oracle::RunConfig rc;
  rc.law = oracle::default_matrix_laws()[0].law;
  rc.tie_break = TieBreak::AdversarialOrder;
  rc.strategy = oracle::Strategy::Randomized;
  rc.delta = delta;
  rc.horizon = 40;
  rc.honest_parties = 6;
  return rc;
}

TEST(FaultOracle, EmptyPlanIsObservationallyIdenticalToNoPlan) {
  // The fault layer's zero-overhead contract, at verdict granularity: an
  // attached injector with an empty plan must not change a single draw or
  // a single invariant outcome.
  const oracle::RunConfig rc = fuzz_run_config(faults::FaultProfile::None, 1);
  const engine::SeedSequence streams(77);
  for (std::size_t r = 0; r < 6; ++r) {
    Rng r1 = streams.stream(r);
    Rng r2 = streams.stream(r);
    const oracle::RunVerdict bare = oracle::check_execution(rc, r1);
    const faults::FaultPlan empty;
    const oracle::RunVerdict faulted = oracle::check_execution(rc, r2, &empty);
    EXPECT_TRUE(faulted.faulted);
    EXPECT_FALSE(faulted.degraded);
    EXPECT_EQ(faulted.faults_injected, 0u);
    // The adversary's legitimate hold-back is still observed — but never past
    // the configured bound when no faults are injected.
    EXPECT_LE(faulted.observed_delta, rc.delta);
    EXPECT_EQ(bare.code(), faulted.code());
    EXPECT_EQ(bare.simulated_violation, faulted.simulated_violation);
    EXPECT_EQ(bare.analytic_allows, faulted.analytic_allows);
    EXPECT_EQ(bare.fork_margin, faulted.fork_margin);
    EXPECT_EQ(bare.string_margin, faulted.string_margin);
  }
}

TEST(FaultOracle, FaultedRunsAreGradedNeverSilentlyCorrupt) {
  // The graceful-degradation contract over fuzzed plans: a within-bound run
  // satisfies the full invariant set; an out-of-bound run is flagged degraded
  // and must satisfy the invariants at its observed Delta (code 'd') or admit
  // no finite projection at all (code 'u'). '!' anywhere is a genuine bug.
  using faults::FaultProfile;
  std::size_t degraded_seen = 0, faulted_seen = 0;
  for (const FaultProfile profile : {FaultProfile::PartitionHeal, FaultProfile::Churn,
                                     FaultProfile::LossyLinks, FaultProfile::Asynchrony,
                                     FaultProfile::Mixed}) {
    const oracle::RunConfig rc = fuzz_run_config(profile, 2);
    const engine::SeedSequence streams(31337 + static_cast<std::uint64_t>(profile));
    for (std::size_t r = 0; r < 8; ++r) {
      Rng plan_rng = streams.stream(1000 + r);
      const faults::FaultPlan plan =
          faults::sample_fault_plan(profile, rc.honest_parties, rc.horizon, rc.delta,
                                    plan_rng);
      Rng rng = streams.stream(r);
      const oracle::RunVerdict v = oracle::check_execution(rc, rng, &plan);
      EXPECT_TRUE(v.faulted);
      EXPECT_NE(v.code(), '!') << faults::fault_profile_name(profile) << " run " << r
                               << " plan " << plan.serialize();
      if (!v.degraded) {
        EXPECT_TRUE(v.dominated());
        EXPECT_LE(v.observed_delta, rc.delta);
      } else {
        EXPECT_TRUE(v.code() == 'd' || v.code() == 'u');
      }
      if (v.faults_injected != 0) ++faulted_seen;
      if (v.degraded) ++degraded_seen;
    }
  }
  // The band must actually exercise both sides of the bound, or the contract
  // above is vacuous.
  EXPECT_GT(faulted_seen, 0u);
  EXPECT_GT(degraded_seen, 0u);
}

TEST(FaultOracle, LateCrashDoesNotExcusePreCrashDeliveryFailure) {
  // Regression (found by the E16 bench at Mixed stream 216): a link fault
  // dropped node 4's copy of a slot-22 block, the block sat on a dead branch
  // with no re-ship, and node 4 only received it via restart re-sync at slot
  // 127. A binary crash excusal let node 4's down-window [122, 127) mask the
  // whole 99-slot delivery failure, so the run was graded at observed
  // Delta = 6 and the F4 projection (honest depths strictly increase) failed
  // — '!', a claimed oracle bug. With down slots merely discounted the run
  // grades at its true observed Delta and the projection holds.
  oracle::RunConfig rc;
  rc.law = oracle::default_matrix_laws()[0].law;
  rc.tie_break = TieBreak::AdversarialOrder;
  rc.strategy = oracle::Strategy::Randomized;
  rc.delta = 2;
  rc.horizon = 160;
  rc.target_slot = 4;
  rc.k = 10;
  const engine::SeedSequence streams(16);
  Rng plan_rng = streams.stream(1'000'000 + 216);
  const faults::FaultPlan plan = faults::sample_fault_plan(
      faults::FaultProfile::Mixed, rc.honest_parties, rc.horizon, rc.delta, plan_rng);
  Rng rng = streams.stream(216);
  const oracle::RunVerdict v = oracle::check_execution(rc, rng, &plan);
  EXPECT_NE(v.code(), '!') << "plan " << plan.serialize();
  EXPECT_TRUE(v.degraded);  // the 99-slot gap must register as degradation
  EXPECT_GT(v.observed_delta, rc.delta);
}

TEST(FaultMatrix, FaultBandIsBitIdenticalAcrossThreadCounts) {
  oracle::MatrixConfig config = oracle::fault_band_config();
  config.runs = 3;
  config.mc_samples = 200;
  const oracle::MatrixResult r1 = [&] {
    oracle::MatrixConfig c = config;
    c.threads = 1;
    return oracle::run_scenario_matrix(c);
  }();
  const oracle::MatrixResult r2 = [&] {
    oracle::MatrixConfig c = config;
    c.threads = 2;
    return oracle::run_scenario_matrix(c);
  }();
  const oracle::MatrixResult r8 = [&] {
    oracle::MatrixConfig c = config;
    c.threads = 8;
    return oracle::run_scenario_matrix(c);
  }();
  EXPECT_EQ(r1.cells.size(),
            config.fault_profiles.size() * config.tie_breaks.size() * config.deltas.size() *
                config.strategies.size() * oracle::default_matrix_laws().size());
  EXPECT_TRUE(r1.cells == r2.cells);
  EXPECT_TRUE(r1.cells == r8.cells);

  // Axis bookkeeping: every cell echoes the profile its index encodes.
  for (std::size_t f = 0; f < config.fault_profiles.size(); ++f) {
    const std::size_t idx = oracle::cell_index(config, 1, 1, 1, 1, f);
    ASSERT_LT(idx, r1.cells.size());
    EXPECT_EQ(r1.cells[idx].fault_profile, config.fault_profiles[f]);
  }

  // The fault band's oracle contract in aggregate: zero invariant failures
  // (within-bound AND degraded-graded), real injected faults, and an
  // un-faulted None baseline.
  EXPECT_EQ(r1.total_domination_failures(), 0u);
  EXPECT_EQ(r1.total_fork_invalid(), 0u);
  EXPECT_EQ(r1.total_margin_breaches(), 0u);
  EXPECT_EQ(r1.total_recovery_failures(), 0u);
  std::size_t injected = 0;
  for (const oracle::CellVerdict& c : r1.cells) {
    if (c.fault_profile == faults::FaultProfile::None) {
      EXPECT_EQ(c.faults_injected, 0u);
      EXPECT_EQ(c.degraded_runs, 0u);
    }
    EXPECT_EQ(c.first_failure_run, SIZE_MAX) << "reproducer: " << c.first_failure_plan;
    injected += c.faults_injected;
  }
  EXPECT_GT(injected, 0u);
  EXPECT_GT(r1.total_degraded(), 0u);
  EXPECT_GT(r1.total_resync_blocks(), 0u);
}

}  // namespace
}  // namespace mh
