#include "core/uvp.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"
#include "core/catalan.hpp"
#include "fork/enumerate.hpp"
#include "support/random.hpp"

namespace mh {
namespace {

TEST(Uvp, HandExamples) {
  // w = hh: slot 1 is Catalan and uniquely honest -> UVP.
  EXPECT_TRUE(has_uvp_catalan(CharString::parse("hh"), 1));
  EXPECT_TRUE(has_uvp_margin(CharString::parse("hh"), 1));
  // w = hA: [1,2] is A-heavy... #h=1 vs #A=1: not hH-heavy, slot 1 not
  // right-Catalan -> no UVP.
  EXPECT_FALSE(has_uvp_catalan(CharString::parse("hA"), 1));
  EXPECT_FALSE(has_uvp_margin(CharString::parse("hA"), 1));
  // Multiply honest slots are outside Theorem 3's scope.
  EXPECT_FALSE(has_uvp_catalan(CharString::parse("Hh"), 1));
}

// Theorem 3 equivalence cross-check: the Catalan characterization and the
// Lemma-1 margin characterization are two independent code paths; they must
// agree on every uniquely honest slot of random strings.
struct UvpCase {
  double eps, ph;
  std::size_t length;
};

class UvpEquivalence : public ::testing::TestWithParam<UvpCase> {};

TEST_P(UvpEquivalence, CatalanIffNegativeMargins) {
  const auto [eps, ph, length] = GetParam();
  const SymbolLaw law = bernoulli_condition(eps, ph);
  Rng rng(20200728);
  for (int trial = 0; trial < 40; ++trial) {
    const CharString w = law.sample_string(length, rng);
    for (std::size_t s = 1; s <= w.size(); ++s) {
      if (!w.uniquely_honest(s)) continue;
      ASSERT_EQ(has_uvp_catalan(w, s), has_uvp_margin(w, s))
          << "w = " << w.to_string() << ", s = " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, UvpEquivalence,
                         ::testing::Values(UvpCase{0.3, 0.4, 24}, UvpCase{0.1, 0.2, 40},
                                           UvpCase{0.5, 0.3, 32}, UvpCase{0.05, 0.05, 48}));

// Fork-level soundness on tiny strings: if the slot has the UVP per Theorem 3,
// then EVERY enumerated fork exhibits the unique-vertex property structurally;
// if not, some enumerated fork must break it.
TEST(Uvp, StructuralAgreementOnTinyStrings) {
  // UVP quantifies over ALL forks, not only closed ones (the adversary may
  // leave adversarial tines dangling as future ammunition).
  EnumerationOptions options;
  options.closed_only = false;
  for (const char* text : {"hh", "hA", "hhA", "hAh", "hHh", "hAA", "hhH", "hHA"}) {
    const CharString w = CharString::parse(text);
    for (std::size_t s = 1; s <= w.size(); ++s) {
      if (!w.uniquely_honest(s)) continue;
      const bool predicted = has_uvp_catalan(w, s);
      bool all_forks = true;
      bool some_fork_breaks = false;
      enumerate_forks(w, options, [&](const Fork& f) {
        const bool holds = uvp_holds_in_fork(f, w, s);
        all_forks = all_forks && holds;
        some_fork_breaks = some_fork_breaks || !holds;
      });
      if (predicted) {
        EXPECT_TRUE(all_forks) << "w = " << text << ", s = " << s;
      } else {
        EXPECT_TRUE(some_fork_breaks) << "w = " << text << ", s = " << s;
      }
    }
  }
}

// Fact 3 + Fact 2: the bottleneck property likewise characterizes Catalan
// slots (any honest multiplicity).
TEST(Uvp, BottleneckMatchesCatalanOnTinyStrings) {
  EnumerationOptions options;
  options.closed_only = false;
  for (const char* text : {"hh", "Hh", "HH", "hA", "HAh", "hHA", "AhH", "HhA"}) {
    const CharString w = CharString::parse(text);
    for (std::size_t s = 1; s <= w.size(); ++s) {
      if (!w.honest(s)) continue;
      const bool catalan = is_catalan(w, s);
      bool all_forks = true;
      bool some_fork_breaks = false;
      enumerate_forks(w, options, [&](const Fork& f) {
        const bool holds = bottleneck_holds_in_fork(f, w, s);
        all_forks = all_forks && holds;
        some_fork_breaks = some_fork_breaks || !holds;
      });
      if (catalan) {
        EXPECT_TRUE(all_forks) << "w = " << text << ", s = " << s;
      } else {
        EXPECT_TRUE(some_fork_breaks) << "w = " << text << ", s = " << s;
      }
    }
  }
}

// Theorem 4: on bivalent strings, two consecutive Catalan slots grant the
// first one the UVP under consistent tie-breaking. Structural verification
// needs the A0' challenger, so here we verify the string-level predicate's
// basic behaviour.
TEST(Uvp, ConsecutiveCatalanPredicate) {
  EXPECT_TRUE(has_uvp_consecutive_catalan(CharString::parse("HH"), 1));
  EXPECT_FALSE(has_uvp_consecutive_catalan(CharString::parse("HA"), 1));
  EXPECT_TRUE(has_uvp_consecutive_catalan(CharString::parse("HHH"), 2));
  EXPECT_THROW(has_uvp_consecutive_catalan(CharString::parse("H"), 1), std::invalid_argument);
}

}  // namespace
}  // namespace mh
