#include "protocol/simulation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "chars/bernoulli.hpp"
#include "oracle/characteristic.hpp"
#include "protocol/adversary.hpp"

namespace mh {
namespace {

TEST(Simulation, HonestOnlyGrowsOneBlockPerActiveSlot) {
  // With no adversary and instant delivery, every slot with honest leaders
  // deepens the common chain by exactly one.
  const SymbolLaw law{0.6, 0.4, 0.0};  // no adversarial slots
  Rng rng(21);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 100, 6, rng);
  Simulation sim(schedule, SimulationConfig{TieBreak::ConsistentHash, 1}, 0, nullptr);
  sim.run();
  std::size_t active = 0;
  for (std::size_t t = 1; t <= 100; ++t)
    if (!schedule.leaders(t).honest.empty()) ++active;
  for (const HonestNode& node : sim.nodes())
    EXPECT_EQ(node.best_length(), active);
}

TEST(Simulation, HonestOnlyNoViolations) {
  const SymbolLaw law{0.5, 0.5, 0.0};
  Rng rng(22);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 150, 5, rng);
  for (TieBreak rule : {TieBreak::ConsistentHash, TieBreak::AdversarialOrder}) {
    Simulation sim(schedule, SimulationConfig{rule, 7}, 0, nullptr);
    sim.run();
    EXPECT_FALSE(sim.observed_settlement_violation(1));
    EXPECT_FALSE(sim.observed_cp_slot_violation(10));
    EXPECT_EQ(sim.observed_slot_divergence(), 0u);
  }
}

TEST(Simulation, ConcurrentLeadersForkThenConverge) {
  // Hand schedule: slot 1 has two honest leaders (both extend genesis), slot 2
  // has one leader (all views agree next slot).
  std::vector<SlotLeaders> slots(2);
  slots[0].honest = {0, 1};
  slots[1].honest = {2};
  const LeaderSchedule schedule(std::move(slots), 3);
  Simulation sim(schedule, SimulationConfig{TieBreak::ConsistentHash, 1}, 0, nullptr);
  sim.run_until(1);
  // Two concurrent blocks at depth 1 exist globally.
  EXPECT_EQ(sim.global_tree().max_length_heads().size(), 2u);
  sim.run();
  // The slot-2 leader extended the consistent choice; chains have length 2.
  for (const HonestNode& node : sim.nodes()) EXPECT_EQ(node.best_length(), 2u);
  EXPECT_FALSE(sim.observed_settlement_violation(1));
}

TEST(Simulation, DeltaDelaysDoNotLoseBlocks) {
  const SymbolLaw law{0.7, 0.3, 0.0};
  Rng rng(23);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 80, 4, rng);
  // Null adversary => no extra delays even with delta > 0.
  Simulation sim(schedule, SimulationConfig{TieBreak::ConsistentHash, 2}, 3, nullptr);
  sim.run();
  for (const HonestNode& node : sim.nodes())
    EXPECT_EQ(node.tree().block_count(), sim.global_tree().block_count());
}

TEST(Simulation, MintRequiresAdversarialSlot) {
  std::vector<SlotLeaders> slots(2);
  slots[0].honest = {0};
  slots[1].adversarial = true;
  const LeaderSchedule schedule(std::move(slots), 2);
  Simulation sim(schedule, SimulationConfig{}, 0, nullptr);
  sim.run_until(1);
  EXPECT_THROW(sim.mint_adversarial(genesis_block().hash, 1, 0), std::invalid_argument);
  const Block minted = sim.mint_adversarial(genesis_block().hash, 2, 0);
  EXPECT_TRUE(sim.global_tree().contains(minted.hash));
  // Minted blocks are private until injected.
  for (const HonestNode& node : sim.nodes())
    EXPECT_FALSE(node.tree().contains(minted.hash));
}

// Mints a private two-block chain and injects it to party 0 child-first
// within one slot, so the child is accepted only via the orphan flush.
class ChildFirstInjector : public Adversary {
 public:
  void on_slot_begin(std::size_t slot, Simulation& sim) override {
    if (slot != 4 || done_) return;
    done_ = true;
    m1 = sim.mint_adversarial(genesis_block().hash, 2, 1);
    m2 = sim.mint_adversarial(m1.hash, 3, 2);
    sim.network().inject(m2, 0, 4);  // child first: orphaned on arrival
    sim.network().inject(m1, 0, 4);
  }
  Block m1, m2;

 private:
  bool done_ = false;
};

TEST(Simulation, PublicTreeSeesOrphansAcceptedOutOfOrder) {
  // Regression for the headline seed bug: deliver_due mirrored a block into
  // the public tree only when the node accepted it on FIRST receive, so a
  // block admitted later by the orphan flush was silently lost and the
  // resulting maximal-chain disagreement invisible to
  // observed_settlement_violation.
  std::vector<SlotLeaders> slots(5);
  slots[0].honest = {0};     // A at slot 1
  slots[1].adversarial = true;
  slots[2].adversarial = true;
  slots[3].honest = {1};     // B on A at slot 4
  const LeaderSchedule schedule(std::move(slots), 2);
  ChildFirstInjector adversary;
  Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, 5}, 0, &adversary);
  sim.run();

  // Party 0 accepted the whole private chain (the child via flush)...
  EXPECT_TRUE(sim.nodes()[0].tree().contains(adversary.m1.hash));
  EXPECT_TRUE(sim.nodes()[0].tree().contains(adversary.m2.hash));
  // ...so the public tree must hold it too,
  EXPECT_TRUE(sim.public_tree().contains(adversary.m2.hash));
  // and the two tied maximal public chains disagree about slot 1: the honest
  // chain settles A there, the injected chain skips it.
  EXPECT_EQ(sim.public_tree().max_length_heads().size(), 2u);
  EXPECT_TRUE(sim.observed_settlement_violation(1));
}

// Holds back the slot-2 block from party 1 by one extra slot, so party 1
// forges its slot-3 block on the slot-1 chain: two tied maximal chains, one
// holding a block at slot 2, the other skipping slot 2.
class HoldBackSlot2 : public Adversary {
 public:
  std::vector<std::size_t> delivery_delays(const Block& block, std::size_t,
                                           Simulation& sim) override {
    std::vector<std::size_t> delays(sim.nodes().size(), 0);
    if (block.slot == 2) delays[1] = 1;
    return delays;
  }
};

TEST(Simulation, SlotSkippingVerdictMatchesOracleProjection) {
  // One maximal chain holds a block at slot s = 2, the other skips s but
  // agrees on the slot-1 prefix: Definition 3 counts that as a settlement
  // disagreement about s (an observer handed either chain settles different
  // content), and the analytic side — the Definition-22 projection of the
  // same schedule — must allow what the execution exhibited.
  std::vector<SlotLeaders> slots(3);
  slots[0].honest = {0};  // A
  slots[1].honest = {0};  // B on A, held back from party 1
  slots[2].honest = {1};  // E on A (party 1 has not seen B yet)
  const LeaderSchedule schedule(std::move(slots), 2);
  HoldBackSlot2 adversary;
  const std::size_t delta = 1;
  Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, 9}, delta,
                 &adversary);
  sim.run();

  const std::vector<BlockHash> heads = sim.public_tree().max_length_heads();
  ASSERT_EQ(heads.size(), 2u);
  // One head's chain has a block labelled exactly 2, the other skips slot 2.
  const auto exact_at_2 = [&](BlockHash head) {
    const auto deepest = sim.public_tree().block_at_slot(head, 2);
    return deepest && sim.public_tree().block(*deepest).slot == 2;
  };
  EXPECT_NE(exact_at_2(heads[0]), exact_at_2(heads[1]));
  // Both agree on the slot-1 prefix, so slot 1 is NOT in dispute...
  EXPECT_FALSE(sim.observed_settlement_violation(1));
  // ...but slot 2 is.
  EXPECT_TRUE(sim.observed_settlement_violation(2));

  // The oracle's Definition-22 projection of the same execution must agree
  // that a slot-2 violation is analytically permitted (domination): the
  // Delta-reduction turns the delayed h-run into an effective tie.
  const oracle::AnalyticProjection view = oracle::project_schedule(schedule, delta, 2);
  EXPECT_TRUE(oracle::margin_allows_violation(view) ||
              oracle::prefix_admits_distinct_balance(view));
}

TEST(Simulation, PublicTreeIsExactlyTheUnionOfNodeViews) {
  // Under a randomized adversary (delays, partial leaks, reordering), the
  // public tree must at all times equal the union of honest views: every
  // node-accepted block is public (the seed lost flushed orphans here) and
  // nothing else is.
  const SymbolLaw law{0.4, 0.25, 0.35};
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    Rng rng(seed);
    const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 60, 4, rng);
    RandomizedAdversary adversary(seed);
    Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, rng()}, 2,
                   &adversary);
    sim.run();
    std::size_t union_count = 0;
    std::vector<BlockHash> seen;
    for (const HonestNode& node : sim.nodes())
      for (const BlockHash h : node.tree().arrival_order()) {
        EXPECT_TRUE(sim.public_tree().contains(h)) << "lost node-accepted block, seed " << seed;
        if (std::find(seen.begin(), seen.end(), h) == seen.end()) {
          seen.push_back(h);
          ++union_count;
        }
      }
    EXPECT_EQ(sim.public_tree().block_count(), union_count) << "seed " << seed;
  }
}

TEST(Simulation, RunUntilIsIncremental) {
  const SymbolLaw law{1.0, 0.0, 0.0};
  Rng rng(24);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 50, 3, rng);
  Simulation sim(schedule, SimulationConfig{}, 0, nullptr);
  sim.run_until(10);
  EXPECT_EQ(sim.current_slot(), 10u);
  sim.run_until(10);  // no-op
  EXPECT_EQ(sim.current_slot(), 10u);
  sim.run();
  EXPECT_EQ(sim.current_slot(), 50u);
  EXPECT_THROW(sim.run_until(51), std::invalid_argument);
}

}  // namespace
}  // namespace mh
