#include "protocol/simulation.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"

namespace mh {
namespace {

TEST(Simulation, HonestOnlyGrowsOneBlockPerActiveSlot) {
  // With no adversary and instant delivery, every slot with honest leaders
  // deepens the common chain by exactly one.
  const SymbolLaw law{0.6, 0.4, 0.0};  // no adversarial slots
  Rng rng(21);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 100, 6, rng);
  Simulation sim(schedule, SimulationConfig{TieBreak::ConsistentHash, 1}, 0, nullptr);
  sim.run();
  std::size_t active = 0;
  for (std::size_t t = 1; t <= 100; ++t)
    if (!schedule.leaders(t).honest.empty()) ++active;
  for (const HonestNode& node : sim.nodes())
    EXPECT_EQ(node.best_length(), active);
}

TEST(Simulation, HonestOnlyNoViolations) {
  const SymbolLaw law{0.5, 0.5, 0.0};
  Rng rng(22);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 150, 5, rng);
  for (TieBreak rule : {TieBreak::ConsistentHash, TieBreak::AdversarialOrder}) {
    Simulation sim(schedule, SimulationConfig{rule, 7}, 0, nullptr);
    sim.run();
    EXPECT_FALSE(sim.observed_settlement_violation(1));
    EXPECT_FALSE(sim.observed_cp_slot_violation(10));
    EXPECT_EQ(sim.observed_slot_divergence(), 0u);
  }
}

TEST(Simulation, ConcurrentLeadersForkThenConverge) {
  // Hand schedule: slot 1 has two honest leaders (both extend genesis), slot 2
  // has one leader (all views agree next slot).
  std::vector<SlotLeaders> slots(2);
  slots[0].honest = {0, 1};
  slots[1].honest = {2};
  const LeaderSchedule schedule(std::move(slots), 3);
  Simulation sim(schedule, SimulationConfig{TieBreak::ConsistentHash, 1}, 0, nullptr);
  sim.run_until(1);
  // Two concurrent blocks at depth 1 exist globally.
  EXPECT_EQ(sim.global_tree().max_length_heads().size(), 2u);
  sim.run();
  // The slot-2 leader extended the consistent choice; chains have length 2.
  for (const HonestNode& node : sim.nodes()) EXPECT_EQ(node.best_length(), 2u);
  EXPECT_FALSE(sim.observed_settlement_violation(1));
}

TEST(Simulation, DeltaDelaysDoNotLoseBlocks) {
  const SymbolLaw law{0.7, 0.3, 0.0};
  Rng rng(23);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 80, 4, rng);
  // Null adversary => no extra delays even with delta > 0.
  Simulation sim(schedule, SimulationConfig{TieBreak::ConsistentHash, 2}, 3, nullptr);
  sim.run();
  for (const HonestNode& node : sim.nodes())
    EXPECT_EQ(node.tree().block_count(), sim.global_tree().block_count());
}

TEST(Simulation, MintRequiresAdversarialSlot) {
  std::vector<SlotLeaders> slots(2);
  slots[0].honest = {0};
  slots[1].adversarial = true;
  const LeaderSchedule schedule(std::move(slots), 2);
  Simulation sim(schedule, SimulationConfig{}, 0, nullptr);
  sim.run_until(1);
  EXPECT_THROW(sim.mint_adversarial(genesis_block().hash, 1, 0), std::invalid_argument);
  const Block minted = sim.mint_adversarial(genesis_block().hash, 2, 0);
  EXPECT_TRUE(sim.global_tree().contains(minted.hash));
  // Minted blocks are private until injected.
  for (const HonestNode& node : sim.nodes())
    EXPECT_FALSE(node.tree().contains(minted.hash));
}

TEST(Simulation, RunUntilIsIncremental) {
  const SymbolLaw law{1.0, 0.0, 0.0};
  Rng rng(24);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 50, 3, rng);
  Simulation sim(schedule, SimulationConfig{}, 0, nullptr);
  sim.run_until(10);
  EXPECT_EQ(sim.current_slot(), 10u);
  sim.run_until(10);  // no-op
  EXPECT_EQ(sim.current_slot(), 10u);
  sim.run();
  EXPECT_EQ(sim.current_slot(), 50u);
  EXPECT_THROW(sim.run_until(51), std::invalid_argument);
}

}  // namespace
}  // namespace mh
