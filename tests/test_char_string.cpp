#include "chars/char_string.hpp"

#include <gtest/gtest.h>

namespace mh {
namespace {

TEST(CharString, ParseRoundTrip) {
  const CharString w = CharString::parse("hAhAhHAAH");
  EXPECT_EQ(w.size(), 9u);
  EXPECT_EQ(w.to_string(), "hAhAhHAAH");
}

TEST(CharString, ParseAcceptsSpacesAndBits) {
  EXPECT_EQ(CharString::parse("h A h").to_string(), "hAh");
  // Blum-et-al. bit notation: 0 = uniquely honest, 1 = adversarial.
  EXPECT_EQ(CharString::parse("0101").to_string(), "hAhA");
}

TEST(CharString, ParseRejectsGarbage) {
  EXPECT_THROW(CharString::parse("hxA"), std::invalid_argument);
}

TEST(CharString, OneIndexedAccess) {
  const CharString w = CharString::parse("hHA");
  EXPECT_EQ(w.at(1), Symbol::h);
  EXPECT_EQ(w.at(2), Symbol::H);
  EXPECT_EQ(w.at(3), Symbol::A);
  EXPECT_THROW(static_cast<void>(w.at(0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(w.at(4)), std::invalid_argument);
}

TEST(CharString, HonestPredicates) {
  const CharString w = CharString::parse("hHA");
  EXPECT_TRUE(w.honest(1));
  EXPECT_TRUE(w.honest(2));
  EXPECT_FALSE(w.honest(3));
  EXPECT_TRUE(w.uniquely_honest(1));
  EXPECT_FALSE(w.uniquely_honest(2));
  EXPECT_TRUE(w.adversarial(3));
}

TEST(CharString, IntervalCounts) {
  const CharString w = CharString::parse("hAhAhHAAH");
  EXPECT_EQ(w.count_adversarial(1, 9), 4u);
  EXPECT_EQ(w.count_honest(1, 9), 5u);
  EXPECT_EQ(w.count_adversarial(2, 4), 2u);
  EXPECT_EQ(w.count(Symbol::H, 1, 9), 2u);
  EXPECT_EQ(w.count(Symbol::h, 1, 5), 3u);
  EXPECT_EQ(w.count_honest(5, 4), 0u);  // empty interval
}

TEST(CharString, HeavinessPredicates) {
  const CharString w = CharString::parse("hAhAhHAAH");
  EXPECT_TRUE(w.hH_heavy(1, 9));    // 5 honest vs 4 adversarial
  EXPECT_TRUE(w.A_heavy(2, 4));     // A h A: 2 vs 1
  EXPECT_TRUE(w.A_heavy(2, 2));
  EXPECT_FALSE(w.hH_heavy(7, 8));   // AA
  EXPECT_TRUE(w.hH_heavy(5, 6));    // hH
}

TEST(CharString, PrefixSuffixConcat) {
  const CharString w = CharString::parse("hAhAH");
  EXPECT_EQ(w.prefix(2).to_string(), "hA");
  EXPECT_EQ(w.suffix(3).to_string(), "hAH");
  EXPECT_EQ(w.prefix(0).to_string(), "");
  EXPECT_EQ(w.suffix(6).to_string(), "");
  EXPECT_EQ(w.prefix(2).concat(w.suffix(3)), w);
}

TEST(CharString, Bivalent) {
  EXPECT_TRUE(is_bivalent(CharString::parse("HAHA")));
  EXPECT_FALSE(is_bivalent(CharString::parse("HAh")));
  EXPECT_TRUE(is_bivalent(CharString::parse("")));
}

TEST(CharString, PushBackMaintainsCounts) {
  CharString w;
  w.push_back(Symbol::A);
  w.push_back(Symbol::h);
  w.push_back(Symbol::H);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.to_string(), "AhH");
  EXPECT_EQ(w.count_adversarial(1, 3), 1u);
  EXPECT_EQ(w.count_honest(2, 3), 2u);
  EXPECT_TRUE(w.hH_heavy(1, 3));
}

TEST(CharString, PushBackOntoParsedString) {
  CharString w = CharString::parse("hA");
  w.push_back(Symbol::A);
  EXPECT_EQ(w.count_adversarial(1, 3), 2u);
}

}  // namespace
}  // namespace mh
