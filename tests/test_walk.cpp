#include "chars/walk.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"
#include "support/random.hpp"

namespace mh {
namespace {

TEST(CharWalk, PositionsMatchHandComputation) {
  // w = hAhAhHAAH: steps -1 +1 -1 +1 -1 -1 +1 +1 -1.
  const CharWalk walk(CharString::parse("hAhAhHAAH"));
  const std::int64_t expected[] = {0, -1, 0, -1, 0, -1, -2, -1, 0, -1};
  for (std::size_t t = 0; t <= 9; ++t) EXPECT_EQ(walk.position(t), expected[t]) << t;
}

TEST(CharWalk, PositionEqualsAdversarialMinusHonest) {
  Rng rng(5);
  const SymbolLaw law = bernoulli_condition(0.2, 0.3);
  for (int trial = 0; trial < 20; ++trial) {
    const CharString w = law.sample_string(64, rng);
    const CharWalk walk(w);
    for (std::size_t t = 1; t <= w.size(); ++t) {
      const std::int64_t expected = static_cast<std::int64_t>(w.count_adversarial(1, t)) -
                                    static_cast<std::int64_t>(w.count_honest(1, t));
      EXPECT_EQ(walk.position(t), expected);
    }
  }
}

TEST(CharWalk, PrefixMinAndSuffixMax) {
  const CharWalk walk(CharString::parse("hAhAhHAAH"));
  EXPECT_EQ(walk.prefix_min(0), 0);
  EXPECT_EQ(walk.prefix_min(5), -1);
  EXPECT_EQ(walk.prefix_min(6), -2);
  EXPECT_EQ(walk.suffix_max(6), 0);
  EXPECT_EQ(walk.suffix_max(9), -1);
}

TEST(CharWalk, StrictNewMinimumDetectsHeavyPrefixes) {
  // An interval [l, s] is hH-heavy iff S_s - S_{l-1} < 0; a strict new minimum
  // at s makes every such interval heavy.
  const CharString w = CharString::parse("hAhAhHAAH");
  const CharWalk walk(w);
  for (std::size_t s = 1; s <= w.size(); ++s) {
    bool all_heavy = true;
    for (std::size_t l = 1; l <= s; ++l)
      if (!w.hH_heavy(l, s)) all_heavy = false;
    EXPECT_EQ(walk.strict_new_minimum(s), all_heavy) << "slot " << s;
  }
}

TEST(CharWalk, BoundsChecked) {
  const CharWalk walk(CharString::parse("hA"));
  EXPECT_THROW(static_cast<void>(walk.position(3)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(walk.strict_new_minimum(0)), std::invalid_argument);
}

}  // namespace
}  // namespace mh
