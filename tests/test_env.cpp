// The strict env-knob parser (support/env.hpp): the shared replacement for
// the ad-hoc parsers that treated "false"/"off" as enabled (old bench
// env_flag) and silently coerced garbage to the fallback (MH_THREADS,
// MH_OBS_BENCH_REPS). Malformed values must throw with the variable name in
// the message, never fall back.
#include "support/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "engine/thread_pool.hpp"

namespace {

constexpr const char* kVar = "MH_TEST_ENV_KNOB";

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv(kVar); }
  void set(const char* value) { ::setenv(kVar, value, 1); }
};

TEST_F(EnvTest, FlagUnsetOrEmptyIsFalse) {
  ::unsetenv(kVar);
  EXPECT_FALSE(mh::env::flag(kVar));
  set("");
  EXPECT_FALSE(mh::env::flag(kVar));
}

TEST_F(EnvTest, FlagAcceptsBooleanSpellingsCaseInsensitively) {
  for (const char* v : {"1", "true", "TRUE", "on", "On", "yes", "YES"}) {
    set(v);
    EXPECT_TRUE(mh::env::flag(kVar)) << v;
  }
  for (const char* v : {"0", "false", "FALSE", "off", "Off", "no", "NO"}) {
    set(v);
    EXPECT_FALSE(mh::env::flag(kVar)) << v;
  }
}

// The original bug: env_flag("X") was "set and not 0", so X=false and X=off
// enabled the knob. They must parse as disabled now, and junk must throw.
TEST_F(EnvTest, FlagRejectsMalformedInsteadOfEnabling) {
  set("flase");  // the typo that used to silently enable
  EXPECT_THROW((void)mh::env::flag(kVar), std::invalid_argument);
  set("2");
  EXPECT_THROW((void)mh::env::flag(kVar), std::invalid_argument);
  set(" 1");
  EXPECT_THROW((void)mh::env::flag(kVar), std::invalid_argument);
}

TEST_F(EnvTest, FlagErrorNamesTheVariableAndValue) {
  set("maybe");
  try {
    (void)mh::env::flag(kVar);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(kVar), std::string::npos) << what;
    EXPECT_NE(what.find("maybe"), std::string::npos) << what;
  }
}

TEST_F(EnvTest, SizeParsesDigitsAndFallsBackOnlyWhenUnset) {
  ::unsetenv(kVar);
  EXPECT_EQ(mh::env::size(kVar, 7), 7u);
  set("");
  EXPECT_EQ(mh::env::size(kVar, 7), 7u);
  set("0");
  EXPECT_EQ(mh::env::size(kVar, 7), 0u);
  set("123456789");
  EXPECT_EQ(mh::env::size(kVar, 7), 123456789u);
}

// The original bug: strtoull-based knobs coerced "16x" to 16 and "-1" to
// 2^64-1 (or silently used the fallback). All malformed forms must throw.
TEST_F(EnvTest, SizeRejectsMalformed) {
  for (const char* v : {"-1", "16x", "x16", "1.5", " 4", "4 ", "0x10",
                        "99999999999999999999999999"}) {
    set(v);
    EXPECT_THROW((void)mh::env::size(kVar, 7), std::invalid_argument) << v;
  }
}

TEST_F(EnvTest, SizeEnforcesMinimum) {
  set("0");
  EXPECT_THROW((void)mh::env::size(kVar, 7, 1), std::invalid_argument);
  set("1");
  EXPECT_EQ(mh::env::size(kVar, 7, 1), 1u);
}

TEST_F(EnvTest, PositiveNumberParsesAndRejects) {
  ::unsetenv(kVar);
  EXPECT_DOUBLE_EQ(mh::env::positive_number(kVar, 2.0), 2.0);
  set("3.25");
  EXPECT_DOUBLE_EQ(mh::env::positive_number(kVar, 2.0), 3.25);
  for (const char* v : {"0", "-1.5", "nan", "inf", "2%", "fast"}) {
    set(v);
    EXPECT_THROW((void)mh::env::positive_number(kVar, 2.0), std::invalid_argument) << v;
  }
}

// threads_from_env is the highest-traffic consumer (every bench): unset and
// 0 keep meaning "auto", garbage now throws instead of running at the
// default width.
TEST(ThreadsFromEnvTest, StrictMhThreads) {
  const char* saved = std::getenv("MH_THREADS");
  const std::string saved_copy = saved ? saved : "";

  ::unsetenv("MH_THREADS");
  EXPECT_EQ(mh::engine::threads_from_env(), 0u);
  ::setenv("MH_THREADS", "4", 1);
  EXPECT_EQ(mh::engine::threads_from_env(), 4u);
  ::setenv("MH_THREADS", "0", 1);
  EXPECT_EQ(mh::engine::threads_from_env(), 0u);
  ::setenv("MH_THREADS", "fuor", 1);
  EXPECT_THROW((void)mh::engine::threads_from_env(), std::invalid_argument);

  if (saved)
    ::setenv("MH_THREADS", saved_copy.c_str(), 1);
  else
    ::unsetenv("MH_THREADS");
}

}  // namespace
