// The strict env-knob parser (support/env.hpp): the shared replacement for
// the ad-hoc parsers that treated "false"/"off" as enabled (old bench
// env_flag) and silently coerced garbage to the fallback (MH_THREADS,
// MH_OBS_BENCH_REPS). Malformed values must throw with the variable name in
// the message, never fall back.
#include "support/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "engine/thread_pool.hpp"
#include "protocol/net/config.hpp"

namespace {

constexpr const char* kVar = "MH_TEST_ENV_KNOB";

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv(kVar); }
  void set(const char* value) { ::setenv(kVar, value, 1); }
};

TEST_F(EnvTest, FlagUnsetOrEmptyIsFalse) {
  ::unsetenv(kVar);
  EXPECT_FALSE(mh::env::flag(kVar));
  set("");
  EXPECT_FALSE(mh::env::flag(kVar));
}

TEST_F(EnvTest, FlagAcceptsBooleanSpellingsCaseInsensitively) {
  for (const char* v : {"1", "true", "TRUE", "on", "On", "yes", "YES"}) {
    set(v);
    EXPECT_TRUE(mh::env::flag(kVar)) << v;
  }
  for (const char* v : {"0", "false", "FALSE", "off", "Off", "no", "NO"}) {
    set(v);
    EXPECT_FALSE(mh::env::flag(kVar)) << v;
  }
}

// The original bug: env_flag("X") was "set and not 0", so X=false and X=off
// enabled the knob. They must parse as disabled now, and junk must throw.
TEST_F(EnvTest, FlagRejectsMalformedInsteadOfEnabling) {
  set("flase");  // the typo that used to silently enable
  EXPECT_THROW((void)mh::env::flag(kVar), std::invalid_argument);
  set("2");
  EXPECT_THROW((void)mh::env::flag(kVar), std::invalid_argument);
  set(" 1");
  EXPECT_THROW((void)mh::env::flag(kVar), std::invalid_argument);
}

TEST_F(EnvTest, FlagErrorNamesTheVariableAndValue) {
  set("maybe");
  try {
    (void)mh::env::flag(kVar);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(kVar), std::string::npos) << what;
    EXPECT_NE(what.find("maybe"), std::string::npos) << what;
  }
}

TEST_F(EnvTest, SizeParsesDigitsAndFallsBackOnlyWhenUnset) {
  ::unsetenv(kVar);
  EXPECT_EQ(mh::env::size(kVar, 7), 7u);
  set("");
  EXPECT_EQ(mh::env::size(kVar, 7), 7u);
  set("0");
  EXPECT_EQ(mh::env::size(kVar, 7), 0u);
  set("123456789");
  EXPECT_EQ(mh::env::size(kVar, 7), 123456789u);
}

// The original bug: strtoull-based knobs coerced "16x" to 16 and "-1" to
// 2^64-1 (or silently used the fallback). All malformed forms must throw.
TEST_F(EnvTest, SizeRejectsMalformed) {
  for (const char* v : {"-1", "16x", "x16", "1.5", " 4", "4 ", "0x10",
                        "99999999999999999999999999"}) {
    set(v);
    EXPECT_THROW((void)mh::env::size(kVar, 7), std::invalid_argument) << v;
  }
}

TEST_F(EnvTest, SizeEnforcesMinimum) {
  set("0");
  EXPECT_THROW((void)mh::env::size(kVar, 7, 1), std::invalid_argument);
  set("1");
  EXPECT_EQ(mh::env::size(kVar, 7, 1), 1u);
}

TEST_F(EnvTest, PositiveNumberParsesAndRejects) {
  ::unsetenv(kVar);
  EXPECT_DOUBLE_EQ(mh::env::positive_number(kVar, 2.0), 2.0);
  set("3.25");
  EXPECT_DOUBLE_EQ(mh::env::positive_number(kVar, 2.0), 3.25);
  for (const char* v : {"0", "-1.5", "nan", "inf", "2%", "fast"}) {
    set(v);
    EXPECT_THROW((void)mh::env::positive_number(kVar, 2.0), std::invalid_argument) << v;
  }
}

TEST_F(EnvTest, ChoiceMatchesTokensCaseInsensitivelyOrFallsBack) {
  static const char* const kTokens[] = {"alpha", "beta", "gamma"};
  ::unsetenv(kVar);
  EXPECT_EQ(mh::env::choice(kVar, kTokens, 3, 1), 1u);
  set("");
  EXPECT_EQ(mh::env::choice(kVar, kTokens, 3, 2), 2u);
  set("alpha");
  EXPECT_EQ(mh::env::choice(kVar, kTokens, 3, 0), 0u);
  set("GaMmA");
  EXPECT_EQ(mh::env::choice(kVar, kTokens, 3, 0), 2u);
}

TEST_F(EnvTest, ChoiceRejectsUnknownTokensListingTheAccepted) {
  static const char* const kTokens[] = {"alpha", "beta"};
  set("alpha!");
  try {
    (void)mh::env::choice(kVar, kTokens, 2, 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(kVar), std::string::npos) << what;
    EXPECT_NE(what.find("alpha"), std::string::npos) << what;
    EXPECT_NE(what.find("beta"), std::string::npos) << what;
  }
}

// The MH_NET_* knob surface: every malformed value throws up front (never a
// silently degenerate network), and well-formed values land in the config.
class NetEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const char* v : {"MH_NET_TOPOLOGY", "MH_NET_K", "MH_NET_LATENCY",
                          "MH_NET_LATENCY_FIXED", "MH_NET_LATENCY_CAP", "MH_NET_LATENCY_P",
                          "MH_NET_BANDWIDTH", "MH_NET_SEED"})
      ::unsetenv(v);
  }
};

TEST_F(NetEnvTest, UnsetKnobsKeepTheBaseConfig) {
  mh::net::NetConfig base;
  base.topology = mh::net::TopologyKind::Ring;
  base.bandwidth = 7;
  const mh::net::NetConfig cfg = mh::net::net_config_from_env(base);
  EXPECT_EQ(cfg, base);
}

TEST_F(NetEnvTest, WellFormedKnobsOverrideTheBase) {
  ::setenv("MH_NET_TOPOLOGY", "two-cluster", 1);
  ::setenv("MH_NET_LATENCY", "geometric", 1);
  ::setenv("MH_NET_LATENCY_CAP", "4", 1);
  ::setenv("MH_NET_LATENCY_P", "0.25", 1);
  ::setenv("MH_NET_BANDWIDTH", "3", 1);
  const mh::net::NetConfig cfg = mh::net::net_config_from_env();
  EXPECT_EQ(cfg.topology, mh::net::TopologyKind::TwoClusterBridge);
  EXPECT_EQ(cfg.latency.kind, mh::net::LatencyKind::Geometric);
  EXPECT_EQ(cfg.latency.cap, 4u);
  EXPECT_DOUBLE_EQ(cfg.latency.p, 0.25);
  EXPECT_EQ(cfg.bandwidth, 3u);
  EXPECT_TRUE(cfg.heterogeneous());
}

TEST_F(NetEnvTest, MalformedKnobsThrow) {
  ::setenv("MH_NET_TOPOLOGY", "mesh!", 1);
  EXPECT_THROW((void)mh::net::net_config_from_env(), std::invalid_argument);
  ::unsetenv("MH_NET_TOPOLOGY");

  ::setenv("MH_NET_K", "0", 1);  // below the min the parser enforces
  EXPECT_THROW((void)mh::net::net_config_from_env(), std::invalid_argument);
  ::setenv("MH_NET_K", "3x", 1);
  EXPECT_THROW((void)mh::net::net_config_from_env(), std::invalid_argument);
  ::unsetenv("MH_NET_K");

  ::setenv("MH_NET_LATENCY", "poisson", 1);
  EXPECT_THROW((void)mh::net::net_config_from_env(), std::invalid_argument);
  ::unsetenv("MH_NET_LATENCY");

  // A geometric tail weight outside (0, 1) is rejected at parse time, before
  // any Network exists to trip over it.
  ::setenv("MH_NET_LATENCY", "geometric", 1);
  ::setenv("MH_NET_LATENCY_P", "1.5", 1);
  EXPECT_THROW((void)mh::net::net_config_from_env(), std::invalid_argument);
  ::setenv("MH_NET_LATENCY_P", "-0.5", 1);
  EXPECT_THROW((void)mh::net::net_config_from_env(), std::invalid_argument);
}

// threads_from_env is the highest-traffic consumer (every bench): unset and
// 0 keep meaning "auto", garbage now throws instead of running at the
// default width.
TEST(ThreadsFromEnvTest, StrictMhThreads) {
  const char* saved = std::getenv("MH_THREADS");
  const std::string saved_copy = saved ? saved : "";

  ::unsetenv("MH_THREADS");
  EXPECT_EQ(mh::engine::threads_from_env(), 0u);
  ::setenv("MH_THREADS", "4", 1);
  EXPECT_EQ(mh::engine::threads_from_env(), 4u);
  ::setenv("MH_THREADS", "0", 1);
  EXPECT_EQ(mh::engine::threads_from_env(), 0u);
  ::setenv("MH_THREADS", "fuor", 1);
  EXPECT_THROW((void)mh::engine::threads_from_env(), std::invalid_argument);

  if (saved)
    ::setenv("MH_THREADS", saved_copy.c_str(), 1);
  else
    ::unsetenv("MH_THREADS");
}

}  // namespace
