#include "protocol/ledger.hpp"

#include <gtest/gtest.h>

namespace mh {
namespace {

struct LedgerFixture {
  BlockTree tree;
  PayloadStore store;
  Block a1, a2, b1, b2;

  LedgerFixture() {
    // Two branches from genesis: a1 -> a2 (the "honest" chain) and b1 -> b2
    // (the attacker's chain). tx 1 and tx 2 spend the same coin (class 7).
    a1 = make_block(genesis_block().hash, 1, 0, 0);
    a2 = make_block(a1.hash, 2, 1, 0);
    b1 = make_block(genesis_block().hash, 3, kAdversary, 0);
    b2 = make_block(b1.hash, 4, kAdversary, 0);
    for (const Block& b : {a1, a2, b1, b2}) tree.add(b);
    store.attach(a1.hash, {Transaction{1, 7, 0, 100}});
    store.attach(b1.hash, {Transaction{2, 7, 9, 100}});
  }
};

TEST(Ledger, ReplayAcceptsFirstPerConflictClass) {
  LedgerFixture fx;
  const LedgerState state = replay_chain(fx.tree, fx.a2.hash, fx.store);
  ASSERT_EQ(state.accepted.size(), 1u);
  EXPECT_EQ(state.accepted[0].id, 1u);
  EXPECT_TRUE(state.rejected.empty());
}

TEST(Ledger, ConflictingTransactionOnOneChainIsRejected) {
  LedgerFixture fx;
  // A later block on the a-chain tries to respend class 7.
  const Block a3 = make_block(fx.a2.hash, 5, 0, 0);
  fx.tree.add(a3);
  fx.store.attach(a3.hash, {Transaction{3, 7, 2, 100}});
  const LedgerState state = replay_chain(fx.tree, a3.hash, fx.store);
  ASSERT_EQ(state.accepted.size(), 1u);
  EXPECT_EQ(state.accepted[0].id, 1u);
  ASSERT_EQ(state.rejected.size(), 1u);
  EXPECT_EQ(state.rejected[0].id, 3u);
}

TEST(Ledger, DuplicateTransactionIdRejected) {
  LedgerFixture fx;
  const Block a3 = make_block(fx.a2.hash, 5, 0, 0);
  fx.tree.add(a3);
  fx.store.attach(a3.hash, {Transaction{1, 7, 0, 100}});  // replayed tx
  const LedgerState state = replay_chain(fx.tree, a3.hash, fx.store);
  EXPECT_EQ(state.accepted.size(), 1u);
  EXPECT_EQ(state.rejected.size(), 1u);
}

TEST(Ledger, ConfirmedSpendRespectsDepth) {
  LedgerFixture fx;
  // tx 1 sits in a1, buried by one block (a2): depth 1.
  EXPECT_TRUE(confirmed_spend(fx.tree, fx.a2.hash, fx.store, 7, 1).has_value());
  EXPECT_FALSE(confirmed_spend(fx.tree, fx.a2.hash, fx.store, 7, 2).has_value());
  EXPECT_FALSE(confirmed_spend(fx.tree, fx.a2.hash, fx.store, 42, 0).has_value());
}

TEST(Ledger, DoubleSpendDetection) {
  LedgerFixture fx;
  // Both chains confirm different class-7 transactions at depth 1.
  EXPECT_TRUE(double_spend_succeeded(fx.tree, fx.a2.hash, fx.b2.hash, fx.store, 7, 1));
  // Same chain twice: no double spend.
  EXPECT_FALSE(double_spend_succeeded(fx.tree, fx.a2.hash, fx.a2.hash, fx.store, 7, 1));
  // Depth too large: the spends are not confirmed.
  EXPECT_FALSE(double_spend_succeeded(fx.tree, fx.a2.hash, fx.b2.hash, fx.store, 7, 3));
}

TEST(Ledger, DigestIsOrderSensitive) {
  const std::vector<Transaction> ab{{1, 7, 0, 10}, {2, 8, 1, 20}};
  const std::vector<Transaction> ba{{2, 8, 1, 20}, {1, 7, 0, 10}};
  EXPECT_NE(PayloadStore::digest(ab), PayloadStore::digest(ba));
  EXPECT_EQ(PayloadStore::digest(ab), PayloadStore::digest(ab));
}

TEST(Ledger, AttachReplaces) {
  PayloadStore store;
  store.attach(5, {Transaction{1, 1, 0, 1}});
  store.attach(5, {Transaction{2, 2, 0, 2}});
  ASSERT_NE(store.batch(5), nullptr);
  EXPECT_EQ(store.batch(5)->at(0).id, 2u);
  EXPECT_EQ(store.batch(99), nullptr);
}

}  // namespace
}  // namespace mh
