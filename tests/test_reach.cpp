#include "fork/reach.hpp"

#include <gtest/gtest.h>

#include "fork_fixtures.hpp"

namespace mh {
namespace {

TEST(Reach, GapIsHeightMinusLength) {
  fixtures::Fig1 fig;
  EXPECT_EQ(gap(fig.fork, fig.v9a), 0u);
  EXPECT_EQ(gap(fig.fork, fig.v6a), 2u);
  EXPECT_EQ(gap(fig.fork, kRoot), 6u);
}

TEST(Reach, ReserveCountsAdversarialSlotsAfterLabel) {
  fixtures::Fig1 fig;  // w = hAhAhHAAH, adversarial slots {2, 4, 7, 8}
  EXPECT_EQ(reserve(fig.fork, fig.w, kRoot), 4u);
  EXPECT_EQ(reserve(fig.fork, fig.w, fig.v1), 4u);
  EXPECT_EQ(reserve(fig.fork, fig.w, fig.v3), 3u);
  EXPECT_EQ(reserve(fig.fork, fig.w, fig.v5), 2u);
  EXPECT_EQ(reserve(fig.fork, fig.w, fig.v6a), 2u);
  EXPECT_EQ(reserve(fig.fork, fig.w, fig.a7), 1u);
  EXPECT_EQ(reserve(fig.fork, fig.w, fig.v9a), 0u);
}

TEST(Reach, ReachIsReserveMinusGap) {
  fixtures::Fig1 fig;
  EXPECT_EQ(reach(fig.fork, fig.w, fig.v9a), 0);
  EXPECT_EQ(reach(fig.fork, fig.w, fig.v6a), 0);   // 2 - 2
  EXPECT_EQ(reach(fig.fork, fig.w, kRoot), -2);    // 4 - 6
  EXPECT_EQ(reach(fig.fork, fig.w, fig.a4b), -3);  // 2 - 5
}

TEST(Reach, MaxReachNonNegativeForClosedForks) {
  // Any fork containing a maximum-length tine ending in an honest vertex has
  // nonnegative max reach; Fig. 1's fork does (the honest 9s are longest).
  fixtures::Fig1 fig;
  EXPECT_EQ(max_reach(fig.fork, fig.w), 0);
}

TEST(Reach, TrivialForkReachEqualsAdversarialCount) {
  const Fork f;
  EXPECT_EQ(max_reach(f, CharString::parse("AAA")), 3);
  EXPECT_EQ(max_reach(f, CharString::parse("")), 0);
}

TEST(Reach, AllReachesMatchesPointQueries) {
  fixtures::Fig1 fig;
  const auto reaches = all_reaches(fig.fork, fig.w);
  ASSERT_EQ(reaches.size(), fig.fork.vertex_count());
  for (VertexId v = 0; v < reaches.size(); ++v)
    EXPECT_EQ(reaches[v], reach(fig.fork, fig.w, v));
}

TEST(Reach, ParentChildRelation) {
  // Exactly: reach(child) = reach(parent) + 1 - #A((l(parent), l(child)]).
  // (In particular a child extends its parent's reach by one whenever it
  // consumes exactly one adversarial index, the "conservative" case.)
  fixtures::Fig1 fig;
  const auto reaches = all_reaches(fig.fork, fig.w);
  for (VertexId v = 1; v < fig.fork.vertex_count(); ++v) {
    const VertexId p = fig.fork.parent(v);
    const std::int64_t consumed = static_cast<std::int64_t>(
        fig.w.count_adversarial(fig.fork.label(p) + 1, fig.fork.label(v)));
    EXPECT_EQ(reaches[v], reaches[p] + 1 - consumed) << "vertex " << v;
  }
}

}  // namespace
}  // namespace mh
