// The differential consistency oracle: protocol executions against the
// analytic fork-theoretic stack on the same leader schedules.
//
// The headline test runs the full 36-cell scenario matrix
// {A0, A0'} x {Delta in 0,1,2} x {3 adversary strategies} x {2 stake laws}
// and asserts the paper's domination invariants on every execution: no
// simulated adversary violates k-settlement on a string whose analytic margin
// forbids it, every execution relabels into a valid fork for its reduced
// string, no fork margin exceeds the Theorem-5 recurrence, and the empirical
// frequencies stay within Clopper-Pearson bands of the exact DP values.
#include "oracle/scenario.hpp"

#include <gtest/gtest.h>

#include "core/relative_margin.hpp"
#include "engine/seed_sequence.hpp"
#include "fork/enumerate.hpp"
#include "fork_fixtures.hpp"

namespace mh {
namespace {

using oracle::MatrixConfig;
using oracle::MatrixResult;
using oracle::RunConfig;
using oracle::RunVerdict;
using oracle::Strategy;

MatrixConfig small_matrix(std::size_t runs, std::size_t threads = 0) {
  MatrixConfig config;
  config.runs = runs;
  config.mc_samples = 1500;
  config.threads = threads;
  return config;
}

/// The 24-run default matrix, computed once: it is a pure function of the
/// config, and both the invariant sweep and the Theorem-2 cell assertions
/// read from it.
const MatrixResult& default_matrix_result() {
  static const MatrixResult result = oracle::run_scenario_matrix(small_matrix(24));
  return result;
}

// ---------------------------------------------------------------------------
// Projection: schedule -> reduced characteristic string -> margin trajectory
// ---------------------------------------------------------------------------

TEST(OracleProjection, SynchronousScheduleProjectsToItsCharString) {
  Rng rng(11);
  const LeaderSchedule schedule = fixtures::schedule_from_text("hAhHAh", 4, rng);
  const auto view = oracle::project_schedule(schedule, 0, 3);
  EXPECT_EQ(view.reduction.reduced.to_string(), "hAhHAh");
  EXPECT_EQ(view.x_len, 2u);  // slots 1..2 precede the target
  // The trajectory is exactly the Theorem-5 recurrence on w = x y.
  const CharString w = CharString::parse("hAhHAh");
  ASSERT_EQ(view.margin.size(), w.size() - 2 + 1);
  for (std::size_t j = 0; j < view.margin.size(); ++j)
    EXPECT_EQ(view.margin[j], relative_margin_recurrence(w.prefix(2 + j), 2)) << "j=" << j;
}

TEST(OracleProjection, DeltaReductionShiftsTheDecompositionPoint) {
  // Tetra string with empty slots: "h..A.h" at Delta=1. Slot 1 is honest with
  // no honest slot in the next Delta slots, so it survives as h; slots 2,3,5
  // are empty; the reduction keeps 3 positions (h, A, h).
  std::vector<SlotLeaders> slots(6);
  slots[0].honest = {0};
  slots[3].adversarial = true;
  slots[5].honest = {1};
  const LeaderSchedule schedule(std::move(slots), 3);
  const auto view = oracle::project_schedule(schedule, 1, 5);
  EXPECT_EQ(view.raw.to_string(), "h..A.h");
  EXPECT_EQ(view.reduction.reduced.size(), 3u);
  // Non-empty slots before slot 5: slots 1 and 4 -> reduced positions 1, 2.
  EXPECT_EQ(view.x_len, 2u);
}

TEST(OracleProjection, MarginForbiddenWindowIsDetected) {
  // Pure-h string from the target onward: margin drops below zero immediately
  // and never recovers, so the analytic side forbids every violation.
  Rng rng(12);
  const LeaderSchedule schedule = fixtures::schedule_from_text("hhhhhhhhhh", 4, rng);
  const auto view = oracle::project_schedule(schedule, 0, 1);
  EXPECT_FALSE(oracle::margin_allows_violation(view));
  // An all-A tail keeps the margin at rho >= 0: violations are permitted.
  const LeaderSchedule hostile = fixtures::schedule_from_text("hAAAAA", 4, rng);
  EXPECT_TRUE(oracle::margin_allows_violation(oracle::project_schedule(hostile, 0, 1)));
}

TEST(OracleProjection, DistinctBalanceMatchesForkEnumeration) {
  // The empty-window allowance (two distinct maximum-length tines achievable
  // within x' alone) against the exhaustive fork oracle, for every string of
  // length <= 5. This is the Fact-6-at-every-divergence-point claim the
  // boundary case of check_execution rests on.
  for (std::size_t n = 0; n <= 5; ++n) {
    fixtures::for_each_char_string(n, [&](const std::vector<Symbol>& symbols) {
      const CharString u{std::vector<Symbol>(symbols)};
      EnumerationOptions options;
      options.closed_only = false;  // the twin witness may be an adversarial leaf
      options.max_adversarial_per_slot = 2;
      options.max_visits = 60'000'000;
      bool achievable = false;
      enumerate_forks(u, options, [&](const Fork& fork) {
        if (fork.longest_tines().size() >= 2) achievable = true;
      });
      EXPECT_EQ(oracle::admits_distinct_balance(u), achievable) << u.to_string();
    });
  }
}

// ---------------------------------------------------------------------------
// Single executions against hand-picked schedules
// ---------------------------------------------------------------------------

TEST(OracleRun, EveryStrategyIsDominatedOnHonestMajoritySchedules) {
  RunConfig rc;
  rc.law = theorem7_law(1.0, 0.1, 0.5);  // dense, honest-majority
  rc.horizon = 40;
  for (const Strategy strategy :
       {Strategy::PrivateChain, Strategy::Balance, Strategy::Randomized}) {
    rc.strategy = strategy;
    for (const TieBreak tie : {TieBreak::AdversarialOrder, TieBreak::ConsistentHash}) {
      rc.tie_break = tie;
      engine::SeedSequence streams(123);
      for (std::size_t r = 0; r < 12; ++r) {
        Rng rng = streams.stream(r);
        const RunVerdict v = oracle::check_execution(rc, rng);
        EXPECT_TRUE(v.dominated())
            << oracle::strategy_name(strategy) << " run " << r << " code " << v.code();
        EXPECT_LE(v.fork_margin, v.string_margin);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The scenario matrix (the acceptance surface of the oracle)
// ---------------------------------------------------------------------------

TEST(ScenarioMatrix, ThirtySixCellsZeroDominationViolations) {
  const MatrixResult& result = default_matrix_result();
  ASSERT_GE(result.cells.size(), 36u);

  EXPECT_EQ(result.total_domination_failures(), 0u);
  EXPECT_EQ(result.total_fork_invalid(), 0u);
  EXPECT_EQ(result.total_margin_breaches(), 0u);
  EXPECT_TRUE(result.all_clean());
  for (const auto& cell : result.cells) {
    EXPECT_TRUE(cell.mc_within_band) << "cell law " << cell.law_index;
    EXPECT_TRUE(cell.protocol_within_ceiling) << "cell law " << cell.law_index;
    // Per-cell corollary of per-run domination: the protocol can never beat
    // the analytic allowance count.
    EXPECT_LE(cell.simulated_violations, cell.analytic_allowed);
  }
  // The matrix is not vacuous: adversaries do succeed somewhere...
  EXPECT_GT(result.total_violations(), 0u);
  // ...and margin-forbidden strings occur (cells where not every run allows).
  bool some_forbidden = false;
  for (const auto& cell : result.cells)
    if (cell.analytic_allowed < cell.runs) some_forbidden = true;
  EXPECT_TRUE(some_forbidden);
}

TEST(ScenarioMatrix, VerdictsBitIdenticalAcrossThreadCounts) {
  const MatrixResult serial = oracle::run_scenario_matrix(small_matrix(10, 1));
  for (const std::size_t threads : {2u, 8u}) {
    const MatrixResult parallel = oracle::run_scenario_matrix(small_matrix(10, threads));
    ASSERT_EQ(parallel.cells.size(), serial.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i)
      EXPECT_TRUE(parallel.cells[i] == serial.cells[i]) << "cell " << i << ", threads "
                                                        << threads;
  }
}

TEST(ScenarioMatrix, Theorem2SeparationOnMultiplyHonestHeavyLaw) {
  // The paper's Theorem-2 mechanism, cell-resolved: on the mh-heavy law
  // (pH = 0.9, no adversarial stake) the BalanceAttacker splits concurrent
  // honest leaders under adversarial tie-breaking (A0) and violates
  // settlement, while consistent tie-breaking (A0') removes that lever
  // entirely - same law, same seeds, zero violations.
  const MatrixConfig config = small_matrix(24);  // index geometry only
  const MatrixResult& result = default_matrix_result();

  const std::size_t mh_heavy = 1;  // default_matrix_laws() order
  const std::size_t balance = 1;   // strategies order
  const std::size_t adversarial_order = 0, consistent_hash = 1, delta0 = 0;
  const auto& split_cell =
      result.cells[cell_index(config, adversarial_order, delta0, balance, mh_heavy)];
  const auto& held_cell =
      result.cells[cell_index(config, consistent_hash, delta0, balance, mh_heavy)];

  ASSERT_EQ(split_cell.tie_break, TieBreak::AdversarialOrder);
  ASSERT_EQ(held_cell.tie_break, TieBreak::ConsistentHash);
  ASSERT_EQ(split_cell.strategy, Strategy::Balance);

  EXPECT_GT(split_cell.simulated_violations, 0u);
  EXPECT_EQ(held_cell.simulated_violations, 0u);
  // The analytic (A0) margin agrees that the violations were permitted.
  EXPECT_GE(split_cell.analytic_allowed, split_cell.simulated_violations);
}

TEST(ScenarioMatrix, FirstRunCodesExposeOneCharPerCell) {
  const MatrixResult result = oracle::run_scenario_matrix(small_matrix(2));
  const std::string codes = first_run_codes(result);
  ASSERT_EQ(codes.size(), result.cells.size());
  for (char c : codes) EXPECT_NE(c, '!');
}

}  // namespace
}  // namespace mh
