#include "chars/bernoulli.hpp"

#include <gtest/gtest.h>

#include <array>

#include "support/stats.hpp"

namespace mh {
namespace {

TEST(SymbolLaw, BernoulliConditionDefinition7) {
  const SymbolLaw law = bernoulli_condition(0.2, 0.3);
  EXPECT_NEAR(law.pA, 0.4, 1e-12);   // (1 - eps) / 2
  EXPECT_NEAR(law.ph, 0.3, 1e-12);
  EXPECT_NEAR(law.pH, 0.3, 1e-12);   // 1 - pA - ph
  EXPECT_NEAR(law.epsilon(), 0.2, 1e-12);
  EXPECT_TRUE(law.honest_majority());
}

TEST(SymbolLaw, Table1Parameterization) {
  const SymbolLaw law = table1_law(0.3, 0.5);
  EXPECT_NEAR(law.pA, 0.3, 1e-12);
  EXPECT_NEAR(law.ph, 0.35, 1e-12);  // ratio * (1 - alpha)
  EXPECT_NEAR(law.pH, 0.35, 1e-12);
}

TEST(SymbolLaw, RejectsInvalidParameters) {
  EXPECT_THROW(static_cast<void>(bernoulli_condition(0.0, 0.1)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(bernoulli_condition(1.0, 0.1)), std::invalid_argument);
  // ph > (1+eps)/2:
  EXPECT_THROW(static_cast<void>(bernoulli_condition(0.2, 0.9)), std::invalid_argument);
  // alpha must be < 1/2:
  EXPECT_THROW(static_cast<void>(table1_law(0.5, 0.5)), std::invalid_argument);
  SymbolLaw bad{0.5, 0.5, 0.5};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(SymbolLaw, PhBelowPaStillAllowed) {
  // The regime beyond prior analyses: ph < pA but ph + pH > pA.
  const SymbolLaw law = table1_law(0.3, 0.01);
  EXPECT_LT(law.ph, law.pA);
  EXPECT_TRUE(law.honest_majority());
}

struct LawCase {
  double eps, ph;
};

class SymbolLawSampling : public ::testing::TestWithParam<LawCase> {};

TEST_P(SymbolLawSampling, EmpiricalFrequenciesMatch) {
  const SymbolLaw law = bernoulli_condition(GetParam().eps, GetParam().ph);
  Rng rng(1234);
  std::array<std::size_t, 3> counts{};
  const std::size_t n = 300'000;
  for (std::size_t i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(law.sample(rng))];
  const std::array<double, 3> expected{law.ph, law.pH, law.pA};
  const double stat = chi_square_statistic(counts, expected);
  EXPECT_LT(stat, chi_square_critical(2, 0.001));
}

INSTANTIATE_TEST_SUITE_P(Grid, SymbolLawSampling,
                         ::testing::Values(LawCase{0.1, 0.2}, LawCase{0.5, 0.1},
                                           LawCase{0.9, 0.5}, LawCase{0.02, 0.01},
                                           LawCase{0.3, 0.0}));

TEST(SymbolLaw, SampleStringLengthAndAlphabet) {
  const SymbolLaw law = bernoulli_condition(0.5, 0.25);
  Rng rng(5);
  const CharString w = law.sample_string(1000, rng);
  EXPECT_EQ(w.size(), 1000u);
  EXPECT_EQ(w.count_honest(1, 1000) + w.count_adversarial(1, 1000), 1000u);
}

}  // namespace
}  // namespace mh
