#include "protocol/adversary.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"
#include "delta/delta_fork.hpp"
#include "fork/validate.hpp"
#include "fork_fixtures.hpp"
#include "protocol/bridge.hpp"

namespace mh {
namespace {

using fixtures::schedule_from_text;

TEST(PrivateChain, OverwhelmingAdversaryRewritesHistory) {
  // Slot 1 honest, then a long adversarial run: the private chain from
  // genesis overtakes the public chain and, when released, displaces the
  // slot-1 block: a settlement violation for slot 1.
  Rng rng(31);
  const LeaderSchedule schedule = schedule_from_text("hAAAAAAAAAhh", 4, rng);
  PrivateChainAdversary adversary(1, 2);
  Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, 5}, 0, &adversary);
  sim.watch_settlement(1, 2);
  sim.run();
  EXPECT_TRUE(adversary.released());
  // The private chain displaced the slot-1 block after its confirmation
  // window: a reorg-style settlement violation.
  EXPECT_TRUE(sim.settlement_watch_violated(1));
}

TEST(PrivateChain, HonestMajorityDefeatsAttack) {
  // Far more honest slots than adversarial ones: the private chain can never
  // catch up over a long confirmation window.
  Rng rng(32);
  const LeaderSchedule schedule =
      schedule_from_text("hhhhhAhhhhAhhhhhAhhhhhhAhhhh", 4, rng);
  PrivateChainAdversary adversary(1, 6);
  Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, 6}, 0, &adversary);
  sim.watch_settlement(1, 6);
  sim.run();
  EXPECT_FALSE(adversary.released());
  EXPECT_FALSE(sim.settlement_watch_violated(1));
  EXPECT_FALSE(sim.observed_settlement_violation(1));
}

TEST(Balance, MultiplyHonestSlotsSustainTwoBranches) {
  // All-H schedule with adversarial tie-breaking: the balance attacker splits
  // every slot's two leaders across the branches, keeping two maximal chains
  // alive indefinitely (the pH mechanism of the paper).
  Rng rng(33);
  const LeaderSchedule schedule = schedule_from_text("HHHHHHHHHHHH", 6, rng);
  BalanceAttacker adversary;
  Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, 3}, 0, &adversary);
  sim.run();
  EXPECT_TRUE(adversary.balanced(sim));
  EXPECT_TRUE(sim.observed_settlement_violation(1));
  EXPECT_GE(sim.observed_slot_divergence(), 11u);
}

TEST(Balance, ConsistentTieBreakingDefeatsBalanceWithoutAdversarialSlots) {
  // Theorem 2's mechanism: under A0' all honest leaders extend the same chain,
  // so with no adversarial slots the attacker cannot split them.
  Rng rng(34);
  const LeaderSchedule schedule = schedule_from_text("HHHHHHHHHHHH", 6, rng);
  BalanceAttacker adversary;
  Simulation sim(schedule, SimulationConfig{TieBreak::ConsistentHash, 3}, 0, &adversary);
  sim.run();
  EXPECT_FALSE(adversary.balanced(sim));
  EXPECT_FALSE(sim.observed_settlement_violation(1));
}

TEST(Balance, UniquelyHonestSlotsDrainTheBalance) {
  // h-slots extend only one branch; without adversarial help the balance
  // breaks immediately and the lone chain settles.
  Rng rng(35);
  const LeaderSchedule schedule = schedule_from_text("hhhhhhhh", 4, rng);
  BalanceAttacker adversary;
  Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, 4}, 0, &adversary);
  sim.run();
  EXPECT_FALSE(adversary.balanced(sim));
  EXPECT_FALSE(sim.observed_settlement_violation(1));
}

TEST(Randomized, StaysInsideTheForkModelAndMints) {
  // The strategy fuzzer can do anything the model allows - and nothing more:
  // every execution must still bridge to a valid fork for its characteristic
  // string, which is the property the differential oracle builds on.
  Rng rng(37);
  const LeaderSchedule schedule = schedule_from_text("hAHhAhHAhAhHAA", 4, rng);
  RandomizedAdversary adversary(0xfeedULL);
  Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, 7}, 0, &adversary);
  sim.run();
  EXPECT_GT(adversary.minted(), 0u);
  const ExecutionFork execution = fork_from_blocks(sim.all_blocks());
  const auto result = validate_fork(execution.fork, schedule.characteristic_sync());
  ASSERT_TRUE(result.ok) << result.message;
}

TEST(Randomized, DeltaDelaysStayWithinTheWindow) {
  Rng rng(38);
  const TetraLaw law = theorem7_law(0.5, 0.15, 0.2);
  const std::size_t delta = 2;
  const LeaderSchedule schedule = LeaderSchedule::from_tetra_law(law, 60, 4, rng);
  RandomizedAdversary adversary(0xbeefULL);
  Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, 8}, delta, &adversary);
  sim.run();
  const ExecutionFork execution = fork_from_blocks(sim.all_blocks());
  const auto result = validate_delta_fork(execution.fork, schedule.characteristic(), delta);
  ASSERT_TRUE(result.ok) << result.message;
}

TEST(Balance, AdversarialSlotsRepairUniquelyHonestDamage) {
  // Alternating h and A: each h extends one branch, each A re-levels the
  // other; the balance survives the whole horizon (mu = 0 dynamics).
  Rng rng(36);
  const LeaderSchedule schedule = schedule_from_text("hAhAhAhAhAhA", 4, rng);
  BalanceAttacker adversary;
  Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, 5}, 0, &adversary);
  sim.run();
  EXPECT_TRUE(sim.observed_settlement_violation(1));
}

}  // namespace
}  // namespace mh
