#include "analysis/thresholds.hpp"

#include <gtest/gtest.h>

namespace mh {
namespace {

TEST(Thresholds, AllThreeApplyWithStrongUniqueHonesty) {
  // ph = 0.6, pH = 0.1, pA = 0.3.
  const SymbolLaw law{0.6, 0.1, 0.3};
  const RegimeReport report = classify_regime(law);
  EXPECT_TRUE(report.this_work_applies);
  EXPECT_TRUE(report.praos_applies);
  EXPECT_TRUE(report.snow_white_applies);
  EXPECT_NEAR(report.this_work_advantage, 0.4, 1e-12);
  EXPECT_NEAR(report.praos_advantage, 0.2, 1e-12);
  EXPECT_NEAR(report.snow_white_advantage, 0.3, 1e-12);
}

TEST(Thresholds, ConcurrentLeadersBreakPraosFirst) {
  // ph = 0.35, pH = 0.35, pA = 0.3: Praos' ph - pH > pA fails.
  const SymbolLaw law{0.35, 0.35, 0.3};
  const RegimeReport report = classify_regime(law);
  EXPECT_TRUE(report.this_work_applies);
  EXPECT_FALSE(report.praos_applies);
  EXPECT_TRUE(report.snow_white_applies);
}

TEST(Thresholds, PhBelowPaOnlyThisWorkSurvives) {
  // The paper's headline regime: ph < pA but ph + pH > pA.
  const SymbolLaw law{0.1, 0.6, 0.3};
  const RegimeReport report = classify_regime(law);
  EXPECT_TRUE(report.this_work_applies);
  EXPECT_FALSE(report.praos_applies);
  EXPECT_FALSE(report.snow_white_applies);
}

TEST(Thresholds, DishonestMajorityNothingApplies) {
  const SymbolLaw law{0.2, 0.2, 0.6};
  const RegimeReport report = classify_regime(law);
  EXPECT_FALSE(report.this_work_applies);
  EXPECT_FALSE(report.praos_applies);
  EXPECT_FALSE(report.snow_white_applies);
}

TEST(Thresholds, AppliesHelperMatchesReport) {
  const SymbolLaw law{0.35, 0.35, 0.3};
  EXPECT_TRUE(applies(Analysis::ThisWork, law));
  EXPECT_FALSE(applies(Analysis::Praos, law));
  EXPECT_TRUE(applies(Analysis::SnowWhite, law));
}

TEST(Thresholds, Names) {
  EXPECT_NE(to_string(Analysis::ThisWork).find("ph+pH"), std::string::npos);
  EXPECT_NE(to_string(Analysis::Praos).find("Praos"), std::string::npos);
  EXPECT_NE(to_string(Analysis::SnowWhite).find("Snow"), std::string::npos);
}

}  // namespace
}  // namespace mh
