#include "core/astar.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"
#include "core/relative_margin.hpp"
#include "fork/margin.hpp"
#include "fork/reach.hpp"
#include "fork/validate.hpp"
#include "support/random.hpp"

namespace mh {
namespace {

void expect_canonical(const CharString& w) {
  const Fork fork = build_canonical_fork(w);
  ASSERT_TRUE(validate_fork(fork, w).ok)
      << "A* fork invalid for " << w.to_string() << ": " << validate_fork(fork, w).message;
  ASSERT_TRUE(is_closed(fork, w)) << w.to_string();
  ASSERT_EQ(max_reach(fork, w), rho_of(w)) << "rho mismatch for " << w.to_string();
  for (std::size_t x = 0; x <= w.size(); ++x) {
    ASSERT_EQ(relative_margin(fork, w, x), relative_margin_recurrence(w, x))
        << "mu mismatch for w = " << w.to_string() << " at x_len " << x;
  }
}

TEST(AStar, CanonicalOnHandPickedStrings) {
  for (const char* text :
       {"", "h", "H", "A", "hh", "HH", "hA", "Ah", "AA", "HA", "AH", "hH", "Hh",
        "hAhAhHAAH", "HHHH", "AAAA", "hhhh", "AhAhA", "HAHA", "AAHH", "hHAHA"}) {
    expect_canonical(CharString::parse(text));
  }
}

TEST(AStar, CanonicalOnAllStringsUpToLengthSix) {
  // Exhaustive: every w in {h,H,A}^n for n <= 6 (3^6 = 729 strings).
  for (std::size_t n = 0; n <= 6; ++n) {
    std::vector<Symbol> symbols(n, Symbol::h);
    std::size_t total = 1;
    for (std::size_t i = 0; i < n; ++i) total *= 3;
    for (std::size_t code = 0; code < total; ++code) {
      std::size_t c = code;
      for (std::size_t i = 0; i < n; ++i) {
        symbols[i] = static_cast<Symbol>(c % 3);
        c /= 3;
      }
      expect_canonical(CharString(symbols));
    }
  }
}

struct AStarCase {
  double eps, ph;
  std::size_t length;
  int trials;
};

class AStarRandomized : public ::testing::TestWithParam<AStarCase> {};

TEST_P(AStarRandomized, TheoremSixCanonicity) {
  const auto [eps, ph, length, trials] = GetParam();
  const SymbolLaw law = bernoulli_condition(eps, ph);
  Rng rng(987654321);
  for (int trial = 0; trial < trials; ++trial)
    expect_canonical(law.sample_string(length, rng));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AStarRandomized,
    ::testing::Values(AStarCase{0.3, 0.3, 40, 20}, AStarCase{0.1, 0.1, 60, 10},
                      AStarCase{0.5, 0.5, 30, 20}, AStarCase{0.2, 0.0, 50, 10},
                      AStarCase{0.05, 0.02, 80, 5}, AStarCase{0.8, 0.1, 40, 10}));

TEST(AStar, AdversarialSymbolsLeaveForkUntouched) {
  AStarAdversary adversary;
  adversary.step(Symbol::h);
  const std::size_t before = adversary.fork().vertex_count();
  adversary.step(Symbol::A);
  adversary.step(Symbol::A);
  EXPECT_EQ(adversary.fork().vertex_count(), before);
  EXPECT_EQ(adversary.processed().to_string(), "hAA");
}

TEST(AStar, MultiplyHonestAtZeroReachForksTwice) {
  // On w = "H" the canonical fork needs two concurrent honest blocks.
  const Fork fork = build_canonical_fork(CharString::parse("H"));
  EXPECT_EQ(fork.vertices_with_label(1).size(), 2u);
  EXPECT_EQ(margin(fork, CharString::parse("H")), 0);
}

TEST(AStar, UniquelyHonestSlotAddsOneVertex) {
  const Fork fork = build_canonical_fork(CharString::parse("h"));
  EXPECT_EQ(fork.vertices_with_label(1).size(), 1u);
}

TEST(AStar, ConservativeExtensionsConsumeReserve) {
  // w = hAAh: the final h extends the root-tine with the two adversarial
  // labels to overtake the honest chain of length 1.
  const CharString w = CharString::parse("hAAh");
  const Fork fork = build_canonical_fork(w);
  EXPECT_TRUE(validate_fork(fork, w).ok);
  // Height must equal the honest depth of slot 4: three (two pads + leaf) or
  // two, depending on which tine A* extended; canonicity pins the margins.
  EXPECT_EQ(max_reach(fork, w), rho_of(w));
}

}  // namespace
}  // namespace mh
