// Cross-module integration: the protocol simulator, the fork framework, the
// margin recurrence and the exact DP must all tell one consistent story.
#include <gtest/gtest.h>

#include "core/exact_dp.hpp"
#include "core/relative_margin.hpp"
#include "core/settlement.hpp"
#include "protocol/adversary.hpp"
#include "fork/validate.hpp"
#include "protocol/bridge.hpp"
#include "sim/experiments.hpp"

namespace mh {
namespace {

// The balance attacker plays the protocol; the margin recurrence plays the
// abstraction. The attacker can never outperform the optimal fork adversary:
// whenever the recurrence says mu_eps(w_1..t) < 0, no two maximal chains
// diverging at genesis may coexist in the simulation.
TEST(Integration, BalanceAttackerBoundedByMarginRecurrence) {
  const SymbolLaw law = bernoulli_condition(0.2, 0.2);
  Rng rng(51);
  for (int trial = 0; trial < 15; ++trial) {
    const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 60, 6, rng);
    const CharString w = schedule.characteristic_sync();
    BalanceAttacker adversary;
    Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, rng()}, 0,
                   &adversary);
    for (std::size_t t = 1; t <= 60; ++t) {
      sim.run_until(t);
      if (sim.observed_settlement_violation(1)) {
        const std::int64_t mu = relative_margin_recurrence(w.prefix(t), 0);
        ASSERT_GE(mu, 0) << "protocol attack beat the optimal fork bound at slot " << t
                         << " of " << w.to_string();
      }
    }
  }
}

// Observed protocol-level violation frequencies stay below the exact optimal
// probability (up to MC noise): the DP is an upper bound over ALL adversaries.
TEST(Integration, ProtocolViolationsBelowExactDp) {
  const SymbolLaw law = table1_law(0.35, 0.5);
  const std::size_t k = 30;
  ProtocolExperimentConfig config;
  config.runs = 150;
  config.horizon = 60;
  config.honest_parties = 6;
  config.seed = 99;
  const ProtocolExperimentResult result =
      run_protocol_experiment(law, AttackKind::Balance, 1, k, config);
  // The game-level probability of an eventual violation dominates any
  // particular observation time; compare against the within-horizon variant.
  long double exact_any = 0.0L;
  const SettlementSeries series = exact_settlement_series(law, 59);
  for (std::size_t j = k; j <= 59; ++j) exact_any = std::max(exact_any, series.violation[j]);
  // Wilson lower bound must not exceed a generous multiple of the optimum;
  // the attacker is weaker than A*, so typically far below.
  EXPECT_LE(result.settlement_violations.lo,
            static_cast<double>(series.violation[k]) + 0.15);
  (void)exact_any;
}

// Fork extraction from adversarial executions still validates.
TEST(Integration, AdversarialExecutionsMapToValidForks) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.3);
  Rng rng(52);
  for (int trial = 0; trial < 8; ++trial) {
    const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 50, 5, rng);
    BalanceAttacker adversary;
    Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, rng()}, 0,
                   &adversary);
    sim.run();
    const ExecutionFork ef = fork_from_blocks(sim.all_blocks());
    const auto result = validate_fork(ef.fork, schedule.characteristic_sync());
    ASSERT_TRUE(result.ok) << result.message;
    // Every honest node's adopted chain corresponds to a viable tine.
    for (const HonestNode& node : sim.nodes()) {
      const VertexId head = ef.vertex_of.at(node.best_head());
      EXPECT_GE(ef.fork.depth(head) + 1,
                max_honest_depth_upto(ef.fork, schedule.characteristic_sync(), 50));
    }
  }
}

// Tie-breaking ablation at the experiment level: with ph = 0 (all-H honest
// slots) and some adversarial stake, adversarial tie-breaking admits long
// balances while consistent tie-breaking suppresses them (Theorem 2).
TEST(Integration, TieBreakAblationMatchesTheorem2) {
  const SymbolLaw law{0.0, 0.7, 0.3};
  ProtocolExperimentConfig config;
  config.runs = 60;
  config.horizon = 50;
  config.honest_parties = 6;
  config.seed = 123;

  config.tie_break = TieBreak::AdversarialOrder;
  const auto adversarial =
      run_protocol_experiment(law, AttackKind::Balance, 1, 20, config);
  config.tie_break = TieBreak::ConsistentHash;
  const auto consistent =
      run_protocol_experiment(law, AttackKind::Balance, 1, 20, config);

  EXPECT_GT(adversarial.settlement_violations.estimate, 0.5);
  EXPECT_LT(consistent.settlement_violations.estimate,
            adversarial.settlement_violations.estimate);
}

}  // namespace
}  // namespace mh
