// The discrete-event heterogeneous network core (src/protocol/net/): event
// ordering, topology construction, latency laws, bandwidth spillover, gossip
// relay delivery, the degenerate-façade equivalence contract, and the
// observed-Delta oracle grading of heterogeneous executions — including the
// {1, 2, 8}-thread bit-identity the counter-based streams guarantee.
#include "protocol/net/config.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "delta/semi_sync.hpp"
#include "engine/seed_sequence.hpp"
#include "engine/thread_pool.hpp"
#include "oracle/oracle.hpp"
#include "protocol/net/event_core.hpp"
#include "protocol/net/latency.hpp"
#include "protocol/net/topology.hpp"
#include "protocol/network.hpp"
#include "protocol/simulation.hpp"
#include "protocol/transport_probe.hpp"

namespace mh {
namespace {

using net::EventCore;
using net::LatencyKind;
using net::LatencyLaw;
using net::NetConfig;
using net::Topology;
using net::TopologyKind;

Block test_block(std::uint64_t payload, std::uint64_t slot = 1, PartyId issuer = 0) {
  return make_block(genesis_block().hash, slot, issuer, payload);
}

std::vector<Block> drain(Network& net, PartyId recipient, std::size_t slot) {
  std::vector<Block> due;
  net.collect_into(recipient, slot, &due);
  return due;
}

// ---------------------------------------------------------------------------
// EventCore: the (due, seq) total order
// ---------------------------------------------------------------------------

TEST(EventCore, PopsDueAscendingThenSchedulingOrder) {
  EventCore core(1);
  const Block a = test_block(1), b = test_block(2), c = test_block(3);
  core.schedule(0, 5, a);
  core.schedule(0, 3, b);
  core.schedule(0, 5, c);
  std::vector<Block> out;
  core.collect_due(0, 10, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].payload, 2u);  // earliest due first...
  EXPECT_EQ(out[1].payload, 1u);  // ...then scheduling order within a due
  EXPECT_EQ(out[2].payload, 3u);
}

TEST(EventCore, CollectHonorsTheDueBoundAndDrains) {
  EventCore core(2);
  core.schedule(0, 2, test_block(1));
  core.schedule(0, 4, test_block(2));
  core.schedule(1, 2, test_block(3));
  std::vector<Block> out;
  core.collect_due(0, 3, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, 1u);
  EXPECT_EQ(core.pending(0), 1u);   // the due-4 delivery is still queued
  EXPECT_EQ(core.pending(1), 1u);   // other recipients untouched
  out.clear();
  core.collect_due(0, 4, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, 2u);
}

TEST(EventCore, SeqOrderSurvivesOutOfInsertionDues) {
  // A later-scheduled send with a shorter draw overtakes an earlier one: the
  // contract is (due, seq), NOT insertion order.
  EventCore core(1);
  core.schedule(0, 9, test_block(1));  // scheduled first, lands last
  core.schedule(0, 2, test_block(2));
  std::vector<Block> out;
  core.collect_due(0, 100, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload, 2u);
  EXPECT_EQ(out[1].payload, 1u);
}

TEST(EventCore, WipeDropsOnlyThatRecipient) {
  EventCore core(2);
  core.schedule(0, 2, test_block(1));
  core.schedule(1, 2, test_block(2));
  core.wipe(0);
  EXPECT_EQ(core.pending(0), 0u);
  EXPECT_EQ(core.pending(1), 1u);
}

// ---------------------------------------------------------------------------
// Topology construction
// ---------------------------------------------------------------------------

TEST(Topology, FullMeshIsImplicitAndComplete) {
  const Topology topo = Topology::build(TopologyKind::FullMesh, 5, 0, 1);
  for (PartyId p = 0; p < 5; ++p) {
    EXPECT_EQ(topo.degree(p), 4u);
    EXPECT_FALSE(topo.edge(p, p));
    std::size_t seen = 0;
    topo.for_each_neighbor(p, [&](PartyId r) {
      EXPECT_NE(r, p);
      ++seen;
    });
    EXPECT_EQ(seen, 4u);
  }
}

TEST(Topology, RingIsBidirectional) {
  const Topology topo = Topology::build(TopologyKind::Ring, 6, 0, 1);
  for (PartyId p = 0; p < 6; ++p) {
    EXPECT_EQ(topo.degree(p), 2u);
    EXPECT_TRUE(topo.edge(p, (p + 1) % 6));
    EXPECT_TRUE(topo.edge(p, (p + 5) % 6));
    EXPECT_FALSE(topo.edge(p, (p + 2) % 6));
  }
}

TEST(Topology, RandomKKeepsTheRingBackbone) {
  // The i -> i+1 backbone guarantees strong connectivity no matter what the
  // seeded shortcuts draw; out-degree is exactly k, no self-loops, no dups.
  const Topology topo = Topology::build(TopologyKind::RandomK, 12, 4, 77);
  for (PartyId p = 0; p < 12; ++p) {
    EXPECT_EQ(topo.degree(p), 4u);
    EXPECT_TRUE(topo.edge(p, (p + 1) % 12));
    std::set<PartyId> seen;
    topo.for_each_neighbor(p, [&](PartyId r) {
      EXPECT_NE(r, p);
      EXPECT_TRUE(seen.insert(r).second);
    });
  }
}

TEST(Topology, RandomKIsPureInTheSeed) {
  const Topology a = Topology::build(TopologyKind::RandomK, 16, 3, 5);
  const Topology b = Topology::build(TopologyKind::RandomK, 16, 3, 5);
  const Topology c = Topology::build(TopologyKind::RandomK, 16, 3, 6);
  bool differs = false;
  for (PartyId p = 0; p < 16; ++p)
    for (PartyId r = 0; r < 16; ++r) {
      EXPECT_EQ(a.edge(p, r), b.edge(p, r));
      differs = differs || (a.edge(p, r) != c.edge(p, r));
    }
  EXPECT_TRUE(differs);  // a different seed draws different shortcuts
}

TEST(Topology, TwoClusterBridgeLinksTheHalvesOnlyThroughTheBridge) {
  const Topology topo = Topology::build(TopologyKind::TwoClusterBridge, 8, 0, 1);
  for (PartyId p = 0; p < 8; ++p)
    for (PartyId r = 0; r < 8; ++r) {
      if (p == r) continue;
      const bool same = (p < 4) == (r < 4);
      const bool bridge = (p == 0 && r == 4) || (p == 4 && r == 0);
      EXPECT_EQ(topo.edge(p, r), same || bridge) << p << "->" << r;
    }
}

TEST(Topology, RejectsUnrealizableShapes) {
  EXPECT_THROW(Topology::build(TopologyKind::RandomK, 4, 0, 1), std::invalid_argument);
  EXPECT_THROW(Topology::build(TopologyKind::RandomK, 4, 4, 1), std::invalid_argument);
  EXPECT_THROW(Topology::build(TopologyKind::FullMesh, 0, 0, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Latency laws
// ---------------------------------------------------------------------------

TEST(LatencyLaw, DegenerateIsConstant) {
  const LatencyLaw law{LatencyKind::Degenerate, 3, 0, 0.5};
  Rng rng(1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(law.draw(rng), 3u);
  EXPECT_EQ(law.max_extra(), 3u);
}

TEST(LatencyLaw, UniformAndGeometricRespectTheCap) {
  Rng rng(7);
  const LatencyLaw uniform{LatencyKind::Uniform, 0, 4, 0.5};
  const LatencyLaw geometric{LatencyKind::Geometric, 0, 3, 0.6};
  bool uniform_hit_cap = false;
  for (int i = 0; i < 400; ++i) {
    const std::size_t u = uniform.draw(rng);
    EXPECT_LE(u, 4u);
    uniform_hit_cap = uniform_hit_cap || u == 4;
    EXPECT_LE(geometric.draw(rng), 3u);
  }
  EXPECT_TRUE(uniform_hit_cap);  // the bound is inclusive and reachable
  EXPECT_EQ(uniform.max_extra(), 4u);
  EXPECT_EQ(geometric.max_extra(), 3u);
}

TEST(LatencyLaw, RejectsDegenerateGeometricWeights) {
  for (const double p : {0.0, 1.0, 1.5}) {
    const LatencyLaw law{LatencyKind::Geometric, 0, 3, p};
    EXPECT_THROW(law.validate(), std::invalid_argument) << p;
  }
}

// ---------------------------------------------------------------------------
// NetConfig
// ---------------------------------------------------------------------------

TEST(NetConfig, DefaultIsDegenerate) {
  EXPECT_FALSE(NetConfig{}.heterogeneous());
  EXPECT_FALSE(NetConfig::degenerate().heterogeneous());
  NetConfig ring;
  ring.topology = TopologyKind::Ring;
  EXPECT_TRUE(ring.heterogeneous());
  NetConfig slow;
  slow.latency = {LatencyKind::Degenerate, 1, 0, 0.5};
  EXPECT_TRUE(slow.heterogeneous());
  NetConfig thin;
  thin.bandwidth = 2;
  EXPECT_TRUE(thin.heterogeneous());
}

TEST(NetConfig, ValidateNamesTheOffendingKnob) {
  NetConfig bad;
  bad.topology = TopologyKind::RandomK;
  bad.k = 9;
  try {
    bad.validate(4);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("k = 9"), std::string::npos) << e.what();
  }
}

// ---------------------------------------------------------------------------
// Heterogeneous transport behavior
// ---------------------------------------------------------------------------

TEST(HeteroNetwork, FixedLatencyShiftsEveryDelivery) {
  NetConfig cfg;
  cfg.latency = {LatencyKind::Degenerate, 2, 0, 0.5};
  Network net(3, 0, cfg);
  BlockTree tree;
  const Block b = test_block(1, 1, 0);
  tree.add(b);
  net.broadcast_chain(tree, b, 1);
  EXPECT_TRUE(drain(net, 1, 3).empty());       // the lockstep due is slot 2...
  EXPECT_EQ(drain(net, 1, 4).size(), 1u);      // ...plus the fixed 2 slots
  EXPECT_EQ(drain(net, 2, 4).size(), 1u);
}

TEST(HeteroNetwork, RingGossipRelaysAcrossHopsWithoutDuplicates) {
  NetConfig cfg;
  cfg.topology = TopologyKind::Ring;
  Network net(5, 0, cfg);
  BlockTree tree;
  const Block b = test_block(1, 1, 0);
  tree.add(b);
  net.broadcast_chain(tree, b, 1);
  // Hop 1: the ring neighbors of party 0 hold it at slot 2; relaying there
  // puts it at distance-2 parties by slot 3. Collect in a slot loop the way
  // the simulation does (collection triggers the relay).
  std::vector<std::size_t> arrival(5, 0);
  for (std::size_t slot = 1; slot <= 6; ++slot)
    for (PartyId p = 0; p < 5; ++p)
      for (const Block& got : drain(net, p, slot)) {
        EXPECT_EQ(got.hash, b.hash);
        EXPECT_EQ(arrival[p], 0u) << "duplicate delivery to party " << p;
        arrival[p] = slot;
      }
  EXPECT_EQ(arrival[1], 2u);
  EXPECT_EQ(arrival[4], 2u);  // ring is bidirectional
  EXPECT_EQ(arrival[2], 3u);  // two hops
  EXPECT_EQ(arrival[3], 3u);
  EXPECT_EQ(arrival[0], 0u);  // the forger never receives its own block
}

TEST(HeteroNetwork, BandwidthCapSpillsEgressIntoLaterSlots) {
  NetConfig cfg;
  cfg.bandwidth = 1;  // full mesh, but one block may leave a party per slot
  Network net(3, 0, cfg);
  BlockTree tree;
  const Block b = test_block(1, 1, 0);
  tree.add(b);
  net.broadcast_chain(tree, b, 1);
  // Neighbor visit order is (1, 2): the first copy departs at slot 1 (due 2),
  // the second spills to slot 2 (due 3).
  EXPECT_EQ(drain(net, 1, 2).size(), 1u);
  EXPECT_TRUE(drain(net, 2, 2).empty());
  EXPECT_EQ(drain(net, 2, 3).size(), 1u);
}

TEST(HeteroNetwork, AdversarialInjectionBypassesTopologyAndLatency) {
  NetConfig cfg;
  cfg.topology = TopologyKind::Ring;
  cfg.latency = {LatencyKind::Degenerate, 3, 0, 0.5};
  Network net(6, 0, cfg);
  const Block b = test_block(1, 1, kAdversary);
  net.inject(b, 4, 1);  // direct channel: visible at the requested slot
  EXPECT_EQ(drain(net, 4, 1).size(), 1u);
  net.inject_all(b, 2);
  EXPECT_EQ(drain(net, 3, 2).size(), 1u);  // not a ring neighbor of anyone involved
}

TEST(HeteroNetwork, ObservedDeltaIsBoundedByTheLatencyCapOnAFullMesh) {
  // One direct hop per delivery: the recovered synchrony bound can never
  // exceed the law's cap.
  NetConfig cfg;
  cfg.latency = {LatencyKind::Uniform, 0, 3, 0.5};
  Rng rng(91);
  const LeaderSchedule schedule =
      LeaderSchedule::from_symbol_law(kTransportProbeLaw, 64, 6, rng);
  Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, 4242}, 3, nullptr,
                 nullptr, cfg);
  sim.run();
  const NetReport report = sim.net_report();
  EXPECT_TRUE(report.heterogeneous);
  EXPECT_LE(report.observed_delta, 3u);
}

TEST(HeteroNetwork, DegenerateReportIsTrivial) {
  Rng rng(91);
  const LeaderSchedule schedule =
      LeaderSchedule::from_symbol_law(kTransportProbeLaw, 32, 4, rng);
  Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, 7}, 0, nullptr);
  sim.run();
  const NetReport report = sim.net_report();
  EXPECT_FALSE(report.heterogeneous);
  EXPECT_EQ(report.observed_delta, 0u);
  EXPECT_EQ(report.pending_inflations, 0u);
}

// ---------------------------------------------------------------------------
// The façade equivalence contract
// ---------------------------------------------------------------------------

TEST(FacadeEquivalence, DegenerateNetConfigReproducesTheLegacyDigestBitIdentically) {
  const TransportProbeOutcome legacy = balance_transport_probe(8, 192, 2024);
  const TransportProbeOutcome event_core =
      hetero_transport_probe(8, 192, 2024, 0, NetConfig::degenerate());
  EXPECT_EQ(event_core.digest, legacy.digest);
  EXPECT_EQ(event_core.blocks, legacy.blocks);
  EXPECT_EQ(event_core.divergence, legacy.divergence);
}

TEST(FacadeEquivalence, GoldenTransportPinsStillHold) {
  // The seed pins from the slot-bucket era, now produced by the event core.
  EXPECT_EQ(balance_transport_probe(kBalanceProbePinParties, kBalanceProbePinHorizon,
                                    kBalanceProbePinSeed)
                .digest,
            kBalanceProbePinDigest);
  EXPECT_EQ(randomized_transport_probe(kRandomizedProbePinParties, kRandomizedProbePinHorizon,
                                       kRandomizedProbePinSeed, kRandomizedProbePinDelta)
                .digest,
            kRandomizedProbePinDigest);
}

// ---------------------------------------------------------------------------
// Oracle grading of heterogeneous executions
// ---------------------------------------------------------------------------

oracle::RunConfig hetero_run_config(TopologyKind topology) {
  oracle::RunConfig rc;
  rc.law = theorem7_law(1.0, 0.25, 0.45);
  rc.horizon = 48;
  rc.delta = 1;
  rc.strategy = oracle::Strategy::Balance;
  rc.net.topology = topology;
  rc.net.k = 2;
  rc.net.latency = {LatencyKind::Uniform, 0, 2, 0.5};
  return rc;
}

TEST(HeteroOracle, EveryTopologyGradesWithoutUngradedViolations) {
  for (const TopologyKind topology :
       {TopologyKind::FullMesh, TopologyKind::RandomK, TopologyKind::Ring,
        TopologyKind::TwoClusterBridge}) {
    const oracle::RunConfig rc = hetero_run_config(topology);
    engine::SeedSequence streams(515);
    for (std::size_t r = 0; r < 6; ++r) {
      Rng rng = streams.stream(r);
      const oracle::RunVerdict v = oracle::check_execution(rc, rng);
      EXPECT_TRUE(v.heterogeneous);
      const char code = v.code();
      EXPECT_NE(code, '!') << net::topology_kind_name(topology) << " run " << r;
      EXPECT_NE(code, 'u') << net::topology_kind_name(topology) << " run " << r
                           << " (strongly connected gossip must stay bounded)";
      if (v.degraded) EXPECT_TRUE(v.recovery_checked);
    }
  }
}

TEST(HeteroOracle, VerdictsAreThreadCountBitIdentical) {
  // 12 heterogeneous cells fanned across {1, 2, 8} workers must produce the
  // same verdict codes: every draw is counter-based in the cell index.
  const TopologyKind kinds[] = {TopologyKind::RandomK, TopologyKind::Ring,
                                TopologyKind::TwoClusterBridge, TopologyKind::FullMesh};
  const auto run_band = [&](std::size_t threads) {
    std::string codes(12, '?');
    engine::SeedSequence streams(2210);
    engine::for_each_index(12, threads, [&](std::size_t i) {
      const oracle::RunConfig rc = hetero_run_config(kinds[i % 4]);
      Rng rng = streams.stream(i);
      codes[i] = oracle::check_execution(rc, rng).code();
    });
    return codes;
  };
  const std::string serial = run_band(1);
  EXPECT_EQ(run_band(2), serial);
  EXPECT_EQ(run_band(8), serial);
  EXPECT_EQ(serial.find('?'), std::string::npos);
  EXPECT_EQ(serial.find('!'), std::string::npos);
  EXPECT_EQ(serial.find('u'), std::string::npos);
}

}  // namespace
}  // namespace mh
