#include "fork/balanced.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"
#include "core/astar.hpp"
#include "core/relative_margin.hpp"
#include "fork/validate.hpp"
#include "fork_fixtures.hpp"
#include "support/random.hpp"

namespace mh {
namespace {

TEST(Balanced, FigureTwoIsBalanced) {
  fixtures::Fig2 fig;
  EXPECT_TRUE(is_balanced(fig.fork, fig.w));
  EXPECT_TRUE(is_x_balanced(fig.fork, fig.w, 0));
}

TEST(Balanced, FigureThreeIsXBalancedButNotBalanced) {
  fixtures::Fig3 fig;
  EXPECT_TRUE(is_x_balanced(fig.fork, fig.w, fig.x_len));
  EXPECT_FALSE(is_balanced(fig.fork, fig.w));  // tines share the h1 -> h2 prefix
}

TEST(Balanced, SingleChainNeverBalanced) {
  const CharString w = CharString::parse("hh");
  Fork f;
  const VertexId a = f.add_vertex(kRoot, 1);
  f.add_vertex(a, 2);
  EXPECT_FALSE(is_balanced(f, w));
  EXPECT_FALSE(is_x_balanced(f, w, 2));
}

TEST(Balanced, PadWithAdversarial) {
  fixtures::Fig2 fig;
  Fork fork = fig.fork;
  // Pad the honest depth-2 tine h3 (gap 1) to full height with slot-4 block.
  const VertexId head = pad_with_adversarial(fork, fig.w, fig.h3, 3);
  EXPECT_EQ(fork.depth(head), 3u);
  EXPECT_EQ(fork.label(head), 4u);
  EXPECT_TRUE(validate_fork(fork, fig.w).ok);
}

TEST(Balanced, PadFailsWithoutReserve) {
  const CharString w = CharString::parse("hh");
  Fork f;
  const VertexId a = f.add_vertex(kRoot, 1);
  EXPECT_THROW(pad_with_adversarial(f, w, a, 3), std::invalid_argument);
}

TEST(Balanced, ExtendFigOneToBalanced) {
  // Fig. 1's fork has margin 0 over the empty prefix; it must extend to a
  // balanced fork.
  fixtures::Fig1 fig;
  const auto balanced = extend_to_x_balanced(fig.fork, fig.w, 0);
  ASSERT_TRUE(balanced.has_value());
  EXPECT_TRUE(is_balanced(*balanced, fig.w));
  EXPECT_TRUE(validate_fork(*balanced, fig.w).ok);
}

TEST(Balanced, NegativeMarginAdmitsNoExtension) {
  const CharString w = CharString::parse("hh");
  Fork f;
  const VertexId a = f.add_vertex(kRoot, 1);
  f.add_vertex(a, 2);
  EXPECT_FALSE(extend_to_x_balanced(f, w, 0).has_value());
}

struct BalCase {
  double eps, ph;
  std::size_t length;
};

class FactSix : public ::testing::TestWithParam<BalCase> {};

// Fact 6, constructive direction on canonical forks: whenever the recurrence
// says mu_x(y) >= 0, the canonical fork extends to an x-balanced fork (and the
// extension validates). When mu_x(y) < 0, no fork for xy is x-balanced, so in
// particular the canonical fork must not extend.
TEST_P(FactSix, BalancedForkExistsIffMarginNonNegative) {
  const auto [eps, ph, length] = GetParam();
  const SymbolLaw law = bernoulli_condition(eps, ph);
  Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    const CharString w = law.sample_string(length, rng);
    const Fork fork = build_canonical_fork(w);
    for (std::size_t x = 0; x < w.size(); x += 2) {
      const bool margin_ok = relative_margin_recurrence(w, x) >= 0;
      const auto balanced = extend_to_x_balanced(fork, w, x);
      ASSERT_EQ(balanced.has_value(), margin_ok)
          << "w = " << w.to_string() << ", x_len = " << x;
      if (balanced) {
        ASSERT_TRUE(is_x_balanced(*balanced, w, x));
        ASSERT_TRUE(validate_fork(*balanced, w).ok);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, FactSix,
                         ::testing::Values(BalCase{0.3, 0.3, 20}, BalCase{0.1, 0.2, 28},
                                           BalCase{0.5, 0.25, 16}, BalCase{0.2, 0.0, 24}));

}  // namespace
}  // namespace mh
