#include "support/table.hpp"

#include <gtest/gtest.h>

namespace mh {
namespace {

TEST(PaperScientific, MatchesTableOneFormatting) {
  EXPECT_EQ(paper_scientific(5.70e-54L), "5.70E-054");
  EXPECT_EQ(paper_scientific(9.05e-1L), "9.05E-001");
  EXPECT_EQ(paper_scientific(1.02e-264L), "1.02E-264");
  EXPECT_EQ(paper_scientific(1.37e-1L), "1.37E-001");
}

TEST(PaperScientific, HandlesZeroAndOne) {
  EXPECT_EQ(paper_scientific(0.0L), "0.00E+000");
  EXPECT_EQ(paper_scientific(1.0L), "1.00E+000");
}

TEST(PaperScientific, RoundsMantissaCarry) {
  // 9.999e-4 rounds to 1.00e-3.
  EXPECT_EQ(paper_scientific(9.999e-4L), "1.00E-003");
}

TEST(PaperScientific, RejectsNegative) {
  EXPECT_THROW(paper_scientific(-1.0L), std::invalid_argument);
}

TEST(Fixed, FormatsDigits) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "bbbb"});
  t.add_row({"xx", "y"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a   bbbb"), std::string::npos);
  EXPECT_NE(out.find("xx  y"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

}  // namespace
}  // namespace mh
