#include "core/relative_margin.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"
#include "support/random.hpp"

namespace mh {
namespace {

TEST(RelativeMargin, RhoRecurrenceHandChecks) {
  EXPECT_EQ(rho_of(CharString::parse("")), 0);
  EXPECT_EQ(rho_of(CharString::parse("A")), 1);
  EXPECT_EQ(rho_of(CharString::parse("AA")), 2);
  EXPECT_EQ(rho_of(CharString::parse("Ah")), 0);   // 1 -> 0
  EXPECT_EQ(rho_of(CharString::parse("h")), 0);    // floor at 0
  EXPECT_EQ(rho_of(CharString::parse("hH")), 0);
  EXPECT_EQ(rho_of(CharString::parse("AAhh")), 0);
  EXPECT_EQ(rho_of(CharString::parse("AAh")), 1);
}

TEST(RelativeMargin, RhoPrefixesStreamsAllValues) {
  const CharString w = CharString::parse("AAhhA");
  const std::vector<std::int64_t> expected{0, 1, 2, 1, 0, 1};
  EXPECT_EQ(rho_prefixes(w), expected);
}

TEST(RelativeMargin, MuEmptySuffixEqualsRho) {
  const CharString w = CharString::parse("AAh");
  EXPECT_EQ(relative_margin_recurrence(w, 3), rho_of(w));
}

TEST(RelativeMargin, TheoremFiveCaseSplits) {
  // mu_eps("H") = 0 (rho = mu = 0 and b = H holds the margin at zero), while
  // mu_eps("h") = -1 (a uniquely honest leader settles the slot).
  EXPECT_EQ(relative_margin_recurrence(CharString::parse("H"), 0), 0);
  EXPECT_EQ(relative_margin_recurrence(CharString::parse("h"), 0), -1);
  // rho > mu = 0: both h and H hold at zero.
  // w = AhH with x = A: mu_x(eps)=rho(A)=1; after 'h': rho=1>0,mu=1 -> 0;
  // after 'H': rho(Ah)=0=mu -> H keeps 0.
  EXPECT_EQ(relative_margin_recurrence(CharString::parse("AhH"), 1), 0);
  // Same but ending 'h': rho(Ah)=0=mu and b=h -> falls to -1.
  EXPECT_EQ(relative_margin_recurrence(CharString::parse("Ahh"), 1), -1);
  // Adversarial symbols raise the margin unconditionally.
  EXPECT_EQ(relative_margin_recurrence(CharString::parse("AhhA"), 1), 0);
}

TEST(RelativeMargin, MarginCanRecoverAfterGoingNegative) {
  // mu dips below zero and climbs back with a run of A's.
  const CharString w = CharString::parse("hhAAA");
  const std::vector<std::int64_t> trajectory = margin_trajectory(w, 0);
  const std::vector<std::int64_t> expected{0, -1, -2, -1, 0, 1};
  EXPECT_EQ(trajectory, expected);
}

TEST(RelativeMargin, TrajectoryLengthAndStart) {
  const CharString w = CharString::parse("AhAhA");
  for (std::size_t x = 0; x <= w.size(); ++x) {
    const auto trajectory = margin_trajectory(w, x);
    EXPECT_EQ(trajectory.size(), w.size() - x + 1);
    EXPECT_EQ(trajectory.front(), rho_of(w.prefix(x)));
  }
}

TEST(RelativeMargin, MuNeverExceedsRho) {
  const SymbolLaw law = bernoulli_condition(0.2, 0.3);
  Rng rng(55);
  for (int trial = 0; trial < 50; ++trial) {
    const CharString w = law.sample_string(64, rng);
    for (std::size_t x = 0; x <= w.size(); x += 7) {
      MarginProcess p(rho_of(w.prefix(x)));
      for (std::size_t t = x + 1; t <= w.size(); ++t) {
        p.step(w.at(t));
        ASSERT_LE(p.mu(), p.rho());
      }
    }
  }
}

TEST(RelativeMargin, MonotoneInStringOrder) {
  // If x <= y coordinatewise (h < H < A) then margins compare as well: a more
  // adversarial string can only improve the adversary's position.
  const CharString lo = CharString::parse("hhhAh");
  const CharString hi = CharString::parse("hHAAh");
  for (std::size_t x = 0; x <= lo.size(); ++x)
    EXPECT_LE(relative_margin_recurrence(lo, x), relative_margin_recurrence(hi, x));
}

TEST(RelativeMargin, RejectsNegativeInitialReach) {
  EXPECT_THROW(MarginProcess(-1), std::invalid_argument);
}

TEST(RelativeMargin, BivalentStringStaysAtZeroForever) {
  // With ph = 0 and no adversarial slots, mu is pinned at 0: the recurrence's
  // H-case. This is why Theorem 1 requires ph > 0.
  CharString w;
  for (int i = 0; i < 100; ++i) w.push_back(Symbol::H);
  EXPECT_EQ(relative_margin_recurrence(w, 0), 0);
}

}  // namespace
}  // namespace mh
