#include "sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include "core/exact_dp.hpp"

namespace mh {
namespace {

TEST(MonteCarlo, SettlementMatchesExactDp) {
  const SymbolLaw law = table1_law(0.40, 1.0);
  McOptions opt;
  opt.samples = 50'000;
  opt.seed = 71;
  const Proportion mc = mc_settlement_violation(law, 100, opt);
  const double exact = static_cast<double>(settlement_violation_probability(law, 100));
  EXPECT_LE(mc.lo, exact);
  EXPECT_GE(mc.hi, exact);
}

TEST(MonteCarlo, EventualViolationDominatesPointViolation) {
  const SymbolLaw law = table1_law(0.40, 0.5);
  McOptions opt;
  opt.samples = 20'000;
  opt.seed = 72;
  const Proportion at = mc_settlement_violation(law, 60, opt);
  const Proportion eventually = mc_settlement_violation_eventual(law, 60, 120, opt);
  EXPECT_GE(eventually.estimate + 0.01, at.estimate);
}

TEST(MonteCarlo, CatalanScarcityDecreasesWithWindow) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.4);
  McOptions opt;
  opt.samples = 10'000;
  opt.seed = 73;
  const Proportion k20 = mc_no_unique_catalan(law, 20, opt);
  const Proportion k60 = mc_no_unique_catalan(law, 60, opt);
  EXPECT_LT(k60.estimate, k20.estimate);
}

TEST(MonteCarlo, ConsecutiveCatalanRarerThanSingle) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.3);
  McOptions opt;
  opt.samples = 10'000;
  opt.seed = 74;
  const Proportion single = mc_no_unique_catalan(law, 30, opt);
  const Proportion pair = mc_no_consecutive_catalan(law, 30, opt);
  // Failing to find a consecutive pair is at least as likely as failing to
  // find... not exactly comparable events (h-only vs any honest), but for
  // ph-dominant laws the pair event is rarer to satisfy.
  EXPECT_GE(pair.hi + 0.02, single.estimate);
}

TEST(MonteCarlo, CpWindowFailureGrowsWithHorizon) {
  const SymbolLaw law = bernoulli_condition(0.2, 0.3);
  McOptions opt;
  opt.samples = 4'000;
  opt.seed = 75;
  const Proportion short_run = mc_cp_window_failure(law, 100, 25, opt);
  const Proportion long_run = mc_cp_window_failure(law, 400, 25, opt);
  EXPECT_GE(long_run.estimate + 0.01, short_run.estimate);
}

TEST(MonteCarlo, FirstCatalanHistogramMassesSum) {
  const SymbolLaw law = bernoulli_condition(0.4, 0.5);
  McOptions opt;
  opt.samples = 5'000;
  opt.seed = 76;
  const auto histogram = mc_first_catalan_histogram(law, 50, opt);
  std::size_t total = 0;
  for (std::size_t c : histogram) total += c;
  EXPECT_EQ(total, opt.samples);
  EXPECT_EQ(histogram[0], 0u);  // slot indices start at 1
}

TEST(MonteCarlo, HistogramHeadMatchesTheory) {
  // Pr[first uniquely honest Catalan slot = 1] = Pr[slot 1 is h and Catalan].
  // For eps-biased walks this is ph * Pr[walk from -1 never returns to 0]
  // = ph * (1 - p/q) = ph * eps/q.
  const double eps = 0.5, ph = 0.3;
  const SymbolLaw law = bernoulli_condition(eps, ph);
  McOptions opt;
  opt.samples = 200'000;
  opt.seed = 77;
  opt.horizon_slack = 2048;
  const auto histogram = mc_first_catalan_histogram(law, 4, opt);
  const double q = (1.0 + eps) / 2.0;
  const double expected = ph * eps / q;
  const double observed = static_cast<double>(histogram[1]) / opt.samples;
  EXPECT_NEAR(observed, expected, 0.005);
}

}  // namespace
}  // namespace mh
