#include "genfunc/power_series.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mh {
namespace {

constexpr std::size_t N = 64;

TEST(PowerSeries, ConstructionAndAccess) {
  PowerSeries s(N);
  EXPECT_EQ(s.order(), N);
  EXPECT_EQ(s.coeff(0), 0.0L);
  s.set_coeff(3, 2.5L);
  EXPECT_EQ(s.coeff(3), 2.5L);
  EXPECT_EQ(s.coeff(N + 10), 0.0L);  // out of range reads as zero
  EXPECT_THROW(s.set_coeff(N + 1, 1.0L), std::invalid_argument);
}

TEST(PowerSeries, Valuation) {
  EXPECT_EQ(PowerSeries(N).valuation(), N + 1);
  EXPECT_EQ(PowerSeries::constant(N, 2.0L).valuation(), 0u);
  EXPECT_EQ(PowerSeries::monomial(N, 1.0L, 5).valuation(), 5u);
}

TEST(PowerSeries, AddSubMul) {
  // (1 + Z)^2 = 1 + 2Z + Z^2.
  PowerSeries one_plus_z = PowerSeries::constant(N, 1.0L) + PowerSeries::monomial(N, 1.0L, 1);
  const PowerSeries square = one_plus_z * one_plus_z;
  EXPECT_EQ(square.coeff(0), 1.0L);
  EXPECT_EQ(square.coeff(1), 2.0L);
  EXPECT_EQ(square.coeff(2), 1.0L);
  EXPECT_EQ(square.coeff(3), 0.0L);
  const PowerSeries diff = square - one_plus_z;
  EXPECT_EQ(diff.coeff(1), 1.0L);
}

TEST(PowerSeries, MulTruncates) {
  const PowerSeries zn = PowerSeries::monomial(4, 1.0L, 4);
  const PowerSeries product = zn * zn;  // Z^8 truncated away
  for (std::size_t i = 0; i <= 4; ++i) EXPECT_EQ(product.coeff(i), 0.0L);
}

TEST(PowerSeries, GeometricInverse) {
  // (1 - Z)^{-1} = 1 + Z + Z^2 + ...
  const PowerSeries denom = PowerSeries::constant(N, 1.0L) - PowerSeries::monomial(N, 1.0L, 1);
  const PowerSeries inv = denom.inverse();
  for (std::size_t i = 0; i <= N; ++i) EXPECT_NEAR(static_cast<double>(inv.coeff(i)), 1.0, 1e-15);
  // Round trip: denom * inv = 1.
  const PowerSeries id = denom * inv;
  EXPECT_NEAR(static_cast<double>(id.coeff(0)), 1.0, 1e-15);
  for (std::size_t i = 1; i <= N; ++i)
    EXPECT_NEAR(static_cast<double>(id.coeff(i)), 0.0, 1e-15);
}

TEST(PowerSeries, InverseRequiresUnitConstant) {
  EXPECT_THROW(PowerSeries::monomial(N, 1.0L, 1).inverse(), std::invalid_argument);
}

TEST(PowerSeries, SqrtRoundTrip) {
  // sqrt(1 - Z): squared must return 1 - Z.
  const PowerSeries s = PowerSeries::constant(N, 1.0L) - PowerSeries::monomial(N, 1.0L, 1);
  const PowerSeries root = s.sqrt();
  const PowerSeries back = root * root;
  EXPECT_NEAR(static_cast<double>(back.coeff(0)), 1.0, 1e-14);
  EXPECT_NEAR(static_cast<double>(back.coeff(1)), -1.0, 1e-14);
  for (std::size_t i = 2; i <= N; ++i)
    EXPECT_NEAR(static_cast<double>(back.coeff(i)), 0.0, 1e-12);
  // Binomial series check: coeff of Z^1 in sqrt(1 - Z) is -1/2.
  EXPECT_NEAR(static_cast<double>(root.coeff(1)), -0.5, 1e-15);
  EXPECT_NEAR(static_cast<double>(root.coeff(2)), -0.125, 1e-15);
}

TEST(PowerSeries, DividedByWithValuation) {
  // (Z^2 + Z^3) / Z = Z + Z^2.
  const PowerSeries num =
      PowerSeries::monomial(N, 1.0L, 2) + PowerSeries::monomial(N, 1.0L, 3);
  const PowerSeries den = PowerSeries::monomial(N, 1.0L, 1);
  const PowerSeries q = num.dividedBy(den);
  EXPECT_EQ(q.coeff(1), 1.0L);
  EXPECT_EQ(q.coeff(2), 1.0L);
  EXPECT_EQ(q.coeff(0), 0.0L);
}

TEST(PowerSeries, DividedByRejectsImproperQuotient) {
  const PowerSeries num = PowerSeries::constant(N, 1.0L);
  const PowerSeries den = PowerSeries::monomial(N, 1.0L, 1);
  EXPECT_THROW(num.dividedBy(den), std::invalid_argument);
}

TEST(PowerSeries, ShiftUpDown) {
  const PowerSeries s = PowerSeries::constant(N, 3.0L);
  const PowerSeries up = s.shifted_up(2);
  EXPECT_EQ(up.coeff(2), 3.0L);
  EXPECT_EQ(up.coeff(0), 0.0L);
  EXPECT_EQ(up.shifted_down(2).coeff(0), 3.0L);
  EXPECT_THROW(up.shifted_down(3), std::invalid_argument);
}

TEST(PowerSeries, EvaluateHorner) {
  PowerSeries s(4);
  s.set_coeff(0, 1.0L);
  s.set_coeff(1, 2.0L);
  s.set_coeff(2, 3.0L);
  EXPECT_NEAR(static_cast<double>(s.evaluate(2.0L)), 1 + 4 + 12, 1e-15);
}

TEST(PowerSeries, PartialSum) {
  const PowerSeries geo =
      (PowerSeries::constant(N, 1.0L) - PowerSeries::monomial(N, 0.5L, 1)).inverse();
  EXPECT_NEAR(static_cast<double>(geo.partial_sum(3)), 1.0 + 0.5 + 0.25, 1e-15);
  EXPECT_NEAR(static_cast<double>(geo.partial_sum(0)), 0.0, 1e-15);
}

TEST(PowerSeries, MixedOrderArithmeticRejected) {
  EXPECT_THROW(PowerSeries(4) + PowerSeries(5), std::invalid_argument);
}

}  // namespace
}  // namespace mh
