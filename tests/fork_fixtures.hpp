// Shared fork fixtures realizing the paper's figures.
//
// Figure 1 cannot be reproduced pixel-perfectly from the text, but the fixture
// realizes its label multiset {1,2,2,3,4,4,4,5,6,6,7,8,9,9} for
// w = hAhAhHAAH together with every property the caption states: honest
// depths strictly increase, two honest vertices are labeled 6 and extend
// different parents of equal depth, two honest vertices are labeled 9, and
// two maximum-length tines are disjoint (share only the root).
#pragma once

#include "chars/char_string.hpp"
#include "fork/fork.hpp"

namespace mh::fixtures {

struct Fig1 {
  CharString w = CharString::parse("hAhAhHAAH");
  Fork fork;
  VertexId v1, a2a, a2b, v3, a4a, a4b, a4c, v5, v6a, v6b, a7, a8, v9a, v9b;

  Fig1() {
    v1 = fork.add_vertex(kRoot, 1);
    a2a = fork.add_vertex(v1, 2);
    a2b = fork.add_vertex(kRoot, 2);
    v3 = fork.add_vertex(a2b, 3);
    a4a = fork.add_vertex(a2a, 4);
    a4b = fork.add_vertex(kRoot, 4);
    a4c = fork.add_vertex(a2b, 4);
    v5 = fork.add_vertex(v3, 5);
    v6a = fork.add_vertex(v5, 6);
    v6b = fork.add_vertex(a4a, 6);
    a7 = fork.add_vertex(v6a, 7);
    a8 = fork.add_vertex(v6b, 8);
    v9a = fork.add_vertex(a7, 9);
    v9b = fork.add_vertex(a8, 9);
  }
};

/// Figure 2: a balanced fork for w = hAhAhA; two disjoint maximum-length
/// tines, one honest (1 -> 3 -> 5), one adversarial (2 -> 4 -> 6).
struct Fig2 {
  CharString w = CharString::parse("hAhAhA");
  Fork fork;
  VertexId h1, h3, h5, a2, a4, a6;

  Fig2() {
    h1 = fork.add_vertex(kRoot, 1);
    h3 = fork.add_vertex(h1, 3);
    h5 = fork.add_vertex(h3, 5);
    a2 = fork.add_vertex(kRoot, 2);
    a4 = fork.add_vertex(a2, 4);
    a6 = fork.add_vertex(a4, 6);
  }
};

/// Figure 3: an x-balanced fork for w = hhhAhA with x = hh; the two
/// maximum-length tines share the honest prefix 1 -> 2 and diverge after it.
struct Fig3 {
  CharString w = CharString::parse("hhhAhA");
  std::size_t x_len = 2;
  Fork fork;
  VertexId h1, h2, h3, h5, a4, a6;

  Fig3() {
    h1 = fork.add_vertex(kRoot, 1);
    h2 = fork.add_vertex(h1, 2);
    h3 = fork.add_vertex(h2, 3);
    h5 = fork.add_vertex(h3, 5);
    a4 = fork.add_vertex(h2, 4);
    a6 = fork.add_vertex(a4, 6);
  }
};

}  // namespace mh::fixtures
