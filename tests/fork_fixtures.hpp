// Shared fork fixtures realizing the paper's figures.
//
// Figure 1 cannot be reproduced pixel-perfectly from the text, but the fixture
// realizes its label multiset {1,2,2,3,4,4,4,5,6,6,7,8,9,9} for
// w = hAhAhHAAH together with every property the caption states: honest
// depths strictly increase, two honest vertices are labeled 6 and extend
// different parents of equal depth, two honest vertices are labeled 9, and
// two maximum-length tines are disjoint (share only the root).
#pragma once

#include <initializer_list>
#include <utility>
#include <vector>

#include "chars/char_string.hpp"
#include "fork/fork.hpp"
#include "protocol/blocktree.hpp"
#include "protocol/leader.hpp"
#include "support/random.hpp"

namespace mh::fixtures {

// ---------------------------------------------------------------------------
// Shared builders (deduplicated from the per-file ad-hoc helpers of
// test_fork / test_margin / test_blocktree / test_adversary; the oracle tests
// use them too).
// ---------------------------------------------------------------------------

/// A single chain kRoot -> labels[0] -> labels[1] -> ... (labels must strictly
/// increase). The minimal fork of an honest lone-leader execution.
inline Fork chain_fork(std::initializer_list<std::uint32_t> labels) {
  Fork f;
  VertexId v = kRoot;
  for (std::uint32_t label : labels) v = f.add_vertex(v, label);
  return f;
}

/// Extends `tree` with a chain of blocks at the given slots, returning the
/// blocks in order (back() is the tip). Issuer and payload default to honest
/// party 0; distinct payloads keep hashes distinct across parallel chains.
inline std::vector<Block> grow_chain(BlockTree& tree, BlockHash parent,
                                     std::initializer_list<std::uint64_t> slots,
                                     PartyId issuer = 0, std::uint64_t payload = 0) {
  std::vector<Block> chain;
  for (std::uint64_t slot : slots) {
    const Block b = make_block(parent, slot, issuer, payload);
    tree.add(b);
    parent = b.hash;
    chain.push_back(b);
  }
  return chain;
}

/// Visits every characteristic string in {h,H,A}^n in radix-3 order (symbol
/// index = Symbol enum value). The exhaustive-witness tests (margin brute
/// force, DP enumeration, distinct-balance validation) share this so the
/// alphabet and digit decoding live in one place.
template <typename Visit>
void for_each_char_string(std::size_t n, Visit&& visit) {
  constexpr Symbol alphabet[3] = {Symbol::h, Symbol::H, Symbol::A};
  std::size_t combos = 1;
  for (std::size_t i = 0; i < n; ++i) combos *= 3;
  std::vector<Symbol> symbols(n);
  for (std::size_t c = 0; c < combos; ++c) {
    std::size_t digits = c;
    for (std::size_t t = 0; t < n; ++t) {
      symbols[t] = alphabet[digits % 3];
      digits /= 3;
    }
    visit(std::as_const(symbols));
  }
}

/// Materializes a leader schedule from characteristic-string text: 'h' elects
/// one random honest party, 'H' two distinct ones (the minimal realization of
/// a multiply honest slot), 'A' the adversarial coalition.
inline LeaderSchedule schedule_from_text(const char* text, std::size_t parties, Rng& rng) {
  MH_REQUIRE_MSG(parties >= 2, "H slots need two distinct honest parties");
  const CharString w = CharString::parse(text);
  std::vector<SlotLeaders> slots;
  for (std::size_t t = 1; t <= w.size(); ++t) {
    SlotLeaders l;
    if (w.at(t) == Symbol::A) {
      l.adversarial = true;
    } else if (w.at(t) == Symbol::h) {
      l.honest = {static_cast<PartyId>(rng.below(parties))};
    } else {
      const PartyId first = static_cast<PartyId>(rng.below(parties));
      PartyId second = first;
      while (second == first) second = static_cast<PartyId>(rng.below(parties));
      l.honest = {first, second};
    }
    slots.push_back(std::move(l));
  }
  return LeaderSchedule(std::move(slots), parties);
}

struct Fig1 {
  CharString w = CharString::parse("hAhAhHAAH");
  Fork fork;
  VertexId v1, a2a, a2b, v3, a4a, a4b, a4c, v5, v6a, v6b, a7, a8, v9a, v9b;

  Fig1() {
    v1 = fork.add_vertex(kRoot, 1);
    a2a = fork.add_vertex(v1, 2);
    a2b = fork.add_vertex(kRoot, 2);
    v3 = fork.add_vertex(a2b, 3);
    a4a = fork.add_vertex(a2a, 4);
    a4b = fork.add_vertex(kRoot, 4);
    a4c = fork.add_vertex(a2b, 4);
    v5 = fork.add_vertex(v3, 5);
    v6a = fork.add_vertex(v5, 6);
    v6b = fork.add_vertex(a4a, 6);
    a7 = fork.add_vertex(v6a, 7);
    a8 = fork.add_vertex(v6b, 8);
    v9a = fork.add_vertex(a7, 9);
    v9b = fork.add_vertex(a8, 9);
  }
};

/// Figure 2: a balanced fork for w = hAhAhA; two disjoint maximum-length
/// tines, one honest (1 -> 3 -> 5), one adversarial (2 -> 4 -> 6).
struct Fig2 {
  CharString w = CharString::parse("hAhAhA");
  Fork fork;
  VertexId h1, h3, h5, a2, a4, a6;

  Fig2() {
    h1 = fork.add_vertex(kRoot, 1);
    h3 = fork.add_vertex(h1, 3);
    h5 = fork.add_vertex(h3, 5);
    a2 = fork.add_vertex(kRoot, 2);
    a4 = fork.add_vertex(a2, 4);
    a6 = fork.add_vertex(a4, 6);
  }
};

/// Figure 3: an x-balanced fork for w = hhhAhA with x = hh; the two
/// maximum-length tines share the honest prefix 1 -> 2 and diverge after it.
struct Fig3 {
  CharString w = CharString::parse("hhhAhA");
  std::size_t x_len = 2;
  Fork fork;
  VertexId h1, h2, h3, h5, a4, a6;

  Fig3() {
    h1 = fork.add_vertex(kRoot, 1);
    h2 = fork.add_vertex(h1, 2);
    h3 = fork.add_vertex(h2, 3);
    h5 = fork.add_vertex(h3, 5);
    a4 = fork.add_vertex(h2, 4);
    a6 = fork.add_vertex(a4, 6);
  }
};

}  // namespace mh::fixtures
