#include "fork/margin.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"
#include "core/astar.hpp"
#include "fork/reach.hpp"
#include "fork_fixtures.hpp"
#include "support/random.hpp"

namespace mh {
namespace {

TEST(Margin, LinearPassMatchesBruteforceOnFixtures) {
  fixtures::Fig1 fig;
  for (std::size_t x = 0; x <= fig.w.size(); ++x)
    EXPECT_EQ(relative_margin(fig.fork, fig.w, x),
              relative_margin_bruteforce(fig.fork, fig.w, x))
        << "x_len " << x;
}

TEST(Margin, FullSuffixMarginEqualsMaxReach) {
  // mu_x(eps) = rho(x): with the whole string as prefix, every pair (and every
  // self-pair) is disjoint, so the margin equals the maximum reach (Claim 3).
  fixtures::Fig1 fig;
  EXPECT_EQ(relative_margin(fig.fork, fig.w, fig.w.size()), max_reach(fig.fork, fig.w));
}

TEST(Margin, BalancedForkHasNonNegativeMargin) {
  fixtures::Fig2 fig2;
  EXPECT_GE(margin(fig2.fork, fig2.w), 0);
  fixtures::Fig3 fig3;
  EXPECT_GE(relative_margin(fig3.fork, fig3.w, fig3.x_len), 0);
}

TEST(Margin, WitnessPairIsDisjointAndAchievesValue) {
  fixtures::Fig1 fig;
  for (std::size_t x = 0; x <= fig.w.size(); ++x) {
    const MarginWitness witness = relative_margin_witness(fig.fork, fig.w, x);
    EXPECT_TRUE(fig.fork.disjoint_over_suffix(witness.t1, witness.t2, x));
    const auto reaches = all_reaches(fig.fork, fig.w);
    EXPECT_EQ(std::min(reaches[witness.t1], reaches[witness.t2]), witness.value);
  }
}

TEST(Margin, SingleChainMarginIsNegativeEarly) {
  // A lone honest chain admits no early-diverging pair: margin over the whole
  // string must be the root's reach.
  const CharString w = CharString::parse("hhh");
  const Fork f = fixtures::chain_fork({1, 2, 3});
  EXPECT_EQ(margin(f, w), -3);  // root self-pair: reach(root) = 0 - 3
}

struct MarginCase {
  double eps, ph;
  std::size_t length;
};

class MarginRandomized : public ::testing::TestWithParam<MarginCase> {};

TEST_P(MarginRandomized, LinearPassMatchesBruteforceOnCanonicalForks) {
  const auto [eps, ph, length] = GetParam();
  const SymbolLaw law = bernoulli_condition(eps, ph);
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    const CharString w = law.sample_string(length, rng);
    const Fork fork = build_canonical_fork(w);
    for (std::size_t x = 0; x <= w.size(); x += 3)
      ASSERT_EQ(relative_margin(fork, w, x), relative_margin_bruteforce(fork, w, x))
          << "w = " << w.to_string() << ", x_len = " << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, MarginRandomized,
                         ::testing::Values(MarginCase{0.3, 0.3, 24}, MarginCase{0.1, 0.1, 32},
                                           MarginCase{0.5, 0.5, 16}, MarginCase{0.2, 0.05, 40}));

}  // namespace
}  // namespace mh
