#include "protocol/bridge.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"
#include "delta/delta_fork.hpp"
#include "fork/validate.hpp"
#include "protocol/simulation.hpp"

namespace mh {
namespace {

TEST(Bridge, RebuildsTreeShape) {
  std::vector<Block> blocks;
  const Block a = make_block(genesis_block().hash, 1, 0, 0);
  const Block b = make_block(a.hash, 2, 1, 0);
  const Block c = make_block(a.hash, 3, kAdversary, 0);
  blocks = {a, b, c};
  const ExecutionFork ef = fork_from_blocks(blocks);
  EXPECT_EQ(ef.fork.vertex_count(), 4u);
  const VertexId va = ef.vertex_of.at(a.hash);
  EXPECT_EQ(ef.fork.label(va), 1u);
  EXPECT_EQ(ef.fork.parent(ef.vertex_of.at(b.hash)), va);
  EXPECT_EQ(ef.fork.parent(ef.vertex_of.at(c.hash)), va);
  EXPECT_EQ(ef.fork.depth(ef.vertex_of.at(b.hash)), 2u);
}

TEST(Bridge, RejectsOrphans) {
  const Block orphan = make_block(0x1234, 1, 0, 0);
  EXPECT_THROW(fork_from_blocks({orphan}), std::invalid_argument);
}

// The central soundness property of the simulator: every honest execution
// maps onto a valid fork for its characteristic string — the protocol never
// leaves the combinatorial model.
TEST(Bridge, HonestExecutionsYieldValidForks) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.4);
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 80, 5, rng);
    Simulation sim(schedule, SimulationConfig{TieBreak::ConsistentHash, rng()}, 0, nullptr);
    sim.run();
    const ExecutionFork ef = fork_from_blocks(sim.all_blocks());
    const auto result = validate_fork(ef.fork, schedule.characteristic_sync());
    ASSERT_TRUE(result.ok) << result.message;
  }
}

TEST(Bridge, DelayedExecutionsYieldValidDeltaForks) {
  const TetraLaw law = theorem7_law(0.4, 0.05, 0.2);
  Rng rng(42);
  const std::size_t delta = 3;
  for (int trial = 0; trial < 10; ++trial) {
    const LeaderSchedule schedule = LeaderSchedule::from_tetra_law(law, 100, 5, rng);

    // A delaying adversary: hold every block back the full Delta for a random
    // half of the recipients.
    class Delayer : public Adversary {
     public:
      Delayer(std::size_t delta, std::uint64_t seed) : delta_(delta), rng_(seed) {}
      std::vector<std::size_t> delivery_delays(const Block&, std::size_t,
                                               Simulation& sim) override {
        std::vector<std::size_t> delays(sim.nodes().size(), 0);
        for (auto& d : delays) d = rng_.bernoulli(0.5) ? delta_ : 0;
        return delays;
      }

     private:
      std::size_t delta_;
      Rng rng_;
    } delayer(delta, rng());

    Simulation sim(schedule, SimulationConfig{TieBreak::ConsistentHash, rng()}, delta,
                   &delayer);
    sim.run();
    const ExecutionFork ef = fork_from_blocks(sim.all_blocks());
    const auto result = validate_delta_fork(ef.fork, schedule.characteristic(), delta);
    ASSERT_TRUE(result.ok) << result.message;
    // Synchronous validation must generally fail... only if a delay actually
    // caused an equal-depth pair; do not assert it, just exercise the check.
    validate_delta_fork(ef.fork, schedule.characteristic(), 0);
  }
}

}  // namespace
}  // namespace mh
