#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mh {
namespace {

TEST(Bounds, Theorem1Exponent) {
  // min(eps^3, eps^2 ph).
  const SymbolLaw big_ph = bernoulli_condition(0.2, 0.5);
  EXPECT_NEAR(theorem1_exponent(big_ph), 0.2 * 0.2 * 0.2, 1e-15);
  const SymbolLaw small_ph = bernoulli_condition(0.2, 0.01);
  EXPECT_NEAR(theorem1_exponent(small_ph), 0.2 * 0.2 * 0.01, 1e-15);
}

TEST(Bounds, Theorem2Exponent) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.0);
  EXPECT_NEAR(theorem2_exponent(law), 0.027, 1e-12);
}

TEST(Bounds, Bound1TailDecreasesInK) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.4);
  const long double t50 = bound1_tail(law, 50);
  const long double t100 = bound1_tail(law, 100);
  const long double t200 = bound1_tail(law, 200);
  EXPECT_LT(t100, t50);
  EXPECT_LT(t200, t100);
  // Exponential shape: log-ratio roughly doubles.
  const double r1 = std::log(static_cast<double>(t100 / t50));
  const double r2 = std::log(static_cast<double>(t200 / t100));
  EXPECT_NEAR(r2 / r1, 2.0, 0.5);
}

TEST(Bounds, Bound1RateMatchesTailSlope) {
  // The tail slope approaches ln R from above (polynomial prefactors decay
  // like 1/k); compare deep into the asymptotic regime with slack.
  const SymbolLaw law = bernoulli_condition(0.4, 0.3);
  const double rate = static_cast<double>(bound1_decay_rate(law));
  const double slope =
      -std::log(static_cast<double>(bound1_tail(law, 700) / bound1_tail(law, 500))) / 200.0;
  EXPECT_GE(slope, rate * 0.98);
  EXPECT_NEAR(slope, rate, rate * 0.30);
}

TEST(Bounds, Bound2RateMatchesTailSlope) {
  const SymbolLaw law = bernoulli_condition(0.5, 0.0);
  const double rate = static_cast<double>(bound2_decay_rate(law));
  const double slope =
      -std::log(static_cast<double>(bound2_tail(law, 400) / bound2_tail(law, 300))) / 100.0;
  EXPECT_NEAR(slope, rate, rate * 0.2);
}

TEST(Bounds, Bound3ShrinksWithKGrowsWithDelta) {
  const double eps = 0.3;
  EXPECT_LT(bound3_probability(eps, 2, 400), bound3_probability(eps, 2, 200));
  EXPECT_GT(bound3_probability(eps, 8, 400), bound3_probability(eps, 2, 400));
  EXPECT_LE(bound3_probability(eps, 0, 1), 1.0L);
}

TEST(Bounds, Bound3MatchesFormula) {
  const double eps = 0.2;
  const std::size_t delta = 3, k = 500;
  const long double expected =
      (1.0L + delta) / sqrtl(static_cast<long double>(k)) *
      expl(-static_cast<long double>(k) * 0.04L / 2.0L + 4.0L * 0.2L / 0.8L);
  EXPECT_NEAR(static_cast<double>(bound3_probability(eps, delta, k)),
              static_cast<double>(expected), 1e-12);
}

TEST(Bounds, InputValidation) {
  EXPECT_THROW(bound3_probability(0.0, 1, 10), std::invalid_argument);
  EXPECT_THROW(bound3_probability(1.0, 1, 10), std::invalid_argument);
  EXPECT_THROW(bound3_probability(0.5, 1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mh
