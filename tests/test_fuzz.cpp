// Failure-injection fuzzing: a chaotic adversary exercises every lever the
// model grants (random minting on random parents, targeted injections,
// per-recipient delays up to Delta, arbitrary tie-breaking) while the
// invariants that anchor the reproduction are asserted on every execution:
//   * executions always map onto valid (Delta-)forks;
//   * honest views only ever contain valid blocks from the global record;
//   * observed settlement violations never beat the Theorem-5 recurrence.
#include <gtest/gtest.h>

#include "core/relative_margin.hpp"
#include "delta/delta_fork.hpp"
#include "fork/validate.hpp"
#include "protocol/bridge.hpp"
#include "protocol/simulation.hpp"

namespace mh {
namespace {

class ChaosMonkey : public Adversary {
 public:
  explicit ChaosMonkey(std::uint64_t seed, std::size_t delta) : rng_(seed), delta_(delta) {}

  void on_slot_begin(std::size_t slot, Simulation& sim) override {
    if (!sim.schedule().leaders(slot).adversarial) return;
    // Mint up to three blocks on random known parents with older slots.
    const std::size_t mints = rng_.below(4);
    for (std::size_t i = 0; i < mints; ++i) {
      const auto& blocks = sim.all_blocks();
      const Block& parent = blocks[rng_.below(blocks.size())];
      if (parent.slot >= slot) continue;
      const Block minted = sim.mint_adversarial(parent.hash, slot, rng_());
      // Reveal to a random subset, now or later.
      for (PartyId p = 0; p < sim.nodes().size(); ++p)
        if (rng_.bernoulli(0.7))
          sim.network().inject(minted, p, slot + rng_.below(3));
    }
  }

  std::vector<std::size_t> delivery_delays(const Block&, std::size_t, Simulation& sim) override {
    std::vector<std::size_t> delays(sim.nodes().size());
    for (auto& d : delays) d = delta_ == 0 ? 0 : rng_.below(delta_ + 1);
    return delays;
  }

  BlockHash break_tie(PartyId, const std::vector<BlockHash>& candidates, Simulation&) override {
    return candidates[rng_.below(candidates.size())];
  }

 private:
  Rng rng_;
  std::size_t delta_;
};

struct FuzzCase {
  double eps, ph;
  std::size_t delta;
};

class ChaosFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ChaosFuzz, InvariantsSurviveChaos) {
  const auto [eps, ph, delta] = GetParam();
  const SymbolLaw sync_law = bernoulli_condition(eps, ph);
  Rng rng(0xfadedcafe ^ static_cast<std::uint64_t>(delta));
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t horizon = 40 + rng.below(40);
    const LeaderSchedule schedule =
        LeaderSchedule::from_symbol_law(sync_law, horizon, 4 + rng.below(5), rng);
    ChaosMonkey monkey(rng(), delta);
    const TieBreak rule = rng.bernoulli(0.5) ? TieBreak::AdversarialOrder
                                             : TieBreak::ConsistentHash;
    Simulation sim(schedule, SimulationConfig{rule, rng()}, delta, &monkey);
    sim.run();

    // Invariant 1: the execution maps onto a valid (Delta-)fork.
    const ExecutionFork ef = fork_from_blocks(sim.all_blocks());
    const CharString w = schedule.characteristic_sync();
    if (delta == 0) {
      const auto result = validate_fork(ef.fork, w);
      ASSERT_TRUE(result.ok) << result.message;
    } else {
      const auto result = validate_delta_fork(ef.fork, schedule.characteristic(), delta);
      ASSERT_TRUE(result.ok) << result.message;
    }

    // Invariant 2: every block an honest node holds exists in the global
    // record with intact headers.
    for (const HonestNode& node : sim.nodes())
      for (BlockHash h : node.tree().arrival_order()) {
        ASSERT_TRUE(sim.global_tree().contains(h));
        ASSERT_TRUE(verify_block_integrity(sim.global_tree().block(h)));
      }

    // Invariant 3 (synchronous only): no chaos beats the optimal adversary.
    if (delta == 0) {
      for (std::size_t s = 1; s + 5 <= horizon; s += 7) {
        if (sim.observed_settlement_violation(s)) {
          ASSERT_GE(relative_margin_recurrence(w, s - 1), 0)
              << "chaos beat the recurrence at s = " << s << " on " << w.to_string();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ChaosFuzz,
                         ::testing::Values(FuzzCase{0.3, 0.3, 0}, FuzzCase{0.2, 0.1, 0},
                                           FuzzCase{0.3, 0.3, 2}, FuzzCase{0.1, 0.2, 4},
                                           FuzzCase{0.5, 0.0, 1}));

}  // namespace
}  // namespace mh
