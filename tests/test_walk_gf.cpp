#include "genfunc/walk_gf.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mh {
namespace {

constexpr std::size_t N = 200;

TEST(WalkGF, DescentSatisfiesFunctionalEquation) {
  // D = qZ + pZ D^2.
  const WalkGF walk(0.3L);
  const PowerSeries d = walk.descent_series(N);
  const PowerSeries rhs = PowerSeries::monomial(N, walk.q, 1) +
                          (d * d).shifted_up(1).scaled(walk.p);
  for (std::size_t i = 0; i <= N; ++i)
    ASSERT_NEAR(static_cast<double>(d.coeff(i)), static_cast<double>(rhs.coeff(i)), 1e-15)
        << i;
}

TEST(WalkGF, AscentSatisfiesFunctionalEquation) {
  // A = pZ + qZ A^2.
  const WalkGF walk(0.25L);
  const PowerSeries a = walk.ascent_series(N);
  const PowerSeries rhs = PowerSeries::monomial(N, walk.p, 1) +
                          (a * a).shifted_up(1).scaled(walk.q);
  for (std::size_t i = 0; i <= N; ++i)
    ASSERT_NEAR(static_cast<double>(a.coeff(i)), static_cast<double>(rhs.coeff(i)), 1e-15)
        << i;
}

TEST(WalkGF, DescentIsProbabilityGF) {
  // D(1) = 1: the biased walk descends almost surely. Truncation leaves a
  // geometric tail, so allow slack.
  const WalkGF walk(0.2L);
  const PowerSeries d = walk.descent_series(2000);
  EXPECT_NEAR(static_cast<double>(d.partial_sum(2001)), 1.0, 1e-6);
  for (std::size_t i = 0; i <= 100; ++i) EXPECT_GE(d.coeff(i), 0.0L);
}

TEST(WalkGF, AscentIsDefective) {
  // A(1) = p/q < 1: the walk may never ascend.
  const WalkGF walk(0.2L);
  const PowerSeries a = walk.ascent_series(4000);
  EXPECT_NEAR(static_cast<double>(a.partial_sum(4001)),
              static_cast<double>(walk.p / walk.q), 1e-6);
}

TEST(WalkGF, ClosedFormMatchesSeriesEvaluation) {
  const WalkGF walk(0.35L);
  const PowerSeries d = walk.descent_series(600);
  const PowerSeries a = walk.ascent_series(600);
  for (long double z : {0.1L, 0.5L, 0.9L, 1.0L}) {
    EXPECT_NEAR(static_cast<double>(*walk.descent_eval(z)),
                static_cast<double>(d.evaluate(z)), 1e-9);
    EXPECT_NEAR(static_cast<double>(*walk.ascent_eval(z)),
                static_cast<double>(a.evaluate(z)), 1e-9);
  }
}

TEST(WalkGF, EvalOutsideDomainIsNull) {
  const WalkGF walk(0.4L);
  const long double radius = walk.walk_radius();
  EXPECT_FALSE(walk.descent_eval(radius + 0.01L).has_value());
  EXPECT_TRUE(walk.descent_eval(radius - 0.01L).has_value());
}

TEST(WalkGF, WalkRadiusFormula) {
  const WalkGF walk(0.25L);  // eps = 0.5, radius 1/sqrt(1 - eps^2)
  EXPECT_NEAR(static_cast<double>(walk.walk_radius()), 1.0 / std::sqrt(0.75), 1e-12);
}

TEST(WalkGF, CompositionMatchesPointwise) {
  // A(Z D(Z)) series vs closed-form evaluation.
  const WalkGF walk(0.3L);
  const PowerSeries azd = walk.ascent_of_zd(800);
  for (long double z : {0.2L, 0.6L, 0.95L}) {
    EXPECT_NEAR(static_cast<double>(*walk.ascent_of_zd_eval(z)),
                static_cast<double>(azd.evaluate(z)), 1e-9)
        << static_cast<double>(z);
  }
}

TEST(WalkGF, CompositeRadiusBetweenOneAndWalkRadius) {
  for (long double p : {0.1L, 0.25L, 0.4L, 0.45L}) {
    const WalkGF walk(p);
    const long double r1 = walk.composite_radius();
    EXPECT_GT(r1, 1.0L);
    EXPECT_LT(r1, walk.walk_radius());
  }
}

TEST(WalkGF, CompositeRadiusMatchesPaperAsymptotics) {
  // Eq. (5): R1 = 1 + eps^3/2 + O(eps^4).
  for (double eps : {0.05, 0.1, 0.2}) {
    const WalkGF walk(static_cast<long double>((1.0 - eps) / 2.0));
    const double r1 = static_cast<double>(walk.composite_radius());
    const double predicted = 1.0 + eps * eps * eps / 2.0;
    EXPECT_NEAR(r1, predicted, eps * eps * eps * eps * 4.0) << eps;
  }
}

TEST(WalkGF, RejectsDegenerateBias) {
  EXPECT_THROW(WalkGF(0.0L), std::invalid_argument);
  EXPECT_THROW(WalkGF(0.5L), std::invalid_argument);
  EXPECT_THROW(WalkGF(0.7L), std::invalid_argument);
}

}  // namespace
}  // namespace mh
