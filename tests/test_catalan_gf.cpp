#include "genfunc/catalan_gf.hpp"

#include <gtest/gtest.h>

#include "genfunc/consecutive_gf.hpp"
#include "sim/monte_carlo.hpp"

namespace mh {
namespace {

TEST(CatalanGF, CHatIsProbabilityGF) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.3);
  const CatalanGF gf(law, 3000);
  EXPECT_NEAR(static_cast<double>(gf.c_hat().partial_sum(3001)), 1.0, 1e-5);
  for (std::size_t i = 0; i <= 200; ++i) EXPECT_GE(gf.c_hat().coeff(i), -1e-18L) << i;
}

TEST(CatalanGF, SmoothedSeriesIsProbabilityGF) {
  const SymbolLaw law = bernoulli_condition(0.4, 0.4);
  const CatalanGF gf(law, 2000);
  EXPECT_NEAR(static_cast<double>(gf.c_smoothed().partial_sum(2001)), 1.0, 1e-5);
}

TEST(CatalanGF, TailsAreMonotoneDecreasing) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.5);
  const CatalanGF gf(law, 1024);
  long double prev = 1.0L;
  for (std::size_t k = 1; k <= 512; k *= 2) {
    const long double tail = gf.smoothed_tail(k);
    EXPECT_LE(tail, prev + 1e-18L);
    prev = tail;
  }
}

TEST(CatalanGF, RadiusExceedsOne) {
  for (double eps : {0.1, 0.3, 0.5}) {
    for (double ph_frac : {0.2, 1.0}) {
      const double ph = ph_frac * (1.0 + eps) / 2.0;
      const CatalanGF gf(bernoulli_condition(eps, ph), 8);
      EXPECT_GT(gf.radius(), 1.0L) << eps << " " << ph;
      EXPECT_GT(gf.decay_rate(), 0.0L);
    }
  }
}

TEST(CatalanGF, RateIncreasesWithEpsilon) {
  const CatalanGF weak(bernoulli_condition(0.1, 0.4), 8);
  const CatalanGF strong(bernoulli_condition(0.4, 0.4), 8);
  EXPECT_GT(strong.decay_rate(), weak.decay_rate());
}

TEST(CatalanGF, RateScalesWithPhWhenPhSmall) {
  // Theorem 1: rate ~ min(eps^3, eps^2 ph). Halving a small ph roughly halves
  // the rate.
  const double eps = 0.5;
  const CatalanGF a(bernoulli_condition(eps, 0.02), 8);
  const CatalanGF b(bernoulli_condition(eps, 0.01), 8);
  const double ratio = static_cast<double>(a.decay_rate() / b.decay_rate());
  EXPECT_NEAR(ratio, 2.0, 0.35);
}

// The GF tail is a *bound*: it must dominate the Monte-Carlo estimate of the
// true event "no uniquely honest Catalan slot in the window".
struct GfCase {
  double eps, ph;
  std::size_t k;
};

class Bound1Dominates : public ::testing::TestWithParam<GfCase> {};

TEST_P(Bound1Dominates, TailUpperBoundsTrueProbability) {
  const auto [eps, ph, k] = GetParam();
  const SymbolLaw law = bernoulli_condition(eps, ph);
  const CatalanGF gf(law, 4 * k + 64);
  McOptions opt;
  opt.samples = 20'000;
  opt.seed = 5150;
  const Proportion mc = mc_no_unique_catalan(law, k, opt);
  EXPECT_GE(static_cast<double>(gf.smoothed_tail(k)), mc.lo)
      << "GF tail " << static_cast<double>(gf.smoothed_tail(k)) << " vs MC [" << mc.lo << ", "
      << mc.hi << "]";
}

INSTANTIATE_TEST_SUITE_P(Grid, Bound1Dominates,
                         ::testing::Values(GfCase{0.3, 0.3, 30}, GfCase{0.2, 0.2, 50},
                                           GfCase{0.5, 0.2, 20}, GfCase{0.4, 0.05, 40}));

TEST(ConsecutiveGF, MHatIsProbabilityGF) {
  const SymbolLaw law = bernoulli_condition(0.4, 0.0);
  const ConsecutiveCatalanGF gf(law, 3000);
  EXPECT_NEAR(static_cast<double>(gf.m_hat().partial_sum(3001)), 1.0, 1e-4);
}

TEST(ConsecutiveGF, RadiusMatchesEpsCubedOverTwo) {
  // Section 5.2: radius = 1 + eps^3/2 + O(eps^4).
  for (double eps : {0.1, 0.2}) {
    const SymbolLaw law = bernoulli_condition(eps, 0.0);
    const ConsecutiveCatalanGF gf(law, 8);
    EXPECT_NEAR(static_cast<double>(gf.radius()), 1.0 + eps * eps * eps / 2.0,
                eps * eps * eps * eps * 4.0)
        << eps;
  }
}

class Bound2Dominates : public ::testing::TestWithParam<GfCase> {};

TEST_P(Bound2Dominates, TailUpperBoundsTrueProbability) {
  const auto [eps, ph, k] = GetParam();
  const SymbolLaw law = bernoulli_condition(eps, ph);
  const ConsecutiveCatalanGF gf(law, 4 * k + 64);
  McOptions opt;
  opt.samples = 20'000;
  opt.seed = 616;
  const Proportion mc = mc_no_consecutive_catalan(law, k, opt);
  EXPECT_GE(static_cast<double>(gf.smoothed_tail(k)) + 1e-9, mc.lo);
}

INSTANTIATE_TEST_SUITE_P(Grid, Bound2Dominates,
                         ::testing::Values(GfCase{0.4, 0.0, 30}, GfCase{0.3, 0.0, 60},
                                           GfCase{0.5, 0.0, 40}));

TEST(CatalanGF, RequiresPositivePh) {
  EXPECT_THROW(CatalanGF(bernoulli_condition(0.3, 0.0), 16), std::invalid_argument);
}

}  // namespace
}  // namespace mh
