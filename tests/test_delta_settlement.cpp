#include "delta/delta_settlement.hpp"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "core/reach_distribution.hpp"
#include "core/relative_margin.hpp"
#include "fork_fixtures.hpp"
#include "sim/monte_carlo.hpp"

namespace mh {
namespace {

/// Exhaustive witness for the settlement DP: Pr[mu >= 0 after k symbols] by
/// enumerating every string in {h,H,A}^k against an explicit initial-reach
/// law. Exponential and obviously correct - the independent oracle the
/// reduced-law DP path otherwise lacks.
long double brute_force_violation(const SymbolLaw& law, std::size_t k,
                                  const ReachPmf& initial) {
  const long double p[3] = {law.ph, law.pH, law.pA};
  long double total = 0.0L;
  for (std::size_t r = 0; r < initial.mass.size(); ++r) {
    if (r > k) break;  // mu_0 = r > k can never reach zero within the horizon
    long double hit = 0.0L;
    fixtures::for_each_char_string(k, [&](const std::vector<Symbol>& symbols) {
      MarginProcess process(static_cast<std::int64_t>(r));
      long double weight = 1.0L;
      for (const Symbol b : symbols) {
        process.step(b);
        weight *= p[static_cast<std::size_t>(b)];
      }
      if (process.mu() >= 0) hit += weight;
    });
    total += initial.mass[r] * hit;
  }
  // Everything above the enumerated reaches (tail included: total() covers
  // it) is always-violating at depth k.
  long double covered = 0.0L;
  for (std::size_t r = 0; r < initial.mass.size() && r <= k; ++r) covered += initial.mass[r];
  return total + (initial.total() - covered);
}

TEST(DeltaSettlement, EpsilonDecreasesWithDelta) {
  const TetraLaw law = theorem7_law(0.1, 0.02, 0.05);
  double prev = theorem7_epsilon(law, 0);
  for (std::size_t delta = 1; delta <= 8; ++delta) {
    const double eps = theorem7_epsilon(law, delta);
    EXPECT_LT(eps, prev);
    prev = eps;
  }
}

TEST(DeltaSettlement, Condition20Equivalence) {
  // eps' > 0 iff condition (20) holds with some eps > 0: reduced pA < 1/2.
  const TetraLaw sparse = theorem7_law(0.05, 0.01, 0.03);   // sparse slots: robust
  EXPECT_GT(theorem7_epsilon(sparse, 4), 0.0);
  const TetraLaw dense = theorem7_law(0.9, 0.2, 0.4);       // dense slots: Delta kills it
  EXPECT_LT(theorem7_epsilon(dense, 4), 0.0);
}

TEST(DeltaSettlement, BoundDecaysInK) {
  const TetraLaw law = theorem7_law(0.1, 0.02, 0.06);
  const long double b100 = theorem7_bound(law, 2, 100);
  const long double b300 = theorem7_bound(law, 2, 300);
  const long double b600 = theorem7_bound(law, 2, 600);
  EXPECT_LE(b300, b100);
  EXPECT_LT(b600, b300);
}

TEST(DeltaSettlement, BoundGrowsWithDelta) {
  const TetraLaw law = theorem7_law(0.1, 0.02, 0.06);
  const long double d0 = theorem7_bound(law, 0, 400);
  const long double d4 = theorem7_bound(law, 4, 400);
  EXPECT_LE(d0, d4);
}

TEST(DeltaSettlement, InapplicableRegimeSaturates) {
  const TetraLaw dense = theorem7_law(0.9, 0.2, 0.4);
  EXPECT_EQ(theorem7_bound(dense, 6, 100), 1.0L);
}

TEST(DeltaSettlement, Lemma2EventHandChecks) {
  // reduced = hhhh...: slot 1 is Catalan; with delta = 0 the walk condition
  // requires S_{1+k+i} <= S_1 for all observed i, which a monotone descent
  // satisfies.
  const CharString reduced = CharString::parse("hhhhhh");
  EXPECT_TRUE(lemma2_event_holds(reduced, 1, 2, 0));
  EXPECT_TRUE(lemma2_event_holds(reduced, 1, 2, 1));
  // All-H windows contain no uniquely honest slot.
  EXPECT_FALSE(lemma2_event_holds(CharString::parse("HHHHHH"), 1, 2, 0));
  // Too-short strings cannot host the window.
  EXPECT_FALSE(lemma2_event_holds(CharString::parse("hh"), 1, 3, 0));
}

TEST(DeltaSettlement, Lemma2WalkConditionBinds) {
  // reduced = h A A A: slot 1 is uniquely honest but not Catalan ([1,2] is
  // A-heavy), so no window works.
  EXPECT_FALSE(lemma2_event_holds(CharString::parse("hAAA"), 1, 1, 0));
  // reduced = h h A A: slot 1 Catalan? [1, r]: r=4: 2 honest vs 2 adversarial
  // -> not hH-heavy: not right-Catalan. Slot... k=2 window {1,2}: slot 2?
  // [2,4]: 1 vs 2: A-heavy: no. So event fails.
  EXPECT_FALSE(lemma2_event_holds(CharString::parse("hhAA"), 1, 2, 0));
  // reduced = h h h h A, walk S = -1,-2,-3,-4,-3. Slot c = 1 is Catalan and
  // uniquely honest; the walk condition needs S_{3..5} <= S_1 - delta = -1-d:
  // max(S_3, S_4, S_5) = -3, so delta <= 2 holds and delta = 3 fails.
  EXPECT_TRUE(lemma2_event_holds(CharString::parse("hhhhA"), 1, 2, 1));
  EXPECT_TRUE(lemma2_event_holds(CharString::parse("hhhhA"), 1, 2, 2));
  EXPECT_FALSE(lemma2_event_holds(CharString::parse("hhhhA"), 1, 2, 3));
}

TEST(DeltaSettlement, SeriesMatchesBruteForceEnumerationAtSmallK) {
  // Independent witness for the reduced-law DP path: for every Delta the
  // series must equal the exhaustive enumeration over {h,H,A}^k seeded with
  // the (truncated-exactly) stationary reach law of the reduced symbols.
  const TetraLaw law = theorem7_law(0.2, 0.02, 0.1);
  constexpr std::size_t kMaxDepth = 6;
  for (std::size_t delta : {0u, 1u, 2u}) {
    const SymbolLaw reduced = reduced_law(law, delta);
    ASSERT_GT(reduced.epsilon(), 0.0);
    const SettlementSeries series = delta_settlement_series(law, delta, kMaxDepth);
    const ReachPmf initial = stationary_reach_distribution(reduced, kMaxDepth);
    for (std::size_t k = 1; k <= kMaxDepth; ++k) {
      const long double brute = brute_force_violation(reduced, k, initial);
      EXPECT_NEAR(static_cast<double>(series.violation[k]), static_cast<double>(brute),
                  1e-12)
          << "delta " << delta << ", k " << k;
    }
  }
}

TEST(DeltaSettlement, FiniteDecompositionMatchesFullStringEnumeration) {
  // Strings of length <= 12, decomposed as w = x y with |y| = k: the weighted
  // count of mu_x(y) >= 0 over ALL strings w must equal the DP seeded with
  // the exact finite reach law X_{|x|}. This exercises the ReachPmf entry
  // point of the DP end to end against the Theorem-5 recurrence itself.
  const SymbolLaw law = bernoulli_condition(0.35, 0.3);
  for (const auto [n, k] : {std::pair<std::size_t, std::size_t>{9, 4}, {12, 6}}) {
    const std::size_t x_len = n - k;
    const long double p[3] = {law.ph, law.pH, law.pA};
    long double brute = 0.0L;
    fixtures::for_each_char_string(n, [&](const std::vector<Symbol>& symbols) {
      long double weight = 1.0L;
      for (const Symbol b : symbols) weight *= p[static_cast<std::size_t>(b)];
      // mu_x(y) via the streaming recurrence: rho over x, then the margin
      // process over y (equivalent to relative_margin_recurrence(w, x_len),
      // without re-building a CharString half a million times).
      std::int64_t rho = 0;
      for (std::size_t t = 0; t < x_len; ++t)
        rho = symbols[t] == Symbol::A ? rho + 1 : (rho > 0 ? rho - 1 : 0);
      MarginProcess process(rho);
      for (std::size_t t = x_len; t < n; ++t) process.step(symbols[t]);
      if (process.mu() >= 0) brute += weight;
    });
    const ReachPmf initial = finite_reach_distribution(law, x_len, std::max(x_len, k));
    const SettlementSeries series = exact_settlement_series(law, k, initial);
    EXPECT_NEAR(static_cast<double>(series.violation[k]), static_cast<double>(brute), 1e-12)
        << "n " << n << ", k " << k;
  }
}

TEST(DeltaSettlement, MonteCarloFailureBelowBound) {
  const TetraLaw law = theorem7_law(0.1, 0.03, 0.05);
  const std::size_t delta = 1, k = 60;
  McOptions opt;
  opt.samples = 4'000;
  opt.seed = 11;
  const Proportion failure = mc_delta_settlement_failure(law, delta, k, opt);
  const long double bound = theorem7_bound(law, delta, k);
  EXPECT_LE(failure.lo, static_cast<double>(bound));
}

}  // namespace
}  // namespace mh
