#include "delta/delta_settlement.hpp"

#include <gtest/gtest.h>

#include "sim/monte_carlo.hpp"

namespace mh {
namespace {

TEST(DeltaSettlement, EpsilonDecreasesWithDelta) {
  const TetraLaw law = theorem7_law(0.1, 0.02, 0.05);
  double prev = theorem7_epsilon(law, 0);
  for (std::size_t delta = 1; delta <= 8; ++delta) {
    const double eps = theorem7_epsilon(law, delta);
    EXPECT_LT(eps, prev);
    prev = eps;
  }
}

TEST(DeltaSettlement, Condition20Equivalence) {
  // eps' > 0 iff condition (20) holds with some eps > 0: reduced pA < 1/2.
  const TetraLaw sparse = theorem7_law(0.05, 0.01, 0.03);   // sparse slots: robust
  EXPECT_GT(theorem7_epsilon(sparse, 4), 0.0);
  const TetraLaw dense = theorem7_law(0.9, 0.2, 0.4);       // dense slots: Delta kills it
  EXPECT_LT(theorem7_epsilon(dense, 4), 0.0);
}

TEST(DeltaSettlement, BoundDecaysInK) {
  const TetraLaw law = theorem7_law(0.1, 0.02, 0.06);
  const long double b100 = theorem7_bound(law, 2, 100);
  const long double b300 = theorem7_bound(law, 2, 300);
  const long double b600 = theorem7_bound(law, 2, 600);
  EXPECT_LE(b300, b100);
  EXPECT_LT(b600, b300);
}

TEST(DeltaSettlement, BoundGrowsWithDelta) {
  const TetraLaw law = theorem7_law(0.1, 0.02, 0.06);
  const long double d0 = theorem7_bound(law, 0, 400);
  const long double d4 = theorem7_bound(law, 4, 400);
  EXPECT_LE(d0, d4);
}

TEST(DeltaSettlement, InapplicableRegimeSaturates) {
  const TetraLaw dense = theorem7_law(0.9, 0.2, 0.4);
  EXPECT_EQ(theorem7_bound(dense, 6, 100), 1.0L);
}

TEST(DeltaSettlement, Lemma2EventHandChecks) {
  // reduced = hhhh...: slot 1 is Catalan; with delta = 0 the walk condition
  // requires S_{1+k+i} <= S_1 for all observed i, which a monotone descent
  // satisfies.
  const CharString reduced = CharString::parse("hhhhhh");
  EXPECT_TRUE(lemma2_event_holds(reduced, 1, 2, 0));
  EXPECT_TRUE(lemma2_event_holds(reduced, 1, 2, 1));
  // All-H windows contain no uniquely honest slot.
  EXPECT_FALSE(lemma2_event_holds(CharString::parse("HHHHHH"), 1, 2, 0));
  // Too-short strings cannot host the window.
  EXPECT_FALSE(lemma2_event_holds(CharString::parse("hh"), 1, 3, 0));
}

TEST(DeltaSettlement, Lemma2WalkConditionBinds) {
  // reduced = h A A A: slot 1 is uniquely honest but not Catalan ([1,2] is
  // A-heavy), so no window works.
  EXPECT_FALSE(lemma2_event_holds(CharString::parse("hAAA"), 1, 1, 0));
  // reduced = h h A A: slot 1 Catalan? [1, r]: r=4: 2 honest vs 2 adversarial
  // -> not hH-heavy: not right-Catalan. Slot... k=2 window {1,2}: slot 2?
  // [2,4]: 1 vs 2: A-heavy: no. So event fails.
  EXPECT_FALSE(lemma2_event_holds(CharString::parse("hhAA"), 1, 2, 0));
  // reduced = h h h h A, walk S = -1,-2,-3,-4,-3. Slot c = 1 is Catalan and
  // uniquely honest; the walk condition needs S_{3..5} <= S_1 - delta = -1-d:
  // max(S_3, S_4, S_5) = -3, so delta <= 2 holds and delta = 3 fails.
  EXPECT_TRUE(lemma2_event_holds(CharString::parse("hhhhA"), 1, 2, 1));
  EXPECT_TRUE(lemma2_event_holds(CharString::parse("hhhhA"), 1, 2, 2));
  EXPECT_FALSE(lemma2_event_holds(CharString::parse("hhhhA"), 1, 2, 3));
}

TEST(DeltaSettlement, MonteCarloFailureBelowBound) {
  const TetraLaw law = theorem7_law(0.1, 0.03, 0.05);
  const std::size_t delta = 1, k = 60;
  McOptions opt;
  opt.samples = 4'000;
  opt.seed = 11;
  const Proportion failure = mc_delta_settlement_failure(law, delta, k, opt);
  const long double bound = theorem7_bound(law, delta, k);
  EXPECT_LE(failure.lo, static_cast<double>(bound));
}

}  // namespace
}  // namespace mh
