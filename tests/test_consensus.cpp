// The epoch-managed consensus layer: stake registry, epoch nonces, the VRF
// lottery, the epoch-driven schedule source, and the epoch face of the
// differential oracle.
#include "protocol/consensus/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "engine/seed_sequence.hpp"
#include "engine/thread_pool.hpp"
#include "oracle/epoch.hpp"
#include "protocol/blocktree.hpp"
#include "support/stats.hpp"

namespace mh::consensus {
namespace {

// --- StakeRegistry ---------------------------------------------------------

TEST(StakeRegistry, UniformSharesAndAccessors) {
  const StakeRegistry reg = StakeRegistry::uniform(4, 0.2);
  EXPECT_EQ(reg.honest_parties(), 4u);
  EXPECT_NEAR(reg.adversarial_share(), 0.2, 1e-15);
  for (PartyId p = 0; p < 4; ++p) EXPECT_NEAR(reg.share(p), 0.2, 1e-15);
  EXPECT_NEAR(reg.total_stake(), 1.0, 1e-15);
  const std::vector<double> shares = reg.honest_shares();
  ASSERT_EQ(shares.size(), 4u);
  for (double s : shares) EXPECT_NEAR(s, 0.2, 1e-15);
}

TEST(StakeRegistry, RejectsDegenerateWeights) {
  EXPECT_THROW(StakeRegistry({1.0, -0.5}, 0.2), std::invalid_argument);
  EXPECT_THROW(StakeRegistry({1.0, 2.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(StakeRegistry({0.0, 0.0}, 1.0), std::invalid_argument);  // no honest weight
  EXPECT_THROW(StakeRegistry({}, 0.0), std::invalid_argument);
  EXPECT_THROW(StakeRegistry::uniform(3, 1.0), std::invalid_argument);
}

TEST(StakeRegistry, ShiftsApplyAtTheirEpochInOrder) {
  StakeRegistry reg({2.0, 2.0}, 1.0);
  reg.add_shift({1, 0, 6.0});          // entering epoch 1, party 0 -> 6
  reg.add_shift({2, kAdversary, 0.0});  // entering epoch 2, coalition exits
  reg.add_shift({1, 0, 4.0});          // same epoch, later registration wins
  reg.advance_to_epoch(0);
  EXPECT_NEAR(reg.share(0), 0.4, 1e-15);
  reg.advance_to_epoch(1);
  EXPECT_NEAR(reg.stake(0), 4.0, 1e-15);
  EXPECT_NEAR(reg.share(0), 4.0 / 7.0, 1e-15);
  EXPECT_EQ(reg.current_epoch(), 1u);
  reg.advance_to_epoch(2);
  EXPECT_NEAR(reg.adversarial_share(), 0.0, 1e-15);
  EXPECT_NEAR(reg.share(0), 4.0 / 6.0, 1e-15);
}

TEST(StakeRegistry, SkippedBoundariesStillApplyEveryDueShift) {
  StakeRegistry reg({1.0, 1.0}, 0.0);
  reg.add_shift({1, 0, 3.0});
  reg.add_shift({3, 1, 5.0});
  reg.advance_to_epoch(4);  // jumps over epochs 1..3 in one call
  EXPECT_NEAR(reg.stake(0), 3.0, 1e-15);
  EXPECT_NEAR(reg.stake(1), 5.0, 1e-15);
}

TEST(StakeRegistry, EpochsNeverRewindAndPastShiftsAreRejected) {
  StakeRegistry reg({1.0}, 0.0);
  reg.advance_to_epoch(2);
  EXPECT_THROW(reg.advance_to_epoch(1), std::invalid_argument);
  EXPECT_THROW(reg.add_shift({2, 0, 2.0}), std::invalid_argument);  // boundary crossed
  EXPECT_NO_THROW(reg.add_shift({3, 0, 2.0}));
  EXPECT_THROW(reg.add_shift({0, 5, 1.0}), std::invalid_argument);  // no such party
}

// --- EpochManager ----------------------------------------------------------

TEST(EpochManager, SlotArithmetic) {
  const EpochManager mgr(EpochConfig{.epoch_length = 8}, 1);
  EXPECT_THROW((void)mgr.epoch_of(0), std::invalid_argument);
  EXPECT_EQ(mgr.epoch_of(1), 0u);
  EXPECT_EQ(mgr.epoch_of(8), 0u);
  EXPECT_EQ(mgr.epoch_of(9), 1u);
  EXPECT_EQ(mgr.epoch_start(0), 1u);
  EXPECT_EQ(mgr.epoch_end(0), 8u);
  EXPECT_EQ(mgr.epoch_start(3), 25u);
  EXPECT_EQ(mgr.epochs_covering(8), 1u);
  EXPECT_EQ(mgr.epochs_covering(9), 2u);
  EXPECT_EQ(mgr.epochs_covering(24), 3u);
}

TEST(EpochManager, WindowResolution) {
  EXPECT_EQ(EpochConfig{.epoch_length = 32}.window(), 21u);  // floor(2R/3)
  EXPECT_EQ((EpochConfig{.epoch_length = 1}).window(), 1u);  // floored at 1
  EXPECT_EQ((EpochConfig{.epoch_length = 32, .nonce_window = 5}).window(), 5u);
  EXPECT_THROW((EpochConfig{.epoch_length = 4, .nonce_window = 5}).validate(),
               std::invalid_argument);
}

TEST(EpochManager, NonceIsDeterministicAndWindowSensitive) {
  const EpochManager mgr(EpochConfig{.epoch_length = 8}, 99);
  BlockTree tree;
  // A short canonical chain: blocks at slots 2 and 5 (inside epoch 0's
  // window of floor(16/3) = 5 slots) and slot 7 (outside it).
  const Block b2 = make_block(genesis_block().hash, 2, 0, 11);
  const Block b5 = make_block(b2.hash, 5, 1, 22);
  const Block b7 = make_block(b5.hash, 7, 2, 33);
  tree.add(b2);
  tree.add(b5);
  tree.add(b7);

  // Epoch 0 ignores the chain entirely.
  BlockTree empty;
  EXPECT_EQ(mgr.fold_nonce(0, tree), mgr.fold_nonce(0, empty));

  // Epoch 1 folds the window blocks: deterministic, and sensitive to them.
  const std::uint64_t nonce = mgr.fold_nonce(1, tree);
  EXPECT_EQ(nonce, mgr.fold_nonce(1, tree));
  EXPECT_NE(nonce, mgr.fold_nonce(1, empty));

  // The trailing (grinding-protected) slot 7 does NOT move the nonce: a tree
  // without b7 folds the same window set.
  BlockTree window_only;
  window_only.add(b2);
  window_only.add(b5);
  EXPECT_EQ(nonce, mgr.fold_nonce(1, window_only));

  // Different genesis seeds decouple the whole lottery.
  const EpochManager other(EpochConfig{.epoch_length = 8}, 100);
  EXPECT_NE(nonce, other.fold_nonce(1, tree));
  EXPECT_NE(mgr.fold_nonce(0, empty), other.fold_nonce(0, empty));
}

// --- SlotLeaderSelection ---------------------------------------------------

TEST(SlotLeaderSelection, PhiEndpointsAndMonotonicity) {
  EXPECT_EQ(phi(0.3, 0.0), 0.0);
  EXPECT_NEAR(phi(0.3, 1.0), 0.3, 1e-15);
  double prev = 0.0;
  for (double s = 0.1; s <= 1.0; s += 0.1) {
    const double p = phi(0.3, s);
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_THROW((void)phi(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)phi(0.3, 1.5), std::invalid_argument);
}

TEST(SlotLeaderSelection, DrawsArePureInTheKey) {
  const SlotLeaderSelection sel(0.4, 7);
  const std::uint64_t nonce = 0xabcdef;
  // Repetition and query order cannot change an outcome.
  for (std::size_t slot = 1; slot <= 64; ++slot)
    for (PartyId p = 0; p < 4; ++p)
      EXPECT_EQ(sel.eligible(nonce, slot, p, 0.2), sel.eligible(nonce, slot, p, 0.2));
  // The nonce genuinely re-keys the lottery: some slot must flip.
  bool any_flip = false;
  for (std::size_t slot = 1; slot <= 64 && !any_flip; ++slot)
    if (sel.eligible(nonce, slot, 0, 0.2) != sel.eligible(nonce + 1, slot, 0, 0.2))
      any_flip = true;
  EXPECT_TRUE(any_flip);
  // draw_slot is the per-party product of eligible(), except that a coalition
  // win absorbs the slot (A symbols admit no honest co-leaders).
  const StakeRegistry reg = StakeRegistry::uniform(4, 0.25);
  bool saw_absorption = false;
  for (std::size_t slot = 1; slot <= 256; ++slot) {
    const SlotLeaders leaders = sel.draw_slot(nonce, slot, reg);
    EXPECT_EQ(leaders.adversarial, sel.eligible(nonce, slot, kAdversary, 0.25));
    if (leaders.adversarial) {
      EXPECT_TRUE(leaders.honest.empty());
      for (PartyId p = 0; p < 4; ++p)
        if (sel.eligible(nonce, slot, p, reg.share(p))) saw_absorption = true;
    } else {
      for (PartyId p = 0; p < 4; ++p) {
        const bool in = std::find(leaders.honest.begin(), leaders.honest.end(), p) !=
                        leaders.honest.end();
        EXPECT_EQ(in, sel.eligible(nonce, slot, p, reg.share(p)));
      }
    }
  }
  EXPECT_TRUE(saw_absorption);  // honest co-winners genuinely forfeited somewhere
}

TEST(SlotLeaderSelection, WinFrequencyWithinClopperPearsonBand) {
  const double f = 0.35, share = 0.3;
  const SlotLeaderSelection sel(f, 12345);
  const std::size_t trials = 20'000;
  std::size_t wins = 0;
  for (std::size_t slot = 1; slot <= trials; ++slot)
    if (sel.eligible(0x1234, slot, 0, share)) ++wins;
  const Proportion band = clopper_pearson_interval(wins, trials, 0.999999);
  const double expect = phi(f, share);
  EXPECT_LE(band.lo, expect);
  EXPECT_GE(band.hi, expect);
}

// --- EpochSchedule ---------------------------------------------------------

TEST(EpochSchedule, MaterializesPerEpochAndGuardsTheFrontier) {
  const ConsensusConfig config{.f = 0.5, .epoch = EpochConfig{.epoch_length = 8}};
  const EpochSchedule sched(config, StakeRegistry::uniform(4, 0.25), 20, 777);
  EXPECT_EQ(sched.horizon(), 20u);
  EXPECT_EQ(sched.honest_parties(), 4u);
  EXPECT_EQ(sched.epoch_count(), 3u);
  EXPECT_EQ(sched.materialized_epochs(), 0u);

  // Nothing is readable before the driver advances the schedule.
  EXPECT_THROW((void)sched.leaders(1), std::invalid_argument);
  EXPECT_THROW((void)sched.eligible(0, 1), std::invalid_argument);
  // Genesis and beyond-horizon answers need no materialization.
  EXPECT_TRUE(sched.leaders(0).honest.empty());
  EXPECT_FALSE(sched.eligible(0, 0));
  EXPECT_FALSE(sched.eligible(0, 21));
  EXPECT_THROW((void)sched.leaders(21), std::invalid_argument);

  BlockTree tree;
  sched.advance_to(1, tree);
  EXPECT_EQ(sched.materialized_epochs(), 1u);
  EXPECT_EQ(sched.materialized_slots(), 8u);
  EXPECT_NO_THROW((void)sched.leaders(8));
  EXPECT_THROW((void)sched.leaders(9), std::invalid_argument);  // epoch 1 unopened

  sched.advance_to(9, tree);
  EXPECT_EQ(sched.materialized_epochs(), 2u);
  sched.advance_to(20, tree);  // final epoch is clipped to the horizon
  EXPECT_EQ(sched.materialized_epochs(), 3u);
  EXPECT_EQ(sched.materialized_slots(), 20u);

  // advance_to is idempotent and the realized snapshot matches the frontier.
  sched.advance_to(20, tree);
  EXPECT_EQ(sched.materialized_epochs(), 3u);
  const LeaderSchedule realized = sched.realized();
  EXPECT_EQ(realized.horizon(), 20u);
  for (std::size_t t = 1; t <= 20; ++t) {
    EXPECT_EQ(realized.leaders(t).honest, sched.leaders(t).honest);
    EXPECT_EQ(realized.leaders(t).adversarial, sched.leaders(t).adversarial);
  }
}

TEST(EpochSchedule, SameSeedSameScheduleDifferentSeedDiffers) {
  const ConsensusConfig config{.f = 0.5, .epoch = EpochConfig{.epoch_length = 16}};
  BlockTree tree;
  const EpochSchedule a(config, StakeRegistry::uniform(4, 0.25), 48, 42);
  const EpochSchedule b(config, StakeRegistry::uniform(4, 0.25), 48, 42);
  const EpochSchedule c(config, StakeRegistry::uniform(4, 0.25), 48, 43);
  a.advance_to(48, tree);
  b.advance_to(48, tree);
  c.advance_to(48, tree);
  bool differs = false;
  for (std::size_t t = 1; t <= 48; ++t) {
    EXPECT_EQ(a.leaders(t).honest, b.leaders(t).honest);
    EXPECT_EQ(a.leaders(t).adversarial, b.leaders(t).adversarial);
    if (a.leaders(t).honest != c.leaders(t).honest ||
        a.leaders(t).adversarial != c.leaders(t).adversarial)
      differs = true;
  }
  EXPECT_TRUE(differs);
  for (std::size_t e = 0; e < 3; ++e) EXPECT_EQ(a.epoch_nonce(e), b.epoch_nonce(e));
}

TEST(EpochSchedule, InducedLawMatchesPraosFormulaOnUniformStakes) {
  // For a uniform snapshot the per-party induced law must agree with the
  // closed-form praos_induced_law to within a few ulps.
  const double f = 0.3, adv = 0.25;
  for (const std::size_t n : {std::size_t{2}, std::size_t{6}, std::size_t{100}}) {
    const TetraLaw closed = LeaderSchedule::praos_induced_law(f, adv, n);
    const std::vector<double> shares(n, (1.0 - adv) / static_cast<double>(n));
    const TetraLaw general = induced_law(f, shares, adv);
    EXPECT_NEAR(general.pBot, closed.pBot, 1e-14);
    EXPECT_NEAR(general.ph, closed.ph, 1e-14);
    EXPECT_NEAR(general.pH, closed.pH, 1e-14);
    EXPECT_NEAR(general.pA, closed.pA, 1e-14);
  }
}

TEST(EpochSchedule, SkewedStakesShiftTheInducedLaw) {
  // One whale + many minnows produces strictly fewer multi-leader slots than
  // the uniform split of the same total (the H mass is Schur-concave).
  const double f = 0.4;
  const TetraLaw uniform = induced_law(f, {0.25, 0.25, 0.25}, 0.25);
  const TetraLaw skewed = induced_law(f, {0.65, 0.05, 0.05}, 0.25);
  EXPECT_LT(skewed.pH, uniform.pH);
  EXPECT_NEAR(skewed.pBot, uniform.pBot, 1e-14);  // same total honest share
  EXPECT_NEAR(skewed.pA, uniform.pA, 1e-14);
}

TEST(EpochSchedule, StakeShiftChangesTheEpochLaw) {
  const ConsensusConfig config{.f = 0.5, .epoch = EpochConfig{.epoch_length = 8}};
  StakeRegistry reg = StakeRegistry::uniform(4, 0.25);
  reg.add_shift({1, 0, 0.5});  // party 0 doubles entering epoch 1
  const EpochSchedule sched(config, std::move(reg), 24, 5);
  BlockTree tree;
  sched.advance_to(24, tree);
  ASSERT_EQ(sched.materialized_epochs(), 3u);
  EXPECT_NE(sched.epoch_honest_shares(0), sched.epoch_honest_shares(1));
  EXPECT_EQ(sched.epoch_honest_shares(1), sched.epoch_honest_shares(2));
  const TetraLaw law0 = sched.epoch_induced_law(0);
  const TetraLaw law1 = sched.epoch_induced_law(1);
  EXPECT_NE(law0.ph, law1.ph);
  // Epoch nonces stay distinct across the boundary (fresh lottery keys).
  EXPECT_NE(sched.epoch_nonce(0), sched.epoch_nonce(1));
}

// --- the epoch face of the oracle ------------------------------------------

oracle::EpochRunConfig shifted_cell() {
  oracle::EpochRunConfig config;
  config.consensus.f = 0.5;
  config.consensus.epoch.epoch_length = 32;
  config.honest_parties = 6;
  config.adversarial_stake = 0.25;
  // Mid-run redistribution: entering epoch 1 the coalition buys half of party
  // 0's stake (one spec down, one spec up — the adaptive-corruption axis).
  config.shifts = {{1, 0, 0.0625}, {1, kAdversary, 0.3125}};
  config.horizon = 96;
  config.target_slot = 2;
  config.k = 6;
  return config;
}

TEST(EpochOracle, ShiftedExecutionGradesCleanWithAllCells) {
  oracle::EpochRunConfig config = shifted_cell();
  engine::SeedSequence streams(2024);
  for (std::uint64_t i = 0; i < 8; ++i) {
    Rng rng = streams.stream(i);
    const oracle::EpochVerdict verdict = oracle::check_epoch_execution(config, rng);
    EXPECT_TRUE(verdict.clean()) << "cell " << i << " code " << verdict.code();
    EXPECT_TRUE(verdict.all_graded);
    ASSERT_EQ(verdict.cells.size(), 3u);  // 96 slots / 32-slot epochs, none ungraded
    for (const oracle::EpochCell& cell : verdict.cells) {
      EXPECT_TRUE(cell.graded);
      EXPECT_TRUE(cell.law_within_band) << "epoch " << cell.epoch;
      EXPECT_EQ(cell.slots, 32u);
      // The reduced (Proposition 4) law is attached and normalized.
      EXPECT_NEAR(cell.reduced.ph + cell.reduced.pH + cell.reduced.pA, 1.0, 1e-12);
    }
    // The shift moved the epoch-1 law (more adversarial mass, less honest).
    EXPECT_GT(verdict.cells[1].induced.pA, verdict.cells[0].induced.pA);
  }
}

TEST(EpochOracle, VerdictsAreThreadCountInvariant) {
  const oracle::EpochRunConfig config = shifted_cell();
  const std::size_t cells = 12;
  const auto sweep = [&](std::size_t threads) {
    std::vector<char> codes(cells);
    std::vector<std::uint64_t> nonces(cells);
    std::vector<std::int64_t> margins(cells);
    engine::SeedSequence streams(777);
    engine::for_each_index(cells, threads, [&](std::size_t i) {
      Rng rng = streams.stream(i);
      const oracle::EpochVerdict v = oracle::check_epoch_execution(config, rng);
      codes[i] = v.code();
      margins[i] = v.run.fork_margin;
      std::uint64_t folded = 0;
      for (const oracle::EpochCell& cell : v.cells)
        folded = fnv1a_accumulate(folded, cell.nonce);
      nonces[i] = folded;
    });
    return std::tuple{codes, nonces, margins};
  };
  const auto serial = sweep(1);
  EXPECT_EQ(serial, sweep(2));
  EXPECT_EQ(serial, sweep(8));
}

}  // namespace
}  // namespace mh::consensus
