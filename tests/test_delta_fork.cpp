#include "delta/delta_fork.hpp"

#include <gtest/gtest.h>

#include "delta/reduction.hpp"
#include "fork/validate.hpp"

namespace mh {
namespace {

TEST(DeltaFork, ValidatesRelaxedDepths) {
  // Two honest slots 1 and 2 at equal depth: invalid synchronously, valid for
  // Delta >= 1.
  const TetraString w = TetraString::parse("hh");
  Fork f;
  f.add_vertex(kRoot, 1);
  f.add_vertex(kRoot, 2);
  EXPECT_FALSE(validate_delta_fork(f, w, 0).ok);
  EXPECT_TRUE(validate_delta_fork(f, w, 1).ok);
}

TEST(DeltaFork, EmptySlotsMayNotCarryBlocks) {
  const TetraString w = TetraString::parse("h.h");
  Fork f;
  const VertexId a = f.add_vertex(kRoot, 1);
  f.add_vertex(a, 2);  // slot 2 is empty
  const auto result = validate_delta_fork(f, w, 4);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("empty"), std::string::npos);
}

TEST(DeltaFork, F3StillEnforced) {
  const TetraString w = TetraString::parse("h.A");
  Fork f;  // missing the slot-1 honest vertex
  EXPECT_FALSE(validate_delta_fork(f, w, 2).ok);
}

TEST(DeltaFork, ProjectionYieldsValidSynchronousFork) {
  // Delta-fork for "h..h" with Delta = 2: the two honest blocks may sit at
  // equal depth (2 + 2 slots apart is not > Delta... 1 + 2 < 4 so they must
  // increase). Use Delta = 3 for the relaxed case.
  const TetraString w = TetraString::parse("h..h");
  Fork f;
  f.add_vertex(kRoot, 1);
  f.add_vertex(kRoot, 4);
  ASSERT_TRUE(validate_delta_fork(f, w, 3).ok);
  ASSERT_FALSE(validate_delta_fork(f, w, 2).ok);

  // Project through rho_Delta with Delta = 3: both honest slots map to A
  // (each within Delta of the other? slot 1's window {2,3,4} contains slot 4:
  // -> A; slot 4's window is truncated -> A). The projected fork must be a
  // valid synchronous fork for "AA".
  const ReductionResult r = reduce(w, 3);
  ASSERT_EQ(r.reduced.to_string(), "AA");
  const Fork projected = project_to_synchronous(f, r.inverse);
  EXPECT_TRUE(validate_fork(projected, r.reduced).ok);
}

TEST(DeltaFork, ProjectionPreservesStructure) {
  const TetraString w = TetraString::parse("h..A.h");
  Fork f;
  const VertexId v1 = f.add_vertex(kRoot, 1);
  const VertexId a4 = f.add_vertex(v1, 4);
  f.add_vertex(a4, 6);
  const ReductionResult r = reduce(w, 1);
  // Slot 1: window {2} empty -> h survives; slot 6: truncated -> A.
  ASSERT_EQ(r.reduced.to_string(), "hAA");
  const Fork projected = project_to_synchronous(f, r.inverse);
  EXPECT_EQ(projected.vertex_count(), f.vertex_count());
  EXPECT_EQ(projected.label(1), 1u);
  EXPECT_EQ(projected.label(2), 2u);  // original slot 4 -> reduced position 2
  EXPECT_EQ(projected.label(3), 3u);  // original slot 6 -> reduced position 3
  EXPECT_TRUE(validate_fork(projected, r.reduced).ok);
}

TEST(DeltaFork, SettlementViolationDetection) {
  // Two max-length chains, one carrying slot 2, both with >= 1 block after
  // slot 2, meeting at the root.
  Fork f;
  const VertexId a = f.add_vertex(kRoot, 2);
  f.add_vertex(a, 4);
  const VertexId b = f.add_vertex(kRoot, 3);
  f.add_vertex(b, 5);
  EXPECT_TRUE(delta_settlement_violation_in_fork(f, 2, 1));
  EXPECT_FALSE(delta_settlement_violation_in_fork(f, 2, 2));  // needs 2 blocks after
  EXPECT_FALSE(delta_settlement_violation_in_fork(f, 1, 1));  // neither carries slot 1
}

}  // namespace
}  // namespace mh
