#include "delta/reduction.hpp"

#include <gtest/gtest.h>

#include "chars/dominance.hpp"
#include "support/stats.hpp"

namespace mh {
namespace {

TEST(Reduction, DeltaZeroDropsEmptySlots) {
  const TetraString w = TetraString::parse("h..A.Hh");
  const ReductionResult r = reduce(w, 0);
  EXPECT_EQ(r.reduced.to_string(), "hAHh");
  const std::vector<std::size_t> pi{1, 4, 6, 7};
  EXPECT_EQ(r.pi, pi);
  EXPECT_EQ(r.inverse[0], 1u);
  EXPECT_EQ(r.inverse[1], 0u);  // empty slot maps nowhere
  EXPECT_EQ(r.inverse[3], 2u);
}

TEST(Reduction, HonestSurvivesIffNoHonestWithinDelta) {
  // Definition 22: h followed within Delta slots by another honest slot turns
  // adversarial; A's and empties inside the window do not matter. Trailing
  // honest slots with truncated windows translate to A (the paper's
  // "distorted" region).
  const TetraString w = TetraString::parse("h.h");
  EXPECT_EQ(reduce(w, 1).reduced.to_string(), "hA");   // gap 2 > Delta 1
  EXPECT_EQ(reduce(w, 2).reduced.to_string(), "AA");   // within window
  const TetraString v = TetraString::parse("hAh.");
  EXPECT_EQ(reduce(v, 1).reduced.to_string(), "hAh");  // A in window is fine
  EXPECT_EQ(reduce(v, 2).reduced.to_string(), "AAA");
  const TetraString u = TetraString::parse("hH.");
  EXPECT_EQ(reduce(u, 1).reduced.to_string(), "AH");
}

TEST(Reduction, ConservativeRequiresEmptyRun) {
  // Proposition 4's segment rule: survival needs Delta *empty* slots
  // immediately afterwards.
  const TetraString w = TetraString::parse("hA.h.");
  EXPECT_EQ(reduce(w, 1).reduced.to_string(), "hAh");
  EXPECT_EQ(reduce_conservative(w, 1).reduced.to_string(), "AAh");  // A breaks the run
  const TetraString v = TetraString::parse("h..h");
  EXPECT_EQ(reduce_conservative(v, 2).reduced.to_string(), "hA");
  // The trailing h has no Delta-window left: conservatively adversarial.
}

TEST(Reduction, ConservativeDominatesExact) {
  const TetraLaw law = theorem7_law(0.4, 0.1, 0.15);
  Rng rng(246);
  for (int trial = 0; trial < 50; ++trial) {
    const TetraString w = law.sample_string(128, rng);
    for (std::size_t delta : {0u, 1u, 3u}) {
      const CharString exact = reduce(w, delta).reduced;
      const CharString conservative = reduce_conservative(w, delta).reduced;
      ASSERT_EQ(exact.size(), conservative.size());
      ASSERT_TRUE(leq(exact, conservative))
          << "delta " << delta << " w " << w.to_string();
    }
  }
}

TEST(Reduction, ReducedLawFormula) {
  // Eq. (22) with f = 0.2, Delta = 2: alpha = 0.8^2 = 0.64.
  const TetraLaw law = theorem7_law(0.2, 0.05, 0.1);
  const SymbolLaw reduced = reduced_law(law, 2);
  EXPECT_NEAR(reduced.ph, 0.1 * 0.64 / 0.2, 1e-12);
  EXPECT_NEAR(reduced.pH, 0.05 * 0.64 / 0.2, 1e-12);
  EXPECT_NEAR(reduced.pA, 1.0 - 0.64 + 0.05 * 0.64 / 0.2, 1e-12);
}

TEST(Reduction, DeltaZeroLawIsConditionalLaw) {
  const TetraLaw law = theorem7_law(0.25, 0.05, 0.1);
  const SymbolLaw reduced = reduced_law(law, 0);
  EXPECT_NEAR(reduced.ph, 0.1 / 0.25, 1e-12);
  EXPECT_NEAR(reduced.pA, 0.05 / 0.25, 1e-12);
}

// Proposition 4: the conservative reduction's symbols are i.i.d. with the
// Eq. (22) law (away from the truncated last Delta positions).
TEST(Reduction, ConservativeEmpiricalLawMatchesEq22) {
  const TetraLaw law = theorem7_law(0.3, 0.08, 0.12);
  const std::size_t delta = 2;
  const SymbolLaw predicted = reduced_law(law, delta);
  Rng rng(1357);
  std::array<std::size_t, 3> counts{};
  for (int trial = 0; trial < 3000; ++trial) {
    const TetraString w = law.sample_string(96, rng);
    const ReductionResult r = reduce_conservative(w, delta);
    // Skip positions whose lookahead window was truncated by the string end
    // (the paper's "distorted" region).
    for (std::size_t j = 0; j < r.pi.size(); ++j)
      if (r.pi[j] + delta <= w.size())
        ++counts[static_cast<std::size_t>(r.reduced.at(j + 1))];
  }
  const std::array<double, 3> expected{predicted.ph, predicted.pH, predicted.pA};
  EXPECT_LT(chi_square_statistic(counts, expected), chi_square_critical(2, 0.001));
}

TEST(Reduction, PiIsBijectionOntoReducedPositions) {
  const TetraLaw law = theorem7_law(0.5, 0.2, 0.1);
  Rng rng(8642);
  const TetraString w = law.sample_string(64, rng);
  const ReductionResult r = reduce(w, 2);
  ASSERT_EQ(r.pi.size(), r.reduced.size());
  for (std::size_t j = 0; j < r.pi.size(); ++j) {
    EXPECT_EQ(r.inverse[r.pi[j] - 1], j + 1);
    EXPECT_FALSE(is_empty(w.at(r.pi[j])));
  }
}

}  // namespace
}  // namespace mh
