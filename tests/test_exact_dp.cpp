#include "core/exact_dp.hpp"

#include <gtest/gtest.h>

#include "core/relative_margin.hpp"
#include "support/random.hpp"

namespace mh {
namespace {

// Independent oracle: enumerate all 3^k strings y, run the scalar recurrence
// from every initial reach r0 (weighted by the initial law), and sum the
// probability mass of strings with mu >= 0 at |y| = k.
long double enumerate_violation_probability(const SymbolLaw& law, std::size_t k,
                                            const ReachPmf& initial) {
  std::size_t total = 1;
  for (std::size_t i = 0; i < k; ++i) total *= 3;
  long double acc = 0.0L;
  const long double probs[3] = {static_cast<long double>(law.ph),
                                static_cast<long double>(law.pH),
                                static_cast<long double>(law.pA)};
  for (std::size_t r0 = 0; r0 < initial.mass.size(); ++r0) {
    const long double w0 = initial.mass[r0];
    if (w0 == 0.0L) continue;
    for (std::size_t code = 0; code < total; ++code) {
      MarginProcess p(static_cast<std::int64_t>(r0));
      long double weight = w0;
      std::size_t c = code;
      for (std::size_t i = 0; i < k; ++i) {
        const auto symbol = static_cast<Symbol>(c % 3);
        weight *= probs[c % 3];
        p.step(symbol);
        c /= 3;
      }
      if (p.mu() >= 0) acc += weight;
    }
  }
  // Initial reaches beyond the pmf cap keep mu positive through k steps
  // whenever r0 > k; the stationary law's tail accounts for exactly that.
  return acc + initial.tail;
}

TEST(ExactDp, MatchesExhaustiveEnumerationSmallK) {
  const SymbolLaw law = bernoulli_condition(0.4, 0.25);
  // Large cap so the enumerated initial law is effectively exact.
  const ReachPmf initial = stationary_reach_distribution(law, 60);
  for (std::size_t k : {1u, 2u, 4u, 7u}) {
    ReachPmf padded = initial;
    const SettlementSeries series = exact_settlement_series(law, k, padded);
    const long double brute = enumerate_violation_probability(law, k, initial);
    EXPECT_NEAR(static_cast<double>(series.violation[k]), static_cast<double>(brute), 1e-12)
        << "k = " << k;
  }
}

TEST(ExactDp, MatchesEnumerationZeroStart) {
  const SymbolLaw law = bernoulli_condition(0.2, 0.5);
  ReachPmf zero;
  zero.mass.assign(10, 0.0L);
  zero.mass[0] = 1.0L;
  for (std::size_t k : {1u, 3u, 6u}) {
    const SettlementSeries series = exact_settlement_series(law, k, InitialReach::Zero);
    const long double brute = enumerate_violation_probability(law, k, zero);
    EXPECT_NEAR(static_cast<double>(series.violation[k]), static_cast<double>(brute), 1e-12)
        << "k = " << k;
  }
}

// Table 1 ground truth (rows k <= 400 reproduce the paper to all printed
// digits; see EXPERIMENTS.md for the k = 500 discrepancy).
struct Table1Entry {
  double alpha, ratio;
  std::size_t k;
  double value;
};

class Table1Spot : public ::testing::TestWithParam<Table1Entry> {};

TEST_P(Table1Spot, ReproducesPaperEntry) {
  const auto [alpha, ratio, k, value] = GetParam();
  const SymbolLaw law = table1_law(alpha, ratio);
  const long double p = settlement_violation_probability(law, k);
  EXPECT_NEAR(static_cast<double>(p) / value, 1.0, 0.005)
      << "alpha " << alpha << " ratio " << ratio << " k " << k;
}

INSTANTIATE_TEST_SUITE_P(
    PaperValues, Table1Spot,
    ::testing::Values(Table1Entry{0.30, 1.0, 100, 8.00e-4},
                      Table1Entry{0.40, 1.0, 100, 1.37e-1},
                      Table1Entry{0.49, 1.0, 100, 9.05e-1},
                      Table1Entry{0.10, 1.0, 200, 9.82e-35},
                      Table1Entry{0.20, 0.8, 100, 5.10e-8},
                      Table1Entry{0.30, 0.5, 300, 6.19e-8},
                      Table1Entry{0.01, 0.25, 100, 1.22e-12},
                      Table1Entry{0.40, 0.25, 200, 1.25e-1},
                      Table1Entry{0.01, 0.01, 100, 3.77e-1},
                      Table1Entry{0.10, 0.01, 400, 5.81e-2},
                      Table1Entry{0.20, 0.25, 200, 9.36e-9},
                      Table1Entry{0.30, 0.9, 200, 2.03e-6}));

TEST(ExactDp, ViolationAtZeroIsOne) {
  const SymbolLaw law = table1_law(0.3, 0.5);
  const SettlementSeries series = exact_settlement_series(law, 8);
  EXPECT_NEAR(static_cast<double>(series.violation[0]), 1.0, 1e-15);
}

TEST(ExactDp, SeriesDecreasesGeometrically) {
  const SymbolLaw law = table1_law(0.2, 0.8);
  const SettlementSeries series = exact_settlement_series(law, 120);
  // e^{-Theta(k)}: the ratio P(k+20)/P(k) stabilizes.
  const long double r1 = series.violation[60] / series.violation[40];
  const long double r2 = series.violation[100] / series.violation[80];
  EXPECT_LT(r1, 1.0L);
  EXPECT_NEAR(static_cast<double>(r2 / r1), 1.0, 0.15);
}

TEST(ExactDp, MassConservation) {
  const SymbolLaw law = table1_law(0.3, 0.5);
  const SettlementSeries series = exact_settlement_series(law, 64);
  for (std::size_t k = 0; k <= 64; ++k) {
    EXPECT_GE(static_cast<double>(series.violation[k]), 0.0);
    EXPECT_LE(static_cast<double>(series.violation[k]), 1.0 + 1e-15);
  }
  EXPECT_GE(static_cast<double>(series.never_violating), 0.0);
  EXPECT_GE(static_cast<double>(series.always_violating), 0.0);
}

TEST(ExactDp, ZeroStartIsEasierThanStationary) {
  const SymbolLaw law = table1_law(0.35, 0.6);
  const SettlementSeries stationary = exact_settlement_series(law, 80);
  const SettlementSeries zero = exact_settlement_series(law, 80, InitialReach::Zero);
  for (std::size_t k = 1; k <= 80; ++k)
    EXPECT_LE(static_cast<double>(zero.violation[k]),
              static_cast<double>(stationary.violation[k]) + 1e-18)
        << k;
}

TEST(ExactDp, FiniteMArticleConvergesToStationary) {
  const SymbolLaw law = table1_law(0.3, 0.7);
  const std::size_t k = 60;
  const SettlementSeries stationary = exact_settlement_series(law, k);
  const ReachPmf xm = finite_reach_distribution(law, 400, 400);
  const SettlementSeries finite = exact_settlement_series(law, k, xm);
  EXPECT_NEAR(static_cast<double>(finite.violation[k] / stationary.violation[k]), 1.0, 1e-6);
}

TEST(ExactDp, MonteCarloAgreement) {
  const SymbolLaw law = table1_law(0.40, 1.0);
  const std::size_t k = 100;  // paper value 1.37e-1
  const long double exact = settlement_violation_probability(law, k);
  Rng rng(777);
  const double beta = static_cast<double>(reach_beta(law));
  std::size_t hits = 0;
  const std::size_t samples = 40'000;
  for (std::size_t i = 0; i < samples; ++i) {
    MarginProcess p(static_cast<std::int64_t>(sample_geometric(rng, beta)));
    for (std::size_t t = 0; t < k; ++t) p.step(law.sample(rng));
    if (p.mu() >= 0) ++hits;
  }
  const double mc = static_cast<double>(hits) / samples;
  EXPECT_NEAR(mc, static_cast<double>(exact), 0.01);
}

TEST(ExactDp, InputValidation) {
  const SymbolLaw law = table1_law(0.3, 0.5);
  EXPECT_THROW(exact_settlement_series(law, 0), std::invalid_argument);
  ReachPmf short_pmf;
  short_pmf.mass.assign(3, 0.25L);
  EXPECT_THROW(exact_settlement_series(law, 10, short_pmf), std::invalid_argument);
}


TEST(EventualDp, DominatesPointProbability) {
  const SymbolLaw law = table1_law(0.40, 0.5);
  for (std::size_t k : {20u, 60u, 120u}) {
    const long double at_k = settlement_violation_probability(law, k);
    const long double ever = eventual_settlement_insecurity(law, k);
    EXPECT_GE(static_cast<double>(ever), static_cast<double>(at_k)) << k;
    EXPECT_LE(static_cast<double>(ever), 1.0 + 1e-12) << k;
  }
}

TEST(EventualDp, MatchesMonteCarloWithLongHorizon) {
  const SymbolLaw law = table1_law(0.40, 1.0);
  const std::size_t k = 50;
  const long double ever = eventual_settlement_insecurity(law, k);
  // MC with a generous extra horizon approximates the infinite-future value
  // from below (geometric tail of the ruin time).
  Rng rng(808);
  const double beta = static_cast<double>(reach_beta(law));
  std::size_t hits = 0;
  const std::size_t samples = 40'000;
  for (std::size_t i = 0; i < samples; ++i) {
    MarginProcess p(static_cast<std::int64_t>(sample_geometric(rng, beta)));
    bool won = false;
    for (std::size_t t = 0; t < k + 600; ++t) {
      p.step(law.sample(rng));
      if (t + 1 >= k && p.mu() >= 0) {
        won = true;
        break;
      }
    }
    if (won) ++hits;
  }
  const double mc = static_cast<double>(hits) / samples;
  EXPECT_NEAR(mc, static_cast<double>(ever), 0.012);
}

TEST(EventualDp, RuinClosedFormSanity) {
  // With a pure-A tail the walk surely returns: insecurity at k = 1 from the
  // zero start is Pr[mu_1 >= 0] + Pr[mu_1 < 0] * beta.
  const SymbolLaw law = table1_law(0.30, 1.0);
  const long double beta = reach_beta(law);
  // From (0,0): A keeps mu = 1 >= 0 (prob .3); h drops to -1 (prob .7).
  const long double expected = 0.30L + 0.70L * beta;
  EXPECT_NEAR(static_cast<double>(eventual_settlement_insecurity(law, 1, InitialReach::Zero)),
              static_cast<double>(expected), 1e-15);
}
}  // namespace
}  // namespace mh
