#include "protocol/block.hpp"

#include <gtest/gtest.h>

namespace mh {
namespace {

TEST(Block, HashIsDeterministic) {
  EXPECT_EQ(block_hash(1, 2, 3, 4), block_hash(1, 2, 3, 4));
}

TEST(Block, HashSensitiveToEveryField) {
  const BlockHash base = block_hash(1, 2, 3, 4);
  EXPECT_NE(base, block_hash(9, 2, 3, 4));
  EXPECT_NE(base, block_hash(1, 9, 3, 4));
  EXPECT_NE(base, block_hash(1, 2, 9, 4));
  EXPECT_NE(base, block_hash(1, 2, 3, 9));
}

TEST(Block, MakeBlockFillsHash) {
  const Block b = make_block(42, 7, 3, 99);
  EXPECT_EQ(b.parent, 42u);
  EXPECT_EQ(b.slot, 7u);
  EXPECT_EQ(b.issuer, 3u);
  EXPECT_EQ(b.hash, block_hash(42, 7, 3, 99));
}

TEST(Block, GenesisIsStable) {
  const Block& g1 = genesis_block();
  const Block& g2 = genesis_block();
  EXPECT_EQ(g1.hash, g2.hash);
  EXPECT_EQ(g1.slot, 0u);
}

TEST(Block, IntegrityDetectsTampering) {
  Block b = make_block(1, 2, 3, 4);
  EXPECT_TRUE(verify_block_integrity(b));
  b.slot = 5;  // tamper with the claimed slot
  EXPECT_FALSE(verify_block_integrity(b));
  b = make_block(1, 2, 3, 4);
  b.parent = 7;  // tamper with the chain commitment
  EXPECT_FALSE(verify_block_integrity(b));
}

TEST(Block, DistinctIssuersSameSlotDistinctHashes) {
  // Two concurrent honest leaders of one slot produce different blocks even
  // with identical parents and payloads.
  const Block b1 = make_block(1, 5, 10, 0);
  const Block b2 = make_block(1, 5, 11, 0);
  EXPECT_NE(b1.hash, b2.hash);
}

}  // namespace
}  // namespace mh
