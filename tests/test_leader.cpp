#include "protocol/leader.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "protocol/consensus/leader_select.hpp"
#include "support/stats.hpp"

namespace mh {
namespace {

TEST(Leader, SymbolLevelScheduleShapes) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.3);
  Rng rng(10);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 500, 8, rng);
  EXPECT_EQ(schedule.horizon(), 500u);
  for (std::size_t t = 1; t <= 500; ++t) {
    const SlotLeaders& l = schedule.leaders(t);
    if (l.adversarial) {
      EXPECT_TRUE(l.honest.empty());
    } else {
      EXPECT_GE(l.honest.size(), 1u);
      EXPECT_LE(l.honest.size(), 2u);
      if (l.honest.size() == 2) {
        EXPECT_NE(l.honest[0], l.honest[1]);
      }
    }
  }
}

TEST(Leader, CharacteristicStringMatchesLeaders) {
  const SymbolLaw law = bernoulli_condition(0.4, 0.2);
  Rng rng(11);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 200, 4, rng);
  const CharString w = schedule.characteristic_sync();
  for (std::size_t t = 1; t <= 200; ++t) {
    const SlotLeaders& l = schedule.leaders(t);
    if (l.adversarial)
      EXPECT_EQ(w.at(t), Symbol::A);
    else if (l.honest.size() == 1)
      EXPECT_EQ(w.at(t), Symbol::h);
    else
      EXPECT_EQ(w.at(t), Symbol::H);
  }
}

TEST(Leader, EligibilityChecks) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.4);
  Rng rng(12);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 100, 4, rng);
  for (std::size_t t = 1; t <= 100; ++t) {
    const SlotLeaders& l = schedule.leaders(t);
    EXPECT_EQ(schedule.eligible(kAdversary, t), l.adversarial);
    for (PartyId p : l.honest) EXPECT_TRUE(schedule.eligible(p, t));
  }
  EXPECT_FALSE(schedule.eligible(0, 0));    // genesis slot
  EXPECT_FALSE(schedule.eligible(0, 101));  // beyond horizon
}

TEST(Leader, TetraScheduleMayHaveEmptySlots) {
  const TetraLaw law = theorem7_law(0.3, 0.1, 0.1);
  Rng rng(13);
  const LeaderSchedule schedule = LeaderSchedule::from_tetra_law(law, 300, 4, rng);
  const TetraString w = schedule.characteristic();
  std::size_t empties = 0;
  for (std::size_t t = 1; t <= 300; ++t)
    if (is_empty(w.at(t))) ++empties;
  EXPECT_GT(empties, 120u);  // pBot = 0.7: expect ~210
  EXPECT_THROW(schedule.characteristic_sync(), std::invalid_argument);
}

TEST(Leader, PraosLotteryInducedLawMatchesEmpirical) {
  const double f = 0.3, adv_stake = 0.25;
  const std::size_t parties = 6;
  const TetraLaw predicted = LeaderSchedule::praos_induced_law(f, adv_stake, parties);
  Rng rng(14);
  std::array<std::size_t, 4> counts{};  // Bot, h, H, A
  const std::size_t horizon = 60'000;
  const LeaderSchedule schedule = LeaderSchedule::praos_lottery(f, adv_stake, parties,
                                                                horizon, rng);
  const TetraString w = schedule.characteristic();
  for (std::size_t t = 1; t <= horizon; ++t) ++counts[static_cast<std::size_t>(w.at(t))];
  const std::array<double, 4> expected{predicted.pBot, predicted.ph, predicted.pH,
                                       predicted.pA};
  EXPECT_LT(chi_square_statistic(counts, expected), chi_square_critical(3, 0.001));
}

TEST(Leader, PraosInducedLawSums) {
  const TetraLaw law = LeaderSchedule::praos_induced_law(0.2, 0.3, 10);
  EXPECT_NEAR(law.pBot + law.ph + law.pH + law.pA, 1.0, 1e-12);
  EXPECT_GT(law.pH, 0.0);  // concurrent honest leaders occur by design
}

TEST(Leader, HSlotNeedsTwoParties) {
  const SymbolLaw all_H{0.0, 1.0, 0.0};
  Rng rng(15);
  EXPECT_THROW(LeaderSchedule::from_symbol_law(all_H, 10, 1, rng), std::invalid_argument);
}

TEST(Leader, GeneratorEntryValidationNamesLawAndParties) {
  // The H-capable law is rejected AT THE ENTRY POINT with a message naming
  // both the law and the party count — not mid-generation at the first
  // sampled H (which made the failure depend on the rng draw).
  const SymbolLaw all_H{0.0, 1.0, 0.0};
  Rng rng(16);
  try {
    (void)LeaderSchedule::from_symbol_law(all_H, 10, 1, rng);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("law (ph="), std::string::npos) << msg;
    EXPECT_NE(msg.find("honest_parties = 1"), std::string::npos) << msg;
  }
  // A law that cannot draw H is happy with a single party.
  const SymbolLaw single_ok{0.6, 0.0, 0.4};
  Rng rng2(17);
  EXPECT_NO_THROW((void)LeaderSchedule::from_symbol_law(single_ok, 10, 1, rng2));
  // Same check, same message, on the tetra entry point.
  const TetraLaw tetra_H{0.2, 0.0, 0.5, 0.3};
  Rng rng3(18);
  EXPECT_THROW((void)LeaderSchedule::from_tetra_law(tetra_H, 10, 1, rng3),
               std::invalid_argument);
}

TEST(Leader, GenesisSlotAgreesAcrossQueries) {
  // leaders(0) and eligible(party, 0) must tell the same story: genesis is
  // never issued. (Previously leaders(0) threw while eligible returned
  // false.)
  const SymbolLaw law = bernoulli_condition(0.3, 0.4);
  Rng rng(19);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 50, 4, rng);
  const SlotLeaders& genesis = schedule.leaders(0);
  EXPECT_TRUE(genesis.honest.empty());
  EXPECT_FALSE(genesis.adversarial);
  EXPECT_FALSE(schedule.eligible(0, 0));
  EXPECT_FALSE(schedule.eligible(kAdversary, 0));
  // Past the horizon the two still diverge deliberately: eligible is a quiet
  // "no" (the signature check), leaders is a hard error (a driver bug).
  EXPECT_FALSE(schedule.eligible(0, 51));
  EXPECT_THROW((void)schedule.leaders(51), std::invalid_argument);
}

TEST(Leader, PhiPrecisionAtCommitteeScale) {
  // The headline regression: phi(share) = 1 - (1-f)^share for share ~ 1/n.
  // The expm1/log1p form must track a long-double reference to 1e-12 relative
  // error at every committee scale; the naive 1 - pow form demonstrably
  // cannot at n = 10^5 (the subtraction cancels to ~half the digits).
  const double f = 0.1, adv = 0.25;
  for (const std::size_t n : {std::size_t{10}, std::size_t{1000}, std::size_t{100000}}) {
    const double share = (1.0 - adv) / static_cast<double>(n);
    const long double ref =
        -std::expm1l(static_cast<long double>(share) * std::log1pl(-(long double)f));
    const double fixed = consensus::phi(f, share);
    const long double rel_fixed = std::fabs(static_cast<long double>(fixed) - ref) / ref;
    EXPECT_LE(rel_fixed, 1e-12L) << "n = " << n;
    if (n == 100000) {
      const double naive = 1.0 - std::pow(1.0 - f, share);
      const long double rel_naive = std::fabs(static_cast<long double>(naive) - ref) / ref;
      EXPECT_GT(rel_naive, 1e-12L) << "the old formula unexpectedly kept full precision";
    }
  }
}

TEST(Leader, InducedLawPrecisionAtCommitteeScale) {
  // The induced law's one-winner mass goes through the same small-share
  // regime: n * phi * q^(n-1). Long-double reference at n = 10^5.
  const double f = 0.1, adv = 0.25;
  const std::size_t n = 100000;
  const long double share = (1.0L - (long double)adv) / static_cast<long double>(n);
  const long double Lq = share * std::log1pl(-(long double)f);
  const long double p_adv = -std::expm1l((long double)adv * std::log1pl(-(long double)f));
  const long double no_honest = std::exp(static_cast<long double>(n) * Lq);
  const long double one_honest = static_cast<long double>(n) * (-std::expm1l(Lq)) *
                                 std::exp(static_cast<long double>(n - 1) * Lq);
  const TetraLaw law = LeaderSchedule::praos_induced_law(f, adv, n);
  const long double ref_ph = (1.0L - p_adv) * one_honest;
  const long double ref_bot = (1.0L - p_adv) * no_honest;
  EXPECT_LE(std::fabs((long double)law.ph - ref_ph) / ref_ph, 1e-12L);
  EXPECT_LE(std::fabs((long double)law.pBot - ref_bot) / ref_bot, 1e-12L);
  EXPECT_NEAR(law.pBot + law.ph + law.pH + law.pA, 1.0, 1e-12);
}

TEST(Leader, PraosLotteryWithinClopperPearsonBands) {
  // Exact-band agreement between the lottery and its analytic induced law:
  // each symbol's frequency over a 10^4-slot horizon must sit inside the
  // Clopper-Pearson band around the induced mass (no normal approximation —
  // pH here is a rare event).
  const double f = 0.25, adv_stake = 0.2;
  const std::size_t parties = 8, horizon = 10'000;
  const TetraLaw predicted = LeaderSchedule::praos_induced_law(f, adv_stake, parties);
  Rng rng(20);
  const LeaderSchedule schedule =
      LeaderSchedule::praos_lottery(f, adv_stake, parties, horizon, rng);
  const TetraString w = schedule.characteristic();
  std::array<std::size_t, 4> counts{};
  for (std::size_t t = 1; t <= horizon; ++t) ++counts[static_cast<std::size_t>(w.at(t))];
  const std::array<double, 4> masses{predicted.pBot, predicted.ph, predicted.pH,
                                     predicted.pA};
  for (std::size_t s = 0; s < 4; ++s) {
    const Proportion band = clopper_pearson_interval(counts[s], horizon, 0.999999);
    EXPECT_LE(band.lo, masses[s]) << "symbol " << s;
    EXPECT_GE(band.hi, masses[s]) << "symbol " << s;
  }
}

}  // namespace
}  // namespace mh
