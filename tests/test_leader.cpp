#include "protocol/leader.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"

namespace mh {
namespace {

TEST(Leader, SymbolLevelScheduleShapes) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.3);
  Rng rng(10);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 500, 8, rng);
  EXPECT_EQ(schedule.horizon(), 500u);
  for (std::size_t t = 1; t <= 500; ++t) {
    const SlotLeaders& l = schedule.leaders(t);
    if (l.adversarial) {
      EXPECT_TRUE(l.honest.empty());
    } else {
      EXPECT_GE(l.honest.size(), 1u);
      EXPECT_LE(l.honest.size(), 2u);
      if (l.honest.size() == 2) {
        EXPECT_NE(l.honest[0], l.honest[1]);
      }
    }
  }
}

TEST(Leader, CharacteristicStringMatchesLeaders) {
  const SymbolLaw law = bernoulli_condition(0.4, 0.2);
  Rng rng(11);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 200, 4, rng);
  const CharString w = schedule.characteristic_sync();
  for (std::size_t t = 1; t <= 200; ++t) {
    const SlotLeaders& l = schedule.leaders(t);
    if (l.adversarial)
      EXPECT_EQ(w.at(t), Symbol::A);
    else if (l.honest.size() == 1)
      EXPECT_EQ(w.at(t), Symbol::h);
    else
      EXPECT_EQ(w.at(t), Symbol::H);
  }
}

TEST(Leader, EligibilityChecks) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.4);
  Rng rng(12);
  const LeaderSchedule schedule = LeaderSchedule::from_symbol_law(law, 100, 4, rng);
  for (std::size_t t = 1; t <= 100; ++t) {
    const SlotLeaders& l = schedule.leaders(t);
    EXPECT_EQ(schedule.eligible(kAdversary, t), l.adversarial);
    for (PartyId p : l.honest) EXPECT_TRUE(schedule.eligible(p, t));
  }
  EXPECT_FALSE(schedule.eligible(0, 0));    // genesis slot
  EXPECT_FALSE(schedule.eligible(0, 101));  // beyond horizon
}

TEST(Leader, TetraScheduleMayHaveEmptySlots) {
  const TetraLaw law = theorem7_law(0.3, 0.1, 0.1);
  Rng rng(13);
  const LeaderSchedule schedule = LeaderSchedule::from_tetra_law(law, 300, 4, rng);
  const TetraString w = schedule.characteristic();
  std::size_t empties = 0;
  for (std::size_t t = 1; t <= 300; ++t)
    if (is_empty(w.at(t))) ++empties;
  EXPECT_GT(empties, 120u);  // pBot = 0.7: expect ~210
  EXPECT_THROW(schedule.characteristic_sync(), std::invalid_argument);
}

TEST(Leader, PraosLotteryInducedLawMatchesEmpirical) {
  const double f = 0.3, adv_stake = 0.25;
  const std::size_t parties = 6;
  const TetraLaw predicted = LeaderSchedule::praos_induced_law(f, adv_stake, parties);
  Rng rng(14);
  std::array<std::size_t, 4> counts{};  // Bot, h, H, A
  const std::size_t horizon = 60'000;
  const LeaderSchedule schedule = LeaderSchedule::praos_lottery(f, adv_stake, parties,
                                                                horizon, rng);
  const TetraString w = schedule.characteristic();
  for (std::size_t t = 1; t <= horizon; ++t) ++counts[static_cast<std::size_t>(w.at(t))];
  const std::array<double, 4> expected{predicted.pBot, predicted.ph, predicted.pH,
                                       predicted.pA};
  EXPECT_LT(chi_square_statistic(counts, expected), chi_square_critical(3, 0.001));
}

TEST(Leader, PraosInducedLawSums) {
  const TetraLaw law = LeaderSchedule::praos_induced_law(0.2, 0.3, 10);
  EXPECT_NEAR(law.pBot + law.ph + law.pH + law.pA, 1.0, 1e-12);
  EXPECT_GT(law.pH, 0.0);  // concurrent honest leaders occur by design
}

TEST(Leader, HSlotNeedsTwoParties) {
  const SymbolLaw all_H{0.0, 1.0, 0.0};
  Rng rng(15);
  EXPECT_THROW(LeaderSchedule::from_symbol_law(all_H, 10, 1, rng), std::invalid_argument);
}

}  // namespace
}  // namespace mh
