#include "fork/validate.hpp"

#include <gtest/gtest.h>

#include "fork_fixtures.hpp"

namespace mh {
namespace {

TEST(Validate, FigureForksAreValid) {
  fixtures::Fig1 fig1;
  EXPECT_TRUE(validate_fork(fig1.fork, fig1.w)) << validate_fork(fig1.fork, fig1.w).message;
  fixtures::Fig2 fig2;
  EXPECT_TRUE(validate_fork(fig2.fork, fig2.w).ok);
  fixtures::Fig3 fig3;
  EXPECT_TRUE(validate_fork(fig3.fork, fig3.w).ok);
}

TEST(Validate, TrivialForkValidForAnyString) {
  const Fork f;
  // (F3) requires honest slots to be populated, so only all-adversarial
  // strings admit the trivial fork.
  EXPECT_TRUE(validate_fork(f, CharString::parse("AAA")).ok);
  EXPECT_FALSE(validate_fork(f, CharString::parse("AhA")).ok);
}

TEST(Validate, F2LabelBeyondString) {
  Fork f;
  f.add_vertex(kRoot, 4);
  const auto result = validate_fork(f, CharString::parse("AAA"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("(F2)"), std::string::npos);
}

TEST(Validate, F3UniquelyHonestSlotNeedsExactlyOneVertex) {
  const CharString w = CharString::parse("hA");
  {
    Fork f;  // zero vertices at slot 1
    EXPECT_FALSE(validate_fork(f, w).ok);
  }
  {
    Fork f;  // two vertices at slot 1
    f.add_vertex(kRoot, 1);
    f.add_vertex(kRoot, 1);
    const auto result = validate_fork(f, w);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message.find("(F3)"), std::string::npos);
  }
  {
    Fork f;
    f.add_vertex(kRoot, 1);
    EXPECT_TRUE(validate_fork(f, w).ok);
  }
}

TEST(Validate, F3MultiplyHonestSlotNeedsAtLeastOne) {
  const CharString w = CharString::parse("HA");
  Fork f;
  EXPECT_FALSE(validate_fork(f, w).ok);
  f.add_vertex(kRoot, 1);
  EXPECT_TRUE(validate_fork(f, w).ok);
  f.add_vertex(kRoot, 1);
  EXPECT_TRUE(validate_fork(f, w).ok);  // several honest blocks are fine
}

TEST(Validate, F4HonestDepthsMustIncrease) {
  const CharString w = CharString::parse("hh");
  Fork f;
  f.add_vertex(kRoot, 1);
  f.add_vertex(kRoot, 2);  // depth 1 == depth 1: violates (F4)
  const auto result = validate_fork(f, w);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("(F4)"), std::string::npos);

  Fork g;
  const VertexId a = g.add_vertex(kRoot, 1);
  g.add_vertex(a, 2);
  EXPECT_TRUE(validate_fork(g, w).ok);
}

TEST(Validate, F4EqualLabelsExempt) {
  // Two honest vertices of one H slot may sit at different depths.
  const CharString w = CharString::parse("AH");
  Fork f;
  const VertexId a = f.add_vertex(kRoot, 1);
  f.add_vertex(a, 2);
  f.add_vertex(kRoot, 2);
  EXPECT_TRUE(validate_fork(f, w).ok);
}

TEST(Validate, DeltaRelaxationAllowsNearbyEqualDepths) {
  const CharString w = CharString::parse("hh");
  Fork f;
  f.add_vertex(kRoot, 1);
  f.add_vertex(kRoot, 2);  // equal depths, 1 slot apart
  EXPECT_FALSE(validate_fork(f, w, 0).ok);
  EXPECT_TRUE(validate_fork(f, w, 1).ok);   // 1 + 1 is not < 2
  EXPECT_TRUE(validate_fork(f, w, 5).ok);
}

TEST(Validate, DeltaStillConstrainsFarApartSlots) {
  const CharString w = CharString::parse("hAAAh");
  Fork f;
  f.add_vertex(kRoot, 1);
  f.add_vertex(kRoot, 5);  // equal depths, 4 slots apart
  EXPECT_TRUE(validate_fork(f, w, 4).ok);
  EXPECT_FALSE(validate_fork(f, w, 3).ok);
}

TEST(Validate, AdversarialMultiplicityUnconstrained) {
  const CharString w = CharString::parse("Ah");
  Fork f;
  const VertexId a1 = f.add_vertex(kRoot, 1);
  f.add_vertex(kRoot, 1);
  f.add_vertex(a1, 2);
  EXPECT_TRUE(validate_fork(f, w).ok);
}

}  // namespace
}  // namespace mh
