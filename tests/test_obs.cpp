// The observability layer's design contract (src/obs):
//
//   * shard merges are thread-count invariant — counters / histograms sum,
//     gauges take the max, so {1, 2, 8} recording threads produce identical
//     merged values;
//   * histogram buckets are log base-2 with exact boundaries (bucket 0 = {0},
//     bucket i >= 1 = [2^(i-1), 2^i)) and exact count/sum/min/max;
//   * spans nest per thread and drain oldest-first from the ring sink, with
//     children closing (and therefore appearing) before their parent;
//   * the registry rejects a name registered under two different kinds and
//     deduplicates same-kind re-registration to one instrument;
//   * the golden pin: enabling metric recording changes NO result bit — the
//     pinned transport digests and the settlement-DP series are identical
//     with recording on and off (in every build; in -DMH_OBS=ON builds this
//     additionally exercises every compiled-in hook).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "chars/bernoulli.hpp"
#include "core/exact_dp.hpp"
#include "obs/obs.hpp"
#include "protocol/transport_probe.hpp"

namespace {

/// Restores the runtime recording switch on scope exit; tests flip it freely.
class EnabledGuard {
 public:
  EnabledGuard() : was_(mh::obs::enabled()) {}
  ~EnabledGuard() { mh::obs::set_enabled(was_); }

 private:
  bool was_;
};

void record_from_threads(std::size_t n_threads, const std::function<void(std::size_t)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) threads.emplace_back(body, t);
  for (std::thread& th : threads) th.join();
}

TEST(ObsMetrics, CounterMergeIsThreadCountInvariant) {
  for (const std::size_t n_threads : {1u, 2u, 8u}) {
    mh::obs::Counter counter;
    record_from_threads(n_threads, [&](std::size_t) {
      for (int i = 0; i < 1000; ++i) counter.add();
      counter.add(5);
    });
    EXPECT_EQ(counter.value(), n_threads * 1005u) << n_threads << " threads";
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
  }
}

TEST(ObsMetrics, HistogramMergeIsThreadCountInvariant) {
  // Every thread records the identical sample set, so count / sum / buckets
  // scale linearly with the thread count and min / max are invariant.
  const std::array<std::uint64_t, 6> samples{0, 1, 3, 8, 100, 1 << 20};
  for (const std::size_t n_threads : {1u, 2u, 8u}) {
    mh::obs::Histogram hist;
    record_from_threads(n_threads, [&](std::size_t) {
      for (const std::uint64_t v : samples) hist.record(v);
    });
    EXPECT_EQ(hist.count(), n_threads * samples.size());
    EXPECT_EQ(hist.sum(), n_threads * (0 + 1 + 3 + 8 + 100 + (1u << 20)));
    EXPECT_EQ(hist.min(), 0u);
    EXPECT_EQ(hist.max(), 1u << 20);
    for (const std::uint64_t v : samples)
      EXPECT_GE(hist.bucket_count(mh::obs::Histogram::bucket_of(v)), n_threads)
          << "sample " << v;
  }
}

TEST(ObsMetrics, GaugeMergesToMaxAcrossThreads) {
  mh::obs::Gauge gauge;
  EXPECT_FALSE(gauge.ever_set());
  EXPECT_EQ(gauge.value(), 0);
  record_from_threads(8, [&](std::size_t t) { gauge.set(static_cast<std::int64_t>(t * 10)); });
  EXPECT_TRUE(gauge.ever_set());
  EXPECT_EQ(gauge.value(), 70);  // max over the per-thread levels
  gauge.reset();
  EXPECT_FALSE(gauge.ever_set());
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  using H = mh::obs::Histogram;
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);  // still inside [2, 4)
  EXPECT_EQ(H::bucket_of(4), 3u);
  EXPECT_EQ(H::bucket_of(7), 3u);
  EXPECT_EQ(H::bucket_of(8), 4u);
  EXPECT_EQ(H::bucket_of((1u << 20) - 1), 20u);
  EXPECT_EQ(H::bucket_of(1u << 20), 21u);
  // The top bucket absorbs everything past 2^62.
  EXPECT_EQ(H::bucket_of(~std::uint64_t{0}), H::kBuckets - 1);

  EXPECT_EQ(H::bucket_lo(0), 0u);
  EXPECT_EQ(H::bucket_lo(1), 1u);
  EXPECT_EQ(H::bucket_lo(2), 2u);
  EXPECT_EQ(H::bucket_lo(3), 4u);
  EXPECT_EQ(H::bucket_lo(21), 1u << 20);

  // bucket_lo(bucket_of(v)) <= v for every v >= lower boundary probes.
  for (const std::uint64_t v : {1u, 2u, 3u, 5u, 16u, 1000u, (1u << 30)}) {
    const std::size_t b = H::bucket_of(v);
    EXPECT_LE(H::bucket_lo(b), v);
    if (b + 1 < H::kBuckets) EXPECT_GT(H::bucket_lo(b + 1), v);
  }
}

TEST(ObsTrace, SpansNestAndDrainOldestFirstChildrenBeforeParent) {
  EnabledGuard guard;
  mh::obs::set_enabled(true);
  mh::obs::TraceSink& sink = mh::obs::TraceSink::global();
  sink.clear();

  EXPECT_EQ(mh::obs::Span::current_depth(), 0u);
  {
    mh::obs::Span outer("test.obs.outer");
    EXPECT_EQ(mh::obs::Span::current_depth(), 1u);
    {
      mh::obs::Span inner("test.obs.inner");
      EXPECT_EQ(mh::obs::Span::current_depth(), 2u);
    }
    EXPECT_EQ(mh::obs::Span::current_depth(), 1u);
  }
  EXPECT_EQ(mh::obs::Span::current_depth(), 0u);

  const std::vector<mh::obs::TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  // Events push on close: the inner span lands first, at depth 1.
  EXPECT_STREQ(events[0].name, "test.obs.inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].name, "test.obs.outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_LE(events[1].begin_ns, events[0].begin_ns);  // parent opened first
  EXPECT_GE(events[1].end_ns, events[0].end_ns);      // parent closed last
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  EnabledGuard guard;
  mh::obs::set_enabled(false);
  mh::obs::TraceSink& sink = mh::obs::TraceSink::global();
  sink.clear();
  {
    mh::obs::Span span("test.obs.disabled");
    EXPECT_EQ(mh::obs::Span::current_depth(), 0u);  // inert: no depth taken
  }
  EXPECT_EQ(sink.events().size(), 0u);
}

TEST(ObsTrace, RingSinkWrapsOldestFirst) {
  mh::obs::TraceSink sink(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    mh::obs::TraceEvent e;
    e.name = "test.obs.wrap";
    e.begin_ns = i;
    e.end_ns = i + 1;
    sink.record(e);
  }
  EXPECT_EQ(sink.recorded(), 6u);
  EXPECT_EQ(sink.dropped(), 2u);
  const std::vector<mh::obs::TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].begin_ns, i + 2);
}

TEST(ObsTrace, ScopedTimerFeedsRegistryHistogram) {
  EnabledGuard guard;
  mh::obs::set_enabled(true);
  mh::obs::Histogram& hist = mh::obs::Registry::global().histogram("test.obs.timer_ns");
  hist.reset();
  { mh::obs::ScopedTimer timer("test.obs.timer_ns"); }
  EXPECT_EQ(hist.count(), 1u);
}

TEST(ObsRegistry, SameNameSameKindIsOneInstrument) {
  mh::obs::Registry& registry = mh::obs::Registry::global();
  mh::obs::Counter& a = registry.counter("test.obs.dedup");
  mh::obs::Counter& b = registry.counter("test.obs.dedup");
  EXPECT_EQ(&a, &b);
}

TEST(ObsRegistry, NameCollisionAcrossKindsThrows) {
  mh::obs::Registry& registry = mh::obs::Registry::global();
  registry.counter("test.obs.collision");
  EXPECT_THROW(registry.gauge("test.obs.collision"), std::logic_error);
  EXPECT_THROW(registry.histogram("test.obs.collision"), std::logic_error);
}

TEST(ObsRegistry, SnapshotMergesRegisteredInstruments) {
  mh::obs::Registry& registry = mh::obs::Registry::global();
  mh::obs::Counter& counter = registry.counter("test.obs.snapshot_counter");
  counter.reset();
  counter.add(42);
  const mh::obs::Snapshot snapshot = registry.snapshot();
  bool found = false;
  for (const mh::obs::CounterSnapshot& c : snapshot.counters)
    if (c.name == "test.obs.snapshot_counter") {
      found = true;
      EXPECT_EQ(c.value, 42u);
    }
  EXPECT_TRUE(found);
}

// The golden pin: switching metric recording on must not move a single bit of
// any simulation or analytic result. The transport probes cover the protocol
// stack (network / node / tree / sim hooks); the settlement series covers the
// banded-DP kernel hooks.
TEST(ObsGoldenPin, MetricsOnEqualsMetricsOffAndMatchesPin) {
  EnabledGuard guard;

  mh::obs::set_enabled(false);
  const mh::TransportProbeOutcome balance_off = mh::balance_transport_probe(
      mh::kBalanceProbePinParties, mh::kBalanceProbePinHorizon, mh::kBalanceProbePinSeed);
  const mh::TransportProbeOutcome randomized_off = mh::randomized_transport_probe(
      mh::kRandomizedProbePinParties, mh::kRandomizedProbePinHorizon,
      mh::kRandomizedProbePinSeed, mh::kRandomizedProbePinDelta);

  mh::obs::set_enabled(true);
  const mh::TransportProbeOutcome balance_on = mh::balance_transport_probe(
      mh::kBalanceProbePinParties, mh::kBalanceProbePinHorizon, mh::kBalanceProbePinSeed);
  const mh::TransportProbeOutcome randomized_on = mh::randomized_transport_probe(
      mh::kRandomizedProbePinParties, mh::kRandomizedProbePinHorizon,
      mh::kRandomizedProbePinSeed, mh::kRandomizedProbePinDelta);

  EXPECT_EQ(balance_off.digest, mh::kBalanceProbePinDigest);
  EXPECT_EQ(balance_on.digest, mh::kBalanceProbePinDigest);
  EXPECT_EQ(randomized_off.digest, mh::kRandomizedProbePinDigest);
  EXPECT_EQ(randomized_on.digest, mh::kRandomizedProbePinDigest);
  EXPECT_EQ(balance_on.blocks, balance_off.blocks);
  EXPECT_EQ(randomized_on.divergence, randomized_off.divergence);
}

TEST(ObsGoldenPin, SettlementSeriesBitIdenticalWithMetricsOn) {
  EnabledGuard guard;
  const mh::SymbolLaw law = mh::bernoulli_condition(0.3, 0.3);

  mh::obs::set_enabled(false);
  const mh::SettlementSeries off = mh::exact_settlement_series(law, 40);
  mh::obs::set_enabled(true);
  const mh::SettlementSeries on = mh::exact_settlement_series(law, 40);

  ASSERT_EQ(on.violation.size(), off.violation.size());
  for (std::size_t k = 0; k < off.violation.size(); ++k)
    EXPECT_EQ(on.violation[k], off.violation[k]) << "k = " << k;  // bitwise, not approx
}

}  // namespace
