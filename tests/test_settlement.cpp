#include "core/settlement.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"
#include "core/astar.hpp"
#include "fork/balanced.hpp"
#include "fork_fixtures.hpp"
#include "support/random.hpp"

namespace mh {
namespace {

TEST(Settlement, DivergePriorTo) {
  fixtures::Fig1 fig;
  // The two max tines v9a / v9b: one passes slot 5 (v5), the other skips it.
  EXPECT_TRUE(diverge_prior_to(fig.fork, fig.v9a, fig.v9b, 5));
  // Both carry (different) vertices labeled 9.
  EXPECT_TRUE(diverge_prior_to(fig.fork, fig.v9a, fig.v9b, 9));
  // Neither carries a vertex labeled 8... v9b passes a8. One-sided: diverge.
  EXPECT_TRUE(diverge_prior_to(fig.fork, fig.v9a, fig.v9b, 8));
  // Same tine never diverges from itself.
  EXPECT_FALSE(diverge_prior_to(fig.fork, fig.v9a, fig.v9a, 5));
}

TEST(Settlement, BothChainsSkippingSlotAgree) {
  // Two chains that both lack a vertex at slot s agree about s by Def. 3.
  Fork f;
  const CharString w = CharString::parse("AHH");
  const VertexId b2 = f.add_vertex(kRoot, 2);
  const VertexId b3 = f.add_vertex(kRoot, 3);
  EXPECT_FALSE(diverge_prior_to(f, b2, b3, 1));
  EXPECT_TRUE(diverge_prior_to(f, b2, b3, 2));
  (void)w;
}

TEST(Settlement, ViolationInForkMatchesBalance) {
  fixtures::Fig2 fig;
  // Balanced fork for hAhAhA: the two max-length tines diverge prior to 1.
  EXPECT_TRUE(settlement_violation_in_fork(fig.fork, 1));
  fixtures::Fig3 fig3;
  // Fig 3 tines share slots 1-2 and diverge after: no violation for s <= 2...
  EXPECT_FALSE(settlement_violation_in_fork(fig3.fork, 1));
  EXPECT_FALSE(settlement_violation_in_fork(fig3.fork, 2));
  EXPECT_TRUE(settlement_violation_in_fork(fig3.fork, 3));
}

TEST(Settlement, MarginViolationPredicates) {
  // w = HAA...: mu_eps stays >= 0 (H at 0 then A's raise it).
  const CharString w = CharString::parse("HAAA");
  EXPECT_TRUE(margin_violation_at(w, 1, 3));
  EXPECT_TRUE(margin_violation_within(w, 1, 3));
  // w = hhhh from slot 1: margins plunge, no violation.
  const CharString v = CharString::parse("hhhh");
  EXPECT_FALSE(margin_violation_at(v, 1, 4));
  EXPECT_FALSE(margin_violation_within(v, 1, 4));
}

TEST(Settlement, WithinIsWeakerThanAt) {
  const SymbolLaw law = bernoulli_condition(0.2, 0.3);
  Rng rng(606);
  for (int trial = 0; trial < 50; ++trial) {
    const CharString w = law.sample_string(40, rng);
    for (std::size_t s = 1; s + 10 <= w.size(); s += 5) {
      if (margin_violation_at(w, s, 10)) {
        EXPECT_TRUE(margin_violation_within(w, s, 10));
      }
    }
  }
}

TEST(Settlement, InputValidation) {
  const CharString w = CharString::parse("hAhA");
  EXPECT_THROW(margin_violation_at(w, 1, 5), std::invalid_argument);
  EXPECT_THROW(margin_violation_at(w, 0, 1), std::invalid_argument);
}

// Theorem 3 + Eq. (1): a uniquely honest Catalan slot inside [s, s+k-1]
// settles slot s; no margin violation may occur at or beyond the window.
struct SettleCase {
  double eps, ph;
};

class CatalanSettles : public ::testing::TestWithParam<SettleCase> {};

TEST_P(CatalanSettles, CatalanWindowForbidsViolation) {
  const auto [eps, ph] = GetParam();
  const SymbolLaw law = bernoulli_condition(eps, ph);
  Rng rng(112233);
  const std::size_t n = 60, k = 12;
  for (int trial = 0; trial < 60; ++trial) {
    const CharString w = law.sample_string(n, rng);
    for (std::size_t s = 1; s + k <= n; s += 4) {
      if (settled_via_catalan(w, s, k)) {
        ASSERT_FALSE(margin_violation_within(w, s, k))
            << "w = " << w.to_string() << " s = " << s;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, CatalanSettles,
                         ::testing::Values(SettleCase{0.3, 0.4}, SettleCase{0.1, 0.1},
                                           SettleCase{0.5, 0.5}, SettleCase{0.7, 0.2}));

// The A* fork realizes every margin violation structurally: when
// mu_x(y) >= 0 at |y| = k, the canonical fork extended to an x-balanced fork
// exhibits two maximum-length tines diverging prior to s = |x| + 1.
TEST(Settlement, MarginViolationYieldsStructuralViolation) {
  const SymbolLaw law = bernoulli_condition(0.2, 0.2);
  Rng rng(99);
  int violations_seen = 0;
  for (int trial = 0; trial < 100 && violations_seen < 10; ++trial) {
    const CharString w = law.sample_string(24, rng);
    for (std::size_t s = 1; s + 4 <= w.size(); ++s) {
      if (!margin_violation_at(w, s, 4)) continue;
      ++violations_seen;
      const CharString prefix = w.prefix(s - 1 + 4);
      const Fork canonical = build_canonical_fork(prefix);
      const auto balanced = extend_to_x_balanced(canonical, prefix, s - 1);
      ASSERT_TRUE(balanced.has_value());
      const bool skip_only = !settlement_violation_in_fork(*balanced, s);
      // Divergence prior to s requires disagreement ABOUT s; x-balance allows
      // both tines to skip the slot, so allow that rare benign case.
      if (skip_only) {
        const auto heads = balanced->longest_tines();
        bool some_has_s = false;
        for (VertexId h : heads)
          for (VertexId v = h; v != kRoot; v = balanced->parent(v))
            if (balanced->label(v) == s) some_has_s = true;
        EXPECT_FALSE(some_has_s);
      }
    }
  }
  EXPECT_GT(violations_seen, 0);
}

}  // namespace
}  // namespace mh
