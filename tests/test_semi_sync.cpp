#include "delta/semi_sync.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"

namespace mh {
namespace {

TEST(TetraString, ParseRoundTrip) {
  const TetraString w = TetraString::parse("h..A.H_h");
  EXPECT_EQ(w.size(), 8u);
  EXPECT_EQ(w.to_string(), "h..A.H.h");  // '_' normalizes to '.'
  EXPECT_EQ(w.at(1), TetraSymbol::h);
  EXPECT_EQ(w.at(2), TetraSymbol::Bot);
  EXPECT_EQ(w.at(4), TetraSymbol::A);
  EXPECT_EQ(w.at(6), TetraSymbol::H);
}

TEST(TetraString, ParseRejectsGarbage) {
  EXPECT_THROW(TetraString::parse("hxA"), std::invalid_argument);
}

TEST(TetraString, Indexing) {
  const TetraString w = TetraString::parse("hA");
  EXPECT_THROW(static_cast<void>(w.at(0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(w.at(3)), std::invalid_argument);
}

TEST(TetraLaw, Theorem7Parameterization) {
  const TetraLaw law = theorem7_law(0.2, 0.05, 0.1);
  EXPECT_NEAR(law.pBot, 0.8, 1e-12);
  EXPECT_NEAR(law.pA, 0.05, 1e-12);
  EXPECT_NEAR(law.ph, 0.1, 1e-12);
  EXPECT_NEAR(law.pH, 0.05, 1e-12);
  EXPECT_NEAR(law.f(), 0.2, 1e-12);
}

TEST(TetraLaw, RejectsInvalid) {
  EXPECT_THROW(theorem7_law(0.0, 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(theorem7_law(0.2, 0.25, 0.1), std::invalid_argument);  // pA >= f
  EXPECT_THROW(theorem7_law(0.2, 0.05, 0.2), std::invalid_argument);  // ph > f - pA
}

TEST(TetraLaw, SamplingFrequencies) {
  const TetraLaw law = theorem7_law(0.3, 0.1, 0.15);
  Rng rng(4096);
  std::array<std::size_t, 4> counts{};
  const std::size_t n = 400'000;
  for (std::size_t i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(law.sample(rng))];
  const std::array<double, 4> expected{law.pBot, law.ph, law.pH, law.pA};
  EXPECT_LT(chi_square_statistic(counts, expected), chi_square_critical(3, 0.001));
}

TEST(TetraLaw, SampleString) {
  const TetraLaw law = theorem7_law(0.5, 0.2, 0.2);
  Rng rng(1);
  const TetraString w = law.sample_string(256, rng);
  EXPECT_EQ(w.size(), 256u);
}

}  // namespace
}  // namespace mh
