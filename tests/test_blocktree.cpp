#include "protocol/blocktree.hpp"

#include <gtest/gtest.h>

namespace mh {
namespace {

TEST(BlockTree, StartsWithGenesis) {
  const BlockTree tree;
  EXPECT_TRUE(tree.contains(genesis_block().hash));
  EXPECT_EQ(tree.block_count(), 1u);
  EXPECT_EQ(tree.length(genesis_block().hash), 0u);
  EXPECT_EQ(tree.best_length(), 0u);
}

TEST(BlockTree, AddValidatesParentSlotAndIntegrity) {
  BlockTree tree;
  const Block good = make_block(genesis_block().hash, 1, 0, 0);
  EXPECT_TRUE(tree.add(good));
  EXPECT_EQ(tree.length(good.hash), 1u);

  const Block orphan = make_block(0xdeadbeef, 2, 0, 0);
  EXPECT_FALSE(tree.add(orphan));

  Block tampered = make_block(good.hash, 2, 0, 0);
  tampered.payload = 99;  // hash no longer matches
  EXPECT_FALSE(tree.add(tampered));

  const Block stale = make_block(good.hash, 1, 0, 0);  // slot not increasing
  EXPECT_FALSE(tree.add(stale));

  EXPECT_TRUE(tree.add(good));  // idempotent re-insertion
  EXPECT_EQ(tree.block_count(), 2u);
}

TEST(BlockTree, BestHeadLongestChainWins) {
  BlockTree tree;
  const Block a1 = make_block(genesis_block().hash, 1, 0, 0);
  const Block a2 = make_block(a1.hash, 2, 0, 0);
  const Block b1 = make_block(genesis_block().hash, 3, 1, 0);
  tree.add(a1);
  tree.add(a2);
  tree.add(b1);
  EXPECT_EQ(tree.best_head(TieBreak::AdversarialOrder), a2.hash);
  EXPECT_EQ(tree.best_head(TieBreak::ConsistentHash), a2.hash);
  EXPECT_EQ(tree.best_length(), 2u);
}

TEST(BlockTree, TieBreakByArrivalVsHash) {
  BlockTree tree;
  const Block a = make_block(genesis_block().hash, 1, 0, 7);
  const Block b = make_block(genesis_block().hash, 2, 1, 8);
  tree.add(a);
  tree.add(b);
  EXPECT_EQ(tree.best_head(TieBreak::AdversarialOrder), a.hash);  // first arrival
  EXPECT_EQ(tree.best_head(TieBreak::ConsistentHash), std::min(a.hash, b.hash));
  const auto heads = tree.max_length_heads();
  ASSERT_EQ(heads.size(), 2u);
  EXPECT_EQ(heads[0], a.hash);
}

TEST(BlockTree, ChainReconstruction) {
  BlockTree tree;
  const Block a1 = make_block(genesis_block().hash, 1, 0, 0);
  const Block a2 = make_block(a1.hash, 4, 0, 0);
  tree.add(a1);
  tree.add(a2);
  const auto chain = tree.chain(a2.hash);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], genesis_block().hash);
  EXPECT_EQ(chain[1], a1.hash);
  EXPECT_EQ(chain[2], a2.hash);
}

TEST(BlockTree, CommonAncestor) {
  BlockTree tree;
  const Block trunk = make_block(genesis_block().hash, 1, 0, 0);
  const Block left = make_block(trunk.hash, 2, 0, 0);
  const Block right = make_block(trunk.hash, 3, 1, 0);
  const Block right2 = make_block(right.hash, 4, 1, 0);
  tree.add(trunk);
  tree.add(left);
  tree.add(right);
  tree.add(right2);
  EXPECT_EQ(tree.common_ancestor(left.hash, right2.hash), trunk.hash);
  EXPECT_EQ(tree.common_ancestor(right2.hash, right.hash), right.hash);
  EXPECT_EQ(tree.common_ancestor(left.hash, left.hash), left.hash);
}

TEST(BlockTree, BlockAtSlot) {
  BlockTree tree;
  const Block a1 = make_block(genesis_block().hash, 2, 0, 0);
  const Block a2 = make_block(a1.hash, 5, 0, 0);
  tree.add(a1);
  tree.add(a2);
  EXPECT_EQ(tree.block_at_slot(a2.hash, 5), a2.hash);
  EXPECT_EQ(tree.block_at_slot(a2.hash, 4), a1.hash);
  EXPECT_EQ(tree.block_at_slot(a2.hash, 2), a1.hash);
  EXPECT_EQ(tree.block_at_slot(a2.hash, 1), std::nullopt);
}

TEST(BlockTree, UnknownBlockThrows) {
  const BlockTree tree;
  EXPECT_THROW(static_cast<void>(tree.length(12345)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(tree.block(12345)), std::invalid_argument);
}

}  // namespace
}  // namespace mh
