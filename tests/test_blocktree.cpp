#include "protocol/blocktree.hpp"

#include <gtest/gtest.h>

#include "fork_fixtures.hpp"

namespace mh {
namespace {

TEST(BlockTree, StartsWithGenesis) {
  const BlockTree tree;
  EXPECT_TRUE(tree.contains(genesis_block().hash));
  EXPECT_EQ(tree.block_count(), 1u);
  EXPECT_EQ(tree.length(genesis_block().hash), 0u);
  EXPECT_EQ(tree.best_length(), 0u);
}

TEST(BlockTree, AddValidatesParentSlotAndIntegrity) {
  BlockTree tree;
  const Block good = make_block(genesis_block().hash, 1, 0, 0);
  EXPECT_TRUE(tree.add(good));
  EXPECT_EQ(tree.length(good.hash), 1u);

  const Block orphan = make_block(0xdeadbeef, 2, 0, 0);
  EXPECT_FALSE(tree.add(orphan));

  Block tampered = make_block(good.hash, 2, 0, 0);
  tampered.payload = 99;  // hash no longer matches
  EXPECT_FALSE(tree.add(tampered));

  const Block stale = make_block(good.hash, 1, 0, 0);  // slot not increasing
  EXPECT_FALSE(tree.add(stale));

  EXPECT_TRUE(tree.add(good));  // idempotent re-insertion
  EXPECT_EQ(tree.block_count(), 2u);
}

TEST(BlockTree, BestHeadLongestChainWins) {
  BlockTree tree;
  const auto a = fixtures::grow_chain(tree, genesis_block().hash, {1, 2});
  fixtures::grow_chain(tree, genesis_block().hash, {3}, 1);
  EXPECT_EQ(tree.best_head(TieBreak::AdversarialOrder), a.back().hash);
  EXPECT_EQ(tree.best_head(TieBreak::ConsistentHash), a.back().hash);
  EXPECT_EQ(tree.best_length(), 2u);
}

TEST(BlockTree, TieBreakByArrivalVsHash) {
  BlockTree tree;
  const Block a = make_block(genesis_block().hash, 1, 0, 7);
  const Block b = make_block(genesis_block().hash, 2, 1, 8);
  tree.add(a);
  tree.add(b);
  EXPECT_EQ(tree.best_head(TieBreak::AdversarialOrder), a.hash);  // first arrival
  EXPECT_EQ(tree.best_head(TieBreak::ConsistentHash), std::min(a.hash, b.hash));
  const auto heads = tree.max_length_heads();
  ASSERT_EQ(heads.size(), 2u);
  EXPECT_EQ(heads[0], a.hash);
}

TEST(BlockTree, ChainReconstruction) {
  BlockTree tree;
  const auto a = fixtures::grow_chain(tree, genesis_block().hash, {1, 4});
  const auto chain = tree.chain(a.back().hash);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], genesis_block().hash);
  EXPECT_EQ(chain[1], a[0].hash);
  EXPECT_EQ(chain[2], a[1].hash);
}

TEST(BlockTree, CommonAncestor) {
  BlockTree tree;
  const auto trunk = fixtures::grow_chain(tree, genesis_block().hash, {1});
  const auto left = fixtures::grow_chain(tree, trunk.back().hash, {2});
  const auto right = fixtures::grow_chain(tree, trunk.back().hash, {3, 4}, 1);
  EXPECT_EQ(tree.common_ancestor(left.back().hash, right.back().hash), trunk.back().hash);
  EXPECT_EQ(tree.common_ancestor(right.back().hash, right.front().hash), right.front().hash);
  EXPECT_EQ(tree.common_ancestor(left.back().hash, left.back().hash), left.back().hash);
}

TEST(BlockTree, BlockAtSlot) {
  BlockTree tree;
  const auto a = fixtures::grow_chain(tree, genesis_block().hash, {2, 5});
  EXPECT_EQ(tree.block_at_slot(a.back().hash, 5), a.back().hash);
  EXPECT_EQ(tree.block_at_slot(a.back().hash, 4), a.front().hash);
  EXPECT_EQ(tree.block_at_slot(a.back().hash, 2), a.front().hash);
  EXPECT_EQ(tree.block_at_slot(a.back().hash, 1), std::nullopt);
}

TEST(BlockTree, UnknownBlockThrows) {
  const BlockTree tree;
  EXPECT_THROW(static_cast<void>(tree.length(12345)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(tree.block(12345)), std::invalid_argument);
}

TEST(BlockTree, TryAddDistinguishesOrphanFromInvalid) {
  BlockTree tree;
  const Block good = make_block(genesis_block().hash, 1, 0, 0);
  EXPECT_EQ(tree.try_add(good), BlockTree::AddResult::Added);
  EXPECT_EQ(tree.try_add(good), BlockTree::AddResult::Duplicate);

  // Parent unknown: retriable, NOT invalid — it may arrive later.
  const Block orphan = make_block(0xdeadbeef, 2, 0, 0);
  EXPECT_EQ(tree.try_add(orphan), BlockTree::AddResult::Orphan);

  // Tampered header / non-increasing slot: permanently invalid.
  Block tampered = make_block(good.hash, 2, 0, 0);
  tampered.payload = 99;
  EXPECT_EQ(tree.try_add(tampered), BlockTree::AddResult::Invalid);
  const Block stale = make_block(good.hash, 1, 0, 0);
  EXPECT_EQ(tree.try_add(stale), BlockTree::AddResult::Invalid);
}

TEST(BlockTree, AdversarialOrderIsFirstArrivalSemantics) {
  // Pin of the intended axiom-A0 rule: among tied maximum-length heads the
  // FIRST-arrived wins (the adversary orders deliveries, so "first" is its
  // lever). The seed carried a dead "later arrival wins" comparison branch;
  // this test pins the simplification.
  BlockTree tree;
  const Block a = make_block(genesis_block().hash, 1, 0, 1);
  const Block b = make_block(genesis_block().hash, 2, 1, 2);
  tree.add(a);
  tree.add(b);
  EXPECT_EQ(tree.best_head(TieBreak::AdversarialOrder), a.hash);

  // A strictly longer chain resets the tie set: its tip is now first arrival.
  const Block c = make_block(b.hash, 3, 0, 3);
  tree.add(c);
  EXPECT_EQ(tree.best_head(TieBreak::AdversarialOrder), c.hash);

  // A later equal-length head joins the tie set but does not displace c.
  const Block d = make_block(a.hash, 4, 1, 4);
  tree.add(d);
  EXPECT_EQ(tree.best_head(TieBreak::AdversarialOrder), c.hash);
  const auto heads = tree.max_length_heads();
  ASSERT_EQ(heads.size(), 2u);
  EXPECT_EQ(heads[0], c.hash);
  EXPECT_EQ(heads[1], d.hash);
  EXPECT_EQ(tree.best_head(TieBreak::ConsistentHash), std::min(c.hash, d.hash));
}

TEST(BlockTree, AncestorAtLength) {
  BlockTree tree;
  const auto chain = fixtures::grow_chain(tree, genesis_block().hash, {1, 2, 5, 9});
  EXPECT_EQ(tree.ancestor_at_length(chain.back().hash, 0), genesis_block().hash);
  for (std::size_t len = 1; len <= chain.size(); ++len)
    EXPECT_EQ(tree.ancestor_at_length(chain.back().hash, len), chain[len - 1].hash);
  EXPECT_THROW(static_cast<void>(tree.ancestor_at_length(chain.front().hash, 2)),
               std::invalid_argument);
}

TEST(BlockTree, LiftedQueriesMatchNaiveWalks) {
  // Differential fuzz of the binary-lifting paths against parent-walk
  // references on a random tree mixing long chains and wide forks.
  Rng rng(0xb10c);
  BlockTree tree;
  std::vector<Block> blocks{genesis_block()};
  for (std::uint64_t i = 0; i < 500; ++i) {
    // Bias towards recent parents so chains get deep; sometimes fork wide.
    const std::size_t pick = rng.bernoulli(0.7) ? blocks.size() - 1 : rng.below(blocks.size());
    const Block& parent = blocks[pick];
    const Block b = make_block(parent.hash, parent.slot + 1 + rng.below(3), 0, i);
    ASSERT_EQ(tree.try_add(b), BlockTree::AddResult::Added);
    blocks.push_back(b);
  }

  const auto naive_chain_up = [&](BlockHash h) {
    std::vector<BlockHash> up{h};
    while (up.back() != genesis_block().hash) up.push_back(tree.block(up.back()).parent);
    return up;
  };
  const auto naive_meet = [&](BlockHash a, BlockHash b) {
    std::vector<BlockHash> ua = naive_chain_up(a);
    std::vector<BlockHash> ub = naive_chain_up(b);
    while (ua.size() > ub.size()) ua.erase(ua.begin());
    while (ub.size() > ua.size()) ub.erase(ub.begin());
    for (std::size_t i = 0; i < ua.size(); ++i)
      if (ua[i] == ub[i]) return ua[i];
    return genesis_block().hash;
  };
  const auto naive_at_slot = [&](BlockHash head, std::uint64_t s) -> std::optional<BlockHash> {
    for (BlockHash h = head; h != genesis_block().hash; h = tree.block(h).parent)
      if (tree.block(h).slot <= s) return h;
    return std::nullopt;
  };

  for (int trial = 0; trial < 300; ++trial) {
    const Block& x = blocks[rng.below(blocks.size())];
    const Block& y = blocks[rng.below(blocks.size())];
    EXPECT_EQ(tree.common_ancestor(x.hash, y.hash), naive_meet(x.hash, y.hash));
    const std::uint64_t s = rng.below(x.slot + 2);
    EXPECT_EQ(tree.block_at_slot(x.hash, s), naive_at_slot(x.hash, s));
    const std::size_t len = rng.below(tree.length(x.hash) + 1);
    const std::vector<BlockHash> up = naive_chain_up(x.hash);
    EXPECT_EQ(tree.ancestor_at_length(x.hash, len), up[up.size() - 1 - len]);
  }

  // The incremental head set matches a from-scratch arrival-order scan.
  std::vector<BlockHash> scan;
  for (BlockHash h : tree.arrival_order())
    if (tree.length(h) == tree.best_length()) scan.push_back(h);
  EXPECT_EQ(tree.max_length_heads(), scan);
}

}  // namespace
}  // namespace mh
