#include "protocol/blocktree.hpp"

#include <gtest/gtest.h>

#include "fork_fixtures.hpp"

namespace mh {
namespace {

TEST(BlockTree, StartsWithGenesis) {
  const BlockTree tree;
  EXPECT_TRUE(tree.contains(genesis_block().hash));
  EXPECT_EQ(tree.block_count(), 1u);
  EXPECT_EQ(tree.length(genesis_block().hash), 0u);
  EXPECT_EQ(tree.best_length(), 0u);
}

TEST(BlockTree, AddValidatesParentSlotAndIntegrity) {
  BlockTree tree;
  const Block good = make_block(genesis_block().hash, 1, 0, 0);
  EXPECT_TRUE(tree.add(good));
  EXPECT_EQ(tree.length(good.hash), 1u);

  const Block orphan = make_block(0xdeadbeef, 2, 0, 0);
  EXPECT_FALSE(tree.add(orphan));

  Block tampered = make_block(good.hash, 2, 0, 0);
  tampered.payload = 99;  // hash no longer matches
  EXPECT_FALSE(tree.add(tampered));

  const Block stale = make_block(good.hash, 1, 0, 0);  // slot not increasing
  EXPECT_FALSE(tree.add(stale));

  EXPECT_TRUE(tree.add(good));  // idempotent re-insertion
  EXPECT_EQ(tree.block_count(), 2u);
}

TEST(BlockTree, BestHeadLongestChainWins) {
  BlockTree tree;
  const auto a = fixtures::grow_chain(tree, genesis_block().hash, {1, 2});
  fixtures::grow_chain(tree, genesis_block().hash, {3}, 1);
  EXPECT_EQ(tree.best_head(TieBreak::AdversarialOrder), a.back().hash);
  EXPECT_EQ(tree.best_head(TieBreak::ConsistentHash), a.back().hash);
  EXPECT_EQ(tree.best_length(), 2u);
}

TEST(BlockTree, TieBreakByArrivalVsHash) {
  BlockTree tree;
  const Block a = make_block(genesis_block().hash, 1, 0, 7);
  const Block b = make_block(genesis_block().hash, 2, 1, 8);
  tree.add(a);
  tree.add(b);
  EXPECT_EQ(tree.best_head(TieBreak::AdversarialOrder), a.hash);  // first arrival
  EXPECT_EQ(tree.best_head(TieBreak::ConsistentHash), std::min(a.hash, b.hash));
  const auto heads = tree.max_length_heads();
  ASSERT_EQ(heads.size(), 2u);
  EXPECT_EQ(heads[0], a.hash);
}

TEST(BlockTree, ChainReconstruction) {
  BlockTree tree;
  const auto a = fixtures::grow_chain(tree, genesis_block().hash, {1, 4});
  const auto chain = tree.chain(a.back().hash);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], genesis_block().hash);
  EXPECT_EQ(chain[1], a[0].hash);
  EXPECT_EQ(chain[2], a[1].hash);
}

TEST(BlockTree, CommonAncestor) {
  BlockTree tree;
  const auto trunk = fixtures::grow_chain(tree, genesis_block().hash, {1});
  const auto left = fixtures::grow_chain(tree, trunk.back().hash, {2});
  const auto right = fixtures::grow_chain(tree, trunk.back().hash, {3, 4}, 1);
  EXPECT_EQ(tree.common_ancestor(left.back().hash, right.back().hash), trunk.back().hash);
  EXPECT_EQ(tree.common_ancestor(right.back().hash, right.front().hash), right.front().hash);
  EXPECT_EQ(tree.common_ancestor(left.back().hash, left.back().hash), left.back().hash);
}

TEST(BlockTree, BlockAtSlot) {
  BlockTree tree;
  const auto a = fixtures::grow_chain(tree, genesis_block().hash, {2, 5});
  EXPECT_EQ(tree.block_at_slot(a.back().hash, 5), a.back().hash);
  EXPECT_EQ(tree.block_at_slot(a.back().hash, 4), a.front().hash);
  EXPECT_EQ(tree.block_at_slot(a.back().hash, 2), a.front().hash);
  EXPECT_EQ(tree.block_at_slot(a.back().hash, 1), std::nullopt);
}

TEST(BlockTree, UnknownBlockThrows) {
  const BlockTree tree;
  EXPECT_THROW(static_cast<void>(tree.length(12345)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(tree.block(12345)), std::invalid_argument);
}

}  // namespace
}  // namespace mh
