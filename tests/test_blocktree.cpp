#include "protocol/blocktree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fork_fixtures.hpp"

namespace mh {
namespace {

TEST(BlockTree, StartsWithGenesis) {
  const BlockTree tree;
  EXPECT_TRUE(tree.contains(genesis_block().hash));
  EXPECT_EQ(tree.block_count(), 1u);
  EXPECT_EQ(tree.length(genesis_block().hash), 0u);
  EXPECT_EQ(tree.best_length(), 0u);
}

TEST(BlockTree, AddValidatesParentSlotAndIntegrity) {
  BlockTree tree;
  const Block good = make_block(genesis_block().hash, 1, 0, 0);
  EXPECT_TRUE(tree.add(good));
  EXPECT_EQ(tree.length(good.hash), 1u);

  const Block orphan = make_block(0xdeadbeef, 2, 0, 0);
  EXPECT_FALSE(tree.add(orphan));

  Block tampered = make_block(good.hash, 2, 0, 0);
  tampered.payload = 99;  // hash no longer matches
  EXPECT_FALSE(tree.add(tampered));

  const Block stale = make_block(good.hash, 1, 0, 0);  // slot not increasing
  EXPECT_FALSE(tree.add(stale));

  EXPECT_TRUE(tree.add(good));  // idempotent re-insertion
  EXPECT_EQ(tree.block_count(), 2u);
}

TEST(BlockTree, BestHeadLongestChainWins) {
  BlockTree tree;
  const auto a = fixtures::grow_chain(tree, genesis_block().hash, {1, 2});
  fixtures::grow_chain(tree, genesis_block().hash, {3}, 1);
  EXPECT_EQ(tree.best_head(TieBreak::AdversarialOrder), a.back().hash);
  EXPECT_EQ(tree.best_head(TieBreak::ConsistentHash), a.back().hash);
  EXPECT_EQ(tree.best_length(), 2u);
}

TEST(BlockTree, TieBreakByArrivalVsHash) {
  BlockTree tree;
  const Block a = make_block(genesis_block().hash, 1, 0, 7);
  const Block b = make_block(genesis_block().hash, 2, 1, 8);
  tree.add(a);
  tree.add(b);
  EXPECT_EQ(tree.best_head(TieBreak::AdversarialOrder), a.hash);  // first arrival
  EXPECT_EQ(tree.best_head(TieBreak::ConsistentHash), std::min(a.hash, b.hash));
  const auto heads = tree.max_length_heads();
  ASSERT_EQ(heads.size(), 2u);
  EXPECT_EQ(heads[0], a.hash);
}

TEST(BlockTree, ChainReconstruction) {
  BlockTree tree;
  const auto a = fixtures::grow_chain(tree, genesis_block().hash, {1, 4});
  const auto chain = tree.chain(a.back().hash);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], genesis_block().hash);
  EXPECT_EQ(chain[1], a[0].hash);
  EXPECT_EQ(chain[2], a[1].hash);
}

TEST(BlockTree, CommonAncestor) {
  BlockTree tree;
  const auto trunk = fixtures::grow_chain(tree, genesis_block().hash, {1});
  const auto left = fixtures::grow_chain(tree, trunk.back().hash, {2});
  const auto right = fixtures::grow_chain(tree, trunk.back().hash, {3, 4}, 1);
  EXPECT_EQ(tree.common_ancestor(left.back().hash, right.back().hash), trunk.back().hash);
  EXPECT_EQ(tree.common_ancestor(right.back().hash, right.front().hash), right.front().hash);
  EXPECT_EQ(tree.common_ancestor(left.back().hash, left.back().hash), left.back().hash);
}

TEST(BlockTree, BlockAtSlot) {
  BlockTree tree;
  const auto a = fixtures::grow_chain(tree, genesis_block().hash, {2, 5});
  EXPECT_EQ(tree.block_at_slot(a.back().hash, 5), a.back().hash);
  EXPECT_EQ(tree.block_at_slot(a.back().hash, 4), a.front().hash);
  EXPECT_EQ(tree.block_at_slot(a.back().hash, 2), a.front().hash);
  EXPECT_EQ(tree.block_at_slot(a.back().hash, 1), std::nullopt);
}

TEST(BlockTree, UnknownBlockThrows) {
  const BlockTree tree;
  EXPECT_THROW(static_cast<void>(tree.length(12345)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(tree.block(12345)), std::invalid_argument);
}

TEST(BlockTree, TryAddDistinguishesOrphanFromInvalid) {
  BlockTree tree;
  const Block good = make_block(genesis_block().hash, 1, 0, 0);
  EXPECT_EQ(tree.try_add(good), BlockTree::AddResult::Added);
  EXPECT_EQ(tree.try_add(good), BlockTree::AddResult::Duplicate);

  // Parent unknown: retriable, NOT invalid — it may arrive later.
  const Block orphan = make_block(0xdeadbeef, 2, 0, 0);
  EXPECT_EQ(tree.try_add(orphan), BlockTree::AddResult::Orphan);

  // Tampered header / non-increasing slot: permanently invalid.
  Block tampered = make_block(good.hash, 2, 0, 0);
  tampered.payload = 99;
  EXPECT_EQ(tree.try_add(tampered), BlockTree::AddResult::Invalid);
  const Block stale = make_block(good.hash, 1, 0, 0);
  EXPECT_EQ(tree.try_add(stale), BlockTree::AddResult::Invalid);
}

TEST(BlockTree, AdversarialOrderIsFirstArrivalSemantics) {
  // Pin of the intended axiom-A0 rule: among tied maximum-length heads the
  // FIRST-arrived wins (the adversary orders deliveries, so "first" is its
  // lever). The seed carried a dead "later arrival wins" comparison branch;
  // this test pins the simplification.
  BlockTree tree;
  const Block a = make_block(genesis_block().hash, 1, 0, 1);
  const Block b = make_block(genesis_block().hash, 2, 1, 2);
  tree.add(a);
  tree.add(b);
  EXPECT_EQ(tree.best_head(TieBreak::AdversarialOrder), a.hash);

  // A strictly longer chain resets the tie set: its tip is now first arrival.
  const Block c = make_block(b.hash, 3, 0, 3);
  tree.add(c);
  EXPECT_EQ(tree.best_head(TieBreak::AdversarialOrder), c.hash);

  // A later equal-length head joins the tie set but does not displace c.
  const Block d = make_block(a.hash, 4, 1, 4);
  tree.add(d);
  EXPECT_EQ(tree.best_head(TieBreak::AdversarialOrder), c.hash);
  const auto heads = tree.max_length_heads();
  ASSERT_EQ(heads.size(), 2u);
  EXPECT_EQ(heads[0], c.hash);
  EXPECT_EQ(heads[1], d.hash);
  EXPECT_EQ(tree.best_head(TieBreak::ConsistentHash), std::min(c.hash, d.hash));
}

TEST(BlockTree, AncestorAtLength) {
  BlockTree tree;
  const auto chain = fixtures::grow_chain(tree, genesis_block().hash, {1, 2, 5, 9});
  EXPECT_EQ(tree.ancestor_at_length(chain.back().hash, 0), genesis_block().hash);
  for (std::size_t len = 1; len <= chain.size(); ++len)
    EXPECT_EQ(tree.ancestor_at_length(chain.back().hash, len), chain[len - 1].hash);
  EXPECT_THROW(static_cast<void>(tree.ancestor_at_length(chain.front().hash, 2)),
               std::invalid_argument);
}

TEST(BlockTree, LiftedQueriesMatchNaiveWalks) {
  // Differential fuzz of the binary-lifting paths against parent-walk
  // references on a random tree mixing long chains and wide forks.
  Rng rng(0xb10c);
  BlockTree tree;
  std::vector<Block> blocks{genesis_block()};
  for (std::uint64_t i = 0; i < 500; ++i) {
    // Bias towards recent parents so chains get deep; sometimes fork wide.
    const std::size_t pick = rng.bernoulli(0.7) ? blocks.size() - 1 : rng.below(blocks.size());
    const Block& parent = blocks[pick];
    const Block b = make_block(parent.hash, parent.slot + 1 + rng.below(3), 0, i);
    ASSERT_EQ(tree.try_add(b), BlockTree::AddResult::Added);
    blocks.push_back(b);
  }

  const auto naive_chain_up = [&](BlockHash h) {
    std::vector<BlockHash> up{h};
    while (up.back() != genesis_block().hash) up.push_back(tree.block(up.back()).parent);
    return up;
  };
  const auto naive_meet = [&](BlockHash a, BlockHash b) {
    std::vector<BlockHash> ua = naive_chain_up(a);
    std::vector<BlockHash> ub = naive_chain_up(b);
    while (ua.size() > ub.size()) ua.erase(ua.begin());
    while (ub.size() > ua.size()) ub.erase(ub.begin());
    for (std::size_t i = 0; i < ua.size(); ++i)
      if (ua[i] == ub[i]) return ua[i];
    return genesis_block().hash;
  };
  const auto naive_at_slot = [&](BlockHash head, std::uint64_t s) -> std::optional<BlockHash> {
    for (BlockHash h = head; h != genesis_block().hash; h = tree.block(h).parent)
      if (tree.block(h).slot <= s) return h;
    return std::nullopt;
  };

  for (int trial = 0; trial < 300; ++trial) {
    const Block& x = blocks[rng.below(blocks.size())];
    const Block& y = blocks[rng.below(blocks.size())];
    EXPECT_EQ(tree.common_ancestor(x.hash, y.hash), naive_meet(x.hash, y.hash));
    const std::uint64_t s = rng.below(x.slot + 2);
    EXPECT_EQ(tree.block_at_slot(x.hash, s), naive_at_slot(x.hash, s));
    const std::size_t len = rng.below(tree.length(x.hash) + 1);
    const std::vector<BlockHash> up = naive_chain_up(x.hash);
    EXPECT_EQ(tree.ancestor_at_length(x.hash, len), up[up.size() - 1 - len]);
  }

  // The incremental head set matches a from-scratch arrival-order scan.
  std::vector<BlockHash> scan;
  for (BlockHash h : tree.arrival_order())
    if (tree.length(h) == tree.best_length()) scan.push_back(h);
  EXPECT_EQ(tree.max_length_heads(), scan);
}

// A deliberately naive map-based tree retained as the differential reference
// for the SoA implementation: same validation order (duplicate -> integrity
// -> parent -> slot), same head-set rule, every query a plain parent walk.
class ReferenceTree {
 public:
  ReferenceTree() {
    const Block& g = genesis_block();
    entries_.emplace(g.hash, Entry{g, 0});
    arrival_.push_back(g.hash);
  }

  BlockTree::AddResult try_add(const Block& b) {
    if (entries_.count(b.hash) != 0) return BlockTree::AddResult::Duplicate;
    if (!verify_block_integrity(b)) return BlockTree::AddResult::Invalid;
    const auto parent = entries_.find(b.parent);
    if (parent == entries_.end()) return BlockTree::AddResult::Orphan;
    if (b.slot <= parent->second.block.slot) return BlockTree::AddResult::Invalid;
    entries_.emplace(b.hash, Entry{b, parent->second.length + 1});
    arrival_.push_back(b.hash);
    return BlockTree::AddResult::Added;
  }

  [[nodiscard]] bool contains(BlockHash h) const { return entries_.count(h) != 0; }
  [[nodiscard]] std::size_t length(BlockHash h) const { return entries_.at(h).length; }
  [[nodiscard]] std::size_t block_count() const { return entries_.size(); }

  [[nodiscard]] std::size_t best_length() const {
    std::size_t best = 0;
    for (const auto& [h, e] : entries_) best = std::max(best, e.length);
    return best;
  }

  [[nodiscard]] std::vector<BlockHash> max_length_heads() const {
    const std::size_t best = best_length();
    std::vector<BlockHash> heads;
    for (BlockHash h : arrival_)
      if (entries_.at(h).length == best) heads.push_back(h);
    return heads;
  }

  [[nodiscard]] BlockHash best_head(TieBreak rule) const {
    const std::vector<BlockHash> heads = max_length_heads();
    if (rule == TieBreak::AdversarialOrder) return heads.front();
    return *std::min_element(heads.begin(), heads.end());
  }

  [[nodiscard]] std::vector<BlockHash> chain(BlockHash head) const {
    std::vector<BlockHash> out;
    for (BlockHash h = head;; h = entries_.at(h).block.parent) {
      out.push_back(h);
      if (h == genesis_block().hash) break;
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] BlockHash common_ancestor(BlockHash a, BlockHash b) const {
    std::vector<BlockHash> ca = chain(a);
    const std::vector<BlockHash> cb = chain(b);
    BlockHash meet = genesis_block().hash;
    for (std::size_t i = 0; i < std::min(ca.size(), cb.size()); ++i)
      if (ca[i] == cb[i]) meet = ca[i];
    return meet;
  }

  [[nodiscard]] std::optional<BlockHash> block_at_slot(BlockHash head, std::uint64_t s) const {
    for (BlockHash h = head; h != genesis_block().hash; h = entries_.at(h).block.parent)
      if (entries_.at(h).block.slot <= s) return h;
    return std::nullopt;
  }

  [[nodiscard]] BlockHash ancestor_at_length(BlockHash head, std::size_t len) const {
    const std::vector<BlockHash> c = chain(head);
    return c.at(len);
  }

  [[nodiscard]] const std::vector<BlockHash>& arrival_order() const { return arrival_; }

 private:
  struct Entry {
    Block block;
    std::size_t length = 0;
  };
  std::unordered_map<BlockHash, Entry> entries_;
  std::vector<BlockHash> arrival_;
};

TEST(BlockTree, DifferentialFuzzAgainstReferenceTree) {
  // Random interleavings of out-of-order delivery (via OrphanBuffer flushes),
  // duplicates, tampered headers, stale slots, and lifted queries: the SoA
  // tree must agree with the naive reference on every outcome and view.
  Rng rng(0x50a50a);
  for (int round = 0; round < 8; ++round) {
    // A universe of mostly-valid blocks over a random fork structure.
    std::vector<Block> universe{genesis_block()};
    for (std::uint64_t i = 0; i < 160; ++i) {
      const std::size_t pick =
          rng.bernoulli(0.6) ? universe.size() - 1 : rng.below(universe.size());
      const Block& parent = universe[pick];
      Block b = make_block(parent.hash, parent.slot + 1 + rng.below(2), 0, i);
      if (rng.bernoulli(0.05)) b.payload ^= 0xbad;  // tampered header
      if (rng.bernoulli(0.05)) b = make_block(parent.hash, parent.slot, 0, i);  // stale slot
      universe.push_back(b);
      if (rng.bernoulli(0.1)) universe.push_back(b);  // duplicate delivery
    }
    // Adversarial delivery order: shuffle, so ancestors often arrive late.
    for (std::size_t i = universe.size() - 1; i > 0; --i)
      std::swap(universe[i], universe[rng.below(i + 1)]);

    BlockTree tree;
    ReferenceTree ref;
    OrphanBuffer orphans;
    std::vector<Block> ref_orphans;
    for (const Block& b : universe) {
      const BlockTree::AddResult got = tree.try_add(b);
      const BlockTree::AddResult want = ref.try_add(b);
      ASSERT_EQ(got, want);
      if (got == BlockTree::AddResult::Added) {
        orphans.flush(tree, nullptr);
        // Reference flush: retry until no progress, drop non-orphan outcomes.
        bool progress = true;
        while (progress) {
          progress = false;
          std::vector<Block> still;
          for (const Block& o : ref_orphans) {
            const BlockTree::AddResult r = ref.try_add(o);
            if (r == BlockTree::AddResult::Added) progress = true;
            if (r == BlockTree::AddResult::Orphan) still.push_back(o);
          }
          ref_orphans.swap(still);
        }
      } else if (got == BlockTree::AddResult::Orphan) {
        orphans.buffer(b);
        bool dup = false;
        for (const Block& o : ref_orphans) dup = dup || o.hash == b.hash;
        if (!dup) ref_orphans.push_back(b);
      }

      if (rng.bernoulli(0.2)) {
        // Lifted queries against the naive walks, mid-interleaving (this also
        // exercises incremental lazy lift materialization between adds).
        const auto& arr = tree.arrival_order();
        const BlockHash x = arr[rng.below(arr.size())];
        const BlockHash y = arr[rng.below(arr.size())];
        ASSERT_EQ(tree.common_ancestor(x, y), ref.common_ancestor(x, y));
        const std::size_t at = rng.below(tree.length(x) + 1);
        ASSERT_EQ(tree.ancestor_at_length(x, at), ref.ancestor_at_length(x, at));
        const std::uint64_t s = rng.below(tree.block(x).slot + 2);
        ASSERT_EQ(tree.block_at_slot(x, s), ref.block_at_slot(x, s));
      }
    }

    ASSERT_EQ(orphans.size(), ref_orphans.size());
    ASSERT_EQ(tree.block_count(), ref.block_count());
    ASSERT_EQ(tree.arrival_order(), ref.arrival_order());
    ASSERT_EQ(tree.best_length(), ref.best_length());
    ASSERT_EQ(tree.max_length_heads(), ref.max_length_heads());
    ASSERT_EQ(tree.best_head(TieBreak::AdversarialOrder),
              ref.best_head(TieBreak::AdversarialOrder));
    ASSERT_EQ(tree.best_head(TieBreak::ConsistentHash),
              ref.best_head(TieBreak::ConsistentHash));
    for (BlockHash h : tree.arrival_order()) {
      ASSERT_EQ(tree.length(h), ref.length(h));
      ASSERT_EQ(tree.chain(h), ref.chain(h));
    }
  }
}

TEST(BlockTree, LiftPropertiesAtPowerOfTwoLengthBoundaries) {
  // The CSR lift table of an entry owns bit_width(length) levels, so its
  // width changes exactly when length crosses a power of two. Query at every
  // such boundary (and its neighbors) while the chain grows, so the lazily
  // materialized pool is extended across each width change.
  BlockTree tree;
  std::vector<BlockHash> by_length{genesis_block().hash};
  BlockHash tip = genesis_block().hash;
  std::uint64_t slot = 0;
  for (std::size_t len = 1; len <= 1100; ++len) {
    slot += 1 + (len % 3);
    const Block b = make_block(tip, slot, 0, len);
    ASSERT_EQ(tree.try_add(b), BlockTree::AddResult::Added);
    tip = b.hash;
    by_length.push_back(tip);

    const bool boundary = (len & (len - 1)) == 0 || ((len + 1) & len) == 0;
    if (!boundary && len % 97 != 0) continue;
    // ancestor_at_length at the power-of-two jump distances and their
    // neighbors, plus the full boundary set below the tip.
    for (std::size_t j = 1; j <= len; j <<= 1) {
      ASSERT_EQ(tree.ancestor_at_length(tip, len - j), by_length[len - j]);
      if (j > 1) ASSERT_EQ(tree.ancestor_at_length(tip, len - j + 1), by_length[len - j + 1]);
      if (len >= j + 1)
        ASSERT_EQ(tree.ancestor_at_length(tip, len - j - 1), by_length[len - j - 1]);
    }
    ASSERT_EQ(tree.ancestor_at_length(tip, 0), genesis_block().hash);
    ASSERT_EQ(tree.common_ancestor(tip, by_length[len / 2]), by_length[len / 2]);
  }
}

TEST(BlockTree, CapacityGuardThrowsInsteadOfTruncating) {
  // Regression for the silent index truncation: at capacity, try_add must
  // throw (MH_REQUIRE -> std::invalid_argument) and leave the tree intact,
  // never wrap the 32-bit index.
  BlockTree tree(4);  // genesis + 3 blocks
  const auto chain = fixtures::grow_chain(tree, genesis_block().hash, {1, 2, 3});
  EXPECT_EQ(tree.block_count(), 4u);

  const Block overflow = make_block(chain.back().hash, 4, 0, 99);
  EXPECT_THROW(static_cast<void>(tree.try_add(overflow)), std::invalid_argument);
  EXPECT_EQ(tree.block_count(), 4u);
  EXPECT_FALSE(tree.contains(overflow.hash));
  // Pre-insert validation still answers without touching capacity.
  EXPECT_EQ(tree.try_add(chain.back()), BlockTree::AddResult::Duplicate);
  const Block orphan = make_block(0xdeadbeef, 9, 0, 1);
  EXPECT_EQ(tree.try_add(orphan), BlockTree::AddResult::Orphan);
  // The tree still works after the rejected insertion.
  EXPECT_EQ(tree.best_head(TieBreak::AdversarialOrder), chain.back().hash);
  EXPECT_EQ(tree.ancestor_at_length(chain.back().hash, 1), chain.front().hash);
}

TEST(BlockTree, ZeroCapacityIsRejected) {
  EXPECT_THROW(BlockTree tree(0), std::invalid_argument);
}

TEST(BlockTree, ArenaRecyclingIsSemanticallyInvisible) {
  // Two identical builds, the second on recycled storage: every observable
  // must match, and the arena must report the recycle.
  const auto build_and_observe = [] {
    BlockTree tree;
    Rng rng(0xa3e4a);
    std::vector<Block> blocks{genesis_block()};
    for (std::uint64_t i = 0; i < 300; ++i) {
      const std::size_t pick =
          rng.bernoulli(0.7) ? blocks.size() - 1 : rng.below(blocks.size());
      const Block& parent = blocks[pick];
      const Block b = make_block(parent.hash, parent.slot + 1 + rng.below(3), 0, i);
      EXPECT_EQ(tree.try_add(b), BlockTree::AddResult::Added);
      blocks.push_back(b);
    }
    std::vector<BlockHash> view = tree.arrival_order();
    view.push_back(tree.best_head(TieBreak::AdversarialOrder));
    view.push_back(tree.best_head(TieBreak::ConsistentHash));
    for (int i = 0; i < 50; ++i) {
      const BlockHash x = blocks[rng.below(blocks.size())].hash;
      const BlockHash y = blocks[rng.below(blocks.size())].hash;
      view.push_back(tree.common_ancestor(x, y));
      view.push_back(tree.ancestor_at_length(x, rng.below(tree.length(x) + 1)));
    }
    return view;
  };

  const BlockTree::ArenaStats before = BlockTree::arena_stats();
  const std::vector<BlockHash> first = build_and_observe();
  const std::vector<BlockHash> second = build_and_observe();
  const BlockTree::ArenaStats after = BlockTree::arena_stats();

  EXPECT_EQ(first, second);
  EXPECT_EQ(after.acquired, before.acquired + 2);
  EXPECT_EQ(after.released, before.released + 2);
  // The second build (at least) ran on the first build's donated storage.
  EXPECT_GE(after.recycled, before.recycled + 1);
}

TEST(BlockTree, MoveTransfersStorageWithoutDoubleRelease) {
  const BlockTree::ArenaStats before = BlockTree::arena_stats();
  {
    BlockTree a;
    fixtures::grow_chain(a, genesis_block().hash, {1, 2});
    BlockTree b = std::move(a);
    EXPECT_EQ(b.block_count(), 3u);
    EXPECT_EQ(b.best_length(), 2u);
  }  // both destructors run; only b owns storage
  const BlockTree::ArenaStats after = BlockTree::arena_stats();
  EXPECT_EQ(after.acquired, before.acquired + 1);
  EXPECT_EQ(after.released, before.released + 1);
}

}  // namespace
}  // namespace mh
