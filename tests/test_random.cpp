#include "support/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mh {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differ = 0;
  for (int i = 0; i < 16; ++i)
    if (a() != b()) ++differ;
  EXPECT_GT(differ, 12);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.split();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 50; ++i) {
    seen.insert(parent());
    seen.insert(child());
  }
  EXPECT_EQ(seen.size(), 100u);  // no collisions in practice
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Geometric, MassAtZeroIsOneMinusBeta) {
  Rng rng(19);
  const double beta = 0.4;
  int zeros = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) zeros += sample_geometric(rng, beta) == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(zeros) / n, 1.0 - beta, 0.01);
}

TEST(Geometric, MeanMatchesBetaOverOneMinusBeta) {
  Rng rng(23);
  const double beta = 0.6;
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(sample_geometric(rng, beta));
  EXPECT_NEAR(sum / n, beta / (1.0 - beta), 0.05);
}

TEST(Geometric, BetaZeroIsAlwaysZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_geometric(rng, 0.0), 0u);
}

TEST(Geometric, RejectsInvalidBeta) {
  Rng rng(31);
  EXPECT_THROW(sample_geometric(rng, 1.0), std::invalid_argument);
  EXPECT_THROW(sample_geometric(rng, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace mh
