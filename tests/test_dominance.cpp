#include "chars/dominance.hpp"

#include <gtest/gtest.h>

#include "core/exact_dp.hpp"
#include "core/relative_margin.hpp"

namespace mh {
namespace {

TEST(Dominance, LeqCoordinatewise) {
  EXPECT_TRUE(leq(CharString::parse("hhH"), CharString::parse("hHA")));
  EXPECT_TRUE(leq(CharString::parse("hHA"), CharString::parse("hHA")));
  EXPECT_FALSE(leq(CharString::parse("hHA"), CharString::parse("hhA")));
  EXPECT_FALSE(leq(CharString::parse("A"), CharString::parse("H")));
  EXPECT_FALSE(leq(CharString::parse("hh"), CharString::parse("h")));  // length mismatch
}

TEST(Dominance, SymbolLawOrder) {
  const SymbolLaw less = bernoulli_condition(0.5, 0.4);   // pA = 0.25
  const SymbolLaw more = bernoulli_condition(0.3, 0.3);   // pA = 0.35
  EXPECT_TRUE(symbol_law_dominated(less, more));
  EXPECT_FALSE(symbol_law_dominated(more, less));
  EXPECT_TRUE(symbol_law_dominated(less, less));
}

TEST(Dominance, CoupledSamplesRespectOrder) {
  const SymbolLaw less = bernoulli_condition(0.5, 0.4);
  const SymbolLaw more = bernoulli_condition(0.2, 0.2);
  ASSERT_TRUE(symbol_law_dominated(less, more));
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const auto [a, b] = coupled_sample(less, more, 128, rng);
    EXPECT_TRUE(leq(a, b));
  }
}

TEST(Dominance, CoupledSamplesMarginalsCorrect) {
  const SymbolLaw law = bernoulli_condition(0.4, 0.3);
  Rng rng(99);
  std::size_t advA = 0, advB = 0;
  const std::size_t trials = 500;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const auto [a, b] = coupled_sample(law, law, 64, rng);
    EXPECT_EQ(a.to_string(), b.to_string());  // identical laws couple identically
    advA += a.count_adversarial(1, 64);
    advB += b.count_adversarial(1, 64);
  }
  const double freq = static_cast<double>(advA) / (64.0 * trials);
  EXPECT_NEAR(freq, law.pA, 0.01);
}


// Theorem 1's second claim rests on monotonicity: if x <= y coordinatewise
// then every settlement quantity moves the adversary's way. Verified here on
// coupled samples (one uniform stream drives both laws).
TEST(Dominance, MarginsMonotoneUnderCoupling) {
  const SymbolLaw mild = bernoulli_condition(0.5, 0.4);
  const SymbolLaw harsh = bernoulli_condition(0.2, 0.2);
  ASSERT_TRUE(symbol_law_dominated(mild, harsh));
  Rng rng(2718);
  for (int trial = 0; trial < 40; ++trial) {
    const auto [a, b] = coupled_sample(mild, harsh, 48, rng);
    ASSERT_TRUE(leq(a, b));
    for (std::size_t x = 0; x <= a.size(); x += 6) {
      const auto ta = margin_trajectory(a, x);
      const auto tb = margin_trajectory(b, x);
      for (std::size_t j = 0; j < ta.size(); ++j)
        ASSERT_LE(ta[j], tb[j]) << "x = " << x << " j = " << j;
    }
  }
}

TEST(Dominance, SettlementInsecurityMonotoneAcrossLaws) {
  // S^{s,k}[W] <= S^{s,k}[B] for W dominated by B (Theorem 1, second claim),
  // realized through the exact DP.
  const SymbolLaw mild = table1_law(0.30, 0.6);
  const SymbolLaw harsh = table1_law(0.40, 0.6);
  ASSERT_TRUE(symbol_law_dominated(mild, harsh));
  for (std::size_t k : {20u, 60u, 120u})
    EXPECT_LE(static_cast<double>(settlement_violation_probability(mild, k)),
              static_cast<double>(settlement_violation_probability(harsh, k)))
        << k;
}
}  // namespace
}  // namespace mh
