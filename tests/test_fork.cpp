#include "fork/fork.hpp"

#include <gtest/gtest.h>

#include "fork_fixtures.hpp"

namespace mh {
namespace {

TEST(Fork, TrivialForkIsJustGenesis) {
  const Fork f;
  EXPECT_EQ(f.vertex_count(), 1u);
  EXPECT_EQ(f.label(kRoot), 0u);
  EXPECT_EQ(f.depth(kRoot), 0u);
  EXPECT_EQ(f.height(), 0u);
  EXPECT_TRUE(f.is_leaf(kRoot));
}

TEST(Fork, AddVertexTracksDepthAndHeight) {
  Fork f;
  const VertexId a = f.add_vertex(kRoot, 2);
  const VertexId b = f.add_vertex(a, 5);
  const VertexId c = f.add_vertex(kRoot, 7);
  EXPECT_EQ(f.depth(a), 1u);
  EXPECT_EQ(f.depth(b), 2u);
  EXPECT_EQ(f.depth(c), 1u);
  EXPECT_EQ(f.height(), 2u);
  EXPECT_EQ(f.max_label(), 7u);
  EXPECT_FALSE(f.is_leaf(a));
  EXPECT_TRUE(f.is_leaf(b));
}

TEST(Fork, RejectsNonIncreasingLabels) {
  Fork f;
  const VertexId a = f.add_vertex(kRoot, 3);
  EXPECT_THROW(f.add_vertex(a, 3), std::invalid_argument);
  EXPECT_THROW(f.add_vertex(a, 2), std::invalid_argument);
  EXPECT_THROW(f.add_vertex(kRoot, 0), std::invalid_argument);
}

TEST(Fork, PathAndLca) {
  fixtures::Fig1 fig;
  const Fork& f = fig.fork;
  const auto path = f.path_to(fig.v9a);
  ASSERT_EQ(path.size(), 7u);
  EXPECT_EQ(path.front(), kRoot);
  EXPECT_EQ(path.back(), fig.v9a);
  EXPECT_EQ(f.lca(fig.v9a, fig.v9b), kRoot);
  EXPECT_EQ(f.lca(fig.v6a, fig.v5), fig.v5);
  EXPECT_EQ(f.lca(fig.v3, fig.a4c), fig.a2b);
  EXPECT_EQ(f.lca(fig.v1, fig.v1), fig.v1);
}

TEST(Fork, OnTine) {
  fixtures::Fig1 fig;
  EXPECT_TRUE(fig.fork.on_tine(fig.v5, fig.v9a));
  EXPECT_TRUE(fig.fork.on_tine(kRoot, fig.v9a));
  EXPECT_TRUE(fig.fork.on_tine(fig.v9a, fig.v9a));
  EXPECT_FALSE(fig.fork.on_tine(fig.v9b, fig.v9a));
  EXPECT_FALSE(fig.fork.on_tine(fig.a4b, fig.v9a));
}

TEST(Fork, VerticesWithLabel) {
  fixtures::Fig1 fig;
  EXPECT_EQ(fig.fork.vertices_with_label(4).size(), 3u);
  EXPECT_EQ(fig.fork.vertices_with_label(6).size(), 2u);
  EXPECT_EQ(fig.fork.vertices_with_label(9).size(), 2u);
  EXPECT_EQ(fig.fork.vertices_with_label(5).size(), 1u);
}

TEST(Fork, LongestTines) {
  fixtures::Fig1 fig;
  const auto heads = fig.fork.longest_tines();
  ASSERT_EQ(heads.size(), 2u);
  EXPECT_EQ(fig.fork.depth(heads[0]), 6u);
  EXPECT_EQ(fig.fork.depth(heads[1]), 6u);
}

TEST(Fork, DisjointOverSuffix) {
  fixtures::Fig3 fig;
  // The Fig-3 tines share the prefix 1 -> 2 (inside x) and diverge after.
  EXPECT_TRUE(fig.fork.disjoint_over_suffix(fig.h5, fig.a6, fig.x_len));
  EXPECT_FALSE(fig.fork.disjoint_over_suffix(fig.h5, fig.a6, 1));
  // Self-pairs: disjoint iff the head lies within the prefix.
  EXPECT_TRUE(fig.fork.disjoint_over_suffix(fig.h2, fig.h2, fig.x_len));
  EXPECT_FALSE(fig.fork.disjoint_over_suffix(fig.h3, fig.h3, fig.x_len));
}

TEST(Fork, HonestDepthFunction) {
  fixtures::Fig1 fig;
  EXPECT_EQ(honest_depth(fig.fork, 1), 1u);
  EXPECT_EQ(honest_depth(fig.fork, 3), 2u);
  EXPECT_EQ(honest_depth(fig.fork, 5), 3u);
  EXPECT_EQ(honest_depth(fig.fork, 6), 4u);
  EXPECT_EQ(honest_depth(fig.fork, 9), 6u);
  EXPECT_FALSE(honest_depth(fig.fork, 42).has_value());
}

TEST(Fork, MaxHonestDepthUpto) {
  fixtures::Fig1 fig;
  EXPECT_EQ(max_honest_depth_upto(fig.fork, fig.w, 0), 0u);
  EXPECT_EQ(max_honest_depth_upto(fig.fork, fig.w, 4), 2u);  // h-depths 1, 2
  EXPECT_EQ(max_honest_depth_upto(fig.fork, fig.w, 6), 4u);
  EXPECT_EQ(max_honest_depth_upto(fig.fork, fig.w, 9), 6u);
}

TEST(Fork, ViabilityAtOnset) {
  fixtures::Fig1 fig;
  // At the onset of slot 7 (after the H6 slot), only the depth-4+ tines are
  // viable.
  EXPECT_TRUE(viable_at_onset(fig.fork, fig.w, fig.v6a, 7));
  EXPECT_TRUE(viable_at_onset(fig.fork, fig.w, fig.v6b, 7));
  EXPECT_FALSE(viable_at_onset(fig.fork, fig.w, fig.v5, 7));
  EXPECT_FALSE(viable_at_onset(fig.fork, fig.w, fig.a4b, 7));
  // Labels at or past the onset slot are excluded.
  EXPECT_FALSE(viable_at_onset(fig.fork, fig.w, fig.v6a, 6));
}

TEST(Fork, ClosednessAndHonesty) {
  fixtures::Fig1 fig;
  // Fig. 1's fork is NOT closed: the spare label-4 adversarial vertices are
  // leaves (closedness is a property of the bookkeeping forks of Section 6,
  // not of arbitrary fork diagrams).
  EXPECT_FALSE(is_closed(fig.fork, fig.w));
  EXPECT_TRUE(is_honest_vertex(fig.fork, fig.w, fig.v6a));
  EXPECT_FALSE(is_honest_vertex(fig.fork, fig.w, fig.a7));
  EXPECT_TRUE(is_honest_vertex(fig.fork, fig.w, kRoot));

  fixtures::Fig2 fig2;
  EXPECT_FALSE(is_closed(fig2.fork, fig2.w));  // adversarial leaf a6

  // A fork whose only leaves are honest is closed.
  EXPECT_TRUE(is_closed(fixtures::chain_fork({1, 2}), CharString::parse("Ah")));
}

TEST(Fork, CopySemanticsIndependent) {
  Fork f;
  f.add_vertex(kRoot, 1);
  Fork g = f;
  g.add_vertex(kRoot, 2);
  EXPECT_EQ(f.vertex_count(), 2u);
  EXPECT_EQ(g.vertex_count(), 3u);
}

}  // namespace
}  // namespace mh
