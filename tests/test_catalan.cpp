#include "core/catalan.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"
#include "support/random.hpp"

namespace mh {
namespace {

TEST(Catalan, HandComputedExample) {
  // w = hhAhA: walk -1 -2 -1 -2 -1.
  const CharString w = CharString::parse("hhAhA");
  const CatalanFlags flags = catalan_flags(w);
  // Left-Catalan: strict new minima at slots 1 (S=-1) and 2 (S=-2) and 4 (S=-2)?
  // S_4 = -2 equals min so far (-2): not strict. So left = {1, 2}.
  EXPECT_TRUE(flags.left[0]);
  EXPECT_TRUE(flags.left[1]);
  EXPECT_FALSE(flags.left[2]);
  EXPECT_FALSE(flags.left[3]);
  // Right-Catalan: slot 1: max(S_1..S_5) = -1 <= S_1 = -1: yes.
  EXPECT_TRUE(flags.right[0]);
  // Slot 2: S_2 = -2, max afterwards -1 > -2: no.
  EXPECT_FALSE(flags.right[1]);
  // Slot 4: honest, S_4 = -2, S_5 = -1 > -2: no.
  EXPECT_FALSE(flags.right[3]);
  EXPECT_TRUE(flags.catalan[0]);
  EXPECT_FALSE(flags.catalan[1]);
}

TEST(Catalan, AdversarialSlotsNeverCatalan) {
  const CharString w = CharString::parse("AhAhA");
  const CatalanFlags flags = catalan_flags(w);
  EXPECT_FALSE(flags.left[0]);
  EXPECT_FALSE(flags.right[2]);
  EXPECT_FALSE(flags.catalan[0]);
  EXPECT_FALSE(flags.catalan[2]);
  EXPECT_FALSE(flags.catalan[4]);
}

TEST(Catalan, AllHonestStringAllCatalan) {
  const CharString w = CharString::parse("hHhH");
  const CatalanFlags flags = catalan_flags(w);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_TRUE(flags.catalan[s]) << s;
}

TEST(Catalan, SlotsAdjacentToCatalanAreHonest) {
  // Observation below Definition 11: neighbours of a Catalan slot are honest.
  const SymbolLaw law = bernoulli_condition(0.3, 0.4);
  Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    const CharString w = law.sample_string(60, rng);
    const CatalanFlags flags = catalan_flags(w);
    for (std::size_t s = 1; s <= w.size(); ++s) {
      if (!flags.catalan[s - 1]) continue;
      EXPECT_TRUE(w.honest(s));
      if (s > 1) {
        EXPECT_TRUE(w.honest(s - 1)) << "left neighbour of " << s;
      }
      if (s < w.size()) {
        EXPECT_TRUE(w.honest(s + 1)) << "right neighbour of " << s;
      }
    }
  }
}

struct CatCase {
  double eps, ph;
  std::size_t length;
};

class CatalanRandomized : public ::testing::TestWithParam<CatCase> {};

TEST_P(CatalanRandomized, FastMatchesBruteforce) {
  const auto [eps, ph, length] = GetParam();
  const SymbolLaw law = bernoulli_condition(eps, ph);
  Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    const CharString w = law.sample_string(length, rng);
    const CatalanFlags fast = catalan_flags(w);
    const CatalanFlags slow = catalan_flags_bruteforce(w);
    ASSERT_EQ(fast.left, slow.left) << w.to_string();
    ASSERT_EQ(fast.right, slow.right) << w.to_string();
    ASSERT_EQ(fast.catalan, slow.catalan) << w.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, CatalanRandomized,
                         ::testing::Values(CatCase{0.3, 0.3, 40}, CatCase{0.1, 0.05, 64},
                                           CatCase{0.6, 0.8, 24}, CatCase{0.2, 0.0, 48}));

TEST(Catalan, PointQueriesAgreeWithFlags) {
  const CharString w = CharString::parse("hAhhAHhA");
  const CatalanFlags flags = catalan_flags(w);
  for (std::size_t s = 1; s <= w.size(); ++s) {
    EXPECT_EQ(is_left_catalan(w, s), static_cast<bool>(flags.left[s - 1]));
    EXPECT_EQ(is_right_catalan(w, s), static_cast<bool>(flags.right[s - 1]));
    EXPECT_EQ(is_catalan(w, s), static_cast<bool>(flags.catalan[s - 1]));
  }
}

TEST(Catalan, FirstUniquelyHonestCatalan) {
  // w = HhA...: slot 1 is Catalan but multiply honest; slot 2 is uniquely
  // honest and Catalan (walk: -1 -2 -1; S_2 = -2 strict min, suffix max -1 <=
  // ... wait S_2 = -2 and S_3 = -1 > -2: not right-Catalan).
  const CharString w = CharString::parse("Hhh");
  EXPECT_EQ(first_uniquely_honest_catalan(w, 1, 3), 2u);
  EXPECT_EQ(first_uniquely_honest_catalan(w, 3, 3), 3u);
  const CharString all_H = CharString::parse("HHH");
  EXPECT_EQ(first_uniquely_honest_catalan(all_H, 1, 3), 0u);
}

TEST(Catalan, FirstConsecutivePair) {
  const CharString w = CharString::parse("HHH");
  EXPECT_EQ(first_consecutive_catalan_pair(w, 1, 3), 1u);
  const CharString alt = CharString::parse("hAhAh");
  EXPECT_EQ(first_consecutive_catalan_pair(alt, 1, 5), 0u);
}

}  // namespace
}  // namespace mh
