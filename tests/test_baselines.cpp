#include "analysis/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_dp.hpp"

namespace mh {
namespace {

TEST(Baselines, PraosCollapseMovesHMassToA) {
  const SymbolLaw law{0.5, 0.2, 0.3};
  const SymbolLaw collapsed = praos_collapsed_law(law);
  EXPECT_NEAR(collapsed.ph, 0.5, 1e-12);
  EXPECT_NEAR(collapsed.pH, 0.0, 1e-12);
  EXPECT_NEAR(collapsed.pA, 0.5, 1e-12);
}

TEST(Baselines, PraosInapplicableReturnsOne) {
  const SymbolLaw law{0.35, 0.35, 0.3};  // ph - pH <= pA
  EXPECT_EQ(praos_settlement_error(law, 100), 1.0L);
}

TEST(Baselines, PraosApplicableDecays) {
  const SymbolLaw law{0.6, 0.05, 0.35};
  const long double e100 = praos_settlement_error(law, 100);
  const long double e200 = praos_settlement_error(law, 200);
  EXPECT_LT(e100, 1.0L);
  EXPECT_LT(e200, e100);
}

TEST(Baselines, PraosWeakerThanExactWhenHMassExists) {
  // Conceding H slots to the adversary can only raise the certified error.
  const SymbolLaw law{0.55, 0.15, 0.3};
  const long double praos = praos_settlement_error(law, 150);
  const long double exact = settlement_violation_probability(law, 150);
  EXPECT_GE(praos, exact);
}

TEST(Baselines, PraosMatchesExactWhenNoHMass) {
  const SymbolLaw law{0.7, 0.0, 0.3};
  EXPECT_NEAR(static_cast<double>(praos_settlement_error(law, 120)),
              static_cast<double>(settlement_violation_probability(law, 120)), 1e-18);
}

TEST(Baselines, SnowWhiteInapplicableReturnsOne) {
  const SymbolLaw law{0.25, 0.45, 0.3};  // ph <= pA
  EXPECT_EQ(snow_white_settlement_error(law, 100), 1.0L);
}

TEST(Baselines, SnowWhiteDecaysAsSqrtK) {
  const SymbolLaw law{0.5, 0.2, 0.3};
  const long double e100 = snow_white_settlement_error(law, 100);
  const long double e400 = snow_white_settlement_error(law, 400);
  // log e(k) ~ -c sqrt(k): quadrupling k doubles the log.
  const double ratio = std::log(static_cast<double>(e400)) /
                       std::log(static_cast<double>(e100));
  EXPECT_NEAR(ratio, 2.0, 0.01);
}

TEST(Baselines, SnowWhiteSlowerThanExactAtLargeK) {
  // e^{-Theta(sqrt k)} eventually loses to the exact e^{-Theta(k)}.
  const SymbolLaw law{0.5, 0.2, 0.3};
  const std::size_t k = 600;
  EXPECT_GT(snow_white_settlement_error(law, k),
            settlement_violation_probability(law, k));
}

TEST(Baselines, ConditionedLawNormalizes) {
  const SymbolLaw law{0.5, 0.2, 0.3};
  const SymbolLaw conditioned = snow_white_conditioned_law(law);
  EXPECT_NEAR(conditioned.ph, 0.625, 1e-12);
  EXPECT_NEAR(conditioned.pA, 0.375, 1e-12);
  EXPECT_NEAR(conditioned.pH, 0.0, 1e-12);
}

}  // namespace
}  // namespace mh
