// Tests for the parallel experiment engine: determinism across thread counts
// (the load-bearing property), scheduling primitives, and the sharded reducer.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "analysis/sweep.hpp"
#include "sim/experiments.hpp"
#include "sim/monte_carlo.hpp"
#include "support/stats.hpp"

namespace mh {
namespace {

// ---------------------------------------------------------------------------
// SeedSequence
// ---------------------------------------------------------------------------

TEST(SeedSequence, IsAPureFunctionOfRootAndIndex) {
  const engine::SeedSequence a(42);
  const engine::SeedSequence b(42);
  for (std::uint64_t i : {0ull, 1ull, 2ull, 1000ull, 1ull << 40}) {
    EXPECT_EQ(a.derive(i), b.derive(i));
  }
}

TEST(SeedSequence, NeighbouringStreamsDecorrelate) {
  const engine::SeedSequence seq(7);
  Rng r0 = seq.stream(0);
  Rng r1 = seq.stream(1);
  // Crude but effective: the two streams should not produce equal words.
  std::size_t equal = 0;
  for (int i = 0; i < 64; ++i)
    if (r0() == r1()) ++equal;
  EXPECT_EQ(equal, 0u);
  EXPECT_NE(seq.derive(0), seq.derive(1));
  EXPECT_NE(engine::SeedSequence(1).derive(5), engine::SeedSequence(2).derive(5));
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  const std::size_t n_chunks = 1000;
  std::vector<std::atomic<int>> hits(n_chunks);
  engine::ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  pool.for_each_chunk(n_chunks, [&](std::size_t c) { ++hits[c]; });
  for (std::size_t c = 0; c < n_chunks; ++c) EXPECT_EQ(hits[c].load(), 1);
}

TEST(ThreadPool, IsReusableAcrossJobs) {
  engine::ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> total{0};
    pool.for_each_chunk(round * 17 + 1, [&](std::size_t) { ++total; });
    EXPECT_EQ(total.load(), static_cast<std::size_t>(round * 17 + 1));
  }
}

TEST(ThreadPool, EmptyJobIsANoOp) {
  engine::ThreadPool pool(2);
  pool.for_each_chunk(0, [&](std::size_t) { FAIL() << "no chunk should run"; });
}

TEST(ThreadPool, PropagatesTheFirstException) {
  engine::ThreadPool pool(4);
  EXPECT_THROW(
      pool.for_each_chunk(256,
                          [&](std::size_t c) {
                            if (c == 3) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<std::size_t> total{0};
  pool.for_each_chunk(8, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 8u);
}

// ---------------------------------------------------------------------------
// Reduce
// ---------------------------------------------------------------------------

TEST(Reduce, VectorMergeIsElementWiseAndGrows) {
  std::vector<std::size_t> into{1, 2};
  engine::Reduce::merge_into(into, std::vector<std::size_t>{10, 10, 10});
  ASSERT_EQ(into.size(), 3u);
  EXPECT_EQ(into[0], 11u);
  EXPECT_EQ(into[1], 12u);
  EXPECT_EQ(into[2], 10u);
  // Merging an empty shard (a default-constructed partial) changes nothing.
  engine::Reduce::merge_into(into, std::vector<std::size_t>{});
  EXPECT_EQ(into, (std::vector<std::size_t>{11, 12, 10}));
}

TEST(Reduce, FoldEqualsPairwiseMerges) {
  // Associativity of the reducer: fold(a, b, c) == (a + b) + c == a + (b + c),
  // for counts, histograms, and RunningStats-based tallies.
  const std::vector<std::size_t> counts{3, 5, 11};
  EXPECT_EQ(engine::Reduce::fold(counts), 19u);

  RunningStats a, b, c;
  for (double x : {1.0, 2.0}) a.add(x);
  for (double x : {10.0, 11.0, 12.0}) b.add(x);
  c.add(-4.0);

  RunningStats left = a;
  left.merge(b);
  left.merge(c);

  RunningStats bc = b;
  bc.merge(c);
  RunningStats right = a;
  right.merge(bc);

  EXPECT_EQ(left.count(), 6u);
  EXPECT_EQ(right.count(), 6u);
  EXPECT_NEAR(left.mean(), right.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), right.variance(), 1e-12);

  const RunningStats folded = engine::Reduce::fold(std::vector<RunningStats>{a, b, c});
  EXPECT_EQ(folded.count(), 6u);
  EXPECT_NEAR(folded.mean(), left.mean(), 1e-12);
}

// ---------------------------------------------------------------------------
// run_sharded
// ---------------------------------------------------------------------------

engine::EngineOptions options_with(std::size_t threads, std::uint64_t seed = 9,
                                   std::size_t chunk_size = 0) {
  engine::EngineOptions opt;
  opt.threads = threads;
  opt.seed = seed;
  opt.chunk_size = chunk_size;
  return opt;
}

TEST(RunSharded, EmptyWorkloadReturnsDefaultPartial) {
  const std::size_t count = engine::run_sharded<std::size_t>(
      0, options_with(8), [](std::uint64_t, Rng&, std::size_t&) { FAIL(); });
  EXPECT_EQ(count, 0u);
  const auto histogram = engine::run_sharded<std::vector<std::size_t>>(
      0, options_with(1), [](std::uint64_t, Rng&, std::vector<std::size_t>&) { FAIL(); });
  EXPECT_TRUE(histogram.empty());
}

TEST(RunSharded, SingleSampleRunsOnceWithStreamZero) {
  const engine::SeedSequence seq(9);
  Rng expected = seq.stream(0);
  const std::uint64_t expected_word = expected();
  for (std::size_t threads : {1u, 8u}) {
    std::size_t calls = 0;
    const std::uint64_t word = engine::run_sharded<std::uint64_t>(
        1, options_with(threads), [&](std::uint64_t index, Rng& rng, std::uint64_t& out) {
          EXPECT_EQ(index, 0u);
          ++calls;
          out += rng();
        });
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(word, expected_word);
  }
}

TEST(RunSharded, SumOfStreamsIsThreadAndChunkInvariant) {
  auto sum_with = [](std::size_t threads, std::size_t chunk_size) {
    return engine::run_sharded<std::uint64_t>(
        10'000, options_with(threads, 123, chunk_size),
        [](std::uint64_t, Rng& rng, std::uint64_t& acc) { acc += rng() >> 32; });
  };
  const std::uint64_t serial = sum_with(1, 0);
  EXPECT_EQ(sum_with(2, 0), serial);
  EXPECT_EQ(sum_with(8, 0), serial);
  // Chunk geometry is part of the plan, and the plan is a function of n only;
  // an explicit chunk_size of 1 must still visit the same streams.
  EXPECT_EQ(sum_with(8, 1), serial);
  EXPECT_EQ(sum_with(3, 7), serial);
}

// ---------------------------------------------------------------------------
// Thread-count invariance of every estimator and experiment driver
// ---------------------------------------------------------------------------

McOptions mc_options(std::size_t threads) {
  McOptions opt;
  opt.samples = 4'000;
  opt.seed = 2024;
  opt.horizon_slack = 128;
  opt.threads = threads;
  return opt;
}

void expect_same_counts(const Proportion& a, const Proportion& b) {
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(ThreadInvariance, AllSevenMcEstimators) {
  const SymbolLaw law = bernoulli_condition(0.3, 0.4);
  const TetraLaw tetra = theorem7_law(0.5, 0.2, 0.2);
  for (std::size_t threads : {2u, 8u}) {
    expect_same_counts(mc_settlement_violation(law, 30, mc_options(1)),
                       mc_settlement_violation(law, 30, mc_options(threads)));
    expect_same_counts(mc_settlement_violation_eventual(law, 30, 40, mc_options(1)),
                       mc_settlement_violation_eventual(law, 30, 40, mc_options(threads)));
    expect_same_counts(mc_no_unique_catalan(law, 20, mc_options(1)),
                       mc_no_unique_catalan(law, 20, mc_options(threads)));
    expect_same_counts(mc_no_consecutive_catalan(law, 20, mc_options(1)),
                       mc_no_consecutive_catalan(law, 20, mc_options(threads)));
    expect_same_counts(mc_delta_settlement_failure(tetra, 2, 12, mc_options(1)),
                       mc_delta_settlement_failure(tetra, 2, 12, mc_options(threads)));
    expect_same_counts(mc_cp_window_failure(law, 60, 15, mc_options(1)),
                       mc_cp_window_failure(law, 60, 15, mc_options(threads)));
    EXPECT_EQ(mc_first_catalan_histogram(law, 40, mc_options(1)),
              mc_first_catalan_histogram(law, 40, mc_options(threads)));
  }
}

TEST(ThreadInvariance, ProtocolExperimentDrivers) {
  const SymbolLaw law{0.40, 0.25, 0.35};
  const TetraLaw tetra = theorem7_law(0.6, 0.2, 0.2);
  ProtocolExperimentConfig config;
  config.horizon = 60;
  config.runs = 40;
  config.seed = 99;

  auto run_sync = [&](std::size_t threads) {
    config.threads = threads;
    return run_protocol_experiment(law, AttackKind::PrivateChain, 1, 10, config);
  };
  auto run_delta = [&](std::size_t threads) {
    config.threads = threads;
    ProtocolExperimentConfig delta_config = config;
    delta_config.delta = 2;
    return run_protocol_experiment_delta(tetra, AttackKind::Balance, 1, 10, delta_config);
  };

  const ProtocolExperimentResult sync1 = run_sync(1);
  const ProtocolExperimentResult delta1 = run_delta(1);
  for (std::size_t threads : {2u, 8u}) {
    const ProtocolExperimentResult sync_n = run_sync(threads);
    expect_same_counts(sync1.settlement_violations, sync_n.settlement_violations);
    expect_same_counts(sync1.cp_violations, sync_n.cp_violations);
    EXPECT_DOUBLE_EQ(sync1.mean_slot_divergence, sync_n.mean_slot_divergence);
    EXPECT_DOUBLE_EQ(sync1.mean_chain_length, sync_n.mean_chain_length);

    const ProtocolExperimentResult delta_n = run_delta(threads);
    expect_same_counts(delta1.settlement_violations, delta_n.settlement_violations);
    expect_same_counts(delta1.cp_violations, delta_n.cp_violations);
    EXPECT_DOUBLE_EQ(delta1.mean_slot_divergence, delta_n.mean_slot_divergence);
    EXPECT_DOUBLE_EQ(delta1.mean_chain_length, delta_n.mean_chain_length);
  }
}

// ---------------------------------------------------------------------------
// Thread-count invariance of the analysis-layer sweeps (each cell is an
// exact DP pass writing its preassigned slot; the fan must not matter)
// ---------------------------------------------------------------------------

TEST(ThreadInvariance, AnalysisSweepsBitIdentical) {
  const std::vector<SymbolLaw> laws = {bernoulli_condition(0.3, 0.4), table1_law(0.2, 0.5),
                                       SymbolLaw{0.40, 0.25, 0.35}};
  const std::vector<std::size_t> ks = {5, 20, 40};

  SweepOptions serial;
  serial.threads = 1;
  const std::vector<SettlementSeries> series1 = sweep_settlement_series(laws, 40, serial);
  const std::vector<long double> eventual1 = sweep_eventual_insecurity(laws, ks, serial);

  for (const std::size_t threads : {2u, 8u}) {
    SweepOptions opt;
    opt.threads = threads;
    const std::vector<SettlementSeries> series = sweep_settlement_series(laws, 40, opt);
    ASSERT_EQ(series.size(), series1.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
      EXPECT_EQ(series[i].violation, series1[i].violation) << "law " << i;
      EXPECT_EQ(series[i].always_violating, series1[i].always_violating);
      EXPECT_EQ(series[i].never_violating, series1[i].never_violating);
    }
    EXPECT_EQ(sweep_eventual_insecurity(laws, ks, opt), eventual1);
  }
}

// ---------------------------------------------------------------------------
// Histogram bin accounting (the `horizon + 1` "none found" bin)
// ---------------------------------------------------------------------------

TEST(Histogram, NoneFoundBinBalancesTheBooks) {
  const std::size_t horizon = 25;
  const SymbolLaw law = bernoulli_condition(0.3, 0.4);
  McOptions opt = mc_options(4);
  const auto histogram = mc_first_catalan_histogram(law, horizon, opt);
  ASSERT_EQ(histogram.size(), horizon + 2);
  EXPECT_EQ(histogram[0], 0u);  // slots are 1-based
  std::size_t found = 0;
  for (std::size_t s = 1; s <= horizon; ++s) found += histogram[s];
  EXPECT_EQ(found + histogram[horizon + 1], opt.samples);
}

TEST(Histogram, AllMassInNoneFoundBinWhenNoUniquelyHonestSlots) {
  // ph = 0: no slot is ever uniquely honest, so every sample must land in the
  // overflow bin horizon + 1.
  const std::size_t horizon = 10;
  const SymbolLaw law{0.0, 0.6, 0.4};
  McOptions opt = mc_options(2);
  opt.samples = 500;
  const auto histogram = mc_first_catalan_histogram(law, horizon, opt);
  ASSERT_EQ(histogram.size(), horizon + 2);
  EXPECT_EQ(histogram[horizon + 1], opt.samples);
  for (std::size_t s = 0; s <= horizon; ++s) EXPECT_EQ(histogram[s], 0u);
}

}  // namespace
}  // namespace mh
