#include "protocol/node.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"

namespace mh {
namespace {

LeaderSchedule fixed_schedule() {
  // Slots: 1 -> honest party 0; 2 -> honest parties 0,1; 3 -> adversarial.
  std::vector<SlotLeaders> slots(3);
  slots[0].honest = {0};
  slots[1].honest = {0, 1};
  slots[2].adversarial = true;
  return LeaderSchedule(std::move(slots), 2);
}

TEST(Node, AcceptsOnlyEligibleIssuers) {
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(0, TieBreak::ConsistentHash, &schedule);
  const Block good = make_block(genesis_block().hash, 1, 0, 0);
  node.receive(good);
  EXPECT_EQ(node.best_length(), 1u);

  // Party 1 was not elected in slot 1: the "signature check" rejects.
  const Block forged = make_block(genesis_block().hash, 1, 1, 0);
  node.receive(forged);
  EXPECT_FALSE(node.tree().contains(forged.hash));

  // Adversarial block in the adversarial slot is accepted.
  const Block adv = make_block(good.hash, 3, kAdversary, 0);
  node.receive(adv);
  EXPECT_TRUE(node.tree().contains(adv.hash));
}

TEST(Node, RejectsTamperedBlocks) {
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(0, TieBreak::ConsistentHash, &schedule);
  Block b = make_block(genesis_block().hash, 1, 0, 0);
  b.payload ^= 1;  // break the header hash
  node.receive(b);
  EXPECT_EQ(node.tree().block_count(), 1u);
}

TEST(Node, BuffersOrphansUntilParentArrives) {
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(1, TieBreak::ConsistentHash, &schedule);
  const Block parent = make_block(genesis_block().hash, 1, 0, 0);
  const Block child = make_block(parent.hash, 2, 1, 0);
  node.receive(child);  // parent unknown: buffered
  EXPECT_FALSE(node.tree().contains(child.hash));
  node.receive(parent);
  EXPECT_TRUE(node.tree().contains(child.hash));
  EXPECT_EQ(node.best_length(), 2u);
}

TEST(Node, ForgeExtendsBestChain) {
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(0, TieBreak::ConsistentHash, &schedule);
  const Block b1 = make_block(genesis_block().hash, 1, 0, 0);
  node.receive(b1);
  const Block forged = node.forge(2, 1234);
  EXPECT_EQ(forged.parent, b1.hash);
  EXPECT_EQ(forged.slot, 2u);
  EXPECT_EQ(forged.issuer, 0u);
  EXPECT_TRUE(verify_block_integrity(forged));
}

TEST(Node, ForgeRequiresLeadership) {
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(1, TieBreak::ConsistentHash, &schedule);
  // party 1 not a slot-1 leader:
  EXPECT_THROW(static_cast<void>(node.forge(1, 0)), std::invalid_argument);
}

TEST(Node, OrphanBufferDedupesAdversarialRedelivery) {
  // The rushing adversary may re-deliver the same parentless block every
  // slot; the buffer must not grow with redeliveries.
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(1, TieBreak::ConsistentHash, &schedule);
  const Block parent = make_block(genesis_block().hash, 1, 0, 0);
  const Block child = make_block(parent.hash, 2, 1, 0);
  for (int i = 0; i < 64; ++i) node.receive(child);
  EXPECT_EQ(node.buffered_orphans(), 1u);
  node.receive(parent);
  EXPECT_EQ(node.buffered_orphans(), 0u);
  EXPECT_TRUE(node.tree().contains(child.hash));
  // Re-delivery after acceptance is a duplicate, not a fresh orphan.
  node.receive(child);
  EXPECT_EQ(node.buffered_orphans(), 0u);
}

TEST(Node, PermanentlyInvalidOrphansAreDroppedOnFlush) {
  // A buffered block whose parent finally arrives but whose slot label does
  // not increase can never become valid; the seed retried it forever.
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(0, TieBreak::ConsistentHash, &schedule);
  const Block a = make_block(genesis_block().hash, 1, 0, 0);
  node.receive(a);
  const Block parent = make_block(a.hash, 3, kAdversary, 7);
  const Block same_slot_child = make_block(parent.hash, 3, kAdversary, 8);
  node.receive(same_slot_child);  // parent unknown: buffered
  EXPECT_EQ(node.buffered_orphans(), 1u);
  node.receive(parent);  // parent lands; the child is now provably invalid
  EXPECT_TRUE(node.tree().contains(parent.hash));
  EXPECT_FALSE(node.tree().contains(same_slot_child.hash));
  EXPECT_EQ(node.buffered_orphans(), 0u);
}

TEST(Node, InvalidBlocksAreNeverBuffered) {
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(0, TieBreak::ConsistentHash, &schedule);
  const Block a = make_block(genesis_block().hash, 1, 0, 0);
  node.receive(a);
  // Known parent, non-increasing slot: dropped outright.
  const Block stale = make_block(a.hash, 1, 0, 9);
  node.receive(stale);
  EXPECT_EQ(node.buffered_orphans(), 0u);
  EXPECT_FALSE(node.tree().contains(stale.hash));
}

TEST(Node, ReceiveReportsAcceptedBlocksInAcceptanceOrder) {
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(1, TieBreak::ConsistentHash, &schedule);
  const Block parent = make_block(genesis_block().hash, 1, 0, 0);
  const Block child = make_block(parent.hash, 2, 1, 0);
  std::vector<Block> accepted;
  node.receive(child, &accepted);
  EXPECT_TRUE(accepted.empty());  // buffered, not accepted
  node.receive(parent, &accepted);
  ASSERT_EQ(accepted.size(), 2u);  // parent first, then the unblocked orphan
  EXPECT_EQ(accepted[0].hash, parent.hash);
  EXPECT_EQ(accepted[1].hash, child.hash);
}

TEST(Node, ConsistentTieBreakPicksMinHash) {
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(0, TieBreak::ConsistentHash, &schedule);
  const Block x = make_block(genesis_block().hash, 1, 0, 0);
  const Block y = make_block(genesis_block().hash, 3, kAdversary, 0);
  node.receive(x);
  node.receive(y);
  EXPECT_EQ(node.best_head(), std::min(x.hash, y.hash));
}

}  // namespace
}  // namespace mh
