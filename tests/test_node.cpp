#include "protocol/node.hpp"

#include <gtest/gtest.h>

#include "chars/bernoulli.hpp"

namespace mh {
namespace {

LeaderSchedule fixed_schedule() {
  // Slots: 1 -> honest party 0; 2 -> honest parties 0,1; 3 -> adversarial.
  std::vector<SlotLeaders> slots(3);
  slots[0].honest = {0};
  slots[1].honest = {0, 1};
  slots[2].adversarial = true;
  return LeaderSchedule(std::move(slots), 2);
}

TEST(Node, AcceptsOnlyEligibleIssuers) {
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(0, TieBreak::ConsistentHash, &schedule);
  const Block good = make_block(genesis_block().hash, 1, 0, 0);
  node.receive(good);
  EXPECT_EQ(node.best_length(), 1u);

  // Party 1 was not elected in slot 1: the "signature check" rejects.
  const Block forged = make_block(genesis_block().hash, 1, 1, 0);
  node.receive(forged);
  EXPECT_FALSE(node.tree().contains(forged.hash));

  // Adversarial block in the adversarial slot is accepted.
  const Block adv = make_block(good.hash, 3, kAdversary, 0);
  node.receive(adv);
  EXPECT_TRUE(node.tree().contains(adv.hash));
}

TEST(Node, RejectsTamperedBlocks) {
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(0, TieBreak::ConsistentHash, &schedule);
  Block b = make_block(genesis_block().hash, 1, 0, 0);
  b.payload ^= 1;  // break the header hash
  node.receive(b);
  EXPECT_EQ(node.tree().block_count(), 1u);
}

TEST(Node, BuffersOrphansUntilParentArrives) {
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(1, TieBreak::ConsistentHash, &schedule);
  const Block parent = make_block(genesis_block().hash, 1, 0, 0);
  const Block child = make_block(parent.hash, 2, 1, 0);
  node.receive(child);  // parent unknown: buffered
  EXPECT_FALSE(node.tree().contains(child.hash));
  node.receive(parent);
  EXPECT_TRUE(node.tree().contains(child.hash));
  EXPECT_EQ(node.best_length(), 2u);
}

TEST(Node, ForgeExtendsBestChain) {
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(0, TieBreak::ConsistentHash, &schedule);
  const Block b1 = make_block(genesis_block().hash, 1, 0, 0);
  node.receive(b1);
  const Block forged = node.forge(2, 1234);
  EXPECT_EQ(forged.parent, b1.hash);
  EXPECT_EQ(forged.slot, 2u);
  EXPECT_EQ(forged.issuer, 0u);
  EXPECT_TRUE(verify_block_integrity(forged));
}

TEST(Node, ForgeRequiresLeadership) {
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(1, TieBreak::ConsistentHash, &schedule);
  // party 1 not a slot-1 leader:
  EXPECT_THROW(static_cast<void>(node.forge(1, 0)), std::invalid_argument);
}

TEST(Node, ConsistentTieBreakPicksMinHash) {
  const LeaderSchedule schedule = fixed_schedule();
  HonestNode node(0, TieBreak::ConsistentHash, &schedule);
  const Block x = make_block(genesis_block().hash, 1, 0, 0);
  const Block y = make_block(genesis_block().hash, 3, kAdversary, 0);
  node.receive(x);
  node.receive(y);
  EXPECT_EQ(node.best_head(), std::min(x.hash, y.hash));
}

}  // namespace
}  // namespace mh
