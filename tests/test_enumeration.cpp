#include "fork/enumerate.hpp"

#include <gtest/gtest.h>

#include "core/relative_margin.hpp"
#include "fork/margin.hpp"
#include "fork/reach.hpp"
#include "fork/validate.hpp"

namespace mh {
namespace {

TEST(Enumerate, CountsForTrivialStrings) {
  // w = "h": exactly one fork (the single honest vertex on the root).
  std::size_t count = 0;
  enumerate_forks(CharString::parse("h"), EnumerationOptions{},
                  [&](const Fork&) { ++count; });
  EXPECT_EQ(count, 1u);
}

TEST(Enumerate, AdversarialSlotMultiplicities) {
  // w = "A" closed forks: the adversary may place 0 vertices (trivial fork is
  // closed); 1 or 2 adversarial vertices leave adversarial leaves (not
  // closed). So only 1 closed fork.
  std::size_t closed = 0;
  enumerate_forks(CharString::parse("A"), EnumerationOptions{},
                  [&](const Fork&) { ++closed; });
  EXPECT_EQ(closed, 1u);

  EnumerationOptions open;
  open.closed_only = false;
  std::size_t all = 0;
  enumerate_forks(CharString::parse("A"), open, [&](const Fork&) { ++all; });
  EXPECT_EQ(all, 3u);  // 0, 1, or 2 vertices on the root
}

TEST(Enumerate, MultiplyHonestSlotCounts) {
  // w = "H": 1 or 2 vertices on the root, both closed.
  std::size_t count = 0;
  enumerate_forks(CharString::parse("H"), EnumerationOptions{},
                  [&](const Fork&) { ++count; });
  EXPECT_EQ(count, 2u);
}

TEST(Enumerate, AllVisitedForksAreValid) {
  EnumerationOptions options;
  options.closed_only = false;
  for (const char* text : {"hA", "Ah", "HA", "AH", "hAh", "AHA", "hHA"}) {
    const CharString w = CharString::parse(text);
    enumerate_forks(w, options, [&](const Fork& f) {
      ASSERT_TRUE(validate_fork(f, w).ok)
          << text << ": " << validate_fork(f, w).message;
    });
  }
}

TEST(Enumerate, BudgetGuard) {
  EnumerationOptions tiny;
  tiny.max_visits = 1;
  EXPECT_THROW(
      enumerate_forks(CharString::parse("HH"), tiny, [](const Fork&) {}),
      std::invalid_argument);
}

// Proposition 1 (upper bound): no closed fork exceeds the Theorem-5 recurrence
// margin; Theorem 6 (achievability) is covered by test_astar. Together they
// pin mu_x(y) exactly, so here the enumerated maximum must match the
// recurrence for strings small enough that the multiplicity bounds bite
// nothing.
TEST(Enumerate, MaxClosedForkMarginMatchesRecurrence) {
  for (const char* text : {"h", "H", "A", "hA", "Ah", "HA", "AH", "HH", "hh",
                           "hAh", "AhH", "HAH", "AAh", "hHA", "AhA"}) {
    const CharString w = CharString::parse(text);
    for (std::size_t x = 0; x <= w.size(); ++x) {
      const std::int64_t recurrence = relative_margin_recurrence(w, x);
      const std::int64_t best = max_over_forks(
          w, EnumerationOptions{},
          [&](const Fork& f) { return relative_margin(f, w, x); });
      EXPECT_EQ(best, recurrence) << "w = " << text << ", x_len = " << x;
    }
  }
}

TEST(Enumerate, MaxReachMatchesRhoRecurrence) {
  for (const char* text : {"h", "A", "H", "hA", "AA", "AhA", "HAh", "hhA"}) {
    const CharString w = CharString::parse(text);
    const std::int64_t best = max_over_forks(
        w, EnumerationOptions{}, [&](const Fork& f) { return max_reach(f, w); });
    EXPECT_EQ(best, rho_of(w)) << text;
  }
}

}  // namespace
}  // namespace mh
