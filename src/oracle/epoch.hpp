// The epoch-driven face of the differential oracle: run one epoch-managed
// execution (stake registry + epoch nonces + per-slot VRF lottery, possibly
// with mid-run stake shifts) and grade it twice —
//
//   * globally, through the SAME analytic tail as check_execution: the
//     realized schedule (the lottery's actual draws) is projected through the
//     Definition-22 reduction and the execution fork must refine it under the
//     margin-domination invariants (detail::grade_projection, shared code,
//     bit-identical);
//   * per epoch: each epoch's stake snapshot induces an i.i.d. TetraLaw
//     (consensus::induced_law); the epoch's realized characteristic symbols
//     must sit inside exact Clopper-Pearson bands around that law, and the
//     law is pushed through reduced_law (Proposition 4) so every cell also
//     carries the Delta-reduced law the analytic stack would assign it.
//
// A cell is GRADED when its epoch materialized and its band was evaluated;
// `all_graded` demands every epoch intersecting the horizon graded — an
// epoch-driven run with ungraded cells is an oracle gap, not a pass.
#pragma once

#include <vector>

#include "oracle/oracle.hpp"
#include "protocol/consensus/schedule.hpp"

namespace mh::oracle {

/// One epoch-managed scenario cell: stake profile, shift plan, and the usual
/// settlement-attack recipe. Empty `honest_stakes` means uniform over
/// `honest_parties`; otherwise the vector IS the profile (its size wins).
struct EpochRunConfig {
  consensus::ConsensusConfig consensus{};
  std::vector<double> honest_stakes{};
  std::size_t honest_parties = 6;
  double adversarial_stake = 0.25;
  std::vector<consensus::StakeShiftSpec> shifts{};
  TieBreak tie_break = TieBreak::AdversarialOrder;
  Strategy strategy = Strategy::PrivateChain;
  std::size_t delta = 0;
  std::size_t target_slot = 2;
  std::size_t k = 6;
  std::size_t horizon = 96;
  /// Confidence of the per-epoch Clopper-Pearson frequency bands. Epochs are
  /// short (R slots), so the band is an exactness check on the induced law's
  /// location, not a power test; keep it wide enough that a clean lottery
  /// essentially never trips it.
  double band_confidence = 0.999999;
};

/// Per-epoch grading record.
struct EpochCell {
  std::size_t epoch = 0;
  std::uint64_t nonce = 0;
  std::size_t slots = 0;      ///< slots of this epoch inside the horizon
  std::size_t counts[4]{};    ///< realized symbols, indexed Bot, h, H, A
  TetraLaw induced{};         ///< law induced by the epoch's stake snapshot
  SymbolLaw reduced{};        ///< Proposition-4 image of `induced` at Delta
  bool law_within_band = false;
  bool graded = false;

  [[nodiscard]] double frequency(std::size_t symbol) const noexcept {
    return slots == 0 ? 0.0 : static_cast<double>(counts[symbol]) / static_cast<double>(slots);
  }
};

/// The verdict on one epoch-managed execution: the global run verdict plus
/// one graded cell per epoch.
struct EpochVerdict {
  RunVerdict run{};
  std::vector<EpochCell> cells{};
  bool all_graded = false;      ///< every epoch covering the horizon graded
  bool laws_within_band = true; ///< every cell's frequencies inside its band

  [[nodiscard]] bool clean() const noexcept {
    return all_graded && laws_within_band && run.dominated();
  }
  /// 'u' ungraded cells, '!' a band or domination breach, else the run code.
  [[nodiscard]] char code() const noexcept {
    if (!all_graded) return 'u';
    if (!laws_within_band) return '!';
    return run.code();
  }
};

/// Runs one seeded epoch-managed execution of `config` and grades it as
/// documented above. Pure in (config, rng stream): verdicts are bit-identical
/// across thread counts when the streams are counter-based.
EpochVerdict check_epoch_execution(const EpochRunConfig& config, Rng& rng);

}  // namespace mh::oracle
