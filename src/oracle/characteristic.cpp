#include "oracle/characteristic.hpp"

#include <algorithm>

#include "core/relative_margin.hpp"
#include "support/check.hpp"

namespace mh::oracle {

AnalyticProjection project_schedule(const LeaderSchedule& schedule, std::size_t delta,
                                    std::size_t target_slot) {
  MH_REQUIRE(target_slot >= 1 && target_slot <= schedule.horizon());
  AnalyticProjection view;
  view.raw = schedule.characteristic();
  view.reduction = reduce(view.raw, delta);
  view.delta = delta;
  view.target_slot = target_slot;
  // x' ends at the last reduced position of a slot < target_slot; inverse[] is
  // monotone over non-empty slots, so the maximum over the prefix is the count.
  view.x_len = 0;
  for (std::size_t t = 1; t < target_slot; ++t) {
    const std::size_t pos = view.reduction.inverse[t - 1];
    if (pos != 0) view.x_len = pos;
  }
  view.margin = margin_trajectory(view.reduction.reduced, view.x_len);
  return view;
}

bool margin_allows_violation(const AnalyticProjection& view, std::size_t j_lo) {
  MH_REQUIRE(j_lo >= 1);
  for (std::size_t j = j_lo; j < view.margin.size(); ++j)
    if (view.margin[j] >= 0) return true;
  return false;
}

bool empty_observation_window(const AnalyticProjection& view, std::size_t k) {
  const std::size_t last = std::min(view.target_slot + k, view.raw.size());
  for (std::size_t t = view.target_slot; t <= last; ++t)
    if (!is_empty(view.raw.at(t))) return false;
  return true;
}

bool admits_distinct_balance(const CharString& u) {
  for (std::size_t j = 0; j < u.size(); ++j)
    if (relative_margin_recurrence(u, j) >= 0) return true;
  return false;  // the empty string's genesis holds no distinct pair
}

bool prefix_admits_distinct_balance(const AnalyticProjection& view) {
  return admits_distinct_balance(view.reduction.reduced.prefix(view.x_len));
}

}  // namespace mh::oracle
