// The execution -> analytic projection of the differential oracle: from a
// leader schedule (the full-information object both sides share) to the
// reduced characteristic string and the relative-margin trajectory the paper's
// settlement analysis evaluates on it.
//
// The projection is Delta-aware: the semi-synchronous {Bot,h,H,A} string of
// the schedule (Definition 20) is pushed through the reduction map rho_Delta
// (Definition 22), and the target slot s is carried along to the reduced
// decomposition point x' = all reduced positions of slots < s. By Proposition
// 3, every Delta-execution of the schedule relabels into a synchronous fork
// for the reduced string, so the margin trajectory mu_{x'}(y'_j) computed here
// is the analytic ceiling for everything any simulated adversary achieves.
#pragma once

#include <cstdint>
#include <vector>

#include "delta/reduction.hpp"
#include "protocol/leader.hpp"

namespace mh::oracle {

struct AnalyticProjection {
  TetraString raw;            ///< the schedule's Definition-20 string
  ReductionResult reduction;  ///< rho_Delta(raw) with the position bijection
  std::size_t delta = 0;
  std::size_t target_slot = 1;
  /// |x'|: reduced positions of (non-empty) slots strictly before target_slot.
  std::size_t x_len = 0;
  /// mu_{x'}(y'_j) for j = 0..|y'| (index 0 = rho(x'), see margin_trajectory).
  std::vector<std::int64_t> margin;
};

/// Builds the analytic view of one schedule: characteristic string, reduction,
/// decomposition point of `target_slot`, margin trajectory.
AnalyticProjection project_schedule(const LeaderSchedule& schedule, std::size_t delta,
                                    std::size_t target_slot);

/// Does the analytic margin permit a settlement violation of the target slot
/// anywhere in the observed window? True iff mu_{x'}(y'_j) >= 0 for some
/// j >= j_lo (j_lo = 1 is the sound default: j = 0 is rho(x') >= 0 always and
/// corresponds to no observation at all). When this returns false for
/// j_lo = 1, the paper's Theorem 5 forbids EVERY adversary - simulated
/// strategies included - from violating the slot within the horizon...
/// except through the empty-window boundary case below.
bool margin_allows_violation(const AnalyticProjection& view, std::size_t j_lo = 1);

/// The boundary case the margin trajectory cannot see: when every slot in
/// [target_slot, target_slot + k] is empty, the first settlement observation
/// happens with ZERO reduced suffix symbols (j = 0), and the violation
/// witness - two distinct maximum-length tines with different target-slot
/// prefixes - must live entirely inside x'. Returns true iff such a window
/// exists for the given k.
bool empty_observation_window(const AnalyticProjection& view, std::size_t k);

/// Can any fork for `u` hold two DISTINCT maximum-length tines? By Fact 6
/// applied at every divergence point, this holds iff
/// max over j in [0, |u|) of mu_{u_1..u_j}(u_{j+1}..) >= 0
/// (a self-pair witness extends into two distinct tines exactly when the
/// suffix past the divergence point is non-empty; validated exhaustively
/// against fork enumeration for every string of length <= 5 in
/// tests/test_oracle.cpp).
bool admits_distinct_balance(const CharString& u);

/// `admits_distinct_balance` on x' alone: the analytic allowance for
/// violations observed through an empty window.
bool prefix_admits_distinct_balance(const AnalyticProjection& view);

}  // namespace mh::oracle
