#include "oracle/scenario.hpp"

#include <algorithm>

#include "delta/delta_settlement.hpp"
#include "engine/seed_sequence.hpp"
#include "engine/thread_pool.hpp"
#include "obs/obs.hpp"
#include "sim/monte_carlo.hpp"
#include "support/check.hpp"

namespace mh::oracle {

namespace {

CellVerdict run_cell(const MatrixConfig& config, const NamedLaw& named, std::size_t tie_i,
                     std::size_t delta_i, std::size_t strategy_i, std::size_t law_i,
                     faults::FaultProfile profile, std::uint64_t cell_seed) {
  MH_OBS_TIMER("oracle.cell_ns");
  MH_OBS_COUNT("oracle.cells", 1);
  RunConfig rc;
  rc.law = named.law;
  rc.tie_break = config.tie_breaks[tie_i];
  rc.strategy = config.strategies[strategy_i];
  rc.delta = config.deltas[delta_i];
  rc.target_slot = config.target_slot;
  rc.k = config.k;
  rc.horizon = config.horizon;
  rc.honest_parties = config.honest_parties;

  CellVerdict out;
  out.tie_break = rc.tie_break;
  out.delta = rc.delta;
  out.strategy = rc.strategy;
  out.law_index = law_i;
  out.fault_profile = profile;
  out.runs = config.runs;

  const bool faulted_cell = profile != faults::FaultProfile::None;
  const engine::SeedSequence streams(cell_seed);
  // Plans draw from their own derived stream, never from the run's rng: a
  // None cell consumes exactly the draws of the pre-fault matrix, keeping the
  // golden pins, and a plan is a pure function of (cell seed, run index).
  const engine::SeedSequence plan_streams(cell_seed ^ 0xfa01c0defa01c0deULL);
  for (std::size_t r = 0; r < config.runs; ++r) {
    Rng rng = streams.stream(r);
    MH_OBS_COUNT("oracle.executions", 1);
    faults::FaultPlan plan;
    if (faulted_cell) {
      Rng plan_rng = plan_streams.stream(r);
      plan = faults::sample_fault_plan(profile, rc.honest_parties, rc.horizon, rc.delta,
                                       plan_rng);
    }
    const RunVerdict v = check_execution(rc, rng, faulted_cell ? &plan : nullptr);
    if (r == 0) out.first_run = v.code();
    if (v.simulated_violation) ++out.simulated_violations;
    if (v.analytic_allows) ++out.analytic_allowed;
    bool run_dirty = false;
    if (v.degraded) {
      // Out-of-bound run: flagged, and graded against its observed Delta.
      ++out.degraded_runs;
      if (!v.recovery_checked) ++out.degraded_unchecked;
      else if (!v.dominated()) {
        ++out.recovery_failures;
        run_dirty = true;
      }
    } else {
      // Within the configured bound (faulted or not) the full invariant set
      // applies unchanged.
      if (v.simulated_violation && !v.analytic_allows) ++out.domination_failures;
      if (!v.fork_valid) ++out.fork_invalid;
      if (!v.margin_dominated) ++out.margin_breaches;
      run_dirty = !v.dominated();
    }
    if (!v.delta_unbounded)
      out.max_observed_delta = std::max(out.max_observed_delta,
                                        static_cast<std::size_t>(v.observed_delta));
    out.resync_blocks += v.resync_blocks;
    out.faults_injected += v.faults_injected;
    if (faulted_cell && run_dirty && out.first_failure_run == SIZE_MAX) {
      // The minimal reproducer: (matrix seed, cell index, run index, plan)
      // rebuilds this exact execution anywhere.
      out.first_failure_run = r;
      out.first_failure_plan = plan.serialize();
    }
  }

  // Stochastic cross-validation on the cell's reduced law. Below honest
  // majority the DP saturates at 1 and X_inf diverges, so the bands carry no
  // information; the ceiling stays at the trivial 1. Faulted cells skip the
  // checks entirely: crashes thin the realized leader law, so neither the
  // MC band nor the un-faulted analytic ceiling bounds what they simulate.
  if (faulted_cell) return out;
  const SymbolLaw reduced = reduced_law(named.law, rc.delta);
  out.reduced_epsilon = reduced.epsilon();
  if (reduced.epsilon() > 0.0) {
    out.exact_pk = delta_settlement_violation_probability(named.law, rc.delta, rc.k);
    out.analytic_ceiling = eventual_settlement_insecurity(reduced, 1);

    McOptions mopt;
    mopt.samples = config.mc_samples;
    mopt.seed = cell_seed ^ 0x5eedf00dULL;
    mopt.threads = 1;  // the matrix parallelizes over cells, not inside them
    const Proportion mc = mc_settlement_violation(reduced, rc.k, mopt);
    out.recurrence_mc =
        clopper_pearson_interval(mc.successes, mc.trials, config.band_confidence);
    out.mc_checked = true;
    out.mc_within_band = out.recurrence_mc.lo <= static_cast<double>(out.exact_pk) &&
                         static_cast<double>(out.exact_pk) <= out.recurrence_mc.hi;
    // MC<->DP slack: how far the exact value sits from the nearer band edge,
    // in parts-per-million of the band width (0 = touching an edge; a
    // persistently tiny slack flags a band about to break).
    MH_OBS_ONLY(if (::mh::obs::enabled() && out.mc_within_band) {
      const double width = out.recurrence_mc.hi - out.recurrence_mc.lo;
      if (width > 0.0) {
        const double exact = static_cast<double>(out.exact_pk);
        const double edge = std::min(exact - out.recurrence_mc.lo, out.recurrence_mc.hi - exact);
        MH_OBS_HIST("oracle.mc_band_slack_ppm", static_cast<std::uint64_t>(1e6 * edge / width));
      }
    })
  }

  const Proportion protocol =
      clopper_pearson_interval(out.simulated_violations, out.runs, config.band_confidence);
  out.protocol_within_ceiling = protocol.lo <= static_cast<double>(out.analytic_ceiling);
  return out;
}

}  // namespace

std::size_t MatrixResult::total_runs() const noexcept {
  std::size_t n = 0;
  for (const CellVerdict& c : cells) n += c.runs;
  return n;
}

std::size_t MatrixResult::total_violations() const noexcept {
  std::size_t n = 0;
  for (const CellVerdict& c : cells) n += c.simulated_violations;
  return n;
}

std::size_t MatrixResult::total_domination_failures() const noexcept {
  std::size_t n = 0;
  for (const CellVerdict& c : cells) n += c.domination_failures;
  return n;
}

std::size_t MatrixResult::total_fork_invalid() const noexcept {
  std::size_t n = 0;
  for (const CellVerdict& c : cells) n += c.fork_invalid;
  return n;
}

std::size_t MatrixResult::total_margin_breaches() const noexcept {
  std::size_t n = 0;
  for (const CellVerdict& c : cells) n += c.margin_breaches;
  return n;
}

std::size_t MatrixResult::total_degraded() const noexcept {
  std::size_t n = 0;
  for (const CellVerdict& c : cells) n += c.degraded_runs;
  return n;
}

std::size_t MatrixResult::total_recovery_failures() const noexcept {
  std::size_t n = 0;
  for (const CellVerdict& c : cells) n += c.recovery_failures;
  return n;
}

std::size_t MatrixResult::total_resync_blocks() const noexcept {
  std::size_t n = 0;
  for (const CellVerdict& c : cells) n += c.resync_blocks;
  return n;
}

bool MatrixResult::all_clean() const noexcept {
  for (const CellVerdict& c : cells)
    if (!c.clean()) return false;
  return true;
}

std::vector<NamedLaw> default_matrix_laws() {
  return {
      // Sparse slots (f = 0.2) keep the reduced law honest-majority through
      // Delta = 2, so the semi-synchronous analytic path is exercised
      // non-trivially on every Delta axis value.
      {"semi-sync-honest", theorem7_law(0.2, 0.03, 0.12)},
      // Dense multiply-honest-heavy law (pH = 0.9, no adversarial stake):
      // the Theorem-2 workload where tie-breaking alone decides settlement.
      {"mh-heavy", theorem7_law(1.0, 0.0, 0.10)},
  };
}

std::size_t cell_index(const MatrixConfig& config, std::size_t tie_i, std::size_t delta_i,
                       std::size_t strategy_i, std::size_t law_i, std::size_t fault_i) {
  const std::size_t n_laws =
      config.laws.empty() ? default_matrix_laws().size() : config.laws.size();
  return (((fault_i * config.tie_breaks.size() + tie_i) * config.deltas.size() + delta_i) *
              config.strategies.size() +
          strategy_i) *
             n_laws +
         law_i;
}

MatrixConfig fault_band_config() {
  MatrixConfig config;
  config.tie_breaks = {TieBreak::AdversarialOrder, TieBreak::ConsistentHash};
  config.deltas = {1, 2};
  config.strategies = {Strategy::Balance, Strategy::Randomized};
  config.fault_profiles = {faults::FaultProfile::None,       faults::FaultProfile::PartitionHeal,
                           faults::FaultProfile::Churn,      faults::FaultProfile::LossyLinks,
                           faults::FaultProfile::Asynchrony, faults::FaultProfile::Mixed};
  config.runs = 12;
  config.mc_samples = 500;
  config.seed = 6101;
  return config;
}

MatrixResult run_scenario_matrix(const MatrixConfig& config) {
  MH_REQUIRE(!config.tie_breaks.empty() && !config.deltas.empty() &&
             !config.strategies.empty());
  MH_REQUIRE(config.runs >= 1);
  const std::vector<NamedLaw> laws =
      config.laws.empty() ? default_matrix_laws() : config.laws;
  for (const NamedLaw& named : laws) named.law.validate();

  // An empty profile list degenerates to the single un-faulted band.
  const std::vector<faults::FaultProfile> profiles =
      config.fault_profiles.empty()
          ? std::vector<faults::FaultProfile>{faults::FaultProfile::None}
          : config.fault_profiles;

  const std::size_t n_cells = profiles.size() * config.tie_breaks.size() *
                              config.deltas.size() * config.strategies.size() * laws.size();
  MatrixResult result;
  result.cells.resize(n_cells);

  const engine::SeedSequence cell_seeds(config.seed);
  engine::for_each_index(n_cells, config.threads, [&](std::size_t idx) {
    // Invert the row-major (fault, tie, delta, strategy, law) index.
    std::size_t rest = idx;
    const std::size_t law_i = rest % laws.size();
    rest /= laws.size();
    const std::size_t strategy_i = rest % config.strategies.size();
    rest /= config.strategies.size();
    const std::size_t delta_i = rest % config.deltas.size();
    rest /= config.deltas.size();
    const std::size_t tie_i = rest % config.tie_breaks.size();
    const std::size_t fault_i = rest / config.tie_breaks.size();
    result.cells[idx] = run_cell(config, laws[law_i], tie_i, delta_i, strategy_i, law_i,
                                 profiles[fault_i], cell_seeds.derive(idx));
  });
  return result;
}

std::string first_run_codes(const MatrixResult& result) {
  std::string codes;
  codes.reserve(result.cells.size());
  for (const CellVerdict& c : result.cells) codes.push_back(c.first_run);
  return codes;
}

}  // namespace mh::oracle
