// The oracle scenario matrix: every combination of tie-breaking axiom,
// network delay, adversarial strategy, and stake law runs as an independent
// cell, fanned across the experiment engine's pool. A cell is a pure function
// of (matrix seed, cell index): its executions draw from counter-based
// streams of the cell's derived seed, so every verdict - counts, bands, the
// pinned first-run code - is bit-for-bit identical for any thread count.
//
// Besides the per-execution domination invariants (oracle.hpp), each cell
// cross-validates the stochastic layer:
//
//   * the Monte-Carlo of the Theorem-5 recurrence on the cell's reduced law
//     must contain the exact Section-6.6 DP value P(k) within its
//     Clopper-Pearson band (exact coverage, no normal approximation);
//   * the protocol-level violation frequency must stay below the analytic
//     ceiling Pr[exists j >= 1: mu >= 0] (the optimal adversary's eventual
//     insecurity), again by Clopper-Pearson lower bound.
#pragma once

#include <string>
#include <vector>

#include "oracle/oracle.hpp"
#include "support/stats.hpp"

namespace mh::oracle {

struct NamedLaw {
  std::string name;
  TetraLaw law;
};

struct MatrixConfig {
  std::vector<TieBreak> tie_breaks{TieBreak::AdversarialOrder, TieBreak::ConsistentHash};
  std::vector<std::size_t> deltas{0, 1, 2};
  std::vector<Strategy> strategies{Strategy::PrivateChain, Strategy::Balance,
                                   Strategy::Randomized};
  std::vector<NamedLaw> laws;  ///< default_matrix_laws() when empty
  /// The fault band: one matrix copy per profile, outermost axis. The default
  /// single None keeps the pre-fault index geometry, cell seeds and golden
  /// pins bit-identical. Faulted cells draw one FaultPlan per run from a
  /// stream disjoint from the execution's, so a None cell consumes exactly
  /// the draws it always did.
  std::vector<faults::FaultProfile> fault_profiles{faults::FaultProfile::None};

  std::size_t target_slot = 2;
  std::size_t k = 6;
  std::size_t horizon = 48;
  std::size_t honest_parties = 6;
  std::size_t runs = 24;          ///< executions per cell
  std::size_t mc_samples = 2000;  ///< recurrence Monte-Carlo per cell
  double band_confidence = 0.999999;
  std::uint64_t seed = 2027;
  std::size_t threads = 0;  ///< engine parallelism over cells; 0 = hardware
};

/// One cell's aggregated verdict; all counts are over `runs` executions.
struct CellVerdict {
  // Axes (echoed so a verdict is self-describing).
  TieBreak tie_break = TieBreak::AdversarialOrder;
  std::size_t delta = 0;
  Strategy strategy = Strategy::PrivateChain;
  std::size_t law_index = 0;
  faults::FaultProfile fault_profile = faults::FaultProfile::None;

  // Execution tallies.
  std::size_t runs = 0;
  std::size_t simulated_violations = 0;  ///< protocol-level k-settlement breaches
  std::size_t analytic_allowed = 0;      ///< strings whose margin permits one
  std::size_t domination_failures = 0;   ///< violation on a margin-forbidden string
  std::size_t fork_invalid = 0;          ///< relabeled fork failed (F1)-(F4)
  std::size_t margin_breaches = 0;       ///< fork margin above the recurrence
  char first_run = '?';                  ///< RunVerdict::code() of execution 0

  // Stochastic cross-checks (skipped when the reduced law loses honest
  // majority: the DP is trivially 1 there and the MC start diverges).
  double reduced_epsilon = 0.0;
  long double exact_pk = 1.0L;          ///< exact DP violation probability at k
  long double analytic_ceiling = 1.0L;  ///< eventual insecurity, j >= 1
  Proportion recurrence_mc;             ///< Clopper-Pearson band of the MC at k
  bool mc_checked = false;
  bool mc_within_band = true;
  bool protocol_within_ceiling = true;

  // Fault-band tallies (all zero in a None cell). Degraded runs leave the
  // domination buckets above (which then cover exactly the within-bound runs)
  // and land here: flagged, and — when a finite observed Delta exists — held
  // to the invariants at that Delta instead.
  std::size_t degraded_runs = 0;       ///< observed Delta pushed past the bound
  std::size_t degraded_unchecked = 0;  ///< unbounded observed Delta: flag only
  std::size_t recovery_failures = 0;   ///< observed-Delta projection failed
  std::size_t max_observed_delta = 0;  ///< max finite observed Delta over runs
  std::size_t resync_blocks = 0;       ///< total re-sync re-ships over runs
  std::size_t faults_injected = 0;     ///< total perturbations over runs
  std::size_t first_failure_run = SIZE_MAX;  ///< run index of the reproducer below
  std::string first_failure_plan;      ///< serialized FaultPlan of the first dirty run

  [[nodiscard]] bool clean() const noexcept {
    return domination_failures == 0 && fork_invalid == 0 && margin_breaches == 0 &&
           recovery_failures == 0 && mc_within_band && protocol_within_ceiling;
  }

  friend bool operator==(const CellVerdict&, const CellVerdict&) = default;
};

struct MatrixResult {
  /// Row-major in (fault, tie, delta, strategy, law); with the default single
  /// None profile this is the historical (tie, delta, strategy, law) layout.
  std::vector<CellVerdict> cells;

  [[nodiscard]] std::size_t total_runs() const noexcept;
  [[nodiscard]] std::size_t total_violations() const noexcept;
  [[nodiscard]] std::size_t total_domination_failures() const noexcept;
  [[nodiscard]] std::size_t total_fork_invalid() const noexcept;
  [[nodiscard]] std::size_t total_margin_breaches() const noexcept;
  [[nodiscard]] std::size_t total_degraded() const noexcept;
  [[nodiscard]] std::size_t total_recovery_failures() const noexcept;
  [[nodiscard]] std::size_t total_resync_blocks() const noexcept;
  [[nodiscard]] bool all_clean() const noexcept;
};

/// The two stock laws of the default matrix: a sparse semi-synchronous
/// honest-majority law (non-trivial at every Delta in {0,1,2}) and a dense
/// multiply-honest-heavy law (the Theorem-2 separation workload).
std::vector<NamedLaw> default_matrix_laws();

/// Flat index of a cell in MatrixResult::cells (`fault_i` indexes
/// config.fault_profiles; the default band has only index 0).
std::size_t cell_index(const MatrixConfig& config, std::size_t tie_i, std::size_t delta_i,
                       std::size_t strategy_i, std::size_t law_i, std::size_t fault_i = 0);

/// The chaos band: every fault profile (None baseline included) over a
/// trimmed axis set sized for CI sanitizer runs — partitions and churn need
/// Delta >= 1 to have a within-bound side, and two strategies suffice to
/// exercise both the dedicated attacker and the fuzzing adversary.
MatrixConfig fault_band_config();

/// Runs the full matrix; cells fan across engine::for_each_index.
MatrixResult run_scenario_matrix(const MatrixConfig& config);

/// The concatenated first-run codes of all cells (the golden seed-stability
/// fingerprint: any RNG or simulator drift shows up here immediately).
std::string first_run_codes(const MatrixResult& result);

}  // namespace mh::oracle
