#include "oracle/oracle.hpp"

#include <optional>

#include "delta/delta_fork.hpp"
#include "fork/margin.hpp"
#include "fork/validate.hpp"
#include "obs/obs.hpp"
#include "protocol/bridge.hpp"
#include "support/check.hpp"

namespace mh::oracle {

const char* strategy_name(Strategy s) noexcept {
  switch (s) {
    case Strategy::PrivateChain: return "private-chain";
    case Strategy::Balance: return "balance";
    case Strategy::Randomized: return "randomized";
  }
  return "?";
}

char RunVerdict::code() const noexcept {
  if (degraded) {
    if (!recovery_checked) return 'u';
    return dominated() ? 'd' : '!';
  }
  if (!dominated()) return '!';
  if (simulated_violation) return 'V';
  return analytic_allows ? 'a' : '.';
}

std::unique_ptr<Adversary> make_strategy(Strategy strategy, const RunConfig& config,
                                         std::uint64_t seed) {
  switch (strategy) {
    case Strategy::PrivateChain:
      return std::make_unique<PrivateChainAdversary>(config.target_slot, config.k);
    case Strategy::Balance: return std::make_unique<BalanceAttacker>();
    case Strategy::Randomized: return std::make_unique<RandomizedAdversary>(seed);
  }
  return nullptr;
}

RunVerdict check_execution(const RunConfig& config, Rng& rng, const faults::FaultPlan* plan) {
  MH_REQUIRE(config.target_slot >= 1 && config.k >= 1);
  MH_REQUIRE(config.target_slot + config.k <= config.horizon);
  config.law.validate();

  RunVerdict verdict;

  // --- protocol side: one seeded execution under the chosen strategy --------
  const LeaderSchedule schedule =
      LeaderSchedule::from_tetra_law(config.law, config.horizon, config.honest_parties, rng);
  const std::unique_ptr<Adversary> adversary =
      make_strategy(config.strategy, config, rng());
  std::optional<faults::FaultInjector> injector;
  if (plan != nullptr) injector.emplace(*plan, config.honest_parties, config.horizon);
  Simulation sim(schedule, SimulationConfig{config.tie_break, rng()}, config.delta,
                 adversary.get(), injector ? &*injector : nullptr, config.net);
  bool tied = false;
  {
    MH_OBS_TIMER("oracle.phase.simulate");
    sim.watch_settlement(config.target_slot, config.k);
    sim.run_until(config.target_slot + config.k);
    tied = sim.observed_settlement_violation(config.target_slot);
    sim.run_until(config.horizon);
  }
  verdict.simulated_violation =
      tied || sim.settlement_watch_violated(config.target_slot);

  // --- fault audit: realized synchrony decides the projection's Delta ------
  std::size_t project_delta = config.delta;
  std::optional<LeaderSchedule> effective;
  const LeaderSchedule* projected_schedule = &schedule;
  const bool hetero = config.net.heterogeneous();
  if (injector && !hetero) {
    const FaultReport report = sim.fault_report();
    verdict.faulted = true;
    verdict.observed_delta = static_cast<std::uint32_t>(report.observed_delta);
    verdict.delta_unbounded = report.delivery_unbounded;
    verdict.degraded = report.delivery_unbounded || report.observed_delta > config.delta;
    verdict.resync_blocks = static_cast<std::uint32_t>(report.stats.resync_blocks);
    verdict.faults_injected = static_cast<std::uint32_t>(report.stats.injected());
    MH_OBS_COUNT("oracle.faulted_runs", 1);
    MH_OBS_COUNT("protocol.faults.injected", report.stats.injected());
    if (report.leaderships_skipped != 0) {
      // Down leaders forged nothing: the realized block set matches the
      // schedule with those leaderships removed, and the projection must
      // relabel against THAT characteristic string (else F1 fails on honest
      // indices with no vertex).
      effective = injector->effective_schedule(schedule);
      projected_schedule = &*effective;
    }
    if (verdict.degraded) {
      MH_OBS_COUNT("oracle.degraded_runs", 1);
      // Never a silent pass: the run is flagged, then — when a finite
      // observed Delta exists — held to the invariants AT that Delta (the
      // graceful-degradation contract). Unbounded non-delivery admits no
      // finite projection; the flag alone stands ('u').
      if (verdict.delta_unbounded) return verdict;
      project_delta = report.observed_delta;
      verdict.recovery_checked = true;
    }
  }

  // --- network audit: a heterogeneous run is graded at its observed Delta --
  if (hetero) {
    const NetReport net = sim.net_report();
    verdict.heterogeneous = true;
    verdict.observed_delta = static_cast<std::uint32_t>(net.observed_delta);
    MH_OBS_COUNT("oracle.hetero_runs", 1);
    if (injector) {
      // Faults ride along: the injector contributes stats and the effective
      // (leadership-skipped) schedule; the Delta grade itself comes from the
      // NetReport, whose inflation already folds in the fault layer's
      // adoption delays (they share the same counter).
      const FaultReport report = sim.fault_report();
      verdict.faulted = true;
      verdict.resync_blocks = static_cast<std::uint32_t>(report.stats.resync_blocks);
      verdict.faults_injected = static_cast<std::uint32_t>(report.stats.injected());
      MH_OBS_COUNT("oracle.faulted_runs", 1);
      MH_OBS_COUNT("protocol.faults.injected", report.stats.injected());
      if (report.leaderships_skipped != 0) {
        effective = injector->effective_schedule(schedule);
        projected_schedule = &*effective;
      }
    }
    verdict.degraded = net.observed_delta > config.delta;
    if (verdict.degraded) {
      MH_OBS_COUNT("oracle.degraded_runs", 1);
      // The pending-delivery inflation keeps the observed Delta finite on the
      // strongly connected topology set, so every heterogeneous run holds to
      // the invariants AT that Delta — never a silent pass, never 'u'.
      project_delta = net.observed_delta;
      verdict.recovery_checked = true;
    }
  }

  detail::grade_projection(*projected_schedule, project_delta, config.target_slot, config.k,
                           sim.all_blocks(), verdict);
  return verdict;
}

namespace detail {

void grade_projection(const LeaderSchedule& schedule, std::size_t delta,
                      std::size_t target_slot, std::size_t k,
                      const std::vector<Block>& blocks, RunVerdict& verdict) {
  // --- analytic side: reduce, decompose, run the Theorem-5 recurrence ------
  const AnalyticProjection view = [&] {
    MH_OBS_TIMER("oracle.phase.project");
    AnalyticProjection v = project_schedule(schedule, delta, target_slot);
    // The margin trajectory covers every observation with at least one reduced
    // suffix symbol; when the whole confirmation window is empty the first
    // observation sees x' alone, and the allowance is the distinct-balance
    // condition on x' (Fact 6 at every divergence point).
    verdict.analytic_allows =
        margin_allows_violation(v) ||
        (empty_observation_window(v, k) && prefix_admits_distinct_balance(v));
    verdict.string_margin = v.margin.back();  // mu_{x'}(y') over the full suffix
    return v;
  }();

  // --- refinement: the execution relabels into a valid fork for w' ---------
  const Fork projected = [&] {
    MH_OBS_TIMER("oracle.phase.validate");
    const ExecutionFork execution = fork_from_blocks(blocks);
    Fork p = project_to_synchronous(execution.fork, view.reduction.inverse);
    verdict.fork_valid = validate_fork(p, view.reduction.reduced).ok;
    return p;
  }();
  {
    MH_OBS_TIMER("oracle.phase.reduce");
    verdict.fork_margin =
        relative_margin(projected, view.reduction.reduced, view.x_len);
    verdict.margin_dominated = verdict.fork_margin <= verdict.string_margin;
  }
}

}  // namespace detail

}  // namespace mh::oracle
