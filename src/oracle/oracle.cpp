#include "oracle/oracle.hpp"

#include "delta/delta_fork.hpp"
#include "fork/margin.hpp"
#include "fork/validate.hpp"
#include "obs/obs.hpp"
#include "protocol/bridge.hpp"
#include "support/check.hpp"

namespace mh::oracle {

const char* strategy_name(Strategy s) noexcept {
  switch (s) {
    case Strategy::PrivateChain: return "private-chain";
    case Strategy::Balance: return "balance";
    case Strategy::Randomized: return "randomized";
  }
  return "?";
}

char RunVerdict::code() const noexcept {
  if (!dominated()) return '!';
  if (simulated_violation) return 'V';
  return analytic_allows ? 'a' : '.';
}

std::unique_ptr<Adversary> make_strategy(Strategy strategy, const RunConfig& config,
                                         std::uint64_t seed) {
  switch (strategy) {
    case Strategy::PrivateChain:
      return std::make_unique<PrivateChainAdversary>(config.target_slot, config.k);
    case Strategy::Balance: return std::make_unique<BalanceAttacker>();
    case Strategy::Randomized: return std::make_unique<RandomizedAdversary>(seed);
  }
  return nullptr;
}

RunVerdict check_execution(const RunConfig& config, Rng& rng) {
  MH_REQUIRE(config.target_slot >= 1 && config.k >= 1);
  MH_REQUIRE(config.target_slot + config.k <= config.horizon);
  config.law.validate();

  RunVerdict verdict;

  // --- protocol side: one seeded execution under the chosen strategy --------
  const LeaderSchedule schedule =
      LeaderSchedule::from_tetra_law(config.law, config.horizon, config.honest_parties, rng);
  const std::unique_ptr<Adversary> adversary =
      make_strategy(config.strategy, config, rng());
  Simulation sim(schedule, SimulationConfig{config.tie_break, rng()}, config.delta,
                 adversary.get());
  bool tied = false;
  {
    MH_OBS_TIMER("oracle.phase.simulate");
    sim.watch_settlement(config.target_slot, config.k);
    sim.run_until(config.target_slot + config.k);
    tied = sim.observed_settlement_violation(config.target_slot);
    sim.run_until(config.horizon);
  }
  verdict.simulated_violation =
      tied || sim.settlement_watch_violated(config.target_slot);

  // --- analytic side: reduce, decompose, run the Theorem-5 recurrence ------
  const AnalyticProjection view = [&] {
    MH_OBS_TIMER("oracle.phase.project");
    AnalyticProjection v = project_schedule(schedule, config.delta, config.target_slot);
    // The margin trajectory covers every observation with at least one reduced
    // suffix symbol; when the whole confirmation window is empty the first
    // observation sees x' alone, and the allowance is the distinct-balance
    // condition on x' (Fact 6 at every divergence point).
    verdict.analytic_allows =
        margin_allows_violation(v) ||
        (empty_observation_window(v, config.k) && prefix_admits_distinct_balance(v));
    verdict.string_margin = v.margin.back();  // mu_{x'}(y') over the full suffix
    return v;
  }();

  // --- refinement: the execution relabels into a valid fork for w' ---------
  const Fork projected = [&] {
    MH_OBS_TIMER("oracle.phase.validate");
    const ExecutionFork execution = fork_from_blocks(sim.all_blocks());
    Fork p = project_to_synchronous(execution.fork, view.reduction.inverse);
    verdict.fork_valid = validate_fork(p, view.reduction.reduced).ok;
    return p;
  }();
  {
    MH_OBS_TIMER("oracle.phase.reduce");
    verdict.fork_margin =
        relative_margin(projected, view.reduction.reduced, view.x_len);
    verdict.margin_dominated = verdict.fork_margin <= verdict.string_margin;
  }
  return verdict;
}

}  // namespace mh::oracle
