// The differential consistency oracle: run one protocol execution and one
// analytic replay of the same leader schedule, and check the paper's
// domination invariants between them.
//
// Per execution the oracle asserts, in order of strength:
//
//   1. refinement   - the execution's block set, relabeled through the
//                     Delta-reduction bijection (Proposition 3), is a valid
//                     synchronous fork for the reduced string (axioms F1-F4);
//   2. margin       - the relative margin of that fork at the target
//                     decomposition never exceeds the Theorem-5 recurrence
//                     value (the recurrence is the max over ALL valid forks);
//   3. domination   - if the simulated adversary achieved a k-settlement
//                     violation, the analytic margin trajectory permits one
//                     (mu_{x'}(y'_j) >= 0 somewhere); a string whose margin
//                     forbids violations can never produce a simulated one.
//
// All three are exact statements (no tolerance, no sampling error), so a
// single counterexample is a genuine bug in either the simulator or the
// analytic stack - which is precisely what a differential oracle is for.
//
// Faulted executions (check_execution with a FaultPlan) are projected with
// the execution's OBSERVED Delta — the max realized honest first-delivery
// delay outside crash shadows — against the EFFECTIVE schedule (down leaders
// forge nothing, so their leaderships leave the characteristic string):
//
//   * observed Delta <= configured Delta: the run is a legitimate
//     Delta-execution and every invariant above must hold unchanged;
//   * observed Delta beyond the bound: the run is flagged `degraded` (never a
//     silent pass) and re-projected at the observed Delta — the reduction is
//     defined for every finite Delta, so graceful degradation is itself an
//     invariant (code 'd' when it holds, '!' when it does not);
//   * some honest block never delivered at all (unhealed partition): no
//     finite Delta describes the run; it is flagged unchecked (code 'u').
//
// Heterogeneous executions (a non-degenerate RunConfig.net: gossip topology,
// per-link latency, bandwidth caps) grade through the same machinery: the
// Simulation's NetReport supplies the observed Delta — inflated for honest
// blocks still undelivered when the run ends, so the projection window stays
// open — and a run beyond the configured bound re-projects at that Delta
// (code 'd'). The topology set is strongly connected by construction, so a
// heterogeneous run is never unbounded ('u'): lateness, not partition.
#pragma once

#include <cstdint>
#include <memory>

#include "oracle/characteristic.hpp"
#include "protocol/adversary.hpp"
#include "protocol/faults/plan.hpp"
#include "protocol/net/config.hpp"

namespace mh::oracle {

/// The simulated strategies the oracle drives against the analytic side.
enum class Strategy : std::uint8_t { PrivateChain = 0, Balance = 1, Randomized = 2 };

const char* strategy_name(Strategy s) noexcept;

/// One scenario-cell execution recipe; `law` draws the leader schedule.
struct RunConfig {
  TetraLaw law;
  TieBreak tie_break = TieBreak::AdversarialOrder;
  Strategy strategy = Strategy::PrivateChain;
  std::size_t delta = 0;
  std::size_t target_slot = 2;  ///< the slot whose settlement is attacked
  std::size_t k = 6;            ///< confirmation depth of the settlement watch
  std::size_t horizon = 48;
  std::size_t honest_parties = 6;
  net::NetConfig net{};  ///< network shape; default = degenerate lockstep
};

/// The oracle's verdict on a single execution. All fields are pure functions
/// of (config, rng stream), so verdicts are bit-identical across thread
/// counts when the streams are counter-based.
struct RunVerdict {
  bool simulated_violation = false;  ///< watch fired or public fork tied
  bool analytic_allows = false;      ///< margin >= 0 somewhere in the window
  bool fork_valid = false;           ///< relabeled execution fork passes F1-F4
  bool margin_dominated = false;     ///< fork margin <= recurrence margin
  std::int64_t fork_margin = 0;      ///< mu_{x'} of the relabeled execution fork
  std::int64_t string_margin = 0;    ///< mu_{x'}(y') of the recurrence, full suffix

  // Fault / network audit (all false/0 for un-faulted degenerate executions).
  bool faulted = false;           ///< a FaultPlan perturbed this execution
  bool heterogeneous = false;     ///< a non-degenerate NetConfig shaped the transport
  bool degraded = false;          ///< observed Delta exceeded the configured bound
  bool delta_unbounded = false;   ///< an honest block was never delivered at all
  bool recovery_checked = false;  ///< degraded run re-projected at observed Delta
  std::uint32_t observed_delta = 0;   ///< max realized honest delay (counted)
  std::uint32_t resync_blocks = 0;    ///< blocks re-shipped by heal/restart re-sync
  std::uint32_t faults_injected = 0;  ///< drops + dups + delays + crash/restart events

  /// The domination invariant: no violation on a margin-forbidden string.
  /// For a degraded (recovery-checked) run the fields hold the observed-Delta
  /// projection, so this doubles as the graceful-degradation invariant.
  [[nodiscard]] bool dominated() const noexcept {
    return (!simulated_violation || analytic_allows) && fork_valid && margin_dominated;
  }

  /// Compact encoding for golden pinning: '.' quiet, 'a' margin allows but no
  /// simulated violation, 'V' simulated violation (analytic side agrees),
  /// '!' any invariant breach; faulted out-of-bound runs report 'd' (degraded
  /// gracefully: observed-Delta projection holds) or 'u' (unbounded observed
  /// Delta, projection undefined) — never a silent pass.
  [[nodiscard]] char code() const noexcept;

  friend bool operator==(const RunVerdict&, const RunVerdict&) = default;
};

/// Instantiates the simulated strategy for a cell (seed feeds Randomized).
std::unique_ptr<Adversary> make_strategy(Strategy strategy, const RunConfig& config,
                                         std::uint64_t seed);

/// Runs one seeded execution of `config` and both sides of the oracle. With a
/// FaultPlan the execution is perturbed and audited as documented above; a
/// null plan leaves every code path (and every rng draw) exactly as before.
RunVerdict check_execution(const RunConfig& config, Rng& rng,
                           const faults::FaultPlan* plan = nullptr);

namespace detail {
/// The analytic tail shared by every oracle entry point: project `schedule`
/// at `delta` against the target decomposition, run the Theorem-5 recurrence,
/// relabel the execution's block set through the reduction bijection, and
/// fill the verdict's analytic_allows / string_margin / fork_valid /
/// fork_margin / margin_dominated fields. Factored so the epoch-driven oracle
/// (oracle/epoch) grades its realized schedules through EXACTLY the code path
/// the pre-drawn oracle uses — bit-identical, not merely equivalent.
void grade_projection(const LeaderSchedule& schedule, std::size_t delta,
                      std::size_t target_slot, std::size_t k,
                      const std::vector<Block>& blocks, RunVerdict& verdict);
}  // namespace detail

}  // namespace mh::oracle
