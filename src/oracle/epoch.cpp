#include "oracle/epoch.hpp"

#include <algorithm>

#include "delta/reduction.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"

namespace mh::oracle {

namespace {

bool mass_within_band(std::size_t successes, std::size_t trials, double mass,
                      double confidence) {
  const Proportion band = clopper_pearson_interval(successes, trials, confidence);
  return band.lo <= mass && mass <= band.hi;
}

}  // namespace

EpochVerdict check_epoch_execution(const EpochRunConfig& config, Rng& rng) {
  MH_REQUIRE(config.target_slot >= 1 && config.k >= 1);
  MH_REQUIRE(config.target_slot + config.k <= config.horizon);
  config.consensus.validate();
  MH_REQUIRE_MSG(config.band_confidence > 0.0 && config.band_confidence < 1.0,
                 "band confidence must lie in (0, 1)");

  consensus::StakeRegistry registry =
      config.honest_stakes.empty()
          ? consensus::StakeRegistry::uniform(config.honest_parties, config.adversarial_stake)
          : consensus::StakeRegistry(config.honest_stakes, config.adversarial_stake);
  for (const consensus::StakeShiftSpec& spec : config.shifts) registry.add_shift(spec);

  EpochVerdict verdict;

  // --- protocol side: one seeded epoch-managed execution -------------------
  // Draw order mirrors check_execution (schedule seed, strategy seed, sim
  // seed), so the two oracle faces stay stream-compatible cell for cell.
  const consensus::EpochSchedule schedule(config.consensus, std::move(registry),
                                          config.horizon, rng());
  RunConfig proxy;  // make_strategy reads only the attack geometry
  proxy.target_slot = config.target_slot;
  proxy.k = config.k;
  const std::unique_ptr<Adversary> adversary = make_strategy(config.strategy, proxy, rng());
  Simulation sim(schedule, SimulationConfig{config.tie_break, rng()}, config.delta,
                 adversary.get());
  bool tied = false;
  {
    MH_OBS_TIMER("oracle.phase.simulate");
    sim.watch_settlement(config.target_slot, config.k);
    sim.run_until(config.target_slot + config.k);
    tied = sim.observed_settlement_violation(config.target_slot);
    sim.run_until(config.horizon);
  }
  verdict.run.simulated_violation = tied || sim.settlement_watch_violated(config.target_slot);

  // --- global grade: the realized schedule through the shared analytic tail
  // (the run materialized every epoch, so realized() covers the horizon).
  const LeaderSchedule realized = schedule.realized();
  detail::grade_projection(realized, config.delta, config.target_slot, config.k,
                           sim.all_blocks(), verdict.run);

  // --- per-epoch grade: realized frequencies vs the stake-induced law ------
  const TetraString chars = realized.characteristic();
  verdict.cells.reserve(schedule.materialized_epochs());
  for (std::size_t e = 0; e < schedule.materialized_epochs(); ++e) {
    EpochCell cell;
    cell.epoch = e;
    cell.nonce = schedule.epoch_nonce(e);
    const std::size_t lo = schedule.epochs().epoch_start(e);
    const std::size_t hi = std::min(schedule.epochs().epoch_end(e), config.horizon);
    cell.slots = hi - lo + 1;
    for (std::size_t slot = lo; slot <= hi; ++slot)
      ++cell.counts[static_cast<std::size_t>(chars.at(slot))];
    cell.induced = schedule.epoch_induced_law(e);
    cell.reduced = reduced_law(cell.induced, config.delta);
    const double masses[4] = {cell.induced.pBot, cell.induced.ph, cell.induced.pH,
                              cell.induced.pA};
    cell.law_within_band = true;
    for (std::size_t s = 0; s < 4; ++s)
      if (!mass_within_band(cell.counts[s], cell.slots, masses[s], config.band_confidence))
        cell.law_within_band = false;
    cell.graded = true;
    verdict.laws_within_band = verdict.laws_within_band && cell.law_within_band;
    verdict.cells.push_back(cell);
  }
  verdict.all_graded = schedule.materialized_epochs() == schedule.epoch_count();
  MH_OBS_COUNT("oracle.epoch_runs", 1);
  if (!verdict.all_graded) MH_OBS_COUNT("oracle.epoch_ungraded", 1);
  return verdict;
}

}  // namespace mh::oracle
