#include "protocol/network.hpp"

#include <algorithm>
#include <string>

#include "obs/obs.hpp"
#include "protocol/faults/injector.hpp"
#include "support/check.hpp"

namespace mh {

Network::Network(std::size_t parties, std::size_t delta, net::NetConfig config)
    : parties_(parties),
      delta_(delta),
      config_(config),
      hetero_(config.heterogeneous()),
      topology_(net::Topology::build(config.topology, parties, config.k, config.seed)),
      link_seeds_(config.seed),
      events_(parties),
      queues_(parties) {
  MH_REQUIRE_MSG(parties >= 1, "a network needs at least one party, got " +
                                   std::to_string(parties));
  config_.validate(parties);
  if (hetero_) egress_.resize(parties);
}

void Network::record(std::unordered_map<BlockHash, std::size_t>& sent, BlockHash hash,
                     std::size_t due) {
  const auto [it, inserted] = sent.try_emplace(hash, due);
  if (!inserted) it->second = std::min(it->second, due);
}

bool Network::covered(PartyId recipient, BlockHash hash, std::size_t due) const {
  if (covered_all(hash, due)) return true;
  const auto& sent = queues_[recipient].sent;
  const auto it = sent.find(hash);
  return it != sent.end() && it->second <= due;
}

bool Network::covered_all(BlockHash hash, std::size_t due) const {
  if (hash == genesis_block().hash) return true;
  const auto all = sent_all_.find(hash);
  return all != sent_all_.end() && all->second <= due;
}

// Shipping counters are aggregated at the broadcast/inject call sites (one
// add per round, not per push): push() runs millions of times per execution
// and a per-push hook alone costs ~2% wall-clock on the E14 acceptance cell.
void Network::push(PartyId recipient, const Block& block, std::size_t due) {
  events_.schedule(recipient, due, block);
}

void Network::record_recipient(PartyId recipient, BlockHash hash, std::size_t due) {
  RecipientQueue& queue = queues_[recipient];
  const auto [it, inserted] = queue.sent.try_emplace(hash, due);
  if (!inserted) {
    if (due >= it->second) return;  // no tightening: nothing new to expire
    it->second = due;
  }
  queue.sent_log.emplace_back(hash, due);
}

void Network::expire_watermarks(PartyId recipient, std::size_t slot) {
  // A per-recipient entry only beats sent_all_ for dues below the round's
  // maximum, and every query after `slot` uses a due past it; delta + 1 slots
  // after an entry's due it can no longer answer differently than a fresh
  // re-ship would, so dropping it is safe (worst case: a duplicate re-ship at
  // a position the seed transport always shipped).
  RecipientQueue& queue = queues_[recipient];
  while (!queue.sent_log.empty() && queue.sent_log.front().second + delta_ + 1 <= slot) {
    const auto [hash, due] = queue.sent_log.front();
    queue.sent_log.pop_front();
    const auto it = queue.sent.find(hash);
    if (it != queue.sent.end() && it->second == due) {
      queue.sent.erase(it);
      MH_OBS_COUNT("protocol.net.watermarks_expired", 1);
    }
  }
}

// A send during an active fault window may lose or skew individual links, so
// it must never advance sent_all_ (the all-recipient bound would overclaim
// coverage for a recipient whose ship was dropped); per-recipient watermarks
// record exactly what was actually scheduled.
bool Network::fault_window(std::size_t slot) const noexcept {
  return faults_ != nullptr && faults_->window_active(slot);
}

// The drop/dup/extra-delay decision for one honest ship; returns false when
// the ship is lost entirely (down recipient, severed link, or link drop).
bool Network::faulted_link(PartyId sender, PartyId recipient, std::size_t slot,
                           faults::LinkVerdict* verdict) {
  if (faults_->is_down(recipient, slot) || faults_->severed(sender, recipient, slot)) {
    ++faults_->stats().ships_dropped;
    MH_OBS_COUNT("protocol.faults.ships_dropped", 1);
    return false;
  }
  *verdict = faults_->link_verdict(sender, recipient, slot);
  if (verdict->drop) {
    ++faults_->stats().ships_dropped;
    MH_OBS_COUNT("protocol.faults.ships_dropped", 1);
    return false;
  }
  if (verdict->extra_delay != 0) {
    ++faults_->stats().ships_delayed;
    MH_OBS_COUNT("protocol.faults.ships_delayed", 1);
  }
  if (verdict->duplicate) {
    ++faults_->stats().ships_duplicated;
    MH_OBS_COUNT("protocol.faults.ships_duplicated", 1);
  }
  return true;
}

// --- heterogeneous (event-core gossip) path --------------------------------

std::size_t Network::egress_depart(PartyId sender, std::size_t slot) {
  const std::size_t cap = config_.bandwidth;
  if (cap == 0) return slot;
  Egress& egress = egress_[sender];
  // A counter behind the request slot is stale history; one at or past it is
  // spillover from this slot's (or an earlier slot's) over-cap sends.
  if (egress.slot < slot) {
    egress.slot = slot;
    egress.used = 0;
  }
  while (egress.used >= cap) {
    ++egress.slot;
    egress.used = 0;
    MH_OBS_COUNT("protocol.net.bandwidth_spills", 1);
  }
  ++egress.used;
  return egress.slot;
}

std::size_t Network::link_extra(std::size_t slot, PartyId sender, PartyId recipient) const {
  if (config_.latency.kind == net::LatencyKind::Degenerate) return config_.latency.fixed;
  // One draw per (slot, link): the link's delay at that slot, pure in the
  // scenario spec (same keying as the fault layer's link verdicts).
  Rng rng = link_seeds_.stream((slot * parties_ + sender) * parties_ + recipient);
  return config_.latency.draw(rng);
}

void Network::hetero_send(PartyId sender, PartyId recipient, const Block& block,
                          std::size_t slot, std::size_t adversary_delay,
                          std::size_t fault_extra, bool duplicate) {
  const std::size_t depart = egress_depart(sender, slot);
  const std::size_t due =
      depart + 1 + adversary_delay + fault_extra + link_extra(depart, sender, recipient);
  push(recipient, block, due);
  if (duplicate) push(recipient, block, due);
  queues_[recipient].scheduled.insert(block.hash);
}

void Network::hetero_broadcast_chain(const BlockTree& tree, const Block& block,
                                     std::size_t sent_slot,
                                     const std::vector<std::size_t>& per_recipient_delay) {
  const PartyId sender = block.issuer;
  MH_REQUIRE_MSG(sender < parties_,
                 "heterogeneous broadcast_chain needs an honest issuer, got party " +
                     std::to_string(sender) + " at slot " + std::to_string(sent_slot));
  // The forger self-accepts: its own coverage gains the block immediately, so
  // a neighbor's later relay back to it deduplicates.
  queues_[sender].scheduled.insert(block.hash);
  const bool faulted = fault_window(sent_slot);
  MH_OBS_ONLY(std::size_t shipped = 0;)
  topology_.for_each_neighbor(sender, [&](PartyId r) {
    const std::size_t delay = per_recipient_delay.empty() ? 0 : per_recipient_delay[r];
    MH_REQUIRE_MSG(delay <= delta_, "adversary delay " + std::to_string(delay) +
                                        " for party " + std::to_string(r) + " at slot " +
                                        std::to_string(sent_slot) +
                                        " exceeds Delta = " + std::to_string(delta_));
    faults::LinkVerdict link{};
    // A lost ship schedules nothing: the recipient's scheduled-set keeps the
    // gap, so the next broadcast or relay on this chain re-walks past it.
    if (faulted && !faulted_link(sender, r, sent_slot, &link)) return;
    auto& scheduled = queues_[r].scheduled;
    lift_scratch_.clear();
    BlockHash h = block.parent;
    for (; h != genesis_block().hash && scheduled.find(h) == scheduled.end();
         h = tree.block(h).parent)
      lift_scratch_.push_back(h);
    MH_OBS_HIST("protocol.net.chain_sync_depth", lift_scratch_.size());
    MH_OBS_ONLY(shipped += lift_scratch_.size() + 1;)
    for (std::size_t i = lift_scratch_.size(); i-- > 0;)
      hetero_send(sender, r, tree.block(lift_scratch_[i]), sent_slot, delay,
                  faulted ? link.extra_delay : 0, false);
    hetero_send(sender, r, block, sent_slot, delay, faulted ? link.extra_delay : 0,
                faulted && link.duplicate);
  });
  MH_OBS_COUNT("protocol.net.blocks_shipped", shipped);
}

void Network::hetero_relay(PartyId relayer, const Block& block, std::size_t slot) {
  const bool faulted = fault_window(slot);
  MH_OBS_ONLY(std::size_t relayed = 0;)
  topology_.for_each_neighbor(relayer, [&](PartyId neighbor) {
    auto& scheduled = queues_[neighbor].scheduled;
    if (scheduled.find(block.hash) != scheduled.end()) return;
    faults::LinkVerdict link{};
    if (faulted && !faulted_link(relayer, neighbor, slot, &link)) return;
    MH_OBS_ONLY(++relayed;)
    hetero_send(relayer, neighbor, block, slot, 0, faulted ? link.extra_delay : 0,
                faulted && link.duplicate);
  });
  MH_OBS_COUNT("protocol.net.blocks_relayed", relayed);
}

// --- broadcast entry points ------------------------------------------------

void Network::broadcast(const Block& block, std::size_t sent_slot,
                        const std::vector<std::size_t>& per_recipient_delay) {
  MH_REQUIRE_MSG(per_recipient_delay.empty() || per_recipient_delay.size() == parties_,
                 "delay vector covers " + std::to_string(per_recipient_delay.size()) +
                     " parties, network has " + std::to_string(parties_));
  MH_REQUIRE_MSG(block.slot <= sent_slot,
                 "non-monotone broadcast: party " + std::to_string(block.issuer) +
                     "'s slot-" + std::to_string(block.slot) +
                     " block cannot be sent at slot " + std::to_string(sent_slot));
  if (hetero_) {
    MH_OBS_COUNT("protocol.net.blocks_shipped", 1);
    const bool faulted = fault_window(sent_slot);
    if (block.issuer >= parties_) {
      // Adversarial source: direct channels to everyone (topology, latency,
      // and bandwidth never bind the coalition); only the configured
      // hold-back and a down endpoint apply.
      for (PartyId r = 0; r < parties_; ++r) {
        const std::size_t delay = per_recipient_delay.empty() ? 0 : per_recipient_delay[r];
        MH_REQUIRE_MSG(delay <= delta_, "adversary delay " + std::to_string(delay) +
                                            " for party " + std::to_string(r) +
                                            " at slot " + std::to_string(sent_slot) +
                                            " exceeds Delta = " + std::to_string(delta_));
        if (faulted && faults_->is_down(r, sent_slot)) continue;
        push(r, block, sent_slot + 1 + delay);
        queues_[r].scheduled.insert(block.hash);
      }
      return;
    }
    queues_[block.issuer].scheduled.insert(block.hash);
    topology_.for_each_neighbor(block.issuer, [&](PartyId r) {
      const std::size_t delay = per_recipient_delay.empty() ? 0 : per_recipient_delay[r];
      MH_REQUIRE_MSG(delay <= delta_, "adversary delay " + std::to_string(delay) +
                                          " for party " + std::to_string(r) + " at slot " +
                                          std::to_string(sent_slot) +
                                          " exceeds Delta = " + std::to_string(delta_));
      faults::LinkVerdict link{};
      if (faulted && !faulted_link(block.issuer, r, sent_slot, &link)) return;
      hetero_send(block.issuer, r, block, sent_slot, delay,
                  faulted ? link.extra_delay : 0, faulted && link.duplicate);
    });
    return;
  }
  MH_OBS_COUNT("protocol.net.blocks_shipped", parties_);
  const bool faulted = fault_window(sent_slot);
  if (per_recipient_delay.empty() && !faulted) {
    const std::size_t due = sent_slot + 1;
    for (PartyId r = 0; r < parties_; ++r) push(r, block, due);
    // The block carries no ancestry here; it is chain-complete for all
    // recipients only if its parent already is by the same due.
    if (covered_all(block.parent, due)) record(sent_all_, block.hash, due);
    return;
  }
  std::size_t due_max = sent_slot + 1;
  for (PartyId r = 0; r < parties_; ++r) {
    const std::size_t delay = per_recipient_delay.empty() ? 0 : per_recipient_delay[r];
    MH_REQUIRE_MSG(delay <= delta_, "adversary delay " + std::to_string(delay) +
                                        " for party " + std::to_string(r) + " at slot " +
                                        std::to_string(sent_slot) +
                                        " exceeds Delta = " + std::to_string(delta_));
    std::size_t due = sent_slot + 1 + delay;
    faults::LinkVerdict link;
    if (faulted) {
      if (!faulted_link(block.issuer, r, sent_slot, &link)) continue;
      due += link.extra_delay;
    }
    due_max = std::max(due_max, due);
    push(r, block, due);
    if (faulted && link.duplicate) push(r, block, due);
    if (covered(r, block.parent, due)) record_recipient(r, block.hash, due);
  }
  if (!faulted && covered_all(block.parent, due_max)) record(sent_all_, block.hash, due_max);
}

void Network::broadcast_chain(const BlockTree& tree, const Block& block, std::size_t sent_slot,
                              const std::vector<std::size_t>& per_recipient_delay) {
  MH_REQUIRE_MSG(per_recipient_delay.empty() || per_recipient_delay.size() == parties_,
                 "delay vector covers " + std::to_string(per_recipient_delay.size()) +
                     " parties, network has " + std::to_string(parties_));
  MH_REQUIRE_MSG(block.slot <= sent_slot,
                 "non-monotone broadcast: party " + std::to_string(block.issuer) +
                     "'s slot-" + std::to_string(block.slot) +
                     " block cannot be sent at slot " + std::to_string(sent_slot));
  if (hetero_) {
    hetero_broadcast_chain(tree, block, sent_slot, per_recipient_delay);
    return;
  }
  const bool faulted = fault_window(sent_slot);
  // An all-equal delay vector (adversaries often return all-zeros) is a
  // uniform broadcast: handle it on the fast path so the per-recipient
  // watermark maps stay empty — sent_all_ alone carries the coverage. Inside
  // a fault window the round is never uniform: individual links may drop.
  const bool uniform =
      !faulted &&
      (per_recipient_delay.empty() ||
       std::all_of(per_recipient_delay.begin(), per_recipient_delay.end(),
                   [&](std::size_t d) { return d == per_recipient_delay.front(); }));
  if (uniform) {
    const std::size_t delay = per_recipient_delay.empty() ? 0 : per_recipient_delay.front();
    MH_REQUIRE_MSG(delay <= delta_, "adversary delay " + std::to_string(delay) +
                                        " at slot " + std::to_string(sent_slot) +
                                        " exceeds Delta = " + std::to_string(delta_));
    // One watermark walk covers every recipient.
    const std::size_t due = sent_slot + 1 + delay;
    lift_scratch_.clear();
    BlockHash h = block.parent;
    for (; !covered_all(h, due); h = tree.block(h).parent) lift_scratch_.push_back(h);
    MH_OBS_HIST("protocol.net.chain_sync_depth", lift_scratch_.size());
    MH_OBS_COUNT("protocol.net.blocks_shipped", (lift_scratch_.size() + 1) * parties_);
    // The walk stopping short of genesis means a watermark answered it.
    if (h != genesis_block().hash) MH_OBS_COUNT("protocol.net.watermark_hits", 1);
    for (std::size_t i = lift_scratch_.size(); i-- > 0;) {
      const Block& ancestor = tree.block(lift_scratch_[i]);
      for (PartyId r = 0; r < parties_; ++r) push(r, ancestor, due);
      record(sent_all_, ancestor.hash, due);
    }
    for (PartyId r = 0; r < parties_; ++r) push(r, block, due);
    record(sent_all_, block.hash, due);
    return;
  }

  std::size_t due_max = sent_slot + 1;
  MH_OBS_ONLY(std::size_t shipped = 0;)
  for (PartyId r = 0; r < parties_; ++r) {
    const std::size_t delay = per_recipient_delay.empty() ? 0 : per_recipient_delay[r];
    MH_REQUIRE_MSG(delay <= delta_, "adversary delay " + std::to_string(delay) +
                                        " for party " + std::to_string(r) + " at slot " +
                                        std::to_string(sent_slot) +
                                        " exceeds Delta = " + std::to_string(delta_));
    std::size_t due = sent_slot + 1 + delay;
    faults::LinkVerdict link;
    if (faulted) {
      // A lost ship records nothing: the next broadcast on this chain walks
      // past the gap and re-ships the whole missing suffix to this recipient.
      if (!faulted_link(block.issuer, r, sent_slot, &link)) continue;
      due += link.extra_delay;
    }
    due_max = std::max(due_max, due);
    lift_scratch_.clear();
    BlockHash h = block.parent;
    for (; h != genesis_block().hash && !covered(r, h, due); h = tree.block(h).parent)
      lift_scratch_.push_back(h);
    MH_OBS_HIST("protocol.net.chain_sync_depth", lift_scratch_.size());
    MH_OBS_ONLY(shipped += lift_scratch_.size() + 1;)
    if (h != genesis_block().hash) MH_OBS_COUNT("protocol.net.watermark_hits", 1);
    for (std::size_t i = lift_scratch_.size(); i-- > 0;) {
      push(r, tree.block(lift_scratch_[i]), due);
      record_recipient(r, lift_scratch_[i], due);
    }
    push(r, block, due);
    if (faulted && link.duplicate) push(r, block, due);
    record_recipient(r, block.hash, due);
  }
  MH_OBS_COUNT("protocol.net.blocks_shipped", shipped);
  // After the round every recipient holds the block with full ancestry by the
  // latest due, so the all-recipient bound tightens (and future walks stop on
  // it instead of consulting per-recipient state). Not during a fault window:
  // dropped links mean the round did NOT cover every recipient.
  if (faulted) return;
  for (BlockHash h = block.parent; !covered_all(h, due_max); h = tree.block(h).parent)
    record(sent_all_, h, due_max);
  record(sent_all_, block.hash, due_max);
}

void Network::inject(const Block& block, PartyId recipient, std::size_t visible_slot) {
  MH_REQUIRE_MSG(recipient < parties_,
                 "injection for unknown party " + std::to_string(recipient) +
                     " (network has " + std::to_string(parties_) + " parties)");
  MH_REQUIRE_MSG(visible_slot >= block.slot,
                 "non-monotone injection: a slot-" + std::to_string(block.slot) +
                     " block cannot be visible at slot " + std::to_string(visible_slot));
  // Partitions never sever adversarial channels (the coalition keeps links
  // into every component), but a crashed endpoint receives nothing.
  if (faults_ != nullptr && faults_->is_down(recipient, visible_slot)) {
    ++faults_->stats().ships_dropped;
    MH_OBS_COUNT("protocol.faults.ships_dropped", 1);
    return;
  }
  MH_OBS_COUNT("protocol.net.blocks_shipped", 1);
  push(recipient, block, visible_slot);
  if (hetero_) {
    queues_[recipient].scheduled.insert(block.hash);
    return;
  }
  // Watermarks must stay chain-complete: a partial disclosure (parent not
  // covered) is NOT recorded, so later honest broadcasts re-ship the prefix.
  if (covered(recipient, block.parent, visible_slot))
    record_recipient(recipient, block.hash, visible_slot);
}

void Network::inject_all(const Block& block, std::size_t visible_slot) {
  MH_REQUIRE_MSG(visible_slot >= block.slot,
                 "non-monotone injection: a slot-" + std::to_string(block.slot) +
                     " block cannot be visible at slot " + std::to_string(visible_slot));
  MH_OBS_COUNT("protocol.net.blocks_shipped", parties_);
  const bool faulted = fault_window(visible_slot);
  if (hetero_) {
    for (PartyId r = 0; r < parties_; ++r) {
      if (faulted && faults_->is_down(r, visible_slot)) {
        ++faults_->stats().ships_dropped;
        MH_OBS_COUNT("protocol.faults.ships_dropped", 1);
        continue;
      }
      push(r, block, visible_slot);
      queues_[r].scheduled.insert(block.hash);
    }
    return;
  }
  // When the parent is covered for everyone, the all-recipient record alone
  // carries the coverage — per-recipient entries would be strictly redundant.
  // A fault window disables it: a down recipient's ship is dropped.
  const bool all_covered = !faulted && covered_all(block.parent, visible_slot);
  for (PartyId r = 0; r < parties_; ++r) {
    if (faulted && faults_->is_down(r, visible_slot)) {
      ++faults_->stats().ships_dropped;
      MH_OBS_COUNT("protocol.faults.ships_dropped", 1);
      continue;
    }
    push(r, block, visible_slot);
    if (!all_covered && covered(r, block.parent, visible_slot))
      record_recipient(r, block.hash, visible_slot);
  }
  if (all_covered) record(sent_all_, block.hash, visible_slot);
}

void Network::crash_recipient(PartyId recipient) {
  MH_REQUIRE_MSG(recipient < parties_,
                 "crash for unknown party " + std::to_string(recipient) +
                     " (network has " + std::to_string(parties_) + " parties)");
  RecipientQueue& queue = queues_[recipient];
  // Volatile endpoint state is lost: queued deliveries and the coverage that
  // claimed they were scheduled. The all-recipient bound covers this
  // recipient's wiped in-flight messages too, so it must be invalidated —
  // conservatively for everyone, which only costs re-ships.
  const std::size_t invalidated =
      queue.sent.size() + sent_all_.size() + queue.scheduled.size();
  if (faults_ != nullptr) faults_->stats().watermarks_invalidated += invalidated;
  MH_OBS_COUNT("protocol.faults.watermarks_invalidated", invalidated);
  events_.wipe(recipient);
  queue.sent.clear();
  queue.sent_log.clear();
  queue.scheduled.clear();
  sent_all_.clear();
}

void Network::resync_ship(const Block& block, PartyId recipient, std::size_t slot) {
  MH_REQUIRE_MSG(recipient < parties_,
                 "re-sync for unknown party " + std::to_string(recipient) +
                     " (network has " + std::to_string(parties_) + " parties)");
  push(recipient, block, slot);
  if (hetero_)
    queues_[recipient].scheduled.insert(block.hash);
  else
    record_recipient(recipient, block.hash, slot);
  if (faults_ != nullptr) ++faults_->stats().resync_blocks;
  MH_OBS_COUNT("protocol.faults.resync_blocks", 1);
}

std::vector<Block> Network::collect(PartyId recipient, std::size_t slot) {
  std::vector<Block> due;
  collect_into(recipient, slot, &due);
  return due;
}

void Network::collect_into(PartyId recipient, std::size_t slot, std::vector<Block>* out) {
  MH_REQUIRE_MSG(recipient < parties_,
                 "collect for unknown party " + std::to_string(recipient) +
                     " (network has " + std::to_string(parties_) + " parties)");
  if (!hetero_) expire_watermarks(recipient, slot);
  out->clear();
  events_.collect_due(recipient, slot, out);
  // Gossip forwarding: every pop is this recipient's first sight of the
  // block (the scheduled-set deduplicated earlier copies), so it relays to
  // the neighbors that still lack it. Relay dues are >= slot + 1, so the
  // cascade never re-enters this slot's collect.
  if (hetero_)
    for (const Block& block : *out) hetero_relay(recipient, block, slot);
}

}  // namespace mh
