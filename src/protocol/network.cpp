#include "protocol/network.hpp"

#include "support/check.hpp"

namespace mh {

Network::Network(std::size_t parties, std::size_t delta)
    : parties_(parties), delta_(delta), queues_(parties) {
  MH_REQUIRE(parties >= 1);
}

void Network::broadcast(const Block& block, std::size_t sent_slot,
                        const std::vector<std::size_t>& per_recipient_delay) {
  MH_REQUIRE(per_recipient_delay.empty() || per_recipient_delay.size() == parties_);
  for (PartyId r = 0; r < parties_; ++r) {
    std::size_t delay = per_recipient_delay.empty() ? 0 : per_recipient_delay[r];
    MH_REQUIRE_MSG(delay <= delta_, "adversary may not delay past Delta");
    queues_[r].push_back(Pending{block, sent_slot + 1 + delay});
  }
}

void Network::inject(const Block& block, PartyId recipient, std::size_t visible_slot) {
  MH_REQUIRE(recipient < parties_);
  queues_[recipient].push_back(Pending{block, visible_slot});
}

void Network::inject_all(const Block& block, std::size_t visible_slot) {
  for (PartyId r = 0; r < parties_; ++r) queues_[r].push_back(Pending{block, visible_slot});
}

std::vector<Block> Network::collect(PartyId recipient, std::size_t slot) {
  MH_REQUIRE(recipient < parties_);
  std::vector<Block> due;
  auto& queue = queues_[recipient];
  std::vector<Pending> keep;
  keep.reserve(queue.size());
  for (Pending& p : queue) {
    if (p.due <= slot)
      due.push_back(p.block);
    else
      keep.push_back(p);
  }
  queue.swap(keep);
  return due;
}

}  // namespace mh
