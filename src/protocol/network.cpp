#include "protocol/network.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "protocol/faults/injector.hpp"
#include "support/check.hpp"

namespace mh {

Network::Network(std::size_t parties, std::size_t delta)
    : parties_(parties), delta_(delta), queues_(parties) {
  MH_REQUIRE(parties >= 1);
}

void Network::record(std::unordered_map<BlockHash, std::size_t>& sent, BlockHash hash,
                     std::size_t due) {
  const auto [it, inserted] = sent.try_emplace(hash, due);
  if (!inserted) it->second = std::min(it->second, due);
}

bool Network::covered(PartyId recipient, BlockHash hash, std::size_t due) const {
  if (covered_all(hash, due)) return true;
  const auto& sent = queues_[recipient].sent;
  const auto it = sent.find(hash);
  return it != sent.end() && it->second <= due;
}

bool Network::covered_all(BlockHash hash, std::size_t due) const {
  if (hash == genesis_block().hash) return true;
  const auto all = sent_all_.find(hash);
  return all != sent_all_.end() && all->second <= due;
}

// Shipping counters are aggregated at the broadcast/inject call sites (one
// add per round, not per push): push() runs millions of times per execution
// and a per-push hook alone costs ~2% wall-clock on the E14 acceptance cell.
void Network::push(PartyId recipient, const Block& block, std::size_t due) {
  queues_[recipient].buckets[due].push_back(block);
}

void Network::record_recipient(PartyId recipient, BlockHash hash, std::size_t due) {
  RecipientQueue& queue = queues_[recipient];
  const auto [it, inserted] = queue.sent.try_emplace(hash, due);
  if (!inserted) {
    if (due >= it->second) return;  // no tightening: nothing new to expire
    it->second = due;
  }
  queue.sent_log.emplace_back(hash, due);
}

void Network::expire_watermarks(PartyId recipient, std::size_t slot) {
  // A per-recipient entry only beats sent_all_ for dues below the round's
  // maximum, and every query after `slot` uses a due past it; delta + 1 slots
  // after an entry's due it can no longer answer differently than a fresh
  // re-ship would, so dropping it is safe (worst case: a duplicate re-ship at
  // a position the seed transport always shipped).
  RecipientQueue& queue = queues_[recipient];
  while (!queue.sent_log.empty() && queue.sent_log.front().second + delta_ + 1 <= slot) {
    const auto [hash, due] = queue.sent_log.front();
    queue.sent_log.pop_front();
    const auto it = queue.sent.find(hash);
    if (it != queue.sent.end() && it->second == due) {
      queue.sent.erase(it);
      MH_OBS_COUNT("protocol.net.watermarks_expired", 1);
    }
  }
}

// A send during an active fault window may lose or skew individual links, so
// it must never advance sent_all_ (the all-recipient bound would overclaim
// coverage for a recipient whose ship was dropped); per-recipient watermarks
// record exactly what was actually scheduled.
bool Network::fault_window(std::size_t slot) const noexcept {
  return faults_ != nullptr && faults_->window_active(slot);
}

// The drop/dup/extra-delay decision for one honest ship; returns false when
// the ship is lost entirely (down recipient, severed link, or link drop).
bool Network::faulted_link(PartyId sender, PartyId recipient, std::size_t slot,
                           faults::LinkVerdict* verdict) {
  if (faults_->is_down(recipient, slot) || faults_->severed(sender, recipient, slot)) {
    ++faults_->stats().ships_dropped;
    MH_OBS_COUNT("protocol.faults.ships_dropped", 1);
    return false;
  }
  *verdict = faults_->link_verdict(sender, recipient, slot);
  if (verdict->drop) {
    ++faults_->stats().ships_dropped;
    MH_OBS_COUNT("protocol.faults.ships_dropped", 1);
    return false;
  }
  if (verdict->extra_delay != 0) {
    ++faults_->stats().ships_delayed;
    MH_OBS_COUNT("protocol.faults.ships_delayed", 1);
  }
  if (verdict->duplicate) {
    ++faults_->stats().ships_duplicated;
    MH_OBS_COUNT("protocol.faults.ships_duplicated", 1);
  }
  return true;
}

void Network::broadcast(const Block& block, std::size_t sent_slot,
                        const std::vector<std::size_t>& per_recipient_delay) {
  MH_REQUIRE(per_recipient_delay.empty() || per_recipient_delay.size() == parties_);
  MH_REQUIRE_MSG(block.slot <= sent_slot,
                 "non-monotone broadcast: a block cannot be sent before its own slot");
  MH_OBS_COUNT("protocol.net.blocks_shipped", parties_);
  const bool faulted = fault_window(sent_slot);
  if (per_recipient_delay.empty() && !faulted) {
    const std::size_t due = sent_slot + 1;
    for (PartyId r = 0; r < parties_; ++r) push(r, block, due);
    // The block carries no ancestry here; it is chain-complete for all
    // recipients only if its parent already is by the same due.
    if (covered_all(block.parent, due)) record(sent_all_, block.hash, due);
    return;
  }
  std::size_t due_max = sent_slot + 1;
  for (PartyId r = 0; r < parties_; ++r) {
    const std::size_t delay = per_recipient_delay.empty() ? 0 : per_recipient_delay[r];
    MH_REQUIRE_MSG(delay <= delta_, "adversary may not delay past Delta");
    std::size_t due = sent_slot + 1 + delay;
    faults::LinkVerdict link;
    if (faulted) {
      if (!faulted_link(block.issuer, r, sent_slot, &link)) continue;
      due += link.extra_delay;
    }
    due_max = std::max(due_max, due);
    push(r, block, due);
    if (faulted && link.duplicate) push(r, block, due);
    if (covered(r, block.parent, due)) record_recipient(r, block.hash, due);
  }
  if (!faulted && covered_all(block.parent, due_max)) record(sent_all_, block.hash, due_max);
}

void Network::broadcast_chain(const BlockTree& tree, const Block& block, std::size_t sent_slot,
                              const std::vector<std::size_t>& per_recipient_delay) {
  MH_REQUIRE(per_recipient_delay.empty() || per_recipient_delay.size() == parties_);
  MH_REQUIRE_MSG(block.slot <= sent_slot,
                 "non-monotone broadcast: a block cannot be sent before its own slot");
  const bool faulted = fault_window(sent_slot);
  // An all-equal delay vector (adversaries often return all-zeros) is a
  // uniform broadcast: handle it on the fast path so the per-recipient
  // watermark maps stay empty — sent_all_ alone carries the coverage. Inside
  // a fault window the round is never uniform: individual links may drop.
  const bool uniform =
      !faulted &&
      (per_recipient_delay.empty() ||
       std::all_of(per_recipient_delay.begin(), per_recipient_delay.end(),
                   [&](std::size_t d) { return d == per_recipient_delay.front(); }));
  if (uniform) {
    const std::size_t delay = per_recipient_delay.empty() ? 0 : per_recipient_delay.front();
    MH_REQUIRE_MSG(delay <= delta_, "adversary may not delay past Delta");
    // One watermark walk covers every recipient.
    const std::size_t due = sent_slot + 1 + delay;
    lift_scratch_.clear();
    BlockHash h = block.parent;
    for (; !covered_all(h, due); h = tree.block(h).parent) lift_scratch_.push_back(h);
    MH_OBS_HIST("protocol.net.chain_sync_depth", lift_scratch_.size());
    MH_OBS_COUNT("protocol.net.blocks_shipped", (lift_scratch_.size() + 1) * parties_);
    // The walk stopping short of genesis means a watermark answered it.
    if (h != genesis_block().hash) MH_OBS_COUNT("protocol.net.watermark_hits", 1);
    for (std::size_t i = lift_scratch_.size(); i-- > 0;) {
      const Block& ancestor = tree.block(lift_scratch_[i]);
      for (PartyId r = 0; r < parties_; ++r) push(r, ancestor, due);
      record(sent_all_, ancestor.hash, due);
    }
    for (PartyId r = 0; r < parties_; ++r) push(r, block, due);
    record(sent_all_, block.hash, due);
    return;
  }

  std::size_t due_max = sent_slot + 1;
  MH_OBS_ONLY(std::size_t shipped = 0;)
  for (PartyId r = 0; r < parties_; ++r) {
    const std::size_t delay = per_recipient_delay.empty() ? 0 : per_recipient_delay[r];
    MH_REQUIRE_MSG(delay <= delta_, "adversary may not delay past Delta");
    std::size_t due = sent_slot + 1 + delay;
    faults::LinkVerdict link;
    if (faulted) {
      // A lost ship records nothing: the next broadcast on this chain walks
      // past the gap and re-ships the whole missing suffix to this recipient.
      if (!faulted_link(block.issuer, r, sent_slot, &link)) continue;
      due += link.extra_delay;
    }
    due_max = std::max(due_max, due);
    lift_scratch_.clear();
    BlockHash h = block.parent;
    for (; h != genesis_block().hash && !covered(r, h, due); h = tree.block(h).parent)
      lift_scratch_.push_back(h);
    MH_OBS_HIST("protocol.net.chain_sync_depth", lift_scratch_.size());
    MH_OBS_ONLY(shipped += lift_scratch_.size() + 1;)
    if (h != genesis_block().hash) MH_OBS_COUNT("protocol.net.watermark_hits", 1);
    for (std::size_t i = lift_scratch_.size(); i-- > 0;) {
      push(r, tree.block(lift_scratch_[i]), due);
      record_recipient(r, lift_scratch_[i], due);
    }
    push(r, block, due);
    if (faulted && link.duplicate) push(r, block, due);
    record_recipient(r, block.hash, due);
  }
  MH_OBS_COUNT("protocol.net.blocks_shipped", shipped);
  // After the round every recipient holds the block with full ancestry by the
  // latest due, so the all-recipient bound tightens (and future walks stop on
  // it instead of consulting per-recipient state). Not during a fault window:
  // dropped links mean the round did NOT cover every recipient.
  if (faulted) return;
  for (BlockHash h = block.parent; !covered_all(h, due_max); h = tree.block(h).parent)
    record(sent_all_, h, due_max);
  record(sent_all_, block.hash, due_max);
}

void Network::inject(const Block& block, PartyId recipient, std::size_t visible_slot) {
  MH_REQUIRE(recipient < parties_);
  MH_REQUIRE_MSG(visible_slot >= block.slot,
                 "non-monotone injection: a block cannot be visible before its own slot");
  // Partitions never sever adversarial channels (the coalition keeps links
  // into every component), but a crashed endpoint receives nothing.
  if (faults_ != nullptr && faults_->is_down(recipient, visible_slot)) {
    ++faults_->stats().ships_dropped;
    MH_OBS_COUNT("protocol.faults.ships_dropped", 1);
    return;
  }
  MH_OBS_COUNT("protocol.net.blocks_shipped", 1);
  push(recipient, block, visible_slot);
  // Watermarks must stay chain-complete: a partial disclosure (parent not
  // covered) is NOT recorded, so later honest broadcasts re-ship the prefix.
  if (covered(recipient, block.parent, visible_slot))
    record_recipient(recipient, block.hash, visible_slot);
}

void Network::inject_all(const Block& block, std::size_t visible_slot) {
  MH_REQUIRE_MSG(visible_slot >= block.slot,
                 "non-monotone injection: a block cannot be visible before its own slot");
  MH_OBS_COUNT("protocol.net.blocks_shipped", parties_);
  const bool faulted = fault_window(visible_slot);
  // When the parent is covered for everyone, the all-recipient record alone
  // carries the coverage — per-recipient entries would be strictly redundant.
  // A fault window disables it: a down recipient's ship is dropped.
  const bool all_covered = !faulted && covered_all(block.parent, visible_slot);
  for (PartyId r = 0; r < parties_; ++r) {
    if (faulted && faults_->is_down(r, visible_slot)) {
      ++faults_->stats().ships_dropped;
      MH_OBS_COUNT("protocol.faults.ships_dropped", 1);
      continue;
    }
    push(r, block, visible_slot);
    if (!all_covered && covered(r, block.parent, visible_slot))
      record_recipient(r, block.hash, visible_slot);
  }
  if (all_covered) record(sent_all_, block.hash, visible_slot);
}

void Network::crash_recipient(PartyId recipient) {
  MH_REQUIRE(recipient < parties_);
  RecipientQueue& queue = queues_[recipient];
  // Volatile endpoint state is lost: queued deliveries and the chain-sync
  // watermarks that claimed they were scheduled. The all-recipient bound
  // covers this recipient's wiped in-flight messages too, so it must be
  // invalidated — conservatively for everyone, which only costs re-ships.
  const std::size_t invalidated = queue.sent.size() + sent_all_.size();
  if (faults_ != nullptr) faults_->stats().watermarks_invalidated += invalidated;
  MH_OBS_COUNT("protocol.faults.watermarks_invalidated", invalidated);
  queue.buckets.clear();
  queue.sent.clear();
  queue.sent_log.clear();
  sent_all_.clear();
}

void Network::resync_ship(const Block& block, PartyId recipient, std::size_t slot) {
  MH_REQUIRE(recipient < parties_);
  push(recipient, block, slot);
  record_recipient(recipient, block.hash, slot);
  if (faults_ != nullptr) ++faults_->stats().resync_blocks;
  MH_OBS_COUNT("protocol.faults.resync_blocks", 1);
}

std::vector<Block> Network::collect(PartyId recipient, std::size_t slot) {
  std::vector<Block> due;
  collect_into(recipient, slot, &due);
  return due;
}

void Network::collect_into(PartyId recipient, std::size_t slot, std::vector<Block>* out) {
  MH_REQUIRE(recipient < parties_);
  expire_watermarks(recipient, slot);
  out->clear();
  auto& buckets = queues_[recipient].buckets;
  while (!buckets.empty()) {
    const auto first = buckets.begin();
    if (first->first > slot) break;
    if (out->empty() && first->second.size() >= out->capacity())
      *out = std::move(first->second);
    else
      out->insert(out->end(), first->second.begin(), first->second.end());
    buckets.erase(first);
  }
}

}  // namespace mh
