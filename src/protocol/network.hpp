// The slot-synchronous network with a rushing adversary (axiom A0) and its
// Delta-delay relaxation (axiom A4_Delta).
//
// Honest broadcasts in slot t are guaranteed to reach every party by the onset
// of slot t + 1 + Delta; within that window the adversary picks the exact
// per-recipient delivery slot, may inject its own blocks for any recipient at
// any slot, and chooses the per-recipient ordering of each slot's deliveries
// (the tie-breaking lever of the settlement game).
//
// Transport complexity: deliveries are kept in per-recipient slot buckets, so
// collect() pops exactly the due buckets — O(due + log pending-slots) instead
// of a scan of everything in flight. The "messages are chains" guarantee is
// preserved by broadcast_chain() + per-recipient delivered watermarks: a
// forger ships, per recipient, only the ancestors that recipient has not
// already been scheduled to receive by the block's own due slot (ordered
// ancestors-first), so per-slot traffic is proportional to NEWLY forged
// blocks, not to chain history.
//
// Ordering contract: a recipient's deliveries are ordered by due slot, then
// by scheduling order within the slot (the adversary orders a slot's
// deliveries by choosing insertion time). Drivers that collect every slot —
// the Simulation does — observe exactly the seed transport's order.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "protocol/block.hpp"
#include "protocol/blocktree.hpp"

namespace mh {

class Network {
 public:
  Network(std::size_t parties, std::size_t delta);

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }
  [[nodiscard]] std::size_t delta() const noexcept { return delta_; }

  /// Honest broadcast at slot `sent_slot`; `delay[r]` in [0, delta] is the
  /// adversary's extra hold-back for recipient r (empty = no extra delay).
  /// Ships the block alone (no ancestry).
  void broadcast(const Block& block, std::size_t sent_slot,
                 const std::vector<std::size_t>& per_recipient_delay = {});

  /// Chain-synced broadcast of a freshly forged block: ships `block` plus,
  /// per recipient, exactly the ancestors (resolved through `tree`) that the
  /// recipient has not already been scheduled to receive by the block's due
  /// slot — ancestors first, so no honest block ever arrives parentless.
  /// Amortized O(parties) per call once the chain prefix has been synced.
  void broadcast_chain(const BlockTree& tree, const Block& block, std::size_t sent_slot,
                       const std::vector<std::size_t>& per_recipient_delay = {});

  /// Adversarial targeted injection, visible to `recipient` at `visible_slot`.
  void inject(const Block& block, PartyId recipient, std::size_t visible_slot);

  /// Adversarial injection to everyone at the given slot.
  void inject_all(const Block& block, std::size_t visible_slot);

  /// Deliveries for `recipient` due at the onset of `slot` (due bucket pops;
  /// see the ordering contract above).
  [[nodiscard]] std::vector<Block> collect(PartyId recipient, std::size_t slot);

  /// Allocation-free collect for the simulation hot loop.
  void collect_into(PartyId recipient, std::size_t slot, std::vector<Block>* out);

 private:
  struct RecipientQueue {
    /// due slot -> blocks scheduled for that onset, in scheduling order.
    std::map<std::size_t, std::vector<Block>> buckets;
    /// Chain-complete watermark: sent[h] = d means this recipient has been
    /// scheduled to receive h AND its whole ancestry by due slot <= d.
    /// Only populated when coverage differs from the all-recipient bound,
    /// and entries expire delta + 1 slots past their due (see sent_log):
    /// dropping a watermark is always safe — it only makes a later
    /// broadcast_chain re-ship a duplicate the seed transport shipped anyway.
    std::unordered_map<BlockHash, std::size_t> sent;
    /// FIFO of (hash, due) insertions backing the expiry sweep in collect.
    std::deque<std::pair<BlockHash, std::size_t>> sent_log;
  };

  /// Is `hash` (with full ancestry) scheduled for `recipient` by `due`?
  [[nodiscard]] bool covered(PartyId recipient, BlockHash hash, std::size_t due) const;
  /// Is `hash` (with full ancestry) scheduled for EVERY recipient by `due`?
  /// Genesis is always covered, so ancestry walks terminate on it.
  [[nodiscard]] bool covered_all(BlockHash hash, std::size_t due) const;
  /// Record a chain-complete ship, keeping the tightest (smallest) due.
  static void record(std::unordered_map<BlockHash, std::size_t>& sent, BlockHash hash,
                     std::size_t due);
  /// `record` into a recipient's map, logging the insertion for expiry.
  void record_recipient(PartyId recipient, BlockHash hash, std::size_t due);
  /// Drop per-recipient watermarks whose due lies delta + 1 slots behind.
  void expire_watermarks(PartyId recipient, std::size_t slot);
  void push(PartyId recipient, const Block& block, std::size_t due);

  std::size_t parties_;
  std::size_t delta_;
  std::vector<RecipientQueue> queues_;  // per recipient
  /// Chain-complete watermark valid for EVERY recipient (bound on the max of
  /// the per-recipient dues); keeps the uniform-broadcast fast path O(1).
  std::unordered_map<BlockHash, std::size_t> sent_all_;
  std::vector<BlockHash> lift_scratch_;  ///< ancestors pending ship, reused
};

}  // namespace mh
