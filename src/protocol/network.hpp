// The protocol transport: a façade over the discrete-event network core in
// src/protocol/net/.
//
// Every scheduled send is a net::EventCore delivery keyed (due slot, global
// seq); what varies between configurations is WHO a send reaches and WHEN it
// lands:
//
//   * Degenerate NetConfig (full mesh, zero extra latency, unlimited
//     bandwidth — the default): the slot-synchronous network with a rushing
//     adversary (axiom A0) and its Delta-delay relaxation (A4_Delta). Honest
//     broadcasts in slot t reach every party by the onset of t + 1 + Delta;
//     within that window the adversary picks per-recipient delivery slots,
//     may inject its own blocks anywhere, and orders each slot's deliveries
//     (the tie-breaking lever of the settlement game). This path is
//     contractually BIT-IDENTICAL to the pre-event-core slot-bucket
//     transport: the (due, seq) pop order reproduces "due ascending, then
//     insertion order within a due" exactly, and the golden transport digest
//     pins enforce it.
//
//   * Heterogeneous NetConfig: sends follow the net::Topology (sender ships
//     to its out-neighbors only), every link send draws a capped
//     net::LatencyLaw extra delay from a counter-based stream keyed
//     (slot, sender, recipient), egress beyond the per-party bandwidth cap
//     spills into later slots, and recipients RELAY each first-seen delivery
//     onward (multi-hop gossip; per-recipient scheduled-sets deduplicate).
//     The synchrony bound is no longer configured — it is RECOVERED as the
//     observed maximum adoption delay, which is the Delta the oracle grades
//     the run at (see Simulation::net_report).
//
// Chain-sync: honest participants broadcast *chains* (the model's messages
// are blockchains). The degenerate path ships, per recipient, only the
// ancestors not already scheduled by the block's due slot, tracked by
// delivered watermarks (per-recipient + an all-recipient bound; entries
// expire delta + 1 slots past their due). The heterogeneous path tracks a
// binary per-recipient scheduled-set instead — latency draws can reorder
// arrivals, so a due-bounded watermark would overclaim; out-of-order
// arrivals park in the node's orphan buffer until ancestry lands.
//
// Fault layer: with a faults::FaultInjector attached, every honest link send
// — first-hop and relay alike — consults it with the same (slot, sender,
// recipient) keying. During an active fault window the degenerate path ships
// per-recipient only (drops make a round's coverage non-uniform, so the
// all-recipient bound must not advance), dropped ships record no watermark,
// and a crash wipes the recipient's volatile state — queued deliveries,
// watermarks, scheduled-set — forcing a re-sync (resync_ship) on restart.
// With no injector attached every code path below is byte-identical to the
// un-faulted transport. Adversarial injections and re-sync ships are direct
// channels: they bypass topology, latency, and bandwidth in every mode.
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/seed_sequence.hpp"
#include "protocol/block.hpp"
#include "protocol/blocktree.hpp"
#include "protocol/net/config.hpp"
#include "protocol/net/event_core.hpp"
#include "protocol/net/topology.hpp"

namespace mh {

namespace faults {
class FaultInjector;
struct LinkVerdict;
}  // namespace faults

class Network {
 public:
  Network(std::size_t parties, std::size_t delta, net::NetConfig config = {});

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }
  [[nodiscard]] std::size_t delta() const noexcept { return delta_; }
  [[nodiscard]] const net::NetConfig& net_config() const noexcept { return config_; }
  [[nodiscard]] const net::Topology& topology() const noexcept { return topology_; }
  /// Is this a non-degenerate (gossip/latency/bandwidth) configuration?
  [[nodiscard]] bool heterogeneous() const noexcept { return hetero_; }

  /// Attach (or detach, with nullptr) the fault layer. The injector is
  /// consulted on every send and outlives the Network (the Simulation owns
  /// neither; the caller guarantees lifetime).
  void attach_faults(faults::FaultInjector* faults) noexcept { faults_ = faults; }
  [[nodiscard]] faults::FaultInjector* fault_injector() const noexcept { return faults_; }

  /// Honest broadcast at slot `sent_slot`; `delay[r]` in [0, delta] is the
  /// adversary's extra hold-back for recipient r (empty = no extra delay).
  /// Ships the block alone (no ancestry). Heterogeneous mode ships to the
  /// issuer's out-neighbors (an adversarial issuer keeps direct channels).
  void broadcast(const Block& block, std::size_t sent_slot,
                 const std::vector<std::size_t>& per_recipient_delay = {});

  /// Chain-synced broadcast of a freshly forged block: ships `block` plus,
  /// per reachable recipient, exactly the ancestors that recipient has not
  /// already been scheduled to receive — ancestors first on every link, so a
  /// single-hop bundle never arrives parentless (multi-hop races can still
  /// reorder; the node's orphan buffer absorbs them). Amortized O(parties)
  /// per call once the chain prefix has been synced.
  void broadcast_chain(const BlockTree& tree, const Block& block, std::size_t sent_slot,
                       const std::vector<std::size_t>& per_recipient_delay = {});

  /// Adversarial targeted injection, visible to `recipient` at `visible_slot`
  /// (which cannot precede the block's own slot: the rushing adversary sees a
  /// block the instant it exists, never before). A direct channel in every
  /// mode — no topology, latency, or bandwidth applies.
  void inject(const Block& block, PartyId recipient, std::size_t visible_slot);

  /// Adversarial injection to everyone at the given slot.
  void inject_all(const Block& block, std::size_t visible_slot);

  /// Crash `recipient`: its undelivered queue, chain-sync watermarks, and
  /// scheduled-set are volatile endpoint state and are lost. The
  /// all-recipient bound covered this recipient's wiped in-flight messages
  /// too, so it is invalidated as well (for everyone — a dropped watermark
  /// only ever costs a re-ship).
  void crash_recipient(PartyId recipient);

  /// Re-sync delivery on heal/restart: schedule `block` for `recipient` at
  /// the onset of `slot` and advance its coverage. Callers ship ancestors
  /// first (or blocks whose ancestry the recipient already holds), keeping
  /// the chain-complete contract.
  void resync_ship(const Block& block, PartyId recipient, std::size_t slot);

  /// Deliveries for `recipient` due at the onset of `slot`, in (due, seq)
  /// event order. In heterogeneous mode each first-seen pop is relayed to
  /// the recipient's out-neighbors that lack it (due >= slot + 1, so relay
  /// cascades never loop within a slot).
  [[nodiscard]] std::vector<Block> collect(PartyId recipient, std::size_t slot);

  /// Allocation-free collect for the simulation hot loop.
  void collect_into(PartyId recipient, std::size_t slot, std::vector<Block>* out);

 private:
  struct RecipientQueue {
    /// Chain-complete watermark (degenerate mode): sent[h] = d means this
    /// recipient has been scheduled to receive h AND its whole ancestry by
    /// due slot <= d. Only populated when coverage differs from the
    /// all-recipient bound, and entries expire delta + 1 slots past their
    /// due (see sent_log): dropping a watermark is always safe — it only
    /// makes a later broadcast_chain re-ship a duplicate the seed transport
    /// shipped anyway.
    std::unordered_map<BlockHash, std::size_t> sent;
    /// FIFO of (hash, due) insertions backing the expiry sweep in collect.
    std::deque<std::pair<BlockHash, std::size_t>> sent_log;
    /// Binary coverage (heterogeneous mode): every block ever scheduled for
    /// delivery to this recipient, at whatever due. Deduplicates gossip
    /// relays and bounds chain-sync walks.
    std::unordered_set<BlockHash> scheduled;
  };

  /// Is `hash` (with full ancestry) scheduled for `recipient` by `due`?
  [[nodiscard]] bool covered(PartyId recipient, BlockHash hash, std::size_t due) const;
  /// Is `hash` (with full ancestry) scheduled for EVERY recipient by `due`?
  /// Genesis is always covered, so ancestry walks terminate on it.
  [[nodiscard]] bool covered_all(BlockHash hash, std::size_t due) const;
  /// Record a chain-complete ship, keeping the tightest (smallest) due.
  static void record(std::unordered_map<BlockHash, std::size_t>& sent, BlockHash hash,
                     std::size_t due);
  /// `record` into a recipient's map, logging the insertion for expiry.
  void record_recipient(PartyId recipient, BlockHash hash, std::size_t due);
  /// Drop per-recipient watermarks whose due lies delta + 1 slots behind.
  void expire_watermarks(PartyId recipient, std::size_t slot);
  void push(PartyId recipient, const Block& block, std::size_t due);
  /// Is a fault able to touch sends at `slot`? (Forces the per-recipient path.)
  [[nodiscard]] bool fault_window(std::size_t slot) const noexcept;
  /// Resolve one honest link's fault verdict; false = the ship is lost.
  bool faulted_link(PartyId sender, PartyId recipient, std::size_t slot,
                    faults::LinkVerdict* verdict);

  // --- heterogeneous (event-core gossip) path ------------------------------
  /// The slot this send actually departs: at most `bandwidth` blocks leave a
  /// party per slot; excess spills FIFO into later slots. Departure requests
  /// per party arrive at non-decreasing slots (the simulation is a forward
  /// slot loop), so one rolling (slot, used) counter suffices.
  std::size_t egress_depart(PartyId sender, std::size_t slot);
  /// The capped extra delay of (sender -> recipient) at `slot`: one
  /// counter-based draw keyed (slot, sender, recipient) — a property of the
  /// link and slot, pure in the scenario spec.
  [[nodiscard]] std::size_t link_extra(std::size_t slot, PartyId sender,
                                       PartyId recipient) const;
  /// Ship one block on one honest link: bandwidth, then latency, then the
  /// fault verdict's extra delay; marks the recipient's scheduled-set.
  void hetero_send(PartyId sender, PartyId recipient, const Block& block,
                   std::size_t slot, std::size_t adversary_delay, std::size_t fault_extra,
                   bool duplicate);
  void hetero_broadcast_chain(const BlockTree& tree, const Block& block,
                              std::size_t sent_slot,
                              const std::vector<std::size_t>& per_recipient_delay);
  /// Gossip forwarding of a first-seen delivery (issuer-blind: adversarial
  /// blocks relay too — delivering MORE is always within the model).
  void hetero_relay(PartyId relayer, const Block& block, std::size_t slot);

  std::size_t parties_;
  std::size_t delta_;
  net::NetConfig config_;
  bool hetero_ = false;
  net::Topology topology_;
  engine::SeedSequence link_seeds_;          ///< per-(slot, link) latency streams
  faults::FaultInjector* faults_ = nullptr;  // may be null (the common case)
  net::EventCore events_;                    ///< the per-recipient delivery queues
  std::vector<RecipientQueue> queues_;       // per-recipient coverage state
  struct Egress {
    std::size_t slot = 0;
    std::size_t used = 0;
  };
  std::vector<Egress> egress_;  ///< rolling bandwidth counters (hetero only)
  /// Chain-complete watermark valid for EVERY recipient (bound on the max of
  /// the per-recipient dues); keeps the uniform-broadcast fast path O(1).
  std::unordered_map<BlockHash, std::size_t> sent_all_;
  std::vector<BlockHash> lift_scratch_;  ///< ancestors pending ship, reused
};

}  // namespace mh
