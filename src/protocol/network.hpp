// The slot-synchronous network with a rushing adversary (axiom A0) and its
// Delta-delay relaxation (axiom A4_Delta).
//
// Honest broadcasts in slot t are guaranteed to reach every party by the onset
// of slot t + 1 + Delta; within that window the adversary picks the exact
// per-recipient delivery slot, may inject its own blocks for any recipient at
// any slot, and chooses the per-recipient ordering of each slot's deliveries
// (the tie-breaking lever of the settlement game).
//
// Transport complexity: deliveries are kept in per-recipient slot buckets, so
// collect() pops exactly the due buckets — O(due + log pending-slots) instead
// of a scan of everything in flight. The "messages are chains" guarantee is
// preserved by broadcast_chain() + per-recipient delivered watermarks: a
// forger ships, per recipient, only the ancestors that recipient has not
// already been scheduled to receive by the block's own due slot (ordered
// ancestors-first), so per-slot traffic is proportional to NEWLY forged
// blocks, not to chain history.
//
// Ordering contract: a recipient's deliveries are ordered by due slot, then
// by scheduling order within the slot (the adversary orders a slot's
// deliveries by choosing insertion time). Drivers that collect every slot —
// the Simulation does — observe exactly the seed transport's order.
//
// Fault layer: with a faults::FaultInjector attached, every send consults it.
// During an active fault window shipping takes the per-recipient path only
// (drops and per-link extra delays make a round's coverage non-uniform, so
// the all-recipient bound must not advance), dropped ships record no
// watermark (later broadcasts re-ship the prefix), and a crash wipes the
// recipient's volatile state — queued deliveries and watermarks — forcing a
// re-sync (resync_ship) when the node restarts. With no injector attached
// every code path below is byte-identical to the un-faulted transport.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "protocol/block.hpp"
#include "protocol/blocktree.hpp"

namespace mh {

namespace faults {
class FaultInjector;
struct LinkVerdict;
}  // namespace faults

class Network {
 public:
  Network(std::size_t parties, std::size_t delta);

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }
  [[nodiscard]] std::size_t delta() const noexcept { return delta_; }

  /// Attach (or detach, with nullptr) the fault layer. The injector is
  /// consulted on every send and outlives the Network (the Simulation owns
  /// neither; the caller guarantees lifetime).
  void attach_faults(faults::FaultInjector* faults) noexcept { faults_ = faults; }
  [[nodiscard]] faults::FaultInjector* fault_injector() const noexcept { return faults_; }

  /// Honest broadcast at slot `sent_slot`; `delay[r]` in [0, delta] is the
  /// adversary's extra hold-back for recipient r (empty = no extra delay).
  /// Ships the block alone (no ancestry).
  void broadcast(const Block& block, std::size_t sent_slot,
                 const std::vector<std::size_t>& per_recipient_delay = {});

  /// Chain-synced broadcast of a freshly forged block: ships `block` plus,
  /// per recipient, exactly the ancestors (resolved through `tree`) that the
  /// recipient has not already been scheduled to receive by the block's due
  /// slot — ancestors first, so no honest block ever arrives parentless.
  /// Amortized O(parties) per call once the chain prefix has been synced.
  void broadcast_chain(const BlockTree& tree, const Block& block, std::size_t sent_slot,
                       const std::vector<std::size_t>& per_recipient_delay = {});

  /// Adversarial targeted injection, visible to `recipient` at `visible_slot`
  /// (which cannot precede the block's own slot: the rushing adversary sees a
  /// block the instant it exists, never before).
  void inject(const Block& block, PartyId recipient, std::size_t visible_slot);

  /// Adversarial injection to everyone at the given slot.
  void inject_all(const Block& block, std::size_t visible_slot);

  /// Crash `recipient`: its undelivered buckets and chain-sync watermarks are
  /// volatile endpoint state and are lost. The all-recipient bound covered
  /// this recipient's wiped in-flight messages too, so it is invalidated as
  /// well (for everyone — a dropped watermark only ever costs a re-ship).
  void crash_recipient(PartyId recipient);

  /// Re-sync delivery on heal/restart: schedule `block` for `recipient` at
  /// the onset of `slot` and advance its watermark. Callers ship ancestors
  /// first (or blocks whose ancestry the recipient already holds), keeping
  /// the chain-complete contract.
  void resync_ship(const Block& block, PartyId recipient, std::size_t slot);

  /// Deliveries for `recipient` due at the onset of `slot` (due bucket pops;
  /// see the ordering contract above).
  [[nodiscard]] std::vector<Block> collect(PartyId recipient, std::size_t slot);

  /// Allocation-free collect for the simulation hot loop.
  void collect_into(PartyId recipient, std::size_t slot, std::vector<Block>* out);

 private:
  struct RecipientQueue {
    /// due slot -> blocks scheduled for that onset, in scheduling order.
    std::map<std::size_t, std::vector<Block>> buckets;
    /// Chain-complete watermark: sent[h] = d means this recipient has been
    /// scheduled to receive h AND its whole ancestry by due slot <= d.
    /// Only populated when coverage differs from the all-recipient bound,
    /// and entries expire delta + 1 slots past their due (see sent_log):
    /// dropping a watermark is always safe — it only makes a later
    /// broadcast_chain re-ship a duplicate the seed transport shipped anyway.
    std::unordered_map<BlockHash, std::size_t> sent;
    /// FIFO of (hash, due) insertions backing the expiry sweep in collect.
    std::deque<std::pair<BlockHash, std::size_t>> sent_log;
  };

  /// Is `hash` (with full ancestry) scheduled for `recipient` by `due`?
  [[nodiscard]] bool covered(PartyId recipient, BlockHash hash, std::size_t due) const;
  /// Is `hash` (with full ancestry) scheduled for EVERY recipient by `due`?
  /// Genesis is always covered, so ancestry walks terminate on it.
  [[nodiscard]] bool covered_all(BlockHash hash, std::size_t due) const;
  /// Record a chain-complete ship, keeping the tightest (smallest) due.
  static void record(std::unordered_map<BlockHash, std::size_t>& sent, BlockHash hash,
                     std::size_t due);
  /// `record` into a recipient's map, logging the insertion for expiry.
  void record_recipient(PartyId recipient, BlockHash hash, std::size_t due);
  /// Drop per-recipient watermarks whose due lies delta + 1 slots behind.
  void expire_watermarks(PartyId recipient, std::size_t slot);
  void push(PartyId recipient, const Block& block, std::size_t due);
  /// Is a fault able to touch sends at `slot`? (Forces the per-recipient path.)
  [[nodiscard]] bool fault_window(std::size_t slot) const noexcept;
  /// Resolve one honest link's fault verdict; false = the ship is lost.
  bool faulted_link(PartyId sender, PartyId recipient, std::size_t slot,
                    faults::LinkVerdict* verdict);

  std::size_t parties_;
  std::size_t delta_;
  faults::FaultInjector* faults_ = nullptr;  // may be null (the common case)
  std::vector<RecipientQueue> queues_;       // per recipient
  /// Chain-complete watermark valid for EVERY recipient (bound on the max of
  /// the per-recipient dues); keeps the uniform-broadcast fast path O(1).
  std::unordered_map<BlockHash, std::size_t> sent_all_;
  std::vector<BlockHash> lift_scratch_;  ///< ancestors pending ship, reused
};

}  // namespace mh
