// The slot-synchronous network with a rushing adversary (axiom A0) and its
// Delta-delay relaxation (axiom A4_Delta).
//
// Honest broadcasts in slot t are guaranteed to reach every party by the onset
// of slot t + 1 + Delta; within that window the adversary picks the exact
// per-recipient delivery slot, may inject its own blocks for any recipient at
// any slot, and chooses the per-recipient ordering of each slot's deliveries
// (the tie-breaking lever of the settlement game).
#pragma once

#include <cstddef>
#include <vector>

#include "protocol/block.hpp"

namespace mh {

class Network {
 public:
  Network(std::size_t parties, std::size_t delta);

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }
  [[nodiscard]] std::size_t delta() const noexcept { return delta_; }

  /// Honest broadcast at slot `sent_slot`; `delay[r]` in [0, delta] is the
  /// adversary's extra hold-back for recipient r (empty = no extra delay).
  void broadcast(const Block& block, std::size_t sent_slot,
                 const std::vector<std::size_t>& per_recipient_delay = {});

  /// Adversarial targeted injection, visible to `recipient` at `visible_slot`.
  void inject(const Block& block, PartyId recipient, std::size_t visible_slot);

  /// Adversarial injection to everyone at the given slot.
  void inject_all(const Block& block, std::size_t visible_slot);

  /// Deliveries for `recipient` due at the onset of `slot`, in the order they
  /// were scheduled (the adversary schedules last-minute injections first or
  /// last as it pleases by choosing insertion time).
  [[nodiscard]] std::vector<Block> collect(PartyId recipient, std::size_t slot);

 private:
  struct Pending {
    Block block;
    std::size_t due;
  };
  std::size_t parties_;
  std::size_t delta_;
  std::vector<std::vector<Pending>> queues_;  // per recipient
};

}  // namespace mh
