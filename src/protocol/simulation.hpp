// The protocol execution driver: slot loop, delivery, forging, adversarial
// hooks, and the consistency measurements the benches report.
//
// Per slot t (matching Section 2's model):
//   1. due messages are delivered to each honest node (adversary-ordered);
//   2. the adversary acts (rushing: it has already seen everything broadcast
//      in earlier slots, may mint on adversarial leaderships and inject);
//   3. every honest leader of slot t forges one block on its best chain;
//      under AdversarialOrder the adversary breaks maximum-length ties
//      (axiom A0); under ConsistentHash the minimal head hash wins (A0');
//   4. honest blocks are broadcast; the adversary picks per-recipient delays
//      in [0, Delta] and observes the new blocks immediately.
//
// Per-slot cost is proportional to the slot's NEW blocks (chain-synced
// bucketed transport + incremental BlockTree), not to chain history.
#pragma once

#include <memory>
#include <vector>

#include "protocol/faults/injector.hpp"
#include "protocol/leader.hpp"
#include "protocol/network.hpp"
#include "protocol/node.hpp"

namespace mh {

class Simulation;

/// Adversarial strategy interface. The default implementations are the
/// "null" adversary: no minting, no delays, ties broken by arrival order.
class Adversary {
 public:
  virtual ~Adversary() = default;
  virtual void begin(Simulation&) {}
  /// Start of slot t, after deliveries, before honest forging.
  virtual void on_slot_begin(std::size_t, Simulation&) {}
  /// Rushing observation of a slot-t honest block; returns per-recipient extra
  /// delays in [0, Delta] (empty = deliver everywhere at t+1).
  virtual std::vector<std::size_t> delivery_delays(const Block&, std::size_t, Simulation&) {
    return {};
  }
  /// Axiom A0 tie-breaking: choose among the node's maximum-length heads
  /// (given in arrival order).
  virtual BlockHash break_tie(PartyId, const std::vector<BlockHash>& candidates, Simulation&) {
    return candidates.front();
  }
};

struct SimulationConfig {
  TieBreak tie_break = TieBreak::AdversarialOrder;
  std::uint64_t seed = 42;
};

/// What the fault layer observed over one faulted execution: the realized
/// synchrony bound plus the recovery accounting. `observed_delta` is the max
/// delay until a node could first ADOPT an honest block (chain-complete
/// acceptance — raw arrival undercounts: a partially-leaked block sits in the
/// orphan buffer extending nothing, and the observed-Delta fork projection
/// would then claim a synchrony the execution never had). Slots the recipient
/// spent crashed are discounted from the delay — a down endpoint cannot
/// receive and the restart re-sync delivers promptly — but only those slots:
/// a crash late in the window must not excuse the up slots during which the
/// network simply failed to deliver. `delivery_unbounded` flags
/// an honest block some up node could never adopt at all (an unhealed
/// partition or a link drop on a dead branch): observed Delta is infinite.
struct FaultReport {
  bool faulted = false;
  std::size_t observed_delta = 0;
  bool delivery_unbounded = false;
  std::size_t leaderships_skipped = 0;
  faults::FaultStats stats;
};

/// What a heterogeneous (non-degenerate NetConfig) execution realized as its
/// synchrony bound. `observed_delta` starts from the same chain-complete
/// adoption maximum the fault layer counts; honest blocks some up node has
/// STILL not adopted when the run ends inflate it to `last onset - forge
/// slot - down slots` — the smallest delay a future adoption could realize —
/// so the projection window stays open and the oracle never grades a gossip
/// run at a synchrony it has already beaten. Multi-hop topologies therefore
/// always grade ('d' at worst), never unbounded ('u'): every shape here is
/// strongly connected, so non-delivery is lateness, not partition.
struct NetReport {
  bool heterogeneous = false;
  std::size_t observed_delta = 0;
  std::size_t pending_inflations = 0;  ///< (block, node) pairs still undelivered
};

class Simulation {
 public:
  /// `delta` is the network delay bound (0 = synchronous). `faults`, when
  /// non-null, perturbs the execution per its FaultPlan (the injector must
  /// outlive the Simulation); fault events apply at slot onsets, before
  /// deliveries and forging. `net` selects the network shape; the default is
  /// the degenerate lockstep configuration (bit-identical to the pre-event-
  /// core transport), anything else runs the gossip paths and tracks the
  /// observed Delta for net_report().
  Simulation(const ScheduleSource& schedule, SimulationConfig config, std::size_t delta,
             Adversary* adversary, faults::FaultInjector* faults = nullptr,
             net::NetConfig net = {});

  void run();                          ///< all slots 1..horizon
  void run_until(std::size_t slot);    ///< slots up to and including `slot`

  [[nodiscard]] std::size_t current_slot() const noexcept { return next_slot_ - 1; }
  [[nodiscard]] const ScheduleSource& schedule() const noexcept { return schedule_; }
  [[nodiscard]] Network& network() noexcept { return network_; }
  [[nodiscard]] const std::vector<HonestNode>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] TieBreak tie_break() const noexcept { return config_.tie_break; }

  /// Adversarial minting on an eligible slot; the block is recorded but NOT
  /// delivered (use network().inject*). The adversary can mint any number of
  /// blocks per adversarial leadership, on any parent it has seen.
  Block mint_adversarial(BlockHash parent, std::size_t slot, std::uint64_t payload);

  /// The omniscient view: every block ever forged or minted.
  [[nodiscard]] const BlockTree& global_tree() const noexcept { return global_tree_; }
  [[nodiscard]] const std::vector<Block>& all_blocks() const noexcept { return all_blocks_; }

  /// The public view: every block accepted by at least one honest node,
  /// whether on first delivery or later via an orphan flush.
  [[nodiscard]] const BlockTree& public_tree() const noexcept { return public_tree_; }

  // --- consistency measurements -------------------------------------------

  /// Definition 3 on the *public* fork (all blocks delivered to at least one
  /// honest node): two maximum-length public chains diverging prior to slot s.
  /// This is what the settlement game checks — either chain could be handed to
  /// an honest observer by ordering deliveries.
  [[nodiscard]] bool observed_settlement_violation(std::size_t s) const;

  /// Register a settlement watch BEFORE running: from the first observation at
  /// or after the close of slot s + k, remember the slot-s prefix adopted by
  /// maximal honest chains; the watch fires if that prefix ever changes
  /// (a reorg past the confirmation depth) or two maximal nodes disagree.
  void watch_settlement(std::size_t s, std::size_t k);
  [[nodiscard]] bool settlement_watch_violated(std::size_t s) const;

  /// Largest depth-k common-prefix breach among honest chains: do two adopted
  /// chains differ in a block at slot <= l(head) - k (k-CP^slot across nodes)?
  [[nodiscard]] bool observed_cp_slot_violation(std::size_t k) const;

  /// Max over pairs of honest chains of l(t1) - l(common ancestor).
  [[nodiscard]] std::size_t observed_slot_divergence() const;

  /// The fault layer's end-of-run audit (trivial when no injector attached):
  /// runs the non-delivery sweep lazily, so call it after the run completes.
  [[nodiscard]] FaultReport fault_report() const;

  /// The heterogeneous network's end-of-run audit: the observed Delta with
  /// pending-delivery inflation (see NetReport). Trivial for degenerate
  /// configurations; call it after the run completes.
  [[nodiscard]] NetReport net_report() const;

 private:
  void step();
  void deliver_due(std::size_t slot);
  /// Crash / restart / heal events due at the onset of `slot`, plus the
  /// re-sync shipping they trigger.
  void apply_fault_events(std::size_t slot);
  /// Ship `party` every public-view block missing from its tree, ancestors
  /// first (the public arrival order is parents-first), due at `slot`.
  void resync_node(PartyId party, std::size_t slot);
  void check_watches(std::size_t onset_slot);
  /// Mirror a node-accepted block into the public tree; out-of-order arrivals
  /// are buffered and flushed like a node's own orphan set.
  void public_add(const Block& block);
  /// The distinct best heads currently adopted across the honest nodes.
  [[nodiscard]] std::vector<BlockHash> distinct_best_heads() const;
  /// The slot-s prefix (deepest block with slot <= s) of the chain at `head`.
  [[nodiscard]] BlockHash prefix_at(BlockHash head, std::size_t s) const;

  struct Watch {
    std::size_t s = 0;
    std::size_t k = 0;
    bool has_record = false;
    BlockHash recorded_prefix = 0;
    bool violated = false;
  };

  const ScheduleSource& schedule_;
  SimulationConfig config_;
  Network network_;
  Adversary* adversary_;               // may be null
  faults::FaultInjector* faults_;      // may be null (the common case)
  bool fault_active_ = false;          ///< faults_ set AND its plan non-empty
  bool hetero_ = false;                ///< non-degenerate NetConfig attached
  std::vector<HonestNode> nodes_;
  std::size_t observed_delta_ = 0;     ///< max counted honest acceptance delay
  std::size_t leaderships_skipped_ = 0;
  std::vector<PartyId> fault_scratch_;  ///< crash/restart event list reuse
  BlockTree global_tree_;
  BlockTree public_tree_;  ///< blocks accepted by at least one honest node
  OrphanBuffer public_orphans_;
  std::vector<Block> all_blocks_;
  std::vector<Watch> watches_;
  std::vector<Block> delivery_scratch_;  ///< collect_into reuse
  std::vector<Block> accepted_scratch_;  ///< receive-accepted reuse
  Rng rng_;
  std::size_t next_slot_ = 1;
};

}  // namespace mh
