#include "protocol/adversary.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mh {

PrivateChainAdversary::PrivateChainAdversary(std::size_t target_slot,
                                             std::size_t confirmation_depth)
    : target_slot_(target_slot), confirmation_depth_(confirmation_depth) {
  MH_REQUIRE(target_slot >= 1);
}

void PrivateChainAdversary::on_slot_begin(std::size_t slot, Simulation& sim) {
  if (!forked_ && slot >= target_slot_) {
    // Fork from the best public chain as seen at the onset of the target slot.
    std::size_t best = 0;
    BlockHash head = genesis_block().hash;
    for (const HonestNode& node : sim.nodes())
      if (node.best_length() >= best) {
        best = node.best_length();
        head = node.best_head();
      }
    fork_point_ = head;
    fork_point_length_ = best;
    private_tip_ = head;
    private_length_ = best;
    forked_ = true;
  }
  if (!forked_ || released_) return;

  if (sim.schedule().leaders(slot).adversarial) {
    private_tip_ = sim.mint_adversarial(private_tip_, slot, payload_++).hash;
    ++private_length_;
  }

  std::size_t public_best = 0;
  for (const HonestNode& node : sim.nodes())
    public_best = std::max(public_best, node.best_length());

  if (slot > target_slot_ + confirmation_depth_ && private_length_ >= public_best &&
      private_length_ > fork_point_length_) {
    // Reveal the whole private chain; every node sees a maximal-length chain
    // that diverges before the target slot.
    for (BlockHash h : sim.global_tree().chain(private_tip_)) {
      if (sim.global_tree().length(h) <= fork_point_length_) continue;
      sim.network().inject_all(sim.global_tree().block(h), slot);
    }
    released_ = true;
  }
}

void BalanceAttacker::absorb_new_blocks(const Simulation& sim) {
  const std::vector<Block>& blocks = sim.all_blocks();
  for (; seen_blocks_ < blocks.size(); ++seen_blocks_) {
    const Block& b = blocks[seen_blocks_];
    if (b.hash == genesis_block().hash) continue;
    const int branch = branch_of(sim, b.hash);
    const std::size_t len = sim.global_tree().length(b.hash);
    if (branch == 1 && len > len_a_) {
      len_a_ = len;
      tip_a_ = b.hash;
    } else if (branch == 2 && len > len_b_) {
      len_b_ = len;
      tip_b_ = b.hash;
    }
  }
}

int BalanceAttacker::branch_of(const Simulation& sim, BlockHash h) {
  if (h == genesis_block().hash) return 0;
  const auto cached = branch_.find(h);
  if (cached != branch_.end()) return cached->second;

  const BlockHash parent = sim.global_tree().block(h).parent;
  int branch;
  if (parent == genesis_block().hash) {
    // A fresh child of genesis founds branch A, then branch B; later children
    // are folded into the currently shorter branch.
    if (root_a_ == 0) {
      root_a_ = h;
      branch = 1;
    } else if (root_b_ == 0) {
      root_b_ = h;
      branch = 2;
    } else {
      branch = len_a_ <= len_b_ ? 1 : 2;
    }
  } else {
    branch = branch_of(sim, parent);
  }
  branch_[h] = branch;
  return branch;
}

void BalanceAttacker::on_slot_begin(std::size_t slot, Simulation& sim) {
  absorb_new_blocks(sim);
  if (!sim.schedule().leaders(slot).adversarial) return;

  auto extend = [&](BlockHash& tip, std::size_t& len, bool is_branch_a) {
    BlockHash parent = tip != 0 ? tip : genesis_block().hash;
    if (sim.global_tree().block(parent).slot >= slot) return;  // already minted here
    const Block b = sim.mint_adversarial(parent, slot, payload_++);
    sim.network().inject_all(b, slot);
    tip = b.hash;
    len = sim.global_tree().length(b.hash);
    branch_[b.hash] = is_branch_a ? 1 : 2;
    if (is_branch_a && root_a_ == 0) root_a_ = b.hash;
    if (!is_branch_a && root_b_ == 0) root_b_ = b.hash;
  };

  // Re-level the lagging branch, or grow both in lockstep when level (an
  // adversarial leadership may issue one block per chain). Decisions are made
  // on a snapshot so the second extension cannot overshoot the first.
  const std::size_t la = len_a_, lb = len_b_;
  if (la < lb) {
    extend(tip_a_, len_a_, true);
  } else if (lb < la) {
    extend(tip_b_, len_b_, false);
  } else {
    extend(tip_a_, len_a_, true);
    extend(tip_b_, len_b_, false);
  }
}

BlockHash BalanceAttacker::break_tie(PartyId, const std::vector<BlockHash>& candidates,
                                     Simulation& sim) {
  absorb_new_blocks(sim);
  // Alternate the preferred branch so concurrent leaders of one slot extend
  // different branches; within the preference, pick any candidate on it.
  const int preferred = (tie_calls_++ % 2 == 0) ? (len_a_ <= len_b_ ? 1 : 2)
                                                : (len_a_ <= len_b_ ? 2 : 1);
  for (BlockHash h : candidates)
    if (branch_of(sim, h) == preferred) return h;
  return candidates.front();
}

void RandomizedAdversary::on_slot_begin(std::size_t slot, Simulation& sim) {
  if (!sim.schedule().leaders(slot).adversarial) return;
  const std::size_t delta = sim.network().delta();

  // Candidate parents: the current maximum-length heads (aggressive play),
  // occasionally widened by a uniformly random earlier block (explorative
  // play); either way the label-increase axiom is respected.
  std::vector<BlockHash> parents;
  for (BlockHash h : sim.global_tree().max_length_heads())
    if (sim.global_tree().block(h).slot < slot) parents.push_back(h);
  if (parents.empty() || rng_.bernoulli(0.25)) {
    const std::vector<Block>& blocks = sim.all_blocks();
    for (int tries = 0; tries < 4; ++tries) {
      const Block& b = blocks[rng_.below(blocks.size())];
      if (b.slot < slot) {
        parents.push_back(b.hash);
        break;
      }
    }
  }
  if (parents.empty()) return;

  const BlockHash parent = parents[rng_.below(parents.size())];
  const Block block = sim.mint_adversarial(parent, slot, payload_++);
  ++minted_;

  // Release policy: keep private, leak to one victim, or publish the whole
  // chain (ancestors ship along so no recipient sees an orphan), with an
  // adversary-chosen visibility slot within the Delta window.
  switch (rng_.below(4)) {
    case 0: break;  // stay private; a later mint may still publish ancestors
    case 1: {
      const PartyId victim = static_cast<PartyId>(rng_.below(sim.nodes().size()));
      const std::size_t visible = slot + rng_.below(delta + 1);
      for (BlockHash h : sim.global_tree().chain(block.hash))
        if (h != genesis_block().hash)
          sim.network().inject(sim.global_tree().block(h), victim, visible);
      break;
    }
    default: {
      const std::size_t visible = slot + rng_.below(delta + 1);
      for (BlockHash h : sim.global_tree().chain(block.hash))
        if (h != genesis_block().hash)
          sim.network().inject_all(sim.global_tree().block(h), visible);
    }
  }
}

std::vector<std::size_t> RandomizedAdversary::delivery_delays(const Block&, std::size_t,
                                                              Simulation& sim) {
  std::vector<std::size_t> delays(sim.nodes().size(), 0);
  const std::size_t delta = sim.network().delta();
  if (delta == 0) return delays;
  for (std::size_t& d : delays) d = rng_.below(delta + 1);
  return delays;
}

BlockHash RandomizedAdversary::break_tie(PartyId, const std::vector<BlockHash>& candidates,
                                         Simulation&) {
  return candidates[rng_.below(candidates.size())];
}

bool BalanceAttacker::balanced(const Simulation& sim) {
  absorb_new_blocks(sim);
  if (tip_a_ == 0 || tip_b_ == 0) return false;
  std::size_t best = 0;
  for (const HonestNode& node : sim.nodes()) best = std::max(best, node.best_length());
  return len_a_ == len_b_ && len_a_ >= best;
}

}  // namespace mh
