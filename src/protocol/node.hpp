// An honest protocol participant: collects valid blocks, follows the
// longest-chain rule under its tie-breaking regime, and forges exactly one
// block whenever the schedule elects it.
#pragma once

#include "protocol/blocktree.hpp"
#include "protocol/leader.hpp"

namespace mh {

class HonestNode {
 public:
  HonestNode(PartyId id, TieBreak rule, const ScheduleSource* schedule);

  [[nodiscard]] PartyId id() const noexcept { return id_; }

  /// Validates issuance against the schedule (the "signature check") and adds
  /// the block to the local view. Blocks whose parents are unknown are
  /// buffered (deduplicated) and retried when an ancestor arrives; blocks the
  /// tree reports permanently invalid are dropped, never buffered. Every
  /// block newly admitted to the view — the delivered one and any orphans it
  /// unblocked, in acceptance order (parents first) — is appended to
  /// `*accepted` when non-null, so callers can mirror the node's view.
  void receive(const Block& block, std::vector<Block>* accepted = nullptr);

  /// Current longest-chain head under this node's tie-break rule.
  [[nodiscard]] BlockHash best_head() const;
  [[nodiscard]] std::size_t best_length() const { return tree_.best_length(); }

  /// Forge the slot's block on top of the current best chain.
  [[nodiscard]] Block forge(std::size_t slot, std::uint64_t payload) const;

  [[nodiscard]] const BlockTree& tree() const noexcept { return tree_; }
  /// Parent-unknown blocks currently waiting for their ancestry.
  [[nodiscard]] std::size_t buffered_orphans() const noexcept { return orphans_.size(); }

  /// Has this node seen the block at all — admitted to the view OR buffered
  /// as an orphan?
  [[nodiscard]] bool knows(BlockHash hash) const {
    return tree_.contains(hash) || orphans_.contains(hash);
  }

  /// Crash: the orphan buffer is volatile and is lost; the block tree is the
  /// node's persisted state and survives. The restart path is crash() + the
  /// transport's re-sync shipping the missing public suffix ancestors-first,
  /// which receive() drains like any delivery.
  void crash() noexcept { orphans_.clear(); }

 private:
  PartyId id_;
  TieBreak rule_;
  const ScheduleSource* schedule_;
  BlockTree tree_;
  OrphanBuffer orphans_;
};

}  // namespace mh
