// Concrete adversarial strategies.
//
//   * PrivateChainAdversary — the classic double-spend attack on one slot:
//     fork just before the target slot, mint privately on every adversarial
//     leadership, release when the private chain matches the public length
//     after the confirmation window.
//   * BalanceAttacker — the protocol-level counterpart of the fork-theoretic
//     optimal adversary: keeps two chains of equal maximal length alive using
//     (a) tie-breaking to split concurrent honest leaders across branches
//     (this is where multiply honest slots help the attacker) and (b) its own
//     leaderships to re-level and extend both branches. Under the consistent
//     tie-breaking rule (A0') lever (a) disappears, which is Theorem 2's point.
//   * RandomizedAdversary — a seeded strategy-fuzzer: random minting targets,
//     random release scope, random per-recipient delays in [0, Delta], random
//     tie-breaking. It explores execution corners no hand-written strategy
//     reaches, which is what the differential oracle wants: whatever it does,
//     the analytic margin must still dominate the outcome.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "protocol/simulation.hpp"
#include "support/random.hpp"

namespace mh {

class PrivateChainAdversary : public Adversary {
 public:
  /// Attacks the settlement of `target_slot` with confirmation depth k.
  PrivateChainAdversary(std::size_t target_slot, std::size_t confirmation_depth);

  void on_slot_begin(std::size_t slot, Simulation& sim) override;

  [[nodiscard]] bool released() const noexcept { return released_; }
  [[nodiscard]] std::size_t private_length() const noexcept { return private_length_; }

 private:
  std::size_t target_slot_;
  std::size_t confirmation_depth_;
  BlockHash fork_point_ = 0;
  BlockHash private_tip_ = 0;
  std::size_t fork_point_length_ = 0;
  std::size_t private_length_ = 0;
  bool forked_ = false;
  bool released_ = false;
  std::uint64_t payload_ = 0x5eedULL;
};

class BalanceAttacker : public Adversary {
 public:
  BalanceAttacker() = default;

  void on_slot_begin(std::size_t slot, Simulation& sim) override;
  BlockHash break_tie(PartyId node, const std::vector<BlockHash>& candidates,
                      Simulation& sim) override;

  /// Are both branches populated and of equal, maximal length in `sim`?
  /// (Non-const: it first absorbs any blocks forged since the last slot hook.)
  [[nodiscard]] bool balanced(const Simulation& sim);

 private:
  /// 0 = not yet assigned, 1 = branch A, 2 = branch B.
  int branch_of(const Simulation& sim, BlockHash h);
  void absorb_new_blocks(const Simulation& sim);

  std::unordered_map<BlockHash, int> branch_;
  BlockHash root_a_ = 0;
  BlockHash root_b_ = 0;
  BlockHash tip_a_ = 0;
  BlockHash tip_b_ = 0;
  std::size_t len_a_ = 0;
  std::size_t len_b_ = 0;
  std::size_t seen_blocks_ = 0;
  std::uint64_t payload_ = 0xba1a0ceULL;
  std::size_t tie_calls_ = 0;
};

/// A seeded randomized strategy: every adversarial lever (minting parent,
/// injection scope and timing, delivery delays, tie-breaking) is drawn from
/// its own Rng, so the strategy space is sampled rather than scripted. All
/// choices respect the model's axioms (labels increase, delays <= Delta,
/// ties broken among the offered candidates), so executions stay inside the
/// fork framework and the oracle's domination invariants apply.
class RandomizedAdversary : public Adversary {
 public:
  explicit RandomizedAdversary(std::uint64_t seed) : rng_(seed) {}

  void on_slot_begin(std::size_t slot, Simulation& sim) override;
  std::vector<std::size_t> delivery_delays(const Block& block, std::size_t slot,
                                           Simulation& sim) override;
  BlockHash break_tie(PartyId node, const std::vector<BlockHash>& candidates,
                      Simulation& sim) override;

  [[nodiscard]] std::size_t minted() const noexcept { return minted_; }

 private:
  Rng rng_;
  std::size_t minted_ = 0;
  std::uint64_t payload_ = 0xf022edULL;
};

}  // namespace mh
