// Blocks of the simulated PoS protocol. The paper's abstraction requires two
// substrate guarantees, both provided here:
//   * immutability: each block commits to its whole prefix via a header hash
//     over (parent, slot, issuer, payload);
//   * issuance authenticity ("digital signatures"): a block claiming slot t
//     and issuer p is accepted only if the leader schedule actually elected p
//     in slot t (checked by BlockTree/HonestNode against the schedule).
#pragma once

#include <cstdint>

namespace mh {

using BlockHash = std::uint64_t;
using PartyId = std::uint32_t;

/// The adversary is modeled as a single coalition party.
inline constexpr PartyId kAdversary = 0xffffffffu;

struct Block {
  BlockHash hash = 0;
  BlockHash parent = 0;
  std::uint64_t slot = 0;
  PartyId issuer = 0;
  std::uint64_t payload = 0;  ///< digest of the (simulated) transaction batch

  friend bool operator==(const Block&, const Block&) = default;
};

/// FNV-1a building blocks, shared by the header hash below and by digest
/// folds over block streams (e.g. the transport seed pins).
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

constexpr std::uint64_t fnv1a_accumulate(std::uint64_t state, std::uint64_t word) {
  constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
  for (int byte = 0; byte < 8; ++byte) {
    state ^= (word >> (8 * byte)) & 0xffu;
    state *= kFnvPrime;
  }
  return state;
}

/// FNV-1a over the header fields; collision-free for our purposes and cheap.
BlockHash block_hash(BlockHash parent, std::uint64_t slot, PartyId issuer,
                     std::uint64_t payload);

/// Builds a block with its hash filled in.
Block make_block(BlockHash parent, std::uint64_t slot, PartyId issuer, std::uint64_t payload);

/// The genesis block: slot 0, all-zero parent, fixed hash.
const Block& genesis_block();

/// Recomputes the header hash and compares (detects tampering).
bool verify_block_integrity(const Block& block);

}  // namespace mh
