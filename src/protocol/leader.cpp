#include "protocol/leader.hpp"

#include <cmath>
#include <cstdio>

#include "protocol/consensus/leader_select.hpp"
#include "support/check.hpp"

namespace mh {

const SlotLeaders& genesis_slot_leaders() noexcept {
  static const SlotLeaders kGenesis{};
  return kGenesis;
}

LeaderSchedule::LeaderSchedule(std::vector<SlotLeaders> slots, std::size_t honest_parties)
    : slots_(std::move(slots)), honest_parties_(honest_parties) {
  MH_REQUIRE(honest_parties_ >= 1);
}

namespace {

PartyId random_party(std::size_t honest_parties, Rng& rng) {
  return static_cast<PartyId>(rng.below(honest_parties));
}

std::string law_text(double ph, double pH, double pA) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "law (ph=%g, pH=%g, pA=%g)", ph, pH, pA);
  return buf;
}

/// Entry-point check shared by both generators: a law that can draw H slots
/// needs two distinct honest parties to materialize them. Checked up front —
/// naming the law and the party count — instead of aborting mid-generation
/// when the first H happens to be sampled.
void require_parties_for(double ph, double pH, double pA, std::size_t honest_parties) {
  MH_REQUIRE_MSG(honest_parties >= 1,
                 law_text(ph, pH, pA) + " needs at least one honest party, got 0");
  if (pH > 0.0)
    MH_REQUIRE_MSG(honest_parties >= 2,
                   law_text(ph, pH, pA) +
                       " draws multiply-honest (H) slots, which need two distinct honest "
                       "parties; got honest_parties = " +
                       std::to_string(honest_parties));
}

SlotLeaders materialize(TetraSymbol symbol, std::size_t honest_parties, Rng& rng) {
  SlotLeaders leaders;
  switch (symbol) {
    case TetraSymbol::Bot: break;
    case TetraSymbol::A: leaders.adversarial = true; break;
    case TetraSymbol::h: leaders.honest.push_back(random_party(honest_parties, rng)); break;
    case TetraSymbol::H: {
      MH_REQUIRE_MSG(honest_parties >= 2, "an H slot needs two distinct honest parties");
      const PartyId first = random_party(honest_parties, rng);
      PartyId second = first;
      while (second == first) second = random_party(honest_parties, rng);
      leaders.honest.push_back(first);
      leaders.honest.push_back(second);
      break;
    }
  }
  return leaders;
}

}  // namespace

LeaderSchedule LeaderSchedule::from_symbol_law(const SymbolLaw& law, std::size_t horizon,
                                               std::size_t honest_parties, Rng& rng) {
  law.validate();
  require_parties_for(law.ph, law.pH, law.pA, honest_parties);
  std::vector<SlotLeaders> slots;
  slots.reserve(horizon);
  for (std::size_t t = 0; t < horizon; ++t) {
    const Symbol s = law.sample(rng);
    const TetraSymbol tetra = s == Symbol::h   ? TetraSymbol::h
                              : s == Symbol::H ? TetraSymbol::H
                                               : TetraSymbol::A;
    slots.push_back(materialize(tetra, honest_parties, rng));
  }
  return LeaderSchedule(std::move(slots), honest_parties);
}

LeaderSchedule LeaderSchedule::from_tetra_law(const TetraLaw& law, std::size_t horizon,
                                              std::size_t honest_parties, Rng& rng) {
  law.validate();
  require_parties_for(law.ph, law.pH, law.pA, honest_parties);
  std::vector<SlotLeaders> slots;
  slots.reserve(horizon);
  for (std::size_t t = 0; t < horizon; ++t)
    slots.push_back(materialize(law.sample(rng), honest_parties, rng));
  return LeaderSchedule(std::move(slots), honest_parties);
}

LeaderSchedule LeaderSchedule::praos_lottery(double f, double adversarial_stake,
                                             std::size_t honest_parties, std::size_t horizon,
                                             Rng& rng) {
  MH_REQUIRE(f > 0.0 && f < 1.0);
  MH_REQUIRE(adversarial_stake >= 0.0 && adversarial_stake < 1.0);
  MH_REQUIRE(honest_parties >= 2);
  const double honest_share = (1.0 - adversarial_stake) / static_cast<double>(honest_parties);
  // phi(share) = 1 - (1-f)^share via expm1/log1p: the naive 1 - pow(...) form
  // cancels to ~half the significant digits once share ~ 1/n is small (the
  // 10^5-party committee regime pinned in CI).
  const double p_honest = consensus::phi(f, honest_share);
  const double p_adv = consensus::phi(f, adversarial_stake);

  std::vector<SlotLeaders> slots;
  slots.reserve(horizon);
  for (std::size_t t = 0; t < horizon; ++t) {
    SlotLeaders leaders;
    for (PartyId p = 0; p < honest_parties; ++p)
      if (rng.bernoulli(p_honest)) leaders.honest.push_back(p);
    leaders.adversarial = rng.bernoulli(p_adv);
    slots.push_back(std::move(leaders));
  }
  return LeaderSchedule(std::move(slots), honest_parties);
}

TetraLaw LeaderSchedule::praos_induced_law(double f, double adversarial_stake,
                                           std::size_t honest_parties) {
  MH_REQUIRE(f > 0.0 && f < 1.0);
  MH_REQUIRE(adversarial_stake >= 0.0 && adversarial_stake < 1.0);
  MH_REQUIRE(honest_parties >= 1);
  const double honest_share = (1.0 - adversarial_stake) / static_cast<double>(honest_parties);
  const double n = static_cast<double>(honest_parties);
  // Work in log space: log(1 - p_honest) = share * log1p(-f) exactly, so the
  // no-winner and one-winner masses never pass through the cancellation-prone
  // p_honest representation.
  const double log_q = honest_share * std::log1p(-f);
  const double p_honest = -std::expm1(log_q);
  const double p_adv = consensus::phi(f, adversarial_stake);

  const double no_honest = std::exp(n * log_q);
  const double one_honest = n * p_honest * std::exp((n - 1.0) * log_q);

  TetraLaw law;
  law.pA = p_adv;  // at least one adversarial leader, regardless of honest ones
  law.pBot = (1.0 - p_adv) * no_honest;
  law.ph = (1.0 - p_adv) * one_honest;
  law.pH = (1.0 - p_adv) * (1.0 - no_honest - one_honest);
  law.validate();
  return law;
}

const SlotLeaders& LeaderSchedule::leaders(std::size_t slot) const {
  if (slot == 0) return genesis_slot_leaders();  // genesis is not issued
  MH_REQUIRE_MSG(slot <= slots_.size(), "slot " + std::to_string(slot) +
                                            " is past the horizon " +
                                            std::to_string(slots_.size()));
  return slots_[slot - 1];
}

bool LeaderSchedule::eligible(PartyId party, std::size_t slot) const {
  if (slot == 0) return false;  // genesis is not issued
  if (slot > slots_.size()) return false;
  const SlotLeaders& l = slots_[slot - 1];
  if (party == kAdversary) return l.adversarial;
  for (PartyId p : l.honest)
    if (p == party) return true;
  return false;
}

TetraString LeaderSchedule::characteristic() const {
  TetraString out;
  for (const SlotLeaders& l : slots_) {
    if (l.adversarial)
      out.push_back(TetraSymbol::A);
    else if (l.honest.empty())
      out.push_back(TetraSymbol::Bot);
    else if (l.honest.size() == 1)
      out.push_back(TetraSymbol::h);
    else
      out.push_back(TetraSymbol::H);
  }
  return out;
}

CharString LeaderSchedule::characteristic_sync() const {
  CharString out;
  for (const SlotLeaders& l : slots_) {
    if (l.adversarial) {
      out.push_back(Symbol::A);
    } else {
      MH_REQUIRE_MSG(!l.honest.empty(), "synchronous view requires no empty slots");
      out.push_back(l.honest.size() == 1 ? Symbol::h : Symbol::H);
    }
  }
  return out;
}

}  // namespace mh
