#include "protocol/leader.hpp"

#include <cmath>

#include "support/check.hpp"

namespace mh {

LeaderSchedule::LeaderSchedule(std::vector<SlotLeaders> slots, std::size_t honest_parties)
    : slots_(std::move(slots)), honest_parties_(honest_parties) {
  MH_REQUIRE(honest_parties_ >= 1);
}

namespace {

PartyId random_party(std::size_t honest_parties, Rng& rng) {
  return static_cast<PartyId>(rng.below(honest_parties));
}

SlotLeaders materialize(TetraSymbol symbol, std::size_t honest_parties, Rng& rng) {
  SlotLeaders leaders;
  switch (symbol) {
    case TetraSymbol::Bot: break;
    case TetraSymbol::A: leaders.adversarial = true; break;
    case TetraSymbol::h: leaders.honest.push_back(random_party(honest_parties, rng)); break;
    case TetraSymbol::H: {
      MH_REQUIRE_MSG(honest_parties >= 2, "an H slot needs two distinct honest parties");
      const PartyId first = random_party(honest_parties, rng);
      PartyId second = first;
      while (second == first) second = random_party(honest_parties, rng);
      leaders.honest.push_back(first);
      leaders.honest.push_back(second);
      break;
    }
  }
  return leaders;
}

}  // namespace

LeaderSchedule LeaderSchedule::from_symbol_law(const SymbolLaw& law, std::size_t horizon,
                                               std::size_t honest_parties, Rng& rng) {
  law.validate();
  std::vector<SlotLeaders> slots;
  slots.reserve(horizon);
  for (std::size_t t = 0; t < horizon; ++t) {
    const Symbol s = law.sample(rng);
    const TetraSymbol tetra = s == Symbol::h   ? TetraSymbol::h
                              : s == Symbol::H ? TetraSymbol::H
                                               : TetraSymbol::A;
    slots.push_back(materialize(tetra, honest_parties, rng));
  }
  return LeaderSchedule(std::move(slots), honest_parties);
}

LeaderSchedule LeaderSchedule::from_tetra_law(const TetraLaw& law, std::size_t horizon,
                                              std::size_t honest_parties, Rng& rng) {
  law.validate();
  std::vector<SlotLeaders> slots;
  slots.reserve(horizon);
  for (std::size_t t = 0; t < horizon; ++t)
    slots.push_back(materialize(law.sample(rng), honest_parties, rng));
  return LeaderSchedule(std::move(slots), honest_parties);
}

LeaderSchedule LeaderSchedule::praos_lottery(double f, double adversarial_stake,
                                             std::size_t honest_parties, std::size_t horizon,
                                             Rng& rng) {
  MH_REQUIRE(f > 0.0 && f < 1.0);
  MH_REQUIRE(adversarial_stake >= 0.0 && adversarial_stake < 1.0);
  MH_REQUIRE(honest_parties >= 2);
  const double honest_share = (1.0 - adversarial_stake) / static_cast<double>(honest_parties);
  const double p_honest = 1.0 - std::pow(1.0 - f, honest_share);
  const double p_adv = 1.0 - std::pow(1.0 - f, adversarial_stake);

  std::vector<SlotLeaders> slots;
  slots.reserve(horizon);
  for (std::size_t t = 0; t < horizon; ++t) {
    SlotLeaders leaders;
    for (PartyId p = 0; p < honest_parties; ++p)
      if (rng.bernoulli(p_honest)) leaders.honest.push_back(p);
    leaders.adversarial = rng.bernoulli(p_adv);
    slots.push_back(std::move(leaders));
  }
  return LeaderSchedule(std::move(slots), honest_parties);
}

TetraLaw LeaderSchedule::praos_induced_law(double f, double adversarial_stake,
                                           std::size_t honest_parties) {
  MH_REQUIRE(f > 0.0 && f < 1.0);
  const double honest_share = (1.0 - adversarial_stake) / static_cast<double>(honest_parties);
  const double p_honest = 1.0 - std::pow(1.0 - f, honest_share);
  const double p_adv = 1.0 - std::pow(1.0 - f, adversarial_stake);
  const double n = static_cast<double>(honest_parties);

  const double no_honest = std::pow(1.0 - p_honest, n);
  const double one_honest = n * p_honest * std::pow(1.0 - p_honest, n - 1.0);

  TetraLaw law;
  law.pA = p_adv;  // at least one adversarial leader, regardless of honest ones
  law.pBot = (1.0 - p_adv) * no_honest;
  law.ph = (1.0 - p_adv) * one_honest;
  law.pH = (1.0 - p_adv) * (1.0 - no_honest - one_honest);
  law.validate();
  return law;
}

const SlotLeaders& LeaderSchedule::leaders(std::size_t slot) const {
  MH_REQUIRE_MSG(slot >= 1 && slot <= slots_.size(), "slots are 1-indexed");
  return slots_[slot - 1];
}

bool LeaderSchedule::eligible(PartyId party, std::size_t slot) const {
  if (slot == 0) return false;  // genesis is not issued
  if (slot > slots_.size()) return false;
  const SlotLeaders& l = slots_[slot - 1];
  if (party == kAdversary) return l.adversarial;
  for (PartyId p : l.honest)
    if (p == party) return true;
  return false;
}

TetraString LeaderSchedule::characteristic() const {
  TetraString out;
  for (const SlotLeaders& l : slots_) {
    if (l.adversarial)
      out.push_back(TetraSymbol::A);
    else if (l.honest.empty())
      out.push_back(TetraSymbol::Bot);
    else if (l.honest.size() == 1)
      out.push_back(TetraSymbol::h);
    else
      out.push_back(TetraSymbol::H);
  }
  return out;
}

CharString LeaderSchedule::characteristic_sync() const {
  CharString out;
  for (const SlotLeaders& l : slots_) {
    if (l.adversarial) {
      out.push_back(Symbol::A);
    } else {
      MH_REQUIRE_MSG(!l.honest.empty(), "synchronous view requires no empty slots");
      out.push_back(l.honest.size() == 1 ? Symbol::h : Symbol::H);
    }
  }
  return out;
}

}  // namespace mh
