// The execution -> fork bridge: every protocol execution maps onto the
// abstract fork framework, which is how the combinatorial analysis applies to
// the simulator. Tests validate that honest executions always satisfy the
// fork axioms (F1)-(F4) / (F4_Delta) for their characteristic strings.
#pragma once

#include <unordered_map>
#include <vector>

#include "fork/fork.hpp"
#include "protocol/block.hpp"

namespace mh {

struct ExecutionFork {
  Fork fork;
  std::unordered_map<BlockHash, VertexId> vertex_of;
};

/// Builds the fork of an execution from its block set (parents must precede
/// children, which creation order guarantees). Blocks label vertices with
/// their slots; genesis is the root.
ExecutionFork fork_from_blocks(const std::vector<Block>& blocks);

}  // namespace mh
