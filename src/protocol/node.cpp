#include "protocol/node.hpp"

#include "support/check.hpp"

namespace mh {

HonestNode::HonestNode(PartyId id, TieBreak rule, const LeaderSchedule* schedule)
    : id_(id), rule_(rule), schedule_(schedule) {
  MH_REQUIRE(schedule != nullptr);
}

void HonestNode::receive(const Block& block) {
  if (!verify_block_integrity(block)) return;               // forged header
  if (!schedule_->eligible(block.issuer, block.slot)) return;  // signature check
  if (!tree_.add(block)) {
    orphans_.push_back(block);  // parent not yet known; retry later
    return;
  }
  flush_orphans();
}

void HonestNode::flush_orphans() {
  bool progress = true;
  while (progress && !orphans_.empty()) {
    progress = false;
    std::vector<Block> still;
    still.reserve(orphans_.size());
    for (const Block& b : orphans_) {
      if (tree_.add(b))
        progress = true;
      else
        still.push_back(b);
    }
    orphans_.swap(still);
  }
}

BlockHash HonestNode::best_head() const { return tree_.best_head(rule_); }

Block HonestNode::forge(std::size_t slot, std::uint64_t payload) const {
  MH_REQUIRE_MSG(schedule_->eligible(id_, slot), "node is not a leader of this slot");
  return make_block(best_head(), slot, id_, payload);
}

}  // namespace mh
