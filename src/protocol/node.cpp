#include "protocol/node.hpp"

#include "obs/obs.hpp"
#include "support/check.hpp"

namespace mh {

HonestNode::HonestNode(PartyId id, TieBreak rule, const ScheduleSource* schedule)
    : id_(id), rule_(rule), schedule_(schedule) {
  MH_REQUIRE(schedule != nullptr);
}

// blocks_received is counted (aggregated) by Simulation::deliver_due / step;
// receive() itself only records the rare outcomes.
void HonestNode::receive(const Block& block, std::vector<Block>* accepted) {
  if (!verify_block_integrity(block) ||                  // forged header
      !schedule_->eligible(block.issuer, block.slot)) {  // signature check
    MH_OBS_COUNT("protocol.node.invalid_dropped", 1);
    return;
  }
  switch (tree_.try_add(block)) {
    case BlockTree::AddResult::Added:
      if (accepted) accepted->push_back(block);
      orphans_.flush(tree_, accepted);
      break;
    case BlockTree::AddResult::Orphan:
      // Parent not yet known: buffer (deduplicated) and retry when ancestors
      // arrive; re-delivery cannot grow the buffer.
      MH_OBS_COUNT("protocol.node.orphans_buffered", 1);
      orphans_.buffer(block);
      break;
    case BlockTree::AddResult::Duplicate:  // already in the view
      break;
    case BlockTree::AddResult::Invalid:  // can never become valid: drop
      MH_OBS_COUNT("protocol.node.invalid_dropped", 1);
      break;
  }
}

BlockHash HonestNode::best_head() const { return tree_.best_head(rule_); }

Block HonestNode::forge(std::size_t slot, std::uint64_t payload) const {
  MH_REQUIRE_MSG(schedule_->eligible(id_, slot), "node is not a leader of this slot");
  return make_block(best_head(), slot, id_, payload);
}

}  // namespace mh
