#include "protocol/node.hpp"

#include "support/check.hpp"

namespace mh {

HonestNode::HonestNode(PartyId id, TieBreak rule, const LeaderSchedule* schedule)
    : id_(id), rule_(rule), schedule_(schedule) {
  MH_REQUIRE(schedule != nullptr);
}

void HonestNode::receive(const Block& block, std::vector<Block>* accepted) {
  if (!verify_block_integrity(block)) return;                  // forged header
  if (!schedule_->eligible(block.issuer, block.slot)) return;  // signature check
  switch (tree_.try_add(block)) {
    case BlockTree::AddResult::Added:
      if (accepted) accepted->push_back(block);
      orphans_.flush(tree_, accepted);
      break;
    case BlockTree::AddResult::Orphan:
      // Parent not yet known: buffer (deduplicated) and retry when ancestors
      // arrive; re-delivery cannot grow the buffer.
      orphans_.buffer(block);
      break;
    case BlockTree::AddResult::Duplicate:  // already in the view
    case BlockTree::AddResult::Invalid:    // can never become valid: drop
      break;
  }
}

BlockHash HonestNode::best_head() const { return tree_.best_head(rule_); }

Block HonestNode::forge(std::size_t slot, std::uint64_t payload) const {
  MH_REQUIRE_MSG(schedule_->eligible(id_, slot), "node is not a leader of this slot");
  return make_block(best_head(), slot, id_, payload);
}

}  // namespace mh
