#include "protocol/block.hpp"

namespace mh {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv_mix(std::uint64_t state, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    state ^= (word >> (8 * byte)) & 0xffu;
    state *= kFnvPrime;
  }
  return state;
}

}  // namespace

BlockHash block_hash(BlockHash parent, std::uint64_t slot, PartyId issuer,
                     std::uint64_t payload) {
  std::uint64_t h = kFnvOffset;
  h = fnv_mix(h, parent);
  h = fnv_mix(h, slot);
  h = fnv_mix(h, issuer);
  h = fnv_mix(h, payload);
  return h;
}

Block make_block(BlockHash parent, std::uint64_t slot, PartyId issuer, std::uint64_t payload) {
  Block b;
  b.parent = parent;
  b.slot = slot;
  b.issuer = issuer;
  b.payload = payload;
  b.hash = block_hash(parent, slot, issuer, payload);
  return b;
}

const Block& genesis_block() {
  static const Block genesis = make_block(0, 0, 0, 0x67656e65736973ULL /* "genesis" */);
  return genesis;
}

bool verify_block_integrity(const Block& block) {
  return block.hash == block_hash(block.parent, block.slot, block.issuer, block.payload);
}

}  // namespace mh
