#include "protocol/block.hpp"

namespace mh {

BlockHash block_hash(BlockHash parent, std::uint64_t slot, PartyId issuer,
                     std::uint64_t payload) {
  std::uint64_t h = kFnvOffsetBasis;
  h = fnv1a_accumulate(h, parent);
  h = fnv1a_accumulate(h, slot);
  h = fnv1a_accumulate(h, issuer);
  h = fnv1a_accumulate(h, payload);
  return h;
}

Block make_block(BlockHash parent, std::uint64_t slot, PartyId issuer, std::uint64_t payload) {
  Block b;
  b.parent = parent;
  b.slot = slot;
  b.issuer = issuer;
  b.payload = payload;
  b.hash = block_hash(parent, slot, issuer, payload);
  return b;
}

const Block& genesis_block() {
  static const Block genesis = make_block(0, 0, 0, 0x67656e65736973ULL /* "genesis" */);
  return genesis;
}

bool verify_block_integrity(const Block& block) {
  return block.hash == block_hash(block.parent, block.slot, block.issuer, block.payload);
}

}  // namespace mh
