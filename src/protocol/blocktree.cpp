#include "protocol/blocktree.hpp"

#include <algorithm>
#include <bit>

#include "obs/obs.hpp"
#include "support/check.hpp"

namespace mh {

BlockTree::BlockTree() {
  const Block& genesis = genesis_block();
  entries_.push_back(Entry{genesis, 0, {}});
  arrival_.push_back(genesis.hash);
  index_.emplace(genesis.hash, 0);
  head_idx_.push_back(0);
  min_hash_head_ = genesis.hash;
}

BlockTree::AddResult BlockTree::try_add(const Block& block) {
  if (index_.contains(block.hash)) return AddResult::Duplicate;
  if (!verify_block_integrity(block)) return AddResult::Invalid;
  const auto parent = index_.find(block.parent);
  if (parent == index_.end()) return AddResult::Orphan;
  const std::uint32_t parent_idx = parent->second;
  if (block.slot <= entries_[parent_idx].block.slot) return AddResult::Invalid;

  MH_ASSERT_MSG(entries_.size() < 0xffffffffu, "block tree index space exhausted");
  const auto idx = static_cast<std::uint32_t>(entries_.size());
  Entry entry{block, entries_[parent_idx].length + 1, {}};
  // Binary lifting: up[j] exists for every 2^j <= length, built from the
  // parent's pointers (the 2^(j-1)-th ancestor's 2^(j-1)-th ancestor).
  entry.up.reserve(std::bit_width(static_cast<std::uint32_t>(entry.length)));
  entry.up.push_back(parent_idx);
  for (std::size_t j = 1; (1u << j) <= entry.length; ++j) {
    const std::uint32_t half = entry.up[j - 1];
    entry.up.push_back(entries_[half].up[j - 1]);
  }

  // Incremental head-set maintenance: a strictly longer chain resets the tie
  // set; an equal-length one joins it (arrival order is insertion order).
  if (entry.length > best_length_) {
    best_length_ = entry.length;
    head_idx_.clear();
    head_idx_.push_back(idx);
    min_hash_head_ = block.hash;
  } else if (entry.length == best_length_) {
    head_idx_.push_back(idx);
    min_hash_head_ = std::min(min_hash_head_, block.hash);
  }

  entries_.push_back(std::move(entry));
  arrival_.push_back(block.hash);
  index_.emplace(block.hash, idx);
  return AddResult::Added;
}

bool BlockTree::contains(BlockHash hash) const { return index_.contains(hash); }

std::uint32_t BlockTree::index_of(BlockHash hash) const {
  const auto it = index_.find(hash);
  MH_REQUIRE_MSG(it != index_.end(), "unknown block");
  return it->second;
}

const Block& BlockTree::block(BlockHash hash) const { return entries_[index_of(hash)].block; }

std::size_t BlockTree::length(BlockHash hash) const { return entries_[index_of(hash)].length; }

std::uint32_t BlockTree::lift(std::uint32_t idx, std::size_t steps) const {
  MH_OBS_HIST("protocol.tree.lift_steps", steps);
  for (std::size_t j = 0; steps != 0; ++j, steps >>= 1)
    if (steps & 1u) idx = entries_[idx].up[j];
  return idx;
}

BlockHash BlockTree::best_head(TieBreak rule) const {
  // AdversarialOrder intentionally means FIRST arrival among the tied
  // maximum-length heads: the adversary, ordering deliveries per recipient,
  // decides which tied head arrives first (the seed's "later arrival wins"
  // comparison branch could never fire and is gone).
  return rule == TieBreak::AdversarialOrder ? arrival_[head_idx_.front()] : min_hash_head_;
}

std::vector<BlockHash> BlockTree::max_length_heads() const {
  std::vector<BlockHash> out;
  out.reserve(head_idx_.size());
  for (const std::uint32_t idx : head_idx_) out.push_back(arrival_[idx]);
  return out;
}

std::vector<BlockHash> BlockTree::chain(BlockHash head) const {
  std::uint32_t idx = index_of(head);
  std::vector<BlockHash> out(static_cast<std::size_t>(entries_[idx].length) + 1);
  for (std::size_t pos = out.size(); pos-- > 0;) {
    out[pos] = entries_[idx].block.hash;
    if (pos != 0) idx = entries_[idx].up[0];
  }
  return out;
}

BlockHash BlockTree::common_ancestor(BlockHash a, BlockHash b) const {
  MH_OBS_COUNT("protocol.tree.ancestor_queries", 1);
  std::uint32_t ia = index_of(a);
  std::uint32_t ib = index_of(b);
  if (entries_[ia].length > entries_[ib].length) std::swap(ia, ib);
  ib = lift(ib, entries_[ib].length - entries_[ia].length);
  if (ia == ib) return entries_[ia].block.hash;
  for (std::size_t j = entries_[ia].up.size(); j-- > 0;) {
    if (j >= entries_[ia].up.size()) continue;  // shrunk below a prior jump level
    if (entries_[ia].up[j] != entries_[ib].up[j]) {
      ia = entries_[ia].up[j];
      ib = entries_[ib].up[j];
    }
  }
  return entries_[entries_[ia].up[0]].block.hash;
}

std::optional<BlockHash> BlockTree::block_at_slot(BlockHash head, std::uint64_t slot) const {
  MH_OBS_COUNT("protocol.tree.ancestor_queries", 1);
  std::uint32_t idx = index_of(head);
  if (idx == 0) return std::nullopt;
  if (entries_[idx].block.slot <= slot) return entries_[idx].block.hash;
  // Slots are strictly increasing along a chain: lift to the lowest ancestor
  // still labelled past `slot`; its parent is the deepest block at <= slot.
  for (std::size_t j = entries_[idx].up.size(); j-- > 0;) {
    if (j >= entries_[idx].up.size()) continue;
    const std::uint32_t anc = entries_[idx].up[j];
    if (entries_[anc].block.slot > slot) idx = anc;
  }
  const std::uint32_t deepest = entries_[idx].up[0];
  if (deepest == 0) return std::nullopt;
  return entries_[deepest].block.hash;
}

BlockHash BlockTree::ancestor_at_length(BlockHash head, std::size_t len) const {
  MH_OBS_COUNT("protocol.tree.ancestor_queries", 1);
  const std::uint32_t idx = index_of(head);
  MH_REQUIRE_MSG(len <= entries_[idx].length, "ancestor below genesis");
  return entries_[lift(idx, entries_[idx].length - len)].block.hash;
}

void OrphanBuffer::buffer(const Block& block) {
  if (hashes_.insert(block.hash).second) orphans_.push_back(block);
}

void OrphanBuffer::flush(BlockTree& tree, std::vector<Block>* accepted) {
  bool progress = true;
  while (progress && !orphans_.empty()) {
    progress = false;
    std::vector<Block> still;
    still.reserve(orphans_.size());
    for (const Block& b : orphans_) {
      switch (tree.try_add(b)) {
        case BlockTree::AddResult::Added:
          if (accepted) accepted->push_back(b);
          hashes_.erase(b.hash);
          progress = true;
          MH_OBS_COUNT("protocol.node.orphans_flushed", 1);
          break;
        case BlockTree::AddResult::Orphan:
          still.push_back(b);
          break;
        case BlockTree::AddResult::Duplicate:
        case BlockTree::AddResult::Invalid:
          // A buffered block whose parent arrived but whose labels are bad is
          // permanently invalid — drop it instead of retrying forever.
          hashes_.erase(b.hash);
          MH_OBS_COUNT("protocol.node.orphans_dropped", 1);
          break;
      }
    }
    orphans_.swap(still);
  }
}

}  // namespace mh
