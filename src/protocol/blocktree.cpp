#include "protocol/blocktree.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "obs/obs.hpp"
#include "support/check.hpp"

namespace mh {

namespace {

/// Fresh index tables start tiny: a 10^6-party run holds one tree per node,
/// so the per-tree floor must stay in the hundreds of bytes; tables grow
/// geometrically and the grown capacity is what the arena recycles.
constexpr std::size_t kIndexInitialCap = 16;

/// Block hashes are already FNV digests; one multiplicative round decorrelates
/// the low bits used by the power-of-two mask.
constexpr std::uint64_t index_mix(BlockHash key) noexcept {
  key *= 0x9e3779b97f4a7c15ULL;
  return key ^ (key >> 32);
}

/// Per-thread free list of tree storages. A destroyed tree donates its
/// buffers here; the next tree built on the same thread reuses them, so
/// back-to-back runs in a sweep cell allocate nothing per block once the
/// first run set the high-water capacity.
struct StorageArena {
  std::vector<BlockTree::Storage> free_list;
  BlockTree::ArenaStats stats;
};

StorageArena& arena() noexcept {
  thread_local StorageArena instance;
  return instance;
}

/// Make a (possibly recycled) storage empty-but-capacitated: every column
/// cleared, the index table wiped to the empty sentinel at its current size.
void reset_storage(BlockTree::Storage& s) {
  s.blocks.clear();
  s.lengths.clear();
  s.slots.clear();
  s.parents.clear();
  s.arrival.clear();
  s.lift_off.clear();
  s.lift.clear();
  s.lift_built = 0;
  s.head_idx.clear();
  if (s.index_vals.empty()) {
    s.index_keys.assign(kIndexInitialCap, 0);
    s.index_vals.assign(kIndexInitialCap, 0xffffffffu);
  } else {
    std::fill(s.index_vals.begin(), s.index_vals.end(), 0xffffffffu);
  }
  s.index_size = 0;
}

}  // namespace

BlockTree::BlockTree() : BlockTree(kMaxBlocks) {}

BlockTree::BlockTree(std::size_t max_blocks)
    : max_blocks_(std::min(max_blocks, kMaxBlocks)) {
  MH_REQUIRE_MSG(max_blocks_ >= 1, "block tree must have room for genesis");
  StorageArena& a = arena();
  ++a.stats.acquired;
  if (!a.free_list.empty()) {
    s_ = std::move(a.free_list.back());
    a.free_list.pop_back();
    ++a.stats.recycled;
  }
  reset_storage(s_);
  seed_genesis();
}

BlockTree::~BlockTree() {
  // A moved-from tree has surrendered its vectors; only a live storage (its
  // index table is never empty) goes back to the arena.
  if (s_.index_vals.empty()) return;
  StorageArena& a = arena();
  ++a.stats.released;
  a.free_list.push_back(std::move(s_));
}

BlockTree::ArenaStats BlockTree::arena_stats() noexcept { return arena().stats; }

void BlockTree::arena_trim() noexcept {
  arena().free_list.clear();
  arena().free_list.shrink_to_fit();
}

void BlockTree::seed_genesis() {
  const Block& genesis = genesis_block();
  s_.blocks.push_back(genesis);
  s_.lengths.push_back(0);
  s_.slots.push_back(genesis.slot);
  s_.parents.push_back(0);  // genesis is its own parent slot (never walked)
  s_.arrival.push_back(genesis.hash);
  index_insert(genesis.hash, 0);
  s_.head_idx.push_back(0);
  best_length_ = 0;
  min_hash_head_ = genesis.hash;
}

std::uint32_t BlockTree::find(BlockHash hash) const noexcept {
  const std::size_t mask = s_.index_vals.size() - 1;
  for (std::size_t probe = index_mix(hash) & mask;; probe = (probe + 1) & mask) {
    const std::uint32_t val = s_.index_vals[probe];
    if (val == kEmptySlot || s_.index_keys[probe] == hash) return val;
  }
}

std::uint32_t BlockTree::index_of(BlockHash hash) const {
  const std::uint32_t idx = find(hash);
  MH_REQUIRE_MSG(idx != kEmptySlot, "unknown block");
  return idx;
}

void BlockTree::index_insert(BlockHash hash, std::uint32_t idx) {
  if ((s_.index_size + 1) * 8 >= s_.index_vals.size() * 7) index_grow();
  const std::size_t mask = s_.index_vals.size() - 1;
  std::size_t probe = index_mix(hash) & mask;
  while (s_.index_vals[probe] != kEmptySlot) probe = (probe + 1) & mask;
  s_.index_keys[probe] = hash;
  s_.index_vals[probe] = idx;
  ++s_.index_size;
}

void BlockTree::index_grow() {
  const std::size_t cap = s_.index_vals.size() * 2;
  std::vector<BlockHash> keys(cap, 0);
  std::vector<std::uint32_t> vals(cap, kEmptySlot);
  const std::size_t mask = cap - 1;
  for (std::size_t i = 0; i < s_.index_vals.size(); ++i) {
    const std::uint32_t val = s_.index_vals[i];
    if (val == kEmptySlot) continue;
    const BlockHash key = s_.index_keys[i];
    std::size_t probe = index_mix(key) & mask;
    while (vals[probe] != kEmptySlot) probe = (probe + 1) & mask;
    keys[probe] = key;
    vals[probe] = val;
  }
  s_.index_keys = std::move(keys);
  s_.index_vals = std::move(vals);
}

std::uint32_t BlockTree::levels(std::uint32_t idx) const noexcept {
  return static_cast<std::uint32_t>(std::bit_width(s_.lengths[idx]));
}

BlockTree::AddResult BlockTree::try_add(const Block& block) {
  if (find(block.hash) != kEmptySlot) return AddResult::Duplicate;
  if (!verify_block_integrity(block)) return AddResult::Invalid;
  const std::uint32_t parent_idx = find(block.parent);
  if (parent_idx == kEmptySlot) return AddResult::Orphan;
  if (block.slot <= s_.slots[parent_idx]) return AddResult::Invalid;

  // Index and length both live in 32 bits (kEmptySlot is the index
  // sentinel); the 10^6-party / 10^7-slot tiers make these limits
  // reachable, so overflow must throw, never truncate.
  MH_REQUIRE_MSG(s_.blocks.size() < max_blocks_, "block tree capacity exhausted");
  const auto idx = static_cast<std::uint32_t>(s_.blocks.size());
  MH_REQUIRE_MSG(s_.lengths[parent_idx] < 0xffffffffu, "chain length overflows 32 bits");
  const std::uint32_t length = s_.lengths[parent_idx] + 1;

  // Incremental head-set maintenance: a strictly longer chain resets the tie
  // set; an equal-length one joins it (arrival order is insertion order).
  if (length > best_length_) {
    best_length_ = length;
    s_.head_idx.clear();
    s_.head_idx.push_back(idx);
    min_hash_head_ = block.hash;
  } else if (length == best_length_) {
    s_.head_idx.push_back(idx);
    min_hash_head_ = std::min(min_hash_head_, block.hash);
  }

  s_.blocks.push_back(block);
  s_.lengths.push_back(length);
  s_.slots.push_back(block.slot);
  s_.parents.push_back(parent_idx);
  s_.arrival.push_back(block.hash);
  index_insert(block.hash, idx);
  return AddResult::Added;
}

void BlockTree::ensure_lift() const {
  const auto size = static_cast<std::uint32_t>(s_.blocks.size());
  if (s_.lift_built == size) return;
  // Binary lifting into the flat CSR pool: entry i's table occupies
  // lift[off + j] for 2^j <= length, each level built from the parent's
  // pointers (the 2^(j-1)-th ancestor's 2^(j-1)-th ancestor, already
  // materialized: ancestors always precede descendants in the pool).
  for (std::uint32_t i = s_.lift_built; i < size; ++i) {
    const std::size_t off = s_.lift.size();
    const std::uint32_t length = s_.lengths[i];
    MH_REQUIRE_MSG(off + std::bit_width(length) <= 0xffffffffu,
                   "lift pool offset overflows 32 bits");
    s_.lift_off.push_back(static_cast<std::uint32_t>(off));
    if (length == 0) continue;  // genesis owns zero levels
    s_.lift.push_back(s_.parents[i]);
    for (std::size_t j = 1; (1u << j) <= length; ++j) {
      const std::uint32_t half = s_.lift[off + j - 1];
      const std::uint32_t up = s_.lift[s_.lift_off[half] + j - 1];
      s_.lift.push_back(up);
    }
  }
  s_.lift_built = size;
}

bool BlockTree::contains(BlockHash hash) const { return find(hash) != kEmptySlot; }

const Block& BlockTree::block(BlockHash hash) const { return s_.blocks[index_of(hash)]; }

std::size_t BlockTree::length(BlockHash hash) const { return s_.lengths[index_of(hash)]; }

std::uint32_t BlockTree::lift(std::uint32_t idx, std::size_t steps) const {
  MH_OBS_HIST("protocol.tree.lift_steps", steps);
  ensure_lift();
  for (std::size_t j = 0; steps != 0; ++j, steps >>= 1)
    if (steps & 1u) idx = s_.lift[s_.lift_off[idx] + j];
  return idx;
}

BlockHash BlockTree::best_head(TieBreak rule) const {
  // AdversarialOrder intentionally means FIRST arrival among the tied
  // maximum-length heads: the adversary, ordering deliveries per recipient,
  // decides which tied head arrives first.
  return rule == TieBreak::AdversarialOrder ? s_.arrival[s_.head_idx.front()] : min_hash_head_;
}

std::vector<BlockHash> BlockTree::max_length_heads() const {
  std::vector<BlockHash> out;
  out.reserve(s_.head_idx.size());
  for (const std::uint32_t idx : s_.head_idx) out.push_back(s_.arrival[idx]);
  return out;
}

std::vector<BlockHash> BlockTree::chain(BlockHash head) const {
  std::uint32_t idx = index_of(head);
  std::vector<BlockHash> out(static_cast<std::size_t>(s_.lengths[idx]) + 1);
  for (std::size_t pos = out.size(); pos-- > 0;) {
    out[pos] = s_.arrival[idx];
    if (pos != 0) idx = s_.parents[idx];
  }
  return out;
}

BlockHash BlockTree::common_ancestor(BlockHash a, BlockHash b) const {
  MH_OBS_COUNT("protocol.tree.ancestor_queries", 1);
  ensure_lift();
  std::uint32_t ia = index_of(a);
  std::uint32_t ib = index_of(b);
  if (s_.lengths[ia] > s_.lengths[ib]) std::swap(ia, ib);
  ib = lift(ib, s_.lengths[ib] - s_.lengths[ia]);
  if (ia == ib) return s_.arrival[ia];
  for (std::size_t j = levels(ia); j-- > 0;) {
    if (j >= levels(ia)) continue;  // shrunk below a prior jump level
    const std::uint32_t up_a = s_.lift[s_.lift_off[ia] + j];
    const std::uint32_t up_b = s_.lift[s_.lift_off[ib] + j];
    if (up_a != up_b) {
      ia = up_a;
      ib = up_b;
    }
  }
  return s_.arrival[s_.parents[ia]];
}

std::optional<BlockHash> BlockTree::block_at_slot(BlockHash head, std::uint64_t slot) const {
  MH_OBS_COUNT("protocol.tree.ancestor_queries", 1);
  ensure_lift();
  std::uint32_t idx = index_of(head);
  if (idx == 0) return std::nullopt;
  if (s_.slots[idx] <= slot) return s_.arrival[idx];
  // Slots are strictly increasing along a chain: lift to the lowest ancestor
  // still labelled past `slot`; its parent is the deepest block at <= slot.
  for (std::size_t j = levels(idx); j-- > 0;) {
    if (j >= levels(idx)) continue;
    const std::uint32_t anc = s_.lift[s_.lift_off[idx] + j];
    if (s_.slots[anc] > slot) idx = anc;
  }
  const std::uint32_t deepest = s_.parents[idx];
  if (deepest == 0) return std::nullopt;
  return s_.arrival[deepest];
}

BlockHash BlockTree::ancestor_at_length(BlockHash head, std::size_t len) const {
  MH_OBS_COUNT("protocol.tree.ancestor_queries", 1);
  const std::uint32_t idx = index_of(head);
  MH_REQUIRE_MSG(len <= s_.lengths[idx], "ancestor below genesis");
  return s_.arrival[lift(idx, s_.lengths[idx] - len)];
}

void OrphanBuffer::buffer(const Block& block) {
  if (hashes_.insert(block.hash).second) orphans_.push_back(block);
}

void OrphanBuffer::flush(BlockTree& tree, std::vector<Block>* accepted) {
  bool progress = true;
  while (progress && !orphans_.empty()) {
    progress = false;
    std::vector<Block> still;
    still.reserve(orphans_.size());
    for (const Block& b : orphans_) {
      switch (tree.try_add(b)) {
        case BlockTree::AddResult::Added:
          if (accepted) accepted->push_back(b);
          hashes_.erase(b.hash);
          progress = true;
          MH_OBS_COUNT("protocol.node.orphans_flushed", 1);
          break;
        case BlockTree::AddResult::Orphan:
          still.push_back(b);
          break;
        case BlockTree::AddResult::Duplicate:
        case BlockTree::AddResult::Invalid:
          // A buffered block whose parent arrived but whose labels are bad is
          // permanently invalid — drop it instead of retrying forever.
          hashes_.erase(b.hash);
          MH_OBS_COUNT("protocol.node.orphans_dropped", 1);
          break;
      }
    }
    orphans_.swap(still);
  }
}

}  // namespace mh
