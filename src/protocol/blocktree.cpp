#include "protocol/blocktree.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mh {

BlockTree::BlockTree() {
  const Block& genesis = genesis_block();
  blocks_.emplace(genesis.hash, Entry{genesis, 0, 0});
  arrival_.push_back(genesis.hash);
}

bool BlockTree::add(const Block& block) {
  if (blocks_.contains(block.hash)) return true;
  if (!verify_block_integrity(block)) return false;
  const auto parent = blocks_.find(block.parent);
  if (parent == blocks_.end()) return false;
  if (block.slot <= parent->second.block.slot) return false;

  Entry entry{block, parent->second.length + 1, arrival_.size()};
  best_length_ = std::max(best_length_, entry.length);
  blocks_.emplace(block.hash, entry);
  arrival_.push_back(block.hash);
  return true;
}

bool BlockTree::contains(BlockHash hash) const { return blocks_.contains(hash); }

const Block& BlockTree::block(BlockHash hash) const {
  const auto it = blocks_.find(hash);
  MH_REQUIRE_MSG(it != blocks_.end(), "unknown block");
  return it->second.block;
}

std::size_t BlockTree::length(BlockHash hash) const {
  const auto it = blocks_.find(hash);
  MH_REQUIRE_MSG(it != blocks_.end(), "unknown block");
  return it->second.length;
}

BlockHash BlockTree::best_head(TieBreak rule) const {
  BlockHash best = genesis_block().hash;
  std::size_t best_len = 0;
  std::size_t best_arrival = 0;
  std::uint64_t best_hash_key = genesis_block().hash;
  for (BlockHash h : arrival_) {
    const Entry& e = blocks_.at(h);
    if (e.length < best_len) continue;
    bool take = e.length > best_len;
    if (!take && e.length == best_len) {
      take = rule == TieBreak::AdversarialOrder ? e.arrival < best_arrival
                                                : e.block.hash < best_hash_key;
    }
    if (take) {
      best = h;
      best_len = e.length;
      best_arrival = e.arrival;
      best_hash_key = e.block.hash;
    }
  }
  return best;
}

std::vector<BlockHash> BlockTree::max_length_heads() const {
  std::vector<BlockHash> out;
  for (BlockHash h : arrival_)
    if (blocks_.at(h).length == best_length_) out.push_back(h);
  return out;
}

std::vector<BlockHash> BlockTree::chain(BlockHash head) const {
  std::vector<BlockHash> out;
  for (BlockHash h = head;; h = block(h).parent) {
    out.push_back(h);
    if (h == genesis_block().hash) break;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

BlockHash BlockTree::common_ancestor(BlockHash a, BlockHash b) const {
  while (a != b) {
    if (length(a) >= length(b))
      a = block(a).parent;
    else
      b = block(b).parent;
  }
  return a;
}

std::optional<BlockHash> BlockTree::block_at_slot(BlockHash head, std::uint64_t slot) const {
  for (BlockHash h = head; h != genesis_block().hash; h = block(h).parent)
    if (block(h).slot <= slot) return h;
  return std::nullopt;
}

}  // namespace mh
