// Seeded digest probes over the protocol transport, shared by
// bench_protocol_scale (golden seed pins + scale sweep), bench_obs_overhead
// (metrics-on vs metrics-off timing on the same cell), and test_obs (the
// metrics-on == metrics-off golden pin).
//
// A probe runs one serial, purely seed-driven execution and folds every
// order-sensitive observable into an FNV digest: block creation order,
// public-tree acceptance order, per-node adopted heads, and the final slot
// divergence. Any transport, tree, or instrumentation change that perturbs
// delivery order, acceptance order, or the public view shifts the digest.
#pragma once

#include <cstddef>
#include <cstdint>

#include "chars/bernoulli.hpp"
#include "protocol/faults/plan.hpp"
#include "protocol/net/config.hpp"

namespace mh {

/// The scale-sweep law used by every probe: dense slots, concurrency-heavy.
inline constexpr SymbolLaw kTransportProbeLaw{0.4, 0.25, 0.35};

// The golden transport pins: regenerate ONLY for an intentional semantic
// change (and say so in the commit). Values are thread-count independent
// (each execution is serial and purely seed-driven) and MUST NOT move when
// metric recording toggles.
inline constexpr std::uint64_t kBalanceProbePinSeed = 4242;
inline constexpr std::size_t kBalanceProbePinParties = 8;
inline constexpr std::size_t kBalanceProbePinHorizon = 512;
inline constexpr std::uint64_t kBalanceProbePinDigest = 0xedb5caf17ab2f6d6ULL;
inline constexpr std::uint64_t kRandomizedProbePinSeed = 1717;
inline constexpr std::size_t kRandomizedProbePinParties = 6;
inline constexpr std::size_t kRandomizedProbePinHorizon = 256;
inline constexpr std::size_t kRandomizedProbePinDelta = 2;
inline constexpr std::uint64_t kRandomizedProbePinDigest = 0x392faa91452afe13ULL;

struct TransportProbeOutcome {
  std::size_t parties = 0;
  std::size_t horizon = 0;
  std::size_t blocks = 0;
  std::size_t divergence = 0;
  std::size_t observed_delta = 0;  ///< NetReport bound (heterogeneous probes only)
  double seconds = 0.0;            ///< wall-clock of sim.run() alone
  std::uint64_t digest = 0;
};

/// Balance attack at Delta = 0 (the E14 acceptance cell shape).
TransportProbeOutcome balance_transport_probe(std::size_t parties, std::size_t horizon,
                                              std::uint64_t seed);

/// The balance probe with a FaultInjector attached for `plan`. With an EMPTY
/// plan this is the fault layer's null hypothesis: the digest must equal the
/// bare probe's exactly (no perturbed draw, no reordered delivery) and the
/// wall-clock overhead is what bench_faults gates at <= 2% on the E16 cell.
TransportProbeOutcome faulted_balance_transport_probe(std::size_t parties, std::size_t horizon,
                                                      std::uint64_t seed,
                                                      const faults::FaultPlan& plan);

/// Randomized adversary (Delta-delays, partial leaks, orphan flushes).
TransportProbeOutcome randomized_transport_probe(std::size_t parties, std::size_t horizon,
                                                 std::uint64_t seed, std::size_t delta);

/// The balance probe on a heterogeneous network shape: the execution runs
/// the event-core gossip paths (topology, per-link latency, bandwidth
/// spillover) and the digest additionally folds the NetReport's observed
/// Delta, so a change to relay order, latency draws, or the inflation rule
/// moves the pin. A DEGENERATE `net` must reproduce balance_transport_probe
/// bit-identically (the façade equivalence test pins this).
TransportProbeOutcome hetero_transport_probe(std::size_t parties, std::size_t horizon,
                                             std::uint64_t seed, std::size_t delta,
                                             const net::NetConfig& net);

}  // namespace mh
