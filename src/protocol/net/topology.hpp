// Gossip topologies for the discrete-event network core.
//
// A Topology is the directed who-ships-to-whom graph of one execution. The
// lockstep model's implicit shape — everyone ships to everyone — is the
// FullMesh kind (kept implicit: no O(parties^2) edge storage); the other
// kinds materialize a CSR adjacency built deterministically from
// (kind, parties, k, seed), so the same scenario spec always yields the same
// graph on any machine and thread count.
//
// Every kind is strongly connected by construction — RandomK lays a ring
// backbone (edge i -> i+1) under its random shortcuts, Ring is bidirectional,
// and TwoClusterBridge joins two intra-meshed halves through the 0 <-> half
// bridge pair — so with relay forwarding every block eventually reaches every
// party and the observed Delta of an un-faulted heterogeneous run is finite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "protocol/block.hpp"

namespace mh::net {

enum class TopologyKind : std::uint8_t {
  FullMesh = 0,     ///< every party ships directly to every other (lockstep shape)
  RandomK,          ///< ring backbone + k-1 seeded random shortcuts per party
  Ring,             ///< bidirectional ring: i <-> i+1 (mod parties)
  TwoClusterBridge, ///< two intra-meshed halves joined by the 0 <-> half bridge
};

const char* topology_kind_name(TopologyKind kind) noexcept;

class Topology {
 public:
  /// Builds the adjacency; throws std::invalid_argument (via MH_REQUIRE) on a
  /// shape the kind cannot realize (RandomK needs 1 <= k < parties, every
  /// multi-party kind needs parties >= 2).
  static Topology build(TopologyKind kind, std::size_t parties, std::size_t k,
                        std::uint64_t seed);

  [[nodiscard]] TopologyKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

  /// Out-degree of `p` (parties - 1 for the implicit full mesh).
  [[nodiscard]] std::size_t degree(PartyId p) const noexcept;

  /// Is `to` a direct out-neighbor of `from`? (Test and audit support.)
  [[nodiscard]] bool edge(PartyId from, PartyId to) const noexcept;

  /// Visit every out-neighbor of `p` in the deterministic build order.
  template <class Fn>
  void for_each_neighbor(PartyId p, Fn&& fn) const {
    if (kind_ == TopologyKind::FullMesh) {
      for (PartyId r = 0; r < parties_; ++r)
        if (r != p) fn(r);
      return;
    }
    for (std::size_t i = offsets_[p]; i < offsets_[p + 1]; ++i) fn(edges_[i]);
  }

 private:
  Topology(TopologyKind kind, std::size_t parties) : kind_(kind), parties_(parties) {}

  TopologyKind kind_ = TopologyKind::FullMesh;
  std::size_t parties_ = 0;
  /// CSR adjacency (empty for the implicit FullMesh).
  std::vector<std::uint32_t> offsets_;
  std::vector<PartyId> edges_;
};

}  // namespace mh::net
