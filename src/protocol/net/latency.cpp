#include "protocol/net/latency.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mh::net {

const char* latency_kind_name(LatencyKind kind) noexcept {
  switch (kind) {
    case LatencyKind::Degenerate: return "degenerate";
    case LatencyKind::Uniform: return "uniform";
    case LatencyKind::Geometric: return "geometric";
  }
  return "?";
}

std::size_t LatencyLaw::max_extra() const noexcept {
  return kind == LatencyKind::Degenerate ? fixed : cap;
}

void LatencyLaw::validate() const {
  if (kind == LatencyKind::Geometric)
    MH_REQUIRE_MSG(p > 0.0 && p < 1.0,
                   "geometric latency tail weight p = " + std::to_string(p) +
                       " must lie strictly inside (0, 1)");
}

std::size_t LatencyLaw::draw(Rng& rng) const noexcept {
  switch (kind) {
    case LatencyKind::Degenerate: return fixed;
    case LatencyKind::Uniform: return cap == 0 ? 0 : rng.below(cap + 1);
    case LatencyKind::Geometric:
      return std::min<std::size_t>(sample_geometric(rng, p), cap);
  }
  return 0;
}

std::string LatencyLaw::describe() const {
  switch (kind) {
    case LatencyKind::Degenerate: return std::string("degenerate(") + std::to_string(fixed) + ")";
    case LatencyKind::Uniform: return std::string("uniform[0,") + std::to_string(cap) + "]";
    case LatencyKind::Geometric:
      return std::string("geometric(p=") + std::to_string(p) + ",cap=" + std::to_string(cap) + ")";
  }
  return "?";
}

}  // namespace mh::net
