// Per-link latency laws for the discrete-event network core.
//
// A LatencyLaw describes the EXTRA delay, in whole slots, that one link send
// suffers beyond the model's minimum one-slot hop (and beyond any adversarial
// hold-back). Draws are counter-based: the Network derives one Rng per
// (slot, sender, recipient) from the NetConfig seed's engine::SeedSequence and
// hands it to draw(), so a link's delay is a pure function of the scenario
// spec — independent of query order, repetition, and thread count.
//
// Every law is CAPPED: max_extra() bounds every draw, so a heterogeneous
// execution realizes a finite per-hop delay and Delta-synchrony is always
// recoverable as the observed maximum over the run (which is exactly the
// Delta the oracle grades the execution at; see Simulation::net_report).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/random.hpp"

namespace mh::net {

enum class LatencyKind : std::uint8_t {
  Degenerate = 0,  ///< every link takes exactly `fixed` extra slots
  Uniform,         ///< uniform on {0, 1, ..., cap}
  Geometric,       ///< truncated geometric min(G, cap), Pr[G = j] = (1-p) p^j
};

const char* latency_kind_name(LatencyKind kind) noexcept;

struct LatencyLaw {
  LatencyKind kind = LatencyKind::Degenerate;
  std::size_t fixed = 0;  ///< Degenerate only: the constant extra delay
  std::size_t cap = 0;    ///< Uniform/Geometric: inclusive draw bound
  double p = 0.5;         ///< Geometric tail weight, must lie in (0, 1)

  /// The largest extra delay any draw can realize (the per-hop synchrony cap).
  [[nodiscard]] std::size_t max_extra() const noexcept;

  /// Throws std::invalid_argument naming the offending field when the law is
  /// not well-formed (Geometric p outside (0, 1)).
  void validate() const;

  /// One per-link draw; the caller supplies the (slot, sender, recipient)
  /// keyed stream so the value is pure in the scenario spec.
  [[nodiscard]] std::size_t draw(Rng& rng) const noexcept;

  [[nodiscard]] std::string describe() const;

  friend bool operator==(const LatencyLaw&, const LatencyLaw&) = default;
};

}  // namespace mh::net
