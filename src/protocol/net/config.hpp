// The scenario knob bundling one heterogeneous network shape.
//
// A NetConfig is pure data: (topology kind, out-degree k, per-link latency
// law, per-party egress bandwidth, link-stream seed). The default-constructed
// value is the DEGENERATE configuration — full mesh, zero extra latency,
// unlimited bandwidth — under which the event-core transport is contractually
// bit-identical to the lockstep slot-bucket transport it replaced (the golden
// digest pins enforce this). Anything else flips the Network into
// heterogeneous mode: sends follow the topology with multi-hop relay
// forwarding, every link draws a capped latency, and egress beyond the
// bandwidth cap spills into later slots.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "protocol/net/latency.hpp"
#include "protocol/net/topology.hpp"

namespace mh::net {

struct NetConfig {
  TopologyKind topology = TopologyKind::FullMesh;
  std::size_t k = 3;          ///< RandomK out-degree (ring backbone + k-1 shortcuts)
  LatencyLaw latency{};       ///< extra per-hop delay beyond the 1-slot minimum
  std::size_t bandwidth = 0;  ///< per-party egress blocks per slot; 0 = unlimited
  std::uint64_t seed = 0x6e6574ULL;  ///< namespace for the per-link draw streams

  /// The lockstep shape (explicit spelling of the default).
  [[nodiscard]] static NetConfig degenerate() noexcept { return {}; }

  /// Does this shape leave the lockstep model at all? Degenerate configs run
  /// the byte-identical legacy paths; heterogeneous ones run the event-core
  /// gossip paths and are graded at the observed Delta.
  [[nodiscard]] bool heterogeneous() const noexcept {
    return topology != TopologyKind::FullMesh || latency.kind != LatencyKind::Degenerate ||
           latency.fixed != 0 || bandwidth != 0;
  }

  /// Throws std::invalid_argument naming the offending knob when the shape is
  /// unrealizable for `parties` (k out of range, malformed latency law).
  void validate(std::size_t parties) const;

  [[nodiscard]] std::string describe() const;

  friend bool operator==(const NetConfig&, const NetConfig&) = default;
};

/// Applies the strict MH_NET_* env knobs on top of `base`:
///   MH_NET_TOPOLOGY       full-mesh | random-k | ring | two-cluster
///   MH_NET_K              random-k out-degree (positive integer)
///   MH_NET_LATENCY        degenerate | uniform | geometric
///   MH_NET_LATENCY_FIXED  degenerate extra delay (slots)
///   MH_NET_LATENCY_CAP    uniform/geometric inclusive draw bound (slots)
///   MH_NET_LATENCY_P      geometric tail weight, strictly inside (0, 1)
///   MH_NET_BANDWIDTH      per-party egress blocks per slot (0 = unlimited)
///   MH_NET_SEED           link-stream seed namespace
/// Malformed values throw std::invalid_argument naming variable and value;
/// unset or empty keeps the `base` field.
[[nodiscard]] NetConfig net_config_from_env(NetConfig base = {});

}  // namespace mh::net
