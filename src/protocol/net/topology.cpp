#include "protocol/net/topology.hpp"

#include <algorithm>
#include <string>

#include "support/check.hpp"
#include "support/random.hpp"

namespace mh::net {

const char* topology_kind_name(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::FullMesh: return "full-mesh";
    case TopologyKind::RandomK: return "random-k";
    case TopologyKind::Ring: return "ring";
    case TopologyKind::TwoClusterBridge: return "two-cluster";
  }
  return "?";
}

namespace {

/// Materializes a CSR from per-party neighbor lists (already deduplicated,
/// self-loop free, in deterministic build order).
void pack(std::vector<std::vector<PartyId>>& adj, std::vector<std::uint32_t>& offsets,
          std::vector<PartyId>& edges) {
  offsets.assign(adj.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t p = 0; p < adj.size(); ++p) {
    offsets[p] = static_cast<std::uint32_t>(total);
    total += adj[p].size();
  }
  offsets[adj.size()] = static_cast<std::uint32_t>(total);
  edges.reserve(total);
  for (const auto& row : adj)
    for (PartyId r : row) edges.push_back(r);
}

}  // namespace

Topology Topology::build(TopologyKind kind, std::size_t parties, std::size_t k,
                         std::uint64_t seed) {
  MH_REQUIRE_MSG(parties >= 1, "a topology needs at least one party, got " +
                                   std::to_string(parties));
  Topology topo(kind, parties);
  if (kind == TopologyKind::FullMesh) return topo;  // implicit adjacency

  std::vector<std::vector<PartyId>> adj(parties);
  if (parties == 1) {  // a single party has no links under any kind
    pack(adj, topo.offsets_, topo.edges_);
    return topo;
  }
  switch (kind) {
    case TopologyKind::FullMesh:
      break;  // handled above
    case TopologyKind::RandomK: {
      MH_REQUIRE_MSG(k >= 1 && k < parties,
                     "random-k topology needs 1 <= k < parties, got k = " +
                         std::to_string(k) + " with " + std::to_string(parties) +
                         " parties");
      // Ring backbone first: the i -> i+1 edge guarantees strong connectivity
      // regardless of what the shortcut draws land on. Shortcuts come from
      // one seeded stream in party order, so the graph is pure in (seed, n, k).
      Rng rng(seed ^ 0x746f706f6c6f6779ULL);  // "topology"
      for (PartyId p = 0; p < parties; ++p) {
        auto& row = adj[p];
        row.push_back(static_cast<PartyId>((p + 1) % parties));
        while (row.size() < k) {
          const auto cand = static_cast<PartyId>(rng.below(parties));
          if (cand == p || std::find(row.begin(), row.end(), cand) != row.end()) continue;
          row.push_back(cand);
        }
      }
      break;
    }
    case TopologyKind::Ring:
      for (PartyId p = 0; p < parties; ++p) {
        adj[p].push_back(static_cast<PartyId>((p + 1) % parties));
        if (parties > 2)
          adj[p].push_back(static_cast<PartyId>((p + parties - 1) % parties));
      }
      break;
    case TopologyKind::TwoClusterBridge: {
      // Two intra-meshed halves [0, half) and [half, n); parties 0 and `half`
      // carry the only inter-cluster edges, so every cross-cluster block pays
      // the bridge hop — the "two datacenters, one peering link" shape.
      const std::size_t half = parties / 2;
      MH_REQUIRE_MSG(half >= 1, "two-cluster topology needs at least 2 parties, got " +
                                    std::to_string(parties));
      for (PartyId p = 0; p < parties; ++p) {
        const bool low = p < half;
        const std::size_t begin = low ? 0 : half;
        const std::size_t end = low ? half : parties;
        for (std::size_t r = begin; r < end; ++r)
          if (r != p) adj[p].push_back(static_cast<PartyId>(r));
      }
      adj[0].push_back(static_cast<PartyId>(half));
      adj[half].push_back(0);
      break;
    }
  }
  pack(adj, topo.offsets_, topo.edges_);
  return topo;
}

std::size_t Topology::degree(PartyId p) const noexcept {
  if (kind_ == TopologyKind::FullMesh) return parties_ - 1;
  return offsets_[p + 1] - offsets_[p];
}

bool Topology::edge(PartyId from, PartyId to) const noexcept {
  if (from == to) return false;
  if (kind_ == TopologyKind::FullMesh) return true;
  for (std::size_t i = offsets_[from]; i < offsets_[from + 1]; ++i)
    if (edges_[i] == to) return true;
  return false;
}

}  // namespace mh::net
