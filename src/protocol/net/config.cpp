#include "protocol/net/config.hpp"

#include "support/check.hpp"
#include "support/env.hpp"

namespace mh::net {

void NetConfig::validate(std::size_t parties) const {
  MH_REQUIRE_MSG(parties >= 1, "a network needs at least one party, got " +
                                   std::to_string(parties));
  latency.validate();
  if (topology == TopologyKind::RandomK && parties > 1)
    MH_REQUIRE_MSG(k >= 1 && k < parties,
                   "random-k topology needs 1 <= k < parties, got k = " +
                       std::to_string(k) + " with " + std::to_string(parties) +
                       " parties");
}

std::string NetConfig::describe() const {
  std::string out = topology_kind_name(topology);
  if (topology == TopologyKind::RandomK) out += "(k=" + std::to_string(k) + ")";
  out += " / " + latency.describe();
  out += bandwidth == 0 ? " / bw=inf" : " / bw=" + std::to_string(bandwidth);
  return out;
}

NetConfig net_config_from_env(NetConfig base) {
  NetConfig cfg = base;
  static const char* const kTopologies[] = {"full-mesh", "random-k", "ring", "two-cluster"};
  cfg.topology = static_cast<TopologyKind>(env::choice(
      "MH_NET_TOPOLOGY", kTopologies, 4, static_cast<std::size_t>(base.topology)));
  cfg.k = env::size("MH_NET_K", base.k, 1);
  static const char* const kLaws[] = {"degenerate", "uniform", "geometric"};
  cfg.latency.kind = static_cast<LatencyKind>(env::choice(
      "MH_NET_LATENCY", kLaws, 3, static_cast<std::size_t>(base.latency.kind)));
  cfg.latency.fixed = env::size("MH_NET_LATENCY_FIXED", base.latency.fixed);
  cfg.latency.cap = env::size("MH_NET_LATENCY_CAP", base.latency.cap);
  cfg.latency.p = env::positive_number("MH_NET_LATENCY_P", base.latency.p);
  cfg.bandwidth = env::size("MH_NET_BANDWIDTH", base.bandwidth);
  cfg.seed = env::size("MH_NET_SEED", static_cast<std::size_t>(base.seed));
  cfg.latency.validate();  // rejects e.g. MH_NET_LATENCY_P=1.5 up front
  return cfg;
}

}  // namespace mh::net
