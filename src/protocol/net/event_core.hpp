// The discrete-event heart of the transport: per-recipient priority queues of
// timestamped deliveries.
//
// Every scheduled send becomes a Delivery{due, seq, block}; seq is one global
// monotone counter, so the pop order (due ascending, then seq ascending) is a
// total order fixed at scheduling time. For the degenerate lockstep
// configuration this reproduces the slot-bucket transport's contract exactly:
// within one recipient, equal-due deliveries pop in scheduling order (global
// seq preserves per-recipient insertion order), and buckets pop due-ascending
// — which is why the golden transport digests survive the refactor
// bit-identically. Under heterogeneous latency laws, deliveries may pop out
// of insertion order (a late send with a short draw overtakes an early send
// with a long one); the (due, seq) key is the contract drivers rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "protocol/block.hpp"

namespace mh::net {

struct Delivery {
  std::size_t due = 0;    ///< delivery at the onset of this slot
  std::uint64_t seq = 0;  ///< global scheduling counter (ties within a due)
  Block block;
};

class EventCore {
 public:
  explicit EventCore(std::size_t parties) : heaps_(parties) {}

  /// Schedule one delivery; the global seq counter stamps it.
  void schedule(PartyId recipient, std::size_t due, const Block& block) {
    heaps_[recipient].push(Delivery{due, seq_++, block});
  }

  /// Append every delivery for `recipient` with due <= slot to `out`, in
  /// (due asc, seq asc) order, removing them from the queue.
  void collect_due(PartyId recipient, std::size_t slot, std::vector<Block>* out) {
    auto& heap = heaps_[recipient];
    while (!heap.empty() && heap.top().due <= slot) {
      out->push_back(heap.top().block);
      heap.pop();
    }
  }

  /// Crash semantics: every queued delivery toward `recipient` is volatile
  /// endpoint state and is lost.
  void wipe(PartyId recipient) { heaps_[recipient] = Heap(); }

  [[nodiscard]] std::size_t pending(PartyId recipient) const {
    return heaps_[recipient].size();
  }

 private:
  struct Later {
    bool operator()(const Delivery& a, const Delivery& b) const noexcept {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };
  using Heap = std::priority_queue<Delivery, std::vector<Delivery>, Later>;

  std::vector<Heap> heaps_;
  std::uint64_t seq_ = 0;
};

}  // namespace mh::net
