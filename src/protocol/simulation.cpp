#include "protocol/simulation.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mh {

Simulation::Simulation(const LeaderSchedule& schedule, SimulationConfig config,
                       std::size_t delta, Adversary* adversary)
    : schedule_(schedule),
      config_(config),
      network_(schedule.honest_parties(), delta),
      adversary_(adversary),
      rng_(config.seed) {
  nodes_.reserve(schedule.honest_parties());
  for (PartyId p = 0; p < schedule.honest_parties(); ++p)
    nodes_.emplace_back(p, config.tie_break, &schedule_);
  all_blocks_.push_back(genesis_block());
  if (adversary_) adversary_->begin(*this);
}

void Simulation::run() { run_until(schedule_.horizon()); }

void Simulation::run_until(std::size_t slot) {
  MH_REQUIRE(slot <= schedule_.horizon());
  while (next_slot_ <= slot) step();
  // Axiom A0 delivers a slot's broadcasts before the slot concludes; flush
  // everything already due at the upcoming onset so observations at the close
  // of `slot` see its blocks. step() re-collects idempotently (queues drain).
  deliver_due(next_slot_);
  check_watches(next_slot_);
}

void Simulation::deliver_due(std::size_t slot) {
  for (HonestNode& node : nodes_)
    for (const Block& b : network_.collect(node.id(), slot)) {
      node.receive(b);
      if (node.tree().contains(b.hash)) public_tree_.add(b);
    }
}

void Simulation::step() {
  const std::size_t t = next_slot_++;

  // 1. Deliveries due at the onset of slot t, then settlement observations.
  deliver_due(t);
  check_watches(t);

  // 2. Adversarial action (minting / injection for this slot). Late
  //    injections scheduled for slot t must still reach the leaders before
  //    they forge (the adversary is rushing).
  if (adversary_) {
    adversary_->on_slot_begin(t, *this);
    deliver_due(t);
  }

  // 3. Honest leaders forge concurrently: all choose parents before any new
  //    slot-t block is visible to the others.
  std::vector<Block> forged;
  for (PartyId leader : schedule_.leaders(t).honest) {
    HonestNode& node = nodes_[leader];
    BlockHash parent = node.best_head();
    if (config_.tie_break == TieBreak::AdversarialOrder && adversary_) {
      const std::vector<BlockHash> ties = node.tree().max_length_heads();
      if (ties.size() > 1) {
        parent = adversary_->break_tie(leader, ties, *this);
        MH_REQUIRE_MSG(std::find(ties.begin(), ties.end(), parent) != ties.end(),
                       "adversary must pick one of the tied heads");
      }
    }
    forged.push_back(make_block(parent, t, leader, rng_()));
  }

  // 4. Broadcast with adversary-chosen delays; record; leaders adopt their
  //    own blocks immediately. Honest participants broadcast *chains* (the
  //    model's messages are blockchains), so the ancestry ships along: the
  //    adversary cannot orphan an honest block at a recipient by having
  //    disclosed the parent only selectively.
  for (const Block& block : forged) {
    global_tree_.add(block);
    public_tree_.add(block);
    all_blocks_.push_back(block);
    nodes_[block.issuer].receive(block);
    std::vector<std::size_t> delays;
    if (adversary_) delays = adversary_->delivery_delays(block, t, *this);
    for (BlockHash h : global_tree_.chain(block.parent))
      if (h != genesis_block().hash)
        network_.broadcast(global_tree_.block(h), t, delays);
    network_.broadcast(block, t, delays);
  }
}

Block Simulation::mint_adversarial(BlockHash parent, std::size_t slot, std::uint64_t payload) {
  MH_REQUIRE_MSG(schedule_.eligible(kAdversary, slot), "not an adversarial slot");
  MH_REQUIRE_MSG(global_tree_.contains(parent), "unknown parent");
  MH_REQUIRE_MSG(global_tree_.block(parent).slot < slot, "labels must increase along chains");
  const Block block = make_block(parent, slot, kAdversary, payload);
  global_tree_.add(block);
  all_blocks_.push_back(block);
  return block;
}

bool Simulation::observed_settlement_violation(std::size_t s) const {
  const std::vector<BlockHash> heads = public_tree_.max_length_heads();
  for (std::size_t a = 0; a < heads.size(); ++a)
    for (std::size_t b = a + 1; b < heads.size(); ++b) {
      const auto exact_at = [&](BlockHash head) -> std::optional<BlockHash> {
        const auto deepest = public_tree_.block_at_slot(head, s);
        if (deepest && public_tree_.block(*deepest).slot == s) return deepest;
        return std::nullopt;
      };
      const auto sa = exact_at(heads[a]);
      const auto sb = exact_at(heads[b]);
      if (!sa && !sb) continue;  // both chains skip slot s: no disagreement
      if (sa != sb) return true;
    }
  return false;
}

void Simulation::watch_settlement(std::size_t s, std::size_t k) {
  MH_REQUIRE(s >= 1 && k >= 1);
  watches_.push_back(Watch{s, k, false, 0, false});
}

bool Simulation::settlement_watch_violated(std::size_t s) const {
  for (const Watch& watch : watches_)
    if (watch.s == s) return watch.violated;
  MH_REQUIRE_MSG(false, "no watch registered for this slot");
  return false;
}

BlockHash Simulation::prefix_at(BlockHash head, std::size_t s) const {
  const auto block = global_tree_.block_at_slot(head, s);
  return block ? *block : genesis_block().hash;
}

void Simulation::check_watches(std::size_t onset_slot) {
  if (watches_.empty()) return;
  std::size_t best = 0;
  for (const HonestNode& node : nodes_) best = std::max(best, node.best_length());

  for (Watch& watch : watches_) {
    if (watch.violated) continue;
    // Observing the fork at the close of slot onset_slot - 1; the settlement
    // game begins its checks at forks covering slot s + k.
    if (onset_slot < watch.s + watch.k + 1) continue;
    for (const HonestNode& node : nodes_) {
      if (node.best_length() != best) continue;
      const BlockHash prefix = prefix_at(node.best_head(), watch.s);
      if (!watch.has_record) {
        watch.has_record = true;
        watch.recorded_prefix = prefix;
      } else if (prefix != watch.recorded_prefix) {
        watch.violated = true;  // reorg past depth k, or concurrent disagreement
        break;
      }
    }
  }
}

std::size_t Simulation::observed_slot_divergence() const {
  std::size_t best = 0;
  for (const HonestNode& n1 : nodes_)
    for (const HonestNode& n2 : nodes_) {
      const BlockHash h1 = n1.best_head();
      const BlockHash h2 = n2.best_head();
      const std::uint64_t l1 = global_tree_.block(h1).slot;
      if (l1 > global_tree_.block(h2).slot) continue;
      const BlockHash meet = global_tree_.common_ancestor(h1, h2);
      best = std::max(best, static_cast<std::size_t>(l1 - global_tree_.block(meet).slot));
    }
  return best;
}

bool Simulation::observed_cp_slot_violation(std::size_t k) const {
  for (const HonestNode& n1 : nodes_)
    for (const HonestNode& n2 : nodes_) {
      const BlockHash h1 = n1.best_head();
      const BlockHash h2 = n2.best_head();
      const std::uint64_t l1 = global_tree_.block(h1).slot;
      if (l1 > global_tree_.block(h2).slot) continue;
      if (l1 < k) continue;
      const BlockHash meet = global_tree_.common_ancestor(h1, h2);
      // The trimmed chain h1-floor-k ends at the deepest block of slot
      // <= l1 - k; it is a prefix of h2 iff the meet lies at or below it.
      const std::uint64_t cutoff = l1 - k;
      BlockHash trimmed = h1;
      while (trimmed != genesis_block().hash && global_tree_.block(trimmed).slot > cutoff)
        trimmed = global_tree_.block(trimmed).parent;
      const std::uint64_t meet_slot = global_tree_.block(meet).slot;
      if (meet_slot < global_tree_.block(trimmed).slot) return true;
    }
  return false;
}

}  // namespace mh
