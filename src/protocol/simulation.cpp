#include "protocol/simulation.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "support/check.hpp"

namespace mh {

Simulation::Simulation(const ScheduleSource& schedule, SimulationConfig config,
                       std::size_t delta, Adversary* adversary,
                       faults::FaultInjector* faults, net::NetConfig net)
    : schedule_(schedule),
      config_(config),
      network_(schedule.honest_parties(), delta, net),
      adversary_(adversary),
      faults_(faults),
      hetero_(network_.heterogeneous()),
      rng_(config.seed) {
  if (faults_) {
    MH_REQUIRE_MSG(faults_->parties() == schedule.honest_parties() &&
                       faults_->horizon() == schedule.horizon(),
                   "fault injector shaped for " + std::to_string(faults_->parties()) +
                       " parties x " + std::to_string(faults_->horizon()) +
                       " slots, execution has " +
                       std::to_string(schedule.honest_parties()) + " x " +
                       std::to_string(schedule.horizon()));
    // An empty plan is the null hypothesis: no query can ever fire, so skip
    // the per-delivery and per-slot injector consultations entirely (the E16
    // overhead gate holds the empty-plan run within 2% of the bare one).
    fault_active_ = !faults_->plan().empty();
    if (fault_active_) network_.attach_faults(faults_);
  }
  nodes_.reserve(schedule.honest_parties());
  for (PartyId p = 0; p < schedule.honest_parties(); ++p)
    nodes_.emplace_back(p, config.tie_break, &schedule_);
  all_blocks_.push_back(genesis_block());
  if (adversary_) adversary_->begin(*this);
}

void Simulation::run() { run_until(schedule_.horizon()); }

void Simulation::run_until(std::size_t slot) {
  MH_REQUIRE_MSG(slot <= schedule_.horizon(),
                 "run_until(" + std::to_string(slot) + ") is past the horizon " +
                     std::to_string(schedule_.horizon()));
  while (next_slot_ <= slot) step();
  // Axiom A0 delivers a slot's broadcasts before the slot concludes; flush
  // everything already due at the upcoming onset so observations at the close
  // of `slot` see its blocks. step() re-collects idempotently (queues drain).
  deliver_due(next_slot_);
  check_watches(next_slot_);
}

void Simulation::public_add(const Block& block) {
  switch (public_tree_.try_add(block)) {
    case BlockTree::AddResult::Added:
      public_orphans_.flush(public_tree_, nullptr);
      break;
    case BlockTree::AddResult::Orphan:
      // Unreachable while mirroring is synchronous and per-node acceptance is
      // parent-first, but the public tree must never silently lose a block
      // again: buffer and retry on progress instead of dropping.
      public_orphans_.buffer(block);
      break;
    case BlockTree::AddResult::Duplicate:
    case BlockTree::AddResult::Invalid:
      break;
  }
}

void Simulation::deliver_due(std::size_t slot) {
  // Delivery counters aggregate over the whole node loop (one add per round):
  // per-(node, slot) hooks here run millions of times on the E14 scale cells.
  MH_OBS_ONLY(std::size_t delivered = 0;)
  for (HonestNode& node : nodes_) {
    // A crashed endpoint neither collects nor processes; its queue was wiped
    // at crash time and stays empty while it is down.
    if (fault_active_ && faults_->is_down(node.id(), slot)) continue;
    network_.collect_into(node.id(), slot, &delivery_scratch_);
    MH_OBS_ONLY(delivered += delivery_scratch_.size();)
    for (const Block& b : delivery_scratch_) {
      accepted_scratch_.clear();
      node.receive(b, &accepted_scratch_);
      // Every block the node admitted — including orphans unblocked by this
      // delivery — joins the public tree (the seed dropped flushed orphans,
      // hiding real public-fork disagreements).
      for (const Block& a : accepted_scratch_) {
        // Observed Delta: the max delay until a node could first ADOPT an
        // honest block — chain-complete acceptance, not raw arrival. (A
        // partial leak parks a block in the orphan buffer where it extends
        // nothing; grading the run at arrival delay undercuts the fork
        // projection — F4 fails at an observed Delta the execution never
        // actually satisfied.) Down slots are discounted, not the whole
        // window: a crashed endpoint cannot receive (and the restart re-sync
        // delivers promptly), but every UP slot the block went undelivered is
        // the network's degradation — a later unrelated crash must not excuse
        // it. The ratchet precheck keeps slot - a.slot - 1 from underflowing
        // on rushed injections.
        if ((fault_active_ || hetero_) && a.issuer != kAdversary &&
            slot > a.slot + 1 + observed_delta_) {
          const std::size_t raw = slot - a.slot - 1;
          const std::size_t down =
              fault_active_ ? faults_->down_slots_in(node.id(), a.slot + 1, slot) : 0;
          if (raw > down + observed_delta_) observed_delta_ = raw - down;
        }
        public_add(a);
      }
    }
  }
  MH_OBS_ONLY(if (delivered != 0) {
    MH_OBS_COUNT("protocol.net.blocks_delivered", delivered);
    MH_OBS_COUNT("protocol.node.blocks_received", delivered);
  })
}

void Simulation::step() {
  const std::size_t t = next_slot_++;
  MH_OBS_COUNT("protocol.sim.slots", 1);

  // Epoch-driven schedules reveal their slots here: an epoch opening at slot
  // t folds its nonce from the public chain exactly as of the previous slot's
  // close (deliveries due at t have not landed yet). Pre-drawn schedules
  // no-op.
  schedule_.advance_to(t, public_tree_);

  // 0. Fault events land at the slot onset, BEFORE deliveries and forging: a
  //    restarted node is fully re-synced before it acts.
  if (fault_active_) apply_fault_events(t);

  // 1. Deliveries due at the onset of slot t, then settlement observations.
  deliver_due(t);
  check_watches(t);

  // 2. Adversarial action (minting / injection for this slot). Late
  //    injections scheduled for slot t must still reach the leaders before
  //    they forge (the adversary is rushing).
  if (adversary_) {
    adversary_->on_slot_begin(t, *this);
    deliver_due(t);
  }

  // 3. Honest leaders forge concurrently: all choose parents before any new
  //    slot-t block is visible to the others.
  std::vector<Block> forged;
  for (PartyId leader : schedule_.leaders(t).honest) {
    // A crashed leader forges nothing: the slot loses this leadership (the
    // oracle projects the matching "effective" characteristic string).
    if (fault_active_ && faults_->is_down(leader, t)) {
      ++leaderships_skipped_;
      ++faults_->stats().leaderships_skipped;
      MH_OBS_COUNT("protocol.faults.leaderships_skipped", 1);
      continue;
    }
    HonestNode& node = nodes_[leader];
    BlockHash parent = node.best_head();
    if (config_.tie_break == TieBreak::AdversarialOrder && adversary_) {
      const std::vector<BlockHash> ties = node.tree().max_length_heads();
      if (ties.size() > 1) {
        parent = adversary_->break_tie(leader, ties, *this);
        MH_REQUIRE_MSG(std::find(ties.begin(), ties.end(), parent) != ties.end(),
                       "adversary must pick one of the tied heads");
      }
    }
    forged.push_back(make_block(parent, t, leader, rng_()));
  }
  if (!forged.empty()) {
    MH_OBS_COUNT("protocol.sim.honest_forged", forged.size());
    MH_OBS_COUNT("protocol.node.blocks_received", forged.size());  // leader self-receives
  }

  // 4. Broadcast; record; leaders adopt their own blocks immediately. Honest
  //    participants broadcast *chains* (the model's messages are blockchains),
  //    so the ancestry ships along: the adversary cannot orphan an honest
  //    block at a recipient by having disclosed the parent only selectively.
  //    The chain-synced transport ships each recipient only what it has not
  //    already been scheduled to receive by the block's due slot.
  for (const Block& block : forged) {
    global_tree_.add(block);
    all_blocks_.push_back(block);
    accepted_scratch_.clear();
    nodes_[block.issuer].receive(block, &accepted_scratch_);
    for (const Block& a : accepted_scratch_) public_add(a);
    std::vector<std::size_t> delays;
    if (adversary_) delays = adversary_->delivery_delays(block, t, *this);
    network_.broadcast_chain(global_tree_, block, t, delays);
  }
}

void Simulation::apply_fault_events(std::size_t slot) {
  faults_->crashes_at(slot, &fault_scratch_);
  for (const PartyId p : fault_scratch_) {
    network_.crash_recipient(p);
    nodes_[p].crash();
    ++faults_->stats().crashes;
    MH_OBS_COUNT("protocol.faults.crashes", 1);
  }
  faults_->restarts_at(slot, &fault_scratch_);
  for (const PartyId p : fault_scratch_) {
    ++faults_->stats().restarts;
    MH_OBS_COUNT("protocol.faults.restarts", 1);
    resync_node(p, slot);
  }
  const std::size_t heals = faults_->heals_at(slot);
  if (heals != 0) {
    faults_->stats().partitions_healed += heals;
    MH_OBS_COUNT("protocol.faults.partitions_healed", heals);
    // On heal every up party re-syncs: cross-group ships were dropped while
    // the partition stood, and no watermark claims they were scheduled, so
    // the diff against the public view is exactly what each side missed.
    for (const HonestNode& node : nodes_)
      if (!faults_->is_down(node.id(), slot)) resync_node(node.id(), slot);
  }
  MH_OBS_GAUGE_SET("protocol.faults.partitions_active", faults_->partitions_active(slot));
}

void Simulation::resync_node(PartyId party, std::size_t slot) {
  // The public view holds everything any honest node ever accepted — a
  // superset of every individual view, and in particular of everything that
  // was in flight toward `party` when it crashed (forgers self-accept, so a
  // broadcast block is public from its forge slot). Its arrival order is
  // parents-first, so shipping the missing suffix in that order keeps the
  // ancestors-first contract; blocks the node already holds are skipped, so
  // the re-ship is bounded by what was actually lost.
  const HonestNode& node = nodes_[party];
  for (const BlockHash h : public_tree_.arrival_order()) {
    if (h == genesis_block().hash || node.tree().contains(h)) continue;
    network_.resync_ship(public_tree_.block(h), party, slot);
  }
}

FaultReport Simulation::fault_report() const {
  FaultReport report;
  if (!faults_) return report;
  report.faulted = true;
  report.observed_delta = observed_delta_;
  report.leaderships_skipped = leaderships_skipped_;
  report.stats = faults_->stats();
  // Non-delivery sweep: an honest block whose delivery window closed within
  // the run must have reached every node it could reach — one that never
  // crossed an unhealed partition (or fell to a link drop on a branch no one
  // extended) makes the realized delay infinite, not merely large. Blocks
  // delivered before a later crash persist in the tree, so only windows
  // intersecting down-time are excused.
  const std::size_t last_onset = next_slot_;  // deliveries are flushed up to here
  // Heterogeneous shapes are strongly connected: non-delivery there is
  // lateness (net_report() inflates the observed Delta for it), never an
  // unbounded partition, and the configured-Delta window test below would
  // misfire on legitimate multi-hop delays.
  if (hetero_) return report;
  for (const Block& b : all_blocks_) {
    if (b.issuer == kAdversary || b.hash == genesis_block().hash) continue;
    if (b.slot + 1 + network_.delta() > last_onset) continue;  // window still open
    for (const HonestNode& node : nodes_) {
      if (node.id() == b.issuer) continue;
      if (faults_->is_down(node.id(), last_onset)) continue;  // down at end: no claim
      if (faults_->down_in_window(node.id(), b.slot + 1, last_onset)) continue;
      // Adoptability, not arrival: a block parked forever in the orphan
      // buffer (ancestry lost to a drop) was "delivered" but extends nothing.
      if (!node.tree().contains(b.hash)) {
        report.delivery_unbounded = true;
        return report;
      }
    }
  }
  return report;
}

NetReport Simulation::net_report() const {
  NetReport report;
  report.heterogeneous = hetero_;
  report.observed_delta = observed_delta_;
  if (!hetero_) return report;
  // Pending-delivery inflation: a block some up node has not adopted by the
  // flushed last onset would, if adopted at the very next opportunity,
  // realize a delay of at least `last_onset - forge slot` (minus the slots
  // the node spent crashed). Raising the observed Delta to that floor keeps
  // the delivery window open under the observed-Delta projection, so the
  // grade is sound without ever being unbounded — gossip on a strongly
  // connected topology delivers eventually; the run merely ended first.
  const std::size_t last_onset = next_slot_;
  for (const Block& b : all_blocks_) {
    if (b.issuer == kAdversary || b.hash == genesis_block().hash) continue;
    for (const HonestNode& node : nodes_) {
      if (node.id() == b.issuer) continue;
      if (fault_active_ && faults_->is_down(node.id(), last_onset)) continue;
      if (node.tree().contains(b.hash)) continue;
      const std::size_t down =
          fault_active_ ? faults_->down_slots_in(node.id(), b.slot + 1, last_onset) : 0;
      if (last_onset <= b.slot + down) continue;  // window effectively unopened
      ++report.pending_inflations;
      const std::size_t floor_delay = last_onset - b.slot - down;
      report.observed_delta = std::max(report.observed_delta, floor_delay);
    }
  }
  return report;
}

Block Simulation::mint_adversarial(BlockHash parent, std::size_t slot, std::uint64_t payload) {
  MH_REQUIRE_MSG(schedule_.eligible(kAdversary, slot),
                 "slot " + std::to_string(slot) + " holds no adversarial leadership");
  MH_REQUIRE_MSG(global_tree_.contains(parent), "unknown parent for an adversarial mint at slot " +
                                                    std::to_string(slot));
  MH_REQUIRE_MSG(global_tree_.block(parent).slot < slot,
                 "labels must increase along chains: parent sits at slot " +
                     std::to_string(global_tree_.block(parent).slot) +
                     ", mint requested at slot " + std::to_string(slot));
  const Block block = make_block(parent, slot, kAdversary, payload);
  global_tree_.add(block);
  all_blocks_.push_back(block);
  return block;
}

bool Simulation::observed_settlement_violation(std::size_t s) const {
  const std::vector<BlockHash> heads = public_tree_.max_length_heads();
  // What each maximal public chain says about slot s: its block labelled
  // exactly s, or "the chain skips s" (nullopt). Any mismatch between two
  // maximal chains is a settlement disagreement an observer could be shown.
  std::vector<std::optional<BlockHash>> exact_at(heads.size());
  for (std::size_t i = 0; i < heads.size(); ++i) {
    const auto deepest = public_tree_.block_at_slot(heads[i], s);
    if (deepest && public_tree_.block(*deepest).slot == s) exact_at[i] = deepest;
  }
  for (std::size_t a = 0; a < heads.size(); ++a)
    for (std::size_t b = a + 1; b < heads.size(); ++b) {
      if (!exact_at[a] && !exact_at[b]) continue;  // both skip slot s
      if (exact_at[a] != exact_at[b]) return true;
    }
  return false;
}

void Simulation::watch_settlement(std::size_t s, std::size_t k) {
  MH_REQUIRE_MSG(s >= 1 && k >= 1, "settlement watch needs slot >= 1 and depth >= 1, got s = " +
                                       std::to_string(s) + ", k = " + std::to_string(k));
  watches_.push_back(Watch{s, k, false, 0, false});
}

bool Simulation::settlement_watch_violated(std::size_t s) const {
  for (const Watch& watch : watches_)
    if (watch.s == s) return watch.violated;
  MH_REQUIRE_MSG(false, "no watch registered for this slot");
  return false;
}

BlockHash Simulation::prefix_at(BlockHash head, std::size_t s) const {
  const auto block = global_tree_.block_at_slot(head, s);
  return block ? *block : genesis_block().hash;
}

void Simulation::check_watches(std::size_t onset_slot) {
  if (watches_.empty()) return;
  // Crashed nodes are not observers: their (stale) views cannot be handed to
  // a settlement client until they restart and re-sync.
  std::size_t best = 0;
  for (const HonestNode& node : nodes_) {
    if (fault_active_ && faults_->is_down(node.id(), onset_slot)) continue;
    best = std::max(best, node.best_length());
  }

  for (Watch& watch : watches_) {
    if (watch.violated) continue;
    // Observing the fork at the close of slot onset_slot - 1; the settlement
    // game begins its checks at forks covering slot s + k.
    if (onset_slot < watch.s + watch.k + 1) continue;
    for (const HonestNode& node : nodes_) {
      if (fault_active_ && faults_->is_down(node.id(), onset_slot)) continue;
      if (node.best_length() != best) continue;
      const BlockHash prefix = prefix_at(node.best_head(), watch.s);
      if (!watch.has_record) {
        watch.has_record = true;
        watch.recorded_prefix = prefix;
      } else if (prefix != watch.recorded_prefix) {
        watch.violated = true;  // reorg past depth k, or concurrent disagreement
        break;
      }
    }
  }
}

std::vector<BlockHash> Simulation::distinct_best_heads() const {
  std::vector<BlockHash> heads;
  heads.reserve(nodes_.size());
  for (const HonestNode& node : nodes_) {
    // A crashed node holds no adoptable view right now.
    if (fault_active_ && faults_->is_down(node.id(), current_slot())) continue;
    heads.push_back(node.best_head());
  }
  std::sort(heads.begin(), heads.end());
  heads.erase(std::unique(heads.begin(), heads.end()), heads.end());
  return heads;
}

std::size_t Simulation::observed_slot_divergence() const {
  // Divergence depends only on the adopted head pair, so pairs of DISTINCT
  // heads suffice (equal heads contribute 0).
  const std::vector<BlockHash> heads = distinct_best_heads();
  std::size_t best = 0;
  for (const BlockHash h1 : heads)
    for (const BlockHash h2 : heads) {
      const std::uint64_t l1 = global_tree_.block(h1).slot;
      if (l1 > global_tree_.block(h2).slot) continue;
      const BlockHash meet = global_tree_.common_ancestor(h1, h2);
      best = std::max(best, static_cast<std::size_t>(l1 - global_tree_.block(meet).slot));
    }
  return best;
}

bool Simulation::observed_cp_slot_violation(std::size_t k) const {
  const std::vector<BlockHash> heads = distinct_best_heads();
  for (const BlockHash h1 : heads)
    for (const BlockHash h2 : heads) {
      const std::uint64_t l1 = global_tree_.block(h1).slot;
      if (l1 > global_tree_.block(h2).slot) continue;
      if (l1 < k) continue;
      const BlockHash meet = global_tree_.common_ancestor(h1, h2);
      // The trimmed chain h1-floor-k ends at the deepest block of slot
      // <= l1 - k; it is a prefix of h2 iff the meet lies at or below it.
      const std::uint64_t cutoff = l1 - k;
      const auto trimmed_block = global_tree_.block_at_slot(h1, cutoff);
      const BlockHash trimmed = trimmed_block ? *trimmed_block : genesis_block().hash;
      const std::uint64_t meet_slot = global_tree_.block(meet).slot;
      if (meet_slot < global_tree_.block(trimmed).slot) return true;
    }
  return false;
}

}  // namespace mh
