// Leader schedules. Two generation modes:
//
//   * symbol-level: draw a characteristic symbol per slot from a SymbolLaw /
//     TetraLaw and materialize leaders (h -> one honest party, H -> several,
//     A -> the adversarial coalition);
//   * party-level: every party independently wins slot leadership with
//     probability phi(stake) = 1 - (1 - f)^stake, the Praos VRF lottery. The
//     induced (pBot, ph, pH, pA) law is computed analytically so experiments
//     can compare the simulated protocol against the abstract analysis.
//
// A schedule is public (full-information model): the adversary reads it all.
#pragma once

#include <vector>

#include "chars/bernoulli.hpp"
#include "delta/semi_sync.hpp"
#include "protocol/block.hpp"
#include "support/random.hpp"

namespace mh {

struct SlotLeaders {
  std::vector<PartyId> honest;  ///< honest leaders of the slot (possibly several)
  bool adversarial = false;     ///< the coalition holds at least one leadership
};

class LeaderSchedule {
 public:
  LeaderSchedule(std::vector<SlotLeaders> slots, std::size_t honest_parties);

  /// Symbol-level generation: multiply honest slots elect exactly two distinct
  /// honest parties (the minimal realization of H; more leaders only help the
  /// adversary, cf. the settlement game granting A the choice of multiplicity).
  static LeaderSchedule from_symbol_law(const SymbolLaw& law, std::size_t horizon,
                                        std::size_t honest_parties, Rng& rng);
  static LeaderSchedule from_tetra_law(const TetraLaw& law, std::size_t horizon,
                                       std::size_t honest_parties, Rng& rng);

  /// Party-level Praos lottery: `honest_parties` parties of equal relative
  /// stake (1 - adversarial_stake) / honest_parties, plus one coalition with
  /// `adversarial_stake`; per-slot win probability phi(s) = 1 - (1-f)^s.
  static LeaderSchedule praos_lottery(double f, double adversarial_stake,
                                      std::size_t honest_parties, std::size_t horizon,
                                      Rng& rng);

  /// The induced i.i.d. law of the Praos lottery above (analytic).
  static TetraLaw praos_induced_law(double f, double adversarial_stake,
                                    std::size_t honest_parties);

  [[nodiscard]] std::size_t horizon() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t honest_parties() const noexcept { return honest_parties_; }
  [[nodiscard]] const SlotLeaders& leaders(std::size_t slot) const;

  /// Is `party` an eligible issuer for `slot`? (The simulated signature check.)
  [[nodiscard]] bool eligible(PartyId party, std::size_t slot) const;

  /// The characteristic string of the schedule (Definition 20 view).
  [[nodiscard]] TetraString characteristic() const;
  /// The synchronous {h,H,A} view; requires no empty slots.
  [[nodiscard]] CharString characteristic_sync() const;

 private:
  std::vector<SlotLeaders> slots_;  // index 0 <-> slot 1
  std::size_t honest_parties_;
};

}  // namespace mh
