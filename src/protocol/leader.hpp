// Leader schedules. Two generation modes:
//
//   * symbol-level: draw a characteristic symbol per slot from a SymbolLaw /
//     TetraLaw and materialize leaders (h -> one honest party, H -> several,
//     A -> the adversarial coalition);
//   * party-level: every party independently wins slot leadership with
//     probability phi(stake) = 1 - (1 - f)^stake, the Praos VRF lottery. The
//     induced (pBot, ph, pH, pA) law is computed analytically so experiments
//     can compare the simulated protocol against the abstract analysis.
//
// Both produce a LeaderSchedule: a fully pre-drawn, public (full-information)
// schedule the adversary reads in its entirety. The epoch-managed consensus
// layer (protocol/consensus) provides the third mode — a ScheduleSource whose
// slots are revealed per epoch, with the epoch nonce folded from the chain
// itself — behind the interface below, so the execution driver is agnostic to
// where leaderships come from.
#pragma once

#include <vector>

#include "chars/bernoulli.hpp"
#include "delta/semi_sync.hpp"
#include "protocol/block.hpp"
#include "support/random.hpp"

namespace mh {

class BlockTree;

struct SlotLeaders {
  std::vector<PartyId> honest;  ///< honest leaders of the slot (possibly several)
  bool adversarial = false;     ///< the coalition holds at least one leadership
};

/// Slot 0 is genesis: it is never issued, so it has no leaders. Shared by
/// every schedule implementation so leaders(0) and eligible(party, 0) agree.
[[nodiscard]] const SlotLeaders& genesis_slot_leaders() noexcept;

/// Where the execution driver reads leaderships from. A source is logically
/// immutable — the slots it reveals are a pure function of its construction
/// seed (and, for epoch-driven sources, of the chain feedback the driver
/// supplies via advance_to) — so all queries are const; lazily-materializing
/// implementations memoize behind that interface.
class ScheduleSource {
 public:
  virtual ~ScheduleSource() = default;

  [[nodiscard]] virtual std::size_t horizon() const noexcept = 0;
  [[nodiscard]] virtual std::size_t honest_parties() const noexcept = 0;

  /// Leaders of `slot`. Slot 0 is genesis and returns the empty leader set
  /// (matching eligible(party, 0) == false); slots past the horizon throw.
  [[nodiscard]] virtual const SlotLeaders& leaders(std::size_t slot) const = 0;

  /// Is `party` an eligible issuer for `slot`? (The simulated signature
  /// check.) False for slot 0 (genesis) and past the horizon.
  [[nodiscard]] virtual bool eligible(PartyId party, std::size_t slot) const = 0;

  /// Chain feedback for epoch-driven sources: the driver calls this at every
  /// slot onset BEFORE the slot's deliveries, handing over the public view,
  /// so an epoch opening at `slot` folds its nonce from the chain exactly as
  /// of the previous slot's close. Pre-drawn schedules ignore it.
  virtual void advance_to(std::size_t /*slot*/, const BlockTree& /*public_view*/) const {}
};

class LeaderSchedule : public ScheduleSource {
 public:
  LeaderSchedule(std::vector<SlotLeaders> slots, std::size_t honest_parties);

  /// Symbol-level generation: multiply honest slots elect exactly two distinct
  /// honest parties (the minimal realization of H; more leaders only help the
  /// adversary, cf. the settlement game granting A the choice of multiplicity).
  /// Laws with pH > 0 require honest_parties >= 2, checked here (naming the
  /// law and the party count) rather than aborting mid-generation.
  static LeaderSchedule from_symbol_law(const SymbolLaw& law, std::size_t horizon,
                                        std::size_t honest_parties, Rng& rng);
  static LeaderSchedule from_tetra_law(const TetraLaw& law, std::size_t horizon,
                                       std::size_t honest_parties, Rng& rng);

  /// Party-level Praos lottery: `honest_parties` parties of equal relative
  /// stake (1 - adversarial_stake) / honest_parties, plus one coalition with
  /// `adversarial_stake`; per-slot win probability phi(s) = 1 - (1-f)^s.
  static LeaderSchedule praos_lottery(double f, double adversarial_stake,
                                      std::size_t honest_parties, std::size_t horizon,
                                      Rng& rng);

  /// The induced i.i.d. law of the Praos lottery above (analytic). Evaluated
  /// through expm1/log1p so the small-share regime (share ~ 1/n at committee
  /// scale) keeps full double precision — 1 - pow(1-f, share) loses half the
  /// significant digits there.
  static TetraLaw praos_induced_law(double f, double adversarial_stake,
                                    std::size_t honest_parties);

  [[nodiscard]] std::size_t horizon() const noexcept override { return slots_.size(); }
  [[nodiscard]] std::size_t honest_parties() const noexcept override { return honest_parties_; }
  [[nodiscard]] const SlotLeaders& leaders(std::size_t slot) const override;

  /// Is `party` an eligible issuer for `slot`? (The simulated signature check.)
  [[nodiscard]] bool eligible(PartyId party, std::size_t slot) const override;

  /// The characteristic string of the schedule (Definition 20 view).
  [[nodiscard]] TetraString characteristic() const;
  /// The synchronous {h,H,A} view; requires no empty slots.
  [[nodiscard]] CharString characteristic_sync() const;

 private:
  std::vector<SlotLeaders> slots_;  // index 0 <-> slot 1
  std::size_t honest_parties_;
};

}  // namespace mh
