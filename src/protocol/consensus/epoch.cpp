#include "protocol/consensus/epoch.hpp"

#include <vector>

#include "support/check.hpp"
#include "support/random.hpp"

namespace mh::consensus {

void EpochConfig::validate() const {
  MH_REQUIRE_MSG(epoch_length >= 1, "epoch length must be >= 1 slot");
  MH_REQUIRE_MSG(nonce_window <= epoch_length,
                 "nonce window of " + std::to_string(nonce_window) +
                     " slots cannot exceed the epoch length " + std::to_string(epoch_length));
}

std::size_t EpochConfig::window() const noexcept {
  if (nonce_window != 0) return nonce_window;
  const std::size_t two_thirds = (2 * epoch_length) / 3;
  return two_thirds >= 1 ? two_thirds : 1;
}

EpochManager::EpochManager(EpochConfig config, std::uint64_t genesis_seed)
    : config_(config), genesis_seed_(genesis_seed) {
  config_.validate();
}

std::size_t EpochManager::epoch_of(std::size_t slot) const {
  MH_REQUIRE_MSG(slot >= 1, "slot 0 is genesis and belongs to no epoch");
  return (slot - 1) / config_.epoch_length;
}

std::size_t EpochManager::epoch_start(std::size_t epoch) const noexcept {
  return epoch * config_.epoch_length + 1;
}

std::size_t EpochManager::epoch_end(std::size_t epoch) const noexcept {
  return (epoch + 1) * config_.epoch_length;
}

std::size_t EpochManager::epochs_covering(std::size_t horizon) const noexcept {
  return (horizon + config_.epoch_length - 1) / config_.epoch_length;
}

std::uint64_t EpochManager::fold_nonce(std::size_t epoch, const BlockTree& view) const {
  // Base mix: genesis seed x epoch index through splitmix64, so epochs whose
  // windows are empty (no block landed in them) still draw distinct lotteries.
  std::uint64_t counter = genesis_seed_ ^ (0x9e3779b97f4a7c15ULL * (epoch + 1));
  std::uint64_t nonce = splitmix64(counter);
  if (epoch == 0) return nonce;

  const std::size_t window_lo = epoch_start(epoch - 1);
  const std::size_t window_hi = window_lo + config_.window() - 1;  // inclusive
  // Collect the canonical chain's window blocks head-to-genesis, then fold in
  // ascending slot order (chains list parents first on the fold).
  std::vector<BlockHash> window_blocks;
  const BlockHash genesis = genesis_block().hash;
  for (BlockHash h = view.best_head(config_.nonce_tie); h != genesis;
       h = view.block(h).parent) {
    const std::uint64_t slot = view.block(h).slot;
    if (slot < window_lo) break;  // labels increase along chains: done
    if (slot <= window_hi) window_blocks.push_back(h);
  }
  for (std::size_t i = window_blocks.size(); i-- > 0;)
    nonce = fnv1a_accumulate(nonce, window_blocks[i]);
  return nonce;
}

}  // namespace mh::consensus
