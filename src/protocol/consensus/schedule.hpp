// EpochSchedule: the epoch-managed, stake-weighted ScheduleSource that
// replaces the pre-drawn characteristic string with production-style leader
// election.
//
// Slots are revealed one epoch at a time. When the driver's slot loop first
// reaches an epoch boundary (ScheduleSource::advance_to, called at the slot
// onset BEFORE deliveries), the schedule
//
//   1. folds the epoch nonce from the public view's canonical chain
//      (EpochManager::fold_nonce — genesis mix for epoch 0, the previous
//      epoch's nonce-window blocks afterwards);
//   2. advances the stake registry across the boundary, applying the
//      declarative StakeShiftSpecs due at this epoch;
//   3. draws every slot of the epoch through SlotLeaderSelection — one
//      counter-based stream per (nonce, slot, party), so the epoch's slots
//      are a pure function of (seed, nonce, stake snapshot) no matter who
//      asks, in what order, on how many threads.
//
// The schedule is logically immutable — everything it reveals is determined
// by (seed, chain feedback) — so materialization memoizes behind const
// (single-writer: the driver's slot loop is serial; one Simulation is never
// shared across threads).
//
// Grading surface: every materialized epoch records its nonce and stake
// snapshot; epoch_induced_law projects the snapshot to the i.i.d. TetraLaw
// the oracle cross-validates (per-party generalization of
// LeaderSchedule::praos_induced_law), and realized() snapshots the
// materialized prefix as a plain LeaderSchedule for the Definition-22
// projection and the fault layer.
#pragma once

#include <cstdint>
#include <vector>

#include "protocol/consensus/epoch.hpp"
#include "protocol/consensus/leader_select.hpp"
#include "protocol/consensus/stake.hpp"
#include "protocol/leader.hpp"

namespace mh::consensus {

struct ConsensusConfig {
  double f = 0.5;  ///< active-slot coefficient of the lottery
  EpochConfig epoch{};

  void validate() const;

  friend bool operator==(const ConsensusConfig&, const ConsensusConfig&) = default;
};

/// The i.i.d. characteristic law induced by one stake snapshot: every honest
/// party wins independently at phi(share), the coalition at
/// phi(adversarial_share). Evaluated in log space (the products of per-party
/// survival probabilities collapse to exp(sum shares * log1p(-f))), so
/// committee-scale share vectors keep full precision.
[[nodiscard]] TetraLaw induced_law(double f, const std::vector<double>& honest_shares,
                                   double adversarial_share);

class EpochSchedule final : public ScheduleSource {
 public:
  /// The registry is taken by value: the schedule owns its stake trajectory
  /// (shifts included), keeping a run's consensus state self-contained.
  EpochSchedule(ConsensusConfig config, StakeRegistry registry, std::size_t horizon,
                std::uint64_t seed);

  // --- ScheduleSource ------------------------------------------------------
  [[nodiscard]] std::size_t horizon() const noexcept override { return horizon_; }
  [[nodiscard]] std::size_t honest_parties() const noexcept override {
    return registry_.honest_parties();
  }
  /// Leaders of a materialized slot; slot 0 is genesis (empty leader set),
  /// slots past the horizon throw, and slots of an epoch that has not been
  /// revealed yet throw naming the frontier (epoch-driven schedules cannot be
  /// read ahead of the chain that seeds them).
  [[nodiscard]] const SlotLeaders& leaders(std::size_t slot) const override;
  [[nodiscard]] bool eligible(PartyId party, std::size_t slot) const override;
  void advance_to(std::size_t slot, const BlockTree& public_view) const override;

  // --- grading surface -----------------------------------------------------
  [[nodiscard]] const ConsensusConfig& config() const noexcept { return config_; }
  [[nodiscard]] const EpochManager& epochs() const noexcept { return manager_; }
  [[nodiscard]] const StakeRegistry& registry() const noexcept { return registry_; }
  /// Epochs intersecting [1, horizon] (the grading cell count).
  [[nodiscard]] std::size_t epoch_count() const noexcept {
    return manager_.epochs_covering(horizon_);
  }
  [[nodiscard]] std::size_t materialized_epochs() const noexcept { return records_.size(); }
  [[nodiscard]] std::size_t materialized_slots() const noexcept { return slots_.size(); }

  /// Nonce / stake snapshot / induced law of a materialized epoch.
  [[nodiscard]] std::uint64_t epoch_nonce(std::size_t epoch) const;
  [[nodiscard]] const std::vector<double>& epoch_honest_shares(std::size_t epoch) const;
  [[nodiscard]] double epoch_adversarial_share(std::size_t epoch) const;
  [[nodiscard]] TetraLaw epoch_induced_law(std::size_t epoch) const;

  /// The materialized prefix as a pre-drawn schedule (for project_schedule,
  /// effective_schedule, and everything else written against LeaderSchedule).
  [[nodiscard]] LeaderSchedule realized() const;

 private:
  struct EpochRecord {
    std::uint64_t nonce = 0;
    std::vector<double> honest_shares;
    double adversarial_share = 0.0;
  };

  void open_epoch(const BlockTree& public_view) const;
  const EpochRecord& record(std::size_t epoch) const;

  ConsensusConfig config_;
  mutable StakeRegistry registry_;
  std::size_t horizon_;
  EpochManager manager_;
  SlotLeaderSelection selection_;
  mutable std::vector<EpochRecord> records_;  ///< one per materialized epoch
  mutable std::vector<SlotLeaders> slots_;    ///< materialized prefix, index 0 <-> slot 1
};

}  // namespace mh::consensus
