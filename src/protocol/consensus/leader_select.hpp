// Per-slot, per-party leader eligibility — the simulated VRF lottery of the
// epoch-managed consensus layer.
//
// Party p with relative stake s wins slot t of an epoch with nonce eta with
// probability phi(s) = 1 - (1-f)^s, independently across (eta, t, p). Each
// trial is ONE uniform draw from the counter-based engine::SeedSequence
// stream keyed (eta, t, p): the outcome is a pure function of the key, so
// schedules are invariant to query order, query repetition, and thread count
// — the same purity contract the fault injector established for its draws.
#pragma once

#include <cstdint>

#include "protocol/consensus/stake.hpp"
#include "protocol/leader.hpp"

namespace mh::consensus {

/// phi(share) = 1 - (1 - f)^share, evaluated as -expm1(share * log1p(-f)) so
/// the small-share regime (share ~ 1/n at committee scale) keeps full double
/// precision. Requires f in (0, 1) and share in [0, 1].
[[nodiscard]] double phi(double f, double share);

class SlotLeaderSelection {
 public:
  /// `f` is the active-slot coefficient; `root_seed` salts every stream (two
  /// selections with different roots are independent lotteries).
  SlotLeaderSelection(double f, std::uint64_t root_seed);

  [[nodiscard]] double f() const noexcept { return f_; }

  /// One Bernoulli(phi(share)) trial from the stream keyed
  /// (epoch_nonce, slot, party). Slots must fit 32 bits (the key packs
  /// (slot << 32) | party injectively).
  [[nodiscard]] bool eligible(std::uint64_t epoch_nonce, std::size_t slot, PartyId party,
                              double share) const;

  /// The full leader set of `slot`, each party drawn independently at its
  /// current share. A coalition win absorbs the slot (the characteristic
  /// symbol A admits no honest co-leaders — the from_tetra_law convention),
  /// so honest draws are reported only when the coalition loses; the raw
  /// per-party trials remain queryable through eligible().
  [[nodiscard]] SlotLeaders draw_slot(std::uint64_t epoch_nonce, std::size_t slot,
                                      const StakeRegistry& registry) const;

 private:
  double f_;
  std::uint64_t root_seed_;
};

}  // namespace mh::consensus
