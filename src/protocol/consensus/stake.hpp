// The stakeholder registry of the epoch-managed consensus layer: per-party
// stake weights (honest parties 0..n-1 plus the single adversarial coalition)
// and their declarative epoch-boundary redistribution.
//
// Stake is *absolute weight*; relative stake — what the lottery's
// phi(stake) = 1 - (1-f)^stake consumes — is weight / total. Redistribution
// is declared up front as StakeShiftSpecs ("entering epoch e, party p's
// weight becomes w") and applied when the registry advances across the
// boundary, so a whole shifting-stake scenario is a pure value: two runs with
// the same specs see bit-identical stake trajectories.
#pragma once

#include <cstddef>
#include <vector>

#include "protocol/block.hpp"

namespace mh::consensus {

/// One declarative redistribution event: entering `epoch`, `party`'s absolute
/// stake weight becomes `stake`. `party == kAdversary` re-weights the
/// coalition (the adaptive-corruption axis: honest weight sold to the
/// adversary at an epoch boundary is two specs, one down and one up).
struct StakeShiftSpec {
  std::size_t epoch = 0;
  PartyId party = 0;
  double stake = 0.0;

  friend bool operator==(const StakeShiftSpec&, const StakeShiftSpec&) = default;
};

class StakeRegistry {
 public:
  /// `honest_stakes[p]` is party p's initial weight; weights are >= 0, finite,
  /// and must keep a positive honest total (a chain no honest party can ever
  /// extend is not an execution).
  StakeRegistry(std::vector<double> honest_stakes, double adversarial_stake);

  /// Equal weights: every honest party at (1 - adversarial_stake) / n, the
  /// coalition at adversarial_stake — the praos_lottery parameterization.
  static StakeRegistry uniform(std::size_t honest_parties, double adversarial_stake);

  /// Register a redistribution; specs may arrive in any order and several may
  /// share an epoch (applied in registration order within the boundary).
  void add_shift(const StakeShiftSpec& spec);

  /// Cross boundaries up to and including `epoch`, applying every registered
  /// spec with spec.epoch <= epoch. Epochs never rewind.
  void advance_to_epoch(std::size_t epoch);

  [[nodiscard]] std::size_t honest_parties() const noexcept { return honest_.size(); }
  [[nodiscard]] std::size_t current_epoch() const noexcept { return epoch_; }

  /// Absolute weight of `party` (kAdversary for the coalition).
  [[nodiscard]] double stake(PartyId party) const;
  [[nodiscard]] double total_stake() const noexcept { return total_; }

  /// Relative stake: weight / total (the lottery's phi argument).
  [[nodiscard]] double share(PartyId party) const;
  [[nodiscard]] double adversarial_share() const noexcept;
  [[nodiscard]] std::vector<double> honest_shares() const;

  [[nodiscard]] const std::vector<StakeShiftSpec>& shifts() const noexcept { return shifts_; }

 private:
  void recompute_total();

  std::vector<double> honest_;
  double adversarial_ = 0.0;
  double total_ = 0.0;
  std::vector<StakeShiftSpec> shifts_;  ///< registration order; filtered by epoch
  std::size_t epoch_ = 0;
  bool started_ = false;  ///< advance_to_epoch(0) applies epoch-0 specs once
};

}  // namespace mh::consensus
