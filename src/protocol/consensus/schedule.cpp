#include "protocol/consensus/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mh::consensus {

void ConsensusConfig::validate() const {
  MH_REQUIRE_MSG(f > 0.0 && f < 1.0,
                 "active-slot coefficient must lie in (0, 1), got " + std::to_string(f));
  epoch.validate();
}

TetraLaw induced_law(double f, const std::vector<double>& honest_shares,
                     double adversarial_share) {
  MH_REQUIRE_MSG(f > 0.0 && f < 1.0,
                 "active-slot coefficient must lie in (0, 1), got " + std::to_string(f));
  MH_REQUIRE_MSG(!honest_shares.empty(), "induced law needs at least one honest party");
  // Work in log space throughout. With L = log1p(-f):
  //   P[party i loses]      = (1-f)^{s_i}            = exp(s_i L)
  //   P[no honest winner]   = prod_i (1-f)^{s_i}     = exp(S L),  S = sum s_i
  //   P[only party i wins]  = p_i * exp((S - s_i) L) = exp(S L) * expm1(-s_i L)
  // so the exactly-one-winner mass is exp(S L) * sum_i expm1(-s_i L), and no
  // intermediate passes through the cancellation-prone 1 - pow form.
  const double L = std::log1p(-f);
  double total_share = 0.0;
  double one_sum = 0.0;
  for (double s : honest_shares) {
    MH_REQUIRE_MSG(s >= 0.0 && s <= 1.0,
                   "relative stake must lie in [0, 1], got " + std::to_string(s));
    total_share += s;
    one_sum += std::expm1(-s * L);
  }
  const double p_adv = phi(f, adversarial_share);
  const double no_honest = std::exp(total_share * L);
  const double one_honest = no_honest * one_sum;

  TetraLaw law;
  law.pA = p_adv;
  law.pBot = (1.0 - p_adv) * no_honest;
  law.ph = (1.0 - p_adv) * one_honest;
  // Residual, clamped: the three masses above are each accurate to ulps, so
  // the remainder is the multi-winner mass up to the same error; the clamp
  // absorbs the degenerate one-party case where it is an exact zero.
  double pH = (1.0 - p_adv) - law.pBot - law.ph;
  law.pH = pH > 0.0 ? pH : 0.0;
  law.validate();
  return law;
}

EpochSchedule::EpochSchedule(ConsensusConfig config, StakeRegistry registry, std::size_t horizon,
                             std::uint64_t seed)
    : config_(config),
      registry_(std::move(registry)),
      horizon_(horizon),
      manager_(config.epoch, seed),
      selection_(config.f, seed) {
  config_.validate();
  MH_REQUIRE_MSG(horizon_ >= 1, "epoch schedules need a horizon of at least one slot");
  MH_REQUIRE_MSG(horizon_ < (std::size_t{1} << 32),
                 "lottery keys pack the slot into 32 bits; horizon " + std::to_string(horizon_) +
                     " does not fit");
}

void EpochSchedule::open_epoch(const BlockTree& public_view) const {
  const std::size_t epoch = records_.size();
  EpochRecord rec;
  rec.nonce = manager_.fold_nonce(epoch, public_view);
  registry_.advance_to_epoch(epoch);
  rec.honest_shares = registry_.honest_shares();
  rec.adversarial_share = registry_.adversarial_share();

  const std::size_t lo = manager_.epoch_start(epoch);
  const std::size_t hi = std::min(manager_.epoch_end(epoch), horizon_);
  for (std::size_t slot = lo; slot <= hi; ++slot)
    slots_.push_back(selection_.draw_slot(rec.nonce, slot, registry_));
  records_.push_back(std::move(rec));
}

void EpochSchedule::advance_to(std::size_t slot, const BlockTree& public_view) const {
  if (slot == 0) return;
  const std::size_t target = std::min(slot, horizon_);
  while (records_.size() < epoch_count() && manager_.epoch_start(records_.size()) <= target)
    open_epoch(public_view);
}

const SlotLeaders& EpochSchedule::leaders(std::size_t slot) const {
  if (slot == 0) return genesis_slot_leaders();  // genesis is not issued
  MH_REQUIRE_MSG(slot <= horizon_, "slot " + std::to_string(slot) + " is past the horizon " +
                                       std::to_string(horizon_));
  MH_REQUIRE_MSG(slot <= slots_.size(),
                 "slot " + std::to_string(slot) +
                     " is not materialized yet (epoch-driven schedules reveal slots per "
                     "epoch; frontier is slot " +
                     std::to_string(slots_.size()) + ")");
  return slots_[slot - 1];
}

bool EpochSchedule::eligible(PartyId party, std::size_t slot) const {
  if (slot == 0 || slot > horizon_) return false;  // genesis / beyond the run
  MH_REQUIRE_MSG(slot <= slots_.size(),
                 "slot " + std::to_string(slot) +
                     " is not materialized yet (epoch-driven schedules reveal slots per "
                     "epoch; frontier is slot " +
                     std::to_string(slots_.size()) + ")");
  const SlotLeaders& l = slots_[slot - 1];
  if (party == kAdversary) return l.adversarial;
  for (PartyId p : l.honest)
    if (p == party) return true;
  return false;
}

const EpochSchedule::EpochRecord& EpochSchedule::record(std::size_t epoch) const {
  MH_REQUIRE_MSG(epoch < records_.size(),
                 "epoch " + std::to_string(epoch) + " is not materialized (frontier is epoch " +
                     std::to_string(records_.size()) + ")");
  return records_[epoch];
}

std::uint64_t EpochSchedule::epoch_nonce(std::size_t epoch) const { return record(epoch).nonce; }

const std::vector<double>& EpochSchedule::epoch_honest_shares(std::size_t epoch) const {
  return record(epoch).honest_shares;
}

double EpochSchedule::epoch_adversarial_share(std::size_t epoch) const {
  return record(epoch).adversarial_share;
}

TetraLaw EpochSchedule::epoch_induced_law(std::size_t epoch) const {
  const EpochRecord& rec = record(epoch);
  return induced_law(config_.f, rec.honest_shares, rec.adversarial_share);
}

LeaderSchedule EpochSchedule::realized() const {
  return LeaderSchedule(slots_, registry_.honest_parties());
}

}  // namespace mh::consensus
