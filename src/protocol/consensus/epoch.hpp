// Epoch management for the consensus layer: slot <-> epoch arithmetic and the
// epoch nonce, folded deterministically from the chain.
//
// Epochs partition the 1-based slot axis into windows of `epoch_length` = R
// slots: epoch e covers slots [eR + 1, (e+1)R]. The nonce of epoch e seeds
// that epoch's leader lottery:
//
//   * epoch 0 has no chain history; its nonce is a pure mix of the genesis
//     seed (so schedules stay a function of the seed alone until blocks
//     exist);
//   * epoch e >= 1 folds, over the same genesis mix, the header hashes of the
//     canonical chain's blocks whose slots lie in the NONCE WINDOW of epoch
//     e-1 — its leading `nonce_window` slots (default 2R/3, the Ouroboros
//     Praos proportion), ascending slot order.
//
// Folding only the leading window, and only at the boundary, is what bounds
// stake-grinding: blocks forged in the trailing R/3 of an epoch can no longer
// move the next epoch's lottery, and an adversary probing nonces must commit
// real leaderships inside the window to do so.
#pragma once

#include <cstdint>

#include "protocol/blocktree.hpp"

namespace mh::consensus {

struct EpochConfig {
  std::size_t epoch_length = 32;  ///< R: slots per epoch
  /// Leading slots of the previous epoch whose chain blocks fold into the
  /// nonce; 0 resolves to floor(2R/3) with a floor of 1.
  std::size_t nonce_window = 0;
  /// Head rule for the canonical chain the fold walks. ConsistentHash (A0')
  /// keeps the nonce independent of delivery-order ties.
  TieBreak nonce_tie = TieBreak::ConsistentHash;

  void validate() const;
  /// The resolved window length (never 0, never above epoch_length).
  [[nodiscard]] std::size_t window() const noexcept;

  friend bool operator==(const EpochConfig&, const EpochConfig&) = default;
};

class EpochManager {
 public:
  EpochManager(EpochConfig config, std::uint64_t genesis_seed);

  [[nodiscard]] const EpochConfig& config() const noexcept { return config_; }

  /// Epoch index of a 1-based slot (slot 0 is genesis and belongs to no
  /// epoch; asking for it throws).
  [[nodiscard]] std::size_t epoch_of(std::size_t slot) const;
  /// First / last slot of epoch e.
  [[nodiscard]] std::size_t epoch_start(std::size_t epoch) const noexcept;
  [[nodiscard]] std::size_t epoch_end(std::size_t epoch) const noexcept;
  /// Number of epochs intersecting slots [1, horizon].
  [[nodiscard]] std::size_t epochs_covering(std::size_t horizon) const noexcept;

  /// The epoch-e nonce folded from `view`'s canonical chain (see file
  /// header). Pure in (genesis seed, epoch, the window blocks of the chain).
  [[nodiscard]] std::uint64_t fold_nonce(std::size_t epoch, const BlockTree& view) const;

 private:
  EpochConfig config_;
  std::uint64_t genesis_seed_;
};

}  // namespace mh::consensus
