#include "protocol/consensus/stake.hpp"

#include <cmath>
#include <string>

#include "support/check.hpp"

namespace mh::consensus {

namespace {

void require_weight(double stake, PartyId party) {
  MH_REQUIRE_MSG(std::isfinite(stake) && stake >= 0.0,
                 "stake weight for party " +
                     (party == kAdversary ? std::string("<adversary>") : std::to_string(party)) +
                     " must be finite and >= 0, got " + std::to_string(stake));
}

}  // namespace

StakeRegistry::StakeRegistry(std::vector<double> honest_stakes, double adversarial_stake)
    : honest_(std::move(honest_stakes)), adversarial_(adversarial_stake) {
  MH_REQUIRE_MSG(!honest_.empty(), "a stake registry needs at least one honest party");
  MH_REQUIRE_MSG(honest_.size() < kAdversary,
                 "honest party ids must stay below the adversary sentinel");
  for (std::size_t p = 0; p < honest_.size(); ++p)
    require_weight(honest_[p], static_cast<PartyId>(p));
  require_weight(adversarial_, kAdversary);
  recompute_total();
}

StakeRegistry StakeRegistry::uniform(std::size_t honest_parties, double adversarial_stake) {
  MH_REQUIRE_MSG(honest_parties >= 1, "uniform registry needs at least one honest party");
  MH_REQUIRE_MSG(adversarial_stake >= 0.0 && adversarial_stake < 1.0,
                 "uniform registry takes the coalition's RELATIVE stake in [0, 1), got " +
                     std::to_string(adversarial_stake));
  std::vector<double> honest(honest_parties,
                             (1.0 - adversarial_stake) / static_cast<double>(honest_parties));
  return StakeRegistry(std::move(honest), adversarial_stake);
}

void StakeRegistry::add_shift(const StakeShiftSpec& spec) {
  MH_REQUIRE_MSG(spec.party == kAdversary || spec.party < honest_.size(),
                 "stake shift at epoch " + std::to_string(spec.epoch) +
                     " names party " + std::to_string(spec.party) + ", registry holds " +
                     std::to_string(honest_.size()) + " honest parties");
  require_weight(spec.stake, spec.party);
  MH_REQUIRE_MSG(!started_ || spec.epoch > epoch_,
                 "stake shift at epoch " + std::to_string(spec.epoch) +
                     " registered after the registry already advanced to epoch " +
                     std::to_string(epoch_));
  shifts_.push_back(spec);
}

void StakeRegistry::advance_to_epoch(std::size_t epoch) {
  MH_REQUIRE_MSG(!started_ || epoch >= epoch_,
                 "epochs never rewind: at " + std::to_string(epoch_) + ", asked for " +
                     std::to_string(epoch));
  const std::size_t from = started_ ? epoch_ + 1 : 0;
  for (std::size_t e = from; e <= epoch; ++e) {
    for (const StakeShiftSpec& spec : shifts_) {
      if (spec.epoch != e) continue;
      if (spec.party == kAdversary)
        adversarial_ = spec.stake;
      else
        honest_[spec.party] = spec.stake;
    }
  }
  epoch_ = epoch;
  started_ = true;
  recompute_total();
}

double StakeRegistry::stake(PartyId party) const {
  if (party == kAdversary) return adversarial_;
  MH_REQUIRE_MSG(party < honest_.size(), "no party " + std::to_string(party) +
                                             " in a registry of " +
                                             std::to_string(honest_.size()) + " honest parties");
  return honest_[party];
}

double StakeRegistry::share(PartyId party) const { return stake(party) / total_; }

double StakeRegistry::adversarial_share() const noexcept { return adversarial_ / total_; }

std::vector<double> StakeRegistry::honest_shares() const {
  std::vector<double> shares(honest_.size());
  for (std::size_t p = 0; p < honest_.size(); ++p) shares[p] = honest_[p] / total_;
  return shares;
}

void StakeRegistry::recompute_total() {
  double honest_total = 0.0;
  for (const double w : honest_) honest_total += w;
  MH_REQUIRE_MSG(honest_total > 0.0,
                 "the honest parties' total stake must stay positive (epoch " +
                     std::to_string(epoch_) + " left it at " + std::to_string(honest_total) +
                     ")");
  total_ = honest_total + adversarial_;
}

}  // namespace mh::consensus
