#include "protocol/consensus/leader_select.hpp"

#include <cmath>

#include "engine/seed_sequence.hpp"
#include "support/check.hpp"

namespace mh::consensus {

double phi(double f, double share) {
  MH_REQUIRE_MSG(f > 0.0 && f < 1.0,
                 "active-slot coefficient must lie in (0, 1), got " + std::to_string(f));
  MH_REQUIRE_MSG(share >= 0.0 && share <= 1.0,
                 "relative stake must lie in [0, 1], got " + std::to_string(share));
  return -std::expm1(share * std::log1p(-f));
}

SlotLeaderSelection::SlotLeaderSelection(double f, std::uint64_t root_seed)
    : f_(f), root_seed_(root_seed) {
  MH_REQUIRE_MSG(f > 0.0 && f < 1.0,
                 "active-slot coefficient must lie in (0, 1), got " + std::to_string(f));
}

bool SlotLeaderSelection::eligible(std::uint64_t epoch_nonce, std::size_t slot, PartyId party,
                                   double share) const {
  MH_REQUIRE_MSG(slot >= 1, "slot 0 is genesis and holds no lottery");
  MH_REQUIRE_MSG(slot < (std::size_t{1} << 32),
                 "lottery keys pack the slot into 32 bits, got slot " + std::to_string(slot));
  // One stream per (nonce, slot, party); the single uniform draw below is the
  // simulated VRF output, thresholded at phi(share).
  const engine::SeedSequence streams(root_seed_ ^ epoch_nonce);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(slot) << 32) | static_cast<std::uint64_t>(party);
  Rng rng = streams.stream(key);
  return rng.uniform() < phi(f_, share);
}

SlotLeaders SlotLeaderSelection::draw_slot(std::uint64_t epoch_nonce, std::size_t slot,
                                           const StakeRegistry& registry) const {
  SlotLeaders leaders;
  leaders.adversarial =
      registry.stake(kAdversary) > 0.0 &&
      eligible(epoch_nonce, slot, kAdversary, registry.adversarial_share());
  // A coalition win absorbs the slot (Definition 20: ANY adversarial leader
  // makes the symbol A, and A slots carry no honest vertices through the
  // reduction). Honest co-winners forfeit — their blocks could be simulated
  // by the coalition anyway, so granting the slot to A alone only matches the
  // analysis's pessimism. The induced law agrees: its honest masses are
  // conditioned on the coalition losing.
  if (leaders.adversarial) return leaders;
  for (PartyId p = 0; p < registry.honest_parties(); ++p)
    if (eligible(epoch_nonce, slot, p, registry.share(p))) leaders.honest.push_back(p);
  return leaders;
}

}  // namespace mh::consensus
