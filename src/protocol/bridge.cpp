#include "protocol/bridge.hpp"

#include "support/check.hpp"

namespace mh {

ExecutionFork fork_from_blocks(const std::vector<Block>& blocks) {
  ExecutionFork out;
  out.vertex_of.emplace(genesis_block().hash, kRoot);
  for (const Block& b : blocks) {
    if (b.hash == genesis_block().hash) continue;
    const auto parent = out.vertex_of.find(b.parent);
    MH_REQUIRE_MSG(parent != out.vertex_of.end(), "parent block must precede its child");
    const VertexId v =
        out.fork.add_vertex(parent->second, static_cast<std::uint32_t>(b.slot));
    out.vertex_of.emplace(b.hash, v);
  }
  return out;
}

}  // namespace mh
