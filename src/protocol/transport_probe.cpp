#include "protocol/transport_probe.hpp"

#include <chrono>
#include <memory>
#include <optional>

#include "protocol/adversary.hpp"
#include "protocol/faults/injector.hpp"

namespace mh {

namespace {

template <typename MakeAdversary>
TransportProbeOutcome run_probe(std::size_t parties, std::size_t horizon, std::uint64_t seed,
                                std::size_t delta, MakeAdversary&& make_adversary,
                                const faults::FaultPlan* plan = nullptr,
                                const net::NetConfig& net = {}) {
  Rng rng(seed);
  const LeaderSchedule schedule =
      LeaderSchedule::from_symbol_law(kTransportProbeLaw, horizon, parties, rng);
  auto adversary = make_adversary(rng());
  std::optional<faults::FaultInjector> injector;
  if (plan != nullptr) injector.emplace(*plan, parties, horizon);
  Simulation sim(schedule, SimulationConfig{TieBreak::AdversarialOrder, rng()}, delta,
                 adversary.get(), injector ? &*injector : nullptr, net);
  const auto start = std::chrono::steady_clock::now();
  sim.run();
  TransportProbeOutcome out;
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  out.parties = parties;
  out.horizon = horizon;
  out.blocks = sim.all_blocks().size();
  out.divergence = sim.observed_slot_divergence();
  std::uint64_t digest = kFnvOffsetBasis;
  for (const Block& b : sim.all_blocks()) digest = fnv1a_accumulate(digest, b.hash);
  for (const BlockHash h : sim.public_tree().arrival_order())
    digest = fnv1a_accumulate(digest, h);
  for (const HonestNode& node : sim.nodes())
    digest = fnv1a_accumulate(digest, node.best_head());
  out.digest = fnv1a_accumulate(digest, out.divergence);
  if (net.heterogeneous()) {
    // Fold the recovered synchrony bound too — the golden pins of the
    // degenerate probes must NOT move, so only heterogeneous shapes add it.
    out.observed_delta = sim.net_report().observed_delta;
    out.digest = fnv1a_accumulate(out.digest, out.observed_delta);
  }
  return out;
}

}  // namespace

TransportProbeOutcome balance_transport_probe(std::size_t parties, std::size_t horizon,
                                              std::uint64_t seed) {
  return run_probe(parties, horizon, seed, 0,
                   [](std::uint64_t) { return std::make_unique<BalanceAttacker>(); });
}

TransportProbeOutcome faulted_balance_transport_probe(std::size_t parties, std::size_t horizon,
                                                      std::uint64_t seed,
                                                      const faults::FaultPlan& plan) {
  return run_probe(parties, horizon, seed, 0,
                   [](std::uint64_t) { return std::make_unique<BalanceAttacker>(); }, &plan);
}

TransportProbeOutcome randomized_transport_probe(std::size_t parties, std::size_t horizon,
                                                 std::uint64_t seed, std::size_t delta) {
  return run_probe(parties, horizon, seed, delta, [](std::uint64_t adversary_seed) {
    return std::make_unique<RandomizedAdversary>(adversary_seed);
  });
}

TransportProbeOutcome hetero_transport_probe(std::size_t parties, std::size_t horizon,
                                             std::uint64_t seed, std::size_t delta,
                                             const net::NetConfig& net) {
  return run_probe(parties, horizon, seed, delta,
                   [](std::uint64_t) { return std::make_unique<BalanceAttacker>(); }, nullptr,
                   net);
}

}  // namespace mh
