// A party's local view of the block DAG (a tree, by the parent-hash links),
// with longest-chain selection under the two tie-breaking regimes:
//
//   * AdversarialOrder (axiom A0): ties between maximum-length chains resolve
//     by FIRST arrival, which the rushing adversary controls per recipient
//     (it orders each slot's deliveries, so "first" is its choice);
//   * ConsistentHash (axiom A0'): every honest party breaks ties by the
//     minimal head hash, so identical views yield identical selections.
//
// The tree is built for long executions: every block stores binary-lifting
// ancestor pointers (up[j] = the 2^j-th ancestor), and the maximum-length
// head set plus both tie-break winners are maintained incrementally on add.
// Consequently best_head / max_length_heads are O(1)+copy, and the ancestry
// queries (common_ancestor, block_at_slot, ancestor_at_length) are
// O(log chain) instead of O(chain).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "protocol/block.hpp"

namespace mh {

enum class TieBreak { AdversarialOrder, ConsistentHash };

class BlockTree {
 public:
  /// Why an insertion did (not) extend the tree. `Orphan` is the only
  /// retriable outcome (the parent may still arrive); `Invalid` blocks can
  /// never become valid (tampered header, or slot not strictly above the
  /// parent's) and must not be buffered.
  enum class AddResult : std::uint8_t { Added, Duplicate, Orphan, Invalid };

  BlockTree();

  /// Validates and inserts: header hash intact, parent known, slot strictly
  /// increasing. Returns the precise outcome; the block is ignored unless
  /// `Added`.
  AddResult try_add(const Block& block);

  /// `try_add`, collapsed to "is the block in the tree after the call".
  bool add(const Block& block) {
    const AddResult r = try_add(block);
    return r == AddResult::Added || r == AddResult::Duplicate;
  }

  [[nodiscard]] bool contains(BlockHash hash) const;
  [[nodiscard]] const Block& block(BlockHash hash) const;
  /// Chain length from genesis (genesis has length 0).
  [[nodiscard]] std::size_t length(BlockHash hash) const;
  [[nodiscard]] std::size_t block_count() const noexcept { return entries_.size(); }

  /// Longest-chain selection per the tie-break rule, O(1): under
  /// AdversarialOrder the first-arrived maximum-length block wins; under
  /// ConsistentHash the minimal hash among them.
  [[nodiscard]] BlockHash best_head(TieBreak rule) const;
  /// All maximum-length chain heads, in arrival order (the tie set the
  /// adversary may order under axiom A0). O(|heads|) copy.
  [[nodiscard]] std::vector<BlockHash> max_length_heads() const;
  /// Length of the currently best chain.
  [[nodiscard]] std::size_t best_length() const noexcept { return best_length_; }

  /// Genesis-to-head block sequence (genesis included). O(chain).
  [[nodiscard]] std::vector<BlockHash> chain(BlockHash head) const;

  /// Hash of the deepest common ancestor of two chains. O(log chain).
  [[nodiscard]] BlockHash common_ancestor(BlockHash a, BlockHash b) const;

  /// The block of the chain `head` with the largest slot <= s, if different
  /// from genesis; used for settlement checks ("what does this chain say about
  /// slot s?"). O(log chain).
  [[nodiscard]] std::optional<BlockHash> block_at_slot(BlockHash head, std::uint64_t slot) const;

  /// The ancestor of `head` at chain length `len` (genesis for len = 0);
  /// requires len <= length(head). O(log chain).
  [[nodiscard]] BlockHash ancestor_at_length(BlockHash head, std::size_t len) const;

  /// All block hashes in arrival order (genesis first).
  [[nodiscard]] const std::vector<BlockHash>& arrival_order() const noexcept {
    return arrival_;
  }

 private:
  struct Entry {
    Block block;
    std::uint32_t length = 0;
    /// Binary-lifting pointers: up[j] = index of the 2^j-th ancestor, present
    /// for every 2^j <= length (so up[0] is the parent). Genesis has none.
    std::vector<std::uint32_t> up;
  };

  [[nodiscard]] std::uint32_t index_of(BlockHash hash) const;
  [[nodiscard]] std::uint32_t lift(std::uint32_t idx, std::size_t steps) const;

  std::vector<Entry> entries_;  ///< arrival order; index 0 = genesis
  std::vector<BlockHash> arrival_;
  std::unordered_map<BlockHash, std::uint32_t> index_;
  std::size_t best_length_ = 0;
  std::vector<std::uint32_t> head_idx_;  ///< max-length blocks, arrival order
  BlockHash min_hash_head_ = 0;          ///< min hash among head_idx_
};

/// The parent-unknown buffer shared by honest nodes and the simulation's
/// public view: deduplicated (re-delivery cannot grow it), retried against a
/// tree until no progress, and permanently invalid blocks are dropped instead
/// of retried forever.
class OrphanBuffer {
 public:
  /// Buffers the block unless an identical hash is already waiting.
  void buffer(const Block& block);
  /// Retries every buffered block against `tree` until no further progress;
  /// newly admitted blocks are appended to `*accepted` (when non-null) in
  /// acceptance order. Duplicate and Invalid outcomes drop the block.
  void flush(BlockTree& tree, std::vector<Block>* accepted);
  [[nodiscard]] std::size_t size() const noexcept { return orphans_.size(); }
  /// Is a block of this hash waiting for its ancestry?
  [[nodiscard]] bool contains(BlockHash hash) const { return hashes_.count(hash) != 0; }
  /// Drop every buffered orphan (crash: the buffer is volatile state).
  void clear() noexcept {
    orphans_.clear();
    hashes_.clear();
  }

 private:
  std::vector<Block> orphans_;
  std::unordered_set<BlockHash> hashes_;  ///< dedupe of orphans_
};

}  // namespace mh
