// A party's local view of the block DAG (a tree, by the parent-hash links),
// with longest-chain selection under the two tie-breaking regimes:
//
//   * AdversarialOrder (axiom A0): ties between maximum-length chains resolve
//     by arrival order, which the rushing adversary controls per recipient;
//   * ConsistentHash (axiom A0'): every honest party breaks ties by the
//     minimal head hash, so identical views yield identical selections.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "protocol/block.hpp"

namespace mh {

enum class TieBreak { AdversarialOrder, ConsistentHash };

class BlockTree {
 public:
  BlockTree();

  /// Validates and inserts: parent must be known, slot strictly increasing,
  /// header hash intact. Re-insertion of a known block is a no-op.
  /// Returns false (and ignores the block) when invalid.
  bool add(const Block& block);

  [[nodiscard]] bool contains(BlockHash hash) const;
  [[nodiscard]] const Block& block(BlockHash hash) const;
  /// Chain length from genesis (genesis has length 0).
  [[nodiscard]] std::size_t length(BlockHash hash) const;
  [[nodiscard]] std::size_t block_count() const noexcept { return blocks_.size(); }

  /// Longest-chain selection among all known heads per the tie-break rule.
  [[nodiscard]] BlockHash best_head(TieBreak rule) const;
  /// All maximum-length chain heads, in arrival order (the tie set the
  /// adversary may order under axiom A0).
  [[nodiscard]] std::vector<BlockHash> max_length_heads() const;
  /// Length of the currently best chain.
  [[nodiscard]] std::size_t best_length() const noexcept { return best_length_; }

  /// Genesis-to-head block sequence (genesis included).
  [[nodiscard]] std::vector<BlockHash> chain(BlockHash head) const;

  /// Hash of the deepest common ancestor of two chains.
  [[nodiscard]] BlockHash common_ancestor(BlockHash a, BlockHash b) const;

  /// The block of the chain `head` with the largest slot <= s, if different
  /// from genesis; used for settlement checks ("what does this chain say about
  /// slot s?").
  [[nodiscard]] std::optional<BlockHash> block_at_slot(BlockHash head, std::uint64_t slot) const;

  /// All block hashes in arrival order (genesis first).
  [[nodiscard]] const std::vector<BlockHash>& arrival_order() const noexcept {
    return arrival_;
  }

 private:
  struct Entry {
    Block block;
    std::size_t length = 0;
    std::size_t arrival = 0;
  };
  std::unordered_map<BlockHash, Entry> blocks_;
  std::vector<BlockHash> arrival_;
  std::size_t best_length_ = 0;
};

}  // namespace mh
