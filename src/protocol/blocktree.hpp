// A party's local view of the block DAG (a tree, by the parent-hash links),
// with longest-chain selection under the two tie-breaking regimes:
//
//   * AdversarialOrder (axiom A0): ties between maximum-length chains resolve
//     by FIRST arrival, which the rushing adversary controls per recipient
//     (it orders each slot's deliveries, so "first" is its choice);
//   * ConsistentHash (axiom A0'): every honest party breaks ties by the
//     minimal head hash, so identical views yield identical selections.
//
// The tree is built for long executions AND wide sweeps. Storage is
// structure-of-arrays: per-entry columns (block, length, slot, parent,
// arrival hash) are parallel contiguous arrays, the binary-lifting ancestor
// tables live in ONE flat CSR pool indexed by (entry, level) — up(i, j) =
// the 2^j-th ancestor of entry i, up(i, 0) the parent — and the
// hash -> index map is a flat open-addressing table (keys are already FNV
// digests). Consequently best_head / max_length_heads are O(1)+copy, the
// ancestry queries (common_ancestor, block_at_slot, ancestor_at_length) are
// O(log chain), and an insertion is a handful of sequential array appends:
// no per-block heap node, no per-entry lift vector, no random reads.
//
// The lift pool is materialized LAZILY: an insertion appends only the
// fixed-stride columns; the first lifted query after a batch of insertions
// extends the pool for the new entries in one contiguous pass (each entry is
// built exactly once — ancestors always precede descendants in the pool).
// In a protocol sweep only the global/public observer trees are ever
// queried, so the per-node trees — which absorb the broadcast volume —
// never pay for lift tables at all; trees that are queried pay the same
// total build cost as an eager scheme, batched while the pool is cache-hot.
// Lazy materialization is why the query methods are const but not
// internally synchronized: a tree must not be queried from two threads
// concurrently (no simulation shares one).
//
// The whole Storage block is recycled through a thread-local arena: a
// destroyed tree donates its buffers, the next tree constructed on the same
// thread reuses them, so a sweep cell that runs executions back to back
// performs zero per-block allocations after its first run reached the
// high-water mark. Recycling is invisible to semantics (storage is fully
// reset on reuse; only capacities survive).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "protocol/block.hpp"

namespace mh {

enum class TieBreak { AdversarialOrder, ConsistentHash };

class BlockTree {
 public:
  /// Why an insertion did (not) extend the tree. `Orphan` is the only
  /// retriable outcome (the parent may still arrive); `Invalid` blocks can
  /// never become valid (tampered header, or slot not strictly above the
  /// parent's) and must not be buffered.
  enum class AddResult : std::uint8_t { Added, Duplicate, Orphan, Invalid };

  /// Entry indices are 32-bit; 0xffffffff is the index map's empty sentinel,
  /// so a tree holds at most this many blocks (genesis included). try_add
  /// guards the limit with MH_REQUIRE — reachable at the 10^6-party /
  /// 10^7-slot bench tiers, it must fail loudly, never truncate.
  static constexpr std::size_t kMaxBlocks = 0xffffffffu;

  BlockTree();
  /// Test hook: cap the tree at `max_blocks` total entries (genesis included,
  /// clamped to kMaxBlocks) so the overflow guard path is exercisable without
  /// 2^32 insertions.
  explicit BlockTree(std::size_t max_blocks);
  ~BlockTree();

  // Storage is arena-backed and exclusively owned: movable, not copyable.
  BlockTree(BlockTree&&) noexcept = default;
  BlockTree& operator=(BlockTree&&) noexcept = default;
  BlockTree(const BlockTree&) = delete;
  BlockTree& operator=(const BlockTree&) = delete;

  /// Validates and inserts: header hash intact, parent known, slot strictly
  /// increasing. Returns the precise outcome; the block is ignored unless
  /// `Added`. Throws std::invalid_argument (MH_REQUIRE) if the insertion
  /// would overflow the 32-bit entry index or chain-length space.
  AddResult try_add(const Block& block);

  /// `try_add`, collapsed to "is the block in the tree after the call".
  bool add(const Block& block) {
    const AddResult r = try_add(block);
    return r == AddResult::Added || r == AddResult::Duplicate;
  }

  [[nodiscard]] bool contains(BlockHash hash) const;
  [[nodiscard]] const Block& block(BlockHash hash) const;
  /// Chain length from genesis (genesis has length 0).
  [[nodiscard]] std::size_t length(BlockHash hash) const;
  [[nodiscard]] std::size_t block_count() const noexcept { return s_.blocks.size(); }

  /// Longest-chain selection per the tie-break rule, O(1): under
  /// AdversarialOrder the first-arrived maximum-length block wins; under
  /// ConsistentHash the minimal hash among them.
  [[nodiscard]] BlockHash best_head(TieBreak rule) const;
  /// All maximum-length chain heads, in arrival order (the tie set the
  /// adversary may order under axiom A0). O(|heads|) copy.
  [[nodiscard]] std::vector<BlockHash> max_length_heads() const;
  /// Length of the currently best chain.
  [[nodiscard]] std::size_t best_length() const noexcept { return best_length_; }

  /// Genesis-to-head block sequence (genesis included). O(chain).
  [[nodiscard]] std::vector<BlockHash> chain(BlockHash head) const;

  /// Hash of the deepest common ancestor of two chains. O(log chain).
  [[nodiscard]] BlockHash common_ancestor(BlockHash a, BlockHash b) const;

  /// The block of the chain `head` with the largest slot <= s, if different
  /// from genesis; used for settlement checks ("what does this chain say about
  /// slot s?"). O(log chain).
  [[nodiscard]] std::optional<BlockHash> block_at_slot(BlockHash head, std::uint64_t slot) const;

  /// The ancestor of `head` at chain length `len` (genesis for len = 0);
  /// requires len <= length(head). O(log chain).
  [[nodiscard]] BlockHash ancestor_at_length(BlockHash head, std::size_t len) const;

  /// All block hashes in arrival order (genesis first). This is the SoA hash
  /// column itself, not a copy.
  [[nodiscard]] const std::vector<BlockHash>& arrival_order() const noexcept {
    return s_.arrival;
  }

  /// Structure-of-arrays storage. Public only as a type (for the arena API
  /// below); the columns themselves stay private to BlockTree.
  struct Storage {
    std::vector<Block> blocks;           ///< arrival order; index 0 = genesis
    std::vector<std::uint32_t> lengths;  ///< chain length column
    std::vector<std::uint64_t> slots;    ///< slot-label column (hot in queries)
    std::vector<std::uint32_t> parents;  ///< parent-index column (genesis: 0)
    std::vector<BlockHash> arrival;      ///< hash column == arrival order
    /// CSR binary-lifting pool: entry i's table is lift[lift_off[i] + j] for
    /// j in [0, bit_width(lengths[i])) — one flat array for the whole tree,
    /// built lazily (mutable: materialized under const queries) for the
    /// first `lift_built` entries only.
    mutable std::vector<std::uint32_t> lift_off;
    mutable std::vector<std::uint32_t> lift;
    mutable std::uint32_t lift_built = 0;
    /// Open-addressing hash -> index map (linear probing, power-of-two
    /// capacity). vals[i] == kEmptySlot marks a free slot; keys are the
    /// block hashes (already FNV-mixed, re-mixed once more for the mask).
    std::vector<BlockHash> index_keys;
    std::vector<std::uint32_t> index_vals;
    std::size_t index_size = 0;
    std::vector<std::uint32_t> head_idx;  ///< max-length blocks, arrival order
  };

  /// Cumulative counters of the calling thread's storage arena (diagnostics
  /// and tests; recycling must be semantically invisible).
  struct ArenaStats {
    std::size_t acquired = 0;  ///< storages handed to trees
    std::size_t recycled = 0;  ///< of those, served from the free list
    std::size_t released = 0;  ///< storages returned by destroyed trees
  };
  [[nodiscard]] static ArenaStats arena_stats() noexcept;
  /// Drop the calling thread's free list (frees the cached capacity).
  static void arena_trim() noexcept;

 private:
  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

  void seed_genesis();
  [[nodiscard]] std::uint32_t find(BlockHash hash) const noexcept;
  [[nodiscard]] std::uint32_t index_of(BlockHash hash) const;
  void index_insert(BlockHash hash, std::uint32_t idx);
  void index_grow();
  /// Extend the CSR lift pool to cover every entry (no-op when current).
  void ensure_lift() const;
  /// Number of lift levels entry `idx` owns: bit_width(length).
  [[nodiscard]] std::uint32_t levels(std::uint32_t idx) const noexcept;
  [[nodiscard]] std::uint32_t lift(std::uint32_t idx, std::size_t steps) const;

  Storage s_;
  std::size_t max_blocks_ = kMaxBlocks;
  std::size_t best_length_ = 0;
  BlockHash min_hash_head_ = 0;  ///< min hash among head_idx
};

/// The parent-unknown buffer shared by honest nodes and the simulation's
/// public view: deduplicated (re-delivery cannot grow it), retried against a
/// tree until no progress, and permanently invalid blocks are dropped instead
/// of retried forever.
class OrphanBuffer {
 public:
  /// Buffers the block unless an identical hash is already waiting.
  void buffer(const Block& block);
  /// Retries every buffered block against `tree` until no further progress;
  /// newly admitted blocks are appended to `*accepted` (when non-null) in
  /// acceptance order. Duplicate and Invalid outcomes drop the block.
  void flush(BlockTree& tree, std::vector<Block>* accepted);
  [[nodiscard]] std::size_t size() const noexcept { return orphans_.size(); }
  /// Is a block of this hash waiting for its ancestry?
  [[nodiscard]] bool contains(BlockHash hash) const { return hashes_.count(hash) != 0; }
  /// Drop every buffered orphan (crash: the buffer is volatile state).
  void clear() noexcept {
    orphans_.clear();
    hashes_.clear();
  }

 private:
  std::vector<Block> orphans_;
  std::unordered_set<BlockHash> hashes_;  ///< dedupe of orphans_
};

}  // namespace mh
