#include "protocol/faults/plan.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "support/check.hpp"

namespace mh::faults {

namespace {

/// Overlap of two half-open intervals.
bool intervals_overlap(std::size_t a_lo, std::size_t a_hi, std::size_t b_lo,
                       std::size_t b_hi) noexcept {
  return a_lo < b_hi && b_lo < a_hi;
}

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[128];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  MH_ASSERT(n >= 0 && static_cast<std::size_t>(n) < sizeof(buf));
  out.append(buf, static_cast<std::size_t>(n));
}

/// Tokenizer state over the serialized form: space-separated `key=value`
/// tokens with ':'-separated fields inside the value.
struct FieldParser {
  std::string_view text;

  std::string_view next_token() {
    while (!text.empty() && text.front() == ' ') text.remove_prefix(1);
    const std::size_t end = text.find(' ');
    std::string_view tok = text.substr(0, end);
    text.remove_prefix(end == std::string_view::npos ? text.size() : end);
    return tok;
  }
};

std::uint64_t parse_u64(std::string_view field) {
  MH_REQUIRE_MSG(!field.empty(), "FaultPlan::deserialize: empty numeric field");
  std::uint64_t value = 0;
  for (const char c : field) {
    MH_REQUIRE_MSG(c >= '0' && c <= '9', "FaultPlan::deserialize: malformed integer");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

double parse_double(std::string_view field) {
  const std::string copy(field);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  MH_REQUIRE_MSG(end == copy.c_str() + copy.size(),
                 "FaultPlan::deserialize: malformed probability");
  return value;
}

/// Splits `value` on ':' into exactly `n` fields.
std::vector<std::string_view> split_fields(std::string_view value, std::size_t n) {
  std::vector<std::string_view> fields;
  while (true) {
    const std::size_t colon = value.find(':');
    fields.push_back(value.substr(0, colon));
    if (colon == std::string_view::npos) break;
    value.remove_prefix(colon + 1);
  }
  MH_REQUIRE_MSG(fields.size() == n, "FaultPlan::deserialize: wrong field count");
  return fields;
}

}  // namespace

const char* fault_profile_name(FaultProfile p) noexcept {
  switch (p) {
    case FaultProfile::None: return "none";
    case FaultProfile::PartitionHeal: return "partition-heal";
    case FaultProfile::Churn: return "churn";
    case FaultProfile::LossyLinks: return "lossy-links";
    case FaultProfile::Asynchrony: return "asynchrony";
    case FaultProfile::Mixed: return "mixed";
  }
  return "?";
}

void FaultPlan::validate(std::size_t parties, std::size_t horizon) const {
  MH_REQUIRE(parties >= 1 && horizon >= 1);
  for (const PartitionSpec& p : partitions) {
    MH_REQUIRE_MSG(p.start >= 1 && p.start <= horizon, "partition start outside 1..horizon");
    MH_REQUIRE_MSG(p.heal > p.start, "partition must heal after it starts");
    MH_REQUIRE_MSG(p.group.size() == parties, "partition group vector must cover all parties");
    std::size_t side[2] = {0, 0};
    for (const std::uint8_t g : p.group) {
      MH_REQUIRE_MSG(g <= 1, "partition groups are a two-way split");
      ++side[g];
    }
    MH_REQUIRE_MSG(side[0] >= 1 && side[1] >= 1, "partition must populate both sides");
  }
  for (std::size_t i = 0; i < partitions.size(); ++i)
    for (std::size_t j = i + 1; j < partitions.size(); ++j)
      MH_REQUIRE_MSG(!intervals_overlap(partitions[i].start, partitions[i].heal,
                                        partitions[j].start, partitions[j].heal),
                     "partition intervals must not overlap");
  for (const CrashSpec& c : churn) {
    MH_REQUIRE_MSG(c.party < parties, "churn party out of range");
    MH_REQUIRE_MSG(c.crash >= 1 && c.crash <= horizon, "crash slot outside 1..horizon");
    MH_REQUIRE_MSG(c.restart > c.crash, "restart must follow the crash");
  }
  for (std::size_t i = 0; i < churn.size(); ++i)
    for (std::size_t j = i + 1; j < churn.size(); ++j)
      if (churn[i].party == churn[j].party)
        MH_REQUIRE_MSG(!intervals_overlap(churn[i].crash, churn[i].restart, churn[j].crash,
                                          churn[j].restart),
                       "a party's down-time windows must not overlap");
  for (const LinkFaultSpec& l : links) {
    MH_REQUIRE_MSG(l.start >= 1 && l.end > l.start, "link window must be non-empty");
    MH_REQUIRE_MSG(l.drop >= 0.0 && l.drop <= 1.0, "drop probability outside [0, 1]");
    MH_REQUIRE_MSG(l.dup >= 0.0 && l.dup <= 1.0, "dup probability outside [0, 1]");
    MH_REQUIRE_MSG(l.extra_prob >= 0.0 && l.extra_prob <= 1.0,
                   "extra-delay probability outside [0, 1]");
    MH_REQUIRE_MSG(l.extra_prob == 0.0 || l.extra_max >= 1,
                   "extra-delay window needs extra_max >= 1");
  }
}

std::string FaultPlan::serialize() const {
  std::string out = "mh-faultplan-v1";
  append_fmt(out, " seed=%" PRIu64, seed);
  for (const PartitionSpec& p : partitions) {
    append_fmt(out, " part=%zu:%zu:", p.start, p.heal);
    for (const std::uint8_t g : p.group) out.push_back(g ? '1' : '0');
  }
  for (const CrashSpec& c : churn)
    append_fmt(out, " crash=%u:%zu:%zu", c.party, c.crash, c.restart);
  for (const LinkFaultSpec& l : links)
    append_fmt(out, " link=%zu:%zu:%.17g:%.17g:%.17g:%zu", l.start, l.end, l.drop, l.dup,
               l.extra_prob, l.extra_max);
  return out;
}

FaultPlan FaultPlan::deserialize(std::string_view text) {
  FieldParser parser{text};
  MH_REQUIRE_MSG(parser.next_token() == "mh-faultplan-v1",
                 "FaultPlan::deserialize: missing mh-faultplan-v1 header");
  FaultPlan plan;
  while (true) {
    const std::string_view token = parser.next_token();
    if (token.empty()) break;
    const std::size_t eq = token.find('=');
    MH_REQUIRE_MSG(eq != std::string_view::npos, "FaultPlan::deserialize: malformed token");
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_u64(value);
    } else if (key == "part") {
      const auto fields = split_fields(value, 3);
      PartitionSpec p;
      p.start = parse_u64(fields[0]);
      p.heal = parse_u64(fields[1]);
      for (const char c : fields[2]) {
        MH_REQUIRE_MSG(c == '0' || c == '1', "FaultPlan::deserialize: malformed group bits");
        p.group.push_back(c == '1' ? 1 : 0);
      }
      plan.partitions.push_back(std::move(p));
    } else if (key == "crash") {
      const auto fields = split_fields(value, 3);
      plan.churn.push_back(CrashSpec{static_cast<PartyId>(parse_u64(fields[0])),
                                     static_cast<std::size_t>(parse_u64(fields[1])),
                                     static_cast<std::size_t>(parse_u64(fields[2]))});
    } else if (key == "link") {
      const auto fields = split_fields(value, 6);
      plan.links.push_back(LinkFaultSpec{
          static_cast<std::size_t>(parse_u64(fields[0])),
          static_cast<std::size_t>(parse_u64(fields[1])), parse_double(fields[2]),
          parse_double(fields[3]), parse_double(fields[4]),
          static_cast<std::size_t>(parse_u64(fields[5]))});
    } else {
      MH_REQUIRE_MSG(false, "FaultPlan::deserialize: unknown token key");
    }
  }
  return plan;
}

namespace {

/// A random two-way split with both sides non-empty.
std::vector<std::uint8_t> sample_partition_groups(std::size_t parties, Rng& rng) {
  std::vector<std::uint8_t> group(parties);
  for (auto& g : group) g = rng.bernoulli(0.5) ? 1 : 0;
  // Force both sides populated (deterministically from two more draws).
  group[rng.below(parties)] = 0;
  std::size_t flip = rng.below(parties);
  if (group[flip] == 0) flip = (flip + 1) % parties;
  group[flip] = 1;
  return group;
}

void sample_partitions(FaultPlan& plan, std::size_t parties, std::size_t horizon,
                       std::size_t delta, Rng& rng) {
  // One partition in each half of the horizon keeps the intervals disjoint by
  // construction. Lengths straddle Delta: some heal within bound (observed
  // delay <= Delta), some push past it (degraded run).
  const std::size_t half = std::max<std::size_t>(horizon / 2, 2);
  const std::size_t count = 1 + rng.below(2);
  for (std::size_t i = 0; i < count && i * half + 2 < horizon; ++i) {
    PartitionSpec p;
    const std::size_t lo = i * half + 1;
    p.start = lo + rng.below(std::max<std::size_t>(half / 2, 1));
    p.heal = p.start + 1 + rng.below(2 * delta + 4);
    p.group = sample_partition_groups(parties, rng);
    plan.partitions.push_back(std::move(p));
  }
}

void sample_churn(FaultPlan& plan, std::size_t parties, std::size_t horizon, std::size_t delta,
                  Rng& rng) {
  // Up to parties/2 distinct parties churn once each: down-time in
  // [1, delta + 3] so some windows are re-sync-recoverable within bound and
  // some are not.
  const std::size_t count = 1 + rng.below(std::max<std::size_t>(parties / 2, 1));
  std::vector<std::uint8_t> used(parties, 0);
  for (std::size_t i = 0; i < count; ++i) {
    const PartyId party = static_cast<PartyId>(rng.below(parties));
    if (used[party]) continue;
    used[party] = 1;
    CrashSpec c;
    c.party = party;
    c.crash = 1 + rng.below(std::max<std::size_t>(horizon - 1, 1));
    c.restart = c.crash + 1 + rng.below(delta + 3);
    plan.churn.push_back(c);
  }
}

void sample_links(FaultPlan& plan, std::size_t horizon, Rng& rng, bool lossy, bool async,
                  std::size_t delta) {
  LinkFaultSpec l;
  l.start = 1 + rng.below(std::max<std::size_t>(horizon / 2, 1));
  l.end = std::min(horizon + 1, l.start + 2 + rng.below(std::max<std::size_t>(horizon / 2, 1)));
  if (lossy) {
    l.drop = 0.05 + 0.25 * rng.uniform();
    l.dup = 0.10 * rng.uniform();
  }
  if (async) {
    l.extra_prob = 0.1 + 0.3 * rng.uniform();
    l.extra_max = 1 + rng.below(delta + 2);
  }
  plan.links.push_back(l);
}

}  // namespace

FaultPlan sample_fault_plan(FaultProfile profile, std::size_t parties, std::size_t horizon,
                            std::size_t delta, Rng& rng) {
  FaultPlan plan;
  if (profile == FaultProfile::None) return plan;
  plan.seed = rng();
  switch (profile) {
    case FaultProfile::None: break;
    case FaultProfile::PartitionHeal: sample_partitions(plan, parties, horizon, delta, rng); break;
    case FaultProfile::Churn: sample_churn(plan, parties, horizon, delta, rng); break;
    case FaultProfile::LossyLinks: sample_links(plan, horizon, rng, true, false, delta); break;
    case FaultProfile::Asynchrony: sample_links(plan, horizon, rng, false, true, delta); break;
    case FaultProfile::Mixed:
      sample_partitions(plan, parties, horizon, delta, rng);
      sample_churn(plan, parties, horizon, delta, rng);
      sample_links(plan, horizon, rng, true, true, delta);
      break;
  }
  plan.validate(parties, horizon);
  return plan;
}

}  // namespace mh::faults
