// The runtime query side of a FaultPlan: Network and Simulation consult a
// FaultInjector at every transport decision point. All link-level randomness
// is counter-based (engine::SeedSequence keyed on (slot, sender, recipient)),
// so a verdict is a pure function of the plan — independent of query order,
// repetition, and thread count.
//
// The injector also owns the execution's fault accounting (FaultStats): the
// transport and the driver report drops, wipes and re-ships here so the
// oracle and the benches can audit recovery without the obs layer compiled in.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/seed_sequence.hpp"
#include "protocol/faults/plan.hpp"
#include "protocol/leader.hpp"

namespace mh::faults {

/// The per-ship decision for one honest (sender, recipient, slot) link.
struct LinkVerdict {
  bool drop = false;
  bool duplicate = false;
  std::size_t extra_delay = 0;  ///< slots beyond the adversarial hold-back
};

/// Execution-wide fault accounting (plain counters: always available, unlike
/// the compile-gated obs registry).
struct FaultStats {
  std::size_t ships_dropped = 0;      ///< chain-ships lost to partitions/links/down
  std::size_t ships_duplicated = 0;   ///< duplicated tip deliveries
  std::size_t ships_delayed = 0;      ///< deliveries pushed past the hold-back
  std::size_t crashes = 0;            ///< crash events applied
  std::size_t restarts = 0;           ///< restart events applied
  std::size_t partitions_healed = 0;  ///< heal events applied
  std::size_t resync_blocks = 0;      ///< blocks re-shipped by heal/restart re-sync
  std::size_t watermarks_invalidated = 0;  ///< watermark entries wiped by crashes
  std::size_t leaderships_skipped = 0;     ///< honest leaderships lost to down-time

  /// Total perturbations actually applied to the execution.
  [[nodiscard]] std::size_t injected() const noexcept {
    return ships_dropped + ships_duplicated + ships_delayed + crashes + restarts;
  }

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

class FaultInjector {
 public:
  /// Validates the plan against (parties, horizon) on construction.
  FaultInjector(const FaultPlan& plan, std::size_t parties, std::size_t horizon);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }
  [[nodiscard]] std::size_t horizon() const noexcept { return horizon_; }

  /// Is any fault able to touch slot `slot`? While true the transport must
  /// take the per-recipient watermark path (the all-recipient bound cannot be
  /// advanced by a round whose ships may be dropped or delayed per-link).
  [[nodiscard]] bool window_active(std::size_t slot) const noexcept;

  /// Is `party` crashed at `slot` (some down-window [crash, restart) covers it)?
  [[nodiscard]] bool is_down(PartyId party, std::size_t slot) const noexcept;

  /// Does a down-window of `party` intersect slots [lo, hi] (inclusive)?
  /// (The non-delivery sweep's excusal; for observed-Delta use down_slots_in —
  /// a binary excusal would let a crash far into the window mask a genuine
  /// pre-crash delivery failure.)
  [[nodiscard]] bool down_in_window(PartyId party, std::size_t lo, std::size_t hi) const noexcept;

  /// Number of slots in [lo, hi] (inclusive) during which `party` is down.
  /// Observed-Delta discounts exactly these: a crashed endpoint cannot
  /// receive, but every UP slot the block went undelivered is the network's.
  [[nodiscard]] std::size_t down_slots_in(PartyId party, std::size_t lo,
                                          std::size_t hi) const noexcept;

  /// Is the honest link sender->recipient severed by an active partition?
  /// Adversarial channels (sender == kAdversary) are never severed: the
  /// coalition keeps links into every component (the conservative model).
  [[nodiscard]] bool severed(PartyId sender, PartyId recipient, std::size_t slot) const noexcept;

  /// The loss/dup/extra-delay draw for one honest chain-ship. Pure in
  /// (plan.seed, slot, sender, recipient).
  [[nodiscard]] LinkVerdict link_verdict(PartyId sender, PartyId recipient,
                                         std::size_t slot) const noexcept;

  /// Parties whose crash window begins exactly at `slot`.
  void crashes_at(std::size_t slot, std::vector<PartyId>* out) const;
  /// Parties whose restart lands exactly at `slot`.
  void restarts_at(std::size_t slot, std::vector<PartyId>* out) const;
  /// Number of partitions healing exactly at `slot`.
  [[nodiscard]] std::size_t heals_at(std::size_t slot) const noexcept;
  /// Partitions active at `slot` (the obs gauge).
  [[nodiscard]] std::size_t partitions_active(std::size_t slot) const noexcept;

  /// The schedule actually realizable under this plan: honest leaders whose
  /// slot falls inside a down-window are removed (they never forge), so the
  /// characteristic string the oracle projects matches the realized block
  /// set. Adversarial leaderships are untouched.
  [[nodiscard]] LeaderSchedule effective_schedule(const ScheduleSource& schedule) const;

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] FaultStats& stats() noexcept { return stats_; }

 private:
  FaultPlan plan_;
  std::size_t parties_;
  std::size_t horizon_;
  engine::SeedSequence link_streams_;
  FaultStats stats_;
};

}  // namespace mh::faults
