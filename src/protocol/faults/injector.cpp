#include "protocol/faults/injector.hpp"

#include "support/check.hpp"

namespace mh::faults {

FaultInjector::FaultInjector(const FaultPlan& plan, std::size_t parties, std::size_t horizon)
    : plan_(plan), parties_(parties), horizon_(horizon), link_streams_(plan.seed) {
  plan_.validate(parties, horizon);
}

bool FaultInjector::window_active(std::size_t slot) const noexcept {
  for (const PartitionSpec& p : plan_.partitions)
    if (p.start <= slot && slot < p.heal) return true;
  for (const CrashSpec& c : plan_.churn)
    if (c.crash <= slot && slot < c.restart) return true;
  for (const LinkFaultSpec& l : plan_.links)
    if (l.start <= slot && slot < l.end) return true;
  return false;
}

bool FaultInjector::is_down(PartyId party, std::size_t slot) const noexcept {
  for (const CrashSpec& c : plan_.churn)
    if (c.party == party && c.crash <= slot && slot < c.restart) return true;
  return false;
}

bool FaultInjector::down_in_window(PartyId party, std::size_t lo, std::size_t hi) const noexcept {
  for (const CrashSpec& c : plan_.churn)
    if (c.party == party && c.crash <= hi && lo < c.restart) return true;
  return false;
}

std::size_t FaultInjector::down_slots_in(PartyId party, std::size_t lo,
                                         std::size_t hi) const noexcept {
  std::size_t down = 0;
  for (const CrashSpec& c : plan_.churn) {
    if (c.party != party || c.restart <= lo || c.crash > hi) continue;
    const std::size_t from = c.crash > lo ? c.crash : lo;
    const std::size_t to = c.restart - 1 < hi ? c.restart - 1 : hi;
    down += to - from + 1;
  }
  return down;
}

bool FaultInjector::severed(PartyId sender, PartyId recipient, std::size_t slot) const noexcept {
  if (sender == kAdversary || sender == recipient) return false;
  for (const PartitionSpec& p : plan_.partitions)
    if (p.start <= slot && slot < p.heal) return p.group[sender] != p.group[recipient];
  return false;
}

LinkVerdict FaultInjector::link_verdict(PartyId sender, PartyId recipient,
                                        std::size_t slot) const noexcept {
  LinkVerdict verdict;
  if (sender == kAdversary || sender == recipient) return verdict;
  for (const LinkFaultSpec& l : plan_.links) {
    if (slot < l.start || slot >= l.end) continue;
    // One counter-based stream per (slot, sender, recipient): draws do not
    // depend on how many links faulted before this one, so any evaluation
    // order reproduces the same execution.
    Rng rng = link_streams_.stream((slot * parties_ + sender) * parties_ + recipient);
    if (rng.bernoulli(l.drop)) {
      verdict.drop = true;
      return verdict;  // a lost ship has no duplicate and no delay
    }
    if (rng.bernoulli(l.dup)) verdict.duplicate = true;
    if (l.extra_prob > 0.0 && rng.bernoulli(l.extra_prob))
      verdict.extra_delay = 1 + rng.below(l.extra_max);
    return verdict;  // windows do not overlap meaningfully: first match wins
  }
  return verdict;
}

void FaultInjector::crashes_at(std::size_t slot, std::vector<PartyId>* out) const {
  out->clear();
  for (const CrashSpec& c : plan_.churn)
    if (c.crash == slot) out->push_back(c.party);
}

void FaultInjector::restarts_at(std::size_t slot, std::vector<PartyId>* out) const {
  out->clear();
  for (const CrashSpec& c : plan_.churn)
    if (c.restart == slot) out->push_back(c.party);
}

std::size_t FaultInjector::heals_at(std::size_t slot) const noexcept {
  std::size_t n = 0;
  for (const PartitionSpec& p : plan_.partitions)
    if (p.heal == slot) ++n;
  return n;
}

std::size_t FaultInjector::partitions_active(std::size_t slot) const noexcept {
  std::size_t n = 0;
  for (const PartitionSpec& p : plan_.partitions)
    if (p.start <= slot && slot < p.heal) ++n;
  return n;
}

LeaderSchedule FaultInjector::effective_schedule(const ScheduleSource& schedule) const {
  std::vector<SlotLeaders> slots;
  slots.reserve(schedule.horizon());
  for (std::size_t t = 1; t <= schedule.horizon(); ++t) {
    SlotLeaders effective = schedule.leaders(t);
    std::erase_if(effective.honest, [&](PartyId p) { return is_down(p, t); });
    slots.push_back(std::move(effective));
  }
  return LeaderSchedule(std::move(slots), schedule.honest_parties());
}

}  // namespace mh::faults
