// Declarative fault plans: the seeded, deterministic description of every
// perturbation a faulted execution suffers.
//
// A FaultPlan is pure data — slot intervals and probabilities — and every
// random draw it induces (link drops, duplications, extra delays, sampled
// plans themselves) is counter-based over engine::SeedSequence, so a faulted
// execution is a pure function of (plan, execution seed) and stays
// bit-identical across thread counts and query orders.
//
// Fault taxonomy (each maps to one axiom boundary, see EXPERIMENTS.md E16):
//
//   * Partition  — honest<->honest links across two groups are severed for
//                  [start, heal); at `heal` the transport re-syncs both sides
//                  from the public view. Stresses A4_Delta: a partition of
//                  length L realizes honest delivery delays of up to L.
//   * Churn      — a party crashes at `crash` (volatile state lost: delivery
//                  queue, chain-sync watermarks, orphan buffer) and restarts
//                  at `restart` from its persisted tree, re-synced on arrival.
//                  Crashed leaders skip their leaderships (the characteristic
//                  string loses those symbols — the "effective schedule").
//   * LinkFault  — over [start, end): each honest chain-ship to a recipient
//                  is independently dropped / duplicated / delayed beyond the
//                  adversarial hold-back by up to `extra_max` extra slots
//                  (temporary asynchrony past the configured Delta).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "protocol/block.hpp"
#include "support/random.hpp"

namespace mh::faults {

/// Two-group split severing cross-group honest links for slots [start, heal).
struct PartitionSpec {
  std::size_t start = 0;
  std::size_t heal = 0;             ///< may exceed the horizon: never heals in-run
  std::vector<std::uint8_t> group;  ///< group[p] in {0, 1}, size == parties

  friend bool operator==(const PartitionSpec&, const PartitionSpec&) = default;
};

/// Party `party` is down for slots [crash, restart).
struct CrashSpec {
  PartyId party = 0;
  std::size_t crash = 0;
  std::size_t restart = 0;  ///< may exceed the horizon: never restarts in-run

  friend bool operator==(const CrashSpec&, const CrashSpec&) = default;
};

/// Per-link loss window over slots [start, end).
struct LinkFaultSpec {
  std::size_t start = 0;
  std::size_t end = 0;
  double drop = 0.0;        ///< P(chain-ship to a recipient is lost)
  double dup = 0.0;         ///< P(the shipped block is duplicated in-bucket)
  double extra_prob = 0.0;  ///< P(extra delay beyond the adversarial hold-back)
  std::size_t extra_max = 0;  ///< extra delay drawn uniformly from [1, extra_max]

  friend bool operator==(const LinkFaultSpec&, const LinkFaultSpec&) = default;
};

/// Named generation recipes for sampled plans (the scenario-matrix fault band).
enum class FaultProfile : std::uint8_t {
  None = 0,       ///< empty plan: the un-faulted baseline
  PartitionHeal,  ///< partitions that heal, some within Delta and some beyond
  Churn,          ///< crash/restart cycles with bounded down-time
  LossyLinks,     ///< per-link drop + duplication windows
  Asynchrony,     ///< bounded extra delay beyond Delta
  Mixed,          ///< all of the above at once
};

const char* fault_profile_name(FaultProfile p) noexcept;

struct FaultPlan {
  std::uint64_t seed = 0;  ///< root of the counter-based link-draw streams
  std::vector<PartitionSpec> partitions;
  std::vector<CrashSpec> churn;
  std::vector<LinkFaultSpec> links;

  [[nodiscard]] bool empty() const noexcept {
    return partitions.empty() && churn.empty() && links.empty();
  }

  /// Throws std::invalid_argument unless the plan is well-formed for
  /// `parties` nodes over slots 1..horizon: partition groups sized `parties`
  /// with both sides populated and pairwise non-overlapping actives; churn
  /// windows per-party non-overlapping with restart > crash >= 1; link
  /// windows with end > start and probabilities in [0, 1].
  void validate(std::size_t parties, std::size_t horizon) const;

  /// Compact single-line text form (the minimal-reproducer payload).
  [[nodiscard]] std::string serialize() const;
  /// Inverse of serialize(); throws std::invalid_argument on malformed input.
  static FaultPlan deserialize(std::string_view text);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Draws a plan of the given profile, scaled to (parties, horizon, delta).
/// Pure in (profile, parties, horizon, delta, rng state); FaultProfile::None
/// yields the empty plan without consuming any randomness.
FaultPlan sample_fault_plan(FaultProfile profile, std::size_t parties, std::size_t horizon,
                            std::size_t delta, Rng& rng);

}  // namespace mh::faults
