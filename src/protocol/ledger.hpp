// The transaction layer over the block substrate: what a settlement violation
// *means* to an application. Transactions carry a conflict class (two
// transactions of one class are mutually exclusive spends of the same coin);
// a chain's ledger accepts the first transaction per class, and a double
// spend succeeds when a transaction confirmed at depth k on one chain is
// displaced by a conflicting one after a reorg.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "protocol/blocktree.hpp"

namespace mh {

struct Transaction {
  std::uint64_t id = 0;        ///< globally unique
  std::uint64_t conflict = 0;  ///< conflict class ("which coin is being spent")
  PartyId sender = 0;
  std::uint64_t amount = 0;

  friend bool operator==(const Transaction&, const Transaction&) = default;
};

/// Associates transaction batches with blocks (the simulator's blocks carry
/// only a payload digest; the store is the off-chain data availability layer).
class PayloadStore {
 public:
  /// Binds the batch to a block; re-attaching to the same block replaces it.
  void attach(BlockHash block, std::vector<Transaction> transactions);
  [[nodiscard]] const std::vector<Transaction>* batch(BlockHash block) const;

  /// Digest used to commit a batch into a block header.
  static std::uint64_t digest(const std::vector<Transaction>& transactions);

 private:
  std::unordered_map<BlockHash, std::vector<Transaction>> batches_;
};

/// The ledger state induced by one chain.
struct LedgerState {
  /// Accepted transactions in chain order (first per conflict class wins).
  std::vector<Transaction> accepted;
  /// Transactions skipped because an earlier chain entry spent their class.
  std::vector<Transaction> rejected;
};

/// Replays the chain ending at `head` through the store.
LedgerState replay_chain(const BlockTree& tree, BlockHash head, const PayloadStore& store);

/// The accepted transaction of `conflict_class` on the chain, provided it is
/// buried under at least `min_depth` blocks (its confirmation); nullopt when
/// unconfirmed or absent.
std::optional<Transaction> confirmed_spend(const BlockTree& tree, BlockHash head,
                                           const PayloadStore& store,
                                           std::uint64_t conflict_class,
                                           std::size_t min_depth);

/// Did a double spend succeed between the two chain observations? True iff
/// both chains confirm (at the given depth) different transactions of the
/// same conflict class.
bool double_spend_succeeded(const BlockTree& tree, BlockHash before, BlockHash after,
                            const PayloadStore& store, std::uint64_t conflict_class,
                            std::size_t min_depth);

}  // namespace mh
