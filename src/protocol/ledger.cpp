#include "protocol/ledger.hpp"

#include <unordered_set>

#include "support/check.hpp"

namespace mh {

void PayloadStore::attach(BlockHash block, std::vector<Transaction> transactions) {
  batches_[block] = std::move(transactions);
}

const std::vector<Transaction>* PayloadStore::batch(BlockHash block) const {
  const auto it = batches_.find(block);
  return it == batches_.end() ? nullptr : &it->second;
}

std::uint64_t PayloadStore::digest(const std::vector<Transaction>& transactions) {
  std::uint64_t acc = 0xcbf29ce484222325ULL;
  for (const Transaction& tx : transactions) {
    acc ^= tx.id;
    acc *= 0x100000001b3ULL;
    acc ^= tx.conflict;
    acc *= 0x100000001b3ULL;
    acc ^= (static_cast<std::uint64_t>(tx.sender) << 32) | tx.amount;
    acc *= 0x100000001b3ULL;
  }
  return acc;
}

LedgerState replay_chain(const BlockTree& tree, BlockHash head, const PayloadStore& store) {
  LedgerState state;
  std::unordered_set<std::uint64_t> spent_classes;
  std::unordered_set<std::uint64_t> seen_ids;
  for (BlockHash h : tree.chain(head)) {
    const std::vector<Transaction>* batch = store.batch(h);
    if (!batch) continue;
    for (const Transaction& tx : *batch) {
      if (seen_ids.contains(tx.id) || spent_classes.contains(tx.conflict)) {
        state.rejected.push_back(tx);
        continue;
      }
      seen_ids.insert(tx.id);
      spent_classes.insert(tx.conflict);
      state.accepted.push_back(tx);
    }
  }
  return state;
}

std::optional<Transaction> confirmed_spend(const BlockTree& tree, BlockHash head,
                                           const PayloadStore& store,
                                           std::uint64_t conflict_class,
                                           std::size_t min_depth) {
  const std::vector<BlockHash> chain = tree.chain(head);
  std::unordered_set<std::uint64_t> spent_classes;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const std::vector<Transaction>* batch = store.batch(chain[i]);
    if (!batch) continue;
    for (const Transaction& tx : *batch) {
      if (spent_classes.contains(tx.conflict)) continue;
      spent_classes.insert(tx.conflict);
      if (tx.conflict == conflict_class) {
        const std::size_t burial = chain.size() - 1 - i;
        if (burial >= min_depth) return tx;
        return std::nullopt;  // present but not yet confirmed
      }
    }
  }
  return std::nullopt;
}

bool double_spend_succeeded(const BlockTree& tree, BlockHash before, BlockHash after,
                            const PayloadStore& store, std::uint64_t conflict_class,
                            std::size_t min_depth) {
  const std::optional<Transaction> first =
      confirmed_spend(tree, before, store, conflict_class, min_depth);
  const std::optional<Transaction> second =
      confirmed_spend(tree, after, store, conflict_class, min_depth);
  return first && second && !(*first == *second);
}

}  // namespace mh
