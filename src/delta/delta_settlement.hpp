// Theorem 7: (k, Delta)-settlement in the semi-synchronous setting, assembled
// from Lemma 2's decomposition
//
//   Pr[violation] <= Pr[no Catalan slot in the reduced window]     (Bound 1)
//                  + Pr[walk fails to descend Delta below and stay] (Bound 3)
//
// plus the string-level event checker used by the Monte-Carlo experiments.
#pragma once

#include "chars/char_string.hpp"
#include "core/exact_dp.hpp"
#include "delta/reduction.hpp"

namespace mh {

/// Admissibility condition (20): pA beta/f + (1 - beta) <= (1 - eps)/2 with
/// beta = (1-f)^Delta; equivalently the reduced adversarial mass stays below
/// one half. Returns the eps' achieved by the reduced law (<= 0 when the
/// condition fails).
double theorem7_epsilon(const TetraLaw& law, std::size_t delta);

/// Sharp numeric Theorem-7 bound on Pr[slot s is not (k, Delta)-settled].
long double theorem7_bound(const TetraLaw& law, std::size_t delta, std::size_t k);

/// The exact settlement series of the conservatively reduced law (Proposition
/// 4): the delta-synchronous analogue of `exact_settlement_series`, run on the
/// same banded DP kernel after collapsing the {Bot,h,H,A} law through
/// `reduced_law`. Sharper than `theorem7_bound` wherever the reduced law
/// keeps an honest majority; when it does not (eps' <= 0, Theorem 7
/// inapplicable) the series degenerates to the trivial bound P(k) = 1.
SettlementSeries delta_settlement_series(const TetraLaw& law, std::size_t delta,
                                         std::size_t k_max,
                                         DpPrecision precision = DpPrecision::Reference);

/// Single-point convenience: the exact (k, Delta) entry.
long double delta_settlement_violation_probability(const TetraLaw& law, std::size_t delta,
                                                   std::size_t k,
                                                   DpPrecision precision = DpPrecision::Reference);

/// The Lemma-2 event E on the reduced string w' = rho_Delta(w), for the window
/// y' = w'_{s'}..w'_{s'+k-1}: some slot c in the window is uniquely honest and
/// Catalan in w', and the walk satisfies S_{c+k+i} <= S_c - Delta for all
/// i >= 0 (within the observed horizon). If E holds the original slot is
/// (|y'|, Delta)-settled.
bool lemma2_event_holds(const CharString& reduced, std::size_t start, std::size_t k,
                        std::size_t delta);

}  // namespace mh
