#include "delta/reduction.hpp"

#include <cmath>

#include "support/check.hpp"

namespace mh {

ReductionResult reduce(const TetraString& w, std::size_t delta) {
  const std::size_t n = w.size();
  ReductionResult out;
  out.inverse.assign(n, 0);

  std::vector<Symbol> reduced;
  for (std::size_t t = 1; t <= n; ++t) {
    const TetraSymbol b = w.at(t);
    if (is_empty(b)) continue;
    Symbol translated;
    if (is_adversarial(b)) {
      translated = Symbol::A;
    } else {
      // Honest slot survives iff the next `delta` slots exist and contain no
      // honest slot ("{Bot, A}^Delta is a prefix of the rest", Definition 22;
      // truncated windows at the end of the string translate to A, matching
      // the paper's remark that the last Delta symbols are distorted
      // adversarially).
      bool clear = t + delta <= n;
      for (std::size_t j = t + 1; j <= t + delta && clear; ++j)
        if (is_honest(w.at(j))) clear = false;
      translated = clear ? (b == TetraSymbol::h ? Symbol::h : Symbol::H) : Symbol::A;
    }
    reduced.push_back(translated);
    out.pi.push_back(t);
    out.inverse[t - 1] = reduced.size();
  }
  out.reduced = CharString(std::move(reduced));
  return out;
}

ReductionResult reduce_conservative(const TetraString& w, std::size_t delta) {
  const std::size_t n = w.size();
  ReductionResult out;
  out.inverse.assign(n, 0);

  std::vector<Symbol> reduced;
  for (std::size_t t = 1; t <= n; ++t) {
    const TetraSymbol b = w.at(t);
    if (is_empty(b)) continue;
    Symbol translated;
    if (is_adversarial(b)) {
      translated = Symbol::A;
    } else {
      bool run_of_empty = t + delta <= n;  // truncated windows translate to A
      for (std::size_t j = t + 1; j <= n && j <= t + delta && run_of_empty; ++j)
        if (!is_empty(w.at(j))) run_of_empty = false;
      translated = run_of_empty ? (b == TetraSymbol::h ? Symbol::h : Symbol::H) : Symbol::A;
    }
    reduced.push_back(translated);
    out.pi.push_back(t);
    out.inverse[t - 1] = reduced.size();
  }
  out.reduced = CharString(std::move(reduced));
  return out;
}

SymbolLaw reduced_law(const TetraLaw& law, std::size_t delta) {
  law.validate();
  const double f = law.f();
  MH_REQUIRE(f > 0.0);
  const double alpha = std::pow(1.0 - f, static_cast<double>(delta));
  SymbolLaw out;
  out.ph = law.ph * alpha / f;
  out.pH = law.pH * alpha / f;
  out.pA = 1.0 - alpha + law.pA * alpha / f;
  out.validate();
  return out;
}

}  // namespace mh
