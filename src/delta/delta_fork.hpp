// Delta-forks (Definition 21) and (k, Delta)-settlement (Definition 23).
//
// A Delta-fork relaxes the synchronous honest-depth axiom: only honest labels
// separated by more than Delta slots must have strictly increasing depths.
// Under the reduction map (Proposition 3) every Delta-fork for w is
// isomorphic to a synchronous fork for rho_Delta(w) after relabeling.
#pragma once

#include <string>

#include "delta/semi_sync.hpp"
#include "fork/fork.hpp"
#include "fork/validate.hpp"

namespace mh {

/// Checks (F1)-(F3) and (F4_Delta) for F |-Delta w. Vertices may not be
/// labeled with empty slots (no leader means no block).
ValidationResult validate_delta_fork(const Fork& fork, const TetraString& w, std::size_t delta);

/// Relabels a Delta-fork for w into the synchronous fork for rho_Delta(w)
/// via the position bijection pi (Proposition 3).
Fork project_to_synchronous(const Fork& fork, const std::vector<std::size_t>& inverse);

/// Definition 23: F contains two maximum-length tines such that at least one
/// carries a vertex labeled s, both carry >= k vertices with labels > s, and
/// their last common vertex has label <= s-1.
bool delta_settlement_violation_in_fork(const Fork& fork, std::size_t s, std::size_t k);

}  // namespace mh
