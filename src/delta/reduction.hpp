// The Delta-reduction map rho_Delta of Definition 22, which lifts the
// synchronous analysis to the Delta-synchronous setting:
//
//   * empty slots vanish;
//   * an honest slot survives as itself only if the next Delta slots contain
//     no honest slot (i.e. are all in {Bot, A}); otherwise it becomes A.
//
// The map induces a bijection pi from non-empty slots of w onto positions of
// w' = rho_Delta(w) and, crucially, a fork isomorphism (Proposition 3): every
// Delta-fork for w is a synchronous fork for w' after relabeling.
#pragma once

#include <vector>

#include "chars/bernoulli.hpp"
#include "chars/char_string.hpp"
#include "delta/semi_sync.hpp"

namespace mh {

struct ReductionResult {
  CharString reduced;                ///< rho_Delta(w)
  std::vector<std::size_t> pi;       ///< pi[j] = original slot of reduced position j+1
  std::vector<std::size_t> inverse;  ///< inverse[t-1] = reduced position of slot t (0 if empty)
};

/// Applies rho_Delta exactly as in Definition 22: an honest slot survives iff
/// the next Delta slots contain no honest slot. Delta = 0 deletes empty slots.
ReductionResult reduce(const TetraString& w, std::size_t delta);

/// The conservative variant used by the stochastic analysis (Proposition 4's
/// segment decomposition): an honest slot survives only when *immediately*
/// followed by at least Delta empty slots. Its output is coordinatewise more
/// adversarial than `reduce`'s (so every bound proven for it transfers), and
/// its symbols are genuinely i.i.d. with the law of `reduced_law` below.
ReductionResult reduce_conservative(const TetraString& w, std::size_t delta);

/// Proposition 4 / Eq. (22): the i.i.d. law of the conservative reduction's
/// symbols (exact for positions that exclude the last Delta slots):
///   Pr[h] = ph alpha/f, Pr[H] = pH alpha/f, Pr[A] = 1 - alpha + pA alpha/f,
/// with f = 1 - pBot and alpha = (1-f)^Delta.
SymbolLaw reduced_law(const TetraLaw& law, std::size_t delta);

}  // namespace mh
