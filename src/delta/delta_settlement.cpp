#include "delta/delta_settlement.hpp"

#include <algorithm>

#include "chars/walk.hpp"
#include "core/bounds.hpp"
#include "core/catalan.hpp"
#include "support/check.hpp"

namespace mh {

double theorem7_epsilon(const TetraLaw& law, std::size_t delta) {
  const SymbolLaw reduced = reduced_law(law, delta);
  return reduced.epsilon();
}

long double theorem7_bound(const TetraLaw& law, std::size_t delta, std::size_t k) {
  MH_REQUIRE(k >= 1);
  const SymbolLaw reduced = reduced_law(law, delta);
  if (reduced.epsilon() <= 0.0 || reduced.ph <= 0.0) return 1.0L;
  const long double miss_catalan = bound1_tail(reduced, k);
  const long double walk_fails =
      bound3_probability(reduced.epsilon(), delta, k);
  return std::min(1.0L, miss_catalan + walk_fails);
}

SettlementSeries delta_settlement_series(const TetraLaw& law, std::size_t delta,
                                         std::size_t k_max, DpPrecision precision) {
  MH_REQUIRE(k_max >= 1);
  const SymbolLaw reduced = reduced_law(law, delta);
  if (reduced.epsilon() <= 0.0) {
    // The reduced adversarial mass reaches 1/2: X_inf diverges and the
    // adversary sustains a maximum-length fork forever.
    SettlementSeries trivial;
    trivial.violation.assign(k_max + 1, 1.0L);
    trivial.always_violating = 1.0L;
    return trivial;
  }
  return exact_settlement_series(reduced, k_max, InitialReach::Stationary, precision);
}

long double delta_settlement_violation_probability(const TetraLaw& law, std::size_t delta,
                                                   std::size_t k, DpPrecision precision) {
  return delta_settlement_series(law, delta, k, precision).violation[k];
}

bool lemma2_event_holds(const CharString& reduced, std::size_t start, std::size_t k,
                        std::size_t delta) {
  MH_REQUIRE(start >= 1 && k >= 1);
  if (start + k - 1 > reduced.size()) return false;
  const CatalanFlags flags = catalan_flags(reduced);
  const CharWalk walk(reduced);
  for (std::size_t c = start; c <= start + k - 1; ++c) {
    if (!(flags.catalan[c - 1] && reduced.uniquely_honest(c))) continue;
    // S_{c+k+i} <= S_c - Delta for every observed i >= 0.
    const std::size_t from = c + k;
    bool descended = true;
    if (from <= reduced.size()) {
      if (walk.suffix_max(from) >
          walk.position(c) - static_cast<std::int64_t>(delta))
        descended = false;
    }
    if (descended) return true;
  }
  return false;
}

}  // namespace mh
