#include "delta/semi_sync.hpp"

#include <cmath>

#include "support/check.hpp"

namespace mh {

TetraString TetraString::parse(std::string_view text) {
  std::vector<TetraSymbol> symbols;
  symbols.reserve(text.size());
  for (char c : text) {
    if (c == ' ') continue;
    symbols.push_back(tetra_from_char(c));
  }
  return TetraString(std::move(symbols));
}

TetraSymbol TetraString::at(std::size_t slot) const {
  MH_REQUIRE_MSG(slot >= 1 && slot <= symbols_.size(), "slots are 1-indexed");
  return symbols_[slot - 1];
}

std::string TetraString::to_string() const {
  std::string out;
  out.reserve(symbols_.size());
  for (TetraSymbol s : symbols_) out.push_back(to_char(s));
  return out;
}

void TetraLaw::validate() const {
  MH_REQUIRE(pBot >= 0.0 && ph >= 0.0 && pH >= 0.0 && pA >= 0.0);
  MH_REQUIRE_MSG(std::abs(pBot + ph + pH + pA - 1.0) < 1e-12, "probabilities must sum to 1");
}

TetraSymbol TetraLaw::sample(Rng& rng) const {
  const double u = rng.uniform();
  if (u < pBot) return TetraSymbol::Bot;
  if (u < pBot + pA) return TetraSymbol::A;
  if (u < pBot + pA + ph) return TetraSymbol::h;
  return TetraSymbol::H;
}

TetraString TetraLaw::sample_string(std::size_t length, Rng& rng) const {
  std::vector<TetraSymbol> symbols;
  symbols.reserve(length);
  for (std::size_t i = 0; i < length; ++i) symbols.push_back(sample(rng));
  return TetraString(std::move(symbols));
}

TetraLaw theorem7_law(double f, double pA, double ph) {
  MH_REQUIRE(f > 0.0 && f <= 1.0);
  MH_REQUIRE(pA >= 0.0 && pA < f);
  MH_REQUIRE(ph > 0.0 && ph <= f - pA);
  TetraLaw law{1.0 - f, ph, f - pA - ph, pA};
  law.validate();
  return law;
}

}  // namespace mh
