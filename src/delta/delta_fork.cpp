#include "delta/delta_fork.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mh {

ValidationResult validate_delta_fork(const Fork& fork, const TetraString& w,
                                     std::size_t delta) {
  const std::size_t n = w.size();
  auto fail = [](std::string msg) { return ValidationResult{false, std::move(msg)}; };

  if (fork.label(kRoot) != 0) return fail("(F1) root must be labeled 0");

  for (VertexId v : fork.all_vertices()) {
    const std::uint32_t l = fork.label(v);
    if (l > n) return fail("(F2) label exceeds string length");
    if (v != kRoot && l <= fork.label(fork.parent(v)))
      return fail("(F2) labels must strictly increase along tines");
    if (l >= 1 && is_empty(w.at(l))) return fail("empty slots cannot label blocks");
  }

  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t count = fork.vertices_with_label(static_cast<std::uint32_t>(i)).size();
    if (w.at(i) == TetraSymbol::h && count != 1)
      return fail("(F3) uniquely honest slot must label exactly one vertex");
    if (w.at(i) == TetraSymbol::H && count == 0)
      return fail("(F3) multiply honest slot must label at least one vertex");
  }

  std::vector<std::pair<std::uint32_t, std::uint32_t>> honest;
  for (VertexId v : fork.all_vertices()) {
    const std::uint32_t l = fork.label(v);
    if (l >= 1 && is_honest(w.at(l))) honest.emplace_back(l, fork.depth(v));
  }
  std::sort(honest.begin(), honest.end());
  for (std::size_t a = 0; a < honest.size(); ++a)
    for (std::size_t b = a + 1; b < honest.size(); ++b)
      if (honest[a].first + delta < honest[b].first && honest[a].second >= honest[b].second)
        return fail("(F4_Delta) honest depths must increase across > Delta slot gaps");

  return ValidationResult{};
}

Fork project_to_synchronous(const Fork& fork, const std::vector<std::size_t>& inverse) {
  Fork out;
  // Vertices are stored in insertion order with parents preceding children, so
  // a single pass rebuilds the tree; ids are preserved verbatim.
  for (VertexId v = 1; v < fork.vertex_count(); ++v) {
    const std::uint32_t l = fork.label(v);
    MH_REQUIRE(l >= 1 && l <= inverse.size());
    const std::size_t projected = inverse[l - 1];
    MH_REQUIRE_MSG(projected != 0, "fork labels an empty slot; not a valid Delta-fork");
    const VertexId copied =
        out.add_vertex(fork.parent(v), static_cast<std::uint32_t>(projected));
    MH_ASSERT(copied == v);
  }
  return out;
}

bool delta_settlement_violation_in_fork(const Fork& fork, std::size_t s, std::size_t k) {
  const std::vector<VertexId> heads = fork.longest_tines();
  auto stats = [&](VertexId head) {
    bool carries_s = false;
    std::size_t after = 0;
    for (VertexId v = head; v != kRoot; v = fork.parent(v)) {
      if (fork.label(v) == s) carries_s = true;
      if (fork.label(v) > s) ++after;
    }
    return std::pair{carries_s, after};
  };
  for (std::size_t a = 0; a < heads.size(); ++a)
    for (std::size_t b = a + 1; b < heads.size(); ++b) {
      const auto [s1, after1] = stats(heads[a]);
      const auto [s2, after2] = stats(heads[b]);
      if (!s1 && !s2) continue;
      if (after1 < k || after2 < k) continue;
      if (fork.label(fork.lca(heads[a], heads[b])) <= s - 1) return true;
    }
  return false;
}

}  // namespace mh
