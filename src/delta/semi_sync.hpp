// Semi-synchronous characteristic strings over {Bot, h, H, A} (Definition 20):
// a slot may be empty (no leader at all), which happens with probability
// p_Bot = 1 - f where f is the active-slot coefficient.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "chars/symbol.hpp"
#include "support/random.hpp"

namespace mh {

class TetraString {
 public:
  TetraString() = default;
  explicit TetraString(std::vector<TetraSymbol> symbols) : symbols_(std::move(symbols)) {}
  /// Parse from text such as "h..A.H" ('.' or '_' for empty slots).
  static TetraString parse(std::string_view text);

  [[nodiscard]] std::size_t size() const noexcept { return symbols_.size(); }
  [[nodiscard]] TetraSymbol at(std::size_t slot) const;
  [[nodiscard]] const std::vector<TetraSymbol>& symbols() const noexcept { return symbols_; }
  void push_back(TetraSymbol s) { symbols_.push_back(s); }

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<TetraSymbol> symbols_;
};

/// i.i.d. law on {Bot, h, H, A}; probabilities sum to 1.
struct TetraLaw {
  double pBot = 0.0;
  double ph = 0.0;
  double pH = 0.0;
  double pA = 0.0;

  /// Active-slot coefficient f = 1 - pBot.
  [[nodiscard]] double f() const noexcept { return 1.0 - pBot; }

  void validate() const;
  [[nodiscard]] TetraSymbol sample(Rng& rng) const;
  [[nodiscard]] TetraString sample_string(std::size_t length, Rng& rng) const;
};

/// The Theorem-7 parameterization: active-slot coefficient f, adversarial
/// share pA < f, uniquely honest share ph <= f - pA; pH = f - pA - ph.
TetraLaw theorem7_law(double f, double pA, double ph);

}  // namespace mh
