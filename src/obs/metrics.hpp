// Deterministic metrics: a Registry of named Counter / Gauge / Histogram
// instruments backed by per-thread shards.
//
// Design contract (pinned by tests/test_obs.cpp):
//
//   * recording is wait-free on the hot path — each thread writes a relaxed
//     atomic in its own cache-line-padded shard, so enabling metrics never
//     takes a lock, never allocates, and never touches an engine::SeedSequence
//     stream: simulation / oracle / DP results are bit-identical with metrics
//     on or off, for any thread count;
//   * shard merges are commutative integer sums (max for gauges), so snapshot
//     values are thread-count invariant; the registry iterates instruments in
//     registration order and the exporters additionally sort by name, so the
//     emitted artifact is stable run to run;
//   * histograms are log-bucketed base 2: bucket 0 holds exact zeros, bucket
//     i >= 1 holds values in [2^(i-1), 2^i).
//
// The instruments are always compiled (so the layer is testable in every
// build); the *call sites* across engine / protocol / core / oracle are
// compiled out entirely unless the MH_OBS CMake option defines
// MH_OBS_ENABLED (see obs/obs.hpp), and even then record only while the
// runtime switch obs::enabled() is on.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mh::obs {

/// Runtime switch; instruments record only while true. Initialized from the
/// MH_OBS environment variable ("1"/"on"/"true"), default off.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Stable small index for the calling thread, used to pick a shard. Assigned
/// on first use; indices wrap modulo the shard count (shards are shared, not
/// owned, so wrapping stays correct — sums are commutative).
std::size_t thread_shard_index() noexcept;

/// Shards per instrument. Plenty for the engine's pool sizes; threads beyond
/// this share shards without affecting merged values.
inline constexpr std::size_t kShards = 32;

namespace detail {
struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> v{0};
};
void atomic_store_min(std::atomic<std::uint64_t>& a, std::uint64_t v) noexcept;
void atomic_store_max(std::atomic<std::uint64_t>& a, std::uint64_t v) noexcept;
}  // namespace detail

/// Monotone event count. Merge = sum over shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[thread_shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  std::array<detail::ShardCell, kShards> shards_{};
};

/// Last-written level per shard; merge = MAX over shards that ever recorded
/// (deterministic regardless of which thread recorded which sample — a
/// high-water mark, which is what queue depths and band widths want).
class Gauge {
 public:
  void set(std::int64_t v) noexcept;
  [[nodiscard]] std::int64_t value() const noexcept;  ///< 0 when never set
  [[nodiscard]] bool ever_set() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Slot {
    std::atomic<std::int64_t> v{0};
    std::atomic<bool> set{false};
  };
  std::array<Slot, kShards> slots_{};
};

/// Log-bucketed (base-2) histogram of unsigned samples with exact count /
/// sum / min / max side channels. Merge = per-bucket sums.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  /// Bucket 0 = {0}; bucket i >= 1 covers [2^(i-1), 2^i).
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept;
  /// Inclusive lower bound of a bucket (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t bucket) noexcept;

  void record(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept;
  [[nodiscard]] std::uint64_t min() const noexcept;  ///< 0 when empty
  [[nodiscard]] std::uint64_t max() const noexcept;  ///< 0 when empty
  [[nodiscard]] std::uint64_t bucket_count(std::size_t bucket) const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  std::array<Shard, kShards> shards_{};
};

// ---------------------------------------------------------------------------
// Registry: named instruments with stable addresses, merged snapshots.
// ---------------------------------------------------------------------------

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
  bool ever_set = false;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  /// Mean sample, 0 when empty.
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// A merged, point-in-time view of every registered instrument, each kind in
/// its registration order.
struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class Registry {
 public:
  /// The process-wide registry every MH_OBS_* hook records into.
  static Registry& global();

  /// Look up or create. Re-registering an existing name with the SAME kind
  /// returns the existing instrument; registering it with a DIFFERENT kind
  /// throws std::logic_error (name collisions are always a bug).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Merged values of every instrument, each kind in registration order.
  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every instrument (names and addresses stay registered). Benches use
  /// this between measurement phases.
  void reset();

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    MetricKind kind;
    std::size_t slot;  ///< index into the kind-specific vector
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> by_name_;
  // Deques-of-unique_ptr semantics via vector<unique_ptr>: stable addresses.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

}  // namespace mh::obs
