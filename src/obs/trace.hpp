// Phase tracing: RAII Span / ScopedTimer instruments feeding a fixed-capacity
// ring-buffer sink (oldest events overwritten, recording never blocks on a
// full buffer and never allocates after construction).
//
// Spans nest per thread: each carries the nesting depth at which it opened,
// so a drained ring reconstructs the phase structure
// (simulate -> project -> validate -> reduce) without a separate stack.
// Events are pushed on span CLOSE, so a parent appears after its children.
//
// Timing is wall-clock and therefore nondeterministic — trace events and
// duration histograms feed dashboards and bench artifacts, never simulation
// results. Like the metrics layer, spans record only while obs::enabled().
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace mh::obs {

class Histogram;

/// Monotonic wall clock in nanoseconds (steady_clock).
std::uint64_t now_ns() noexcept;

/// Small dense ordinal for the calling thread (first use assigns), used to
/// attribute trace events. Unlike shard indices these never wrap.
std::uint32_t thread_ordinal() noexcept;

struct TraceEvent {
  const char* name = "";  ///< must point at static storage (string literals)
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t thread = 0;
  std::uint32_t depth = 0;  ///< nesting depth at open (0 = top level)

  [[nodiscard]] std::uint64_t duration_ns() const noexcept { return end_ns - begin_ns; }
};

class TraceSink {
 public:
  /// The process-wide sink Span/ScopedTimer record into.
  static TraceSink& global();

  explicit TraceSink(std::size_t capacity = 4096);

  void record(const TraceEvent& event);

  /// Buffered events, oldest first. At most capacity(); earlier events were
  /// overwritten (see dropped()).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::uint64_t recorded() const;  ///< total ever recorded
  [[nodiscard]] std::uint64_t dropped() const;   ///< overwritten by wrap-around
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;       ///< ring write cursor
  std::uint64_t recorded_ = 0;
};

/// RAII phase marker. Inert (records nothing, reads no clock) unless
/// obs::enabled() was true at construction.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Current nesting depth of the calling thread (0 = no open span).
  [[nodiscard]] static std::uint32_t current_depth() noexcept;

 private:
  friend class ScopedTimer;
  const char* name_;
  std::uint64_t begin_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

/// A Span that additionally records its duration (ns) into the histogram of
/// the same name in Registry::global().
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Span span_;
  Histogram* hist_ = nullptr;  ///< null when inert
};

}  // namespace mh::obs
