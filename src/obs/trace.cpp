#include "obs/trace.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace mh::obs {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

namespace {
thread_local std::uint32_t t_span_depth = 0;
}  // namespace

TraceSink& TraceSink::global() {
  static TraceSink sink;
  return sink;
}

TraceSink::TraceSink(std::size_t capacity) : ring_(capacity) {
  MH_REQUIRE(capacity >= 1);
}

void TraceSink::record(const TraceEvent& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_[next_] = event;
  next_ = (next_ + 1) % ring_.size();
  ++recorded_;
}

std::vector<TraceEvent> TraceSink::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  const std::size_t n = recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                                 : ring_.size();
  out.reserve(n);
  // Oldest-first: when wrapped, the oldest live event sits at the cursor.
  const std::size_t start = recorded_ < ring_.size() ? 0 : next_;
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

std::uint64_t TraceSink::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t TraceSink::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ < ring_.size() ? 0 : recorded_ - ring_.size();
}

void TraceSink::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  next_ = 0;
  recorded_ = 0;
}

Span::Span(const char* name) noexcept : name_(name) {
  if (!enabled()) return;
  active_ = true;
  depth_ = t_span_depth++;
  begin_ns_ = now_ns();
}

Span::~Span() {
  if (!active_) return;
  --t_span_depth;
  TraceEvent event;
  event.name = name_;
  event.begin_ns = begin_ns_;
  event.end_ns = now_ns();
  event.thread = thread_ordinal();
  event.depth = depth_;
  TraceSink::global().record(event);
}

std::uint32_t Span::current_depth() noexcept { return t_span_depth; }

ScopedTimer::ScopedTimer(const char* name) : span_(name) {
  if (span_.active_) hist_ = &Registry::global().histogram(name);
}

ScopedTimer::~ScopedTimer() {
  if (hist_ != nullptr) hist_->record(now_ns() - span_.begin_ns_);
}

}  // namespace mh::obs
