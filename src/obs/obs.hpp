// Umbrella header + the instrumentation hook macros the rest of the library
// uses. Two gates stack:
//
//   * compile time — the MH_OBS CMake option defines MH_OBS_ENABLED for the
//     whole build; without it every MH_OBS_* hook below expands to ((void)0)
//     and the instrumented layers compile exactly as before (zero cost, no
//     branch, no symbol);
//   * run time — with hooks compiled in, nothing records until
//     obs::enabled() is switched on (MH_OBS=1 in the environment, or
//     obs::set_enabled(true)); the disabled cost is one relaxed atomic load
//     and a predictable branch per hook.
//
// Instruments resolve once per call site through a function-local static, so
// the steady-state hot path is a per-thread relaxed atomic increment — no
// lock, no lookup. Metric names are dot-scoped by layer:
//
//   engine.pool.*     chunk scheduling, task latency, idle/steal counts
//   protocol.net.*    blocks shipped/delivered, watermarks, chain sync
//   protocol.node.*   deliveries, orphan buffering/flushing
//   protocol.tree.*   lifted-ancestor query depths
//   protocol.sim.*    slot loop progress
//   dp.*              banded-kernel band widths, cells touched, precision path
//   oracle.*          per-cell timings, phase spans, MC<->DP band slack
//
// Recording never perturbs results: instruments touch no RNG stream and no
// simulation state, and shard merges are commutative sums (metrics.hpp).
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mh::obs {

/// True when this build carries the instrumentation hooks (MH_OBS=ON).
constexpr bool compiled() noexcept {
#ifdef MH_OBS_ENABLED
  return true;
#else
  return false;
#endif
}

}  // namespace mh::obs

#ifdef MH_OBS_ENABLED

#define MH_OBS_CONCAT_INNER(a, b) a##b
#define MH_OBS_CONCAT(a, b) MH_OBS_CONCAT_INNER(a, b)

/// Statement splice: the argument exists only in MH_OBS builds.
#define MH_OBS_ONLY(...) __VA_ARGS__

/// counter(name) += n.
#define MH_OBS_COUNT(name, n)                                         \
  do {                                                                \
    if (::mh::obs::enabled()) {                                       \
      static ::mh::obs::Counter& mh_obs_counter_ =                    \
          ::mh::obs::Registry::global().counter(name);                \
      mh_obs_counter_.add(static_cast<std::uint64_t>(n));             \
    }                                                                 \
  } while (0)

/// gauge(name) = v (snapshot merges take the max across shards).
#define MH_OBS_GAUGE_SET(name, v)                                     \
  do {                                                                \
    if (::mh::obs::enabled()) {                                       \
      static ::mh::obs::Gauge& mh_obs_gauge_ =                        \
          ::mh::obs::Registry::global().gauge(name);                  \
      mh_obs_gauge_.set(static_cast<std::int64_t>(v));                \
    }                                                                 \
  } while (0)

/// histogram(name).record(v) — log-bucketed, v must be unsigned-convertible.
#define MH_OBS_HIST(name, v)                                          \
  do {                                                                \
    if (::mh::obs::enabled()) {                                       \
      static ::mh::obs::Histogram& mh_obs_hist_ =                     \
          ::mh::obs::Registry::global().histogram(name);              \
      mh_obs_hist_.record(static_cast<std::uint64_t>(v));             \
    }                                                                 \
  } while (0)

/// RAII phase span for the enclosing scope (trace ring only).
#define MH_OBS_SPAN(name) ::mh::obs::Span MH_OBS_CONCAT(mh_obs_span_, __LINE__)(name)

/// RAII span + duration histogram of the same name.
#define MH_OBS_TIMER(name) ::mh::obs::ScopedTimer MH_OBS_CONCAT(mh_obs_timer_, __LINE__)(name)

#else  // !MH_OBS_ENABLED — every hook compiles away entirely.

#define MH_OBS_ONLY(...)
#define MH_OBS_COUNT(name, n) ((void)0)
#define MH_OBS_GAUGE_SET(name, v) ((void)0)
#define MH_OBS_HIST(name, v) ((void)0)
#define MH_OBS_SPAN(name) ((void)0)
#define MH_OBS_TIMER(name) ((void)0)

#endif  // MH_OBS_ENABLED
