#include "obs/metrics.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "support/env.hpp"

namespace mh::obs {

namespace {

// The shared strict parser (support/env.hpp) replaces the old local
// accept-list. enabled() is noexcept and runs during static init, so a
// malformed MH_OBS cannot propagate: report it and abort instead of
// silently recording nothing.
bool env_truthy(const char* name) noexcept {
  try {
    return env::flag(name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mh: %s\n", e.what());
    std::abort();
  }
}

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{env_truthy("MH_OBS")};
  return flag;
}

}  // namespace

bool enabled() noexcept { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept { enabled_flag().store(on, std::memory_order_relaxed); }

std::size_t thread_shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx = next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

namespace detail {

void atomic_store_min(std::atomic<std::uint64_t>& a, std::uint64_t v) noexcept {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_store_max(std::atomic<std::uint64_t>& a, std::uint64_t v) noexcept {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const detail::ShardCell& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (detail::ShardCell& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

void Gauge::set(std::int64_t v) noexcept {
  Slot& slot = slots_[thread_shard_index()];
  slot.v.store(v, std::memory_order_relaxed);
  slot.set.store(true, std::memory_order_relaxed);
}

std::int64_t Gauge::value() const noexcept {
  std::int64_t best = 0;
  bool any = false;
  for (const Slot& slot : slots_) {
    if (!slot.set.load(std::memory_order_relaxed)) continue;
    const std::int64_t v = slot.v.load(std::memory_order_relaxed);
    best = any ? (v > best ? v : best) : v;
    any = true;
  }
  return best;
}

bool Gauge::ever_set() const noexcept {
  for (const Slot& slot : slots_)
    if (slot.set.load(std::memory_order_relaxed)) return true;
  return false;
}

void Gauge::reset() noexcept {
  for (Slot& slot : slots_) {
    slot.v.store(0, std::memory_order_relaxed);
    slot.set.store(false, std::memory_order_relaxed);
  }
}

std::size_t Histogram::bucket_of(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const std::size_t b = static_cast<std::size_t>(std::bit_width(v));
  return b < kBuckets ? b : kBuckets - 1;
}

std::uint64_t Histogram::bucket_lo(std::size_t bucket) noexcept {
  return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

void Histogram::record(std::uint64_t v) noexcept {
  Shard& shard = shards_[thread_shard_index()];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
  detail::atomic_store_min(shard.min, v);
  detail::atomic_store_max(shard.max, v);
  shard.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.count.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::min() const noexcept {
  std::uint64_t best = ~std::uint64_t{0};
  bool any = false;
  for (const Shard& s : shards_) {
    if (s.count.load(std::memory_order_relaxed) == 0) continue;
    const std::uint64_t v = s.min.load(std::memory_order_relaxed);
    best = any && best < v ? best : v;
    any = true;
  }
  return any ? best : 0;
}

std::uint64_t Histogram::max() const noexcept {
  std::uint64_t best = 0;
  for (const Shard& s : shards_) {
    const std::uint64_t v = s.max.load(std::memory_order_relaxed);
    best = v > best ? v : best;
  }
  return best;
}

std::uint64_t Histogram::bucket_count(std::size_t bucket) const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.buckets[bucket].load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

namespace {
[[noreturn]] void kind_collision(std::string_view name) {
  throw std::logic_error("obs::Registry: metric name registered twice with different kinds: " +
                         std::string(name));
}
}  // namespace

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    if (it->second.kind != MetricKind::Counter) kind_collision(name);
    return *counters_[it->second.slot].second;
  }
  counters_.emplace_back(std::string(name), std::make_unique<Counter>());
  by_name_.emplace(std::string(name), Entry{MetricKind::Counter, counters_.size() - 1});
  return *counters_.back().second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    if (it->second.kind != MetricKind::Gauge) kind_collision(name);
    return *gauges_[it->second.slot].second;
  }
  gauges_.emplace_back(std::string(name), std::make_unique<Gauge>());
  by_name_.emplace(std::string(name), Entry{MetricKind::Gauge, gauges_.size() - 1});
  return *gauges_.back().second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    if (it->second.kind != MetricKind::Histogram) kind_collision(name);
    return *histograms_[it->second.slot].second;
  }
  histograms_.emplace_back(std::string(name), std::make_unique<Histogram>());
  by_name_.emplace(std::string(name), Entry{MetricKind::Histogram, histograms_.size() - 1});
  return *histograms_.back().second;
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value(), g->ever_set()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) hs.buckets[b] = h->bucket_count(b);
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return by_name_.size();
}

}  // namespace mh::obs
