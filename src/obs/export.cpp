#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <stdexcept>
#include <variant>

#include "engine/thread_pool.hpp"
#include "support/table.hpp"

namespace mh::obs {

// ---------------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------------

struct Json::Impl {
  using Object = std::vector<std::pair<std::string, Json>>;
  using Array = std::vector<Json>;
  std::variant<std::nullptr_t, bool, double, std::uint64_t, std::int64_t, std::string, Object,
               Array>
      value;
};

Json::Json(std::nullptr_t) : impl_(std::make_unique<Impl>()) { impl_->value = nullptr; }
Json::Json(bool b) : impl_(std::make_unique<Impl>()) { impl_->value = b; }
Json::Json(double d) : impl_(std::make_unique<Impl>()) { impl_->value = d; }
Json::Json(std::uint64_t u) : impl_(std::make_unique<Impl>()) { impl_->value = u; }
Json::Json(std::int64_t i) : impl_(std::make_unique<Impl>()) { impl_->value = i; }
Json::Json(const char* s) : impl_(std::make_unique<Impl>()) { impl_->value = std::string(s); }
Json::Json(std::string s) : impl_(std::make_unique<Impl>()) { impl_->value = std::move(s); }

Json::Json(const Json& other) : impl_(std::make_unique<Impl>(*other.impl_)) {}
Json::Json(Json&& other) noexcept = default;
Json& Json::operator=(Json other) {
  impl_ = std::move(other.impl_);
  return *this;
}
Json::~Json() = default;

Json Json::object() {
  Json j;
  j.impl_->value = Impl::Object{};
  return j;
}

Json Json::array() {
  Json j;
  j.impl_->value = Impl::Array{};
  return j;
}

Json& Json::set(std::string key, Json value) {
  auto& obj = std::get<Impl::Object>(impl_->value);
  for (auto& [k, v] : obj)
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  obj.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  std::get<Impl::Array>(impl_->value).push_back(std::move(value));
  return *this;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_indent(std::string& out, int indent, int level) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(level), ' ');
}

}  // namespace

void Json::render(std::string& out, int indent, int level) const {
  const auto& v = impl_->value;
  if (std::holds_alternative<std::nullptr_t>(v)) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&v)) {
    out += *b ? "true" : "false";
  } else if (const double* d = std::get_if<double>(&v)) {
    char buf[40];
    if (*d != *d || *d > 1.7e308 || *d < -1.7e308) {
      out += "null";  // JSON has no NaN / Inf
    } else {
      std::snprintf(buf, sizeof(buf), "%.17g", *d);
      out += buf;
    }
  } else if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v)) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, *u);
    out += buf;
  } else if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, *i);
    out += buf;
  } else if (const std::string* s = std::get_if<std::string>(&v)) {
    append_escaped(out, *s);
  } else if (const Impl::Object* obj = std::get_if<Impl::Object>(&v)) {
    if (obj->empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    for (std::size_t i = 0; i < obj->size(); ++i) {
      append_indent(out, indent, level + 1);
      append_escaped(out, (*obj)[i].first);
      out += indent > 0 ? ": " : ":";
      (*obj)[i].second.render(out, indent, level + 1);
      if (i + 1 < obj->size()) out.push_back(',');
    }
    append_indent(out, indent, level);
    out.push_back('}');
  } else if (const Impl::Array* arr = std::get_if<Impl::Array>(&v)) {
    if (arr->empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < arr->size(); ++i) {
      append_indent(out, indent, level + 1);
      (*arr)[i].render(out, indent, level + 1);
      if (i + 1 < arr->size()) out.push_back(',');
    }
    append_indent(out, indent, level);
    out.push_back(']');
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  render(out, indent, 0);
  out.push_back('\n');
  return out;
}

// ---------------------------------------------------------------------------
// Meta + exporters
// ---------------------------------------------------------------------------

const char* build_git_rev() noexcept {
#ifdef MH_GIT_REV
  return MH_GIT_REV;
#else
  return "unknown";
#endif
}

namespace {
constexpr bool obs_compiled() noexcept {
#ifdef MH_OBS_ENABLED
  return true;
#else
  return false;
#endif
}
}  // namespace

RunMeta RunMeta::current(std::string bench) {
  RunMeta meta;
  meta.bench = std::move(bench);
  meta.threads = engine::resolve_threads(engine::threads_from_env());
  meta.obs_enabled = enabled();
  return meta;
}

namespace {

Json snapshot_json(const Snapshot& snapshot) {
  Snapshot sorted = snapshot;
  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(sorted.counters.begin(), sorted.counters.end(), by_name);
  std::sort(sorted.gauges.begin(), sorted.gauges.end(), by_name);
  std::sort(sorted.histograms.begin(), sorted.histograms.end(), by_name);

  Json counters = Json::array();
  for (const CounterSnapshot& c : sorted.counters)
    counters.push(Json::object().set("name", c.name).set("value", c.value));

  Json gauges = Json::array();
  for (const GaugeSnapshot& g : sorted.gauges)
    gauges.push(Json::object()
                    .set("name", g.name)
                    .set("value", std::int64_t{g.value})
                    .set("ever_set", g.ever_set));

  Json histograms = Json::array();
  for (const HistogramSnapshot& h : sorted.histograms) {
    Json buckets = Json::array();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
      if (h.buckets[b] != 0)
        buckets.push(Json::object()
                         .set("lo", Histogram::bucket_lo(b))
                         .set("count", h.buckets[b]));
    histograms.push(Json::object()
                        .set("name", h.name)
                        .set("count", h.count)
                        .set("sum", h.sum)
                        .set("min", h.min)
                        .set("max", h.max)
                        .set("mean", h.mean())
                        .set("buckets", std::move(buckets)));
  }

  return Json::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("histograms", std::move(histograms));
}

}  // namespace

Json JsonExporter::document(const RunMeta& meta, const Snapshot& snapshot, Json results) {
  Json doc = Json::object();
  doc.set("schema", "mh-bench-v1");
  doc.set("bench", meta.bench);
  doc.set("meta", Json::object()
                      .set("git_rev", build_git_rev())
                      .set("threads", std::uint64_t{meta.threads})
                      .set("obs_compiled", obs_compiled())
                      .set("obs_enabled", meta.obs_enabled)
                      .set("unix_time", static_cast<std::int64_t>(std::time(nullptr))));
  doc.set("results", std::move(results));
  doc.set("metrics", snapshot_json(snapshot));
  return doc;
}

std::string JsonExporter::render(const RunMeta& meta, const Snapshot& snapshot, Json results) {
  return document(meta, snapshot, std::move(results)).dump();
}

void JsonExporter::write_file(const std::string& path, const RunMeta& meta,
                              const Snapshot& snapshot, Json results) {
  const std::string text = render(meta, snapshot, std::move(results));
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("obs::JsonExporter: cannot write " + path);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (written != text.size() || rc != 0)
    throw std::runtime_error("obs::JsonExporter: short write to " + path);
}

std::string CsvExporter::render(const Snapshot& snapshot) {
  Snapshot sorted = snapshot;
  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(sorted.counters.begin(), sorted.counters.end(), by_name);
  std::sort(sorted.gauges.begin(), sorted.gauges.end(), by_name);
  std::sort(sorted.histograms.begin(), sorted.histograms.end(), by_name);

  std::string out = "name,kind,field,value\n";
  char buf[160];
  for (const CounterSnapshot& c : sorted.counters) {
    std::snprintf(buf, sizeof(buf), "%s,counter,value,%" PRIu64 "\n", c.name.c_str(), c.value);
    out += buf;
  }
  for (const GaugeSnapshot& g : sorted.gauges) {
    std::snprintf(buf, sizeof(buf), "%s,gauge,value,%" PRId64 "\n", g.name.c_str(),
                  std::int64_t{g.value});
    out += buf;
  }
  for (const HistogramSnapshot& h : sorted.histograms) {
    const char* name = h.name.c_str();
    std::snprintf(buf, sizeof(buf), "%s,histogram,count,%" PRIu64 "\n", name, h.count);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s,histogram,sum,%" PRIu64 "\n", name, h.sum);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s,histogram,min,%" PRIu64 "\n", name, h.min);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s,histogram,max,%" PRIu64 "\n", name, h.max);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s,histogram,mean,%.6g\n", name, h.mean());
    out += buf;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
      if (h.buckets[b] != 0) {
        std::snprintf(buf, sizeof(buf), "%s,histogram,bucket_%" PRIu64 ",%" PRIu64 "\n", name,
                      Histogram::bucket_lo(b), h.buckets[b]);
        out += buf;
      }
  }
  return out;
}

std::string metrics_table(const Snapshot& snapshot) {
  struct Row {
    std::string name, kind, count, value, min, max, mean;
  };
  std::vector<Row> rows;
  for (const CounterSnapshot& c : snapshot.counters)
    rows.push_back({c.name, "counter", "", std::to_string(c.value), "", "", ""});
  for (const GaugeSnapshot& g : snapshot.gauges)
    rows.push_back({g.name, "gauge", "", g.ever_set ? std::to_string(g.value) : "(unset)", "",
                    "", ""});
  for (const HistogramSnapshot& h : snapshot.histograms)
    rows.push_back({h.name, "histogram", std::to_string(h.count), std::to_string(h.sum),
                    std::to_string(h.min), std::to_string(h.max), fixed(h.mean(), 1)});
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) { return a.name < b.name; });

  TextTable table({"metric", "kind", "count", "value/sum", "min", "max", "mean"});
  for (Row& r : rows)
    table.add_row({std::move(r.name), std::move(r.kind), std::move(r.count),
                   std::move(r.value), std::move(r.min), std::move(r.max), std::move(r.mean)});
  return table.render();
}

}  // namespace mh::obs
