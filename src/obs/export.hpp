// Exporters for the unified BENCH_* artifact schema and human-readable dumps.
//
// Every bench emits the same JSON shape (schema "mh-bench-v1"):
//
//   {
//     "schema":  "mh-bench-v1",
//     "bench":   "<name>",
//     "meta":    { "git_rev", "threads", "obs_compiled", "obs_enabled",
//                  "unix_time" },
//     "results": { ...bench-specific rows... },
//     "metrics": { "counters": [...], "gauges": [...], "histograms": [...] }
//   }
//
// Metric arrays are sorted by name so artifacts diff cleanly run to run;
// histogram buckets are emitted sparsely ({"lo": 2^(i-1), "count": n} for
// non-empty buckets only). CsvExporter flattens the same snapshot to
// name,kind,field,value rows; metrics_table renders it with support/table
// for the --list-metrics / MH_OBS_DUMP paths.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace mh::obs {

/// A tiny ordered JSON document builder (objects keep insertion order).
class Json {
 public:
  Json() : Json(nullptr) {}  // null
  Json(std::nullptr_t);
  Json(bool b);
  Json(double d);
  Json(std::uint64_t u);
  Json(std::int64_t i);
  Json(int i) : Json(static_cast<std::int64_t>(i)) {}
  Json(unsigned u) : Json(static_cast<std::uint64_t>(u)) {}
  // uint64_t is `unsigned long` on LP64; cover the remaining width-64 type.
  template <class T, class = std::enable_if_t<std::is_same_v<T, unsigned long long> &&
                                              !std::is_same_v<T, std::uint64_t>>>
  Json(T u) : Json(static_cast<std::uint64_t>(u)) {}
  Json(const char* s);
  Json(std::string s);

  Json(const Json&);
  Json(Json&&) noexcept;
  Json& operator=(Json);
  ~Json();

  static Json object();
  static Json array();

  /// Object member set; replaces an existing key in place. Returns *this.
  Json& set(std::string key, Json value);
  /// Array append. Returns *this.
  Json& push(Json value);

  [[nodiscard]] std::string dump(int indent = 2) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  void render(std::string& out, int indent, int level) const;
};

/// Run metadata stamped into every exported artifact.
struct RunMeta {
  std::string bench;       ///< artifact name ("oracle", "protocol_scale", ...)
  std::size_t threads = 0; ///< resolved engine parallelism
  bool obs_enabled = false;

  /// Meta with git_rev / obs flags / threads resolved from the build and the
  /// process environment (MH_THREADS).
  static RunMeta current(std::string bench);
};

/// Git revision baked into the build (CMake's MH_GIT_REV), "unknown" outside
/// a git checkout.
const char* build_git_rev() noexcept;

class JsonExporter {
 public:
  /// The unified document; `results` is the bench-specific block (pass
  /// Json::object() when there is nothing to report).
  static Json document(const RunMeta& meta, const Snapshot& snapshot, Json results);
  static std::string render(const RunMeta& meta, const Snapshot& snapshot, Json results);
  /// Render + write; throws std::runtime_error when the file cannot be written.
  static void write_file(const std::string& path, const RunMeta& meta,
                         const Snapshot& snapshot, Json results);
};

class CsvExporter {
 public:
  /// "name,kind,field,value" rows: counters (value), gauges (value),
  /// histograms (count/sum/min/max/mean + non-empty bucket_<lo> rows).
  static std::string render(const Snapshot& snapshot);
};

/// The snapshot as an aligned text table (support/table), sorted by name —
/// the --list-metrics / MH_OBS_DUMP rendering.
std::string metrics_table(const Snapshot& snapshot);

}  // namespace mh::obs
