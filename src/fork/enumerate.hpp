// Exhaustive enumeration of forks for tiny characteristic strings.
//
// This is a *test oracle*: margins, settlement predicates, UVP and Catalan
// characterizations are all defined as maxima over all forks, and for strings
// of length <= 6 we can simply visit the fork space and take the maximum
// directly. The space is infinite in principle (adversarial slots may label
// any number of vertices), so the enumeration bounds per-slot multiplicities;
// upper-bound checks (Proposition 1) are exact regardless, and the matching
// lower bounds come from the A* adversary.
#pragma once

#include <cstddef>
#include <functional>

#include "fork/fork.hpp"

namespace mh {

struct EnumerationOptions {
  std::size_t max_adversarial_per_slot = 2;  ///< vertices added per A slot (0..max)
  std::size_t max_honest_per_H_slot = 2;     ///< vertices added per H slot (1..max)
  bool closed_only = true;                   ///< visit only closed forks
  std::size_t max_visits = 5'000'000;        ///< safety valve; throws when exceeded
};

/// Visits every fork for w realizable under the multiplicity bounds. Forks are
/// constructed respecting (F1)-(F4); the visitor receives each fork by const
/// reference (copies are the visitor's business).
void enumerate_forks(const CharString& w, const EnumerationOptions& options,
                     const std::function<void(const Fork&)>& visit);

/// Convenience: max of a statistic over all (closed) forks for w.
std::int64_t max_over_forks(const CharString& w, const EnumerationOptions& options,
                            const std::function<std::int64_t(const Fork&)>& statistic);

}  // namespace mh
