#include "fork/enumerate.hpp"

#include <algorithm>
#include <limits>

#include "support/check.hpp"

namespace mh {

namespace {

class Enumerator {
 public:
  Enumerator(const CharString& w, const EnumerationOptions& options,
             const std::function<void(const Fork&)>& visit)
      : w_(w), options_(options), visit_(visit) {}

  void run() {
    Fork trivial;
    recurse_slot(trivial, 1, 0);
  }

 private:
  void emit(const Fork& fork) {
    MH_REQUIRE_MSG(++visits_ <= options_.max_visits, "fork enumeration budget exceeded");
    if (!options_.closed_only || is_closed(fork, w_)) visit_(fork);
  }

  void recurse_slot(const Fork& fork, std::size_t slot, std::uint32_t max_honest_depth) {
    if (slot > w_.size()) {
      emit(fork);
      return;
    }
    const Symbol symbol = w_.at(slot);
    if (symbol == Symbol::A) {
      for (std::size_t count = 0; count <= options_.max_adversarial_per_slot; ++count)
        place_vertices(fork, slot, count, /*honest=*/false, max_honest_depth);
    } else {
      const std::size_t max_count = symbol == Symbol::h ? 1 : options_.max_honest_per_H_slot;
      for (std::size_t count = 1; count <= max_count; ++count)
        place_vertices(fork, slot, count, /*honest=*/true, max_honest_depth);
    }
  }

  /// Enumerate all parent assignments for `count` vertices labeled `slot`.
  /// Parents are pre-slot vertices (labels < slot by construction); honest
  /// vertices additionally require parent depth >= max_honest_depth so the new
  /// depth strictly exceeds every earlier honest depth (F4).
  void place_vertices(const Fork& fork, std::size_t slot, std::size_t count, bool honest,
                      std::uint32_t max_honest_depth) {
    const auto base_vertices = static_cast<VertexId>(fork.vertex_count());
    std::vector<VertexId> parents(count);
    assign_parent(fork, slot, count, honest, max_honest_depth, 0, parents, base_vertices);
  }

  void assign_parent(const Fork& fork, std::size_t slot, std::size_t count, bool honest,
                     std::uint32_t max_honest_depth, std::size_t index,
                     std::vector<VertexId>& parents, VertexId base_vertices) {
    if (index == count) {
      Fork extended = fork;
      std::uint32_t new_mhd = max_honest_depth;
      for (VertexId p : parents) {
        extended.add_vertex(p, static_cast<std::uint32_t>(slot));
        if (honest) new_mhd = std::max(new_mhd, extended.depth(p) + 1);
      }
      recurse_slot(extended, slot + 1, new_mhd);
      return;
    }
    // Symmetry pruning: vertices of one slot are interchangeable, so demand a
    // non-decreasing parent sequence.
    const VertexId start = index == 0 ? 0 : parents[index - 1];
    for (VertexId p = start; p < base_vertices; ++p) {
      if (honest && fork.depth(p) < max_honest_depth) continue;
      parents[index] = p;
      assign_parent(fork, slot, count, honest, max_honest_depth, index + 1, parents,
                    base_vertices);
    }
  }

  const CharString& w_;
  const EnumerationOptions& options_;
  const std::function<void(const Fork&)>& visit_;
  std::size_t visits_ = 0;
};

}  // namespace

void enumerate_forks(const CharString& w, const EnumerationOptions& options,
                     const std::function<void(const Fork&)>& visit) {
  Enumerator(w, options, visit).run();
}

std::int64_t max_over_forks(const CharString& w, const EnumerationOptions& options,
                            const std::function<std::int64_t(const Fork&)>& statistic) {
  std::int64_t best = std::numeric_limits<std::int64_t>::min();
  enumerate_forks(w, options, [&](const Fork& f) { best = std::max(best, statistic(f)); });
  return best;
}

}  // namespace mh
