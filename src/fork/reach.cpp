#include "fork/reach.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mh {

std::uint32_t gap(const Fork& fork, VertexId v) { return fork.height() - fork.depth(v); }

std::uint32_t reserve(const Fork& fork, const CharString& w, VertexId v) {
  const std::uint32_t l = fork.label(v);
  MH_REQUIRE(l <= w.size());
  if (l + 1 > w.size()) return 0;
  return static_cast<std::uint32_t>(w.count_adversarial(l + 1, w.size()));
}

std::int64_t reach(const Fork& fork, const CharString& w, VertexId v) {
  return static_cast<std::int64_t>(reserve(fork, w, v)) - static_cast<std::int64_t>(gap(fork, v));
}

std::int64_t max_reach(const Fork& fork, const CharString& w) {
  std::int64_t best = reach(fork, w, kRoot);
  for (VertexId v = 1; v < fork.vertex_count(); ++v)
    best = std::max(best, reach(fork, w, v));
  return best;
}

std::vector<std::int64_t> all_reaches(const Fork& fork, const CharString& w) {
  std::vector<std::int64_t> out(fork.vertex_count());
  for (VertexId v = 0; v < out.size(); ++v) out[v] = reach(fork, w, v);
  return out;
}

}  // namespace mh
