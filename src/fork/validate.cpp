#include "fork/validate.hpp"

#include <algorithm>

namespace mh {

namespace {

ValidationResult fail(std::string msg) { return ValidationResult{false, std::move(msg)}; }

}  // namespace

ValidationResult validate_fork(const Fork& fork, const CharString& w, std::size_t delta) {
  const std::size_t n = w.size();

  // (F1) The root carries label 0; the Fork constructor enforces this, but a
  // defensive check keeps the validator self-contained.
  if (fork.label(kRoot) != 0) return fail("(F1) root must be labeled 0");

  // (F2) Strictly increasing labels along paths, and labels within [0, n].
  for (VertexId v : fork.all_vertices()) {
    if (fork.label(v) > n) return fail("(F2) label exceeds string length");
    if (v != kRoot && fork.label(v) <= fork.label(fork.parent(v)))
      return fail("(F2) labels must strictly increase along tines");
  }

  // (F3) Uniquely honest slots label exactly one vertex; multiply honest slots
  // label at least one. Adversarial slots are unconstrained.
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t count = fork.vertices_with_label(static_cast<std::uint32_t>(i)).size();
    if (w.at(i) == Symbol::h && count != 1)
      return fail("(F3) uniquely honest slot must label exactly one vertex");
    if (w.at(i) == Symbol::H && count == 0)
      return fail("(F3) multiply honest slot must label at least one vertex");
  }

  // (F4) / (F4_Delta): honest labels i (+ delta) < j imply depth(u) < depth(v)
  // for every vertex u labeled i and v labeled j.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> honest;  // (label, depth)
  for (VertexId v : fork.all_vertices()) {
    const std::uint32_t l = fork.label(v);
    if (l >= 1 && w.honest(l)) honest.emplace_back(l, fork.depth(v));
  }
  std::sort(honest.begin(), honest.end());
  for (std::size_t a = 0; a < honest.size(); ++a)
    for (std::size_t b = a + 1; b < honest.size(); ++b) {
      if (honest[a].first + delta < honest[b].first && honest[a].second >= honest[b].second)
        return fail("(F4) honest depths must strictly increase with slot labels");
    }

  return ValidationResult{};
}

}  // namespace mh
