#include "fork/ascii.hpp"

#include <sstream>

namespace mh {

namespace {

void render_subtree(const Fork& fork, const CharString& w, VertexId v, std::string prefix,
                    bool last, std::ostringstream& out) {
  const std::uint32_t l = fork.label(v);
  std::string tag;
  if (v == kRoot) {
    tag = "(genesis)";
  } else if (is_honest_vertex(fork, w, v)) {
    tag = "[[" + std::to_string(l) + "]]";
  } else {
    tag = "[" + std::to_string(l) + "]";
  }

  if (v == kRoot) {
    out << tag << '\n';
  } else {
    out << prefix << (last ? "`-- " : "|-- ") << tag << '\n';
    prefix += last ? "    " : "|   ";
  }

  const auto& kids = fork.children(v);
  for (std::size_t i = 0; i < kids.size(); ++i)
    render_subtree(fork, w, kids[i], prefix, i + 1 == kids.size(), out);
}

}  // namespace

std::string render_ascii(const Fork& fork, const CharString& w) {
  std::ostringstream out;
  out << "fork for w = " << w.to_string() << "  (height " << fork.height() << ", "
      << fork.vertex_count() << " vertices; [[n]] honest, [n] adversarial)\n";
  render_subtree(fork, w, kRoot, "", true, out);
  return out.str();
}

}  // namespace mh
