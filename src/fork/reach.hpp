// Gap, reserve, and reach (Definition 13), and maximum reach rho(F)
// (Definition 14). The definitions are stated for closed forks; the formulas
// extend verbatim to any fork and callers that need the paper's exact setting
// check closedness themselves (tests do).
#pragma once

#include <cstdint>

#include "fork/fork.hpp"

namespace mh {

/// gap(t) = height(F) - length(t).
std::uint32_t gap(const Fork& fork, VertexId v);

/// reserve(t) = number of adversarial indices of w strictly after l(t).
std::uint32_t reserve(const Fork& fork, const CharString& w, VertexId v);

/// reach(t) = reserve(t) - gap(t).
std::int64_t reach(const Fork& fork, const CharString& w, VertexId v);

/// rho(F) = max_t reach(t); never negative for closed forks.
std::int64_t max_reach(const Fork& fork, const CharString& w);

/// Batch computation: reach of every vertex, indexed by VertexId.
std::vector<std::int64_t> all_reaches(const Fork& fork, const CharString& w);

}  // namespace mh
