#include "fork/fork.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mh {

Fork::Fork() {
  label_.push_back(0);
  parent_.push_back(kRoot);
  depth_.push_back(0);
  children_.emplace_back();
}

VertexId Fork::add_vertex(VertexId parent, std::uint32_t label) {
  MH_REQUIRE(parent < parent_.size());
  MH_REQUIRE_MSG(label > label_[parent], "labels must strictly increase along tines (F2)");
  const auto id = static_cast<VertexId>(parent_.size());
  label_.push_back(label);
  parent_.push_back(parent);
  depth_.push_back(depth_[parent] + 1);
  children_.emplace_back();
  children_[parent].push_back(id);
  height_ = std::max(height_, depth_.back());
  max_label_ = std::max(max_label_, label);
  return id;
}

std::uint32_t Fork::label(VertexId v) const {
  MH_REQUIRE(v < label_.size());
  return label_[v];
}

VertexId Fork::parent(VertexId v) const {
  MH_REQUIRE(v < parent_.size());
  return parent_[v];
}

const std::vector<VertexId>& Fork::children(VertexId v) const {
  MH_REQUIRE(v < children_.size());
  return children_[v];
}

std::uint32_t Fork::depth(VertexId v) const {
  MH_REQUIRE(v < depth_.size());
  return depth_[v];
}

bool Fork::is_leaf(VertexId v) const { return children(v).empty(); }

std::vector<VertexId> Fork::path_to(VertexId v) const {
  MH_REQUIRE(v < parent_.size());
  std::vector<VertexId> path;
  for (VertexId cur = v;; cur = parent_[cur]) {
    path.push_back(cur);
    if (cur == kRoot) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

VertexId Fork::lca(VertexId u, VertexId v) const {
  MH_REQUIRE(u < parent_.size() && v < parent_.size());
  while (u != v) {
    if (depth_[u] > depth_[v])
      u = parent_[u];
    else
      v = parent_[v];
  }
  return u;
}

bool Fork::on_tine(VertexId prefix, VertexId v) const {
  MH_REQUIRE(prefix < parent_.size() && v < parent_.size());
  while (depth_[v] > depth_[prefix]) v = parent_[v];
  return v == prefix;
}

std::vector<VertexId> Fork::vertices_with_label(std::uint32_t label) const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < label_.size(); ++v)
    if (label_[v] == label) out.push_back(v);
  return out;
}

std::vector<VertexId> Fork::longest_tines() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < depth_.size(); ++v)
    if (depth_[v] == height_) out.push_back(v);
  return out;
}

std::vector<VertexId> Fork::all_vertices() const {
  std::vector<VertexId> out(vertex_count());
  for (VertexId v = 0; v < out.size(); ++v) out[v] = v;
  return out;
}

bool Fork::disjoint_over_suffix(VertexId u, VertexId v, std::size_t x_len) const {
  // Shared edges of the two tines terminate on the root-to-lca path, whose
  // largest label is the lca's. They share an edge labeled inside the suffix
  // iff label(lca) > x_len.
  return label(lca(u, v)) <= x_len;
}

std::optional<std::uint32_t> honest_depth(const Fork& fork, std::uint32_t label) {
  std::optional<std::uint32_t> best;
  for (VertexId v : fork.vertices_with_label(label))
    if (!best || fork.depth(v) > *best) best = fork.depth(v);
  return best;
}

std::uint32_t max_honest_depth_upto(const Fork& fork, const CharString& w, std::size_t slot) {
  std::uint32_t best = 0;  // the root (genesis) is honest with depth 0
  for (VertexId v : fork.all_vertices()) {
    const std::uint32_t l = fork.label(v);
    if (l >= 1 && l <= slot && l <= w.size() && w.honest(l))
      best = std::max(best, fork.depth(v));
  }
  return best;
}

bool viable_at_onset(const Fork& fork, const CharString& w, VertexId v, std::size_t s) {
  if (fork.label(v) >= s) return false;
  return fork.depth(v) >= max_honest_depth_upto(fork, w, s - 1);
}

std::vector<VertexId> viable_tines_at_onset(const Fork& fork, const CharString& w,
                                            std::size_t s) {
  std::vector<VertexId> out;
  const std::uint32_t need = max_honest_depth_upto(fork, w, s - 1);
  for (VertexId v : fork.all_vertices())
    if (fork.label(v) < s && fork.depth(v) >= need) out.push_back(v);
  return out;
}

bool is_honest_vertex(const Fork& fork, const CharString& w, VertexId v) {
  const std::uint32_t l = fork.label(v);
  if (l == 0) return true;
  MH_REQUIRE(l <= w.size());
  return w.honest(l);
}

bool is_closed(const Fork& fork, const CharString& w) {
  for (VertexId v : fork.all_vertices())
    if (fork.is_leaf(v) && !is_honest_vertex(fork, w, v)) return false;
  return true;
}

}  // namespace mh
