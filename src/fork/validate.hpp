// Structural validation of forks against characteristic strings: the axioms
// (F1)-(F4) of Definition 2 and the Delta-relaxed (F4_Delta) of Definition 21.
#pragma once

#include <string>

#include "fork/fork.hpp"

namespace mh {

struct ValidationResult {
  bool ok = true;
  std::string message;  ///< first violated axiom, empty when ok

  explicit operator bool() const noexcept { return ok; }
};

/// Checks (F1)-(F4) for F |- w. With `delta` > 0, (F4) is replaced by the
/// Delta-synchronous (F4_Delta): honest labels i + delta < j must have strictly
/// increasing depths (all-pairs). delta = 0 recovers the synchronous axiom.
ValidationResult validate_fork(const Fork& fork, const CharString& w, std::size_t delta = 0);

}  // namespace mh
