#include "fork/margin.hpp"

#include <algorithm>
#include <limits>

#include "fork/reach.hpp"
#include "support/check.hpp"

namespace mh {

namespace {

constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min() / 4;

struct SubtreeBest {
  std::int64_t reach = kNegInf;
  VertexId arg = kRoot;
};

/// subtree_best[v] = (max reach in subtree of v, witnessing vertex).
/// Children always carry larger ids than parents (append-only construction),
/// so a reverse scan computes the aggregation without explicit recursion.
std::vector<SubtreeBest> subtree_bests(const Fork& fork, const std::vector<std::int64_t>& reaches) {
  std::vector<SubtreeBest> best(fork.vertex_count());
  for (VertexId v = static_cast<VertexId>(fork.vertex_count()); v-- > 0;) {
    best[v] = SubtreeBest{reaches[v], v};
    for (VertexId c : fork.children(v))
      if (best[c].reach > best[v].reach) best[v] = best[c];
  }
  return best;
}

}  // namespace

MarginWitness relative_margin_witness(const Fork& fork, const CharString& w, std::size_t x_len) {
  MH_REQUIRE(x_len <= w.size());
  const std::vector<std::int64_t> reaches = all_reaches(fork, w);
  const std::vector<SubtreeBest> best = subtree_bests(fork, reaches);

  MarginWitness out{kRoot, kRoot, kNegInf};
  auto consider = [&](VertexId t1, VertexId t2, std::int64_t value) {
    if (value > out.value) out = MarginWitness{t1, t2, value};
  };

  for (VertexId p : fork.all_vertices()) {
    if (fork.label(p) > x_len) continue;
    // Self-pair (p, p): a tine whose head lies in x is disjoint from itself
    // over the suffix.
    consider(p, p, reaches[p]);

    // (p, u) with u strictly below p, and (u, v) below two distinct children:
    // both pairs have p as their deepest common vertex.
    SubtreeBest top1, top2;
    for (VertexId c : fork.children(p)) {
      const SubtreeBest& b = best[c];
      if (b.reach > top1.reach) {
        top2 = top1;
        top1 = b;
      } else if (b.reach > top2.reach) {
        top2 = b;
      }
    }
    if (top1.reach > kNegInf) consider(p, top1.arg, std::min(reaches[p], top1.reach));
    if (top2.reach > kNegInf) consider(top1.arg, top2.arg, std::min(top1.reach, top2.reach));
  }

  MH_ASSERT_MSG(out.value > kNegInf, "the root self-pair is always admissible");
  return out;
}

std::int64_t relative_margin(const Fork& fork, const CharString& w, std::size_t x_len) {
  return relative_margin_witness(fork, w, x_len).value;
}

std::int64_t margin(const Fork& fork, const CharString& w) {
  return relative_margin(fork, w, 0);
}

std::int64_t relative_margin_bruteforce(const Fork& fork, const CharString& w,
                                        std::size_t x_len) {
  MH_REQUIRE(x_len <= w.size());
  const std::vector<std::int64_t> reaches = all_reaches(fork, w);
  std::int64_t out = kNegInf;
  const std::size_t n = fork.vertex_count();
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u; v < n; ++v) {
      if (!fork.disjoint_over_suffix(u, v, x_len)) continue;
      out = std::max(out, std::min(reaches[u], reaches[v]));
    }
  return out;
}

}  // namespace mh
