#include "fork/balanced.hpp"

#include <algorithm>
#include <limits>

#include "fork/reach.hpp"
#include "support/check.hpp"

namespace mh {

bool is_x_balanced(const Fork& fork, const CharString& w, std::size_t x_len) {
  MH_REQUIRE(x_len <= w.size());
  const std::vector<VertexId> heads = fork.longest_tines();
  for (std::size_t a = 0; a < heads.size(); ++a)
    for (std::size_t b = a + 1; b < heads.size(); ++b)
      if (fork.disjoint_over_suffix(heads[a], heads[b], x_len)) return true;
  return false;
}

bool is_balanced(const Fork& fork, const CharString& w) { return is_x_balanced(fork, w, 0); }

VertexId pad_with_adversarial(Fork& fork, const CharString& w, VertexId v,
                              std::uint32_t target_length) {
  MH_REQUIRE(fork.depth(v) <= target_length);
  std::uint32_t needed = target_length - fork.depth(v);
  VertexId head = v;
  for (std::size_t slot = fork.label(v) + 1; slot <= w.size() && needed > 0; ++slot) {
    if (!w.adversarial(slot)) continue;
    head = fork.add_vertex(head, static_cast<std::uint32_t>(slot));
    --needed;
  }
  MH_REQUIRE_MSG(needed == 0, "insufficient reserve to pad the tine to the target length");
  return head;
}

std::optional<Fork> extend_to_x_balanced(const Fork& fork, const CharString& w,
                                         std::size_t x_len) {
  // Prefer a witness made of two distinct tines: padding both to the current
  // height yields an x-balanced fork outright. Adversarial labels can be
  // reused across tines (reserve is a per-tine right, not a consumable pool),
  // so both pads draw from their own reserves independently.
  const std::vector<std::int64_t> reaches = all_reaches(fork, w);
  constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min() / 4;

  std::int64_t best_distinct = kNegInf;
  VertexId d1 = kRoot, d2 = kRoot;
  std::int64_t best_self = kNegInf;
  VertexId s1 = kRoot;
  for (VertexId u = 0; u < fork.vertex_count(); ++u) {
    if (fork.label(u) <= x_len && reaches[u] > best_self) {
      best_self = reaches[u];
      s1 = u;
    }
    for (VertexId v = u + 1; v < fork.vertex_count(); ++v) {
      if (!fork.disjoint_over_suffix(u, v, x_len)) continue;
      const std::int64_t m = std::min(reaches[u], reaches[v]);
      if (m > best_distinct) {
        best_distinct = m;
        d1 = u;
        d2 = v;
      }
    }
  }

  Fork out = fork;
  if (best_distinct >= 0) {
    pad_with_adversarial(out, w, d1, out.height());
    pad_with_adversarial(out, w, d2, out.height());
  } else if (best_self >= 0) {
    // Split the self-pair witness into two fresh adversarial chains diverging
    // at the witness vertex. If the witness already sits at maximum depth the
    // chains need one extra level (and hence reach >= 1) to be distinct tines.
    const std::uint32_t gap_here = out.height() - out.depth(s1);
    const std::uint32_t target = gap_here >= 1 ? out.height() : out.height() + 1;
    if (gap_here == 0 && best_self < 1) return std::nullopt;
    pad_with_adversarial(out, w, s1, target);
    pad_with_adversarial(out, w, s1, target);
  } else {
    return std::nullopt;  // mu_x(F) < 0: Fact 6 rules out a balanced extension
  }
  MH_ASSERT(is_x_balanced(out, w, x_len));
  return out;
}

}  // namespace mh
