// Balanced and x-balanced forks (Definition 18) and the constructive half of
// Fact 6: a fork with mu_x(F) >= 0 extends, using only adversarial vertices,
// into an x-balanced fork.
#pragma once

#include <optional>

#include "fork/fork.hpp"
#include "fork/margin.hpp"

namespace mh {

/// F is x-balanced iff two distinct maximum-length tines are disjoint over the
/// suffix past x_len. x_len = 0 gives the plain "balanced" notion.
bool is_x_balanced(const Fork& fork, const CharString& w, std::size_t x_len);
bool is_balanced(const Fork& fork, const CharString& w);

/// Pads the tine ending at `v` with adversarial vertices (labels drawn from the
/// adversarial slots of w after l(v), in increasing order) until its length
/// reaches `target_length`. Requires reserve(v) >= target_length - depth(v).
/// Returns the new head.
VertexId pad_with_adversarial(Fork& fork, const CharString& w, VertexId v,
                              std::uint32_t target_length);

/// Fact 6 (constructive direction): given a fork with mu_x(F) >= 0, extend the
/// margin-witness tines with adversarial vertices so both reach the height of
/// the augmented fork; the result is x-balanced. Returns nullopt when
/// mu_x(F) < 0 (no balanced extension exists by Fact 6).
std::optional<Fork> extend_to_x_balanced(const Fork& fork, const CharString& w,
                                         std::size_t x_len);

}  // namespace mh
