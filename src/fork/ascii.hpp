// ASCII rendering of forks for examples and debugging output. Vertices appear
// as "[label]" with honest vertices double-bracketed "[[label]]" in the style
// of the paper's figures (honest vertices drawn with double borders).
#pragma once

#include <string>

#include "fork/fork.hpp"

namespace mh {

std::string render_ascii(const Fork& fork, const CharString& w);

}  // namespace mh
