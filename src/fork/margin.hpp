// Structural (relative) margin of a fork (Definition 17):
//
//   mu_x(F) = max over tine pairs t1 ~/~_x t2 of min(reach(t1), reach(t2)),
//
// where t1 ~/~_x t2 means the tines share no edge terminating at a label > |x|.
// Self-pairs are admitted by the same rule (a tine whose head label is <= |x|
// is disjoint from itself over the suffix), which is what makes
// mu_x(eps) = rho(x) (Claim 3) come out of the single definition.
//
// The computation is a single DFS-free linear pass: a pair's deepest common
// vertex p decides disjointness (label(p) <= |x|), so
//   mu_x(F) = max over p with label(p) <= |x| of
//             best-two combination of subtree reaches below distinct children,
//             or reach(p) paired with the best subtree reach, or reach(p) alone.
#pragma once

#include <cstdint>

#include "fork/fork.hpp"

namespace mh {

/// mu_x(F) for x = w_1..w_{x_len}. Requires x_len <= |w|.
std::int64_t relative_margin(const Fork& fork, const CharString& w, std::size_t x_len);

/// mu(F) = mu_eps(F).
std::int64_t margin(const Fork& fork, const CharString& w);

/// Reference implementation by explicit pair enumeration (O(V^2 log)); used as
/// a test oracle against the linear-pass computation.
std::int64_t relative_margin_bruteforce(const Fork& fork, const CharString& w, std::size_t x_len);

/// The two tine heads witnessing mu_x(F): an x-disjoint pair (t1, t2), possibly
/// equal, maximizing the min reach. Useful for constructing balanced forks.
struct MarginWitness {
  VertexId t1 = kRoot;
  VertexId t2 = kRoot;
  std::int64_t value = 0;
};
MarginWitness relative_margin_witness(const Fork& fork, const CharString& w, std::size_t x_len);

}  // namespace mh
