// The fork abstraction of Definition 2: a rooted tree whose vertices are labeled
// with slot indices. A *tine* is a root-to-vertex path and is identified with its
// terminal vertex, so VertexId doubles as a tine handle.
//
// Forks do not own the characteristic string they were built for; structural
// queries that need it (validation, reach, margin, viability) take the string as
// a parameter. This keeps a single tree reusable as a "fork prefix" (Def. 10)
// for every extension of its string, mirroring how the paper treats F |- x as a
// subgraph of F' |- xy.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chars/char_string.hpp"

namespace mh {

using VertexId = std::uint32_t;
inline constexpr VertexId kRoot = 0;
inline constexpr std::uint32_t kNoVertex = 0xffffffffu;

class Fork {
 public:
  /// Constructs the trivial fork: a single root vertex labeled 0 (the genesis).
  Fork();

  /// Adds a vertex labeled `label` whose parent is `parent`. The label must be
  /// strictly larger than the parent's (axiom F2). Returns the new vertex id.
  VertexId add_vertex(VertexId parent, std::uint32_t label);

  [[nodiscard]] std::size_t vertex_count() const noexcept { return parent_.size(); }
  [[nodiscard]] std::uint32_t label(VertexId v) const;
  [[nodiscard]] VertexId parent(VertexId v) const;
  [[nodiscard]] const std::vector<VertexId>& children(VertexId v) const;
  /// Depth of v = length of the tine ending at v (root has depth 0).
  [[nodiscard]] std::uint32_t depth(VertexId v) const;
  [[nodiscard]] bool is_leaf(VertexId v) const;

  /// Length of the longest tine.
  [[nodiscard]] std::uint32_t height() const noexcept { return height_; }

  /// Root-to-v vertex sequence (inclusive).
  [[nodiscard]] std::vector<VertexId> path_to(VertexId v) const;

  /// Deepest common vertex of the tines ending at u and v.
  [[nodiscard]] VertexId lca(VertexId u, VertexId v) const;

  /// True iff the tine ending at `prefix` is a (non-strict) prefix of the tine
  /// ending at v.
  [[nodiscard]] bool on_tine(VertexId prefix, VertexId v) const;

  /// All vertices with the given label (slots may host several blocks).
  [[nodiscard]] std::vector<VertexId> vertices_with_label(std::uint32_t label) const;

  /// All vertices of maximum depth (the heads of all longest tines).
  [[nodiscard]] std::vector<VertexId> longest_tines() const;

  /// Vertices in insertion order; useful for exhaustive scans.
  [[nodiscard]] std::vector<VertexId> all_vertices() const;

  /// The x ~ y tine relation of Definition 16: the tines ending at u and v
  /// share an edge terminating at a vertex labeled > x_len. Self-pairs follow
  /// the same rule (a tine shares its own edges). `disjoint_over_suffix` is the
  /// paper's "u ~/~_x v".
  [[nodiscard]] bool disjoint_over_suffix(VertexId u, VertexId v, std::size_t x_len) const;

  /// Largest label appearing in the fork.
  [[nodiscard]] std::uint32_t max_label() const noexcept { return max_label_; }

 private:
  std::vector<std::uint32_t> label_;
  std::vector<VertexId> parent_;  // parent_[kRoot] = kRoot by convention
  std::vector<std::uint32_t> depth_;
  std::vector<std::vector<VertexId>> children_;
  std::uint32_t height_ = 0;
  std::uint32_t max_label_ = 0;
};

/// The honest depth function d(.) (Section 2): the largest depth of a vertex
/// carrying the given honest label; nullopt if the label is absent.
std::optional<std::uint32_t> honest_depth(const Fork& fork, std::uint32_t label);

/// Max depth over honest vertices with label <= slot (0 if none). The length an
/// honest chain observed by slot `slot` is guaranteed to have reached.
std::uint32_t max_honest_depth_upto(const Fork& fork, const CharString& w, std::size_t slot);

/// A tine is *viable at the onset of slot s* if its label is < s and its length
/// is >= the depth of every honest vertex labeled < s (longest-chain rule).
bool viable_at_onset(const Fork& fork, const CharString& w, VertexId v, std::size_t s);

/// All viable tines at the onset of slot s.
std::vector<VertexId> viable_tines_at_onset(const Fork& fork, const CharString& w, std::size_t s);

/// A fork is closed (Definition 12) iff every leaf is honest (the trivial fork
/// is closed).
bool is_closed(const Fork& fork, const CharString& w);

/// Whether the vertex is honest under w (the root counts as honest).
bool is_honest_vertex(const Fork& fork, const CharString& w, VertexId v);

}  // namespace mh
