// A chunked, self-scheduling thread pool for the experiment engine.
//
// Work is published as a half-open chunk index space [0, n_chunks); workers
// (and the calling thread, which always participates) claim chunks with an
// atomic counter — dynamic "steal the next chunk" scheduling, so uneven chunk
// costs balance without any work assignment up front. The pool never decides
// *what* a chunk computes, only who runs it; determinism is the job of
// SeedSequence + ordered reduction (see engine.hpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mh::engine {

/// Threads used when a `threads` knob is 0 ("auto"): hardware concurrency,
/// with a floor of 1 when the runtime cannot tell.
std::size_t default_threads() noexcept;

/// Resolve a user-facing `threads` knob (0 = auto) to a concrete count >= 1.
std::size_t resolve_threads(std::size_t threads) noexcept;

/// Reads the MH_THREADS environment variable (benches' global override);
/// returns `fallback` when unset or empty, 0 still means "auto". A malformed
/// value throws std::invalid_argument (support/env.hpp) instead of silently
/// running at the default width.
std::size_t threads_from_env(std::size_t fallback = 0);

/// One-line "engine: N thread(s) (MH_THREADS to override)" stdout banner,
/// shared by the bench drivers.
void print_thread_banner();

/// Fan `n` independent cells across a pool: body(i) runs exactly once for
/// every i in [0, n), claimed dynamically. The serial fallback (resolved
/// threads <= 1, or n <= 1) runs the identical plan, so any body that writes
/// only cell-indexed state is bit-for-bit thread-count invariant. This is the
/// shared skeleton of the analysis sweeps and the oracle scenario matrix.
void for_each_index(std::size_t n, std::size_t threads,
                    const std::function<void(std::size_t)>& body);

class ThreadPool {
 public:
  /// Total parallelism, including the calling thread: spawns threads-1 workers.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t threads() const noexcept { return workers_.size() + 1; }

  /// Runs body(chunk) exactly once for every chunk in [0, n_chunks), on this
  /// thread and the workers; blocks until all chunks finish. If any body
  /// throws, remaining chunks are abandoned and the first exception is
  /// rethrown here.
  void for_each_chunk(std::size_t n_chunks, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  void drain(bool stolen);
  void record_error() noexcept;

  std::mutex mutex_;
  std::condition_variable wake_;  // workers: a new job epoch or stop
  std::condition_variable done_;  // caller: all workers drained the job
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::atomic<std::size_t> next_chunk_{0};
  std::size_t n_chunks_ = 0;
  std::size_t active_workers_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  std::vector<std::thread> workers_;
};

}  // namespace mh::engine
