#include "engine/thread_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/obs.hpp"
#include "support/check.hpp"
#include "support/env.hpp"

namespace mh::engine {

std::size_t default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t resolve_threads(std::size_t threads) noexcept {
  return threads == 0 ? default_threads() : threads;
}

std::size_t threads_from_env(std::size_t fallback) {
  return env::size("MH_THREADS", fallback);
}

void print_thread_banner() {
  std::printf("engine: %zu thread(s) (MH_THREADS to override)\n\n",
              resolve_threads(threads_from_env()));
}

void for_each_index(std::size_t n, std::size_t threads,
                    const std::function<void(std::size_t)>& body) {
  const std::size_t resolved =
      std::min(resolve_threads(threads), std::max<std::size_t>(n, 1));
  if (resolved <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(resolved);
  pool.for_each_chunk(n, body);
}

ThreadPool::ThreadPool(std::size_t threads) {
  MH_REQUIRE(threads >= 1);
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::for_each_chunk(std::size_t n_chunks,
                                const std::function<void(std::size_t)>& body) {
  if (n_chunks == 0) return;
  MH_OBS_COUNT("engine.pool.jobs", 1);
  MH_OBS_GAUGE_SET("engine.pool.queue_depth", n_chunks);
  MH_OBS_TIMER("engine.pool.job_ns");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    n_chunks_ = n_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    error_ = nullptr;
    ++epoch_;
  }
  wake_.notify_all();
  drain(/*stolen=*/false);  // the caller is a full participant
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return active_workers_ == 0; });
  body_ = nullptr;
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
}

void ThreadPool::drain(bool stolen) {
  for (;;) {
    const std::size_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= n_chunks_) return;
    if (stolen) {
      MH_OBS_COUNT("engine.pool.chunks_stolen", 1);
    } else {
      MH_OBS_COUNT("engine.pool.chunks_inline", 1);
    }
    MH_OBS_ONLY(const std::uint64_t chunk_begin =
                    ::mh::obs::enabled() ? ::mh::obs::now_ns() : 0;)
    try {
      (*body_)(chunk);
    } catch (...) {
      record_error();
    }
    MH_OBS_ONLY(if (::mh::obs::enabled())
                    MH_OBS_HIST("engine.pool.chunk_ns", ::mh::obs::now_ns() - chunk_begin);)
  }
}

void ThreadPool::record_error() noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!error_) error_ = std::current_exception();
  // Abandon unclaimed chunks so everyone winds down promptly.
  next_chunk_.store(n_chunks_, std::memory_order_relaxed);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    MH_OBS_ONLY(const std::uint64_t idle_begin =
                    ::mh::obs::enabled() ? ::mh::obs::now_ns() : 0;)
    wake_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
    MH_OBS_ONLY(if (::mh::obs::enabled()) {
      MH_OBS_COUNT("engine.pool.wakeups", 1);
      MH_OBS_HIST("engine.pool.idle_ns", ::mh::obs::now_ns() - idle_begin);
    })
    if (stop_) return;
    seen_epoch = epoch_;
    lock.unlock();
    drain(/*stolen=*/true);
    lock.lock();
    if (--active_workers_ == 0) done_.notify_one();
  }
}

}  // namespace mh::engine
