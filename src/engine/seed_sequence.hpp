// Counter-based RNG stream splitting for the parallel experiment engine.
//
// Every sample index i gets its own xoshiro256** stream whose seed is a pure
// function of (root seed, i). Shards can therefore process any subset of the
// index space on any thread and still produce, collectively, the exact same
// draws as a serial sweep — determinism is a property of the index space, not
// of the schedule. This replaces the sequential `Rng::split()` chain, which
// can only be evaluated in order.
#pragma once

#include <cstdint>

#include "support/random.hpp"

namespace mh::engine {

class SeedSequence {
 public:
  explicit constexpr SeedSequence(std::uint64_t root) noexcept : root_(root) {}

  /// Seed of the index-th stream: two splitmix64 rounds over a golden-ratio
  /// counter, so neighbouring indices (and neighbouring roots) decorrelate.
  [[nodiscard]] constexpr std::uint64_t derive(std::uint64_t index) const noexcept {
    std::uint64_t s = root_ + 0x9e3779b97f4a7c15ULL * (index + 1);
    const std::uint64_t a = splitmix64(s);
    return a ^ splitmix64(s);
  }

  /// The index-th independent generator (Rng expands the seed further).
  [[nodiscard]] constexpr Rng stream(std::uint64_t index) const noexcept {
    return Rng(derive(index));
  }

  [[nodiscard]] constexpr std::uint64_t root() const noexcept { return root_; }

 private:
  std::uint64_t root_;
};

}  // namespace mh::engine
