// Sharded reduction: how per-chunk partial results combine into the final
// statistic. Partials are always folded in ascending chunk order, so the
// reduction is a pure function of (seed, n_samples) — thread count and
// scheduling cannot perturb even floating-point results.
#pragma once

#include <cstddef>
#include <vector>

namespace mh::engine {

/// A shard partial that can absorb another shard's result without
/// double-counting (Proportion, RunningStats, experiment tallies, ...).
template <typename T>
concept Mergeable = requires(T into, const T& from) { into.merge(from); };

struct Reduce {
  static void merge_into(std::size_t& into, std::size_t from) noexcept { into += from; }
  static void merge_into(double& into, double from) noexcept { into += from; }

  /// Element-wise vector merge (histograms). `into` grows as needed, so a
  /// default-constructed (empty) shard is an absorbing zero.
  template <typename T>
  static void merge_into(std::vector<T>& into, const std::vector<T>& from) {
    if (into.size() < from.size()) into.resize(from.size());
    for (std::size_t i = 0; i < from.size(); ++i) merge_into(into[i], from[i]);
  }

  template <Mergeable T>
  static void merge_into(T& into, const T& from) {
    into.merge(from);
  }

  /// Fold partials into a default-constructed accumulator, in index order.
  template <typename T>
  static T fold(const std::vector<T>& partials) {
    T out{};
    for (const T& partial : partials) merge_into(out, partial);
    return out;
  }
};

}  // namespace mh::engine
