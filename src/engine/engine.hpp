// The parallel experiment engine: deterministic sharded Monte-Carlo /
// simulation sweeps.
//
//   engine::run_sharded<Partial>(n, opt, task)
//
// runs task(i, rng_i, partial) for every sample index i in [0, n), where
// rng_i is the i-th counter-based stream of SeedSequence(opt.seed). The index
// space is cut into fixed-size chunks (a function of n only — never of the
// thread count), chunks are claimed dynamically by a ThreadPool, each chunk
// accumulates into its own Partial, and the partials are folded in chunk
// order by engine::Reduce. Consequences:
//
//   * results are bit-for-bit identical for any `threads`, including the
//     serial fallback at threads <= 1 (which runs the same chunked plan);
//   * no locks or atomics on the hot path — shards share nothing;
//   * Partial can be std::size_t (counts), std::vector (histograms), or any
//     type with merge() (RunningStats, Proportion, experiment tallies).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "engine/reduce.hpp"
#include "engine/seed_sequence.hpp"
#include "engine/thread_pool.hpp"

namespace mh::engine {

struct EngineOptions {
  std::size_t threads = 0;     ///< total parallelism; 0 = hardware concurrency
  std::uint64_t seed = 1;      ///< root of the per-sample stream family
  std::size_t chunk_size = 0;  ///< samples per shard; 0 = auto (from n only)
};

/// Auto chunk size: enough chunks for dynamic balance on any plausible core
/// count, big enough that per-chunk overhead vanishes. Pure in n_samples.
constexpr std::size_t auto_chunk_size(std::size_t n_samples) noexcept {
  return std::clamp<std::size_t>(n_samples / 256, 1, 4096);
}

/// Sharded sweep with an explicit reduction over the per-chunk partials.
/// `fold(partials)` sees the partials in chunk order and returns the total.
template <typename Partial, typename Task, typename Fold>
Partial run_sharded(std::size_t n_samples, const EngineOptions& opt, Task&& task,
                    Fold&& fold) {
  const std::size_t chunk = opt.chunk_size != 0 ? opt.chunk_size : auto_chunk_size(n_samples);
  const std::size_t n_chunks = n_samples == 0 ? 0 : (n_samples + chunk - 1) / chunk;
  const SeedSequence seeds(opt.seed);
  std::vector<Partial> partials(n_chunks);
  auto run_chunk = [&](std::size_t c) {
    // Accumulate on the stack and publish once: adjacent chunks' partials sit
    // on shared cache lines, and per-sample writes there would false-share.
    Partial partial{};
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n_samples, begin + chunk);
    for (std::size_t i = begin; i < end; ++i) {
      Rng rng = seeds.stream(i);
      task(static_cast<std::uint64_t>(i), rng, partial);
    }
    partials[c] = std::move(partial);
  };
  const std::size_t threads = std::min(resolve_threads(opt.threads), std::max<std::size_t>(n_chunks, 1));
  if (threads <= 1) {
    for (std::size_t c = 0; c < n_chunks; ++c) run_chunk(c);
  } else {
    ThreadPool pool(threads);
    pool.for_each_chunk(n_chunks, run_chunk);
  }
  return std::forward<Fold>(fold)(partials);
}

/// Sharded sweep with the default ordered reduction (engine::Reduce).
template <typename Partial, typename Task>
Partial run_sharded(std::size_t n_samples, const EngineOptions& opt, Task&& task) {
  return run_sharded<Partial>(n_samples, opt, std::forward<Task>(task),
                              [](const std::vector<Partial>& partials) {
                                return Reduce::fold(partials);
                              });
}

}  // namespace mh::engine
