#include "sim/experiments.hpp"

#include <memory>

#include "support/check.hpp"

namespace mh {

namespace {

std::unique_ptr<Adversary> make_adversary(AttackKind kind, std::size_t target_slot,
                                          std::size_t k) {
  switch (kind) {
    case AttackKind::None: return nullptr;
    case AttackKind::PrivateChain: return std::make_unique<PrivateChainAdversary>(target_slot, k);
    case AttackKind::Balance: return std::make_unique<BalanceAttacker>();
  }
  return nullptr;
}

template <typename ScheduleFactory>
ProtocolExperimentResult run_impl(ScheduleFactory&& make_schedule, AttackKind attack,
                                  std::size_t target_slot, std::size_t k,
                                  const ProtocolExperimentConfig& config) {
  MH_REQUIRE(target_slot + k <= config.horizon);
  Rng seeder(config.seed);
  std::size_t settlement_hits = 0;
  std::size_t cp_hits = 0;
  RunningStats divergence;
  RunningStats chain_length;

  for (std::size_t run = 0; run < config.runs; ++run) {
    Rng rng = seeder.split();
    const LeaderSchedule schedule = make_schedule(rng);
    const std::unique_ptr<Adversary> adversary = make_adversary(attack, target_slot, k);
    SimulationConfig sim_config{config.tie_break, rng()};
    Simulation sim(schedule, sim_config, config.delta, adversary.get());

    // Game semantics: a violation at any observation >= target_slot + k
    // counts (reorg watch), as does a standing public-fork tie at that close.
    sim.watch_settlement(target_slot, k);
    sim.run_until(target_slot + k);
    const bool tied = sim.observed_settlement_violation(target_slot);
    sim.run_until(config.horizon);
    if (tied || sim.settlement_watch_violated(target_slot)) ++settlement_hits;
    if (sim.observed_cp_slot_violation(k)) ++cp_hits;
    divergence.add(static_cast<double>(sim.observed_slot_divergence()));
    std::size_t best = 0;
    for (const HonestNode& node : sim.nodes())
      best = std::max(best, node.best_length());
    chain_length.add(static_cast<double>(best));
  }

  ProtocolExperimentResult result;
  result.settlement_violations = wilson_interval(settlement_hits, config.runs);
  result.cp_violations = wilson_interval(cp_hits, config.runs);
  result.mean_slot_divergence = divergence.mean();
  result.mean_chain_length = chain_length.mean();
  return result;
}

}  // namespace

ProtocolExperimentResult run_protocol_experiment(const SymbolLaw& law, AttackKind attack,
                                                 std::size_t target_slot, std::size_t k,
                                                 const ProtocolExperimentConfig& config) {
  return run_impl(
      [&](Rng& rng) {
        return LeaderSchedule::from_symbol_law(law, config.horizon, config.honest_parties, rng);
      },
      attack, target_slot, k, config);
}

ProtocolExperimentResult run_protocol_experiment_delta(const TetraLaw& law, AttackKind attack,
                                                       std::size_t target_slot, std::size_t k,
                                                       const ProtocolExperimentConfig& config) {
  return run_impl(
      [&](Rng& rng) {
        return LeaderSchedule::from_tetra_law(law, config.horizon, config.honest_parties, rng);
      },
      attack, target_slot, k, config);
}

}  // namespace mh
