#include "sim/experiments.hpp"

#include <memory>

#include "engine/engine.hpp"
#include "support/check.hpp"

namespace mh {

namespace {

std::unique_ptr<Adversary> make_adversary(AttackKind kind, std::size_t target_slot,
                                          std::size_t k) {
  switch (kind) {
    case AttackKind::None: return nullptr;
    case AttackKind::PrivateChain: return std::make_unique<PrivateChainAdversary>(target_slot, k);
    case AttackKind::Balance: return std::make_unique<BalanceAttacker>();
  }
  return nullptr;
}

/// Per-shard tally of the experiment outcomes; merged in chunk order.
struct RunTally {
  std::size_t settlement_hits = 0;
  std::size_t cp_hits = 0;
  RunningStats divergence;
  RunningStats chain_length;

  void merge(const RunTally& other) {
    settlement_hits += other.settlement_hits;
    cp_hits += other.cp_hits;
    divergence.merge(other.divergence);
    chain_length.merge(other.chain_length);
  }
};

template <typename ScheduleFactory>
ProtocolExperimentResult run_impl(ScheduleFactory&& make_schedule, AttackKind attack,
                                  std::size_t target_slot, std::size_t k,
                                  const ProtocolExperimentConfig& config) {
  MH_REQUIRE(target_slot + k <= config.horizon);
  engine::EngineOptions eopt;
  eopt.threads = config.threads;
  eopt.seed = config.seed;
  eopt.chunk_size = 1;  // whole executions are heavy; schedule them one by one

  const RunTally tally = engine::run_sharded<RunTally>(
      config.runs, eopt, [&](std::uint64_t /*run*/, Rng& rng, RunTally& partial) {
        const LeaderSchedule schedule = make_schedule(rng);
        const std::unique_ptr<Adversary> adversary = make_adversary(attack, target_slot, k);
        SimulationConfig sim_config{config.tie_break, rng()};
        Simulation sim(schedule, sim_config, config.delta, adversary.get());

        // Game semantics: a violation at any observation >= target_slot + k
        // counts (reorg watch), as does a standing public-fork tie at that close.
        sim.watch_settlement(target_slot, k);
        sim.run_until(target_slot + k);
        const bool tied = sim.observed_settlement_violation(target_slot);
        sim.run_until(config.horizon);
        if (tied || sim.settlement_watch_violated(target_slot)) ++partial.settlement_hits;
        if (sim.observed_cp_slot_violation(k)) ++partial.cp_hits;
        partial.divergence.add(static_cast<double>(sim.observed_slot_divergence()));
        std::size_t best = 0;
        for (const HonestNode& node : sim.nodes())
          best = std::max(best, node.best_length());
        partial.chain_length.add(static_cast<double>(best));
      });

  ProtocolExperimentResult result;
  result.settlement_violations = wilson_interval(tally.settlement_hits, config.runs);
  result.cp_violations = wilson_interval(tally.cp_hits, config.runs);
  result.mean_slot_divergence = tally.divergence.mean();
  result.mean_chain_length = tally.chain_length.mean();
  return result;
}

}  // namespace

ProtocolExperimentResult run_protocol_experiment(const SymbolLaw& law, AttackKind attack,
                                                 std::size_t target_slot, std::size_t k,
                                                 const ProtocolExperimentConfig& config) {
  return run_impl(
      [&](Rng& rng) {
        return LeaderSchedule::from_symbol_law(law, config.horizon, config.honest_parties, rng);
      },
      attack, target_slot, k, config);
}

ProtocolExperimentResult run_protocol_experiment_delta(const TetraLaw& law, AttackKind attack,
                                                       std::size_t target_slot, std::size_t k,
                                                       const ProtocolExperimentConfig& config) {
  return run_impl(
      [&](Rng& rng) {
        return LeaderSchedule::from_tetra_law(law, config.horizon, config.honest_parties, rng);
      },
      attack, target_slot, k, config);
}

}  // namespace mh
