// Monte-Carlo estimators for the stochastic events of the analysis. These
// complement the exact DP (cross-validation) and cover events for which the
// paper gives only bounds (Catalan scarcity, Delta-settlement, CP windows).
// All estimators run on the sharded experiment engine (src/engine): sample i
// always draws from the i-th counter-based stream of `seed`, so estimates are
// bit-for-bit identical for every `threads` setting.
#pragma once

#include <cstddef>

#include "chars/bernoulli.hpp"
#include "delta/semi_sync.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"

namespace mh {

struct McOptions {
  std::size_t samples = 100'000;
  std::uint64_t seed = 1;
  /// Horizon slack appended after the window so right-Catalan/settlement
  /// checks see "the future" (geometric decay makes ~k + 4/eps plenty).
  std::size_t horizon_slack = 512;
  /// Worker threads for the sharded engine; 0 = hardware concurrency. Results
  /// are bit-for-bit independent of this knob (counter-based sample streams).
  std::size_t threads = 0;
};

/// Pr[mu_x(y) >= 0] with |y| = k and rho(x) ~ X_inf, by simulating the scalar
/// Theorem-5 recurrence (validates the exact DP).
Proportion mc_settlement_violation(const SymbolLaw& law, std::size_t k, const McOptions& opt);

/// Pr[mu_x(y_j) >= 0 for some j in [k, k + extra]]: the "violation at any time
/// >= k within the horizon" variant (monotone in `extra`).
Proportion mc_settlement_violation_eventual(const SymbolLaw& law, std::size_t k,
                                            std::size_t extra, const McOptions& opt);

/// Pr[no uniquely honest Catalan slot in w_1..w_k] (the Bound 1 event; the
/// string continues for horizon_slack further slots).
Proportion mc_no_unique_catalan(const SymbolLaw& law, std::size_t k, const McOptions& opt);

/// Pr[no two consecutive Catalan slots in w_1..w_k] (the Bound 2 event).
Proportion mc_no_consecutive_catalan(const SymbolLaw& law, std::size_t k, const McOptions& opt);

/// Pr[the Lemma-2 event fails for a window of length k at the start of the
/// reduced string] — the Monte-Carlo side of Theorem 7.
Proportion mc_delta_settlement_failure(const TetraLaw& law, std::size_t delta, std::size_t k,
                                       const McOptions& opt);

/// Pr[some length-k window of a length-T string has no uniquely honest
/// Catalan slot] — the Theorem-8 (k-CP^slot) union event.
Proportion mc_cp_window_failure(const SymbolLaw& law, std::size_t horizon, std::size_t k,
                                const McOptions& opt);

/// Distribution (histogram) of the first uniquely honest Catalan slot over
/// strings of length `horizon`; bin `horizon+1` counts "none found".
std::vector<std::size_t> mc_first_catalan_histogram(const SymbolLaw& law, std::size_t horizon,
                                                    const McOptions& opt);

}  // namespace mh
