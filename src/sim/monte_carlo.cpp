#include "sim/monte_carlo.hpp"

#include "core/catalan.hpp"
#include "core/reach_distribution.hpp"
#include "core/relative_margin.hpp"
#include "delta/delta_settlement.hpp"
#include "delta/reduction.hpp"
#include "engine/engine.hpp"

namespace mh {

namespace {

std::int64_t sample_initial_reach(const SymbolLaw& law, Rng& rng) {
  const double beta = static_cast<double>(reach_beta(law));
  return static_cast<std::int64_t>(sample_geometric(rng, beta));
}

engine::EngineOptions engine_options(const McOptions& opt) {
  engine::EngineOptions eopt;
  eopt.threads = opt.threads;
  eopt.seed = opt.seed;
  return eopt;
}

/// Shard a Bernoulli event over the engine and wrap the pooled count.
template <typename Event>
Proportion mc_event_proportion(const McOptions& opt, Event&& event) {
  const std::size_t hits = engine::run_sharded<std::size_t>(
      opt.samples, engine_options(opt),
      [&](std::uint64_t /*index*/, Rng& rng, std::size_t& partial) {
        if (event(rng)) ++partial;
      });
  return wilson_interval(hits, opt.samples);
}

}  // namespace

Proportion mc_settlement_violation(const SymbolLaw& law, std::size_t k, const McOptions& opt) {
  law.validate();
  return mc_event_proportion(opt, [&](Rng& rng) {
    MarginProcess p(sample_initial_reach(law, rng));
    for (std::size_t t = 0; t < k; ++t) p.step(law.sample(rng));
    return p.mu() >= 0;
  });
}

Proportion mc_settlement_violation_eventual(const SymbolLaw& law, std::size_t k,
                                            std::size_t extra, const McOptions& opt) {
  law.validate();
  return mc_event_proportion(opt, [&](Rng& rng) {
    MarginProcess p(sample_initial_reach(law, rng));
    for (std::size_t t = 0; t < k; ++t) p.step(law.sample(rng));
    bool violated = p.mu() >= 0;
    for (std::size_t t = 0; t < extra && !violated; ++t) {
      p.step(law.sample(rng));
      violated = p.mu() >= 0;
    }
    return violated;
  });
}

Proportion mc_no_unique_catalan(const SymbolLaw& law, std::size_t k, const McOptions& opt) {
  law.validate();
  const std::size_t horizon = k + opt.horizon_slack;
  return mc_event_proportion(opt, [&](Rng& rng) {
    // Per-shard resample buffer: each pool thread keeps (and reuses) its own
    // string, so the hot loop allocates nothing after the first sample.
    thread_local CharString w;
    law.sample_into(w, horizon, rng);
    return first_uniquely_honest_catalan(w, 1, k) == 0;
  });
}

Proportion mc_no_consecutive_catalan(const SymbolLaw& law, std::size_t k,
                                     const McOptions& opt) {
  law.validate();
  const std::size_t horizon = k + opt.horizon_slack;
  return mc_event_proportion(opt, [&](Rng& rng) {
    thread_local CharString w;
    law.sample_into(w, horizon, rng);
    return first_consecutive_catalan_pair(w, 1, k) == 0;
  });
}

Proportion mc_delta_settlement_failure(const TetraLaw& law, std::size_t delta, std::size_t k,
                                       const McOptions& opt) {
  law.validate();
  // The reduced string shrinks by roughly a factor f; oversample the raw
  // horizon so the reduced window plus its lookahead is well populated.
  const double f = law.f();
  const std::size_t raw_horizon =
      static_cast<std::size_t>(static_cast<double>(3 * k + opt.horizon_slack) / f) + delta + 8;
  return mc_event_proportion(opt, [&](Rng& rng) {
    const TetraString w = law.sample_string(raw_horizon, rng);
    const ReductionResult reduced = reduce_conservative(w, delta);
    return reduced.reduced.size() < k || !lemma2_event_holds(reduced.reduced, 1, k, delta);
  });
}

Proportion mc_cp_window_failure(const SymbolLaw& law, std::size_t horizon, std::size_t k,
                                const McOptions& opt) {
  law.validate();
  return mc_event_proportion(opt, [&](Rng& rng) {
    thread_local CharString w;
    law.sample_into(w, horizon + opt.horizon_slack, rng);
    const CatalanFlags flags = catalan_flags(w);
    bool bad_window = false;
    // Sliding count of uniquely honest Catalan slots per length-k window.
    std::size_t in_window = 0;
    auto good = [&](std::size_t s) {
      return flags.catalan[s - 1] && w.uniquely_honest(s);
    };
    for (std::size_t s = 1; s <= horizon && !bad_window; ++s) {
      if (good(s)) ++in_window;
      if (s >= k) {
        if (in_window == 0) bad_window = true;
        if (good(s - k + 1)) --in_window;
      }
    }
    return bad_window;
  });
}

std::vector<std::size_t> mc_first_catalan_histogram(const SymbolLaw& law, std::size_t horizon,
                                                    const McOptions& opt) {
  law.validate();
  // Same sharded path as every other estimator: per-chunk histograms merged
  // element-wise, in chunk order, by engine::Reduce.
  std::vector<std::size_t> histogram = engine::run_sharded<std::vector<std::size_t>>(
      opt.samples, engine_options(opt),
      [&](std::uint64_t /*index*/, Rng& rng, std::vector<std::size_t>& partial) {
        if (partial.empty()) partial.assign(horizon + 2, 0);
        thread_local CharString w;
        law.sample_into(w, horizon + opt.horizon_slack, rng);
        const std::size_t first = first_uniquely_honest_catalan(w, 1, horizon);
        partial[first == 0 ? horizon + 1 : first] += 1;
      });
  histogram.resize(horizon + 2);  // an empty workload still gets the full bin layout
  return histogram;
}

}  // namespace mh
