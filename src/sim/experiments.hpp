// Shared experiment drivers for the protocol-level benches: run many seeded
// executions and measure observed consistency violations.
#pragma once

#include <cstddef>

#include "protocol/adversary.hpp"
#include "protocol/simulation.hpp"
#include "support/stats.hpp"

namespace mh {

struct ProtocolExperimentConfig {
  std::size_t honest_parties = 8;
  std::size_t horizon = 200;
  std::size_t delta = 0;
  TieBreak tie_break = TieBreak::AdversarialOrder;
  std::size_t runs = 200;
  std::uint64_t seed = 7;
  /// Worker threads for the sharded engine (one seeded execution per task);
  /// 0 = hardware concurrency. Results are independent of this knob.
  std::size_t threads = 0;
};

enum class AttackKind { None, PrivateChain, Balance };

struct ProtocolExperimentResult {
  Proportion settlement_violations;  ///< slot-s violations observed at s + k
  Proportion cp_violations;          ///< k-CP^slot breaches at the horizon
  double mean_slot_divergence = 0.0;
  double mean_chain_length = 0.0;
};

/// Runs `runs` seeded executions with the given leader-election law; measures
/// whether slot `target_slot` is violated at observation time target_slot + k
/// and whether the final views breach k-CP^slot.
ProtocolExperimentResult run_protocol_experiment(const SymbolLaw& law, AttackKind attack,
                                                 std::size_t target_slot, std::size_t k,
                                                 const ProtocolExperimentConfig& config);

/// Semi-synchronous variant driven by a TetraLaw and network delay Delta.
ProtocolExperimentResult run_protocol_experiment_delta(const TetraLaw& law, AttackKind attack,
                                                       std::size_t target_slot, std::size_t k,
                                                       const ProtocolExperimentConfig& config);

}  // namespace mh
