#include "chars/dominance.hpp"

namespace mh {

bool leq(const CharString& x, const CharString& y) {
  if (x.size() != y.size()) return false;
  for (std::size_t t = 1; t <= x.size(); ++t)
    if (adversarial_rank(x.at(t)) > adversarial_rank(y.at(t))) return false;
  return true;
}

bool symbol_law_dominated(const SymbolLaw& law1, const SymbolLaw& law2) {
  // Down-sets of ({h,H,A}, h < H < A): {h} and {h,H}. Dominated means the less
  // adversarial law puts at least as much mass on every down-set.
  return law1.ph >= law2.ph - 1e-15 && law1.ph + law1.pH >= law2.ph + law2.pH - 1e-15;
}

namespace {

Symbol invert_cdf(const SymbolLaw& law, double u) {
  // CDF in the order h < H < A.
  if (u < law.ph) return Symbol::h;
  if (u < law.ph + law.pH) return Symbol::H;
  return Symbol::A;
}

}  // namespace

std::pair<CharString, CharString> coupled_sample(const SymbolLaw& law1, const SymbolLaw& law2,
                                                 std::size_t length, Rng& rng) {
  std::vector<Symbol> a, b;
  a.reserve(length);
  b.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    const double u = rng.uniform();
    a.push_back(invert_cdf(law1, u));
    b.push_back(invert_cdf(law2, u));
  }
  return {CharString(std::move(a)), CharString(std::move(b))};
}

}  // namespace mh
