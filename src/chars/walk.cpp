#include "chars/walk.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mh {

CharWalk::CharWalk(const CharString& w) {
  const std::size_t n = w.size();
  position_.resize(n + 1);
  position_[0] = 0;
  for (std::size_t t = 1; t <= n; ++t)
    position_[t] = position_[t - 1] + (w.adversarial(t) ? 1 : -1);

  prefix_min_.resize(n + 1);
  prefix_min_[0] = position_[0];
  for (std::size_t t = 1; t <= n; ++t) prefix_min_[t] = std::min(prefix_min_[t - 1], position_[t]);

  suffix_max_.resize(n + 1);
  suffix_max_[n] = position_[n];
  for (std::size_t t = n; t-- > 0;) suffix_max_[t] = std::max(suffix_max_[t + 1], position_[t]);
}

std::int64_t CharWalk::position(std::size_t t) const {
  MH_REQUIRE(t < position_.size());
  return position_[t];
}

std::int64_t CharWalk::prefix_min(std::size_t t) const {
  MH_REQUIRE(t < prefix_min_.size());
  return prefix_min_[t];
}

std::int64_t CharWalk::suffix_max(std::size_t t) const {
  MH_REQUIRE(t < suffix_max_.size());
  return suffix_max_[t];
}

bool CharWalk::strict_new_minimum(std::size_t s) const {
  MH_REQUIRE(s >= 1 && s < position_.size());
  return position_[s] < prefix_min_[s - 1];
}

}  // namespace mh
