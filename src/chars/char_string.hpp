// CharString: a characteristic string w in {h,H,A}^n (Definition 1).
//
// Slots are 1-indexed exactly as in the paper: w[1] .. w[n]. Interval helpers
// implement the #sigma(I) counting notation and the hH-heavy / A-heavy
// predicates from Section 3.1.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "chars/symbol.hpp"

namespace mh {

struct SymbolLaw;

class CharString {
 public:
  CharString() = default;
  explicit CharString(std::vector<Symbol> symbols);
  /// Parse from text such as "hAhAhHAAH".
  static CharString parse(std::string_view text);

  [[nodiscard]] std::size_t size() const noexcept { return symbols_.size(); }
  [[nodiscard]] bool empty() const noexcept { return symbols_.empty(); }

  /// 1-indexed slot access, matching the paper's w_t notation.
  [[nodiscard]] Symbol at(std::size_t slot) const;
  [[nodiscard]] bool honest(std::size_t slot) const { return is_honest(at(slot)); }
  [[nodiscard]] bool adversarial(std::size_t slot) const { return is_adversarial(at(slot)); }
  [[nodiscard]] bool uniquely_honest(std::size_t slot) const {
    return is_uniquely_honest(at(slot));
  }

  [[nodiscard]] const std::vector<Symbol>& symbols() const noexcept { return symbols_; }

  void push_back(Symbol s);

  /// Counts over the closed slot interval [lo, hi]; empty if lo > hi.
  [[nodiscard]] std::size_t count(Symbol s, std::size_t lo, std::size_t hi) const;
  [[nodiscard]] std::size_t count_honest(std::size_t lo, std::size_t hi) const;
  [[nodiscard]] std::size_t count_adversarial(std::size_t lo, std::size_t hi) const;

  /// #h(I) + #H(I) > #A(I)  (Section 3.1).
  [[nodiscard]] bool hH_heavy(std::size_t lo, std::size_t hi) const;
  /// not hH-heavy.
  [[nodiscard]] bool A_heavy(std::size_t lo, std::size_t hi) const;

  /// Prefix w_1..w_len and suffix w_{from}..w_n as new strings.
  [[nodiscard]] CharString prefix(std::size_t len) const;
  [[nodiscard]] CharString suffix(std::size_t from) const;
  [[nodiscard]] CharString concat(const CharString& tail) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const CharString&, const CharString&) = default;

 private:
  // SymbolLaw::sample_into refills symbols_ in place (reusing capacity) and
  // rebuilds the prefix sums — the allocation-free resample path of the hot
  // Monte-Carlo loops.
  friend struct SymbolLaw;

  std::vector<Symbol> symbols_;
  // prefix_adv_[t] = #A(w_1..w_t); prefix_hon_ likewise; both sized n+1 with [0]=0.
  std::vector<std::uint32_t> prefix_adv_;
  std::vector<std::uint32_t> prefix_hon_;

  void rebuild_prefix_sums();
};

/// A bivalent characteristic string (Definition 8) is a CharString without 'h'.
[[nodiscard]] bool is_bivalent(const CharString& w);

}  // namespace mh
