#include "chars/char_string.hpp"

#include <algorithm>

namespace mh {

CharString::CharString(std::vector<Symbol> symbols) : symbols_(std::move(symbols)) {
  rebuild_prefix_sums();
}

CharString CharString::parse(std::string_view text) {
  std::vector<Symbol> symbols;
  symbols.reserve(text.size());
  for (char c : text) {
    if (c == ' ') continue;  // allow readable spacing in literals
    symbols.push_back(symbol_from_char(c));
  }
  return CharString(std::move(symbols));
}

Symbol CharString::at(std::size_t slot) const {
  MH_REQUIRE_MSG(slot >= 1 && slot <= symbols_.size(), "slots are 1-indexed");
  return symbols_[slot - 1];
}

void CharString::push_back(Symbol s) {
  if (prefix_adv_.empty()) rebuild_prefix_sums();  // default-constructed object
  symbols_.push_back(s);
  prefix_adv_.push_back(prefix_adv_.back() + (is_adversarial(s) ? 1 : 0));
  prefix_hon_.push_back(prefix_hon_.back() + (is_honest(s) ? 1 : 0));
}

void CharString::rebuild_prefix_sums() {
  const std::size_t n = symbols_.size();
  prefix_adv_.assign(n + 1, 0);
  prefix_hon_.assign(n + 1, 0);
  for (std::size_t t = 1; t <= n; ++t) {
    prefix_adv_[t] = prefix_adv_[t - 1] + (is_adversarial(symbols_[t - 1]) ? 1 : 0);
    prefix_hon_[t] = prefix_hon_[t - 1] + (is_honest(symbols_[t - 1]) ? 1 : 0);
  }
}

std::size_t CharString::count(Symbol s, std::size_t lo, std::size_t hi) const {
  if (lo > hi) return 0;
  MH_REQUIRE(lo >= 1 && hi <= symbols_.size());
  if (s == Symbol::A) return prefix_adv_[hi] - prefix_adv_[lo - 1];
  std::size_t c = 0;
  for (std::size_t t = lo; t <= hi; ++t) c += (symbols_[t - 1] == s) ? 1 : 0;
  return c;
}

std::size_t CharString::count_honest(std::size_t lo, std::size_t hi) const {
  if (lo > hi) return 0;
  MH_REQUIRE(lo >= 1 && hi <= symbols_.size());
  return prefix_hon_[hi] - prefix_hon_[lo - 1];
}

std::size_t CharString::count_adversarial(std::size_t lo, std::size_t hi) const {
  if (lo > hi) return 0;
  MH_REQUIRE(lo >= 1 && hi <= symbols_.size());
  return prefix_adv_[hi] - prefix_adv_[lo - 1];
}

bool CharString::hH_heavy(std::size_t lo, std::size_t hi) const {
  return count_honest(lo, hi) > count_adversarial(lo, hi);
}

bool CharString::A_heavy(std::size_t lo, std::size_t hi) const { return !hH_heavy(lo, hi); }

CharString CharString::prefix(std::size_t len) const {
  MH_REQUIRE(len <= symbols_.size());
  return CharString(std::vector<Symbol>(symbols_.begin(),
                                        symbols_.begin() + static_cast<std::ptrdiff_t>(len)));
}

CharString CharString::suffix(std::size_t from) const {
  MH_REQUIRE(from >= 1 && from <= symbols_.size() + 1);
  return CharString(std::vector<Symbol>(symbols_.begin() + static_cast<std::ptrdiff_t>(from - 1),
                                        symbols_.end()));
}

CharString CharString::concat(const CharString& tail) const {
  std::vector<Symbol> merged = symbols_;
  merged.insert(merged.end(), tail.symbols_.begin(), tail.symbols_.end());
  return CharString(std::move(merged));
}

std::string CharString::to_string() const {
  std::string out;
  out.reserve(symbols_.size());
  for (Symbol s : symbols_) out.push_back(to_char(s));
  return out;
}

bool is_bivalent(const CharString& w) {
  return std::none_of(w.symbols().begin(), w.symbols().end(),
                      [](Symbol s) { return s == Symbol::h; });
}

}  // namespace mh
