// The (epsilon, ph)-Bernoulli condition (Definition 7): i.i.d. symbols with
//   pA = (1 - epsilon) / 2,   ph given,   pH = 1 - pA - ph.
//
// Sampling helpers, plus the generic i.i.d. law SymbolLaw used wherever the
// evaluation section speaks of arbitrary (alpha, ph, pH) grids (Table 1 uses
// alpha = Pr[A] directly rather than epsilon).
#pragma once

#include <cstddef>

#include "chars/char_string.hpp"
#include "support/random.hpp"

namespace mh {

/// An arbitrary i.i.d. law on {h, H, A}. Probabilities must sum to 1.
struct SymbolLaw {
  double ph = 0.0;
  double pH = 0.0;
  double pA = 0.0;

  /// epsilon with pA = (1-eps)/2, i.e. eps = 1 - 2 pA.
  [[nodiscard]] double epsilon() const noexcept { return 1.0 - 2.0 * pA; }
  [[nodiscard]] double honest_mass() const noexcept { return ph + pH; }

  /// The paper's headline assumption ph + pH > pA.
  [[nodiscard]] bool honest_majority() const noexcept { return ph + pH > pA; }

  void validate() const;
  [[nodiscard]] Symbol sample(Rng& rng) const;
  [[nodiscard]] CharString sample_string(std::size_t length, Rng& rng) const;
  /// Resample `out` in place: identical to `out = sample_string(length, rng)`
  /// but reuses out's storage, so steady-state sampling allocates nothing.
  /// The hot Monte-Carlo loops call this once per sample on a per-shard
  /// buffer.
  void sample_into(CharString& out, std::size_t length, Rng& rng) const;
};

/// Definition 7: the (epsilon, ph)-Bernoulli condition.
[[nodiscard]] SymbolLaw bernoulli_condition(double epsilon, double ph);

/// Table 1 parameterization: alpha = Pr[A] in (0, 1/2), ratio = Pr[h] / (1 - alpha).
[[nodiscard]] SymbolLaw table1_law(double alpha, double h_ratio);

}  // namespace mh
