#include "chars/bernoulli.hpp"

#include <cmath>

#include "support/check.hpp"

namespace mh {

void SymbolLaw::validate() const {
  MH_REQUIRE(ph >= 0.0 && pH >= 0.0 && pA >= 0.0);
  MH_REQUIRE_MSG(std::abs(ph + pH + pA - 1.0) < 1e-12, "probabilities must sum to 1");
}

Symbol SymbolLaw::sample(Rng& rng) const {
  const double u = rng.uniform();
  if (u < pA) return Symbol::A;
  if (u < pA + ph) return Symbol::h;
  return Symbol::H;
}

CharString SymbolLaw::sample_string(std::size_t length, Rng& rng) const {
  std::vector<Symbol> symbols;
  symbols.reserve(length);
  for (std::size_t i = 0; i < length; ++i) symbols.push_back(sample(rng));
  return CharString(std::move(symbols));
}

void SymbolLaw::sample_into(CharString& out, std::size_t length, Rng& rng) const {
  out.symbols_.resize(length);
  for (std::size_t i = 0; i < length; ++i) out.symbols_[i] = sample(rng);
  out.rebuild_prefix_sums();
}

SymbolLaw bernoulli_condition(double epsilon, double ph) {
  MH_REQUIRE(epsilon > 0.0 && epsilon < 1.0);
  const double pA = (1.0 - epsilon) / 2.0;
  MH_REQUIRE_MSG(ph >= 0.0 && ph <= 1.0 - pA, "ph must lie in [0, (1+eps)/2]");
  SymbolLaw law{ph, 1.0 - pA - ph, pA};
  law.validate();
  return law;
}

SymbolLaw table1_law(double alpha, double h_ratio) {
  MH_REQUIRE(alpha > 0.0 && alpha < 0.5);
  MH_REQUIRE(h_ratio >= 0.0 && h_ratio <= 1.0);
  const double ph = h_ratio * (1.0 - alpha);
  SymbolLaw law{ph, 1.0 - alpha - ph, alpha};
  law.validate();
  return law;
}

}  // namespace mh
