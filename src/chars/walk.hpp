// The characteristic walk of Sections 4-5: S_0 = 0 and
//   S_t = S_{t-1} + 1  if w_t = A,
//   S_t = S_{t-1} - 1  if w_t is honest (h or H).
//
// An interval [lo, hi] is hH-heavy iff S_hi - S_{lo-1} < 0, which makes the walk
// the natural device for O(n) Catalan-slot detection:
//   * slot s is left-Catalan  iff S_s < min_{0 <= j < s} S_j (strict new minimum),
//   * slot s is right-Catalan iff w_s is honest and S_r <= S_s for every r >= s.
#pragma once

#include <cstdint>
#include <vector>

#include "chars/char_string.hpp"

namespace mh {

class CharWalk {
 public:
  explicit CharWalk(const CharString& w);

  [[nodiscard]] std::size_t length() const noexcept { return position_.size() - 1; }

  /// S_t for t in [0, n].
  [[nodiscard]] std::int64_t position(std::size_t t) const;

  /// min_{0 <= j <= t} S_j  and  max_{t <= j <= n} S_j.
  [[nodiscard]] std::int64_t prefix_min(std::size_t t) const;
  [[nodiscard]] std::int64_t suffix_max(std::size_t t) const;

  /// True iff S_s is a strict new minimum: S_s < S_j for all 0 <= j < s.
  [[nodiscard]] bool strict_new_minimum(std::size_t s) const;

 private:
  std::vector<std::int64_t> position_;    // S_0 .. S_n
  std::vector<std::int64_t> prefix_min_;  // prefix_min_[t] = min_{j<=t} S_j
  std::vector<std::int64_t> suffix_max_;  // suffix_max_[t] = max_{j>=t} S_j
};

}  // namespace mh
