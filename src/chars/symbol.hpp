// Symbols of characteristic strings (Definition 1 and Definition 20 of the paper).
//
//   h  : uniquely honest slot (exactly one honest leader, no adversarial one)
//   H  : multiply honest slot (>= 2 honest leaders, no adversarial one)
//   A  : adversarial slot (at least one adversarial leader)
//   Bot: empty slot (no leader at all; only in the semi-synchronous alphabet)
#pragma once

#include <cstdint>

#include "support/check.hpp"

namespace mh {

enum class Symbol : std::uint8_t { h = 0, H = 1, A = 2 };

/// The four-letter alphabet of Definition 20 (semi-synchronous setting).
enum class TetraSymbol : std::uint8_t { Bot = 0, h = 1, H = 2, A = 3 };

constexpr bool is_honest(Symbol s) noexcept { return s != Symbol::A; }
constexpr bool is_adversarial(Symbol s) noexcept { return s == Symbol::A; }
constexpr bool is_uniquely_honest(Symbol s) noexcept { return s == Symbol::h; }
constexpr bool is_multiply_honest(Symbol s) noexcept { return s == Symbol::H; }

constexpr bool is_honest(TetraSymbol s) noexcept {
  return s == TetraSymbol::h || s == TetraSymbol::H;
}
constexpr bool is_adversarial(TetraSymbol s) noexcept { return s == TetraSymbol::A; }
constexpr bool is_empty(TetraSymbol s) noexcept { return s == TetraSymbol::Bot; }

constexpr char to_char(Symbol s) noexcept {
  switch (s) {
    case Symbol::h: return 'h';
    case Symbol::H: return 'H';
    case Symbol::A: return 'A';
  }
  return '?';
}

constexpr char to_char(TetraSymbol s) noexcept {
  switch (s) {
    case TetraSymbol::Bot: return '.';
    case TetraSymbol::h: return 'h';
    case TetraSymbol::H: return 'H';
    case TetraSymbol::A: return 'A';
  }
  return '?';
}

inline Symbol symbol_from_char(char c) {
  switch (c) {
    case 'h': return Symbol::h;
    case 'H': return Symbol::H;
    case 'A':
    case '1': return Symbol::A;  // '1' accepted for Blum-et-al. bit-string notation
    case '0': return Symbol::h;
    default: MH_REQUIRE_MSG(false, "invalid characteristic-string character"); return Symbol::h;
  }
}

inline TetraSymbol tetra_from_char(char c) {
  switch (c) {
    case '.':
    case '_': return TetraSymbol::Bot;
    case 'h': return TetraSymbol::h;
    case 'H': return TetraSymbol::H;
    case 'A': return TetraSymbol::A;
    default:
      MH_REQUIRE_MSG(false, "invalid semi-synchronous characteristic-string character");
      return TetraSymbol::Bot;
  }
}

/// The partial order on single symbols used for stochastic dominance
/// (Section 2.2 of the paper): h < H < A, "more adversarial" is larger.
constexpr int adversarial_rank(Symbol s) noexcept { return static_cast<int>(s); }

}  // namespace mh
