// Stochastic dominance on characteristic strings (Definition 6) under the
// coordinatewise partial order with h < H < A (Section 2.2).
//
// Monotone couplings: to show W <= B in the settlement analysis one exhibits a
// coupling (W, B) with W <= B pointwise. `coupled_sample` realizes the standard
// inverse-CDF coupling: a single uniform drives both laws, so whenever law2 is
// "more adversarial" than law1 coordinatewise (in the CDF sense below), the
// sampled strings compare. Used by tests of the dominance claims in Thms. 1/2.
#pragma once

#include <utility>

#include "chars/bernoulli.hpp"

namespace mh {

/// The partial order on strings of equal length: x <= y iff x_i <= y_i for all i
/// with h < H < A. Returns false for strings of unequal length.
[[nodiscard]] bool leq(const CharString& x, const CharString& y);

/// Single-symbol CDF order: law1 "<= " law2 iff for every down-set of {h,H,A}
/// (namely {h} and {h,H}) law1 assigns at least as much mass. Equivalent to
/// law1.pA <= law2.pA and law1.ph >= law2.ph + (slack allowed on pH).
[[nodiscard]] bool symbol_law_dominated(const SymbolLaw& law1, const SymbolLaw& law2);

/// Inverse-CDF coupled sample: one uniform per slot drives both laws with the
/// symbol order h < H < A. If symbol_law_dominated(law1, law2), the results
/// satisfy leq(first, second) always.
[[nodiscard]] std::pair<CharString, CharString> coupled_sample(const SymbolLaw& law1,
                                                               const SymbolLaw& law2,
                                                               std::size_t length, Rng& rng);

}  // namespace mh
