#include "analysis/sweep.hpp"

#include "engine/thread_pool.hpp"

namespace mh {

std::vector<SettlementSeries> sweep_settlement_series(const std::vector<SymbolLaw>& laws,
                                                      std::size_t k_max,
                                                      const SweepOptions& opt) {
  for (const SymbolLaw& law : laws) law.validate();  // fail fast, before spawning workers
  std::vector<SettlementSeries> out(laws.size());
  engine::for_each_index(laws.size(), opt.threads, [&](std::size_t i) {
    out[i] = exact_settlement_series(laws[i], k_max, opt.init, opt.precision);
  });
  return out;
}

std::vector<long double> sweep_eventual_insecurity(const std::vector<SymbolLaw>& laws,
                                                   const std::vector<std::size_t>& ks,
                                                   const SweepOptions& opt) {
  for (const SymbolLaw& law : laws) law.validate();
  std::vector<long double> out(laws.size() * ks.size(), 0.0L);
  engine::for_each_index(out.size(), opt.threads, [&](std::size_t cell) {
    const std::size_t i = cell / ks.size();
    const std::size_t j = cell % ks.size();
    out[cell] = eventual_settlement_insecurity(laws[i], ks[j], opt.init, opt.precision);
  });
  return out;
}

}  // namespace mh
