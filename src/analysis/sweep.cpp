#include "analysis/sweep.hpp"

#include <algorithm>

#include "engine/thread_pool.hpp"

namespace mh {

namespace {

/// Fan `n_cells` independent cells across the engine pool, one cell per
/// claimed chunk. The serial fallback runs the identical plan, and each cell
/// writes only its own output slot, so results cannot depend on scheduling.
void run_cells(std::size_t n_cells, std::size_t threads,
               const std::function<void(std::size_t)>& cell) {
  const std::size_t resolved =
      std::min(engine::resolve_threads(threads), std::max<std::size_t>(n_cells, 1));
  if (resolved <= 1) {
    for (std::size_t i = 0; i < n_cells; ++i) cell(i);
    return;
  }
  engine::ThreadPool pool(resolved);
  pool.for_each_chunk(n_cells, cell);
}

}  // namespace

std::vector<SettlementSeries> sweep_settlement_series(const std::vector<SymbolLaw>& laws,
                                                      std::size_t k_max,
                                                      const SweepOptions& opt) {
  for (const SymbolLaw& law : laws) law.validate();  // fail fast, before spawning workers
  std::vector<SettlementSeries> out(laws.size());
  run_cells(laws.size(), opt.threads, [&](std::size_t i) {
    out[i] = exact_settlement_series(laws[i], k_max, opt.init, opt.precision);
  });
  return out;
}

std::vector<long double> sweep_eventual_insecurity(const std::vector<SymbolLaw>& laws,
                                                   const std::vector<std::size_t>& ks,
                                                   const SweepOptions& opt) {
  for (const SymbolLaw& law : laws) law.validate();
  std::vector<long double> out(laws.size() * ks.size(), 0.0L);
  run_cells(out.size(), opt.threads, [&](std::size_t cell) {
    const std::size_t i = cell / ks.size();
    const std::size_t j = cell % ks.size();
    out[cell] = eventual_settlement_insecurity(laws[i], ks[j], opt.init, opt.precision);
  });
  return out;
}

}  // namespace mh
