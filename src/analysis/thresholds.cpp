#include "analysis/thresholds.hpp"

namespace mh {

RegimeReport classify_regime(const SymbolLaw& law) {
  law.validate();
  RegimeReport report;
  report.this_work_advantage = law.ph + law.pH - law.pA;
  report.praos_advantage = law.ph - law.pH - law.pA;
  report.snow_white_advantage = law.ph - law.pA;
  report.this_work_applies = report.this_work_advantage > 0.0;
  report.praos_applies = report.praos_advantage > 0.0;
  report.snow_white_applies = report.snow_white_advantage > 0.0;
  return report;
}

bool applies(Analysis analysis, const SymbolLaw& law) {
  const RegimeReport report = classify_regime(law);
  switch (analysis) {
    case Analysis::ThisWork: return report.this_work_applies;
    case Analysis::Praos: return report.praos_applies;
    case Analysis::SnowWhite: return report.snow_white_applies;
  }
  return false;
}

std::string to_string(Analysis analysis) {
  switch (analysis) {
    case Analysis::ThisWork: return "this work (ph+pH>pA)";
    case Analysis::Praos: return "Praos/Genesis (ph-pH>pA)";
    case Analysis::SnowWhite: return "Sleepy/SnowWhite (ph>pA)";
  }
  return "?";
}

}  // namespace mh
