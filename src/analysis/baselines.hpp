// Baseline consistency guarantees re-implemented for comparison benches.
//
// Both baselines are *analyses of the same longest-chain protocol*; what
// differs is how the combinatorial argument treats multiply honest slots.
// We realize each as the settlement error its argument certifies:
//
//   * Praos-style: collapse every H symbol to A (multiply honest slots are
//     conceded to the adversary) and run the exact single-honest settlement DP
//     on the collapsed law. This is the sharp numeric version of the
//     ph - pH > pA threshold: the collapsed walk has honest mass ph against
//     adversarial mass pH + pA.
//   * Sleepy/Snow White-style: ignore H slots entirely (treat them as neutral
//     filler): the certified error concerns only the h-vs-A subsequence, and
//     the published tail is exp(-Theta(sqrt k)); we expose that shape with
//     the explicit exponent sqrt(k) * (sqrt(ph) - sqrt(pA))^2-style rate as
//     well as the sharp collapsed-law DP where H symbols become non-slots.
#pragma once

#include <cstddef>

#include "chars/bernoulli.hpp"
#include "core/dp_kernel.hpp"

namespace mh {

/// The collapsed law a Praos-style argument certifies: H mass moves to A.
SymbolLaw praos_collapsed_law(const SymbolLaw& law);

/// Praos-certified settlement error at depth k (1.0 when inapplicable). The
/// collapsed-law DP runs on the banded kernel at the requested precision.
long double praos_settlement_error(const SymbolLaw& law, std::size_t k,
                                   DpPrecision precision = DpPrecision::Reference);

/// The conditioned law a Sleepy/Snow White-style argument certifies: H slots
/// are ignored, so the effective string is the {h, A} subsequence.
SymbolLaw snow_white_conditioned_law(const SymbolLaw& law);

/// Snow White-certified settlement error: the e^{-Theta(sqrt k)} tail with the
/// explicit rate their martingale argument yields (1.0 when inapplicable).
/// `k` counts slots; only the ~(ph+pA) fraction that is h/A contributes.
long double snow_white_settlement_error(const SymbolLaw& law, std::size_t k);

}  // namespace mh
