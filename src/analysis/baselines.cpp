#include "analysis/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "core/exact_dp.hpp"
#include "support/check.hpp"

namespace mh {

SymbolLaw praos_collapsed_law(const SymbolLaw& law) {
  law.validate();
  SymbolLaw collapsed{law.ph, 0.0, law.pA + law.pH};
  collapsed.validate();
  return collapsed;
}

long double praos_settlement_error(const SymbolLaw& law, std::size_t k, DpPrecision precision) {
  const SymbolLaw collapsed = praos_collapsed_law(law);
  if (collapsed.ph <= collapsed.pA) return 1.0L;  // ph - pH <= pA: no guarantee
  // The collapsed law may have pA >= 1/2 even when the threshold holds is
  // impossible (ph > pA + pH and ph + pH + pA = 1 imply pA + pH < 1/2).
  return settlement_violation_probability(collapsed, k, InitialReach::Stationary, precision);
}

SymbolLaw snow_white_conditioned_law(const SymbolLaw& law) {
  law.validate();
  const double active = law.ph + law.pA;
  MH_REQUIRE_MSG(active > 0.0, "law must give some mass to decisive slots");
  SymbolLaw conditioned{law.ph / active, 0.0, law.pA / active};
  conditioned.validate();
  return conditioned;
}

long double snow_white_settlement_error(const SymbolLaw& law, std::size_t k) {
  if (law.ph <= law.pA) return 1.0L;  // ph <= pA: no guarantee
  // Their argument certifies exp(-Theta(sqrt k)): a union bound over the
  // k possible divergence depths of a sqrt-k-scaled martingale deviation.
  // The rate constant follows the Chernoff gap of the conditioned h/A walk,
  // discounted by the density of decisive slots.
  const double active = law.ph + law.pA;
  const double gap = (law.ph - law.pA) / active;  // walk bias among decisive slots
  const long double rate = static_cast<long double>(gap) * static_cast<long double>(gap) / 2.0L *
                           sqrtl(static_cast<long double>(active));
  const long double value = expl(-rate * sqrtl(static_cast<long double>(k)));
  return std::min(1.0L, value);
}

}  // namespace mh
