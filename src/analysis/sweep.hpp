// Engine-parallel parameter sweeps over the exact settlement DPs.
//
// Table 1 and the threshold comparison evaluate the Section-6.6 DP over grids
// of i.i.d. laws; every (law, k) cell is independent, so the sweep fans the
// cells across the experiment engine's ThreadPool (one DP pass per cell,
// claimed dynamically) and writes each result into its preassigned output
// slot. Reduction is therefore ordered by construction: results are a pure
// function of the inputs and bit-for-bit identical for every thread count,
// the same contract engine::run_sharded gives the Monte-Carlo estimators.
#pragma once

#include <cstddef>
#include <vector>

#include "chars/bernoulli.hpp"
#include "core/exact_dp.hpp"

namespace mh {

struct SweepOptions {
  std::size_t threads = 0;  ///< engine parallelism; 0 = hardware concurrency
  DpPrecision precision = DpPrecision::Reference;
  InitialReach init = InitialReach::Stationary;
};

/// One full settlement series P(0..k_max) per law (a single DP pass yields
/// the whole k-series, so the law is the natural cell). out[i] corresponds to
/// laws[i].
std::vector<SettlementSeries> sweep_settlement_series(const std::vector<SymbolLaw>& laws,
                                                      std::size_t k_max,
                                                      const SweepOptions& opt = {});

/// The (law, k) product of eventual-settlement insecurities (each cell is its
/// own DP pass). out[i * ks.size() + j] is the value for (laws[i], ks[j]).
std::vector<long double> sweep_eventual_insecurity(const std::vector<SymbolLaw>& laws,
                                                   const std::vector<std::size_t>& ks,
                                                   const SweepOptions& opt = {});

}  // namespace mh
