// The security thresholds compared in the paper's introduction:
//
//   This work        : ph + pH > pA, error e^{-Theta(k)}   (optimal)
//   Praos / Genesis  : ph - pH > pA, error e^{-Theta(k)}   (H slots penalized)
//   Sleepy/Snow White: ph > pA,      error e^{-Theta(sqrt k)} (H slots neutral)
//
// The regime report drives bench_thresholds (E7) and bench_h_ablation (E12):
// for a law on {h,H,A}, which analyses apply, and at what rate does each one's
// guarantee decay?
#pragma once

#include <string>

#include "chars/bernoulli.hpp"

namespace mh {

enum class Analysis { ThisWork, Praos, SnowWhite };

struct RegimeReport {
  bool this_work_applies = false;   ///< ph + pH > pA
  bool praos_applies = false;       ///< ph - pH > pA
  bool snow_white_applies = false;  ///< ph > pA
  /// The effective "honest advantage" each analysis sees (negative when the
  /// analysis is inapplicable): ours ph+pH-pA, Praos ph-pH-pA, SW ph-pA.
  double this_work_advantage = 0.0;
  double praos_advantage = 0.0;
  double snow_white_advantage = 0.0;
};

RegimeReport classify_regime(const SymbolLaw& law);

[[nodiscard]] bool applies(Analysis analysis, const SymbolLaw& law);

std::string to_string(Analysis analysis);

}  // namespace mh
