#include "genfunc/walk_gf.hpp"

#include <cmath>

#include "support/check.hpp"

namespace mh {

WalkGF::WalkGF(long double p_up) : p(p_up), q(1.0L - p_up) {
  MH_REQUIRE(p_up > 0.0L && p_up < 0.5L);
}

namespace {

/// sum_m C_m a^{m+1} b^m Z^{2m+1} with C_m the Catalan numbers; shared shape of
/// the descent (a = q, b = p) and ascent (a = p, b = q) generating functions.
PowerSeries catalan_expansion(std::size_t order, long double a, long double b) {
  PowerSeries out(order);
  long double term = a;  // C_0 a^1 b^0
  for (std::size_t m = 0; 2 * m + 1 <= order; ++m) {
    out.set_coeff(2 * m + 1, term);
    // C_{m+1}/C_m = 2(2m+1)/(m+2); fold in one extra factor of a*b.
    term *= 2.0L * static_cast<long double>(2 * m + 1) / static_cast<long double>(m + 2) * a * b;
  }
  return out;
}

}  // namespace

PowerSeries WalkGF::descent_series(std::size_t order) const {
  return catalan_expansion(order, q, p);
}

PowerSeries WalkGF::ascent_series(std::size_t order) const {
  return catalan_expansion(order, p, q);
}

std::optional<long double> WalkGF::descent_eval(long double z) const {
  if (z == 0.0L) return 0.0L;
  const long double disc = 1.0L - 4.0L * p * q * z * z;
  if (disc < 0.0L) return std::nullopt;
  return (1.0L - sqrtl(disc)) / (2.0L * p * z);
}

std::optional<long double> WalkGF::ascent_eval(long double z) const {
  if (z == 0.0L) return 0.0L;
  const long double disc = 1.0L - 4.0L * p * q * z * z;
  if (disc < 0.0L) return std::nullopt;
  return (1.0L - sqrtl(disc)) / (2.0L * q * z);
}

long double WalkGF::walk_radius() const { return 1.0L / sqrtl(4.0L * p * q); }

PowerSeries WalkGF::ascent_of_zd(std::size_t order) const {
  const PowerSeries u = descent_series(order).shifted_up(1);  // U = Z D(Z)
  const PowerSeries inner =
      PowerSeries::constant(order, 1.0L) - (u * u).scaled(4.0L * p * q);
  const PowerSeries numerator = PowerSeries::constant(order, 1.0L) - inner.sqrt();
  return numerator.dividedBy(u.scaled(2.0L * q));
}

std::optional<long double> WalkGF::ascent_of_zd_eval(long double z) const {
  const std::optional<long double> d = descent_eval(z);
  if (!d) return std::nullopt;
  return ascent_eval(z * *d);
}

long double WalkGF::composite_radius() const {
  // Bisect for the largest z with both discriminants nonnegative. The
  // composite discriminant 1 - 4pq (z D(z))^2 is decreasing in z on [0, R_walk].
  long double lo = 1.0L;          // A(Z D(Z)) converges at 1 (D(1) = 1, A(1) = p/q)
  long double hi = walk_radius();
  auto in_domain = [&](long double z) {
    const std::optional<long double> d = descent_eval(z);
    if (!d) return false;
    const long double u = z * *d;
    return 1.0L - 4.0L * p * q * u * u >= 0.0L;
  };
  MH_ASSERT(in_domain(lo));
  for (int iter = 0; iter < 200; ++iter) {
    const long double mid = 0.5L * (lo + hi);
    if (in_domain(mid))
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace mh
