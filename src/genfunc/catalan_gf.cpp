#include "genfunc/catalan_gf.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mh {

CatalanGF::CatalanGF(const SymbolLaw& law, std::size_t order)
    : law_(law),
      walk_(static_cast<long double>(law.pA)),
      c_hat_(order),
      c_smoothed_(order) {
  law.validate();
  MH_REQUIRE_MSG(law.ph > 0.0, "Bound 1 requires ph > 0");

  const long double p = walk_.p;
  const long double q = walk_.q;
  const long double qh = static_cast<long double>(law.ph);
  const long double qH = q - qh;
  const long double eps = q - p;
  MH_REQUIRE(qH >= -1e-15L);

  const PowerSeries zd = walk_.descent_series(order).shifted_up(1);  // Z D(Z)
  const PowerSeries azd = walk_.ascent_of_zd(order);                 // A(Z D(Z))

  // F(Z) = p Z D(Z) + qh Z A(Z D(Z)) + qH Z.
  const PowerSeries f = zd.scaled(p) + azd.shifted_up(1).scaled(qh) +
                        PowerSeries::monomial(order, qH, 1);

  // C_hat(Z) = (qh eps / q) Z / (1 - F(Z)).
  const PowerSeries one_minus_f = PowerSeries::constant(order, 1.0L) - f;
  c_hat_ = PowerSeries::monomial(order, qh * eps / q, 1) * one_minus_f.inverse();

  // X_inf(D(Z)) = (1 - beta) / (1 - beta D(Z)), beta = p / q.
  const long double beta = p / q;
  const PowerSeries denom =
      PowerSeries::constant(order, 1.0L) - walk_.descent_series(order).scaled(beta);
  c_smoothed_ = denom.inverse().scaled(1.0L - beta) * c_hat_;
}

long double CatalanGF::tail(std::size_t k) const {
  return std::max(0.0L, 1.0L - c_hat_.partial_sum(k));
}

long double CatalanGF::smoothed_tail(std::size_t k) const {
  return std::max(0.0L, 1.0L - c_smoothed_.partial_sum(k));
}

std::optional<long double> CatalanGF::f_eval(long double z) const {
  const std::optional<long double> d = walk_.descent_eval(z);
  const std::optional<long double> a = walk_.ascent_of_zd_eval(z);
  if (!d || !a) return std::nullopt;
  const long double qh = static_cast<long double>(law_.ph);
  const long double qH = walk_.q - qh;
  return walk_.p * z * *d + qh * z * *a + qH * z;
}

long double CatalanGF::radius() const {
  const long double r1 = walk_.composite_radius();
  // F is increasing and convex on [0, r1); R2 solves F(z) = 1 if the root lies
  // inside the domain, otherwise the radius is the domain edge R1.
  const std::optional<long double> f_at_r1 = f_eval(r1);
  if (f_at_r1 && *f_at_r1 < 1.0L) return r1;
  long double lo = 1.0L, hi = r1;
  for (int iter = 0; iter < 200; ++iter) {
    const long double mid = 0.5L * (lo + hi);
    const std::optional<long double> f = f_eval(mid);
    if (f && *f < 1.0L)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace mh
