#include "genfunc/consecutive_gf.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mh {

ConsecutiveCatalanGF::ConsecutiveCatalanGF(const SymbolLaw& law, std::size_t order)
    : eps_(1.0L - 2.0L * static_cast<long double>(law.pA)),
      walk_(static_cast<long double>(law.pA)),
      m_hat_(order),
      m_smoothed_(order) {
  MH_REQUIRE(law.pA > 0.0 && law.pA < 0.5);

  const long double p = walk_.p;
  const long double q = walk_.q;

  const PowerSeries d = walk_.descent_series(order);
  const PowerSeries zd = d.shifted_up(1);
  const PowerSeries azd = walk_.ascent_of_zd(order);

  // E_hat = p Z D + q Z A(ZD)/A(1); A(1) = p/q so q/A(1) = q^2/p.
  const PowerSeries e_hat = zd.scaled(p) + azd.shifted_up(1).scaled(q * q / p);

  const PowerSeries denom =
      PowerSeries::constant(order, 1.0L) - e_hat.scaled(1.0L - eps_);
  m_hat_ = d.scaled(eps_) * denom.inverse();

  const long double beta = p / q;
  const PowerSeries smooth_denom =
      PowerSeries::constant(order, 1.0L) - d.scaled(beta);
  m_smoothed_ = smooth_denom.inverse().scaled(1.0L - beta) * m_hat_;
}

long double ConsecutiveCatalanGF::tail(std::size_t k) const {
  return std::max(0.0L, 1.0L - m_hat_.partial_sum(k));
}

long double ConsecutiveCatalanGF::smoothed_tail(std::size_t k) const {
  return std::max(0.0L, 1.0L - m_smoothed_.partial_sum(k));
}

std::optional<long double> ConsecutiveCatalanGF::e_hat_eval(long double z) const {
  const std::optional<long double> d = walk_.descent_eval(z);
  const std::optional<long double> a = walk_.ascent_of_zd_eval(z);
  if (!d || !a) return std::nullopt;
  const long double p = walk_.p;
  const long double q = walk_.q;
  return p * z * *d + (q * q / p) * z * *a;
}

long double ConsecutiveCatalanGF::radius() const {
  const long double r1 = walk_.composite_radius();
  const std::optional<long double> e_at_r1 = e_hat_eval(r1);
  if (e_at_r1 && (1.0L - eps_) * *e_at_r1 < 1.0L) return r1;
  long double lo = 1.0L, hi = r1;
  for (int iter = 0; iter < 200; ++iter) {
    const long double mid = 0.5L * (lo + hi);
    const std::optional<long double> e = e_hat_eval(mid);
    if (e && (1.0L - eps_) * *e < 1.0L)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace mh
