// The descent / ascent stopping-time generating functions of Section 5 for the
// epsilon-biased walk with up-probability p = Pr[A] and down-probability
// q = 1 - p:
//
//   D(Z) = (1 - sqrt(1 - 4pq Z^2)) / (2pZ)   (first descent; probability GF)
//   A(Z) = (1 - sqrt(1 - 4pq Z^2)) / (2qZ)   (first ascent; defective: A(1) = p/q)
//
// Series coefficients follow the Catalan-number expansion
//   D(Z) = sum_m C_m q^{m+1} p^m Z^{2m+1},  A(Z) = sum_m C_m p^{m+1} q^m Z^{2m+1},
// and the closed forms above provide real evaluation inside the radius of
// convergence 1/sqrt(4pq) = 1/sqrt(1 - eps^2).
#pragma once

#include <optional>

#include "genfunc/power_series.hpp"

namespace mh {

struct WalkGF {
  long double p = 0.0L;  ///< up-step probability (adversarial slot)
  long double q = 0.0L;  ///< down-step probability (honest slot)

  explicit WalkGF(long double p_up);

  [[nodiscard]] PowerSeries descent_series(std::size_t order) const;
  [[nodiscard]] PowerSeries ascent_series(std::size_t order) const;

  /// Closed-form evaluations; nullopt outside the domain (negative discriminant).
  [[nodiscard]] std::optional<long double> descent_eval(long double z) const;
  [[nodiscard]] std::optional<long double> ascent_eval(long double z) const;

  /// Radius of convergence of D and A: 1/sqrt(4pq).
  [[nodiscard]] long double walk_radius() const;

  /// A(Z D(Z)) as a truncated series, computed via the closed form
  /// (1 - sqrt(1 - 4pq U^2)) / (2q U) with U = Z D(Z). This is the
  /// "ascend-then-match-the-minimum" walk of Bounds 1 and 2.
  [[nodiscard]] PowerSeries ascent_of_zd(std::size_t order) const;

  /// Closed-form A(z D(z)); nullopt outside the composite domain.
  [[nodiscard]] std::optional<long double> ascent_of_zd_eval(long double z) const;

  /// Largest z such that z D(z) stays in the domain of A, i.e. the radius R1 of
  /// Eq. (5); found by bisection on the composite discriminant.
  [[nodiscard]] long double composite_radius() const;
};

}  // namespace mh
