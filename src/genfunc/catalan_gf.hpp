// Bound 1 machinery (Section 5.1): the dominating generating function
//
//   F(Z)      = p Z D(Z) + q_h Z A(Z D(Z)) + q_H Z,
//   C_hat(Z)  = (q_h eps / q) Z / (1 - F(Z)),
//
// whose coefficient c_hat_t dominates the probability that the first uniquely
// honest Catalan slot is slot t. The tail sum over t >= k upper-bounds the
// Bound-1 event "no uniquely honest Catalan slot in a k-window" when the
// window starts the string; the |x| -> infinity smoothing multiplies by
// X_inf(D(Z)) = (1 - beta) / (1 - beta D(Z)) (Section 5.1, Case 2).
#pragma once

#include <cmath>
#include <cstddef>

#include "chars/bernoulli.hpp"
#include "genfunc/power_series.hpp"
#include "genfunc/walk_gf.hpp"

namespace mh {

class CatalanGF {
 public:
  /// Requires ph > 0 (Bound 1 needs uniquely honest slots) and an honest
  /// majority pA < 1/2.
  CatalanGF(const SymbolLaw& law, std::size_t order);

  /// The dominating probability generating function C_hat.
  [[nodiscard]] const PowerSeries& c_hat() const noexcept { return c_hat_; }
  /// The smoothed series X_inf(D(Z)) * C_hat(Z) for the |x| -> infinity case.
  [[nodiscard]] const PowerSeries& c_smoothed() const noexcept { return c_smoothed_; }

  /// Upper bound on Pr[no uniquely honest Catalan slot in a window of length k
  /// starting the string]: 1 - sum_{t < k} c_hat_t.
  [[nodiscard]] long double tail(std::size_t k) const;
  /// Same with the stationary-prefix smoothing (any |x| >= 0 by dominance).
  [[nodiscard]] long double smoothed_tail(std::size_t k) const;

  /// Radius of convergence R = min(R1, R2): R1 the composite walk domain,
  /// R2 the root of F(z) = 1. The asymptotic decay rate of the tail is ln R.
  [[nodiscard]] long double radius() const;
  [[nodiscard]] long double decay_rate() const { return logl(radius()); }

  /// Closed-form F(z); nullopt outside the walk domain.
  [[nodiscard]] std::optional<long double> f_eval(long double z) const;

 private:
  SymbolLaw law_;
  WalkGF walk_;
  PowerSeries c_hat_;
  PowerSeries c_smoothed_;
};

}  // namespace mh
