#include "genfunc/power_series.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mh {

PowerSeries::PowerSeries(std::size_t order) : coeff_(order + 1, 0.0L) {}

PowerSeries::PowerSeries(std::size_t order, std::vector<long double> coefficients)
    : coeff_(std::move(coefficients)) {
  coeff_.resize(order + 1, 0.0L);
}

PowerSeries PowerSeries::constant(std::size_t order, long double value) {
  PowerSeries s(order);
  s.coeff_[0] = value;
  return s;
}

PowerSeries PowerSeries::monomial(std::size_t order, long double coefficient,
                                  std::size_t power) {
  PowerSeries s(order);
  MH_REQUIRE(power <= order);
  s.coeff_[power] = coefficient;
  return s;
}

long double PowerSeries::coeff(std::size_t i) const {
  return i < coeff_.size() ? coeff_[i] : 0.0L;
}

void PowerSeries::set_coeff(std::size_t i, long double value) {
  MH_REQUIRE(i < coeff_.size());
  coeff_[i] = value;
}

std::size_t PowerSeries::valuation() const {
  for (std::size_t i = 0; i < coeff_.size(); ++i)
    if (coeff_[i] != 0.0L) return i;
  return coeff_.size();
}

void PowerSeries::check_same_order(const PowerSeries& rhs) const {
  MH_REQUIRE_MSG(coeff_.size() == rhs.coeff_.size(), "mixed-order series arithmetic");
}

PowerSeries PowerSeries::operator+(const PowerSeries& rhs) const {
  check_same_order(rhs);
  PowerSeries out(order());
  for (std::size_t i = 0; i < coeff_.size(); ++i) out.coeff_[i] = coeff_[i] + rhs.coeff_[i];
  return out;
}

PowerSeries PowerSeries::operator-(const PowerSeries& rhs) const {
  check_same_order(rhs);
  PowerSeries out(order());
  for (std::size_t i = 0; i < coeff_.size(); ++i) out.coeff_[i] = coeff_[i] - rhs.coeff_[i];
  return out;
}

PowerSeries PowerSeries::operator*(const PowerSeries& rhs) const {
  check_same_order(rhs);
  PowerSeries out(order());
  const std::size_t n = coeff_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const long double a = coeff_[i];
    if (a == 0.0L) continue;
    for (std::size_t j = 0; i + j < n; ++j) out.coeff_[i + j] += a * rhs.coeff_[j];
  }
  return out;
}

PowerSeries PowerSeries::scaled(long double factor) const {
  PowerSeries out(order());
  for (std::size_t i = 0; i < coeff_.size(); ++i) out.coeff_[i] = coeff_[i] * factor;
  return out;
}

PowerSeries PowerSeries::shifted_up(std::size_t k) const {
  PowerSeries out(order());
  for (std::size_t i = 0; i + k < coeff_.size(); ++i) out.coeff_[i + k] = coeff_[i];
  return out;
}

PowerSeries PowerSeries::shifted_down(std::size_t k) const {
  for (std::size_t i = 0; i < k && i < coeff_.size(); ++i)
    MH_REQUIRE_MSG(coeff_[i] == 0.0L, "shifted_down requires vanishing low coefficients");
  PowerSeries out(order());
  for (std::size_t i = k; i < coeff_.size(); ++i) out.coeff_[i - k] = coeff_[i];
  return out;
}

PowerSeries PowerSeries::inverse() const {
  MH_REQUIRE_MSG(coeff_[0] != 0.0L, "inverse requires a nonzero constant term");
  // Newton: B <- B (2 - A B), doubling the number of correct coefficients.
  PowerSeries b = constant(order(), 1.0L / coeff_[0]);
  const PowerSeries two = constant(order(), 2.0L);
  for (std::size_t correct = 1; correct <= order(); correct *= 2)
    b = b * (two - (*this) * b);
  return b;
}

PowerSeries PowerSeries::sqrt() const {
  MH_REQUIRE_MSG(coeff_[0] > 0.0L, "sqrt requires a positive constant term");
  // Inverse-sqrt Newton (multiplications only): Y <- Y (3 - A Y^2) / 2; then
  // sqrt(A) = A * Y.
  PowerSeries y = constant(order(), 1.0L / std::sqrt(static_cast<double>(coeff_[0])));
  const PowerSeries three = constant(order(), 3.0L);
  for (std::size_t correct = 1; correct <= order(); correct *= 2)
    y = (y * (three - (*this) * y * y)).scaled(0.5L);
  return (*this) * y;
}

PowerSeries PowerSeries::dividedBy(const PowerSeries& rhs) const {
  check_same_order(rhs);
  const std::size_t v = rhs.valuation();
  MH_REQUIRE_MSG(v <= order(), "division by the zero series");
  if (v == 0) return (*this) * rhs.inverse();
  MH_REQUIRE_MSG(valuation() >= v, "quotient would not be a power series");
  return shifted_down(v) * rhs.shifted_down(v).inverse();
}

long double PowerSeries::evaluate(long double z) const {
  long double acc = 0.0L;
  for (std::size_t i = coeff_.size(); i-- > 0;) acc = acc * z + coeff_[i];
  return acc;
}

long double PowerSeries::partial_sum(std::size_t k) const {
  long double acc = 0.0L;
  for (std::size_t i = 0; i < k && i < coeff_.size(); ++i) acc += coeff_[i];
  return acc;
}

}  // namespace mh
