// Truncated formal power series over long double, the workhorse of the
// Section-5 generating-function analysis. All operations truncate at a fixed
// order N (coefficients of Z^0..Z^N). Inverse, square root and division use
// Newton iteration with precision doubling, so every operation is O(N^2)
// multiplications at worst.
#pragma once

#include <cstddef>
#include <vector>

namespace mh {

class PowerSeries {
 public:
  /// The zero series truncated at Z^order.
  explicit PowerSeries(std::size_t order);
  PowerSeries(std::size_t order, std::vector<long double> coefficients);

  static PowerSeries constant(std::size_t order, long double value);
  /// The monomial coefficient * Z^power.
  static PowerSeries monomial(std::size_t order, long double coefficient, std::size_t power);

  [[nodiscard]] std::size_t order() const noexcept { return coeff_.size() - 1; }
  [[nodiscard]] long double coeff(std::size_t i) const;
  void set_coeff(std::size_t i, long double value);
  [[nodiscard]] const std::vector<long double>& coefficients() const noexcept { return coeff_; }

  /// Index of the first nonzero coefficient; order()+1 when identically zero.
  [[nodiscard]] std::size_t valuation() const;

  PowerSeries operator+(const PowerSeries& rhs) const;
  PowerSeries operator-(const PowerSeries& rhs) const;
  PowerSeries operator*(const PowerSeries& rhs) const;  ///< truncated convolution
  PowerSeries scaled(long double factor) const;
  /// Multiply by Z^k (shift up; high coefficients fall off the truncation).
  PowerSeries shifted_up(std::size_t k) const;
  /// Divide by Z^k; requires the first k coefficients to vanish.
  PowerSeries shifted_down(std::size_t k) const;

  /// Multiplicative inverse; requires a nonzero constant term.
  [[nodiscard]] PowerSeries inverse() const;
  /// Square root with positive constant term; requires coeff(0) > 0.
  [[nodiscard]] PowerSeries sqrt() const;
  /// this / rhs where rhs may have positive valuation v, provided
  /// valuation(this) >= v (proper power-series quotient).
  [[nodiscard]] PowerSeries dividedBy(const PowerSeries& rhs) const;

  /// Horner evaluation of the truncated polynomial at z.
  [[nodiscard]] long double evaluate(long double z) const;

  /// sum of coefficients 0..k-1 (k clamped to order+1).
  [[nodiscard]] long double partial_sum(std::size_t k) const;

 private:
  std::vector<long double> coeff_;

  void check_same_order(const PowerSeries& rhs) const;
};

}  // namespace mh
