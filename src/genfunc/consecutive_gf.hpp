// Bound 2 machinery (Section 5.2): bivalent strings (ph = 0) under the
// consistent tie-breaking axiom A0'. The dominating generating function for
// the first pair of consecutive Catalan slots is
//
//   E_hat(Z) = p Z D(Z) + q Z A(Z D(Z)) / A(1),     A(1) = p/q,
//   M_hat(Z) = eps D(Z) / (1 - (1 - eps) E_hat(Z)),
//
// whose tail over t >= k bounds Pr[no two consecutive Catalan slots in a
// k-window]. The |x| -> infinity smoothing mirrors Bound 1.
#pragma once

#include <cmath>
#include <cstddef>

#include "chars/bernoulli.hpp"
#include "genfunc/power_series.hpp"
#include "genfunc/walk_gf.hpp"

namespace mh {

class ConsecutiveCatalanGF {
 public:
  /// `law` supplies pA only (the bound concerns bivalent strings; ph is
  /// ignored and may be zero). Requires pA < 1/2.
  ConsecutiveCatalanGF(const SymbolLaw& law, std::size_t order);

  [[nodiscard]] const PowerSeries& m_hat() const noexcept { return m_hat_; }
  [[nodiscard]] const PowerSeries& m_smoothed() const noexcept { return m_smoothed_; }

  /// Upper bound on Pr[no consecutive Catalan pair starts in the first k slots].
  [[nodiscard]] long double tail(std::size_t k) const;
  [[nodiscard]] long double smoothed_tail(std::size_t k) const;

  /// Radius of convergence (composite walk domain or root of (1-eps)E = 1)
  /// and the implied asymptotic decay rate ln R ~ eps^3/2 + O(eps^4).
  [[nodiscard]] long double radius() const;
  [[nodiscard]] long double decay_rate() const { return logl(radius()); }

 private:
  [[nodiscard]] std::optional<long double> e_hat_eval(long double z) const;

  long double eps_;
  WalkGF walk_;
  PowerSeries m_hat_;
  PowerSeries m_smoothed_;
};

}  // namespace mh
