#include "core/catalan.hpp"

namespace mh {

CatalanFlags catalan_flags(const CharString& w) {
  const std::size_t n = w.size();
  CatalanFlags flags;
  flags.left.assign(n, false);
  flags.right.assign(n, false);
  flags.catalan.assign(n, false);

  const CharWalk walk(w);
  for (std::size_t s = 1; s <= n; ++s) {
    // Left-Catalan: every [l, s] is hH-heavy, i.e. S_s - S_{l-1} < 0 for all
    // l <= s, i.e. S_s < min_{0 <= j <= s-1} S_j.
    flags.left[s - 1] = walk.strict_new_minimum(s);
    // Right-Catalan: every [s, r] is hH-heavy, i.e. S_r < S_{s-1} for all
    // r >= s. Since S_s = S_{s-1} - 1 exactly when w_s is honest, this is
    // equivalent to: w_s honest and max_{r >= s} S_r <= S_s.
    flags.right[s - 1] = w.honest(s) && walk.suffix_max(s) <= walk.position(s);
    flags.catalan[s - 1] = flags.left[s - 1] && flags.right[s - 1];
  }
  return flags;
}

CatalanFlags catalan_flags_bruteforce(const CharString& w) {
  const std::size_t n = w.size();
  CatalanFlags flags;
  flags.left.assign(n, true);
  flags.right.assign(n, true);
  flags.catalan.assign(n, false);
  for (std::size_t s = 1; s <= n; ++s) {
    for (std::size_t l = 1; l <= s; ++l)
      if (!w.hH_heavy(l, s)) flags.left[s - 1] = false;
    for (std::size_t r = s; r <= n; ++r)
      if (!w.hH_heavy(s, r)) flags.right[s - 1] = false;
    flags.catalan[s - 1] = flags.left[s - 1] && flags.right[s - 1];
  }
  return flags;
}

bool is_left_catalan(const CharString& w, std::size_t s) {
  const CharWalk walk(w);
  return walk.strict_new_minimum(s);
}

bool is_right_catalan(const CharString& w, std::size_t s) {
  const CharWalk walk(w);
  return w.honest(s) && walk.suffix_max(s) <= walk.position(s);
}

bool is_catalan(const CharString& w, std::size_t s) {
  return is_left_catalan(w, s) && is_right_catalan(w, s);
}

std::size_t first_uniquely_honest_catalan(const CharString& w, std::size_t from,
                                          std::size_t to) {
  const CatalanFlags flags = catalan_flags(w);
  for (std::size_t s = from; s <= to && s <= w.size(); ++s)
    if (flags.catalan[s - 1] && w.uniquely_honest(s)) return s;
  return 0;
}

std::size_t first_consecutive_catalan_pair(const CharString& w, std::size_t from,
                                           std::size_t to) {
  const CatalanFlags flags = catalan_flags(w);
  for (std::size_t s = from; s + 1 <= to && s + 1 <= w.size(); ++s)
    if (flags.catalan[s - 1] && flags.catalan[s]) return s;
  return 0;
}

}  // namespace mh
