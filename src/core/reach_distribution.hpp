// Distributions of the initial reach rho(x):
//
//   * X_m   — the law of rho(x) for |x| = m under an i.i.d. symbol law; a
//             reflected +-1 walk on the nonnegative integers (A steps up with
//             probability pA, honest symbols step down, clamped at 0);
//   * X_inf — the dominant stationary law of Eq. (9):
//             Pr[X_inf = r] = (1 - beta) beta^r with beta = (1-eps)/(1+eps),
//             which stochastically dominates every X_m ([4, Lemma 6.1]).
//
// Table 1 conditions on |x| -> infinity and therefore seeds the settlement DP
// with X_inf; the finite-m law is used by tests (dominance, convergence).
#pragma once

#include <cstddef>
#include <vector>

#include "chars/bernoulli.hpp"

namespace mh {

/// Probability mass function over r = 0..(size-1); masses beyond the cap are
/// accumulated in `tail`.
struct ReachPmf {
  std::vector<long double> mass;
  long double tail = 0.0L;

  [[nodiscard]] long double total() const;
  /// Pr[X > r] including the tail bucket. O(mass.size()) per call — for all
  /// tails at once, run a suffix-sum scan as pmf_dominated does.
  [[nodiscard]] long double upper_tail(std::size_t r) const;
};

/// The law of rho(x), |x| = m, capped at `cap` (exact: the excess is in tail).
ReachPmf finite_reach_distribution(const SymbolLaw& law, std::size_t m, std::size_t cap);

/// X_inf truncated at `cap`; tail = beta^{cap+1} exactly.
ReachPmf stationary_reach_distribution(const SymbolLaw& law, std::size_t cap);

/// beta = (1 - eps) / (1 + eps) = pA / (1 - pA).
long double reach_beta(const SymbolLaw& law);

/// CDF-wise stochastic dominance: every upper tail of `lower` is <= that of
/// `upper` (within tolerance). Used to verify X_m <= X_inf.
bool pmf_dominated(const ReachPmf& lower, const ReachPmf& upper, long double tol = 1e-12L);

}  // namespace mh
