#include "core/uvp.hpp"

#include "core/catalan.hpp"
#include "core/relative_margin.hpp"
#include "support/check.hpp"

namespace mh {

bool has_uvp_catalan(const CharString& w, std::size_t s) {
  MH_REQUIRE(s >= 1 && s <= w.size());
  return w.uniquely_honest(s) && is_catalan(w, s);
}

bool has_uvp_margin(const CharString& w, std::size_t s) {
  MH_REQUIRE(s >= 1 && s <= w.size());
  if (!w.uniquely_honest(s)) return false;
  const std::vector<std::int64_t> trajectory = margin_trajectory(w, s - 1);
  // trajectory[0] = mu_x(eps) = rho(x) >= 0 is exempt; Lemma 1 quantifies over
  // nonempty prefixes y.
  for (std::size_t j = 1; j < trajectory.size(); ++j)
    if (trajectory[j] >= 0) return false;
  return true;
}

bool has_uvp_consecutive_catalan(const CharString& w, std::size_t s) {
  MH_REQUIRE(s >= 1 && s + 1 <= w.size());
  const CatalanFlags flags = catalan_flags(w);
  return flags.catalan[s - 1] && flags.catalan[s];
}

bool bottleneck_holds_in_fork(const Fork& fork, const CharString& w, std::size_t s) {
  MH_REQUIRE(s >= 1 && s <= w.size());
  for (std::size_t k = s + 1; k <= w.size() + 1; ++k) {
    for (VertexId t : viable_tines_at_onset(fork, w, k)) {
      bool contains_s = false;
      for (VertexId v = t;; v = fork.parent(v)) {
        if (fork.label(v) == s) {
          contains_s = true;
          break;
        }
        if (v == kRoot) break;
      }
      if (!contains_s) return false;
    }
  }
  return true;
}

bool uvp_holds_in_fork(const Fork& fork, const CharString& w, std::size_t s,
                       std::size_t first_onset) {
  MH_REQUIRE(s >= 1 && s <= w.size());
  if (first_onset == 0) first_onset = s + 1;
  MH_REQUIRE(first_onset >= s + 1);
  for (VertexId u : fork.vertices_with_label(static_cast<std::uint32_t>(s))) {
    bool u_on_all = true;
    for (std::size_t k = first_onset; k <= w.size() + 1 && u_on_all; ++k)
      for (VertexId t : viable_tines_at_onset(fork, w, k))
        if (!fork.on_tine(u, t)) {
          u_on_all = false;
          break;
        }
    if (u_on_all) return true;
  }
  return false;
}

}  // namespace mh
