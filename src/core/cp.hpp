// The common prefix property (Section 9). k-CP^slot asserts that for every
// pair of viable tines t1, t2 with l(t1) <= l(t2), the trim of t1 to labels
// <= l(t1) - k is a prefix of t2. A k-CP (block-depth) violation implies a
// k-CP^slot violation, so bounding the latter bounds both.
#pragma once

#include "chars/char_string.hpp"
#include "core/bounds.hpp"
#include "fork/fork.hpp"

namespace mh {

/// A tine is viable (Section 2) if its length is >= the depth of every honest
/// vertex with label <= its own.
bool is_viable_tine(const Fork& fork, const CharString& w, VertexId v);

/// Does the fork satisfy k-CP^slot (Definition 24)?
bool satisfies_k_cp_slot(const Fork& fork, const CharString& w, std::size_t k);

/// Slot divergence of the fork (Definition 25): max over viable tine pairs of
/// l(t1) - l(t1 /\ t2) with l(t1) <= l(t2). A fork violates k-CP^slot iff its
/// slot divergence is >= k + 1.
std::size_t slot_divergence(const Fork& fork, const CharString& w);

/// Sufficient string-level guarantee via Eq. (25) + Theorem 3: w satisfies
/// k-CP^slot whenever every k-slot window contains a uniquely honest Catalan
/// slot. Returns true when that sufficient condition holds.
bool cp_slot_guaranteed_by_catalan(const CharString& w, std::size_t k);

/// Theorem 8 bound: Pr[w violates k-CP^slot] <= T * Bound1-tail(k).
long double theorem8_bound(const SymbolLaw& law, std::size_t horizon, std::size_t k);

}  // namespace mh
