#include "core/cp.hpp"

#include <algorithm>

#include "core/catalan.hpp"
#include "support/check.hpp"

namespace mh {

bool is_viable_tine(const Fork& fork, const CharString& w, VertexId v) {
  return fork.depth(v) >= max_honest_depth_upto(fork, w, fork.label(v));
}

namespace {

/// Deepest vertex on the tine of t with label <= cutoff (the head of the
/// trimmed tine t-floor-k).
VertexId trim_to_label(const Fork& fork, VertexId t, std::int64_t cutoff) {
  VertexId v = t;
  while (v != kRoot && static_cast<std::int64_t>(fork.label(v)) > cutoff) v = fork.parent(v);
  return v;
}

}  // namespace

bool satisfies_k_cp_slot(const Fork& fork, const CharString& w, std::size_t k) {
  std::vector<VertexId> viable;
  for (VertexId v : fork.all_vertices())
    if (is_viable_tine(fork, w, v)) viable.push_back(v);

  for (VertexId t1 : viable)
    for (VertexId t2 : viable) {
      if (fork.label(t1) > fork.label(t2)) continue;
      const std::int64_t cutoff =
          static_cast<std::int64_t>(fork.label(t1)) - static_cast<std::int64_t>(k);
      const VertexId trimmed = trim_to_label(fork, t1, cutoff);
      if (!fork.on_tine(trimmed, t2)) return false;
    }
  return true;
}

std::size_t slot_divergence(const Fork& fork, const CharString& w) {
  std::vector<VertexId> viable;
  for (VertexId v : fork.all_vertices())
    if (is_viable_tine(fork, w, v)) viable.push_back(v);

  std::size_t best = 0;
  for (VertexId t1 : viable)
    for (VertexId t2 : viable) {
      if (fork.label(t1) > fork.label(t2)) continue;
      const VertexId meet = fork.lca(t1, t2);
      best = std::max(best, static_cast<std::size_t>(fork.label(t1) - fork.label(meet)));
    }
  return best;
}

bool cp_slot_guaranteed_by_catalan(const CharString& w, std::size_t k) {
  MH_REQUIRE(k >= 1);
  if (w.size() < k) return true;
  const CatalanFlags flags = catalan_flags(w);
  for (std::size_t start = 1; start + k - 1 <= w.size(); ++start) {
    bool found = false;
    for (std::size_t s = start; s < start + k; ++s)
      if (flags.catalan[s - 1] && w.uniquely_honest(s)) {
        found = true;
        break;
      }
    if (!found) return false;
  }
  return true;
}

long double theorem8_bound(const SymbolLaw& law, std::size_t horizon, std::size_t k) {
  return std::min(1.0L, static_cast<long double>(horizon) * bound1_tail(law, k));
}

}  // namespace mh
