#include "core/dp_kernel.hpp"

#include <algorithm>

#include "core/simd.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"

namespace mh {

// Band invariants maintained across step():
//   * slo_ <= 0 <= shi_ while any step remains (the pinning column s = 0 and
//     the report column s >= 0 are therefore always inside the band);
//   * the top column shi_ falls by exactly one per step, the bottom column
//     moves by at most one, and rcap_ falls by at most one — so every gather
//     read below lands inside the band that the previous step wrote, and the
//     inactive buffer's stale cells (from two steps ago) are never touched.

template <typename Scalar>
BandedDp<Scalar>::BandedDp(std::size_t k_max)
    : k_(static_cast<std::ptrdiff_t>(k_max)),
      sdim_(2 * k_max + 2),
      cur_((k_max + 2) * sdim_, Scalar(0)),
      nxt_((k_max + 2) * sdim_, Scalar(0)) {
  MH_REQUIRE(k_max >= 1);
}

template <typename Scalar>
void BandedDp<Scalar>::seed(const ReachPmf& initial) {
  MH_REQUIRE_MSG(initial.mass.size() >= static_cast<std::size_t>(k_) + 1,
                 "initial reach law must cover r = 0..k_max");
  std::fill(cur_.begin(), cur_.end(), Scalar(0));
  std::fill(nxt_.begin(), nxt_.end(), Scalar(0));
  viol_ = {};
  safe_ = {};
  // Mass with rho(x) > K can never reach mu < 0 within the horizon: fold it
  // into the always-violating sink exactly.
  viol_.add(static_cast<Scalar>(initial.tail));
  for (std::size_t r = static_cast<std::size_t>(k_) + 1; r < initial.mass.size(); ++r)
    viol_.add(static_cast<Scalar>(initial.mass[r]));
  for (std::ptrdiff_t r = 0; r <= k_; ++r)
    row_ptr(cur_, r)[r] = static_cast<Scalar>(initial.mass[static_cast<std::size_t>(r)]);
  rcap_ = k_;
  slo_ = 0;
  shi_ = k_;
}

// Source-side accounting of the mass that exits the band this step. Iteration
// is ascending (r, s) — the same source order as the original scatter sweep,
// so each sink accumulator sees the identical add sequence.
template <typename Scalar>
void BandedDp<Scalar>::drain_sinks(Scalar pA, Scalar ph, Scalar pH, std::ptrdiff_t slo_next,
                                   std::ptrdiff_t shi_next, bool safe_sink) {
  for (std::ptrdiff_t r = 0; r <= rcap_; ++r) {
    const Scalar* row = row_ptr(cur_, r);
    const std::ptrdiff_t hi = r < shi_ ? r : shi_;
    if (safe_sink) {
      // Unpinned honest mass stepping below slo_next: s - 1 < slo_next, i.e.
      // s <= slo_next (at most two columns, since slo_next >= slo_ - 1). The
      // pinned cases stay at s = 0 and never sink; the lone unpinned s = 0
      // case is h at r = 0, which drops to -1.
      const std::ptrdiff_t safe_hi = std::min(slo_next, hi);
      for (std::ptrdiff_t s = slo_; s <= safe_hi; ++s) {
        const Scalar q = row[s];
        if (q == Scalar(0)) continue;
        if (s != 0) {
          safe_.add(q * ph);
          safe_.add(q * pH);
        } else if (r == 0) {
          safe_.add(q * ph);
        }
      }
    }
    // A-mass stepping above shi_next: s + 1 > shi_next, i.e. s >= shi_next
    // (at most two columns, since shi_next == shi_ - 1).
    const std::ptrdiff_t viol_lo = std::max(slo_, shi_next);
    for (std::ptrdiff_t s = viol_lo; s <= hi; ++s) {
      const Scalar q = row[s];
      if (q == Scalar(0)) continue;
      viol_.add(q * pA);
    }
  }
}

template <typename Scalar>
void BandedDp<Scalar>::step(Scalar pA, Scalar ph, Scalar pH, std::ptrdiff_t slo_next,
                            std::ptrdiff_t shi_next, std::ptrdiff_t rcap_next, bool safe_sink) {
  MH_ASSERT(shi_next == shi_ - 1 && shi_next >= 0);
  MH_ASSERT(slo_next >= slo_ - 1 && slo_next <= slo_ + 1 && slo_next <= 0);
  MH_ASSERT(rcap_next >= 1 && (rcap_next == rcap_ || rcap_next == rcap_ - 1));
  MH_ASSERT(safe_sink || slo_next == slo_ - 1);

  MH_OBS_ONLY(if (::mh::obs::enabled()) {
    MH_OBS_HIST("dp.band_width", static_cast<std::size_t>(shi_next - slo_next + 1));
    std::size_t cells = 0;
    for (std::ptrdiff_t rt = 0; rt <= rcap_next; ++rt) {
      const std::ptrdiff_t hi = rt < shi_next ? rt : shi_next;
      cells += static_cast<std::size_t>(hi - slo_next + 1);
    }
    MH_OBS_COUNT("dp.cells_touched", cells);
    if constexpr (sizeof(Scalar) > sizeof(double)) {
      MH_OBS_COUNT("dp.steps_reference", 1);
    } else {
      MH_OBS_COUNT("dp.steps_fast", 1);
    }
  })

  drain_sinks(pA, ph, pH, slo_next, shi_next, safe_sink);

  // First target column whose A-predecessor column s - 1 is inside the source
  // band; below it (at most the bottom two cells of each row) no A-mass lands.
  const std::ptrdiff_t sA = std::max(slo_next, slo_ + 1);
  const std::ptrdiff_t lo = slo_next;

  for (std::ptrdiff_t rt = 0; rt <= rcap_next; ++rt) {
    Scalar* out = row_ptr(nxt_, rt);

    if (rt == 0) {
      // Row 0 receives no A-mass (rcap_next >= 1 keeps min(r+1, rcap_next)
      // positive) and gathers honest mass from source rows 0 and 1, in that
      // order (both collapse to r' = 0).
      const Scalar* r0 = row_ptr(cur_, 0);
      const Scalar* r1 = row_ptr(cur_, 1);
      MH_SIMD_LOOP
      for (std::ptrdiff_t s = lo; s <= -2; ++s) {
        const Scalar c0 = r0[s + 1];
        Scalar v = ph * c0;
        v += pH * c0;
        const Scalar c1 = r1[s + 1];
        v += ph * c1;
        v += pH * c1;
        out[s] = v;
      }
      if (-1 >= lo) out[-1] = ph * r0[0];  // the lone unpinned s = 0 case: h at r = 0
      {
        // s' = 0: H pinned at (0,0); h and H pinned at (1,0); then the
        // unpinned drop from (1,1) — ascending source (r, s, symbol) order.
        Scalar v = pH * r0[0];
        const Scalar c = r1[0];
        v += ph * c;
        v += pH * c;
        if (shi_ >= 1) {
          const Scalar bb = r1[1];
          v += ph * bb;
          v += pH * bb;
        }
        out[0] = v;
      }
      continue;
    }

    const bool top = rt == rcap_next;
    const std::ptrdiff_t hi = rt < shi_next ? rt : shi_next;
    const Scalar* a = row_ptr(cur_, rt - 1);  // A-predecessor (r' - 1, s' - 1)
    // Honest predecessor row r' + 1 (absent for the top row on a step where
    // rcap does not shrink), and the top row's extra clamped-A source rows.
    const Scalar* b = rt + 1 <= rcap_ ? row_ptr(cur_, rt + 1) : nullptr;
    const Scalar* e = top ? row_ptr(cur_, rt) : nullptr;
    const Scalar* fx = top && rt + 1 <= rcap_ ? row_ptr(cur_, rt + 1) : nullptr;

    // Generic single-cell gather, adding predecessor contributions in the
    // source order of the original scatter sweep: ascending r, then ascending
    // s, then A before h before H. Bit-identity of the long double path rests
    // on this order.
    const auto cell = [&](std::ptrdiff_t s) -> Scalar {
      Scalar v{0};
      if (s >= sA) {
        v += pA * a[s - 1];
        if (e != nullptr) v += pA * e[s - 1];
        if (fx != nullptr) v += pA * fx[s - 1];
      }
      if (b != nullptr) {
        if (s == 0) {
          const Scalar c = b[0];  // pinned h (r > 0) and pinned H
          v += ph * c;
          v += pH * c;
          if (shi_ >= 1) {
            const Scalar bb = b[1];
            v += ph * bb;
            v += pH * bb;
          }
        } else if (s != -1) {  // s' = -1 has no honest predecessor: s = 0 is pinned
          const Scalar bb = b[s + 1];
          v += ph * bb;
          v += pH * bb;
        }
      }
      return v;
    };

    if (!top) {
      // Bulk negative columns [lo, min(hi, -2)]: contiguous gather over s,
      // the SIMD hot loop (pure element-wise assignments; the per-element
      // add order is untouched, so vectorization shifts no bits). The (at
      // most two) cells below sA lack the A-term; peel them off first.
      const std::ptrdiff_t neg_end = std::min<std::ptrdiff_t>(hi, -2);
      const std::ptrdiff_t peel_end = std::min(neg_end, sA - 1);
      for (std::ptrdiff_t s = lo; s <= peel_end; ++s) out[s] = cell(s);
      const std::ptrdiff_t neg_lo = std::max(lo, sA);
      MH_SIMD_LOOP
      for (std::ptrdiff_t s = neg_lo; s <= neg_end; ++s) {
        Scalar v = pA * a[s - 1];
        const Scalar bb = b[s + 1];
        v += ph * bb;
        v += pH * bb;
        out[s] = v;
      }
      // The two pinning-special columns s' in {-1, 0}.
      for (std::ptrdiff_t s = std::max<std::ptrdiff_t>(lo, -1); s <= 0; ++s) out[s] = cell(s);
      // Bulk positive columns [1, hi]: sA <= 1 always, so the A-term applies.
      const std::ptrdiff_t pos_lo = std::max<std::ptrdiff_t>(lo, 1);
      MH_SIMD_LOOP
      for (std::ptrdiff_t s = pos_lo; s <= hi; ++s) {
        Scalar v = pA * a[s - 1];
        const Scalar bb = b[s + 1];
        v += ph * bb;
        v += pH * bb;
        out[s] = v;
      }
    } else {
      // One row per step; the generic cell handles the clamped-A extras.
      for (std::ptrdiff_t s = lo; s <= hi; ++s) out[s] = cell(s);
    }
  }

  cur_.swap(nxt_);
  rcap_ = rcap_next;
  slo_ = slo_next;
  shi_ = shi_next;
}

template <typename Scalar>
Scalar BandedDp<Scalar>::nonneg_mass() const {
  DpAccum<Scalar> acc = viol_;
  if constexpr (sizeof(Scalar) <= sizeof(double)) {
    // Fast path: plain (vectorizable) per-row sums, Neumaier-compensated
    // only across the row totals — the report is the only O(K^2) reduction
    // on the hot path, so compensating every cell would dominate it.
    for (std::ptrdiff_t r = 0; r <= rcap_; ++r) {
      const Scalar* row = row_ptr(cur_, r);
      const std::ptrdiff_t hi = r < shi_ ? r : shi_;
      Scalar row_sum{0};
      for (std::ptrdiff_t s = 0; s <= hi; ++s) row_sum += row[s];
      acc.add(row_sum);
    }
  } else {
    // Reference path: start from the always-violating sink, then every live
    // cell in ascending (r, s) — the exact add order of the original code.
    for (std::ptrdiff_t r = 0; r <= rcap_; ++r) {
      const Scalar* row = row_ptr(cur_, r);
      const std::ptrdiff_t hi = r < shi_ ? r : shi_;
      for (std::ptrdiff_t s = 0; s <= hi; ++s) acc.add(row[s]);
    }
  }
  return acc.value();
}

template class BandedDp<long double>;
template class BandedDp<double>;

}  // namespace mh
