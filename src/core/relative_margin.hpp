// The reach / relative-margin recurrence of Theorem 5:
//
//   rho(eps) = 0,  rho(wA) = rho(w) + 1,
//   rho(wb)  = 0 if rho(w) = 0 else rho(w) - 1                (b in {h, H})
//
//   mu_x(eps) = rho(x),  mu_x(yA) = mu_x(y) + 1,
//   mu_x(yb)  = 0            if rho(xy) > mu_x(y) = 0
//             = 0            if rho(xy) = mu_x(y) = 0 and b = H
//             = mu_x(y) - 1  otherwise.
//
// These scalar recurrences are the paper's bridge between fork combinatorics
// and stochastic analysis; `MarginProcess` streams them one symbol at a time,
// which is also exactly what both the Monte-Carlo estimator and the exact DP
// (exact_dp.hpp) iterate.
#pragma once

#include <cstdint>
#include <vector>

#include "chars/char_string.hpp"

namespace mh {

/// One streaming (rho, mu) state. `rho` is rho(xy) and `mu` is mu_x(y) for the
/// fixed decomposition point |x| chosen at construction time.
class MarginProcess {
 public:
  /// Starts in the state after x with rho(x) = initial_rho (mu_x(eps) = rho(x)).
  explicit MarginProcess(std::int64_t initial_rho = 0);

  void step(Symbol b);

  [[nodiscard]] std::int64_t rho() const noexcept { return rho_; }
  [[nodiscard]] std::int64_t mu() const noexcept { return mu_; }

 private:
  std::int64_t rho_;
  std::int64_t mu_;
};

/// rho(w) from the empty-string start.
std::int64_t rho_of(const CharString& w);

/// rho(w_1..w_t) for all t in [0, n].
std::vector<std::int64_t> rho_prefixes(const CharString& w);

/// mu_x(y) where w = xy and |x| = x_len.
std::int64_t relative_margin_recurrence(const CharString& w, std::size_t x_len);

/// mu_x(y_j) for the fixed x = w_1..w_{x_len} and every prefix y_j of the
/// suffix, j = 0..n-x_len (index 0 holds mu_x(eps) = rho(x)).
std::vector<std::int64_t> margin_trajectory(const CharString& w, std::size_t x_len);

}  // namespace mh
