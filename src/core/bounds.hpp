// User-facing evaluators for the paper's stochastic bounds.
//
//   Bound 1: Pr[no uniquely honest Catalan slot in a k-window]
//            <= exp(-k Omega(min(eps^3, eps^2 ph)))     (via CatalanGF tails)
//   Bound 2: Pr[no consecutive Catalan pair in a k-window]
//            <= exp(-k Omega(eps^3))                    (via ConsecutiveCatalanGF)
//   Bound 3 / Theorem 7: the Delta-synchronous random-walk tail
//            f(Delta, k) <= O(1+Delta)/sqrt(k) exp(-k eps^2/2 + (1+Delta) eps/(1-eps)).
//
// The paper's Omega(.) constants are unspecified; the GF tails are the sharp
// numeric versions and `theorem*_exponent` expose the asymptotic rate
// parameters for shape comparisons.
#pragma once

#include <cstddef>

#include "chars/bernoulli.hpp"

namespace mh {

/// Sharp numeric Bound 1: GF tail for the window starting after a stationary
/// prefix (valid for every |x| >= 0 by dominance). `order` trades accuracy for
/// time; it must exceed k.
long double bound1_tail(const SymbolLaw& law, std::size_t k, std::size_t order = 0);

/// Sharp numeric Bound 2 (bivalent setting; uses law.pA only).
long double bound2_tail(const SymbolLaw& law, std::size_t k, std::size_t order = 0);

/// Asymptotic decay rates ln R from the radii of convergence.
long double bound1_decay_rate(const SymbolLaw& law);
long double bound2_decay_rate(const SymbolLaw& law);

/// The exponent parameter of Theorem 1: min(eps^3, eps^2 ph).
double theorem1_exponent(const SymbolLaw& law);
/// The exponent parameter of Theorem 2: eps^3.
double theorem2_exponent(const SymbolLaw& law);

/// Bound 3 with the explicit constant 1 in place of O(1):
/// (1+Delta)/sqrt(k) * exp(-k eps^2 / 2 + (1+Delta) eps / (1-eps)), clamped to 1.
long double bound3_probability(double eps, std::size_t delta, std::size_t k);

}  // namespace mh
