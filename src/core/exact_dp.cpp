#include "core/exact_dp.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mh {

namespace {

/// Dense joint law over (r, s) with r in [0, K+1], s in [-K, K+1].
class StateGrid {
 public:
  explicit StateGrid(std::size_t k_max)
      : k_(static_cast<std::ptrdiff_t>(k_max)),
        rdim_(k_max + 2),
        sdim_(2 * k_max + 2),
        mass_(rdim_ * sdim_, 0.0L) {}

  [[nodiscard]] long double& at(std::ptrdiff_t r, std::ptrdiff_t s) {
    return mass_[static_cast<std::size_t>(r) * sdim_ + static_cast<std::size_t>(s + k_)];
  }
  [[nodiscard]] long double at(std::ptrdiff_t r, std::ptrdiff_t s) const {
    return mass_[static_cast<std::size_t>(r) * sdim_ + static_cast<std::size_t>(s + k_)];
  }

  void clear() { std::fill(mass_.begin(), mass_.end(), 0.0L); }

  [[nodiscard]] std::ptrdiff_t k() const noexcept { return k_; }

 private:
  std::ptrdiff_t k_;
  std::size_t rdim_;
  std::size_t sdim_;
  std::vector<long double> mass_;
};

}  // namespace

SettlementSeries exact_settlement_series(const SymbolLaw& law, std::size_t k_max,
                                         const ReachPmf& initial) {
  law.validate();
  MH_REQUIRE(k_max >= 1);
  MH_REQUIRE_MSG(initial.mass.size() >= k_max + 1, "initial reach law must cover r = 0..k_max");

  const auto K = static_cast<std::ptrdiff_t>(k_max);
  const auto pA = static_cast<long double>(law.pA);
  const auto ph = static_cast<long double>(law.ph);
  const auto pH = static_cast<long double>(law.pH);

  StateGrid cur(k_max), nxt(k_max);
  SettlementSeries series;
  series.violation.assign(k_max + 1, 0.0L);

  // Seed: s_0 = r_0 = rho(x). Mass with rho(x) > K can never reach mu < 0
  // within the horizon: fold it into the always-violating sink exactly.
  long double viol = initial.tail;
  for (std::size_t r = k_max + 1; r < initial.mass.size(); ++r) viol += initial.mass[r];
  for (std::ptrdiff_t r = 0; r <= K; ++r) cur.at(r, r) = initial.mass[static_cast<std::size_t>(r)];
  long double safe = 0.0L;

  for (std::ptrdiff_t t = 0; t <= K; ++t) {
    // Report P(t): always-violating sink plus all live mass with mu >= 0.
    long double p = viol;
    const std::ptrdiff_t rcap_t = K - t + 1;
    const std::ptrdiff_t srange_t = K - t;
    for (std::ptrdiff_t r = 0; r <= rcap_t; ++r)
      for (std::ptrdiff_t s = 0; s <= std::min(r, srange_t + 1); ++s) p += cur.at(r, s);
    series.violation[static_cast<std::size_t>(t)] = p;
    if (t == K) break;

    // Transition to time t+1 with caps rcap' = K-t and live band |s'| <= K-t-1.
    const std::ptrdiff_t rcap_next = K - t;
    const std::ptrdiff_t sband_next = K - t - 1;
    nxt.clear();
    for (std::ptrdiff_t r = 0; r <= rcap_t; ++r) {
      const std::ptrdiff_t s_hi = std::min(r, srange_t + 1);
      for (std::ptrdiff_t s = -srange_t; s <= s_hi; ++s) {
        const long double q = cur.at(r, s);
        if (q == 0.0L) continue;

        // b = A: both coordinates rise.
        {
          const std::ptrdiff_t s2 = s + 1;
          if (s2 > sband_next)
            viol += q * pA;
          else
            nxt.at(std::min(r + 1, rcap_next), s2) += q * pA;
        }

        // b honest: rho falls (clamped at 0); mu falls unless pinned at 0.
        const std::ptrdiff_t r2 = r == 0 ? 0 : std::min(r - 1, rcap_next);
        // b = h: pinned only when a spare tine exists (rho > 0).
        {
          const std::ptrdiff_t s2 = (s == 0 && r > 0) ? 0 : s - 1;
          if (s2 < -sband_next)
            safe += q * ph;
          else
            nxt.at(r2, s2) += q * ph;
        }
        // b = H: pinned whenever mu = 0 (concurrent honest leaders re-split).
        {
          const std::ptrdiff_t s2 = s == 0 ? 0 : s - 1;
          if (s2 < -sband_next)
            safe += q * pH;
          else
            nxt.at(r2, s2) += q * pH;
        }
      }
    }
    std::swap(cur, nxt);
  }

  series.always_violating = viol;
  series.never_violating = safe;
  return series;
}

SettlementSeries exact_settlement_series(const SymbolLaw& law, std::size_t k_max,
                                         InitialReach init) {
  if (init == InitialReach::Zero) {
    ReachPmf zero;
    zero.mass.assign(k_max + 1, 0.0L);
    zero.mass[0] = 1.0L;
    return exact_settlement_series(law, k_max, zero);
  }
  return exact_settlement_series(law, k_max, stationary_reach_distribution(law, k_max));
}

long double settlement_violation_probability(const SymbolLaw& law, std::size_t k,
                                             InitialReach init) {
  return exact_settlement_series(law, k, init).violation[k];
}

long double eventual_settlement_insecurity(const SymbolLaw& law, std::size_t k,
                                           InitialReach init) {
  law.validate();
  MH_REQUIRE(k >= 1);
  const auto K = static_cast<std::ptrdiff_t>(k);
  const auto pA = static_cast<long double>(law.pA);
  const auto ph = static_cast<long double>(law.ph);
  const auto pH = static_cast<long double>(law.pH);
  const long double beta = reach_beta(law);

  const ReachPmf initial = init == InitialReach::Zero
                               ? [&] {
                                   ReachPmf zero;
                                   zero.mass.assign(k + 1, 0.0L);
                                   zero.mass[0] = 1.0L;
                                   return zero;
                                 }()
                               : stationary_reach_distribution(law, k);

  // Phase 1: exact joint evolution to step k. Unlike the fixed-horizon series
  // there is NO safe sink — a deeply negative margin can still recover after
  // step k — but the always-violating sink remains sound: mu > K - t at time
  // t guarantees mu >= 0 at time k.
  StateGrid cur(k), nxt(k);
  long double viol = initial.tail;
  for (std::size_t r = k + 1; r < initial.mass.size(); ++r) viol += initial.mass[r];
  for (std::ptrdiff_t r = 0; r <= K; ++r) cur.at(r, r) = initial.mass[static_cast<std::size_t>(r)];

  for (std::ptrdiff_t t = 0; t < K; ++t) {
    const std::ptrdiff_t rcap_t = K - t + 1;
    const std::ptrdiff_t rcap_next = K - t;
    const std::ptrdiff_t viol_band = K - t - 1;
    nxt.clear();
    for (std::ptrdiff_t r = 0; r <= rcap_t; ++r) {
      for (std::ptrdiff_t s = -t; s <= std::min(r, K - t); ++s) {
        const long double q = cur.at(r, s);
        if (q == 0.0L) continue;
        {
          const std::ptrdiff_t s2 = s + 1;
          if (s2 > viol_band)
            viol += q * pA;
          else
            nxt.at(std::min(r + 1, rcap_next), s2) += q * pA;
        }
        const std::ptrdiff_t r2 = r == 0 ? 0 : std::min(r - 1, rcap_next);
        nxt.at(r2, (s == 0 && r > 0) ? 0 : s - 1) += q * ph;
        nxt.at(r2, s == 0 ? 0 : s - 1) += q * pH;
      }
    }
    std::swap(cur, nxt);
  }

  // Phase 2: at step k, mu >= 0 wins outright; mu = -m < 0 wins iff the bare
  // walk ever climbs back to 0: probability beta^m.
  long double total = viol;
  std::vector<long double> beta_pow(static_cast<std::size_t>(K) + 1, 1.0L);
  for (std::size_t m = 1; m <= static_cast<std::size_t>(K); ++m)
    beta_pow[m] = beta_pow[m - 1] * beta;
  for (std::ptrdiff_t r = 0; r <= K + 1; ++r)
    for (std::ptrdiff_t s = -K; s <= std::min(r, K); ++s) {
      const long double q = cur.at(r, s);
      if (q == 0.0L) continue;
      total += s >= 0 ? q : q * beta_pow[static_cast<std::size_t>(-s)];
    }
  return total;
}

}  // namespace mh
