#include "core/exact_dp.hpp"

#include <algorithm>
#include <cmath>

#include "core/dp_kernel.hpp"
#include "support/check.hpp"

namespace mh {

namespace {

// The fixed-horizon series driver on the banded kernel. Per step t -> t+1 the
// live margin band tightens from both sides toward the horizon: the top
// column falls to K-t-1 (A-mass above it is violating at every remaining k),
// the floor rises to -(K-t-1) (honest mass below it can violate at none),
// and the reach cap falls to K-t (all larger reaches are one equivalence
// class under clamping).
template <typename Scalar>
SettlementSeries settlement_series_impl(const SymbolLaw& law, std::size_t k_max,
                                        const ReachPmf& initial) {
  const auto K = static_cast<std::ptrdiff_t>(k_max);
  const auto pA = static_cast<Scalar>(law.pA);
  const auto ph = static_cast<Scalar>(law.ph);
  const auto pH = static_cast<Scalar>(law.pH);

  BandedDp<Scalar> dp(k_max);
  dp.seed(initial);

  SettlementSeries series;
  series.violation.assign(k_max + 1, 0.0L);
  for (std::ptrdiff_t t = 0; t <= K; ++t) {
    series.violation[static_cast<std::size_t>(t)] = static_cast<long double>(dp.nonneg_mass());
    if (t == K) break;
    const std::ptrdiff_t shi_next = K - t - 1;
    dp.step(pA, ph, pH, std::max(dp.slo() - 1, -shi_next), shi_next, K - t,
            /*safe_sink=*/true);
  }
  series.always_violating = static_cast<long double>(dp.viol());
  series.never_violating = static_cast<long double>(dp.safe());
  return series;
}

// Phase 1 of the eventual-settlement value: exact joint evolution to step k.
// Unlike the fixed-horizon series there is NO safe sink — a deeply negative
// margin can still recover after step k — so the band floor falls freely.
template <typename Scalar>
long double eventual_insecurity_impl(const SymbolLaw& law, std::size_t k,
                                     const ReachPmf& initial) {
  const auto K = static_cast<std::ptrdiff_t>(k);
  const auto pA = static_cast<Scalar>(law.pA);
  const auto ph = static_cast<Scalar>(law.ph);
  const auto pH = static_cast<Scalar>(law.pH);
  const auto beta = static_cast<Scalar>(reach_beta(law));

  BandedDp<Scalar> dp(k);
  dp.seed(initial);
  for (std::ptrdiff_t t = 0; t < K; ++t)
    dp.step(pA, ph, pH, dp.slo() - 1, K - t - 1, K - t, /*safe_sink=*/false);

  // Phase 2: at step k, mu >= 0 wins outright; mu = -m < 0 wins iff the bare
  // walk ever climbs back to 0: probability beta^m (gambler's ruin).
  std::vector<Scalar> beta_pow(k + 1, Scalar(1));
  for (std::size_t m = 1; m <= k; ++m) beta_pow[m] = beta_pow[m - 1] * beta;
  DpAccum<Scalar> total;
  total.add(dp.viol());
  dp.for_each_live([&](std::ptrdiff_t /*r*/, std::ptrdiff_t s, Scalar q) {
    if (q == Scalar(0)) return;
    total.add(s >= 0 ? q : q * beta_pow[static_cast<std::size_t>(-s)]);
  });
  return static_cast<long double>(total.value());
}

ReachPmf zero_reach(std::size_t k_max) {
  ReachPmf zero;
  zero.mass.assign(k_max + 1, 0.0L);
  zero.mass[0] = 1.0L;
  return zero;
}

ReachPmf initial_reach(const SymbolLaw& law, std::size_t k_max, InitialReach init) {
  return init == InitialReach::Zero ? zero_reach(k_max)
                                    : stationary_reach_distribution(law, k_max);
}

}  // namespace

SettlementSeries exact_settlement_series(const SymbolLaw& law, std::size_t k_max,
                                         const ReachPmf& initial, DpPrecision precision) {
  law.validate();
  MH_REQUIRE(k_max >= 1);
  MH_REQUIRE_MSG(initial.mass.size() >= k_max + 1, "initial reach law must cover r = 0..k_max");
  return precision == DpPrecision::Reference
             ? settlement_series_impl<long double>(law, k_max, initial)
             : settlement_series_impl<double>(law, k_max, initial);
}

SettlementSeries exact_settlement_series(const SymbolLaw& law, std::size_t k_max,
                                         InitialReach init, DpPrecision precision) {
  law.validate();
  MH_REQUIRE(k_max >= 1);
  return exact_settlement_series(law, k_max, initial_reach(law, k_max, init), precision);
}

long double settlement_violation_probability(const SymbolLaw& law, std::size_t k,
                                             InitialReach init, DpPrecision precision) {
  return exact_settlement_series(law, k, init, precision).violation[k];
}

long double eventual_settlement_insecurity(const SymbolLaw& law, std::size_t k, InitialReach init,
                                           DpPrecision precision) {
  law.validate();
  MH_REQUIRE(k >= 1);
  const ReachPmf initial = initial_reach(law, k, init);
  return precision == DpPrecision::Reference
             ? eventual_insecurity_impl<long double>(law, k, initial)
             : eventual_insecurity_impl<double>(law, k, initial);
}

}  // namespace mh
