// Portable SIMD annotation for the DP gather loops.
//
// MH_SIMD_LOOP marks a loop whose iterations are independent element-wise
// assignments (no reductions, no cross-iteration dependencies) so the
// compiler may vectorize it. It expands to `#pragma omp simd` when the build
// enables MH_SIMD_ENABLED (CMake: MH_SIMD=ON and the compiler accepts
// -fopenmp-simd — the pragma-only mode, no OpenMP runtime, no _OPENMP) and
// to nothing otherwise, leaving the identical scalar loop.
//
// Contract: annotate ONLY loops where each iteration computes its own output
// cell in a fixed per-element FP order. Vectorization then processes lanes
// in parallel without reassociating within an element, so Reference stays
// bit-identical and Fast keeps its pinned tolerance. Never annotate a
// reduction (sinks, nonneg_mass): lane-split accumulation reorders adds.
#pragma once

namespace mh {

/// Did this build compile the DP gather loops with the simd pragma?
constexpr bool simd_enabled() noexcept {
#if defined(MH_SIMD_ENABLED)
  return true;
#else
  return false;
#endif
}

}  // namespace mh

#if defined(MH_SIMD_ENABLED)
#define MH_SIMD_LOOP _Pragma("omp simd")
#else
#define MH_SIMD_LOOP
#endif
