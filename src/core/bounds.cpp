#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "genfunc/catalan_gf.hpp"
#include "genfunc/consecutive_gf.hpp"
#include "support/check.hpp"

namespace mh {

namespace {

std::size_t default_order(std::size_t k, std::size_t order) {
  // The coefficient tail decays geometrically; 4k + 256 terms make the
  // truncation error negligible next to the reported tail.
  return order > 0 ? order : 4 * k + 256;
}

}  // namespace

long double bound1_tail(const SymbolLaw& law, std::size_t k, std::size_t order) {
  const CatalanGF gf(law, default_order(k, order));
  return gf.smoothed_tail(k);
}

long double bound2_tail(const SymbolLaw& law, std::size_t k, std::size_t order) {
  const ConsecutiveCatalanGF gf(law, default_order(k, order));
  return gf.smoothed_tail(k);
}

long double bound1_decay_rate(const SymbolLaw& law) {
  // Radius computation needs no long series; order is irrelevant to it.
  const CatalanGF gf(law, 8);
  return gf.decay_rate();
}

long double bound2_decay_rate(const SymbolLaw& law) {
  const ConsecutiveCatalanGF gf(law, 8);
  return gf.decay_rate();
}

double theorem1_exponent(const SymbolLaw& law) {
  const double eps = law.epsilon();
  MH_REQUIRE(eps > 0.0);
  return std::min(eps * eps * eps, eps * eps * law.ph);
}

double theorem2_exponent(const SymbolLaw& law) {
  const double eps = law.epsilon();
  MH_REQUIRE(eps > 0.0);
  return eps * eps * eps;
}

long double bound3_probability(double eps, std::size_t delta, std::size_t k) {
  MH_REQUIRE(eps > 0.0 && eps < 1.0);
  MH_REQUIRE(k >= 1);
  const long double le = static_cast<long double>(eps);
  const long double exponent = -static_cast<long double>(k) * le * le / 2.0L +
                               static_cast<long double>(1 + delta) * le / (1.0L - le);
  const long double value = static_cast<long double>(1 + delta) /
                            sqrtl(static_cast<long double>(k)) * expl(exponent);
  return std::min(1.0L, value);
}

}  // namespace mh
