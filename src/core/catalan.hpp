// Catalan slots (Definition 11): slot s is left-Catalan if every interval
// [l, s] is hH-heavy, right-Catalan if every [s, r] is hH-heavy, and Catalan if
// both. With the +1/-1 characteristic walk S these become O(n)-detectable:
//   left-Catalan  <=>  S_s is a strict new minimum of the walk,
//   right-Catalan <=>  w_s honest and the walk never exceeds S_s afterwards.
#pragma once

#include <vector>

#include "chars/char_string.hpp"
#include "chars/walk.hpp"

namespace mh {

struct CatalanFlags {
  std::vector<bool> left;     ///< 1-indexed via [s-1]
  std::vector<bool> right;
  std::vector<bool> catalan;  ///< left && right
};

/// O(n) detection of all left-/right-/full Catalan slots of w.
CatalanFlags catalan_flags(const CharString& w);

/// Reference O(n^2) implementation straight from Definition 11; test oracle.
CatalanFlags catalan_flags_bruteforce(const CharString& w);

/// Convenience point queries (1-indexed slots).
bool is_catalan(const CharString& w, std::size_t s);
bool is_left_catalan(const CharString& w, std::size_t s);
bool is_right_catalan(const CharString& w, std::size_t s);

/// First uniquely honest Catalan slot in [from, to] (0 if none). This is the
/// stochastic event of Bound 1.
std::size_t first_uniquely_honest_catalan(const CharString& w, std::size_t from, std::size_t to);

/// First s in [from, to-1] such that both s and s+1 are Catalan (0 if none);
/// the event of Bound 2.
std::size_t first_consecutive_catalan_pair(const CharString& w, std::size_t from,
                                           std::size_t to);

}  // namespace mh
