// The Bottleneck Property and Unique Vertex Property (Definition 4) in three
// forms:
//   * string-level via Catalan slots (Theorem 3: for w_s = h, UVP <=> Catalan;
//     Theorem 4: bivalent strings under consistent tie-breaking, two
//     consecutive Catalan slots <=> UVP of the first);
//   * string-level via relative margin (Lemma 1: UVP <=> mu_x(y) < 0 for every
//     nonempty prefix y of the suffix);
//   * fork-level structural checks, used as test oracles against exhaustive
//     fork enumeration.
#pragma once

#include "chars/char_string.hpp"
#include "fork/fork.hpp"

namespace mh {

/// Theorem 3 characterization. Requires w_s = h; returns false otherwise
/// (only uniquely honest slots are covered by the synchronous theorem).
bool has_uvp_catalan(const CharString& w, std::size_t s);

/// Lemma 1 characterization: w_s = h and mu_x(y) < 0 for every nonempty
/// prefix y of w_{s}..w_{n}, where x = w_1..w_{s-1}.
bool has_uvp_margin(const CharString& w, std::size_t s);

/// Theorem 4 (bivalent strings, axiom A0'): slots s and s+1 both Catalan.
/// Under the consistent longest-chain selection rule this grants slot s the
/// UVP even when it is multiply honest.
bool has_uvp_consecutive_catalan(const CharString& w, std::size_t s);

/// Fork-level Bottleneck Property at slot s: for every k >= s+1, every tine
/// viable at the onset of slot k contains some vertex labeled s.
bool bottleneck_holds_in_fork(const Fork& fork, const CharString& w, std::size_t s);

/// Fork-level UVP at slot s: some vertex u labeled s lies on every tine viable
/// at the onset of every slot k >= first_onset (default s+1, Definition 4).
/// Theorem 4's guarantee for the first slot of a consecutive Catalan pair
/// binds from first_onset = s+2: the slot's concurrent honest siblings remain
/// viable for one more slot before the consistent rule starves them.
bool uvp_holds_in_fork(const Fork& fork, const CharString& w, std::size_t s,
                       std::size_t first_onset = 0);

}  // namespace mh
