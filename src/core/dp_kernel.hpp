// BandedDp: the shared banded, cache-blocked, gather-based kernel behind the
// Section-6.6 settlement dynamic programs (exact_dp.hpp) and their delta-
// synchronous counterpart (delta/delta_settlement.hpp).
//
// The joint (r, s) = (rho, mu) law of Theorem 5 is evolved over a shrinking
// diagonal band of live states:
//
//   r in [0, rcap],   s in [slo, min(r, shi)],
//
// stored as two flat row-major double-buffers. Per step the kernel
//
//   * GATHERS each target cell from its (at most three) predecessor cells
//     instead of scattering three writes per source cell — every target is a
//     pure assignment, so the dense per-step grid clear() of the original
//     implementation disappears entirely and the inner loop over s is a
//     contiguous, vectorizable sweep;
//   * tracks the band extents exactly: `shi` always falls by one (mass pushed
//     above it is provably violating at every remaining observation time and
//     accrues to the viol() sink), `slo` either rises toward the horizon
//     (fixed-horizon series: mass below is provably safe, accruing to safe())
//     or falls (eventual-settlement phase 1, which keeps every recovery path);
//   * never reads outside the live band, so stale cells from two steps ago in
//     the inactive buffer are unreachable by construction.
//
// The scalar is a template parameter and the two instantiations have distinct
// contracts, pinned by tests/test_dp_kernel.cpp:
//
//   * long double — the REFERENCE path. Per-cell gather terms are added in
//     exactly the source-iteration order of the original scatter code
//     (ascending r, then ascending s, then A before h before H), so results
//     are bit-identical to the pre-refactor kernel.
//   * double — the FAST path. Same recurrence in hardware doubles (SIMD-able,
//     half the memory traffic); sink and report accumulators additionally use
//     Neumaier-compensated summation so the band-wide reductions do not lose
//     the deep tails Table 1 cares about.
#pragma once

#include <cstddef>
#include <vector>

#include "core/reach_distribution.hpp"

namespace mh {

/// Accuracy/speed choice surfaced by every DP entry point built on BandedDp.
enum class DpPrecision {
  Reference,  ///< long double, bit-identical to the original scatter kernel
  Fast,       ///< double with compensated reductions; ~1e-14 relative error
};

/// Neumaier-compensated accumulator for the Fast path; a plain sum for the
/// Reference path (whose add order is part of the bit-identity contract).
template <typename Scalar>
struct DpAccum {
  Scalar sum{0};
  Scalar comp{0};

  void add(Scalar x) noexcept {
    if constexpr (sizeof(Scalar) <= sizeof(double)) {
      const Scalar t = sum + x;
      if ((sum >= 0 ? sum : -sum) >= (x >= 0 ? x : -x))
        comp += (sum - t) + x;
      else
        comp += (x - t) + sum;
      sum = t;
    } else {
      sum += x;
    }
  }

  [[nodiscard]] Scalar value() const noexcept {
    if constexpr (sizeof(Scalar) <= sizeof(double)) return sum + comp;
    return sum;
  }
};

template <typename Scalar>
class BandedDp {
 public:
  /// Grid capacity for horizons up to k_max: r in [0, k_max+1], s in
  /// [-k_max, k_max+1]. Both buffers start zeroed.
  explicit BandedDp(std::size_t k_max);

  /// Seed the diagonal s = r from `initial` (which must cover r = 0..k_max);
  /// mass beyond r = k_max and `initial.tail` fold into the viol() sink
  /// (exact: such states keep mu >= 0 through any horizon <= k_max).
  void seed(const ReachPmf& initial);

  /// One Theorem-5 transition onto the band [slo_next, min(r, shi_next)],
  /// r <= rcap_next. Requires shi_next == shi()-1, |slo_next - slo()| <= 1,
  /// rcap_next in {rcap(), rcap()-1} and rcap_next >= 1. A-mass pushed above
  /// shi_next accrues to viol(); when `safe_sink`, unpinned honest mass pushed
  /// below slo_next accrues to safe() (with safe_sink == false the caller must
  /// pass slo_next == slo()-1 so nothing can exit below).
  void step(Scalar pA, Scalar ph, Scalar pH, std::ptrdiff_t slo_next, std::ptrdiff_t shi_next,
            std::ptrdiff_t rcap_next, bool safe_sink);

  /// The Table-1 report: viol() plus all live mass with s >= 0, accumulated
  /// in ascending (r, s) order starting from viol().
  [[nodiscard]] Scalar nonneg_mass() const;

  /// Visit every live cell in ascending (r, s) order: f(r, s, mass).
  template <typename F>
  void for_each_live(F&& f) const {
    for (std::ptrdiff_t r = 0; r <= rcap_; ++r) {
      const Scalar* row = row_ptr(cur_, r);
      const std::ptrdiff_t hi = r < shi_ ? r : shi_;
      for (std::ptrdiff_t s = slo_; s <= hi; ++s) f(r, s, row[s]);
    }
  }

  [[nodiscard]] Scalar viol() const noexcept { return viol_.value(); }
  [[nodiscard]] Scalar safe() const noexcept { return safe_.value(); }
  [[nodiscard]] std::ptrdiff_t rcap() const noexcept { return rcap_; }
  [[nodiscard]] std::ptrdiff_t slo() const noexcept { return slo_; }
  [[nodiscard]] std::ptrdiff_t shi() const noexcept { return shi_; }
  [[nodiscard]] std::ptrdiff_t k() const noexcept { return k_; }

 private:
  /// Row pointer biased so that row[s] addresses column s + k.
  [[nodiscard]] Scalar* row_ptr(std::vector<Scalar>& buf, std::ptrdiff_t r) const noexcept {
    return buf.data() + static_cast<std::size_t>(r) * sdim_ + static_cast<std::size_t>(k_);
  }
  [[nodiscard]] const Scalar* row_ptr(const std::vector<Scalar>& buf,
                                      std::ptrdiff_t r) const noexcept {
    return buf.data() + static_cast<std::size_t>(r) * sdim_ + static_cast<std::size_t>(k_);
  }

  void drain_sinks(Scalar pA, Scalar ph, Scalar pH, std::ptrdiff_t slo_next,
                   std::ptrdiff_t shi_next, bool safe_sink);

  std::ptrdiff_t k_;
  std::size_t sdim_;
  std::vector<Scalar> cur_;
  std::vector<Scalar> nxt_;
  std::ptrdiff_t rcap_ = 0;
  std::ptrdiff_t slo_ = 0;
  std::ptrdiff_t shi_ = 0;
  DpAccum<Scalar> viol_;
  DpAccum<Scalar> safe_;
};

extern template class BandedDp<long double>;
extern template class BandedDp<double>;

}  // namespace mh
