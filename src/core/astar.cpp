#include "core/astar.hpp"

#include <algorithm>
#include <limits>

#include "fork/reach.hpp"
#include "support/check.hpp"

namespace mh {

std::vector<VertexId> astar_extension_plan(const Fork& fork, const CharString& processed,
                                           Symbol next) {
  MH_REQUIRE(next != Symbol::A);
  const std::vector<std::int64_t> reaches = all_reaches(fork, processed);
  const std::int64_t rho = *std::max_element(reaches.begin(), reaches.end());
  MH_ASSERT(rho >= 0);

  std::vector<VertexId> zero, maximal;
  for (VertexId v = 0; v < fork.vertex_count(); ++v) {
    if (reaches[v] == 0) zero.push_back(v);
    if (reaches[v] == rho) maximal.push_back(v);
  }

  if (zero.empty()) {
    // Only possible after a trailing run of A's (every tine's reach was lifted
    // above zero). No decomposition has mu_x(F) = 0, so a single conservative
    // extension of any maximum-reach tine preserves canonicity.
    MH_ASSERT(rho >= 1);
    return {maximal.front()};
  }

  // z1: zero-reach tine diverging earliest from some max-reach tine.
  VertexId z1 = zero.front();
  std::uint32_t best_div = std::numeric_limits<std::uint32_t>::max();
  for (VertexId z : zero)
    for (VertexId r : maximal) {
      const std::uint32_t div = fork.label(fork.lca(z, r));
      if (div < best_div) {
        best_div = div;
        z1 = z;
      }
    }

  if (next == Symbol::h || rho >= 1) return {z1};

  // next = H with rho = 0 (so R = Z): extend the earliest-diverging pair of
  // zero-reach tines; if only one exists, extend it twice — the two new leaves
  // diverge at its head, which is what keeps mu_x pinned at 0 for every x past
  // that head (the second recurrence case of Theorem 5).
  if (zero.size() >= 2) {
    VertexId za = zero[0], zb = zero[1];
    std::uint32_t div = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t i = 0; i < zero.size(); ++i)
      for (std::size_t j = i + 1; j < zero.size(); ++j) {
        const std::uint32_t d = fork.label(fork.lca(zero[i], zero[j]));
        if (d < div) {
          div = d;
          za = zero[i];
          zb = zero[j];
        }
      }
    return {za, zb};
  }
  return {z1, z1};
}

void AStarAdversary::extend_conservatively(VertexId tine, std::uint32_t target_length,
                                           std::uint32_t label) {
  // Pad with adversarial vertices drawn from the tine's reserve (the first
  // adversarial slots after its head), then place the honest leaf. Reserves
  // are per-tine rights, so concurrent extensions may reuse slot labels.
  MH_ASSERT(fork_.depth(tine) < target_length);
  std::uint32_t pads = target_length - 1 - fork_.depth(tine);
  VertexId head = tine;
  for (std::size_t slot = fork_.label(tine) + 1; slot <= w_.size() && pads > 0; ++slot) {
    if (!w_.adversarial(slot)) continue;
    head = fork_.add_vertex(head, static_cast<std::uint32_t>(slot));
    --pads;
  }
  MH_ASSERT_MSG(pads == 0, "conservative extension requires reach >= 0");
  fork_.add_vertex(head, label);
}

void AStarAdversary::step(Symbol b) {
  const auto slot = static_cast<std::uint32_t>(w_.size() + 1);
  if (b == Symbol::A) {
    w_.push_back(b);
    return;
  }
  const std::uint32_t target = fork_.height() + 1;
  for (VertexId tine : astar_extension_plan(fork_, w_, b))
    extend_conservatively(tine, target, slot);
  w_.push_back(b);
}

Fork build_canonical_fork(const CharString& w) {
  AStarAdversary adversary;
  for (Symbol s : w.symbols()) adversary.step(s);
  return adversary.fork();
}

}  // namespace mh
