// The optimal online adversary A* of Figure 4 (Theorem 6): consumes a
// characteristic string one symbol at a time and maintains a *canonical* closed
// fork F for the prefix processed so far, i.e. a fork with
//
//   rho(F) = rho(w)   and   mu_x(F) = mu_x(y) for every decomposition w = xy.
//
// A canonical fork simultaneously witnesses the settlement attack against every
// slot, which is what makes A* "optimal online".
//
// Mechanics per honest symbol (adversarial symbols leave the fork untouched and
// implicitly grow every tine's reserve):
//   * Z = zero-reach tines, R = maximum-reach tines of F;
//   * extend the zero-reach tine z1 that diverges earliest from a max-reach
//     tine; on an H symbol with rho(F) = 0 also extend the matching r1
//     (a second concurrent honest block), doubling up on z1 itself when it is
//     the only zero-reach tine;
//   * if Z is empty (the string ends in a run of A's), extend a max-reach tine.
// Extensions are *conservative* (Definition 15): pad with gap-many adversarial
// vertices drawn from the tine's reserve, then place the honest leaf at
// height(F) + 1.
#pragma once

#include "chars/char_string.hpp"
#include "fork/fork.hpp"

namespace mh {

class AStarAdversary {
 public:
  AStarAdversary() = default;

  /// Feed the next symbol (slot |w|+1 of the string processed so far).
  void step(Symbol b);

  /// The canonical closed fork for the string processed so far.
  [[nodiscard]] const Fork& fork() const noexcept { return fork_; }
  [[nodiscard]] const CharString& processed() const noexcept { return w_; }

 private:
  void extend_conservatively(VertexId tine, std::uint32_t target_length, std::uint32_t label);

  Fork fork_;
  CharString w_;
};

/// Runs A* over the whole string and returns the canonical fork.
Fork build_canonical_fork(const CharString& w);

/// The Figure-4 selection rule, exposed for reuse (the settlement-game port of
/// A* stages the same choices through augmentation): given the closed fork for
/// `processed` and the upcoming honest symbol, returns the tines to extend
/// conservatively — one entry for a single extension, two for the H-with-
/// zero-reach double play (entries may coincide: extend that tine twice).
std::vector<VertexId> astar_extension_plan(const Fork& fork, const CharString& processed,
                                           Symbol next);

}  // namespace mh
