#include "core/theorem9.hpp"

#include <algorithm>
#include <limits>

#include "core/cp.hpp"
#include "fork/balanced.hpp"
#include "support/check.hpp"

namespace mh {

Fork pinch_at(const Fork& fork, VertexId u) {
  const std::uint32_t pivot_depth = fork.depth(u) + 1;
  Fork out;
  for (VertexId v = 1; v < fork.vertex_count(); ++v) {
    const VertexId parent = fork.depth(v) == pivot_depth ? u : fork.parent(v);
    MH_REQUIRE_MSG(fork.label(v) > fork.label(parent),
                   "pinch would break label monotonicity");
    const VertexId copied = out.add_vertex(parent, fork.label(v));
    MH_ASSERT(copied == v);
    MH_ASSERT(out.depth(v) == fork.depth(v));
  }
  return out;
}

namespace {

struct TinePair {
  VertexId t1 = kRoot;
  VertexId t2 = kRoot;
  std::size_t divergence = 0;
};

/// Selects the witness pair per (27)-(29): maximal slot divergence, then
/// minimal label distance, then maximal length(t1).
std::optional<TinePair> select_pair(const Fork& fork, const CharString& w, std::size_t k) {
  std::vector<VertexId> viable;
  for (VertexId v : fork.all_vertices())
    if (is_viable_tine(fork, w, v)) viable.push_back(v);

  std::optional<TinePair> best;
  std::size_t best_gap = std::numeric_limits<std::size_t>::max();
  std::uint32_t best_len = 0;
  for (VertexId a : viable)
    for (VertexId b : viable) {
      if (fork.label(a) > fork.label(b)) continue;
      const VertexId meet = fork.lca(a, b);
      const std::size_t div = fork.label(a) - fork.label(meet);
      if (div < k + 1) continue;
      const std::size_t gap = fork.label(b) - fork.label(a);
      const std::uint32_t len = fork.depth(a);
      const bool better = !best || div > best->divergence ||
                          (div == best->divergence && gap < best_gap) ||
                          (div == best->divergence && gap == best_gap && len > best_len);
      if (better) {
        best = TinePair{a, b, div};
        best_gap = gap;
        best_len = len;
      }
    }
  return best;
}

}  // namespace

std::optional<Theorem9Witness> theorem9_balanced_fork(const Fork& fork, const CharString& w,
                                                      std::size_t k) {
  MH_REQUIRE(k >= 1);
  const std::optional<TinePair> pair = select_pair(fork, w, k);
  if (!pair) return std::nullopt;
  const VertexId u = fork.lca(pair->t1, pair->t2);
  const std::size_t alpha = fork.label(u);

  // The surgery needs u to be the unique deepest vertex among labels <= alpha
  // (Eq. (30)); guaranteed for divergence-maximal forks, checked here.
  for (VertexId v : fork.all_vertices())
    if (fork.label(v) <= alpha && v != u && fork.depth(v) >= fork.depth(u))
      return std::nullopt;

  // beta: first honest index at or after l(t2) (T+1 if none).
  std::size_t beta = w.size() + 1;
  for (std::size_t h = fork.label(pair->t2); h <= w.size(); ++h)
    if (h >= 1 && w.honest(h)) {
      beta = h;
      break;
    }
  if (beta < alpha + k + 1) return std::nullopt;  // |y| = beta-alpha-1 >= k fails

  // Pinch at u so every long tine passes through it.
  Fork pinched;
  {
    const std::uint32_t pivot_depth = fork.depth(u) + 1;
    for (VertexId v = 1; v < fork.vertex_count(); ++v) {
      const VertexId parent = fork.depth(v) == pivot_depth ? u : fork.parent(v);
      if (fork.label(v) <= fork.label(parent)) return std::nullopt;  // pinch illegal
      pinched.add_vertex(parent, fork.label(v));
    }
  }

  // Trimmed tine heads: deepest vertices on t1/t2 with labels <= beta-1.
  const auto trim_head = [&](VertexId t) {
    VertexId v = t;
    while (v != kRoot && pinched.label(v) > beta - 1) v = pinched.parent(v);
    return v;
  };
  const VertexId head1 = trim_head(pair->t1);
  const VertexId head2 = trim_head(pair->t2);
  const std::uint32_t target = std::min(pinched.depth(head1), pinched.depth(head2));
  if (target <= pinched.depth(u)) return std::nullopt;

  // Walk up the longer head until its length matches; the removed vertices
  // must all be adversarial (Eq. (35) guarantees it for maximal forks).
  const auto shorten = [&](VertexId v) -> std::optional<VertexId> {
    while (pinched.depth(v) > target) {
      const std::uint32_t l = pinched.label(v);
      if (l >= 1 && l <= w.size() && w.honest(l)) return std::nullopt;
      v = pinched.parent(v);
    }
    return v;
  };
  const std::optional<VertexId> tine1 = shorten(head1);
  const std::optional<VertexId> tine2 = shorten(head2);
  if (!tine1 || !tine2 || *tine1 == *tine2) return std::nullopt;

  // Keep: labels <= beta-1, depth <= target unless on one of the two witness
  // tines, and only vertices whose parent survives (subtree closure).
  std::vector<bool> on_tine(pinched.vertex_count(), false);
  for (VertexId v = *tine1;; v = pinched.parent(v)) {
    on_tine[v] = true;
    if (v == kRoot) break;
  }
  for (VertexId v = *tine2;; v = pinched.parent(v)) {
    on_tine[v] = true;
    if (v == kRoot) break;
  }

  Fork out;
  std::vector<VertexId> remap(pinched.vertex_count(), kNoVertex);
  remap[kRoot] = kRoot;
  VertexId new_t1 = kRoot, new_t2 = kRoot;
  for (VertexId v = 1; v < pinched.vertex_count(); ++v) {
    if (pinched.label(v) > beta - 1) continue;
    if (pinched.depth(v) > target && !on_tine[v]) continue;
    const VertexId parent = remap[pinched.parent(v)];
    if (parent == kNoVertex) continue;  // detached by an earlier drop
    remap[v] = out.add_vertex(parent, pinched.label(v));
    if (v == *tine1) new_t1 = remap[v];
    if (v == *tine2) new_t2 = remap[v];
  }
  if (new_t1 == kRoot || new_t2 == kRoot) return std::nullopt;

  const CharString xy = w.prefix(beta - 1);
  if (out.height() != target) return std::nullopt;
  if (!is_x_balanced(out, xy, alpha)) return std::nullopt;

  Theorem9Witness witness;
  witness.x_len = alpha;
  witness.y_len = beta - alpha - 1;
  witness.balanced = std::move(out);
  return witness;
}

}  // namespace mh
