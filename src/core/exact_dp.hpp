// The exact settlement-probability engine of Section 6.6 (the Table 1 engine).
//
// It evolves the joint law of (rho(x y_t), mu_x(y_t)) under the Theorem-5
// recurrence, seeded with the reach law of x (X_inf for |x| -> infinity, as in
// Table 1, or any explicit ReachPmf). The reported quantity is
//
//     P(k) = Pr[ mu_x(y) >= 0 ],  |y| = k,
//
// the probability that the optimal adversary holds two maximum-length chains
// diverging before slot |x|+1 at the close of the k-th subsequent slot.
//
// Exactness + O(K^3) total cost for the whole series come from two lossless
// state reductions relative to the horizon K:
//   * margin sinks: a state with mu > K - t can never drop below 0 by the
//     horizon (it violates at *every* remaining k) and one with mu < -(K - t)
//     can never recover (violates at none); both leave the live state space;
//   * reach collapse: the recurrence reads rho only through "rho > 0 at
//     mu = 0", and a state with rho > K - t keeps rho > 0 through the horizon,
//     so all such reaches form one equivalence class.
// The X_inf tail above K is exactly the always-violating mass beta^{K+1}.
// Both entry points run on the banded gather kernel (core/dp_kernel.hpp) and
// take a DpPrecision: the long double Reference path reproduces the original
// dense scatter implementation bit for bit; the double Fast path trades the
// last few digits (relative error ~1e-14, pinned by tests/test_dp_kernel.cpp)
// for SIMD-able arithmetic and half the memory traffic.
#pragma once

#include <cstddef>
#include <vector>

#include "chars/bernoulli.hpp"
#include "core/dp_kernel.hpp"
#include "core/reach_distribution.hpp"

namespace mh {

enum class InitialReach {
  Zero,        ///< rho(x) = 0 (e.g. x = eps): P(k) conditioned on a fresh start
  Stationary,  ///< rho(x) ~ X_inf (the |x| -> infinity regime of Table 1)
};

struct SettlementSeries {
  /// violation[k] = P(k) for k = 0..k_max (violation[0] = 1: mu_x(eps) >= 0).
  std::vector<long double> violation;
  /// Mass that was provably violating at every k <= k_max (diagnostic).
  long double always_violating = 0.0L;
  /// Mass that provably violates at no k <= k_max (diagnostic).
  long double never_violating = 0.0L;
};

/// Full series P(0..k_max) for the i.i.d. law. O(k_max^3) time, O(k_max^2) space.
SettlementSeries exact_settlement_series(const SymbolLaw& law, std::size_t k_max,
                                         InitialReach init = InitialReach::Stationary,
                                         DpPrecision precision = DpPrecision::Reference);

/// Same, seeded with an arbitrary initial reach law (e.g. X_m for finite |x|).
/// `initial.mass` must cover r = 0..k_max; excess mass and `initial.tail` are
/// folded into the always-violating sink (exact, since mu_0 = rho_0 > k_max).
SettlementSeries exact_settlement_series(const SymbolLaw& law, std::size_t k_max,
                                         const ReachPmf& initial,
                                         DpPrecision precision = DpPrecision::Reference);

/// Single-point convenience: the Table 1 entry for (law, k).
long double settlement_violation_probability(const SymbolLaw& law, std::size_t k,
                                             InitialReach init = InitialReach::Stationary,
                                             DpPrecision precision = DpPrecision::Reference);

/// The full game value of the settlement game (Definition 5 semantics): the
/// probability that the optimal adversary wins at SOME observation time
/// >= k, over the infinite future:  Pr[exists j >= k : mu_x(y_j) >= 0].
///
/// Computation: the joint (rho, mu) law is evolved exactly to step k; beyond
/// the first hitting time of mu = 0 the pinning cases never apply while
/// mu < 0, so the remaining process is a bare +-1 walk and the classical
/// gambler's ruin gives Pr[return to 0 from -m] = beta^m in closed form.
long double eventual_settlement_insecurity(const SymbolLaw& law, std::size_t k,
                                           InitialReach init = InitialReach::Stationary,
                                           DpPrecision precision = DpPrecision::Reference);

}  // namespace mh
