// Slot settlement (Definition 3), the settlement game, and the string-level
// violation predicates the evaluation section computes.
//
// The paper reports (Table 1) the probability that mu_x(y) >= 0 for |y| = k,
// i.e. that the optimal adversary holds two maximum-length chains diverging
// before slot s = |x|+1 precisely when the k-th slot after s concludes. We
// expose that predicate, the "within horizon" variant (a violation at any
// time >= k before the end of the string), and fork-level structural checks.
#pragma once

#include "chars/char_string.hpp"
#include "fork/fork.hpp"

namespace mh {

/// Do the two maximum-length tines disagree about slot s (different vertices
/// labeled s, or only one of them carries such a vertex)?
bool diverge_prior_to(const Fork& fork, VertexId t1, VertexId t2, std::size_t s);

/// Fork-level violation: F contains two maximum-length tines diverging prior
/// to s (Definition 3 applied to this single fork).
bool settlement_violation_in_fork(const Fork& fork, std::size_t s);

/// Table-1 semantics: mu_x(y) >= 0 for x = w_1..w_{s-1} and |y| = k.
/// Requires s - 1 + k <= |w|.
bool margin_violation_at(const CharString& w, std::size_t s, std::size_t k);

/// Game semantics over the observed horizon: mu_x(y_j) >= 0 for some
/// j in [k, |w| - s + 1] (the adversary may win at any time >= s + k - 1).
bool margin_violation_within(const CharString& w, std::size_t s, std::size_t k);

/// Sufficient settlement condition via Theorem 3 + Eq. (1): a uniquely honest
/// Catalan slot in [s, s+k-1] forces every later viable chain through a unique
/// vertex, settling slot s with confirmation depth k.
bool settled_via_catalan(const CharString& w, std::size_t s, std::size_t k);

}  // namespace mh
