#include "core/reach_distribution.hpp"

#include <cmath>

#include "support/check.hpp"

namespace mh {

long double ReachPmf::total() const {
  long double sum = tail;
  for (long double m : mass) sum += m;
  return sum;
}

long double ReachPmf::upper_tail(std::size_t r) const {
  long double sum = tail;
  for (std::size_t i = r + 1; i < mass.size(); ++i) sum += mass[i];
  return sum;
}

ReachPmf finite_reach_distribution(const SymbolLaw& law, std::size_t m, std::size_t cap) {
  law.validate();
  const long double up = static_cast<long double>(law.pA);
  const long double down = 1.0L - up;

  // The tail bucket stays a genuine ">cap" class only when re-entry below the
  // cap is impossible within the remaining steps. Callers pick cap >= m, where
  // the tail stays empty; enforce that once, up front (the bound is a pure
  // function of the arguments, not of the per-step state).
  MH_REQUIRE_MSG(cap >= m, "cap must be at least m so the tail bucket stays exact");

  ReachPmf pmf;
  pmf.mass.assign(cap + 1, 0.0L);
  pmf.mass[0] = 1.0L;  // rho(eps) = 0
  std::vector<long double> next(cap + 1);
  for (std::size_t step = 0; step < m; ++step) {
    std::fill(next.begin(), next.end(), 0.0L);
    long double next_tail = pmf.tail;  // tail never descends below cap in one step
    for (std::size_t r = 0; r <= cap; ++r) {
      const long double q = pmf.mass[r];
      if (q == 0.0L) continue;
      if (r + 1 <= cap)
        next[r + 1] += q * up;
      else
        next_tail += q * up;
      next[r == 0 ? 0 : r - 1] += q * down;
    }
    pmf.mass.swap(next);
    pmf.tail = next_tail;
  }
  return pmf;
}

long double reach_beta(const SymbolLaw& law) {
  law.validate();
  MH_REQUIRE_MSG(law.pA < 0.5, "beta < 1 requires an honest majority of slots");
  return static_cast<long double>(law.pA) / (1.0L - static_cast<long double>(law.pA));
}

ReachPmf stationary_reach_distribution(const SymbolLaw& law, std::size_t cap) {
  const long double beta = reach_beta(law);
  ReachPmf pmf;
  pmf.mass.assign(cap + 1, 0.0L);
  long double power = 1.0L;
  for (std::size_t r = 0; r <= cap; ++r) {
    pmf.mass[r] = (1.0L - beta) * power;
    power *= beta;
  }
  pmf.tail = power;  // beta^{cap+1}
  return pmf;
}

bool pmf_dominated(const ReachPmf& lower, const ReachPmf& upper, long double tol) {
  // One suffix-sum pass instead of recomputing both tails from scratch at
  // every r: scan r downward, growing each running tail by one mass term.
  const std::size_t size = std::max(lower.mass.size(), upper.mass.size());
  long double lo = lower.tail, hi = upper.tail;
  for (std::size_t r = size; r-- > 0;) {
    if (r < lower.mass.size()) lo += lower.mass[r];
    if (r < upper.mass.size()) hi += upper.mass[r];
    if (lo > hi + tol) return false;
  }
  return true;
}

}  // namespace mh
