#include "core/settlement_game.hpp"

#include <algorithm>

#include "core/astar.hpp"
#include "core/settlement.hpp"
#include "fork/balanced.hpp"
#include "fork/reach.hpp"
#include "support/check.hpp"

namespace mh {

namespace {

/// The challenger's consistent tie-breaking rule under A0': smallest
/// (head label, vertex id) among maximal tines — deterministic for any view.
VertexId consistent_choice(const Fork& fork, const std::vector<VertexId>& candidates) {
  VertexId best = candidates.front();
  for (VertexId v : candidates)
    if (fork.label(v) < fork.label(best) ||
        (fork.label(v) == fork.label(best) && v < best))
      best = v;
  return best;
}

}  // namespace

Fork play_settlement_game(const CharString& w, ForkAdversary& adversary,
                          const GameOptions& options) {
  Fork fork;  // A_0: the genesis-only fork
  for (std::size_t t = 1; t <= w.size(); ++t) {
    if (w.honest(t)) {
      // Candidates are the maximal tines of A_{t-1}: concurrent leaders all
      // see the same fork and may extend the same path.
      const std::vector<VertexId> candidates = fork.longest_tines();
      const std::size_t multiplicity =
          w.at(t) == Symbol::h
              ? 1
              : std::max<std::size_t>(1, adversary.honest_multiplicity(t, fork, w));
      const VertexId consistent = consistent_choice(fork, candidates);
      for (std::size_t index = 0; index < multiplicity; ++index) {
        VertexId tip = consistent;
        if (!options.consistent_tie_breaking) {
          tip = adversary.choose_tip(t, index, candidates, fork, w);
          MH_REQUIRE_MSG(std::find(candidates.begin(), candidates.end(), tip) !=
                             candidates.end(),
                         "the adversary must pick a maximal tine of A_{t-1}");
        }
        fork.add_vertex(tip, static_cast<std::uint32_t>(t));
      }
    }
    adversary.augment(t, fork, w);
  }
  return fork;
}

bool adversary_wins(const Fork& fork, const CharString& w, std::size_t s, std::size_t k) {
  MH_REQUIRE(s >= 1 && k >= 1);
  if (w.size() < s + k) return false;  // no qualifying observation time yet
  return settlement_violation_in_fork(fork, s);
}

// ---------------------------------------------------------------------------
// GreedyBalanceStrategy

std::size_t GreedyBalanceStrategy::honest_multiplicity(std::size_t, const Fork& fork,
                                                       const CharString&) {
  // Double up whenever two maximal tines diverge at the root (each leader
  // extends one branch and the balance survives the slot), or when the fork
  // is still trivial (two children of genesis found the two branches).
  const std::vector<VertexId> heads = fork.longest_tines();
  if (heads.size() == 1 && heads.front() == kRoot) return 2;
  for (std::size_t a = 0; a < heads.size(); ++a)
    for (std::size_t b = a + 1; b < heads.size(); ++b)
      if (fork.lca(heads[a], heads[b]) == kRoot) return 2;
  return 1;
}

VertexId GreedyBalanceStrategy::choose_tip(std::size_t, std::size_t index,
                                           const std::vector<VertexId>& candidates,
                                           const Fork& fork, const CharString&) {
  if (index == 0) return candidates.front();
  for (VertexId v : candidates)
    if (fork.lca(candidates.front(), v) == kRoot) return v;
  return candidates.front();
}

void GreedyBalanceStrategy::augment(std::size_t slot, Fork& fork, const CharString& w) {
  if (!w.adversarial(slot)) return;
  // Find the deepest tine and the deepest root-disjoint rival; extend the
  // rival with one block of this slot if it lags (or both if level).
  const std::vector<VertexId> all = fork.all_vertices();
  VertexId deepest = kRoot;
  for (VertexId v : all)
    if (fork.depth(v) > fork.depth(deepest)) deepest = v;
  VertexId rival = kNoVertex;
  for (VertexId v : all) {
    if (v == kRoot || fork.lca(v, deepest) != kRoot) continue;
    if (rival == kNoVertex || fork.depth(v) > fork.depth(rival)) rival = v;
  }
  const auto slot32 = static_cast<std::uint32_t>(slot);
  if (rival == kNoVertex) {
    // No second branch yet: found one with a block of this slot on genesis.
    fork.add_vertex(kRoot, slot32);
    return;
  }
  if (fork.depth(rival) < fork.depth(deepest) && fork.label(rival) < slot32) {
    fork.add_vertex(rival, slot32);
  } else if (fork.depth(rival) == fork.depth(deepest)) {
    if (fork.label(rival) < slot32) fork.add_vertex(rival, slot32);
    if (fork.label(deepest) < slot32) fork.add_vertex(deepest, slot32);
  }
}

// ---------------------------------------------------------------------------
// AStarGameStrategy

std::size_t AStarGameStrategy::honest_multiplicity(std::size_t slot, const Fork& fork,
                                                   const CharString& w) {
  return astar_extension_plan(fork, w.prefix(slot - 1), w.at(slot)).size();
}

VertexId AStarGameStrategy::choose_tip(std::size_t, std::size_t index,
                                       const std::vector<VertexId>& candidates, const Fork&,
                                       const CharString&) {
  if (index < planned_tips_.size()) return planned_tips_[index];
  return candidates.front();
}

void AStarGameStrategy::augment(std::size_t slot, Fork& fork, const CharString& w) {
  planned_tips_.clear();
  if (slot + 1 > w.size() || w.adversarial(slot + 1)) return;
  // Stage the Figure-4 extension(s) for the upcoming honest slot: pad the
  // selected tine(s) to maximal length with adversarial labels <= slot, so
  // the challenger's candidates include exactly the heads A* wants extended.
  const CharString processed = w.prefix(slot);
  const std::uint32_t target = fork.height();
  for (VertexId tine : astar_extension_plan(fork, processed, w.at(slot + 1)))
    planned_tips_.push_back(pad_with_adversarial(fork, processed, tine, target));
}

}  // namespace mh
