#include "core/relative_margin.hpp"

#include "support/check.hpp"

namespace mh {

MarginProcess::MarginProcess(std::int64_t initial_rho)
    : rho_(initial_rho), mu_(initial_rho) {
  MH_REQUIRE(initial_rho >= 0);
}

void MarginProcess::step(Symbol b) {
  if (b == Symbol::A) {
    ++rho_;
    ++mu_;
    return;
  }
  // The margin rule reads the pre-step rho(xy), so update mu first.
  if (mu_ == 0 && (rho_ > 0 || b == Symbol::H)) {
    // mu stays pinned at zero: either a spare high-reach tine keeps a second
    // maximal chain alive (rho > 0), or the multiply honest slot itself forks
    // into two concurrent maximal chains (rho = 0, b = H).
  } else {
    --mu_;
  }
  rho_ = rho_ > 0 ? rho_ - 1 : 0;
}

std::int64_t rho_of(const CharString& w) {
  MarginProcess p;
  for (Symbol s : w.symbols()) p.step(s);
  return p.rho();
}

std::vector<std::int64_t> rho_prefixes(const CharString& w) {
  std::vector<std::int64_t> out;
  out.reserve(w.size() + 1);
  MarginProcess p;
  out.push_back(p.rho());
  for (Symbol s : w.symbols()) {
    p.step(s);
    out.push_back(p.rho());
  }
  return out;
}

std::int64_t relative_margin_recurrence(const CharString& w, std::size_t x_len) {
  return margin_trajectory(w, x_len).back();
}

std::vector<std::int64_t> margin_trajectory(const CharString& w, std::size_t x_len) {
  MH_REQUIRE(x_len <= w.size());
  // Advance rho through x, then track (rho, mu) jointly through y.
  MarginProcess prefix;
  for (std::size_t t = 1; t <= x_len; ++t) prefix.step(w.at(t));

  MarginProcess p(prefix.rho());
  std::vector<std::int64_t> out;
  out.reserve(w.size() - x_len + 1);
  out.push_back(p.mu());
  for (std::size_t t = x_len + 1; t <= w.size(); ++t) {
    p.step(w.at(t));
    out.push_back(p.mu());
  }
  return out;
}

}  // namespace mh
