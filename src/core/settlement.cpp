#include "core/settlement.hpp"

#include <optional>

#include "core/catalan.hpp"
#include "core/relative_margin.hpp"
#include "support/check.hpp"

namespace mh {

namespace {

/// The vertex labeled s on the tine ending at t, if any.
std::optional<VertexId> slot_vertex_on_tine(const Fork& fork, VertexId t, std::size_t s) {
  for (VertexId v = t;; v = fork.parent(v)) {
    if (fork.label(v) == s) return v;
    if (v == kRoot || fork.label(v) < s) return std::nullopt;
  }
}

}  // namespace

bool diverge_prior_to(const Fork& fork, VertexId t1, VertexId t2, std::size_t s) {
  const std::optional<VertexId> v1 = slot_vertex_on_tine(fork, t1, s);
  const std::optional<VertexId> v2 = slot_vertex_on_tine(fork, t2, s);
  if (!v1 && !v2) return false;  // both chains skip slot s: they agree about it
  return v1 != v2;
}

bool settlement_violation_in_fork(const Fork& fork, std::size_t s) {
  const std::vector<VertexId> heads = fork.longest_tines();
  for (std::size_t a = 0; a < heads.size(); ++a)
    for (std::size_t b = a + 1; b < heads.size(); ++b)
      if (diverge_prior_to(fork, heads[a], heads[b], s)) return true;
  return false;
}

bool margin_violation_at(const CharString& w, std::size_t s, std::size_t k) {
  MH_REQUIRE(s >= 1 && k >= 1);
  MH_REQUIRE_MSG(s - 1 + k <= w.size(), "string too short for the requested (s, k)");
  const std::vector<std::int64_t> trajectory = margin_trajectory(w, s - 1);
  return trajectory[k] >= 0;
}

bool margin_violation_within(const CharString& w, std::size_t s, std::size_t k) {
  MH_REQUIRE(s >= 1 && k >= 1);
  MH_REQUIRE_MSG(s - 1 + k <= w.size(), "string too short for the requested (s, k)");
  const std::vector<std::int64_t> trajectory = margin_trajectory(w, s - 1);
  for (std::size_t j = k; j < trajectory.size(); ++j)
    if (trajectory[j] >= 0) return true;
  return false;
}

bool settled_via_catalan(const CharString& w, std::size_t s, std::size_t k) {
  MH_REQUIRE(s >= 1 && k >= 1);
  return first_uniquely_honest_catalan(w, s, s + k - 1) != 0;
}

}  // namespace mh
