// The (D, T; s, k)-settlement game of Section 2.2, played at the fork level.
//
// The challenger executes the honest longest-chain plays; a ForkAdversary
// chooses (a) how many honest vertices a multiply honest slot creates,
// (b) which maximum-length tine each one extends (the A0 tie-breaking lever),
// and (c) arbitrary adversarial augmentations between slots. Under the
// consistent tie-breaking axiom A0' the challenger overrides (b): every
// honest vertex of a slot extends the same, deterministically chosen tine.
//
// The game is the semantic anchor for everything else: A* is one strategy
// (the optimal one, Theorem 6), the protocol simulator realizes the same game
// over a network, and the recurrence of Theorem 5 prices every strategy.
#pragma once

#include <cstddef>
#include <vector>

#include "chars/char_string.hpp"
#include "fork/fork.hpp"

namespace mh {

class ForkAdversary {
 public:
  virtual ~ForkAdversary() = default;

  /// Number of honest vertices for an H slot (>= 1; h slots are fixed at 1).
  virtual std::size_t honest_multiplicity(std::size_t /*slot*/, const Fork&,
                                          const CharString&) {
    return 1;
  }

  /// Under A0: which maximum-length tine does honest vertex `index` of this
  /// slot extend? `candidates` holds the heads of all maximal tines.
  virtual VertexId choose_tip(std::size_t /*slot*/, std::size_t /*index*/,
                              const std::vector<VertexId>& candidates, const Fork&,
                              const CharString&) {
    return candidates.front();
  }

  /// Adversarial augmentation after slot `slot` (game step 3(b)/(c)): may add
  /// vertices labeled with adversarial slots <= slot. The challenger validates
  /// nothing here; tests do.
  virtual void augment(std::size_t /*slot*/, Fork&, const CharString&) {}
};

struct GameOptions {
  /// A0' (consistent tie-breaking): the challenger picks the extension tine
  /// deterministically (min head hash stand-in: smallest (depth, label, id))
  /// and all concurrent honest vertices extend it.
  bool consistent_tie_breaking = false;
};

/// Plays the game over the whole string; returns the final fork A_T.
Fork play_settlement_game(const CharString& w, ForkAdversary& adversary,
                          const GameOptions& options = {});

/// Did the adversary win the (s, k)-settlement game with this final fork?
/// (Two maximum-length tines diverging prior to s, per Definition 3; callers
/// wanting the any-time variant replay prefixes.)
bool adversary_wins(const Fork& fork, const CharString& w, std::size_t s, std::size_t k);

// ---------------------------------------------------------------------------
// Strategies

/// Plays greedily for two long diverging chains: doubles up on multiply honest
/// slots whenever the two deepest tines are level, splits concurrent leaders
/// across them, and spends adversarial slots re-leveling the shorter branch.
/// A fork-level mirror of the protocol BalanceAttacker.
class GreedyBalanceStrategy : public ForkAdversary {
 public:
  std::size_t honest_multiplicity(std::size_t slot, const Fork& fork,
                                  const CharString& w) override;
  VertexId choose_tip(std::size_t slot, std::size_t index,
                      const std::vector<VertexId>& candidates, const Fork& fork,
                      const CharString& w) override;
  void augment(std::size_t slot, Fork& fork, const CharString& w) override;
};

/// The optimal adversary A* expressed through the game interface: pads the
/// Figure-4 zero-reach tine(s) to maximal length during augmentation so the
/// challenger's next honest vertex lands exactly where A* wants it. Playing
/// this strategy through the game must reproduce the canonical fork margins
/// (tested against Theorem 5/6).
class AStarGameStrategy : public ForkAdversary {
 public:
  std::size_t honest_multiplicity(std::size_t slot, const Fork& fork,
                                  const CharString& w) override;
  VertexId choose_tip(std::size_t slot, std::size_t index,
                      const std::vector<VertexId>& candidates, const Fork& fork,
                      const CharString& w) override;
  void augment(std::size_t slot, Fork& fork, const CharString& w) override;

 private:
  /// Tines padded during the last augmentation, in extension order.
  std::vector<VertexId> planned_tips_;
};

}  // namespace mh
