// Appendix A: common-prefix violations imply balanced forks, proven without
// Catalan slots. The centerpiece is Theorem 9's constructive fork surgery:
// given a fork whose (viable) slot divergence is at least k+1, produce a
// decomposition w = xyz with |y| >= k and an x-balanced fork for xy.
//
// The surgery follows the proof:
//   1. pick a viable tine pair (t1, t2) maximizing the slot divergence (27),
//      then minimizing |l(t2) - l(t1)| (28), then maximizing length(t1) (29);
//   2. let u = t1 /\ t2, alpha = l(u), and beta = the first honest index at or
//      after l(t2); x = w_1..w_alpha, y = w_{alpha+1}..w_{beta-1};
//   3. "pinch" the fork at u (redirect every vertex of depth depth(u)+1 to
//      hang from u) — legal because maximality forces u to be the unique
//      deepest vertex of the x-prefix;
//   4. restrict to labels <= beta-1, drop subtrees deeper than the shorter of
//      the two divergent tines, and trim the longer tine's trailing
//      adversarial vertices; the result is x-balanced.
//
// The construction is sound for any fork (the result, when produced, is a
// verified x-balanced fork); completeness — that it succeeds whenever a
// k-CP^slot violation exists — holds for divergence-maximal forks, which is
// what the theorem quantifies over.
#pragma once

#include <optional>

#include "chars/char_string.hpp"
#include "fork/fork.hpp"

namespace mh {

/// The pinch operation F -> F^{|>u<|}: every edge toward a vertex of depth
/// depth(u)+1 is redirected to originate from u. Depths are preserved.
/// Requires every vertex at depth depth(u)+1 to carry a label > l(u)
/// (otherwise the result would not be a fork); throws when violated.
Fork pinch_at(const Fork& fork, VertexId u);

struct Theorem9Witness {
  std::size_t x_len = 0;  ///< alpha = |x|
  std::size_t y_len = 0;  ///< |y| >= k
  Fork balanced;          ///< the x-balanced fork for xy
};

/// Theorem 9: if the fork contains a pair of viable tines with slot
/// divergence >= k+1, construct the decomposition and the x-balanced fork.
/// Returns nullopt when no such pair exists or when the given fork is not
/// divergence-maximal enough for the surgery's invariants to hold.
std::optional<Theorem9Witness> theorem9_balanced_fork(const Fork& fork, const CharString& w,
                                                      std::size_t k);

}  // namespace mh
