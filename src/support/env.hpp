// Strict environment-knob parsing, shared by every MH_* env switch.
//
// The repo's knobs used to be parsed ad hoc: the bench harness treated
// "false" and "off" as enabled, and the numeric knobs (MH_THREADS,
// MH_OBS_BENCH_REPS, ...) silently fell back on garbage — a typo like
// MH_THREADS=fuor ran the sweep at the default width and nobody noticed.
// These parsers accept exactly the documented forms and throw
// std::invalid_argument (naming the variable and the offending value) on
// anything else. Unset or empty always means "use the fallback".
#pragma once

#include <cstddef>

namespace mh::env {

/// Boolean knob: unset/"" -> false; "1"/"true"/"on"/"yes" -> true;
/// "0"/"false"/"off"/"no" -> false (case-insensitive). Anything else throws.
[[nodiscard]] bool flag(const char* name);

/// Non-negative integer knob: unset/"" -> fallback; otherwise the value must
/// be plain digits (no sign, no suffix) and >= min_value, else throws.
[[nodiscard]] std::size_t size(const char* name, std::size_t fallback,
                               std::size_t min_value = 0);

/// Positive real knob: unset/"" -> fallback; otherwise the value must parse
/// fully as a finite number > 0, else throws.
[[nodiscard]] double positive_number(const char* name, double fallback);

/// Enumerated-token knob: unset/"" -> fallback; otherwise the value must
/// match one of the `count` tokens in `choices` (case-insensitive), else
/// throws listing every accepted token. Returns the matched index.
[[nodiscard]] std::size_t choice(const char* name, const char* const* choices,
                                 std::size_t count, std::size_t fallback);

}  // namespace mh::env
