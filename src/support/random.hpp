// Deterministic, fast PRNG for simulations: xoshiro256** seeded via splitmix64.
//
// All experiments in this library take explicit seeds so every number in
// EXPERIMENTS.md is reproducible bit-for-bit. The generator satisfies the
// UniformRandomBitGenerator concept, so it composes with <random> distributions,
// but the helpers below (uniform / bernoulli / geometric) avoid libstdc++'s
// distribution objects for cross-platform reproducibility.
#pragma once

#include <cstdint>
#include <limits>

namespace mh {

/// splitmix64: used for seed expansion (public domain algorithm by S. Vigna).
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256**: the workhorse generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0xdeadbeefULL) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Uniform integer in [0, n). Unbiased via rejection (n must be > 0).
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Derive an independent child generator (for per-thread / per-experiment streams).
  constexpr Rng split() noexcept { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Sample from a geometric law Pr[X = k] = (1-beta) * beta^k, k = 0, 1, 2, ...
/// (the shape of the dominant reach distribution X_inf in Eq. (9) of the paper).
std::uint64_t sample_geometric(Rng& rng, double beta);

}  // namespace mh
