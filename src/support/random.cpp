#include "support/random.hpp"

#include <cmath>

#include "support/check.hpp"

namespace mh {

std::uint64_t sample_geometric(Rng& rng, double beta) {
  MH_REQUIRE(beta >= 0.0 && beta < 1.0);
  if (beta == 0.0) return 0;
  // Inversion: X = floor(log(U) / log(beta)) has the desired law.
  const double u = 1.0 - rng.uniform();  // in (0, 1]
  const double x = std::floor(std::log(u) / std::log(beta));
  return x < 0.0 ? 0 : static_cast<std::uint64_t>(x);
}

}  // namespace mh
