// Lightweight contract checking used across the library.
//
// MH_REQUIRE is for preconditions on public APIs: it throws std::invalid_argument
// so callers (tests, examples) can observe and recover from misuse.
// MH_ASSERT is for internal invariants: it throws std::logic_error, signalling a
// bug in this library rather than in the caller.
#pragma once

#include <stdexcept>
#include <string>

namespace mh {

[[noreturn]] inline void require_failed(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  throw std::invalid_argument(std::string("requirement failed: ") + expr + " at " + file + ":" +
                              std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}

[[noreturn]] inline void assert_failed(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  throw std::logic_error(std::string("internal invariant failed: ") + expr + " at " + file + ":" +
                         std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}

}  // namespace mh

#define MH_REQUIRE(expr)                                       \
  do {                                                         \
    if (!(expr)) ::mh::require_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MH_REQUIRE_MSG(expr, msg)                                \
  do {                                                           \
    if (!(expr)) ::mh::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define MH_ASSERT(expr)                                       \
  do {                                                        \
    if (!(expr)) ::mh::assert_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MH_ASSERT_MSG(expr, msg)                                \
  do {                                                          \
    if (!(expr)) ::mh::assert_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
