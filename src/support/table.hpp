// Plain-text table rendering used by the bench harnesses to print rows in the
// same layout the paper's tables use (aligned columns, scientific notation of
// the form 1.23E-045 matching Table 1's formatting).
#pragma once

#include <string>
#include <vector>

namespace mh {

/// Format like the paper's Table 1: "5.70E-054" (two fractional digits,
/// three exponent digits, capital E).
std::string paper_scientific(long double value);

/// Fixed-point with the given number of fractional digits.
std::string fixed(double value, int digits);

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns; every row is padded to the header width.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mh
