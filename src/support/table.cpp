#include "support/table.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/check.hpp"

namespace mh {

std::string paper_scientific(long double value) {
  MH_REQUIRE(value >= 0.0L);
  if (value == 0.0L) return "0.00E+000";
  int exponent = static_cast<int>(std::floor(std::log10(static_cast<double>(value))));
  long double mantissa = value / powl(10.0L, exponent);
  // Guard against log10 rounding placing the mantissa outside [1, 10).
  if (mantissa >= 10.0L) {
    mantissa /= 10.0L;
    ++exponent;
  } else if (mantissa < 1.0L) {
    mantissa *= 10.0L;
    --exponent;
  }
  // Rounding the mantissa to two digits can push it to 10.00.
  if (mantissa > 9.995L) {
    mantissa = 1.0L;
    ++exponent;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2Lf%c%03d", mantissa, 'E', exponent);
  // snprintf lacks a signed-3-digit-exponent conversion; fix the sign by hand.
  std::string mant(buf, 4);  // "X.YZ"
  std::snprintf(buf, sizeof buf, "%s%s%03d", mant.c_str(), exponent < 0 ? "E-" : "E+",
                std::abs(exponent));
  return buf;
}

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  MH_REQUIRE(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  MH_REQUIRE(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) rule += "  ";
    rule += std::string(width[c], '-');
  }
  out << rule << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace mh
