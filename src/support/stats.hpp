// Small statistics toolkit for Monte-Carlo experiments: streaming moments,
// binomial confidence intervals, chi-square goodness of fit, and least-squares
// decay-rate fits (used to measure the e^{-Theta(k)} slopes the paper predicts).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mh {

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Absorb another accumulator (Chan et al. pairwise update), as if every
  /// observation of `other` had been added here. Enables sharded accumulation:
  /// merging disjoint shards never double-counts.
  void merge(const RunningStats& other) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double stderror() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// A binomial proportion estimate with a confidence interval.
struct Proportion {
  std::size_t successes = 0;
  std::size_t trials = 0;
  double estimate = 0.0;
  double lo = 0.0;  ///< lower bound of the CI
  double hi = 0.0;  ///< upper bound of the CI

  /// Pool another disjoint sample: counts add, and the estimate and interval
  /// are recomputed from the pooled counts (at the default 99% Wilson z).
  void merge(const Proportion& other);

  friend bool operator==(const Proportion&, const Proportion&) = default;
};

/// Wilson score interval for a binomial proportion (default z ~ 99% two-sided).
/// Behaves sensibly at the extremes (0 or all successes), unlike the normal interval.
Proportion wilson_interval(std::size_t successes, std::size_t trials, double z = 2.5758);

/// Exact (Clopper-Pearson) two-sided confidence interval for a binomial
/// proportion: the interval endpoints are beta-distribution quantiles, so the
/// band covers the true parameter with probability >= `confidence` for every
/// n and p (no normal approximation). The differential oracle uses these bands
/// to compare empirical violation frequencies against the exact DP series,
/// where approximate intervals would turn rare-event mismatches into noise.
Proportion clopper_pearson_interval(std::size_t successes, std::size_t trials,
                                    double confidence = 0.99);

/// Regularized incomplete beta function I_x(a, b) (continued fraction), the
/// primitive behind the Clopper-Pearson endpoints; exposed for tests.
double regularized_incomplete_beta(double a, double b, double x);

/// Pearson chi-square statistic for observed counts against expected probabilities.
/// Expects sum(expected_probs) ~ 1; bins with expected count < 5 are merged into
/// their predecessor to keep the statistic well behaved.
double chi_square_statistic(std::span<const std::size_t> observed,
                            std::span<const double> expected_probs);

/// Upper critical value of the chi-square distribution via the Wilson-Hilferty
/// normal approximation; good to a few percent for df >= 3 (sufficient for tests).
double chi_square_critical(std::size_t degrees_of_freedom, double significance = 0.01);

/// Ordinary least squares fit y = a + b*x. Returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit least_squares(std::span<const double> x, std::span<const double> y);

/// Fit log(p_k) ~ a - rate * k over the points with p > 0; returns the decay
/// rate `rate` (so p_k ~ e^{-rate*k}). Used to verify e^{-Theta(k)} behaviour.
double fitted_decay_rate(std::span<const double> k, std::span<const double> p);

}  // namespace mh
