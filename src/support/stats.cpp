#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mh {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const std::size_t n = n_ + other.n_;
  const double delta = other.mean_ - mean_;
  const double w_other = static_cast<double>(other.n_) / static_cast<double>(n);
  mean_ += delta * w_other;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) * w_other;
  n_ = n;
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderror() const noexcept {
  return n_ == 0 ? 0.0 : std::sqrt(variance() / static_cast<double>(n_));
}

void Proportion::merge(const Proportion& other) {
  successes += other.successes;
  trials += other.trials;
  if (trials == 0) return;  // two empty shards: stay default
  *this = wilson_interval(successes, trials);
}

Proportion wilson_interval(std::size_t successes, std::size_t trials, double z) {
  MH_REQUIRE(trials > 0);
  MH_REQUIRE(successes <= trials);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double spread = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  Proportion out;
  out.successes = successes;
  out.trials = trials;
  out.estimate = p;
  out.lo = std::max(0.0, center - spread);
  out.hi = std::min(1.0, center + spread);
  return out;
}

namespace {

/// Lentz's continued-fraction evaluation of the incomplete beta kernel
/// (Numerical Recipes' betacf); converges in a few dozen iterations for the
/// argument ranges the Clopper-Pearson endpoints need.
double beta_continued_fraction(double a, double b, double x) {
  constexpr double kTiny = 1e-300;
  constexpr double kEps = 1e-15;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 300; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

/// Quantile of the Beta(a, b) law by bisection on the regularized incomplete
/// beta (monotone); stops as soon as [lo, hi] has no representable midpoint.
double beta_quantile(double a, double b, double p) {
  double lo = 0.0, hi = 1.0;
  for (;;) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) return mid;
    if (regularized_incomplete_beta(a, b, mid) < p)
      lo = mid;
    else
      hi = mid;
  }
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  MH_REQUIRE(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) where the fraction converges
  // fastest.
  if (x < (a + 1.0) / (a + b + 2.0)) return front * beta_continued_fraction(a, b, x) / a;
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

Proportion clopper_pearson_interval(std::size_t successes, std::size_t trials,
                                    double confidence) {
  MH_REQUIRE(trials > 0);
  MH_REQUIRE(successes <= trials);
  MH_REQUIRE(confidence > 0.0 && confidence < 1.0);
  const double alpha = 1.0 - confidence;
  const double n = static_cast<double>(trials);
  const double x = static_cast<double>(successes);
  Proportion out;
  out.successes = successes;
  out.trials = trials;
  out.estimate = x / n;
  out.lo = successes == 0 ? 0.0 : beta_quantile(x, n - x + 1.0, alpha / 2.0);
  out.hi = successes == trials ? 1.0 : beta_quantile(x + 1.0, n - x, 1.0 - alpha / 2.0);
  return out;
}

double chi_square_statistic(std::span<const std::size_t> observed,
                            std::span<const double> expected_probs) {
  MH_REQUIRE(observed.size() == expected_probs.size());
  MH_REQUIRE(!observed.empty());
  double total = 0.0;
  for (std::size_t c : observed) total += static_cast<double>(c);
  MH_REQUIRE(total > 0.0);

  // Merge small-expectation bins left-to-right so every used bin has E >= 5.
  double stat = 0.0;
  double obs_acc = 0.0;
  double exp_acc = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    obs_acc += static_cast<double>(observed[i]);
    exp_acc += expected_probs[i] * total;
    const bool last = (i + 1 == observed.size());
    if (exp_acc >= 5.0 || last) {
      if (exp_acc > 0.0) {
        const double d = obs_acc - exp_acc;
        stat += d * d / exp_acc;
      }
      obs_acc = 0.0;
      exp_acc = 0.0;
    }
  }
  return stat;
}

double chi_square_critical(std::size_t degrees_of_freedom, double significance) {
  MH_REQUIRE(degrees_of_freedom > 0);
  MH_REQUIRE(significance > 0.0 && significance < 0.5);
  // z-quantile via Acklam-style rational approximation on the upper tail.
  const double p = 1.0 - significance;
  // Beasley-Springer-Moro inverse normal (adequate for test thresholds).
  const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
                      1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00};
  const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
                      6.680131188771972e+01, -1.328068155288572e+01};
  const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
                      -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00};
  const double d[] = {7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
                      3.754408661907416e+00};
  double z = 0.0;
  if (p < 0.97575) {
    const double q = p - 0.5;
    const double r = q * q;
    z = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    z = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // Wilson-Hilferty: chi2_df(p) ~ df * (1 - 2/(9 df) + z sqrt(2/(9 df)))^3.
  const double df = static_cast<double>(degrees_of_freedom);
  const double h = 2.0 / (9.0 * df);
  const double cube = 1.0 - h + z * std::sqrt(h);
  return df * cube * cube * cube;
}

LinearFit least_squares(std::span<const double> x, std::span<const double> y) {
  MH_REQUIRE(x.size() == y.size());
  MH_REQUIRE(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  MH_REQUIRE_MSG(denom != 0.0, "x values must not be constant");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double fitted_decay_rate(std::span<const double> k, std::span<const double> p) {
  MH_REQUIRE(k.size() == p.size());
  std::vector<double> xs, ys;
  xs.reserve(k.size());
  ys.reserve(k.size());
  for (std::size_t i = 0; i < k.size(); ++i) {
    if (p[i] > 0.0) {
      xs.push_back(k[i]);
      ys.push_back(std::log(p[i]));
    }
  }
  MH_REQUIRE_MSG(xs.size() >= 2, "need at least two positive probabilities to fit a rate");
  return -least_squares(xs, ys).slope;
}

}  // namespace mh
