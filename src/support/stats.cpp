#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mh {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const std::size_t n = n_ + other.n_;
  const double delta = other.mean_ - mean_;
  const double w_other = static_cast<double>(other.n_) / static_cast<double>(n);
  mean_ += delta * w_other;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) * w_other;
  n_ = n;
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderror() const noexcept {
  return n_ == 0 ? 0.0 : std::sqrt(variance() / static_cast<double>(n_));
}

void Proportion::merge(const Proportion& other) {
  successes += other.successes;
  trials += other.trials;
  if (trials == 0) return;  // two empty shards: stay default
  *this = wilson_interval(successes, trials);
}

Proportion wilson_interval(std::size_t successes, std::size_t trials, double z) {
  MH_REQUIRE(trials > 0);
  MH_REQUIRE(successes <= trials);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double spread = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  Proportion out;
  out.successes = successes;
  out.trials = trials;
  out.estimate = p;
  out.lo = std::max(0.0, center - spread);
  out.hi = std::min(1.0, center + spread);
  return out;
}

double chi_square_statistic(std::span<const std::size_t> observed,
                            std::span<const double> expected_probs) {
  MH_REQUIRE(observed.size() == expected_probs.size());
  MH_REQUIRE(!observed.empty());
  double total = 0.0;
  for (std::size_t c : observed) total += static_cast<double>(c);
  MH_REQUIRE(total > 0.0);

  // Merge small-expectation bins left-to-right so every used bin has E >= 5.
  double stat = 0.0;
  double obs_acc = 0.0;
  double exp_acc = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    obs_acc += static_cast<double>(observed[i]);
    exp_acc += expected_probs[i] * total;
    const bool last = (i + 1 == observed.size());
    if (exp_acc >= 5.0 || last) {
      if (exp_acc > 0.0) {
        const double d = obs_acc - exp_acc;
        stat += d * d / exp_acc;
      }
      obs_acc = 0.0;
      exp_acc = 0.0;
    }
  }
  return stat;
}

double chi_square_critical(std::size_t degrees_of_freedom, double significance) {
  MH_REQUIRE(degrees_of_freedom > 0);
  MH_REQUIRE(significance > 0.0 && significance < 0.5);
  // z-quantile via Acklam-style rational approximation on the upper tail.
  const double p = 1.0 - significance;
  // Beasley-Springer-Moro inverse normal (adequate for test thresholds).
  const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
                      1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00};
  const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
                      6.680131188771972e+01, -1.328068155288572e+01};
  const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
                      -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00};
  const double d[] = {7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
                      3.754408661907416e+00};
  double z = 0.0;
  if (p < 0.97575) {
    const double q = p - 0.5;
    const double r = q * q;
    z = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    z = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // Wilson-Hilferty: chi2_df(p) ~ df * (1 - 2/(9 df) + z sqrt(2/(9 df)))^3.
  const double df = static_cast<double>(degrees_of_freedom);
  const double h = 2.0 / (9.0 * df);
  const double cube = 1.0 - h + z * std::sqrt(h);
  return df * cube * cube * cube;
}

LinearFit least_squares(std::span<const double> x, std::span<const double> y) {
  MH_REQUIRE(x.size() == y.size());
  MH_REQUIRE(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  MH_REQUIRE_MSG(denom != 0.0, "x values must not be constant");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double fitted_decay_rate(std::span<const double> k, std::span<const double> p) {
  MH_REQUIRE(k.size() == p.size());
  std::vector<double> xs, ys;
  xs.reserve(k.size());
  ys.reserve(k.size());
  for (std::size_t i = 0; i < k.size(); ++i) {
    if (p[i] > 0.0) {
      xs.push_back(k[i]);
      ys.push_back(std::log(p[i]));
    }
  }
  MH_REQUIRE_MSG(xs.size() >= 2, "need at least two positive probabilities to fit a rate");
  return -least_squares(xs, ys).slope;
}

}  // namespace mh
