#include "support/env.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace mh::env {

namespace {

[[noreturn]] void reject(const char* name, const char* raw, const char* expected) {
  throw std::invalid_argument(std::string(name) + "=\"" + raw + "\" is malformed: expected " +
                              expected + " (unset or empty uses the default)");
}

std::string lowered(const char* raw) {
  std::string out(raw);
  for (char& c : out)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return out;
}

}  // namespace

bool flag(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return false;
  const std::string v = lowered(raw);
  if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  reject(name, raw, "a boolean (1/0, true/false, on/off, yes/no)");
}

std::size_t size(const char* name, std::size_t fallback, std::size_t min_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  // strtoull alone would wrap "-1" to 2^64-1 and stop at trailing junk:
  // demand plain digits end to end.
  for (const char* c = raw; *c != '\0'; ++c)
    if (*c < '0' || *c > '9') reject(name, raw, "a non-negative integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE)
    reject(name, raw, "a non-negative integer");
  if (parsed < min_value)
    reject(name, raw, min_value == 1 ? "a positive integer" : "a larger integer");
  return static_cast<std::size_t>(parsed);
}

double positive_number(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || errno == ERANGE || !std::isfinite(parsed) || parsed <= 0.0)
    reject(name, raw, "a finite number > 0");
  return parsed;
}

std::size_t choice(const char* name, const char* const* choices, std::size_t count,
                   std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const std::string v = lowered(raw);
  for (std::size_t i = 0; i < count; ++i)
    if (v == choices[i]) return i;
  std::string expected = "one of {";
  for (std::size_t i = 0; i < count; ++i) {
    if (i != 0) expected += ", ";
    expected += choices[i];
  }
  expected += "}";
  reject(name, raw, expected.c_str());
}

}  // namespace mh::env
