// E8 — cross-validation of the three computational routes to the settlement
// probability:
//   (a) the exact Section-6.6 DP (Table 1 engine);
//   (b) Monte-Carlo simulation of the Theorem-5 scalar recurrence;
//   (c) the fork-level optimal adversary A* (structural margins on sampled
//       strings — the slowest but most faithful route).
// All three must agree within Monte-Carlo confidence intervals.
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <chrono>
#include <cstdio>

#include "core/astar.hpp"
#include "core/exact_dp.hpp"
#include "core/reach_distribution.hpp"
#include "core/relative_margin.hpp"
#include "engine/engine.hpp"
#include "fork/margin.hpp"
#include "sim/monte_carlo.hpp"
#include "support/table.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

void cross_validation() {
  std::printf("Monte Carlo vs exact DP vs structural A* margins\n\n");
  mh::TextTable table({"alpha", "ratio", "k", "exact DP", "recurrence MC [lo, hi]",
                       "A* fork MC"});
  struct Case {
    double alpha, ratio;
    std::size_t k;
  };
  for (const Case c : {Case{0.40, 1.0, 60}, Case{0.40, 0.25, 40}, Case{0.30, 0.5, 24},
                       Case{0.45, 0.01, 50}}) {
    const mh::SymbolLaw law = mh::table1_law(c.alpha, c.ratio);
    const long double exact = mh::settlement_violation_probability(law, c.k);

    mh::McOptions opt;
    opt.samples = 60'000;
    opt.seed = 31337;
    opt.threads = mh::engine::threads_from_env();
    const mh::Proportion mc = mh::mc_settlement_violation(law, c.k, opt);

    // Fork-level: sample rho(x) ~ X_inf, prepend that many A's (an explicit
    // prefix realizing the reach), run A*, and measure the structural margin.
    // This is the slowest route, so it runs sharded on the engine too.
    const double beta = static_cast<double>(mh::reach_beta(law));
    const std::size_t fork_samples = 2'000;
    mh::engine::EngineOptions fork_opt;
    fork_opt.seed = 606060;
    fork_opt.threads = opt.threads;
    const std::size_t fork_hits = mh::engine::run_sharded<std::size_t>(
        fork_samples, fork_opt, [&](std::uint64_t, mh::Rng& rng, std::size_t& hits) {
          const auto r0 = static_cast<std::size_t>(mh::sample_geometric(rng, beta));
          std::vector<mh::Symbol> symbols(r0, mh::Symbol::A);
          for (std::size_t t = 0; t < c.k; ++t) symbols.push_back(law.sample(rng));
          const mh::CharString w = mh::CharString(symbols);
          const mh::Fork fork = mh::build_canonical_fork(w);
          if (mh::relative_margin(fork, w, r0) >= 0) ++hits;
        });
    const double fork_freq = static_cast<double>(fork_hits) / fork_samples;

    table.add_row({mh::fixed(c.alpha, 2), mh::fixed(c.ratio, 2), std::to_string(c.k),
                   mh::paper_scientific(exact),
                   "[" + mh::paper_scientific(mc.lo) + ", " + mh::paper_scientific(mc.hi) + "]",
                   mh::fixed(fork_freq, 4)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("note: the A* column realizes rho(x) with an explicit run of A's, so it\n");
  std::printf("samples the same law as the DP up to the geometric-prefix realization.\n\n");
}

void BM_RecurrenceMonteCarloSample(benchmark::State& state) {
  const mh::SymbolLaw law = mh::table1_law(0.40, 0.5);
  mh::Rng rng(9);
  const double beta = static_cast<double>(mh::reach_beta(law));
  for (auto _ : state) {
    mh::MarginProcess p(static_cast<std::int64_t>(mh::sample_geometric(rng, beta)));
    for (int t = 0; t < 100; ++t) p.step(law.sample(rng));
    benchmark::DoNotOptimize(p.mu());
  }
}
BENCHMARK(BM_RecurrenceMonteCarloSample);

void BM_ForkLevelSample(benchmark::State& state) {
  const mh::SymbolLaw law = mh::table1_law(0.40, 0.5);
  mh::Rng rng(10);
  for (auto _ : state) {
    const mh::CharString w = law.sample_string(48, rng);
    const mh::Fork fork = mh::build_canonical_fork(w);
    benchmark::DoNotOptimize(mh::relative_margin(fork, w, 0));
  }
}
BENCHMARK(BM_ForkLevelSample);

void game_value_table() {
  std::printf("Table-1 semantics vs full game value (violation at ANY time >= k):\n\n");
  mh::TextTable table({"alpha", "ratio", "k", "P(k) at exactly k", "game value (ever >= k)"});
  struct Case {
    double alpha, ratio;
    std::size_t k;
  };
  for (const Case c : {Case{0.40, 1.0, 100}, Case{0.40, 1.0, 200}, Case{0.30, 0.5, 100},
                       Case{0.20, 0.25, 100}}) {
    const mh::SymbolLaw law = mh::table1_law(c.alpha, c.ratio);
    table.add_row({mh::fixed(c.alpha, 2), mh::fixed(c.ratio, 2), std::to_string(c.k),
                   mh::paper_scientific(mh::settlement_violation_probability(law, c.k)),
                   mh::paper_scientific(mh::eventual_settlement_insecurity(law, c.k))});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(the gambler's-ruin factor beta^{|mu|} prices late reorgs; the gap shows\n");
  std::printf("how much of Definition 5's game value the at-k snapshot captures)\n\n");
}

void engine_speedup_report() {
  // Serial path vs the sharded engine at default sample counts. Counts must
  // match bit-for-bit; wall clock should scale with the core count.
  const std::size_t threads = mh::engine::resolve_threads(mh::engine::threads_from_env());
  std::printf("Sharded engine speedup (mc_settlement_violation, default %zu samples)\n",
              mh::McOptions{}.samples);
  std::printf("engine: %zu thread(s) available (MH_THREADS to override)\n\n", threads);

  const mh::SymbolLaw law = mh::table1_law(0.40, 0.5);
  mh::McOptions opt;  // default sample count
  opt.seed = 31337;

  opt.threads = 1;
  auto start = std::chrono::steady_clock::now();
  const mh::Proportion serial = mh::mc_settlement_violation(law, 100, opt);
  const double serial_s = seconds_since(start);

  opt.threads = threads;
  start = std::chrono::steady_clock::now();
  const mh::Proportion parallel = mh::mc_settlement_violation(law, 100, opt);
  const double parallel_s = seconds_since(start);

  mh::TextTable table({"threads", "wall (s)", "successes", "speedup"});
  table.add_row({"1", mh::fixed(serial_s, 3), std::to_string(serial.successes), "1.00"});
  table.add_row({std::to_string(threads), mh::fixed(parallel_s, 3),
                 std::to_string(parallel.successes),
                 mh::fixed(parallel_s > 0.0 ? serial_s / parallel_s : 0.0, 2)});
  std::printf("%s", table.render().c_str());
  std::printf(serial.successes == parallel.successes
                  ? "counts identical across thread counts (deterministic sharding)\n\n"
                  : "WARNING: counts differ across thread counts!\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  return mh::bench::run_main(argc, argv, "mc_vs_exact",
                             [] { cross_validation(); game_value_table(); engine_speedup_report(); return true; },
                             {.thread_banner = false});
}
