// E2 — Figure 1: the fork for w = hAhAhHAAH with concurrent honest leaders.
// Reconstructs the figure's fork (label multiset {1,2,2,3,4,4,4,5,6,6,7,8,9,9}
// and every property its caption states), prints it, and reports the
// fork-framework quantities the paper reads off it. Micro-benchmarks cover
// the fork primitives the whole analysis rests on.
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <cstdio>

#include "chars/bernoulli.hpp"
#include "core/astar.hpp"
#include "fork/ascii.hpp"
#include "fork/margin.hpp"
#include "fork/reach.hpp"
#include "fork/validate.hpp"

namespace {

struct Fig1 {
  mh::CharString w = mh::CharString::parse("hAhAhHAAH");
  mh::Fork fork;
  Fig1() {
    using mh::kRoot;
    const auto v1 = fork.add_vertex(kRoot, 1);
    const auto a2a = fork.add_vertex(v1, 2);
    const auto a2b = fork.add_vertex(kRoot, 2);
    const auto v3 = fork.add_vertex(a2b, 3);
    const auto a4a = fork.add_vertex(a2a, 4);
    fork.add_vertex(kRoot, 4);
    fork.add_vertex(a2b, 4);
    const auto v5 = fork.add_vertex(v3, 5);
    const auto v6a = fork.add_vertex(v5, 6);
    const auto v6b = fork.add_vertex(a4a, 6);
    const auto a7 = fork.add_vertex(v6a, 7);
    const auto a8 = fork.add_vertex(v6b, 8);
    fork.add_vertex(a7, 9);
    fork.add_vertex(a8, 9);
  }
};

void print_figure1() {
  Fig1 fig;
  std::printf("Figure 1: a fork F |- w for w = %s\n\n%s\n", fig.w.to_string().c_str(),
              mh::render_ascii(fig.fork, fig.w).c_str());
  const auto validation = mh::validate_fork(fig.fork, fig.w);
  std::printf("axioms (F1)-(F4) hold: %s\n", validation.ok ? "yes" : validation.message.c_str());
  std::printf("vertices labeled 6 (concurrent honest leaders): %zu\n",
              fig.fork.vertices_with_label(6).size());
  std::printf("vertices labeled 9 (concurrent honest leaders): %zu\n",
              fig.fork.vertices_with_label(9).size());
  std::printf("maximum-length tines: %zu (paper: multiple disjoint)\n",
              fig.fork.longest_tines().size());
  std::printf("rho(F) = %lld   margin mu(F) = %lld\n",
              static_cast<long long>(mh::max_reach(fig.fork, fig.w)),
              static_cast<long long>(mh::margin(fig.fork, fig.w)));
  std::printf("\nper-prefix relative margins mu_x(F):\n  x_len :");
  for (std::size_t x = 0; x <= fig.w.size(); ++x) std::printf(" %4zu", x);
  std::printf("\n  mu    :");
  for (std::size_t x = 0; x <= fig.w.size(); ++x)
    std::printf(" %4lld", static_cast<long long>(mh::relative_margin(fig.fork, fig.w, x)));
  std::printf("\n\n");
}

void BM_ForkConstruction(benchmark::State& state) {
  for (auto _ : state) {
    Fig1 fig;
    benchmark::DoNotOptimize(fig.fork.height());
  }
}
BENCHMARK(BM_ForkConstruction);

void BM_ForkValidation(benchmark::State& state) {
  Fig1 fig;
  for (auto _ : state) benchmark::DoNotOptimize(mh::validate_fork(fig.fork, fig.w).ok);
}
BENCHMARK(BM_ForkValidation);

void BM_RelativeMarginLinearPass(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mh::Rng rng(1);
  const mh::SymbolLaw law = mh::bernoulli_condition(0.3, 0.3);
  const mh::CharString w = law.sample_string(n, rng);
  const mh::Fork fork = mh::build_canonical_fork(w);
  for (auto _ : state)
    benchmark::DoNotOptimize(mh::relative_margin(fork, w, n / 2));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RelativeMarginLinearPass)->Arg(64)->Arg(256)->Arg(1024)->Complexity();

void BM_StructuralMarginBruteforce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mh::Rng rng(1);
  const mh::SymbolLaw law = mh::bernoulli_condition(0.3, 0.3);
  const mh::CharString w = law.sample_string(n, rng);
  const mh::Fork fork = mh::build_canonical_fork(w);
  for (auto _ : state)
    benchmark::DoNotOptimize(mh::relative_margin_bruteforce(fork, w, n / 2));
}
BENCHMARK(BM_StructuralMarginBruteforce)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  return mh::bench::run_main(argc, argv, "fig1_fork",
                             [] { print_figure1(); return true; },
                             {.thread_banner = false});
}
